package repro_test

import (
	"math"
	"math/rand"
	"testing"

	"repro"
)

// These tests exercise the public API exactly as the README and the
// examples present it, guarding the re-exported surface.

func TestPublicQuickstartFlow(t *testing.T) {
	in := &repro.Instance{
		SiteCapacity: []float64{1, 1},
		Demand: [][]float64{
			{1, 1},
			{1, 0},
		},
	}
	alloc, err := repro.NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alloc.Aggregate(0)-1) > 1e-6 || math.Abs(alloc.Aggregate(1)-1) > 1e-6 {
		t.Fatalf("aggregates %v, want [1 1]", alloc.Aggregates())
	}
	baseline := repro.PerSiteMMF(in)
	if math.Abs(baseline.Aggregate(1)-0.5) > 1e-9 {
		t.Fatalf("baseline pinned job %g, want 0.5", baseline.Aggregate(1))
	}
}

func TestPublicEnhancedAndVerifiers(t *testing.T) {
	in := &repro.Instance{
		SiteCapacity: []float64{10, 0.2},
		Demand: [][]float64{
			{0.9, 1},
			{0, 1},
			{0, 1},
		},
	}
	sv := repro.NewSolver()
	amf, err := sv.AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	jobs, _ := repro.SharingIncentiveViolations(amf, 1e-6)
	if len(jobs) != 1 {
		t.Fatalf("violations %v, want exactly job 0", jobs)
	}
	enh, err := sv.EnhancedAMF(in)
	if err != nil {
		t.Fatal(err)
	}
	if jobs, _ := repro.SharingIncentiveViolations(enh, 1e-6); len(jobs) != 0 {
		t.Fatalf("enhanced violations %v", jobs)
	}
	if !repro.IsParetoEfficient(amf, 1e-5*10*4) {
		t.Fatal("AMF not Pareto efficient")
	}
	if _, bad := repro.AggregateMaxMinViolation(amf, 1e-3); bad {
		t.Fatal("AMF flagged as unfair")
	}
	if pairs := repro.EnvyPairs(amf, 1e-5); len(pairs) != 0 {
		t.Fatalf("envy pairs %v", pairs)
	}
	if es := repro.EqualShares(in); math.Abs(es[0]-(0.9+0.2/3)) > 1e-9 {
		t.Fatalf("equal share %g", es[0])
	}
	if mt := repro.MaxTotalAllocation(in); math.Abs(mt-1.1) > 1e-6 {
		t.Fatalf("max total %g, want 1.1", mt)
	}
}

func TestPublicSolverOptions(t *testing.T) {
	in := &repro.Instance{
		SiteCapacity: []float64{3},
		Demand:       [][]float64{{2}, {2}},
	}
	for _, m := range []repro.Method{repro.MethodNewton, repro.MethodBisect} {
		sv := &repro.Solver{Method: m}
		a, err := sv.AMF(in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Aggregate(0)-1.5) > 1e-6 {
			t.Fatalf("%v: aggregate %g", m, a.Aggregate(0))
		}
	}
}

func TestPublicJCTAddon(t *testing.T) {
	in := &repro.Instance{
		SiteCapacity: []float64{1, 1},
		Demand: [][]float64{
			{1, 1},
			{1, 1},
		},
	}
	sv := repro.NewSolver()
	opt, err := sv.AMFWithJCT(in)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		if s := opt.Stretch(j); s > 1.01 {
			t.Fatalf("job %d stretch %g after add-on", j, s)
		}
	}
}

func TestPublicStrategyProbe(t *testing.T) {
	in := &repro.Instance{
		SiteCapacity: []float64{2},
		Demand:       [][]float64{{2}, {2}},
	}
	sv := repro.NewSolver()
	amf := func(in *repro.Instance) (*repro.Allocation, error) { return sv.AMF(in) }
	outs, err := repro.ProbeStrategyProofness(in, amf, 5, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if o.Gain > 1e-6 {
			t.Fatalf("job %d gained %g", o.Job, o.Gain)
		}
	}
}

func TestPublicUsefulAllocation(t *testing.T) {
	in := &repro.Instance{
		SiteCapacity: []float64{2},
		Demand:       [][]float64{{2}},
	}
	a := repro.NewAllocation(in)
	a.Share[0][0] = 2
	if u := repro.UsefulAllocation(a, 0, []float64{1}); u != 1 {
		t.Fatalf("useful %g, want 1", u)
	}
}

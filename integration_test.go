package repro_test

import (
	"bytes"
	"strconv"
	"testing"

	"repro"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// End-to-end pipeline tests: the flows a user strings together from the
// CLI tools, exercised through the library so failures localize.

func TestPipelineGenerateSolveTraceRoundTrip(t *testing.T) {
	// Generate -> solve -> serialize -> reload -> verify.
	in := workload.Generate(workload.Config{
		NumJobs: 30, NumSites: 6, Skew: 1.2, PerJobSkew: true,
		MeanDemand: 0.6, Seed: 77,
	})
	alloc, err := repro.NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}

	var ibuf, abuf bytes.Buffer
	if err := trace.WriteInstance(&ibuf, in); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteAllocation(&abuf, alloc); err != nil {
		t.Fatal(err)
	}
	in2, err := trace.ReadInstance(&ibuf)
	if err != nil {
		t.Fatal(err)
	}
	alloc2, err := trace.ReadAllocation(&abuf, in2, 1e-6*in.Scale())
	if err != nil {
		t.Fatal(err)
	}
	// The reloaded allocation still certifies as max-min fair.
	if j, bad := repro.AggregateMaxMinViolation(alloc2, 1e-4*in.Scale()); bad {
		t.Fatalf("reloaded allocation flagged unfair at job %d", j)
	}
}

func TestPipelineStreamRecordReplay(t *testing.T) {
	// Generate a stream -> record -> replay -> identical simulation.
	jobs := workload.GenerateStream(workload.StreamConfig{
		NumSites: 3, Lambda: 1.2, NumJobs: 25, Skew: 1, PerJobSkew: true,
		TasksPerJobMean: 5, Seed: 79,
	})
	var buf bytes.Buffer
	if err := trace.WriteJobStreamCSV(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	replayed, err := trace.ReadJobStreamCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	caps := []float64{3, 3, 3}
	orig, err := sim.RunFluid(sim.FluidConfig{SiteCapacity: caps, Policy: sim.PolicyAMF}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	redo, err := sim.RunFluid(sim.FluidConfig{SiteCapacity: caps, Policy: sim.PolicyAMF}, replayed)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig.Jobs) != len(redo.Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(orig.Jobs), len(redo.Jobs))
	}
	for i := range orig.Jobs {
		if orig.Jobs[i].Completion != redo.Jobs[i].Completion {
			t.Fatalf("job %d completion differs after replay: %g vs %g",
				orig.Jobs[i].ID, orig.Jobs[i].Completion, redo.Jobs[i].Completion)
		}
	}
}

// TestHeadlineClaimsFullSize re-checks the two headline numbers recorded
// in EXPERIMENTS.md at full experiment size (skipped under -short).
func TestHeadlineClaimsFullSize(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size experiments")
	}
	// E1 at full size: AMF min/max ratio stays >= 2x the baseline's at the
	// highest skew.
	r, err := experiments.Run("E1", experiments.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := r.Series[1]
	last := len(ratio.X) - 1
	ps, amf := ratio.Y[0][last], ratio.Y[1][last]
	if amf < 2*ps {
		t.Fatalf("E1 full-size: AMF min/max %g not >= 2x PS-MMF %g", amf, ps)
	}

	// E8 at full size: AMF beats the baseline on mean JCT at load 0.9.
	r, err = experiments.Run("E8", experiments.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	var psJCT, amfJCT float64
	for _, row := range tb.Rows {
		if row[0] == "0.9" && row[1] == "psmmf" {
			psJCT = parseF(t, row[2])
		}
		if row[0] == "0.9" && row[1] == "amf" {
			amfJCT = parseF(t, row[2])
		}
	}
	if psJCT == 0 || amfJCT == 0 {
		t.Fatalf("E8 rows missing: %v", tb.Rows)
	}
	if amfJCT >= psJCT {
		t.Fatalf("E8 full-size at load 0.9: AMF %g not below PS-MMF %g", amfJCT, psJCT)
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", s, err)
	}
	return v
}

package spill

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fairness"
)

func feq(a, b float64) bool { return math.Abs(a-b) <= 1e-4*(1+math.Abs(a)+math.Abs(b)) }

func TestGammaOneMatchesRelaxedAMF(t *testing.T) {
	// With gamma=1 remote units are as good as local: useful max-min must
	// match plain AMF on the demand-relaxed instance.
	in := &core.Instance{
		SiteCapacity: []float64{1, 1},
		Demand: [][]float64{
			{1, 0},
			{1, 0},
		},
	}
	cfg := Config{RemotePerSite: 1, Gamma: 1}
	res, err := cfg.MaxMinUseful(in)
	if err != nil {
		t.Fatal(err)
	}
	// Both jobs pinned to site 0; remote slots open site 1: each ends at
	// useful rate 1 (0.5 local + 0.5 remote, or any equivalent split).
	for j := 0; j < 2; j++ {
		if !feq(res.Useful[j], 1) {
			t.Fatalf("job %d useful %g, want 1", j, res.Useful[j])
		}
	}
}

func TestGammaZeroMatchesPinnedAMF(t *testing.T) {
	// With gamma=0 remote units are worthless: useful rates must equal the
	// pinned AMF aggregates.
	in := &core.Instance{
		SiteCapacity: []float64{1, 1},
		Demand: [][]float64{
			{1, 1},
			{1, 0},
		},
	}
	cfg := Config{RemotePerSite: 2, Gamma: 0}
	res, err := cfg.MaxMinUseful(in)
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := core.NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		if !feq(res.Useful[j], pinned.Aggregate(j)) {
			t.Fatalf("job %d useful %g, want pinned %g", j, res.Useful[j], pinned.Aggregate(j))
		}
	}
}

func TestUsefulAwareBeatsObliviousRelaxation(t *testing.T) {
	// The X3 pitfall: two pinned jobs share site 0; site 1 is empty.
	// Oblivious AMF on the relaxed demands may serve a job purely remotely
	// (raw aggregates equal, useful rates skewed); the useful-rate
	// allocator must give every job at least the pinned baseline.
	in := &core.Instance{
		SiteCapacity: []float64{1, 1},
		Demand: [][]float64{
			{1, 0},
			{1, 0},
			{1, 0},
		},
	}
	cfg := Config{RemotePerSite: 1, Gamma: 0.5}
	res, err := cfg.MaxMinUseful(in)
	if err != nil {
		t.Fatal(err)
	}
	// Pinned baseline: 1/3 each. With remote slots at gamma 0.5: site 1
	// adds 0.5 useful total -> max-min gives each 1/3 + 1/6 = 0.5.
	for j := 0; j < 3; j++ {
		if res.Useful[j] < 1.0/3-1e-6 {
			t.Fatalf("job %d below pinned baseline: %g", j, res.Useful[j])
		}
		if !feq(res.Useful[j], 0.5) {
			t.Fatalf("job %d useful %g, want 0.5", j, res.Useful[j])
		}
	}
	if err := res.CheckFeasible(in, cfg, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestMonotoneInGamma(t *testing.T) {
	in := &core.Instance{
		SiteCapacity: []float64{1, 2},
		Demand: [][]float64{
			{1, 0},
			{1, 0},
		},
	}
	prev := -1.0
	for _, gamma := range []float64{0, 0.25, 0.5, 0.75, 1} {
		cfg := Config{RemotePerSite: 1, Gamma: gamma}
		res, err := cfg.MaxMinUseful(in)
		if err != nil {
			t.Fatal(err)
		}
		min := math.Min(res.Useful[0], res.Useful[1])
		if min < prev-1e-6 {
			t.Fatalf("min useful not monotone in gamma: %g -> %g at %g", prev, min, gamma)
		}
		prev = min
	}
}

func TestMaxMinCertificateOnUsefulRates(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(3)
		m := 1 + rng.Intn(2)
		in := &core.Instance{
			SiteCapacity: make([]float64, m),
			Demand:       make([][]float64, n),
		}
		for s := range in.SiteCapacity {
			in.SiteCapacity[s] = 0.5 + rng.Float64()*2
		}
		for j := range in.Demand {
			in.Demand[j] = make([]float64, m)
			for s := range in.Demand[j] {
				if rng.Intn(2) == 0 {
					in.Demand[j][s] = rng.Float64() * 2
				}
			}
		}
		cfg := Config{RemotePerSite: rng.Float64(), Gamma: 0.25 + rng.Float64()*0.75}
		res, err := cfg.MaxMinUseful(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.CheckFeasible(in, cfg, 1e-5); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// uMax bounds for the certificate.
		uMax := make([]float64, n)
		for j := 0; j < n; j++ {
			for s := 0; s < m; s++ {
				take := math.Min(in.Demand[j][s]+cfg.RemotePerSite, in.SiteCapacity[s])
				lp := math.Min(take, in.Demand[j][s])
				uMax[j] += lp + cfg.Gamma*(take-lp)
			}
		}
		oracle := func(target []float64) bool {
			_, ok := cfg.feasible(in, target)
			return ok
		}
		if j, bad := fairness.MaxMinViolation(res.Useful, uMax, oracle, 1e-3); bad {
			t.Fatalf("trial %d: useful rates not max-min fair (job %d: %v)",
				trial, j, res.Useful)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	in := &core.Instance{SiteCapacity: []float64{1}, Demand: [][]float64{{1}}}
	if _, err := (Config{Gamma: -0.1}).MaxMinUseful(in); err == nil {
		t.Fatal("negative gamma accepted")
	}
	if _, err := (Config{Gamma: 1.5}).MaxMinUseful(in); err == nil {
		t.Fatal("gamma > 1 accepted")
	}
	if _, err := (Config{Gamma: 0.5, RemotePerSite: -1}).MaxMinUseful(in); err == nil {
		t.Fatal("negative remote slots accepted")
	}
}

func TestWeightedUsefulRates(t *testing.T) {
	in := &core.Instance{
		SiteCapacity: []float64{3},
		Demand:       [][]float64{{3}, {3}},
		Weight:       []float64{1, 2},
	}
	cfg := Config{RemotePerSite: 0, Gamma: 0.5}
	res, err := cfg.MaxMinUseful(in)
	if err != nil {
		t.Fatal(err)
	}
	if !feq(res.Useful[0], 1) || !feq(res.Useful[1], 2) {
		t.Fatalf("weighted useful %v, want [1 2]", res.Useful)
	}
}

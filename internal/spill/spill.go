// Package spill implements locality-relaxed max-min fairness: jobs may be
// served at sites without their data ("remote" slots) at efficiency
// Gamma < 1, and fairness is defined on *useful* rates
//
//	u_j = sum_s local[j][s] + Gamma * sum_s remote[j][s],
//
// the throughput the job actually experiences. Applying plain AMF to a
// locality-relaxed demand matrix is a pitfall — it equalizes raw resource
// units and happily serves a job entirely through discounted remote slots
// (experiment X3 demonstrates the collapse); the allocator here runs
// progressive filling directly on useful rates, with an LP feasibility
// oracle because useful-rate targets mix two variable classes per
// job-site pair.
package spill

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/lp"
)

// Config parameterizes the relaxation.
type Config struct {
	// RemotePerSite is the number of remote slots a job can occupy at each
	// site.
	RemotePerSite float64
	// Gamma is the useful work per remote resource unit, in [0, 1].
	Gamma float64
	// Eps is the relative tolerance of the progressive filling (default
	// 1e-6).
	Eps float64
}

func (c Config) eps() float64 {
	if c.Eps > 0 {
		return c.Eps
	}
	return 1e-6
}

// Result is a locality-aware allocation.
type Result struct {
	// Local[j][s] serves job j's local work at site s (within Demand).
	Local [][]float64
	// Remote[j][s] serves job j remotely at site s (within RemotePerSite).
	Remote [][]float64
	// Useful[j] is the locality-discounted rate sum(local) + Gamma*sum(remote).
	Useful []float64
}

// MaxMinUseful computes the allocation whose useful-rate vector is max-min
// fair over all locality-relaxed placements.
func (c Config) MaxMinUseful(in *core.Instance) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if c.Gamma < 0 || c.Gamma > 1 || math.IsNaN(c.Gamma) {
		return nil, fmt.Errorf("spill: gamma %g out of [0,1]", c.Gamma)
	}
	if c.RemotePerSite < 0 || math.IsNaN(c.RemotePerSite) {
		return nil, fmt.Errorf("spill: negative remote slots %g", c.RemotePerSite)
	}
	n, m := in.NumJobs(), in.NumSites()

	// Maximum useful rate each job could reach alone: at each site it
	// takes local slots first, then remote ones, up to the capacity.
	uMax := make([]float64, n)
	for j := 0; j < n; j++ {
		for s := 0; s < m; s++ {
			take := math.Min(in.Demand[j][s]+c.RemotePerSite, in.SiteCapacity[s])
			localPart := math.Min(take, in.Demand[j][s])
			uMax[j] += localPart + c.Gamma*(take-localPart)
		}
	}

	frozen := make([]bool, n)
	level := make([]float64, n)
	remaining := 0
	for j := 0; j < n; j++ {
		if uMax[j] <= 0 {
			frozen[j] = true
		} else {
			remaining++
		}
	}

	target := func(t float64) []float64 {
		out := make([]float64, n)
		for j := 0; j < n; j++ {
			if frozen[j] {
				out[j] = level[j]
			} else {
				out[j] = math.Min(t*in.JobWeight(j), uMax[j])
			}
		}
		return out
	}

	var last *Result
	for round := 0; remaining > 0; round++ {
		if round > n {
			return nil, fmt.Errorf("spill: no progress after %d rounds", round)
		}
		hi := 0.0
		for j := 0; j < n; j++ {
			if !frozen[j] {
				hi = math.Max(hi, uMax[j]/in.JobWeight(j))
			}
		}
		if r, ok := c.feasible(in, target(hi)); ok {
			for j := 0; j < n; j++ {
				if !frozen[j] {
					frozen[j] = true
					level[j] = uMax[j]
					remaining--
				}
			}
			last = r
			break
		}
		lo := 0.0
		ttol := c.eps() * math.Max(hi, 1e-12)
		var atLo *Result
		for hi-lo > ttol {
			mid := (lo + hi) / 2
			if r, ok := c.feasible(in, target(mid)); ok {
				lo = mid
				atLo = r
			} else {
				hi = mid
			}
		}
		tstar := lo
		last = atLo
		frozeAny := false
		bump := math.Max(50*ttol, 1e-9)
		base := target(tstar)
		for j := 0; j < n; j++ {
			if frozen[j] {
				continue
			}
			if tstar*in.JobWeight(j) >= uMax[j]-ttol {
				frozen[j] = true
				level[j] = uMax[j]
				frozeAny = true
				remaining--
				continue
			}
			probe := append([]float64(nil), base...)
			probe[j] += bump
			if _, ok := c.feasible(in, probe); !ok {
				frozen[j] = true
				level[j] = base[j]
				frozeAny = true
				remaining--
			}
		}
		if !frozeAny {
			return nil, fmt.Errorf("spill: bottleneck at %g froze no job", tstar)
		}
	}

	r, ok := c.feasible(in, level)
	if !ok {
		if last == nil {
			return nil, fmt.Errorf("spill: final levels infeasible")
		}
		r = last
	}
	return r, nil
}

// feasible tests whether every job can hold its useful-rate target.
// Variables: local[j][s] then remote[j][s], flattened.
func (c Config) feasible(in *core.Instance, targets []float64) (*Result, bool) {
	n, m := in.NumJobs(), in.NumSites()
	nv := 2 * n * m
	li := func(j, s int) int { return j*m + s }
	ri := func(j, s int) int { return n*m + j*m + s }

	var a [][]float64
	var b []float64
	// Bounds.
	for j := 0; j < n; j++ {
		for s := 0; s < m; s++ {
			row := make([]float64, nv)
			row[li(j, s)] = 1
			a = append(a, row)
			b = append(b, in.Demand[j][s])
			row2 := make([]float64, nv)
			row2[ri(j, s)] = 1
			a = append(a, row2)
			b = append(b, c.RemotePerSite)
		}
	}
	// Site capacities.
	for s := 0; s < m; s++ {
		row := make([]float64, nv)
		for j := 0; j < n; j++ {
			row[li(j, s)] = 1
			row[ri(j, s)] = 1
		}
		a = append(a, row)
		b = append(b, in.SiteCapacity[s])
	}
	// Useful-rate floors: -(sum local + gamma sum remote) <= -target.
	for j := 0; j < n; j++ {
		row := make([]float64, nv)
		for s := 0; s < m; s++ {
			row[li(j, s)] = -1
			row[ri(j, s)] = -c.Gamma
		}
		a = append(a, row)
		b = append(b, -targets[j])
	}

	x, ok := lp.Feasible(nv, a, b, nil, nil)
	if !ok {
		return nil, false
	}
	res := &Result{
		Local:  make([][]float64, n),
		Remote: make([][]float64, n),
		Useful: make([]float64, n),
	}
	for j := 0; j < n; j++ {
		res.Local[j] = make([]float64, m)
		res.Remote[j] = make([]float64, m)
		for s := 0; s < m; s++ {
			res.Local[j][s] = x[li(j, s)]
			res.Remote[j][s] = x[ri(j, s)]
			res.Useful[j] += res.Local[j][s] + c.Gamma*res.Remote[j][s]
		}
	}
	return res, true
}

// CheckFeasible verifies bounds and capacities of a Result within tol.
func (r *Result) CheckFeasible(in *core.Instance, cfg Config, tol float64) error {
	for j := range r.Local {
		for s := range r.Local[j] {
			if r.Local[j][s] < -tol || r.Local[j][s] > in.Demand[j][s]+tol {
				return fmt.Errorf("spill: local[%d][%d]=%g outside [0,%g]",
					j, s, r.Local[j][s], in.Demand[j][s])
			}
			if r.Remote[j][s] < -tol || r.Remote[j][s] > cfg.RemotePerSite+tol {
				return fmt.Errorf("spill: remote[%d][%d]=%g outside [0,%g]",
					j, s, r.Remote[j][s], cfg.RemotePerSite)
			}
		}
	}
	for s := range in.SiteCapacity {
		var load float64
		for j := range r.Local {
			load += r.Local[j][s] + r.Remote[j][s]
		}
		if load > in.SiteCapacity[s]+tol {
			return fmt.Errorf("spill: site %d load %g exceeds %g", s, load, in.SiteCapacity[s])
		}
	}
	return nil
}

package maxflow

import (
	"math"
	"math/rand"
	"testing"
)

func TestMinCutEqualsMaxFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(15)
		g := buildRandomGraph(rng, n, n*3)
		flow := g.MaxFlow(0, n-1)
		side := g.SourceSide(0)
		if side[n-1] {
			if flow > 1e-6 {
				// sink reachable means zero residual cut; only valid when
				// flow could still be augmented, which MaxFlow precludes.
				t.Fatalf("trial %d: sink reachable in residual after max flow", trial)
			}
			continue
		}
		cut := g.CutCapacity(side)
		if !almostEq(cut, flow, 1e-6*(1+flow)) {
			t.Fatalf("trial %d: cut=%g flow=%g", trial, cut, flow)
		}
	}
}

func TestCutEdgesSaturated(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 3)
	g.AddEdge(2, 3, 7)
	g.MaxFlow(0, 3)
	side := g.SourceSide(0)
	edges := g.CutEdges(side)
	if len(edges) != 1 {
		t.Fatalf("cut has %d edges, want 1", len(edges))
	}
	e := edges[0]
	if !almostEq(g.Flow(e), g.Cap(e), 1e-9) {
		t.Fatalf("cut edge not saturated: flow %g cap %g", g.Flow(e), g.Cap(e))
	}
	from, to := g.Endpoints(e)
	if from != 1 || to != 2 {
		t.Fatalf("cut edge (%d,%d), want (1,2)", from, to)
	}
}

func TestSinkSideComplementIsMaxSourceSide(t *testing.T) {
	// Diamond with two min cuts: edges (0,1),(0,2) and edges (1,3),(2,3).
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	g.MaxFlow(0, 3)
	src := g.SourceSide(0)
	snk := g.SinkSide(3)
	// Minimal source side: just {0}. Minimal sink side: just {3}.
	if src[1] || src[2] || src[3] {
		t.Fatalf("source side too large: %v", src)
	}
	if snk[0] || snk[1] || snk[2] {
		t.Fatalf("sink side too large: %v", snk)
	}
}

func TestSinkSideIdentifiesBlockedNodes(t *testing.T) {
	// Jobs 1,2 share a saturated site; job 3 has private spare capacity.
	// 0 src; 1,2,3 jobs; 4,5 sites; 6 sink.
	g := New(7)
	e1 := g.AddEdge(0, 1, 1)
	e2 := g.AddEdge(0, 2, 1)
	e3 := g.AddEdge(0, 3, 1)
	g.AddEdge(1, 4, 10)
	g.AddEdge(2, 4, 10)
	g.AddEdge(3, 5, 10)
	g.AddEdge(4, 6, 2) // saturated by jobs 1+2
	g.AddEdge(5, 6, 5) // spare left for job 3
	got := g.MaxFlow(0, 6)
	if !almostEq(got, 3, 1e-9) {
		t.Fatalf("flow = %g, want 3", got)
	}
	snk := g.SinkSide(6)
	if snk[1] || snk[2] {
		t.Fatalf("jobs 1,2 should be blocked (cannot reach sink): %v", snk)
	}
	if !snk[3] {
		t.Fatalf("job 3 has spare site capacity and should reach the sink")
	}
	_ = e1
	_ = e2
	_ = e3
}

func TestCutCapacityWeakDuality(t *testing.T) {
	// Any s-side set containing s but not t gives capacity >= max flow.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(10)
		g := buildRandomGraph(rng, n, n*3)
		flow := g.MaxFlow(0, n-1)
		side := make([]bool, n)
		side[0] = true
		for v := 1; v < n-1; v++ {
			side[v] = rng.Intn(2) == 0
		}
		if cap := g.CutCapacity(side); cap < flow-1e-6*(1+flow) {
			t.Fatalf("trial %d: random cut %g below max flow %g", trial, cap, flow)
		}
	}
}

func TestSourceSideOnZeroFlowGraph(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 0)
	g.MaxFlow(0, 2)
	side := g.SourceSide(0)
	if !side[0] || side[1] || side[2] {
		t.Fatalf("unexpected reachability %v", side)
	}
}

func TestMinCutValueAgainstBruteForce(t *testing.T) {
	// Enumerate all cuts on small graphs and compare with flow value.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(4) // up to 7 nodes -> at most 2^5 cuts
		type edge struct {
			u, v int
			c    float64
		}
		var es []edge
		for i := 0; i < n*3; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				es = append(es, edge{u, v, math.Round(rng.Float64()*50) / 10})
			}
		}
		g := New(n)
		for _, e := range es {
			g.AddEdge(e.u, e.v, e.c)
		}
		flow := g.MaxFlow(0, n-1)
		best := math.Inf(1)
		inner := n - 2
		for mask := 0; mask < 1<<inner; mask++ {
			side := make([]bool, n)
			side[0] = true
			for b := 0; b < inner; b++ {
				side[1+b] = mask&(1<<b) != 0
			}
			var c float64
			for _, e := range es {
				if side[e.u] && !side[e.v] {
					c += e.c
				}
			}
			if c < best {
				best = c
			}
		}
		if !almostEq(flow, best, 1e-6*(1+best)) {
			t.Fatalf("trial %d: flow=%g brute-force min cut=%g", trial, flow, best)
		}
	}
}

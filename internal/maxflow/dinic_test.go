package maxflow

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSingleEdge(t *testing.T) {
	g := New(2)
	e := g.AddEdge(0, 1, 5)
	if got := g.MaxFlow(0, 1); !almostEq(got, 5, 1e-9) {
		t.Fatalf("max flow = %g, want 5", got)
	}
	if f := g.Flow(e); !almostEq(f, 5, 1e-9) {
		t.Fatalf("edge flow = %g, want 5", f)
	}
}

func TestNoPath(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5)
	// Node 2 disconnected from 1.
	if got := g.MaxFlow(0, 2); got != 0 {
		t.Fatalf("max flow = %g, want 0", got)
	}
}

func TestSeriesBottleneck(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 3)
	g.AddEdge(2, 3, 7)
	if got := g.MaxFlow(0, 3); !almostEq(got, 3, 1e-9) {
		t.Fatalf("max flow = %g, want 3", got)
	}
}

func TestParallelPaths(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 4)
	g.AddEdge(1, 3, 4)
	g.AddEdge(0, 2, 6)
	g.AddEdge(2, 3, 5)
	if got := g.MaxFlow(0, 3); !almostEq(got, 9, 1e-9) {
		t.Fatalf("max flow = %g, want 9", got)
	}
}

func TestClassicCLRS(t *testing.T) {
	// The flow network from CLRS figure 26.6; max flow 23.
	g := New(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if got := g.MaxFlow(0, 5); !almostEq(got, 23, 1e-9) {
		t.Fatalf("max flow = %g, want 23", got)
	}
}

func TestFractionalCapacities(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(0, 2, 0.25)
	g.AddEdge(1, 3, 0.75)
	g.AddEdge(2, 3, 0.75)
	if got := g.MaxFlow(0, 3); !almostEq(got, 0.75, 1e-9) {
		t.Fatalf("max flow = %g, want 0.75", got)
	}
}

func TestZeroCapacityEdge(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 0)
	if got := g.MaxFlow(0, 1); got != 0 {
		t.Fatalf("max flow = %g, want 0", got)
	}
}

func TestIncrementalAfterSetCap(t *testing.T) {
	g := New(3)
	e := g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 10)
	if got := g.MaxFlow(0, 2); !almostEq(got, 2, 1e-9) {
		t.Fatalf("first flow = %g, want 2", got)
	}
	// Raising a capacity and re-running should augment from current state.
	g.SetCap(e, 5)
	extra := g.MaxFlow(0, 2)
	if !almostEq(extra, 5, 1e-9) {
		t.Fatalf("after raise, augmentation = %g, want 5 (flow on e was reset)", extra)
	}
}

func TestResetClearsFlow(t *testing.T) {
	g := New(2)
	e := g.AddEdge(0, 1, 3)
	g.MaxFlow(0, 1)
	g.Reset()
	if f := g.Flow(e); f != 0 {
		t.Fatalf("flow after reset = %g, want 0", f)
	}
	if got := g.MaxFlow(0, 1); !almostEq(got, 3, 1e-9) {
		t.Fatalf("flow after reset+rerun = %g, want 3", got)
	}
}

func TestFlowConservation(t *testing.T) {
	g := buildRandomGraph(rand.New(rand.NewSource(1)), 20, 80)
	g.MaxFlow(0, 19)
	checkConservation(t, g, 0, 19)
}

func TestFlowValueMatchesMaxFlow(t *testing.T) {
	g := buildRandomGraph(rand.New(rand.NewSource(2)), 15, 60)
	want := g.MaxFlow(0, 14)
	if got := g.FlowValue(0); !almostEq(got, want, 1e-6) {
		t.Fatalf("FlowValue(0) = %g, want %g", got, want)
	}
	if got := -g.FlowValue(14); !almostEq(got, want, 1e-6) {
		t.Fatalf("-FlowValue(sink) = %g, want %g", got, want)
	}
}

func TestEndpoints(t *testing.T) {
	g := New(3)
	e := g.AddEdge(1, 2, 1)
	from, to := g.Endpoints(e)
	if from != 1 || to != 2 {
		t.Fatalf("Endpoints = (%d,%d), want (1,2)", from, to)
	}
}

func TestAddNode(t *testing.T) {
	g := New(2)
	v := g.AddNode()
	if v != 2 || g.NumNodes() != 3 {
		t.Fatalf("AddNode gave %d, NumNodes %d", v, g.NumNodes())
	}
	g.AddEdge(0, v, 4)
	g.AddEdge(v, 1, 4)
	if got := g.MaxFlow(0, 1); !almostEq(got, 4, 1e-9) {
		t.Fatalf("flow through added node = %g, want 4", got)
	}
}

// edmondsKarp is an independent reference implementation used to cross-check
// Dinic on random graphs.
type refEdge struct {
	to, rev int
	cap     float64
}

type refGraph struct{ adj [][]refEdge }

func newRef(n int) *refGraph { return &refGraph{adj: make([][]refEdge, n)} }

func (r *refGraph) add(u, v int, c float64) {
	r.adj[u] = append(r.adj[u], refEdge{to: v, rev: len(r.adj[v]), cap: c})
	r.adj[v] = append(r.adj[v], refEdge{to: u, rev: len(r.adj[u]) - 1, cap: 0})
}

func (r *refGraph) maxflow(s, t int) float64 {
	const eps = 1e-12
	var total float64
	n := len(r.adj)
	for {
		parent := make([]int, n)
		parentEdge := make([]int, n)
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = s
		queue := []int{s}
		for len(queue) > 0 && parent[t] < 0 {
			u := queue[0]
			queue = queue[1:]
			for ei, e := range r.adj[u] {
				if e.cap > eps && parent[e.to] < 0 {
					parent[e.to] = u
					parentEdge[e.to] = ei
					queue = append(queue, e.to)
				}
			}
		}
		if parent[t] < 0 {
			return total
		}
		aug := math.Inf(1)
		for v := t; v != s; v = parent[v] {
			e := r.adj[parent[v]][parentEdge[v]]
			if e.cap < aug {
				aug = e.cap
			}
		}
		for v := t; v != s; v = parent[v] {
			e := &r.adj[parent[v]][parentEdge[v]]
			e.cap -= aug
			r.adj[e.to][e.rev].cap += aug
		}
		total += aug
	}
}

func buildRandomGraph(rng *rand.Rand, n, edges int) *Graph {
	g := New(n)
	for i := 0; i < edges; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		g.AddEdge(u, v, rng.Float64()*10)
	}
	return g
}

func TestDinicVsEdmondsKarpRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(20)
		m := n + rng.Intn(4*n)
		type edge struct {
			u, v int
			c    float64
		}
		var es []edge
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			es = append(es, edge{u, v, math.Round(rng.Float64()*100) / 10})
		}
		g := New(n)
		ref := newRef(n)
		for _, e := range es {
			g.AddEdge(e.u, e.v, e.c)
			ref.add(e.u, e.v, e.c)
		}
		got := g.MaxFlow(0, n-1)
		want := ref.maxflow(0, n-1)
		if !almostEq(got, want, 1e-6*(1+want)) {
			t.Fatalf("trial %d: dinic=%g edmonds-karp=%g", trial, got, want)
		}
	}
}

func TestBipartiteMatchingShape(t *testing.T) {
	// 3 jobs x 3 sites, unit capacities: a perfect matching has value 3.
	g := New(8) // 0 src, 1-3 jobs, 4-6 sites, 7 sink
	for j := 1; j <= 3; j++ {
		g.AddEdge(0, j, 1)
	}
	g.AddEdge(1, 4, 1)
	g.AddEdge(1, 5, 1)
	g.AddEdge(2, 5, 1)
	g.AddEdge(3, 5, 1)
	g.AddEdge(3, 6, 1)
	for s := 4; s <= 6; s++ {
		g.AddEdge(s, 7, 1)
	}
	if got := g.MaxFlow(0, 7); !almostEq(got, 3, 1e-9) {
		t.Fatalf("matching value = %g, want 3", got)
	}
}

func checkConservation(t *testing.T, g *Graph, s, snk int) {
	t.Helper()
	net := make([]float64, g.NumNodes())
	for id := 0; id < len(g.arcs); id += 2 {
		from := g.arcs[id^1].to
		to := g.arcs[id].to
		f := g.arcs[id].init - g.arcs[id].cap
		if f < -1e-9 {
			t.Fatalf("negative flow %g on edge %d", f, id)
		}
		if f > g.arcs[id].init+1e-9 {
			t.Fatalf("flow %g exceeds capacity %g on edge %d", f, g.arcs[id].init, id)
		}
		net[from] -= f
		net[to] += f
	}
	for v, x := range net {
		if v == s || v == snk {
			continue
		}
		if math.Abs(x) > 1e-6 {
			t.Fatalf("conservation violated at node %d: net %g", v, x)
		}
	}
}

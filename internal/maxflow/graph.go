// Package maxflow implements a maximum-flow solver (Dinic's algorithm) over
// real-valued capacities, together with the cut and feasibility primitives
// the AMF allocator needs:
//
//   - min-cut extraction (source-side reachability and sink-side
//     co-reachability in the residual graph),
//   - feasible flow with edge lower bounds (via the standard circulation
//     transformation), used by the completion-time add-on,
//   - flow decomposition into paths, used by tests and trace output.
//
// Capacities are float64. All comparisons go through a per-graph epsilon; the
// allocator normalizes instances so that capacities are O(1)..O(1e9), where a
// 1e-9 relative epsilon is far below any meaningful allocation difference.
package maxflow

import "fmt"

// DefaultEps is the absolute slack treated as zero by the solver.
const DefaultEps = 1e-9

// EdgeID identifies an edge returned by AddEdge. It indexes the forward edge
// in the internal arc list (forward arcs are even, reverse arcs odd).
type EdgeID int

type arc struct {
	to   int
	cap  float64 // remaining capacity (residual)
	init float64 // original capacity, to recover flow = init - cap
}

// Graph is a directed flow network. It is not safe for concurrent use.
type Graph struct {
	n     int
	arcs  []arc
	head  [][]int32 // adjacency: node -> arc indices
	eps   float64
	level []int32
	iter  []int32
	queue []int32
}

// New returns an empty graph with n nodes, numbered 0..n-1.
func New(n int) *Graph {
	return &Graph{
		n:     n,
		head:  make([][]int32, n),
		eps:   DefaultEps,
		level: make([]int32, n),
		iter:  make([]int32, n),
		queue: make([]int32, 0, n),
	}
}

// SetEps overrides the zero-slack threshold.
func (g *Graph) SetEps(eps float64) {
	if eps <= 0 {
		panic("maxflow: eps must be positive")
	}
	g.eps = eps
}

// Eps reports the zero-slack threshold in use.
func (g *Graph) Eps() float64 { return g.eps }

// NumNodes reports the node count.
func (g *Graph) NumNodes() int { return g.n }

// AddNode appends a fresh node and returns its index.
func (g *Graph) AddNode() int {
	g.n++
	g.head = append(g.head, nil)
	g.level = append(g.level, 0)
	g.iter = append(g.iter, 0)
	return g.n - 1
}

// AddEdge adds a directed edge from -> to with the given capacity and
// returns its ID. Negative capacities are rejected.
func (g *Graph) AddEdge(from, to int, capacity float64) EdgeID {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("maxflow: edge (%d,%d) out of range [0,%d)", from, to, g.n))
	}
	if capacity < 0 {
		panic(fmt.Sprintf("maxflow: negative capacity %g on edge (%d,%d)", capacity, from, to))
	}
	id := len(g.arcs)
	g.arcs = append(g.arcs, arc{to: to, cap: capacity, init: capacity})
	g.arcs = append(g.arcs, arc{to: from, cap: 0, init: 0})
	g.head[from] = append(g.head[from], int32(id))
	g.head[to] = append(g.head[to], int32(id+1))
	return EdgeID(id)
}

// SetCap changes the capacity of edge e and clears any flow on it.
// Call Reset (or re-run MaxFlow from scratch) afterwards; mixing stale flow
// on other edges with a changed capacity is not meaningful.
func (g *Graph) SetCap(e EdgeID, capacity float64) {
	if capacity < 0 {
		panic(fmt.Sprintf("maxflow: negative capacity %g", capacity))
	}
	g.arcs[e].cap = capacity
	g.arcs[e].init = capacity
	g.arcs[e^1].cap = 0
	g.arcs[e^1].init = 0
}

// Cap reports the original capacity of edge e.
func (g *Graph) Cap(e EdgeID) float64 { return g.arcs[e].init }

// Flow reports the flow currently routed through edge e.
func (g *Graph) Flow(e EdgeID) float64 { return g.arcs[e].init - g.arcs[e].cap }

// Residual reports the remaining capacity of edge e.
func (g *Graph) Residual(e EdgeID) float64 { return g.arcs[e].cap }

// Endpoints reports the (from, to) node pair of edge e.
func (g *Graph) Endpoints(e EdgeID) (from, to int) {
	return g.arcs[e^1].to, g.arcs[e].to
}

// Reset clears all flow, restoring every edge to its original capacity.
func (g *Graph) Reset() {
	for i := range g.arcs {
		g.arcs[i].cap = g.arcs[i].init
	}
}

// Reuse reinitializes the graph in place to n empty nodes, retaining the
// arc and adjacency storage from earlier builds so that rebuilding a
// similarly-shaped network performs no allocation. The epsilon is kept.
func (g *Graph) Reuse(n int) {
	if n < 0 {
		panic("maxflow: negative node count")
	}
	g.arcs = g.arcs[:0]
	if n <= cap(g.head) {
		// Reslicing from capacity revives the per-node adjacency slices of
		// earlier builds; truncate each so their storage is reused.
		g.head = g.head[:n]
		for i := range g.head {
			g.head[i] = g.head[i][:0]
		}
	} else {
		for i := range g.head {
			g.head[i] = g.head[i][:0]
		}
		for len(g.head) < n {
			g.head = append(g.head, nil)
		}
	}
	if cap(g.level) < n {
		g.level = make([]int32, n)
		g.iter = make([]int32, n)
	} else {
		g.level = g.level[:n]
		g.iter = g.iter[:n]
	}
	g.queue = g.queue[:0]
	g.n = n
}

package maxflow

import "math"

// BoundedEdge is a directed edge with a lower and upper bound on its flow.
type BoundedEdge struct {
	From, To     int
	Lower, Upper float64
}

// FeasibleFlow finds an s-t flow satisfying all edge bounds, if one exists.
// It uses the standard reduction: an s-t flow with lower bounds corresponds
// to a circulation in the graph augmented with a t->s edge of unbounded
// capacity, and a circulation with lower bounds reduces to a max-flow
// problem from a super-source to a super-sink after shifting each edge's
// range [l,u] to [0,u-l] and recording the imbalance l at its endpoints.
//
// On success it returns the per-edge flows (parallel to edges) and true.
// The returned flows satisfy Lower-eps <= f <= Upper+eps and conservation at
// every node other than s and t.
func FeasibleFlow(numNodes, s, t int, edges []BoundedEdge, eps float64) ([]float64, bool) {
	if eps <= 0 {
		eps = DefaultEps
	}
	// Nodes: 0..numNodes-1 original, then super-source SS and super-sink TT.
	ss := numNodes
	tt := numNodes + 1
	g := New(numNodes + 2)
	g.SetEps(eps)

	excess := make([]float64, numNodes)
	ids := make([]EdgeID, len(edges))
	for i, e := range edges {
		if e.Lower < -eps || e.Upper < e.Lower-eps {
			return nil, false
		}
		l := math.Max(e.Lower, 0)
		u := math.Max(e.Upper, l)
		ids[i] = g.AddEdge(e.From, e.To, u-l)
		excess[e.To] += l
		excess[e.From] -= l
	}
	// Close the circulation: allow return flow from t back to s.
	inf := 1.0
	for _, e := range edges {
		inf += e.Upper
	}
	back := g.AddEdge(t, s, inf)

	var need float64
	for v, ex := range excess {
		if ex > 0 {
			g.AddEdge(ss, v, ex)
			need += ex
		} else if ex < 0 {
			g.AddEdge(v, tt, -ex)
		}
	}
	got := g.MaxFlow(ss, tt)
	if got < need-eps*math.Max(1, need) {
		return nil, false
	}
	flows := make([]float64, len(edges))
	for i, e := range edges {
		flows[i] = g.Flow(ids[i]) + math.Max(e.Lower, 0)
	}
	_ = back
	return flows, true
}

// FeasibleCirculation finds a circulation (flow conserving at every node)
// satisfying all edge bounds, if one exists.
func FeasibleCirculation(numNodes int, edges []BoundedEdge, eps float64) ([]float64, bool) {
	if eps <= 0 {
		eps = DefaultEps
	}
	ss := numNodes
	tt := numNodes + 1
	g := New(numNodes + 2)
	g.SetEps(eps)

	excess := make([]float64, numNodes)
	ids := make([]EdgeID, len(edges))
	for i, e := range edges {
		if e.Lower < -eps || e.Upper < e.Lower-eps {
			return nil, false
		}
		l := math.Max(e.Lower, 0)
		u := math.Max(e.Upper, l)
		ids[i] = g.AddEdge(e.From, e.To, u-l)
		excess[e.To] += l
		excess[e.From] -= l
	}
	var need float64
	for v, ex := range excess {
		if ex > 0 {
			g.AddEdge(ss, v, ex)
			need += ex
		} else if ex < 0 {
			g.AddEdge(v, tt, -ex)
		}
	}
	got := g.MaxFlow(ss, tt)
	if got < need-eps*math.Max(1, need) {
		return nil, false
	}
	flows := make([]float64, len(edges))
	for i, e := range edges {
		flows[i] = g.Flow(ids[i]) + math.Max(e.Lower, 0)
	}
	return flows, true
}

package maxflow

import "math"

// MaxFlow computes the maximum s-t flow using Dinic's algorithm and returns
// its value. Flow state is left on the graph so that callers can inspect
// per-edge flows, extract min cuts, or continue augmenting after raising
// capacities (MaxFlow is incremental: calling it again after SetCap on some
// edges augments from the current state).
func (g *Graph) MaxFlow(s, t int) float64 {
	if s == t {
		panic("maxflow: source equals sink")
	}
	var total float64
	for g.bfsLevel(s, t) {
		for i := range g.iter {
			g.iter[i] = 0
		}
		for {
			f := g.dfsAugment(s, t, math.Inf(1))
			if f <= g.eps {
				break
			}
			total += f
		}
	}
	return total
}

// FlowValue reports the net flow currently leaving node s.
func (g *Graph) FlowValue(s int) float64 {
	var v float64
	for _, ai := range g.head[s] {
		a := g.arcs[ai]
		if ai%2 == 0 {
			v += a.init - a.cap
		} else {
			// Reverse arc stored at s: flow on it means flow into s.
			v -= a.cap
		}
	}
	return v
}

// bfsLevel builds the level graph; returns false when t is unreachable.
func (g *Graph) bfsLevel(s, t int) bool {
	for i := range g.level {
		g.level[i] = -1
	}
	g.queue = g.queue[:0]
	g.level[s] = 0
	g.queue = append(g.queue, int32(s))
	for qi := 0; qi < len(g.queue); qi++ {
		u := g.queue[qi]
		for _, ai := range g.head[u] {
			a := &g.arcs[ai]
			if a.cap > g.eps && g.level[a.to] < 0 {
				g.level[a.to] = g.level[u] + 1
				g.queue = append(g.queue, int32(a.to))
			}
		}
	}
	return g.level[t] >= 0
}

// dfsAugment sends blocking flow along level-increasing residual arcs.
func (g *Graph) dfsAugment(u, t int, limit float64) float64 {
	if u == t {
		return limit
	}
	for ; g.iter[u] < int32(len(g.head[u])); g.iter[u]++ {
		ai := g.head[u][g.iter[u]]
		a := &g.arcs[ai]
		if a.cap <= g.eps || g.level[a.to] != g.level[u]+1 {
			continue
		}
		pushed := g.dfsAugment(int(a.to), t, math.Min(limit, a.cap))
		if pushed > g.eps {
			a.cap -= pushed
			g.arcs[ai^1].cap += pushed
			return pushed
		}
	}
	g.level[u] = -1
	return 0
}

package maxflow

import (
	"math"
	"math/rand"
	"testing"
)

func TestDecomposeSinglePath(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 4)
	g.AddEdge(1, 2, 4)
	g.MaxFlow(0, 2)
	paths := g.Decompose(0, 2)
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(paths))
	}
	if !almostEq(paths[0].Amount, 4, 1e-9) {
		t.Fatalf("path amount %g, want 4", paths[0].Amount)
	}
	want := []int{0, 1, 2}
	for i, v := range want {
		if paths[0].Nodes[i] != v {
			t.Fatalf("path nodes %v, want %v", paths[0].Nodes, want)
		}
	}
}

func TestDecomposeSumsToFlowValue(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(10)
		g := buildRandomGraph(rng, n, n*3)
		flow := g.MaxFlow(0, n-1)
		paths := g.Decompose(0, n-1)
		var sum float64
		for _, p := range paths {
			if p.Nodes[0] != 0 || p.Nodes[len(p.Nodes)-1] != n-1 {
				t.Fatalf("path does not run source to sink: %v", p.Nodes)
			}
			if p.Amount <= 0 {
				t.Fatalf("non-positive path amount %g", p.Amount)
			}
			sum += p.Amount
		}
		if !almostEq(sum, flow, 1e-6*(1+flow)) {
			t.Fatalf("trial %d: paths sum %g, flow %g", trial, sum, flow)
		}
	}
}

func TestDecomposePathsRespectEdges(t *testing.T) {
	g := New(5)
	type pair struct{ u, v int }
	exists := map[pair]bool{}
	add := func(u, v int, c float64) {
		g.AddEdge(u, v, c)
		exists[pair{u, v}] = true
	}
	add(0, 1, 2)
	add(0, 2, 3)
	add(1, 3, 2)
	add(2, 3, 1)
	add(2, 4, 9)
	add(3, 4, 9)
	g.MaxFlow(0, 4)
	for _, p := range g.Decompose(0, 4) {
		for i := 0; i+1 < len(p.Nodes); i++ {
			if !exists[pair{p.Nodes[i], p.Nodes[i+1]}] {
				t.Fatalf("path uses non-existent edge (%d,%d)", p.Nodes[i], p.Nodes[i+1])
			}
		}
	}
}

func TestDecomposeZeroFlow(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5)
	// no edge to sink
	g.MaxFlow(0, 2)
	if paths := g.Decompose(0, 2); len(paths) != 0 {
		t.Fatalf("expected no paths, got %d", len(paths))
	}
}

func TestDecomposePreservesFlowState(t *testing.T) {
	g := New(3)
	e := g.AddEdge(0, 1, 4)
	g.AddEdge(1, 2, 4)
	g.MaxFlow(0, 2)
	before := g.Flow(e)
	g.Decompose(0, 2)
	if after := g.Flow(e); math.Abs(after-before) > 1e-12 {
		t.Fatalf("Decompose mutated flow: %g -> %g", before, after)
	}
}

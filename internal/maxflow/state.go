package maxflow

// State is a snapshot of the graph's full capacity and flow state, used to
// roll probes back cheaply. The AMF allocator's progressive filling only
// ever raises source capacities between probes of the same round, so it
// restores the last feasible state and augments incrementally instead of
// recomputing each max flow from scratch.
type State struct {
	caps  []float64
	inits []float64
}

// SaveState captures the current capacities and flows.
func (g *Graph) SaveState() *State {
	st := &State{}
	g.SaveStateTo(st)
	return st
}

// SaveStateTo captures the current capacities and flows into st, reusing
// its storage. The AMF allocator checkpoints after every feasible probe;
// saving in place keeps those snapshots off the allocation profile.
func (g *Graph) SaveStateTo(st *State) {
	m := len(g.arcs)
	if cap(st.caps) < m {
		st.caps = make([]float64, m)
		st.inits = make([]float64, m)
	} else {
		st.caps = st.caps[:m]
		st.inits = st.inits[:m]
	}
	for i := range g.arcs {
		st.caps[i] = g.arcs[i].cap
		st.inits[i] = g.arcs[i].init
	}
}

// RestoreState rolls the graph back to a snapshot taken on the same graph
// (same edge set).
func (g *Graph) RestoreState(st *State) {
	if len(st.caps) != len(g.arcs) {
		panic("maxflow: state from a different graph")
	}
	for i := range g.arcs {
		g.arcs[i].cap = st.caps[i]
		g.arcs[i].init = st.inits[i]
	}
}

// RaiseCap increases edge e's capacity to newCap, preserving the flow
// currently routed through it. Lowering below the current capacity panics:
// that could strand flow above capacity.
func (g *Graph) RaiseCap(e EdgeID, newCap float64) {
	a := &g.arcs[e]
	delta := newCap - a.init
	if delta < 0 {
		if delta > -1e-12*(1+a.init) {
			return // no-op within rounding
		}
		panic("maxflow: RaiseCap cannot lower capacity")
	}
	a.init = newCap
	a.cap += delta
}

package maxflow

import (
	"math"
	"math/rand"
	"testing"
)

func checkBounds(t *testing.T, edges []BoundedEdge, flows []float64) {
	t.Helper()
	for i, e := range edges {
		if flows[i] < e.Lower-1e-6 || flows[i] > e.Upper+1e-6 {
			t.Fatalf("edge %d flow %g outside [%g,%g]", i, flows[i], e.Lower, e.Upper)
		}
	}
}

func checkConservationAt(t *testing.T, n int, edges []BoundedEdge, flows []float64, exempt ...int) {
	t.Helper()
	net := make([]float64, n)
	for i, e := range edges {
		net[e.From] -= flows[i]
		net[e.To] += flows[i]
	}
	skip := map[int]bool{}
	for _, v := range exempt {
		skip[v] = true
	}
	for v, x := range net {
		if skip[v] {
			continue
		}
		if math.Abs(x) > 1e-6 {
			t.Fatalf("conservation violated at %d: net %g", v, x)
		}
	}
}

func TestFeasibleFlowSimple(t *testing.T) {
	edges := []BoundedEdge{
		{From: 0, To: 1, Lower: 2, Upper: 5},
		{From: 1, To: 2, Lower: 0, Upper: 5},
	}
	flows, ok := FeasibleFlow(3, 0, 2, edges, 0)
	if !ok {
		t.Fatal("expected feasible")
	}
	checkBounds(t, edges, flows)
	checkConservationAt(t, 3, edges, flows, 0, 2)
}

func TestFeasibleFlowInfeasibleBottleneck(t *testing.T) {
	// Lower bound 4 cannot pass through an upper bound 2.
	edges := []BoundedEdge{
		{From: 0, To: 1, Lower: 4, Upper: 5},
		{From: 1, To: 2, Lower: 0, Upper: 2},
	}
	if _, ok := FeasibleFlow(3, 0, 2, edges, 0); ok {
		t.Fatal("expected infeasible")
	}
}

func TestFeasibleFlowExactSourceValues(t *testing.T) {
	// Pin job aggregates with lower == upper on source edges; this is how
	// the JCT add-on holds AMF aggregates fixed.
	edges := []BoundedEdge{
		{From: 0, To: 1, Lower: 3, Upper: 3}, // job A aggregate = 3
		{From: 0, To: 2, Lower: 2, Upper: 2}, // job B aggregate = 2
		{From: 1, To: 3, Lower: 0, Upper: 2},
		{From: 1, To: 4, Lower: 0, Upper: 2},
		{From: 2, To: 3, Lower: 0, Upper: 3},
		{From: 3, To: 5, Lower: 0, Upper: 3},
		{From: 4, To: 5, Lower: 0, Upper: 2},
	}
	flows, ok := FeasibleFlow(6, 0, 5, edges, 0)
	if !ok {
		t.Fatal("expected feasible")
	}
	checkBounds(t, edges, flows)
	checkConservationAt(t, 6, edges, flows, 0, 5)
	if !almostEq(flows[0], 3, 1e-6) || !almostEq(flows[1], 2, 1e-6) {
		t.Fatalf("pinned aggregates not respected: %g %g", flows[0], flows[1])
	}
}

func TestFeasibleFlowPerEdgeLowerBounds(t *testing.T) {
	edges := []BoundedEdge{
		{From: 0, To: 1, Lower: 0, Upper: 10},
		{From: 1, To: 2, Lower: 3, Upper: 6},
		{From: 1, To: 3, Lower: 1, Upper: 6},
		{From: 2, To: 4, Lower: 0, Upper: 10},
		{From: 3, To: 4, Lower: 0, Upper: 10},
	}
	flows, ok := FeasibleFlow(5, 0, 4, edges, 0)
	if !ok {
		t.Fatal("expected feasible")
	}
	checkBounds(t, edges, flows)
	checkConservationAt(t, 5, edges, flows, 0, 4)
	if flows[1] < 3-1e-6 {
		t.Fatalf("lower bound not met: %g", flows[1])
	}
}

func TestFeasibleFlowInvalidBounds(t *testing.T) {
	edges := []BoundedEdge{{From: 0, To: 1, Lower: 5, Upper: 2}}
	if _, ok := FeasibleFlow(2, 0, 1, edges, 0); ok {
		t.Fatal("lower > upper must be infeasible")
	}
}

func TestFeasibleCirculationSimpleCycle(t *testing.T) {
	edges := []BoundedEdge{
		{From: 0, To: 1, Lower: 2, Upper: 4},
		{From: 1, To: 2, Lower: 0, Upper: 4},
		{From: 2, To: 0, Lower: 0, Upper: 4},
	}
	flows, ok := FeasibleCirculation(3, edges, 0)
	if !ok {
		t.Fatal("expected feasible circulation")
	}
	checkBounds(t, edges, flows)
	checkConservationAt(t, 3, edges, flows)
}

func TestFeasibleCirculationInfeasible(t *testing.T) {
	// The forced 3 units around the cycle cannot fit through upper bound 1.
	edges := []BoundedEdge{
		{From: 0, To: 1, Lower: 3, Upper: 4},
		{From: 1, To: 0, Lower: 0, Upper: 1},
	}
	if _, ok := FeasibleCirculation(2, edges, 0); ok {
		t.Fatal("expected infeasible circulation")
	}
}

func TestFeasibleFlowRandomizedAgainstRelaxation(t *testing.T) {
	// Property: if FeasibleFlow succeeds with lower bounds, dropping the
	// lower bounds must also be feasible and the bounded flows remain valid
	// flows of the relaxed network (sanity of the transformation).
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(6)
		var edges []BoundedEdge
		for i := 0; i < n*2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			up := rng.Float64() * 10
			lo := 0.0
			if rng.Intn(3) == 0 {
				lo = up * rng.Float64() * 0.5
			}
			edges = append(edges, BoundedEdge{From: u, To: v, Lower: lo, Upper: up})
		}
		flows, ok := FeasibleFlow(n, 0, n-1, edges, 0)
		if !ok {
			continue
		}
		checkBounds(t, edges, flows)
		checkConservationAt(t, n, edges, flows, 0, n-1)
	}
}

func TestFeasibleFlowZeroEdges(t *testing.T) {
	flows, ok := FeasibleFlow(2, 0, 1, nil, 0)
	if !ok || len(flows) != 0 {
		t.Fatalf("empty network should be trivially feasible, got ok=%v", ok)
	}
}

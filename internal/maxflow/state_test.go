package maxflow

import (
	"math/rand"
	"testing"
)

func TestSaveRestoreRoundTrip(t *testing.T) {
	g := New(4)
	e1 := g.AddEdge(0, 1, 5)
	e2 := g.AddEdge(1, 3, 5)
	g.MaxFlow(0, 3)
	st := g.SaveState()
	before := g.Flow(e1)

	// Disturb the graph, then restore.
	g.SetCap(e1, 100)
	g.Reset()
	g.MaxFlow(0, 3)
	g.RestoreState(st)
	if g.Flow(e1) != before || g.Cap(e1) != 5 {
		t.Fatalf("restore lost state: flow %g cap %g", g.Flow(e1), g.Cap(e1))
	}
	_ = e2
}

func TestRestoreStateWrongGraphPanics(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	st := g.SaveState()
	h := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mismatched state")
		}
	}()
	h.RestoreState(st)
}

func TestRaiseCapPreservesFlow(t *testing.T) {
	g := New(3)
	e := g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 10)
	g.MaxFlow(0, 2)
	if f := g.Flow(e); f != 2 {
		t.Fatalf("flow %g", f)
	}
	g.RaiseCap(e, 6)
	if f := g.Flow(e); f != 2 {
		t.Fatalf("RaiseCap changed flow: %g", f)
	}
	if c := g.Cap(e); c != 6 {
		t.Fatalf("cap %g", c)
	}
	// Incremental augmentation picks up the slack.
	extra := g.MaxFlow(0, 2)
	if extra != 4 {
		t.Fatalf("augmented %g, want 4", extra)
	}
}

func TestRaiseCapLowerPanics(t *testing.T) {
	g := New(2)
	e := g.AddEdge(0, 1, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic when lowering capacity")
		}
	}()
	g.RaiseCap(e, 1)
}

func TestRaiseCapTinyLoweringTolerated(t *testing.T) {
	g := New(2)
	e := g.AddEdge(0, 1, 5)
	// A rounding-level decrease is a no-op, not a panic.
	g.RaiseCap(e, 5-1e-14)
	if c := g.Cap(e); c != 5 {
		t.Fatalf("cap %g, want unchanged 5", c)
	}
}

func TestIncrementalEqualsFromScratch(t *testing.T) {
	// Property: augmenting from a restored feasible state reaches the same
	// max flow value as solving from zero with the raised capacities.
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(8)
		type edge struct {
			u, v int
			c    float64
		}
		var es []edge
		for i := 0; i < n*3; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				es = append(es, edge{u, v, rng.Float64() * 5})
			}
		}
		g := New(n)
		ids := make([]EdgeID, len(es))
		for i, e := range es {
			ids[i] = g.AddEdge(e.u, e.v, e.c)
		}
		base := g.MaxFlow(0, n-1)
		st := g.SaveState()

		// Raise a random subset of capacities.
		raises := map[int]float64{}
		for i := range es {
			if rng.Intn(3) == 0 {
				raises[i] = es[i].c + rng.Float64()*5
			}
		}
		// Incremental: restore + raise + augment.
		g.RestoreState(st)
		for i, c := range raises {
			g.RaiseCap(ids[i], c)
		}
		incr := base + g.MaxFlow(0, n-1)

		// From scratch.
		h := New(n)
		for i, e := range es {
			c := e.c
			if rc, ok := raises[i]; ok {
				c = rc
			}
			h.AddEdge(e.u, e.v, c)
		}
		fresh := h.MaxFlow(0, n-1)
		if !almostEq(incr, fresh, 1e-6*(1+fresh)) {
			t.Fatalf("trial %d: incremental %g vs fresh %g", trial, incr, fresh)
		}
	}
}

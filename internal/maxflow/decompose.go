package maxflow

// FlowPath is one path of a flow decomposition, carrying Amount units of
// flow along Nodes (which starts at the source and ends at the sink).
type FlowPath struct {
	Nodes  []int
	Amount float64
}

// Decompose splits the current flow into at most |E| source-to-sink paths
// plus flow cycles, discarding the cycles (they carry no s-t value). The
// graph's flow state is untouched; Decompose works on a snapshot.
//
// Decompose is intended for tests and trace output, not hot paths.
func (g *Graph) Decompose(s, t int) []FlowPath {
	flow := make([]float64, len(g.arcs)/2)
	for id := 0; id < len(g.arcs); id += 2 {
		flow[id/2] = g.arcs[id].init - g.arcs[id].cap
	}
	var paths []FlowPath
	for {
		path, pathArcs, ok := g.walk(s, t, flow)
		if !ok {
			break
		}
		amount := flow[pathArcs[0]/2]
		for _, ai := range pathArcs {
			if flow[ai/2] < amount {
				amount = flow[ai/2]
			}
		}
		if amount <= g.eps {
			break
		}
		for _, ai := range pathArcs {
			flow[ai/2] -= amount
		}
		paths = append(paths, FlowPath{Nodes: path, Amount: amount})
	}
	return paths
}

// walk follows positive-flow edges from s towards t, cancelling any flow
// cycle it encounters along the way. It returns the node path, the arc IDs
// traversed, and whether t was reached.
func (g *Graph) walk(s, t int, flow []float64) ([]int, []int, bool) {
	path := []int{s}
	var pathArcs []int
	pos := map[int]int{s: 0} // node -> index in path
	u := s
	for u != t {
		advanced := false
		for _, ai := range g.head[u] {
			if ai%2 != 0 || flow[ai/2] <= g.eps {
				continue
			}
			v := int(g.arcs[ai].to)
			if at, seen := pos[v]; seen {
				// Cancel the cycle path[at..] + (u->v) by its bottleneck.
				cyc := append(append([]int{}, pathArcs[at:]...), int(ai))
				minf := flow[cyc[0]/2]
				for _, ci := range cyc {
					if flow[ci/2] < minf {
						minf = flow[ci/2]
					}
				}
				for _, ci := range cyc {
					flow[ci/2] -= minf
				}
				// Rewind the walk to v and try again from there.
				for _, n := range path[at+1:] {
					delete(pos, n)
				}
				path = path[:at+1]
				pathArcs = pathArcs[:at]
				u = v
				advanced = true
				break
			}
			path = append(path, v)
			pathArcs = append(pathArcs, int(ai))
			pos[v] = len(path) - 1
			u = v
			advanced = true
			break
		}
		if !advanced {
			return nil, nil, false
		}
	}
	if len(pathArcs) == 0 {
		return nil, nil, false
	}
	return path, pathArcs, true
}

package maxflow

// SourceSide returns, after a MaxFlow call, the set of nodes reachable from s
// in the residual graph. These nodes form the source side of the (unique)
// minimal source-side minimum cut.
func (g *Graph) SourceSide(s int) []bool {
	reach := make([]bool, g.n)
	g.queue = g.queue[:0]
	reach[s] = true
	g.queue = append(g.queue, int32(s))
	for qi := 0; qi < len(g.queue); qi++ {
		u := g.queue[qi]
		for _, ai := range g.head[u] {
			a := &g.arcs[ai]
			if a.cap > g.eps && !reach[a.to] {
				reach[a.to] = true
				g.queue = append(g.queue, int32(a.to))
			}
		}
	}
	return reach
}

// SinkSide returns, after a MaxFlow call, the set of nodes that can reach t
// in the residual graph. These nodes form the sink side of the minimal
// sink-side minimum cut; its complement is the largest source side over all
// minimum cuts.
//
// In the AMF allocator this identifies bottlenecked jobs: a job node that
// cannot reach the sink in the residual graph cannot receive any additional
// allocation no matter how its own cap is raised.
func (g *Graph) SinkSide(t int) []bool {
	canReach := make([]bool, g.n)
	g.queue = g.queue[:0]
	canReach[t] = true
	g.queue = append(g.queue, int32(t))
	for qi := 0; qi < len(g.queue); qi++ {
		v := g.queue[qi]
		// u can reach t through arc u->v iff that arc has residual capacity.
		// Arc u->v with residual capacity appears in head[v] as its paired
		// reverse arc ai^1; the forward arc is arcs[ai^1].
		for _, ai := range g.head[v] {
			u := g.arcs[ai].to
			if canReach[u] {
				continue
			}
			if g.arcs[ai^1].cap > g.eps {
				canReach[u] = true
				g.queue = append(g.queue, int32(u))
			}
		}
	}
	return canReach
}

// CutEdges returns the IDs of the forward edges crossing from the given
// source side to its complement. After MaxFlow, with sourceSide from
// SourceSide, these edges form a minimum cut and are all saturated.
func (g *Graph) CutEdges(sourceSide []bool) []EdgeID {
	var cut []EdgeID
	for id := 0; id < len(g.arcs); id += 2 {
		from := g.arcs[id^1].to
		to := g.arcs[id].to
		if sourceSide[from] && !sourceSide[to] && g.arcs[id].init > 0 {
			cut = append(cut, EdgeID(id))
		}
	}
	return cut
}

// CutCapacity sums the original capacities of the edges crossing the cut.
func (g *Graph) CutCapacity(sourceSide []bool) float64 {
	var total float64
	for _, e := range g.CutEdges(sourceSide) {
		total += g.arcs[e].init
	}
	return total
}

package experiments

import (
	"strings"
	"testing"
)

// Determinism locks: identical options must reproduce byte-identical
// reports, and different seeds must actually change the workloads. This is
// what makes the numbers recorded in EXPERIMENTS.md reproducible claims
// rather than one-off observations.

func TestSuiteDeterministic(t *testing.T) {
	for _, id := range []string{"E1", "E2", "E4", "E5", "E6"} {
		a, err := Run(id, Options{Quick: true, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(id, Options{Quick: true, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if a.Render() != b.Render() {
			t.Fatalf("%s not deterministic", id)
		}
	}
}

func TestSeedChangesWorkloads(t *testing.T) {
	a, err := Run("E1", Options{Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("E1", Options{Quick: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() == b.Render() {
		t.Fatal("different seeds produced identical E1 reports")
	}
}

func TestMarkdownRendering(t *testing.T) {
	r, err := Run("E4", Options{Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	md := r.RenderMarkdown()
	for _, want := range []string{"## E4", "| property |", "| --- |", "*expected:"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

// Package experiments implements the full evaluation suite E1-E10 from
// DESIGN.md: every table and figure of the paper's evaluation,
// reconstructed per the abstract (see the source-text caveat in DESIGN.md).
// The same code backs the root-level benchmarks (bench_test.go) and the
// amf-bench CLI, so "the numbers in the README" and "what the harness
// prints" can never drift apart.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/table"
)

// Options parameterizes a suite run.
type Options struct {
	// Seed drives all workload generation (default 2019, the paper year).
	Seed uint64
	// Quick shrinks instance sizes and trial counts by roughly 4x for
	// smoke tests and -short test runs.
	Quick bool
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 2019
	}
	return o
}

// scaled reduces a size under Quick.
func (o Options) scaled(full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

// Result is the rendered outcome of one experiment.
type Result struct {
	ID     string
	Title  string
	Tables []*table.Table
	Series []*table.Series
	Notes  []string
}

// Render produces the full text report of the experiment.
func (r Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.Render())
		b.WriteString("\n")
	}
	for _, s := range r.Series {
		b.WriteString(s.Render())
		b.WriteString("\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// RenderMarkdown produces the experiment report as GitHub-flavoured
// markdown (used by amf-bench -format md to build EXPERIMENTS-style
// documents directly from a run).
func (r Result) RenderMarkdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.Markdown())
		b.WriteString("\n")
	}
	for _, s := range r.Series {
		b.WriteString(s.Markdown())
		b.WriteString("\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "*%s*\n\n", n)
	}
	return b.String()
}

// runner is one experiment entry.
type runner struct {
	id    string
	title string
	fn    func(Options) Result
}

func registry() []runner {
	return []runner{
		{"E1", "Balance of aggregate allocations vs. workload skew", E1AllocationBalance},
		{"E2", "CDF of aggregate allocations under high skew", E2AllocationCDF},
		{"E3", "Job completion time vs. skew (offline batch, fluid)", E3CompletionTime},
		{"E4", "Fairness properties of AMF (empirical verification)", E4Properties},
		{"E5", "Sharing-incentive violations: AMF vs. Enhanced AMF", E5SharingIncentive},
		{"E6", "Price of the sharing-incentive enhancement", E6EnhancedCost},
		{"E7", "Completion-time add-on benefit (static stretch)", E7AddonBenefit},
		{"E8", "Online simulation: JCT and utilization vs. load", E8OnlineSimulation},
		{"E9", "Allocator scalability: Newton vs. bisection", E9Scalability},
		{"E10", "Slot-granular vs. fluid cross-check", E10SlotFluidCrossCheck},
		{"X1", "Extension: multi-resource (DRF) aggregate fairness", X1MultiResource},
		{"X2", "Extension: re-allocation frequency ablation", X2ReallocAblation},
		{"X3", "Extension: locality relaxation (remote spillover)", X3LocalityRelaxation},
	}
}

// Entry describes one experiment without running it.
type Entry struct {
	ID    string
	Title string
}

// List returns the experiment IDs and titles in order.
func List() []Entry {
	rs := registry()
	out := make([]Entry, len(rs))
	for i, r := range rs {
		out[i] = Entry{ID: r.id, Title: r.title}
	}
	return out
}

// IDs lists the experiment identifiers in order.
func IDs() []string {
	rs := registry()
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.id
	}
	return out
}

// Run executes one experiment by ID.
func Run(id string, opt Options) (Result, error) {
	for _, r := range registry() {
		if strings.EqualFold(r.id, id) {
			return r.fn(opt), nil
		}
	}
	return Result{}, fmt.Errorf("experiments: unknown experiment %q (have %s)",
		id, strings.Join(IDs(), ", "))
}

// All executes the full suite in order.
func All(opt Options) []Result {
	rs := registry()
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = r.fn(opt)
	}
	return out
}

package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/workload"
)

// skewSweep is the x-axis shared by the skew experiments: Zipf alpha from
// uniform (0) to hotspot (2.5).
var skewSweep = []float64{0, 0.5, 1.0, 1.5, 2.0, 2.5}

// unservedStretch classifies a job as effectively unserved: a completion
// time more than 100x the best achievable with its aggregate means some
// work site received starvation-level rates. Stretch statistics are
// reported over the served set; the unserved fraction is its own series.
const unservedStretch = 100

// batchConfig builds the canonical balance workload at a given skew: every
// job spans a fixed number of sites and only alpha controls how much of its
// demand concentrates on its own hottest site, so the skew axis is not
// confounded by job-shape or size heterogeneity.
func batchConfig(opt Options, alpha float64, trial int) workload.Config {
	k := opt.scaled(4, 3)
	return workload.Config{
		NumJobs:        opt.scaled(100, 30),
		NumSites:       opt.scaled(20, 8),
		SiteCapacity:   1,
		Skew:           alpha,
		PerJobSkew:     true,
		SitesPerJobMin: k,
		SitesPerJobMax: k,
		MeanDemand:     3 * float64(opt.scaled(20, 8)) / float64(opt.scaled(100, 30)),
		SizeDist:       workload.SizeUniform,
		Seed:           opt.Seed + uint64(trial)*1000003 + uint64(alpha*1e6),
	}
}

// heavyConfig builds the stress workload: heavy-tailed sizes and variable
// per-job spread, the regime where demand caps and private sites appear —
// used by the sharing-incentive and add-on experiments.
func heavyConfig(opt Options, alpha float64, trial int) workload.Config {
	return workload.Config{
		NumJobs:      opt.scaled(100, 30),
		NumSites:     opt.scaled(20, 8),
		SiteCapacity: 1,
		Skew:         alpha,
		PerJobSkew:   true,
		MeanDemand:   3 * float64(opt.scaled(20, 8)) / float64(opt.scaled(100, 30)),
		SizeDist:     workload.SizeBoundedPareto,
		Seed:         opt.Seed + uint64(trial)*1000003 + uint64(alpha*1e6),
	}
}

// E1AllocationBalance reproduces the headline balance figure: Jain's
// fairness index and the min/max ratio of per-job aggregate allocations,
// swept over workload skew, for PS-MMF (baseline), AMF and Enhanced AMF.
// The paper's claim: AMF balances aggregates far better than the per-site
// baseline, and the gap widens with skew.
func E1AllocationBalance(opt Options) Result {
	opt = opt.withDefaults()
	trials := opt.scaled(5, 2)
	sv := core.NewSolver()

	jain := table.NewSeries("Fig E1a: Jain index of aggregate allocations",
		"alpha", "psmmf", "amf", "amf-enhanced")
	ratio := table.NewSeries("Fig E1b: min/max ratio of aggregate allocations",
		"alpha", "psmmf", "amf", "amf-enhanced")

	for _, alpha := range skewSweep {
		var jainAcc, ratioAcc [3]stats.Summary
		for trial := 0; trial < trials; trial++ {
			in := workload.Generate(batchConfig(opt, alpha, trial))
			ps := core.PerSiteMMF(in).Aggregates()
			amf, err := sv.AMF(in)
			if err != nil {
				panic(err)
			}
			enh, err := sv.EnhancedAMF(in)
			if err != nil {
				panic(err)
			}
			for i, agg := range [][]float64{ps, amf.Aggregates(), enh.Aggregates()} {
				jainAcc[i].Add(fairness.JainIndex(agg))
				ratioAcc[i].Add(fairness.MinMaxRatio(agg))
			}
		}
		jain.AddPoint(alpha, jainAcc[0].Mean(), jainAcc[1].Mean(), jainAcc[2].Mean())
		ratio.AddPoint(alpha, ratioAcc[0].Mean(), ratioAcc[1].Mean(), ratioAcc[2].Mean())
	}
	return Result{
		ID:     "E1",
		Title:  "Balance of aggregate allocations vs. workload skew",
		Series: []*table.Series{jain, ratio},
		Notes: []string{
			fmt.Sprintf("%d jobs, %d sites, %d trials per point, uniform sizes, fixed per-job spread",
				opt.scaled(100, 30), opt.scaled(20, 8), trials),
			"expected shape: AMF's Jain index stays near PS-MMF at alpha=0 and dominates it increasingly as skew grows",
		},
	}
}

// E2AllocationCDF reproduces the allocation-distribution figure at high
// skew: the CDF of per-job aggregates under each policy. PS-MMF produces a
// long tail of starved jobs; AMF compresses the distribution.
func E2AllocationCDF(opt Options) Result {
	opt = opt.withDefaults()
	const alpha = 1.5
	sv := core.NewSolver()
	in := workload.Generate(heavyConfig(opt, alpha, 0))
	ps := core.PerSiteMMF(in).Aggregates()
	amfA, err := sv.AMF(in)
	if err != nil {
		panic(err)
	}
	amf := amfA.Aggregates()

	s := table.NewSeries("Fig E2: aggregate allocation at each CDF fraction (alpha=1.5)",
		"fraction", "psmmf", "amf")
	const levels = 10
	psQ := stats.SampleCDF(ps, levels)
	amfQ := stats.SampleCDF(amf, levels)
	for i := 0; i < levels; i++ {
		s.AddPoint(psQ[i].Fraction, psQ[i].Value, amfQ[i].Value)
	}
	return Result{
		ID:     "E2",
		Title:  "CDF of aggregate allocations under high skew",
		Series: []*table.Series{s},
		Notes: []string{
			"expected shape: AMF lifts the lower CDF fractions (no starved tail) while the upper fractions shrink toward the fair level",
		},
	}
}

// E4Properties verifies the paper's property claims empirically: Pareto
// efficiency, aggregate max-min fairness, envy-freeness and
// strategy-proofness hold for AMF on randomized instances; sharing
// incentive does NOT (witnessed by the crafted counterexample), and
// Enhanced AMF repairs it.
func E4Properties(opt Options) Result {
	opt = opt.withDefaults()
	sv := core.NewSolver()
	trials := opt.scaled(40, 10)
	rng := workloadRNG(opt.Seed, "e4")

	var paretoBad, maxminBad, envyBad int
	for trial := 0; trial < trials; trial++ {
		in := workload.Generate(workload.Config{
			NumJobs:  2 + rng.Intn(10),
			NumSites: 1 + rng.Intn(6),
			Skew:     rng.Float64() * 2,
			Seed:     opt.Seed + 31*uint64(trial),
		})
		a, err := sv.AMF(in)
		if err != nil {
			panic(err)
		}
		if !core.IsParetoEfficient(a, 1e-5*in.Scale()*float64(in.NumJobs()+1)) {
			paretoBad++
		}
		if _, bad := core.AggregateMaxMinViolation(a, 1e-4*in.Scale()); bad {
			maxminBad++
		}
		if len(core.EnvyPairs(a, 1e-5*in.Scale())) > 0 {
			envyBad++
		}
	}

	// Strategy-proofness probe on smaller instances (each probe solves
	// many misreported variants).
	spTrials := opt.scaled(6, 2)
	maxGain := 0.0
	for trial := 0; trial < spTrials; trial++ {
		in := workload.Generate(workload.Config{
			NumJobs:  2 + rng.Intn(4),
			NumSites: 1 + rng.Intn(3),
			Skew:     rng.Float64() * 2,
			Seed:     opt.Seed + 37*uint64(trial),
		})
		outs, err := core.ProbeStrategyProofness(in,
			func(in *core.Instance) (*core.Allocation, error) { return sv.AMF(in) },
			opt.scaled(8, 3), rng)
		if err != nil {
			panic(err)
		}
		for _, o := range outs {
			maxGain = math.Max(maxGain, o.Gain)
		}
	}

	// Sharing incentive: the crafted counterexample.
	si := counterexampleSI(sv)

	t := table.New("Table E4: fairness properties of AMF (empirical)",
		"property", "instances", "violations", "detail")
	t.AddRow("pareto efficiency", trials, paretoBad, "total == max-flow total")
	t.AddRow("aggregate max-min fairness", trials, maxminBad, "perturbation certificate")
	t.AddRow("envy-freeness", trials, envyBad, "demand-truncated bundle swap")
	t.AddRow("strategy-proofness", spTrials, boolViol(maxGain > 1e-4),
		fmt.Sprintf("max useful gain over misreports: %.2g", maxGain))
	t.AddRow("sharing incentive", 1, boolViol(si.amfViolations > 0),
		fmt.Sprintf("counterexample: AMF shortfall %.4g; enhanced AMF shortfall %.4g",
			si.amfShortfall, si.enhShortfall))
	return Result{
		ID:     "E4",
		Title:  "Fairness properties of AMF (empirical verification)",
		Tables: []*table.Table{t},
		Notes: []string{
			"expected: zero violations for the first four rows; sharing incentive violated by design (the paper's negative result)",
		},
	}
}

func boolViol(v bool) int {
	if v {
		return 1
	}
	return 0
}

type siOutcome struct {
	amfViolations int
	amfShortfall  float64
	enhShortfall  float64
}

// counterexampleSI runs the crafted sharing-incentive counterexample from
// the test suite: a job with a private demand-capped site and a small
// claim on a contested site loses its contested-site entitlement under
// plain AMF.
func counterexampleSI(sv *core.Solver) siOutcome {
	in := &core.Instance{
		SiteCapacity: []float64{10, 0.2},
		Demand: [][]float64{
			{0.9, 1},
			{0, 1},
			{0, 1},
		},
	}
	a, err := sv.AMF(in)
	if err != nil {
		panic(err)
	}
	jobs, gaps := core.SharingIncentiveViolations(a, 1e-6)
	out := siOutcome{amfViolations: len(jobs)}
	for _, g := range gaps {
		out.amfShortfall = math.Max(out.amfShortfall, g)
	}
	e, err := sv.EnhancedAMF(in)
	if err != nil {
		panic(err)
	}
	_, egaps := core.SharingIncentiveViolations(e, 1e-6)
	for _, g := range egaps {
		out.enhShortfall = math.Max(out.enhShortfall, g)
	}
	return out
}

// E5SharingIncentive quantifies the paper's negative result on the
// endowment stress family (private demand-capped sites + contested shared
// sites): as contention at the shared sites grows, plain AMF confiscates
// the endowed jobs' shared-site entitlements, pushing them below their
// isolated equal shares. Enhanced AMF eliminates every violation; the
// per-site baseline never violates (per-site water-filling grants each job
// at least the per-site equal split by construction). A companion check on
// the random skew-sweep workloads records how rarely violations arise
// organically.
func E5SharingIncentive(opt Options) Result {
	opt = opt.withDefaults()
	trials := opt.scaled(5, 2)
	sv := core.NewSolver()

	frac := table.NewSeries("Fig E5a: fraction of endowed jobs below their isolated equal share",
		"poor-jobs-per-shared-site", "psmmf", "amf", "amf-enhanced")
	shortfall := table.NewSeries("Fig E5b: mean shortfall of violating endowed jobs (AMF)",
		"poor-jobs-per-shared-site", "amf")
	for _, poor := range []int{0, 1, 2, 4, 8} {
		var fr [3]stats.Summary
		var sf stats.Summary
		for trial := 0; trial < trials; trial++ {
			in := workload.EndowmentInstance(workload.EndowmentConfig{
				NumEndowed:  opt.scaled(10, 4),
				NumShared:   opt.scaled(5, 3),
				PoorPerSite: poor,
				Jitter:      0.2,
				Seed:        opt.Seed + uint64(trial)*131 + uint64(poor),
			})
			nEndowed := float64(opt.scaled(10, 4))
			ps := core.PerSiteMMF(in)
			amf, err := sv.AMF(in)
			if err != nil {
				panic(err)
			}
			enh, err := sv.EnhancedAMF(in)
			if err != nil {
				panic(err)
			}
			tol := 1e-6 * in.Scale()
			for i, a := range []*core.Allocation{ps, amf, enh} {
				jobs, gaps := core.SharingIncentiveViolations(a, tol)
				fr[i].Add(float64(len(jobs)) / nEndowed)
				if i == 1 {
					var g stats.Summary
					g.AddAll(gaps)
					sf.Add(g.Mean())
				}
			}
		}
		frac.AddPoint(float64(poor), fr[0].Mean(), fr[1].Mean(), fr[2].Mean())
		shortfall.AddPoint(float64(poor), sf.Mean())
	}

	// Organic violations on the random skew sweep (a near-zero baseline).
	organic := table.NewSeries("Fig E5c: organic violation fraction on random workloads (AMF)",
		"alpha", "amf")
	for _, alpha := range skewSweep {
		var fr stats.Summary
		for trial := 0; trial < trials; trial++ {
			in := workload.Generate(heavyConfig(opt, alpha, trial))
			amf, err := sv.AMF(in)
			if err != nil {
				panic(err)
			}
			jobs, _ := core.SharingIncentiveViolations(amf, 1e-6*in.Scale())
			fr.Add(float64(len(jobs)) / float64(in.NumJobs()))
		}
		organic.AddPoint(alpha, fr.Mean())
	}
	return Result{
		ID:     "E5",
		Title:  "Sharing-incentive violations: AMF vs. Enhanced AMF",
		Series: []*table.Series{frac, shortfall, organic},
		Notes: []string{
			"endowment family: each endowed job owns a demand-capped private site plus 1-unit claims at scarce shared sites crowded by poor jobs",
			"expected: AMF violation fraction jumps to ~1 once any poor jobs contest the shared sites; enhanced AMF and PS-MMF stay at 0; organic violations on random workloads are rare",
		},
	}
}

// E6EnhancedCost measures what the sharing-incentive floors cost on the
// endowment family, where they actually bind: the floors protect the
// endowed jobs' entitlements by taking shared capacity away from the
// poorest jobs. Reported per contention level: the minimum aggregate (the
// poorest job — lower under Enhanced), the mean endowed aggregate (higher
// under Enhanced), whether AMF leximin-dominates, and utilization
// (identical: both are Pareto efficient).
func E6EnhancedCost(opt Options) Result {
	opt = opt.withDefaults()
	trials := opt.scaled(5, 2)
	sv := core.NewSolver()
	minAgg := table.NewSeries("Fig E6a: minimum aggregate allocation (the poorest job)",
		"poor-jobs-per-shared-site", "amf", "amf-enhanced")
	endowedAgg := table.NewSeries("Fig E6b: mean aggregate of endowed jobs",
		"poor-jobs-per-shared-site", "amf", "amf-enhanced")
	util := table.NewSeries("Fig E6c: cluster utilization",
		"poor-jobs-per-shared-site", "amf", "amf-enhanced")
	var amfLeximinWins, comparisons int
	for _, poor := range []int{1, 2, 4, 8} {
		nEndowed := opt.scaled(10, 4)
		var mn, en, ut [2]stats.Summary
		for trial := 0; trial < trials; trial++ {
			in := workload.EndowmentInstance(workload.EndowmentConfig{
				NumEndowed:  nEndowed,
				NumShared:   opt.scaled(5, 3),
				PoorPerSite: poor,
				Jitter:      0.2,
				Seed:        opt.Seed + uint64(trial)*137 + uint64(poor),
			})
			amf, err := sv.AMF(in)
			if err != nil {
				panic(err)
			}
			enh, err := sv.EnhancedAMF(in)
			if err != nil {
				panic(err)
			}
			for i, a := range []*core.Allocation{amf, enh} {
				agg := a.Aggregates()
				var s stats.Summary
				s.AddAll(agg)
				mn[i].Add(s.Min())
				var e stats.Summary
				e.AddAll(agg[:nEndowed])
				en[i].Add(e.Mean())
				ut[i].Add(a.Utilization())
			}
			comparisons++
			if fairness.LexLess(enh.Aggregates(), amf.Aggregates(), 1e-9) {
				amfLeximinWins++
			}
		}
		minAgg.AddPoint(float64(poor), mn[0].Mean(), mn[1].Mean())
		endowedAgg.AddPoint(float64(poor), en[0].Mean(), en[1].Mean())
		util.AddPoint(float64(poor), ut[0].Mean(), ut[1].Mean())
	}
	return Result{
		ID:     "E6",
		Title:  "Price of the sharing-incentive enhancement",
		Series: []*table.Series{minAgg, endowedAgg, util},
		Notes: []string{
			fmt.Sprintf("AMF leximin-dominates Enhanced AMF in %d of %d instances (the floors are exactly a leximin sacrifice)",
				amfLeximinWins, comparisons),
			"expected: the enhancement lowers the poorest job's aggregate (the price) while restoring the endowed jobs' entitlements; utilization unchanged",
		},
	}
}

// E7AddonBenefit measures the completion-time add-on statically: the
// stretch distribution of the AMF witness split vs. the optimized split.
func E7AddonBenefit(opt Options) Result {
	opt = opt.withDefaults()
	trials := opt.scaled(4, 2)
	sv := core.NewSolver()
	mean := table.NewSeries("Fig E7a: mean completion-time stretch",
		"alpha", "amf-witness", "amf+jct")
	p95 := table.NewSeries("Fig E7b: p95 completion-time stretch",
		"alpha", "amf-witness", "amf+jct")
	unserved := table.NewSeries("Fig E7c: fraction of jobs not served within 100x slowdown",
		"alpha", "amf-witness", "amf+jct")
	for _, alpha := range skewSweep {
		var base, optd []float64
		var infBase, infOpt, total int
		for trial := 0; trial < trials; trial++ {
			cfg := heavyConfig(opt, alpha, trial)
			cfg.NumJobs = opt.scaled(60, 20)
			cfg.MeanDemand = 3 * float64(cfg.NumSites) / float64(cfg.NumJobs)
			in := workload.Generate(cfg)
			w, err := sv.AMF(in)
			if err != nil {
				panic(err)
			}
			o, err := sv.OptimizeJCT(w)
			if err != nil {
				panic(err)
			}
			for j := 0; j < in.NumJobs(); j++ {
				total++
				bs, os := w.Stretch(j), o.Stretch(j)
				// Stretches beyond unservedStretch mean a work site got (at
				// most) numerical dust: the job is effectively unserved
				// there under this static split.
				if bs > unservedStretch {
					infBase++
				} else {
					base = append(base, bs)
				}
				if os > unservedStretch {
					infOpt++
				} else {
					optd = append(optd, os)
				}
			}
		}
		mean.AddPoint(alpha, stats.Mean(base), stats.Mean(optd))
		p95.AddPoint(alpha, stats.Percentile(base, 95), stats.Percentile(optd, 95))
		unserved.AddPoint(alpha, float64(infBase)/float64(total), float64(infOpt)/float64(total))
	}
	return Result{
		ID:     "E7",
		Title:  "Completion-time add-on benefit (static stretch)",
		Series: []*table.Series{mean, p95, unserved},
		Notes: []string{
			"stretch = fluid completion time / best completion time achievable with the same aggregate; 1.0 is optimal",
			"expected: the add-on pushes mean stretch to ~1 and removes nearly all unserved work sites the raw max-flow witness leaves behind",
		},
	}
}

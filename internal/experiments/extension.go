package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/multires"
	"repro/internal/randx"
	"repro/internal/sim"
	"repro/internal/spill"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/workload"
)

// X1MultiResource is an extension beyond the paper (marked as such in
// DESIGN.md): aggregate max-min fairness generalized to multiple resource
// types via dominant shares (DRF). It compares the balance of aggregate
// dominant shares under Aggregate DRF vs. the per-site DRF baseline as
// per-job placement skew grows — the multi-resource analogue of E1.
func X1MultiResource(opt Options) Result {
	opt = opt.withDefaults()
	trials := opt.scaled(3, 1)
	numJobs := opt.scaled(12, 6)
	numSites := opt.scaled(4, 3)
	var sv multires.Solver

	jain := table.NewSeries("Fig X1a: Jain index of aggregate dominant shares",
		"alpha", "persite-drf", "aggregate-drf")
	ratio := table.NewSeries("Fig X1b: min/max ratio of aggregate dominant shares",
		"alpha", "persite-drf", "aggregate-drf")
	for _, alpha := range []float64{0, 1, 2} {
		var jn, rt [2]stats.Summary
		for trial := 0; trial < trials; trial++ {
			in := mrWorkload(opt.Seed+uint64(trial)*101+uint64(alpha*1e3),
				numJobs, numSites, alpha)
			ps, err := multires.PerSiteDRF(in)
			if err != nil {
				panic(fmt.Sprintf("X1 persite: %v", err))
			}
			agg, err := sv.AggregateDRF(in)
			if err != nil {
				panic(fmt.Sprintf("X1 aggregate: %v", err))
			}
			for i, a := range []*multires.Allocation{ps, agg} {
				ds := a.DominantShares()
				jn[i].Add(fairness.JainIndex(ds))
				rt[i].Add(fairness.MinMaxRatio(ds))
			}
		}
		jain.AddPoint(alpha, jn[0].Mean(), jn[1].Mean())
		ratio.AddPoint(alpha, rt[0].Mean(), rt[1].Mean())
	}
	return Result{
		ID:     "X1",
		Title:  "Extension: multi-resource (DRF) aggregate fairness",
		Series: []*table.Series{jain, ratio},
		Notes: []string{
			fmt.Sprintf("%d jobs, %d sites, 2 resources (CPU/memory), mixed task shapes, %d trials per point",
				numJobs, numSites, trials),
			"extension beyond the paper's single-resource model; LP feasibility oracle (internal/lp)",
			"expected shape: mirrors E1 — aggregate DRF balances dominant shares, the per-site baseline degrades with placement skew",
		},
	}
}

// X2ReallocAblation is the staleness ablation called out in DESIGN.md §8:
// how much of AMF's completion-time advantage depends on event-driven
// re-allocation? The fluid simulator runs the same stream with allocation
// decisions batched on progressively coarser periodic grids.
func X2ReallocAblation(opt Options) Result {
	opt = opt.withDefaults()
	numJobs := opt.scaled(80, 30)
	numSites := opt.scaled(5, 3)
	caps := make([]float64, numSites)
	var totalCap float64
	for s := range caps {
		caps[s] = 4
		totalCap += 4
	}
	base := workload.StreamConfig{
		NumSites:         numSites,
		NumJobs:          numJobs,
		Skew:             1.2,
		PerJobSkew:       true,
		TasksPerJobMean:  6,
		TaskDurationMean: 1,
		SitesPerJobMax:   3,
		Seed:             opt.Seed + 13,
	}
	base.Lambda = workload.LambdaForLoad(base, totalCap, 0.8)
	jobs := workload.GenerateStream(base)

	s := table.NewSeries("Fig X2: mean JCT and allocator invocations vs. re-allocation interval",
		"interval", "mean-jct", "p95-jct", "solves")
	for _, interval := range []float64{0, 0.5, 1, 2, 5, 10} {
		res, err := sim.RunFluid(sim.FluidConfig{
			SiteCapacity:    caps,
			Policy:          sim.PolicyAMF,
			Solver:          simSolver(),
			ReallocInterval: interval,
			MaxEvents:       100000,
		}, jobs)
		if err != nil {
			panic(fmt.Sprintf("X2 interval=%g: %v", interval, err))
		}
		s.AddPoint(interval, sim.MeanJCT(res.Jobs),
			sim.PercentileJCT(res.Jobs, 95), float64(res.Reallocations))
	}
	return Result{
		ID:     "X2",
		Title:  "Extension: re-allocation frequency ablation",
		Series: []*table.Series{s},
		Notes: []string{
			"interval 0 = event-driven (re-solve at every arrival/completion)",
			"expected: JCT degrades gracefully as decisions go stale; the allocator is cheap enough (E9) that event-driven is practical",
		},
	}
}

// X3LocalityRelaxation quantifies the hard-pinning assumption: the paper's
// model forbids running work away from its data. With remote slots at
// efficiency gamma, three disciplines are compared on locality-discounted
// ("useful") rates:
//
//   - amf-pinned: the paper's model (remote slots unused) — flat in gamma;
//   - amf-oblivious: plain AMF on the demand-relaxed instance — a pitfall:
//     it equalizes raw resource units and may serve jobs through worthless
//     remote slots, collapsing useful rates at small gamma;
//   - useful-maxmin: progressive filling directly on useful rates
//     (internal/spill), which interpolates cleanly between the paper's
//     model (gamma=0) and full fluidity (gamma=1).
func X3LocalityRelaxation(opt Options) Result {
	opt = opt.withDefaults()
	trials := opt.scaled(3, 2)
	numJobs := opt.scaled(12, 6)
	numSites := opt.scaled(4, 3)
	sv := core.NewSolver()
	minRate := table.NewSeries("Fig X3a: minimum useful rate (worst-off job)",
		"gamma", "amf-pinned", "amf-oblivious", "useful-maxmin")
	meanRate := table.NewSeries("Fig X3b: mean useful rate",
		"gamma", "amf-pinned", "amf-oblivious", "useful-maxmin")
	for _, gamma := range []float64{0, 0.25, 0.5, 0.75, 1} {
		var mn, me [3]stats.Summary
		for trial := 0; trial < trials; trial++ {
			// Narrow per-job spread and moderate oversubscription leave
			// some sites idle while others are crowded — the regime where
			// remote execution has capacity to borrow.
			in := workload.Generate(workload.Config{
				NumJobs:        numJobs,
				NumSites:       numSites,
				SiteCapacity:   1,
				Skew:           2,
				PerJobSkew:     true,
				SitesPerJobMin: 1,
				SitesPerJobMax: 2,
				MeanDemand:     1.5 * float64(numSites) / float64(numJobs),
				SizeDist:       workload.SizeBoundedPareto,
				Seed:           opt.Seed + uint64(trial)*1009,
			})
			remote := 2 * float64(numSites) / float64(numJobs)
			sp := core.Spillover{RemotePerSite: remote, Gamma: gamma}
			spCfg := spill.Config{RemotePerSite: remote, Gamma: gamma}

			pinned, err := sv.AMF(in)
			if err != nil {
				panic(err)
			}
			oblivious, err := sv.AMF(sp.Apply(in))
			if err != nil {
				panic(err)
			}
			aware, err := spCfg.MaxMinUseful(in)
			if err != nil {
				panic(err)
			}
			all := [][]float64{
				core.Spillover{Gamma: 1}.UsefulRates(in, pinned),
				sp.UsefulRates(in, oblivious),
				aware.Useful,
			}
			for i, rates := range all {
				var s stats.Summary
				s.AddAll(rates)
				mn[i].Add(s.Min())
				me[i].Add(s.Mean())
			}
		}
		minRate.AddPoint(gamma, mn[0].Mean(), mn[1].Mean(), mn[2].Mean())
		meanRate.AddPoint(gamma, me[0].Mean(), me[1].Mean(), me[2].Mean())
	}
	return Result{
		ID:     "X3",
		Title:  "Extension: locality relaxation (remote spillover)",
		Series: []*table.Series{minRate, meanRate},
		Notes: []string{
			"remote budget: one fair-share of extra slots per site per job; useful rate discounts remote units by gamma",
			"expected: useful-maxmin dominates the pinned model at every gamma and meets it at gamma=0; the oblivious relaxation collapses at small gamma (it cannot see the discount)",
		},
	}
}

// mrWorkload generates a 2-resource instance: half the jobs CPU-heavy,
// half memory-heavy, each job's task slots concentrated on its own hot
// sites with Zipf(alpha).
func mrWorkload(seed uint64, n, m int, alpha float64) *multires.Instance {
	rng := randx.Stream(seed, "x1")
	in := &multires.Instance{
		SiteCapacity: make([][]float64, m),
		TaskUse:      make([][]float64, n),
		TaskCount:    make([][]float64, n),
	}
	for s := 0; s < m; s++ {
		in.SiteCapacity[s] = []float64{16, 32}
	}
	zipf := workload.ZipfWeights(m, alpha)
	for j := 0; j < n; j++ {
		if j%2 == 0 {
			in.TaskUse[j] = []float64{1 + rng.Float64(), 1 + rng.Float64()*2} // CPU-heavy
		} else {
			in.TaskUse[j] = []float64{0.5 + rng.Float64()*0.5, 3 + rng.Float64()*3} // memory-heavy
		}
		in.TaskCount[j] = make([]float64, m)
		// Total slots sized so total demand oversubscribes the cluster.
		total := float64(8 + rng.Intn(16))
		order := rng.Perm(m)
		for i, s := range order {
			in.TaskCount[j][s] = total * zipf[i]
		}
	}
	return in
}

package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/workload"
)

func workloadRNG(seed uint64, name string) *rand.Rand {
	return randx.Stream(seed, "experiments/"+name)
}

// simSolver is the solver used inside the event loops: the full JCT
// refinement pass would multiply flow computations per event for little
// benefit in the dynamic setting.
func simSolver() *core.Solver {
	return &core.Solver{SkipJCTRefine: true}
}

// E3CompletionTime reproduces the batch completion-time figure: all jobs
// arrive at time zero, the fluid simulator executes them under each
// policy, and we report mean and p95 JCT across skew levels.
func E3CompletionTime(opt Options) Result {
	opt = opt.withDefaults()
	trials := opt.scaled(3, 1)
	numJobs := opt.scaled(40, 15)
	numSites := opt.scaled(8, 4)
	caps := make([]float64, numSites)
	for s := range caps {
		caps[s] = 4
	}
	policies := []sim.Policy{sim.PolicyPSMMF, sim.PolicyAMF, sim.PolicyAMFJCT}

	mean := table.NewSeries("Fig E3a: mean job completion time (batch)",
		"alpha", "psmmf", "amf", "amf+jct")
	p95 := table.NewSeries("Fig E3b: p95 job completion time (batch)",
		"alpha", "psmmf", "amf", "amf+jct")
	for _, alpha := range skewSweep {
		var ms, ps [3]stats.Summary
		for trial := 0; trial < trials; trial++ {
			jobs := workload.GenerateStream(workload.StreamConfig{
				NumSites:         numSites,
				Lambda:           0, // batch
				NumJobs:          numJobs,
				Skew:             alpha,
				PerJobSkew:       true,
				TasksPerJobMean:  8,
				TaskDurationMean: 1,
				SitesPerJobMax:   4,
				Seed:             opt.Seed + uint64(trial)*7919 + uint64(alpha*1e6),
			})
			for i, p := range policies {
				res, err := sim.RunFluid(sim.FluidConfig{
					SiteCapacity: caps, Policy: p, Solver: simSolver(),
				}, jobs)
				if err != nil {
					panic(fmt.Sprintf("E3 %s alpha=%g: %v", p, alpha, err))
				}
				ms[i].Add(sim.MeanJCT(res.Jobs))
				ps[i].Add(sim.PercentileJCT(res.Jobs, 95))
			}
		}
		mean.AddPoint(alpha, ms[0].Mean(), ms[1].Mean(), ms[2].Mean())
		p95.AddPoint(alpha, ps[0].Mean(), ps[1].Mean(), ps[2].Mean())
	}
	return Result{
		ID:     "E3",
		Title:  "Job completion time vs. skew (offline batch, fluid)",
		Series: []*table.Series{mean, p95},
		Notes: []string{
			fmt.Sprintf("%d jobs, %d sites (capacity 4 each), %d trials per point", numJobs, numSites, trials),
			"expected: AMF (and AMF+JCT) beat PS-MMF increasingly as skew grows, mainly in the tail (p95)",
		},
	}
}

// E8OnlineSimulation reproduces the online figure: Poisson arrivals at
// offered loads 0.5/0.7/0.9, fluid execution, mean/p95 JCT and utilization
// per policy.
func E8OnlineSimulation(opt Options) Result {
	opt = opt.withDefaults()
	numJobs := opt.scaled(120, 40)
	numSites := opt.scaled(6, 4)
	caps := make([]float64, numSites)
	var totalCap float64
	for s := range caps {
		caps[s] = 4
		totalCap += caps[s]
	}
	policies := []sim.Policy{sim.PolicyPSMMF, sim.PolicyAMF, sim.PolicyAMFJCT, sim.PolicyEnhancedAMF}

	t := table.New("Table E8: online simulation (Poisson arrivals, fluid execution)",
		"load", "policy", "mean JCT", "p95 JCT", "utilization", "avg fairness")
	for _, rho := range []float64{0.5, 0.7, 0.9} {
		base := workload.StreamConfig{
			NumSites:         numSites,
			NumJobs:          numJobs,
			Skew:             1.2,
			PerJobSkew:       true,
			TasksPerJobMean:  6,
			TaskDurationMean: 1,
			SitesPerJobMax:   3,
			Seed:             opt.Seed + uint64(rho*1000),
		}
		base.Lambda = workload.LambdaForLoad(base, totalCap, rho)
		jobs := workload.GenerateStream(base)
		for _, p := range policies {
			res, err := sim.RunFluid(sim.FluidConfig{
				SiteCapacity: caps, Policy: p, Solver: simSolver(),
			}, jobs)
			if err != nil {
				panic(fmt.Sprintf("E8 %s rho=%g: %v", p, rho, err))
			}
			t.AddRow(rho, p.String(), sim.MeanJCT(res.Jobs),
				sim.PercentileJCT(res.Jobs, 95), res.Utilization, res.FairnessAvg)
		}
	}
	return Result{
		ID:     "E8",
		Title:  "Online simulation: JCT and utilization vs. load",
		Tables: []*table.Table{t},
		Notes: []string{
			"skew fixed at 1.2; expected: AMF-family policies hold mean/p95 JCT below PS-MMF, with the gap widening at high load",
			"avg fairness = time-averaged Jain index of the active jobs' normalized rates (online allocation balance)",
		},
	}
}

// E9Scalability times the allocator: Newton vs bisection bottleneck
// search across instance sizes, reporting per-solve wall time.
func E9Scalability(opt Options) Result {
	opt = opt.withDefaults()
	type size struct{ n, m int }
	sizes := []size{{50, 10}, {100, 20}, {200, 20}}
	if !opt.Quick {
		sizes = append(sizes, size{400, 40}, size{800, 40})
	}
	t := table.New("Table E9: allocator wall time per solve",
		"jobs", "sites", "newton (ms)", "bisect (ms)", "speedup")
	for _, sz := range sizes {
		in := workload.Generate(workload.Config{
			NumJobs:      sz.n,
			NumSites:     sz.m,
			SiteCapacity: 1,
			Skew:         1.2,
			PerJobSkew:   true,
			MeanDemand:   3 * float64(sz.m) / float64(sz.n),
			SizeDist:     workload.SizeBoundedPareto,
			Seed:         opt.Seed + uint64(sz.n),
		})
		newtonMs := timeSolve(&core.Solver{Method: core.MethodNewton}, in)
		bisectMs := timeSolve(&core.Solver{Method: core.MethodBisect}, in)
		t.AddRow(sz.n, sz.m, newtonMs, bisectMs, bisectMs/newtonMs)
	}
	return Result{
		ID:     "E9",
		Title:  "Allocator scalability: Newton vs. bisection",
		Tables: []*table.Table{t},
		Notes: []string{
			"both methods compute identical allocations (cross-checked in the unit tests); Newton needs 2-5 max-flow calls per bottleneck vs ~55 for bisection",
		},
	}
}

func timeSolve(sv *core.Solver, in *core.Instance) float64 {
	// One warm-up, then a few timed runs.
	if _, err := sv.AMF(in); err != nil {
		panic(err)
	}
	const runs = 3
	start := time.Now()
	for i := 0; i < runs; i++ {
		if _, err := sv.AMF(in); err != nil {
			panic(err)
		}
	}
	return float64(time.Since(start).Microseconds()) / 1000 / runs
}

// E10SlotFluidCrossCheck runs identical streams through the fluid and the
// slot-granular simulators and compares mean JCT and utilization per
// policy, validating that the fluid results carry over to an integral,
// non-preemptive cluster.
func E10SlotFluidCrossCheck(opt Options) Result {
	opt = opt.withDefaults()
	numJobs := opt.scaled(40, 15)
	numSites := 4
	slots := []int{6, 6, 6, 6}
	caps := []float64{6, 6, 6, 6}
	jobs := workload.GenerateStream(workload.StreamConfig{
		NumSites:         numSites,
		Lambda:           1.2,
		NumJobs:          numJobs,
		Skew:             1.0,
		PerJobSkew:       true,
		TasksPerJobMean:  8,
		TaskDurationMean: 1,
		SitesPerJobMax:   3,
		Seed:             opt.Seed + 77,
	})
	t := table.New("Table E10: fluid vs slot-granular simulator",
		"policy", "fluid mean JCT", "slot mean JCT", "preemptive mean JCT",
		"slot/fluid", "preempt/fluid")
	for _, p := range []sim.Policy{sim.PolicyPSMMF, sim.PolicyAMF, sim.PolicyAMFJCT} {
		fl, err := sim.RunFluid(sim.FluidConfig{
			SiteCapacity: caps, Policy: p, Solver: simSolver(),
		}, jobs)
		if err != nil {
			panic(fmt.Sprintf("E10 fluid %s: %v", p, err))
		}
		sl, err := sim.RunSlots(sim.SlotConfig{
			SlotsPerSite: slots, Policy: p, Solver: simSolver(),
		}, jobs)
		if err != nil {
			panic(fmt.Sprintf("E10 slots %s: %v", p, err))
		}
		pre, err := sim.RunSlots(sim.SlotConfig{
			SlotsPerSite: slots, Policy: p, Solver: simSolver(), Preemptive: true,
		}, jobs)
		if err != nil {
			panic(fmt.Sprintf("E10 preemptive %s: %v", p, err))
		}
		fm, sm, pm := sim.MeanJCT(fl.Jobs), sim.MeanJCT(sl.Jobs), sim.MeanJCT(pre.Jobs)
		t.AddRow(p.String(), fm, sm, pm, sm/fm, pm/fm)
	}
	return Result{
		ID:     "E10",
		Title:  "Slot-granular vs. fluid cross-check",
		Tables: []*table.Table{t},
		Notes: []string{
			"expected: slot-granular JCTs within ~2x of fluid (discretization + non-preemption), same policy ordering",
			"the preemptive (checkpointing) variant isolates the non-preemption share of the gap",
		},
	}
}

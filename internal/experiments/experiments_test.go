package experiments

import (
	"math"
	"strings"
	"testing"
)

// quick runs every experiment in Quick mode; shape assertions live in the
// dedicated tests below.
func quickOpt() Options { return Options{Quick: true, Seed: 99} }

func TestIDsAndRun(t *testing.T) {
	ids := IDs()
	if len(ids) != 13 {
		t.Fatalf("got %d experiments", len(ids))
	}
	entries := List()
	if len(entries) != len(ids) || entries[0].ID != "E1" || entries[0].Title == "" {
		t.Fatalf("List() inconsistent: %v", entries)
	}
	r, err := Run("e4", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "E4" {
		t.Fatalf("got %s", r.ID)
	}
	if _, err := Run("E99", quickOpt()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRenderContainsContent(t *testing.T) {
	r, err := Run("E4", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, want := range []string{"E4", "pareto", "sharing incentive"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// seriesCol extracts column k of a series as (x, y) pairs.
func lastPoint(ys []float64) float64 { return ys[len(ys)-1] }

func TestE1ShapeAMFBeatsBaselineUnderSkew(t *testing.T) {
	r := E1AllocationBalance(quickOpt())
	jain := r.Series[0]
	// Columns: psmmf, amf, amf-enhanced. At the highest skew AMF must beat
	// PS-MMF clearly on Jain index.
	ps := lastPoint(jain.Y[0])
	amf := lastPoint(jain.Y[1])
	if amf <= ps {
		t.Fatalf("at max skew Jain(amf)=%g not above Jain(psmmf)=%g", amf, ps)
	}
	// At zero skew the two should be in the same ballpark.
	if math.Abs(jain.Y[1][0]-jain.Y[0][0]) > 0.4 {
		t.Fatalf("at alpha=0 the gap is implausibly large: %g vs %g",
			jain.Y[1][0], jain.Y[0][0])
	}
	// The AMF advantage must grow with skew.
	gapLow := jain.Y[1][0] - jain.Y[0][0]
	gapHigh := lastPoint(jain.Y[1]) - lastPoint(jain.Y[0])
	if gapHigh <= gapLow {
		t.Fatalf("AMF advantage did not widen with skew: %g -> %g", gapLow, gapHigh)
	}
}

func TestE2ShapeAMFLiftsTail(t *testing.T) {
	r := E2AllocationCDF(quickOpt())
	s := r.Series[0]
	// At the lowest plotted CDF fraction, AMF's value must exceed
	// PS-MMF's (no starved tail).
	if s.Y[1][0] <= s.Y[0][0] {
		t.Fatalf("AMF lowest decile %g not above PS-MMF %g", s.Y[1][0], s.Y[0][0])
	}
	// CDF values are nondecreasing in the fraction.
	for k := range s.Names {
		for i := 1; i < len(s.X); i++ {
			if s.Y[k][i] < s.Y[k][i-1]-1e-9 {
				t.Fatalf("series %s not nondecreasing", s.Names[k])
			}
		}
	}
}

func TestE4ShapeNoPropertyViolations(t *testing.T) {
	r := E4Properties(quickOpt())
	tb := r.Tables[0]
	// Rows: pareto, max-min, envy, strategy-proofness must report 0
	// violations; sharing incentive must report 1 (the counterexample).
	for i, row := range tb.Rows {
		switch row[0] {
		case "sharing incentive":
			if row[2] != "1" {
				t.Fatalf("row %d (%s): violations %s, want 1", i, row[0], row[2])
			}
		default:
			if row[2] != "0" {
				t.Fatalf("row %d (%s): violations %s, want 0", i, row[0], row[2])
			}
		}
	}
}

func TestE5ShapeEnhancedAlwaysZero(t *testing.T) {
	r := E5SharingIncentive(quickOpt())
	s := r.Series[0]
	for i := range s.X {
		if s.Y[2][i] != 0 {
			t.Fatalf("enhanced AMF violated sharing incentive at contention %g: %g",
				s.X[i], s.Y[2][i])
		}
		if s.Y[0][i] != 0 {
			t.Fatalf("PS-MMF violated sharing incentive at contention %g: %g",
				s.X[i], s.Y[0][i])
		}
	}
	// Plain AMF: no violations without contention, full violation with it.
	if s.Y[1][0] != 0 {
		t.Fatalf("AMF violated without contention: %g", s.Y[1][0])
	}
	for i := 1; i < len(s.X); i++ {
		if s.Y[1][i] < 0.99 {
			t.Fatalf("AMF violation fraction %g at contention %g, want ~1",
				s.Y[1][i], s.X[i])
		}
	}
}

func TestE6ShapeUtilizationClose(t *testing.T) {
	r := E6EnhancedCost(quickOpt())
	util := r.Series[2]
	for i := range util.X {
		if math.Abs(util.Y[0][i]-util.Y[1][i]) > 0.05 {
			t.Fatalf("utilization gap at alpha=%g: amf %g vs enhanced %g",
				util.X[i], util.Y[0][i], util.Y[1][i])
		}
	}
}

func TestE7ShapeAddonImprovesStretch(t *testing.T) {
	r := E7AddonBenefit(quickOpt())
	mean := r.Series[0]
	for i := range mean.X {
		if mean.Y[1][i] > mean.Y[0][i]+0.05 {
			t.Fatalf("add-on worsened mean stretch at alpha=%g: %g -> %g",
				mean.X[i], mean.Y[0][i], mean.Y[1][i])
		}
	}
	// The optimized stretch must stay moderate (contention bounds it above
	// 1, but the witness's pathological splits are gone).
	for i := range mean.X {
		if mean.Y[1][i] > 10 {
			t.Fatalf("optimized mean stretch %g at alpha=%g implausibly high",
				mean.Y[1][i], mean.X[i])
		}
	}
}

func TestE3ShapeRunsAndOrdersPolicies(t *testing.T) {
	r := E3CompletionTime(quickOpt())
	mean := r.Series[0]
	// At the highest skew, AMF should not be worse than PS-MMF on mean JCT
	// by more than a small margin (statistically it should be better).
	ps, amf := lastPoint(mean.Y[0]), lastPoint(mean.Y[1])
	if amf > ps*1.15 {
		t.Fatalf("at max skew AMF mean JCT %g much worse than PS-MMF %g", amf, ps)
	}
}

func TestE8RunsAllLoadsAndPolicies(t *testing.T) {
	r := E8OnlineSimulation(quickOpt())
	tb := r.Tables[0]
	if len(tb.Rows) != 12 { // 3 loads x 4 policies
		t.Fatalf("got %d rows", len(tb.Rows))
	}
}

func TestE9ReportsSpeedup(t *testing.T) {
	r := E9Scalability(quickOpt())
	tb := r.Tables[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("got %d rows", len(tb.Rows))
	}
}

func TestE10RunsBothSimulators(t *testing.T) {
	r := E10SlotFluidCrossCheck(quickOpt())
	tb := r.Tables[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("got %d rows", len(tb.Rows))
	}
}

func TestX2ShapeStalenessMonotoneish(t *testing.T) {
	r := X2ReallocAblation(quickOpt())
	s := r.Series[0]
	// Solves decrease as the grid coarsens; event-driven JCT is never
	// beaten by a coarse grid (beyond noise).
	solves := s.Y[2]
	for i := 1; i < len(solves); i++ {
		if solves[i] > solves[i-1]+1e-9 {
			t.Fatalf("solves increased with interval: %v", solves)
		}
	}
	if s.Y[0][len(s.X)-1] < s.Y[0][0]*0.95 {
		t.Fatalf("coarsest grid beat event-driven: %g vs %g",
			s.Y[0][len(s.X)-1], s.Y[0][0])
	}
}

func TestX3ShapeUsefulAwareDominates(t *testing.T) {
	r := X3LocalityRelaxation(quickOpt())
	min := r.Series[0]
	// useful-maxmin never drops below the pinned baseline and meets it at
	// gamma=0; the min rate is nondecreasing in gamma.
	for i := range min.X {
		if min.Y[2][i] < min.Y[0][i]-1e-6 {
			t.Fatalf("useful-maxmin below pinned at gamma=%g: %g < %g",
				min.X[i], min.Y[2][i], min.Y[0][i])
		}
		if i > 0 && min.Y[2][i] < min.Y[2][i-1]-1e-6 {
			t.Fatalf("useful-maxmin min rate not monotone in gamma")
		}
	}
	if math.Abs(min.Y[2][0]-min.Y[0][0]) > 1e-6 {
		t.Fatalf("gamma=0 should match pinned: %g vs %g", min.Y[2][0], min.Y[0][0])
	}
	// The oblivious relaxation collapses at gamma=0.
	if min.Y[1][0] > 0.05 {
		t.Fatalf("oblivious min rate %g at gamma=0, expected collapse", min.Y[1][0])
	}
}

func TestX1ShapeAggregateDRFBalances(t *testing.T) {
	r := X1MultiResource(quickOpt())
	jain := r.Series[0]
	// Aggregate DRF must never be less balanced than the per-site
	// baseline, and must stay near-perfect.
	for i := range jain.X {
		if jain.Y[1][i] < jain.Y[0][i]-1e-6 {
			t.Fatalf("aggregate DRF less balanced at alpha=%g: %g < %g",
				jain.X[i], jain.Y[1][i], jain.Y[0][i])
		}
		if jain.Y[1][i] < 0.95 {
			t.Fatalf("aggregate DRF Jain %g at alpha=%g", jain.Y[1][i], jain.X[i])
		}
	}
}

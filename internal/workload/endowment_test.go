package workload

import (
	"testing"

	"repro/internal/core"
)

func TestEndowmentInstanceShape(t *testing.T) {
	in := EndowmentInstance(EndowmentConfig{
		NumEndowed: 3, NumShared: 2, PoorPerSite: 2, Seed: 1,
	})
	if in.NumSites() != 5 { // 2 shared + 3 private
		t.Fatalf("sites %d", in.NumSites())
	}
	if in.NumJobs() != 7 { // 3 endowed + 4 poor
		t.Fatalf("jobs %d", in.NumJobs())
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Endowed job 0 demands its private site 2 and both shared sites.
	if in.Demand[0][2] != 0.9 {
		t.Fatalf("private demand %g", in.Demand[0][2])
	}
	if in.Demand[0][0] <= 0 || in.Demand[0][1] <= 0 {
		t.Fatal("endowed job missing shared claims")
	}
	if in.Demand[0][3] != 0 || in.Demand[0][4] != 0 {
		t.Fatal("endowed job claims another job's private site")
	}
	// Poor jobs are pinned to exactly one shared site.
	for j := 3; j < 7; j++ {
		count := 0
		for s := 0; s < in.NumSites(); s++ {
			if in.Demand[j][s] > 0 {
				if s >= 2 {
					t.Fatalf("poor job %d demands private site %d", j, s)
				}
				count++
			}
		}
		if count != 1 {
			t.Fatalf("poor job %d demands %d sites", j, count)
		}
	}
}

func TestEndowmentPrivateCapacityScales(t *testing.T) {
	in := EndowmentInstance(EndowmentConfig{
		NumEndowed: 4, NumShared: 3, PoorPerSite: 5, Seed: 2,
	})
	n := float64(in.NumJobs())
	// The equal split of every private site must exceed the private
	// demand, or the motif degenerates.
	for i := 0; i < 4; i++ {
		if in.SiteCapacity[3+i]/n <= 0.9 {
			t.Fatalf("private site %d equal split %g below demand 0.9",
				i, in.SiteCapacity[3+i]/n)
		}
	}
}

func TestEndowmentElicitsViolations(t *testing.T) {
	// The defining behaviour: with contention, every endowed job falls
	// below its equal share under plain AMF, and Enhanced AMF repairs all
	// of them.
	in := EndowmentInstance(EndowmentConfig{
		NumEndowed: 5, NumShared: 3, PoorPerSite: 2, Jitter: 0.1, Seed: 3,
	})
	sv := core.NewSolver()
	amf, err := sv.AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	jobs, _ := core.SharingIncentiveViolations(amf, 1e-6*in.Scale())
	if len(jobs) != 5 {
		t.Fatalf("AMF violated %d jobs, want all 5 endowed (%v)", len(jobs), jobs)
	}
	for _, j := range jobs {
		if j >= 5 {
			t.Fatalf("poor job %d flagged as violated", j)
		}
	}
	enh, err := sv.EnhancedAMF(in)
	if err != nil {
		t.Fatal(err)
	}
	if jobs, _ := core.SharingIncentiveViolations(enh, 1e-6*in.Scale()); len(jobs) != 0 {
		t.Fatalf("enhanced AMF violated %v", jobs)
	}
}

func TestEndowmentNoPoorNoViolation(t *testing.T) {
	in := EndowmentInstance(EndowmentConfig{
		NumEndowed: 5, NumShared: 3, PoorPerSite: 0, Jitter: 0.1, Seed: 4,
	})
	amf, err := core.NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	if jobs, _ := core.SharingIncentiveViolations(amf, 1e-6*in.Scale()); len(jobs) != 0 {
		t.Fatalf("violations without contention: %v", jobs)
	}
}

func TestEndowmentDeterministic(t *testing.T) {
	cfg := EndowmentConfig{NumEndowed: 3, NumShared: 2, PoorPerSite: 1, Jitter: 0.3, Seed: 5}
	a := EndowmentInstance(cfg)
	b := EndowmentInstance(cfg)
	for j := range a.Demand {
		for s := range a.Demand[j] {
			if a.Demand[j][s] != b.Demand[j][s] {
				t.Fatal("same seed produced different instances")
			}
		}
	}
}

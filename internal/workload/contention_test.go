package workload

import (
	"math"
	"reflect"
	"testing"
)

// TestZipfWeightsZeroSkewUniform pins the skew=0 degenerate case: every
// rank gets exactly 1/m — the uniform churn regime the contention sweep
// uses as its baseline point.
func TestZipfWeightsZeroSkewUniform(t *testing.T) {
	for _, m := range []int{1, 2, 7, 64} {
		w := ZipfWeights(m, 0)
		for i, v := range w {
			if math.Abs(v-1/float64(m)) > 1e-15 {
				t.Fatalf("ZipfWeights(%d, 0)[%d] = %g, want %g", m, i, v, 1/float64(m))
			}
		}
	}
}

func TestComponentSizesEdges(t *testing.T) {
	if s := ComponentSizes(100, 0, 1.1); s != nil {
		t.Fatalf("k=0: %v, want nil", s)
	}
	// One component takes everything.
	if s := ComponentSizes(37, 1, 1.1); len(s) != 1 || s[0] != 37 {
		t.Fatalf("k=1: %v, want [37]", s)
	}
	// Fewer jobs than the 2-per-component floor: the floor wins (the
	// instance grows past total rather than emitting trivial components).
	if s := ComponentSizes(3, 4, 1.1); !reflect.DeepEqual(s, []int{2, 2, 2, 2}) {
		t.Fatalf("total<2k: %v, want [2 2 2 2]", s)
	}
	// Exact conservation above the floor.
	for _, tc := range []struct {
		total, k int
		skew     float64
	}{
		{512, 8, 1.1}, {512, 8, 0}, {100, 3, 2.5}, {17, 5, 1.0},
	} {
		s := ComponentSizes(tc.total, tc.k, tc.skew)
		sum := 0
		for c, v := range s {
			sum += v
			if v < 2 {
				t.Fatalf("ComponentSizes(%d, %d, %g)[%d] = %d < 2", tc.total, tc.k, tc.skew, c, v)
			}
		}
		if sum != tc.total {
			t.Fatalf("ComponentSizes(%d, %d, %g) sums to %d: %v", tc.total, tc.k, tc.skew, sum, s)
		}
	}
	// Positive skew: sizes are non-increasing, component 0 is the giant.
	s := ComponentSizes(512, 8, 1.1)
	for c := 1; c < len(s); c++ {
		if s[c] > s[c-1] {
			t.Fatalf("sizes not non-increasing: %v", s)
		}
	}
	if s[0] <= s[1] {
		t.Fatalf("component 0 not strictly largest at skew 1.1: %v", s)
	}
}

// TestContentionHotComponentIdentityAcrossSeeds is the determinism
// property the phase benchmarks lean on: the hot component is component
// 0 — largest and most-mutated — for every seed, because the size split
// is seed-free and popularity is derived from it.
func TestContentionHotComponentIdentityAcrossSeeds(t *testing.T) {
	var sizes0 []int
	for _, seed := range []uint64{0, 1, 7, 42, 1 << 40} {
		ch := GenerateContention(ContentionConfig{
			Components: 8, Jobs: 256, Mutations: 2048, Skew: 1.1, Seed: seed,
		})
		if sizes0 == nil {
			sizes0 = ch.Sizes
		} else if !reflect.DeepEqual(ch.Sizes, sizes0) {
			t.Fatalf("seed %d: sizes %v differ from %v (split must be seed-free)", seed, ch.Sizes, sizes0)
		}
		// Popularity peaks at component 0 for every seed.
		for c := 1; c < len(ch.Popularity); c++ {
			if ch.Popularity[c] > ch.Popularity[0] {
				t.Fatalf("seed %d: component %d more popular than 0: %v", seed, c, ch.Popularity)
			}
		}
		// And the realized stream agrees: component 0 receives the
		// plurality of ops (its expectation is ~70%, so 40% is a safe
		// cross-seed floor that still proves concentration).
		hits := make([]int, 8)
		for _, op := range ch.Ops {
			hits[op.Component]++
		}
		if frac := float64(hits[0]) / float64(len(ch.Ops)); frac < 0.4 {
			t.Fatalf("seed %d: component 0 got %.0f%% of ops, want >= 40%%: %v", seed, frac*100, hits)
		}
		for c := 1; c < 8; c++ {
			if hits[c] > hits[0] {
				t.Fatalf("seed %d: component %d out-drew component 0: %v", seed, c, hits)
			}
		}
	}
}

func TestGenerateContentionDeterministic(t *testing.T) {
	a := GenerateContention(ContentionConfig{Seed: 9, Jobs: 64, Mutations: 256})
	b := GenerateContention(ContentionConfig{Seed: 9, Jobs: 64, Mutations: 256})
	if !reflect.DeepEqual(a.Ops, b.Ops) || !reflect.DeepEqual(a.Inst.Demand, b.Inst.Demand) {
		t.Fatal("same seed produced different contention workloads")
	}
	c := GenerateContention(ContentionConfig{Seed: 10, Jobs: 64, Mutations: 256})
	if reflect.DeepEqual(a.Ops, c.Ops) {
		t.Fatal("different seeds produced identical op streams")
	}
	// Different seeds still share the size split (seed-free).
	if !reflect.DeepEqual(a.Sizes, c.Sizes) {
		t.Fatalf("sizes differ across seeds: %v vs %v", a.Sizes, c.Sizes)
	}
}

// TestContentionStreamApplies replays a stream against a live scheduler
// via the Churn plumbing: every op must land (modulo the documented
// transient duplicate/unknown errors, which this fresh stream never
// produces) and ops stay component-local.
func TestContentionStreamApplies(t *testing.T) {
	ch := GenerateContention(ContentionConfig{
		Components: 4, Jobs: 32, SitesPerComponent: 2, Mutations: 512, Seed: 3,
	})
	if len(ch.Inst.Demand) != 32 {
		t.Fatalf("base instance has %d jobs, want 32", len(ch.Inst.Demand))
	}
	for i, op := range ch.Ops {
		lo, hi := op.Component*2, op.Component*2+2
		for _, row := range [][]float64{op.Demand, op.Done} {
			for s, v := range row {
				if v != 0 && (s < lo || s >= hi) {
					t.Fatalf("op %d (comp %d) touches site %d outside [%d, %d)", i, op.Component, s, lo, hi)
				}
			}
		}
	}
	rec := &recordingTarget{live: map[string]bool{}}
	if err := ch.Populate(rec); err != nil {
		t.Fatal(err)
	}
	for i, op := range ch.Ops {
		if err := op.Apply(rec); err != nil {
			t.Fatalf("op %d %+v: %v", i, op, err)
		}
	}
}

// recordingTarget is a ChurnTarget that validates stream consistency:
// adds are unique, and weight/progress/remove always hit a live job.
type recordingTarget struct{ live map[string]bool }

func (r *recordingTarget) AddJob(id string, weight float64, demand, work []float64) error {
	if r.live[id] {
		return errDuplicate(id)
	}
	r.live[id] = true
	return nil
}

func (r *recordingTarget) RemoveJob(id string) error {
	if !r.live[id] {
		return errUnknown(id)
	}
	delete(r.live, id)
	return nil
}

func (r *recordingTarget) UpdateWeight(id string, weight float64) error {
	if !r.live[id] {
		return errUnknown(id)
	}
	return nil
}

func (r *recordingTarget) ReportProgress(id string, done []float64) (bool, error) {
	if !r.live[id] {
		return false, errUnknown(id)
	}
	return false, nil
}

type streamError string

func (e streamError) Error() string { return string(e) }

func errDuplicate(id string) error { return streamError("duplicate add: " + id) }
func errUnknown(id string) error   { return streamError("unknown job: " + id) }

// TestChurnConfigEdges pins the defaulting rules the contention config
// inherits from ChurnConfig.
func TestChurnConfigEdges(t *testing.T) {
	// Zero config: everything defaults and generation succeeds.
	ch := GenerateChurn(ChurnConfig{})
	if len(ch.Ops) != 1024 {
		t.Fatalf("default mutation count %d, want 1024", len(ch.Ops))
	}
	// Explicit tiny stream.
	ch = GenerateChurn(ChurnConfig{Mutations: 1})
	if len(ch.Ops) != 1 {
		t.Fatalf("mutations=1 produced %d ops", len(ch.Ops))
	}
	// ZipfSkew=0 must behave as uniform (the documented default), not
	// panic or degenerate: all components get some traffic over a long
	// stream.
	ch = GenerateChurn(ChurnConfig{Mutations: 4096, ZipfSkew: 0, Seed: 5})
	comps := map[int]bool{}
	for _, op := range ch.Ops {
		comps[op.Component] = true
	}
	if len(comps) != 16 { // SparseConfig default component count
		t.Fatalf("uniform churn hit %d components, want all 16", len(comps))
	}
	// Contention defaults mirror the documented values.
	cfg := ContentionConfig{}.withDefaults()
	if cfg.Components != 8 || cfg.Jobs != 512 || cfg.Skew != 1.1 || cfg.Mutations != 4096 {
		t.Fatalf("contention defaults %+v", cfg)
	}
}

package workload

import (
	"testing"
)

func TestGenerateLargeGraphShape(t *testing.T) {
	cfg := LargeGraphConfig{Jobs: 500, Sites: 40, Degree: 5, Seed: 11}
	in := GenerateLargeGraph(cfg)
	if err := in.Validate(); err != nil {
		t.Fatalf("generated instance invalid: %v", err)
	}
	if in.NumJobs() != 500 || in.NumSites() != 40 {
		t.Fatalf("got %d jobs x %d sites", in.NumJobs(), in.NumSites())
	}
	edges := 0
	for j, row := range in.Demand {
		deg := 0
		for _, d := range row {
			if d > 0 {
				deg++
			}
		}
		if deg != cfg.Degree {
			t.Fatalf("job %d has degree %d, want %d", j, deg, cfg.Degree)
		}
		edges += deg
	}
	if edges != cfg.Jobs*cfg.Degree {
		t.Fatalf("got %d edges, want %d", edges, cfg.Jobs*cfg.Degree)
	}
}

func TestGenerateLargeGraphConnected(t *testing.T) {
	in := GenerateLargeGraph(LargeGraphConfig{Jobs: 300, Sites: 24, Seed: 5})
	// Union-find over sites through job rows: one root means one
	// component, the regime the approximate path targets.
	m := in.NumSites()
	parent := make([]int, m)
	for s := range parent {
		parent[s] = s
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, row := range in.Demand {
		first := -1
		for s, d := range row {
			if d <= 0 {
				continue
			}
			if first < 0 {
				first = s
			} else if ra, rb := find(first), find(s); ra != rb {
				parent[ra] = rb
			}
		}
	}
	roots := map[int]bool{}
	for s := 0; s < m; s++ {
		roots[find(s)] = true
	}
	if len(roots) != 1 {
		t.Fatalf("graph has %d components, want 1", len(roots))
	}
}

func TestGenerateLargeGraphDeterministic(t *testing.T) {
	a := GenerateLargeGraph(LargeGraphConfig{Jobs: 100, Sites: 16, Seed: 9})
	b := GenerateLargeGraph(LargeGraphConfig{Jobs: 100, Sites: 16, Seed: 9})
	for j := range a.Demand {
		if a.Weight[j] != b.Weight[j] {
			t.Fatalf("job %d weight differs across identical seeds", j)
		}
		for s := range a.Demand[j] {
			if a.Demand[j][s] != b.Demand[j][s] {
				t.Fatalf("job %d site %d demand differs across identical seeds", j, s)
			}
		}
	}
	c := GenerateLargeGraph(LargeGraphConfig{Jobs: 100, Sites: 16, Seed: 10})
	same := true
	for j := range a.Demand {
		for s := range a.Demand[j] {
			if a.Demand[j][s] != c.Demand[j][s] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical instances")
	}
}

package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/randx"
)

// ChurnKind enumerates the mutation kinds in a churn stream.
type ChurnKind int

const (
	// ChurnWeight reweights a long-lived base job.
	ChurnWeight ChurnKind = iota
	// ChurnProgress reports partial progress on a base job.
	ChurnProgress
	// ChurnAdd admits a short-lived transient job into one block.
	ChurnAdd
	// ChurnRemove evicts a transient job admitted earlier in the stream.
	ChurnRemove
)

// ChurnOp is one mutation. Every op is confined to a single component of
// the base instance, so each commit invalidates exactly one block of the
// job×site graph — the regime incremental re-solving targets.
type ChurnOp struct {
	Kind      ChurnKind
	Component int
	Job       string
	// Weight is set for ChurnWeight and ChurnAdd.
	Weight float64
	// Demand and Work are set for ChurnAdd.
	Demand []float64
	Work   []float64
	// Done is set for ChurnProgress.
	Done []float64
}

// ChurnTarget is anything the stream can be applied to; both
// scheduler.Scheduler and serve.Engine satisfy it.
type ChurnTarget interface {
	AddJob(id string, weight float64, demand, work []float64) error
	RemoveJob(id string) error
	UpdateWeight(id string, weight float64) error
	ReportProgress(id string, done []float64) (bool, error)
}

// ChurnConfig parameterizes a churn stream over a sparse base instance.
type ChurnConfig struct {
	// Sparse shapes the base instance (see GenerateSparse).
	Sparse SparseConfig
	// Mutations is the stream length (default 1024).
	Mutations int
	// WorkScale sets base-job outstanding work per unit demand
	// (default 1e6), large enough that the small ChurnProgress deltas
	// never complete a base job even when the stream is replayed.
	WorkScale float64
	// Seed drives the op stream (the base uses Sparse.Seed).
	Seed uint64
	// ZipfSkew skews which component each mutation targets: components
	// are ranked by index and hit with probability ∝ rank^(-ZipfSkew)
	// (ZipfWeights). 0 (the default) is uniform; larger values
	// concentrate churn on a few hot components — the contention shape
	// the paper's evaluation sweeps, and the worst case for the
	// incremental solver's dirty-component tracking.
	ZipfSkew float64
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	c.Sparse = c.Sparse.withDefaults()
	if c.Mutations <= 0 {
		c.Mutations = 1024
	}
	if c.WorkScale <= 0 {
		c.WorkScale = 1e6
	}
	return c
}

// Churn is a named base instance plus a deterministic mutation stream.
type Churn struct {
	Inst *core.Instance
	Ops  []ChurnOp
}

// GenerateChurn builds a block-diagonal base instance with named jobs
// ("c<comp>-j<idx>") and a stream of component-local mutations: weight
// updates and progress reports against base jobs, plus admit/evict pairs
// of transient jobs ("c<comp>-t<n>"). Base jobs are never removed and
// carry WorkScale× their demand as outstanding work, so applying the
// stream — even cyclically — only ever fails with duplicate-add or
// unknown-job errors on transient jobs, which callers can ignore.
func GenerateChurn(cfg ChurnConfig) *Churn {
	cfg = cfg.withDefaults()
	sp := cfg.Sparse
	in := GenerateSparse(sp)
	n := len(in.Demand)
	in.JobName = make([]string, n)
	in.Work = make([][]float64, n)
	for j := range in.Demand {
		c, i := j/sp.JobsPerComponent, j%sp.JobsPerComponent
		in.JobName[j] = fmt.Sprintf("c%d-j%d", c, i)
		row := make([]float64, len(in.Demand[j]))
		for s, d := range in.Demand[j] {
			row[s] = d * cfg.WorkScale
		}
		in.Work[j] = row
	}

	rng := randx.Stream(cfg.Seed, "workload/churn")
	m := len(in.SiteCapacity)
	// Component popularity: uniform by default, Zipf-skewed when asked.
	var popularity []float64
	if cfg.ZipfSkew > 0 {
		popularity = ZipfWeights(sp.Components, cfg.ZipfSkew)
	}
	pick := func() int {
		if popularity == nil {
			return rng.Intn(sp.Components)
		}
		return SampleIndex(rng, popularity)
	}
	// Per-component pool of live transient jobs (names only; transient
	// demand rows are regenerated per add).
	transient := make([][]string, sp.Components)
	next := make([]int, sp.Components)
	ops := make([]ChurnOp, 0, cfg.Mutations)
	for len(ops) < cfg.Mutations {
		c := pick()
		op := ChurnOp{Component: c}
		switch p := rng.Float64(); {
		case p < 0.50: // reweight a base job
			op.Kind = ChurnWeight
			op.Job = in.JobName[c*sp.JobsPerComponent+rng.Intn(sp.JobsPerComponent)]
			// Quantized weights so replayed streams revisit fingerprints.
			op.Weight = 0.5 + 0.25*float64(rng.Intn(14))
		case p < 0.70: // progress on a base job
			op.Kind = ChurnProgress
			j := c*sp.JobsPerComponent + rng.Intn(sp.JobsPerComponent)
			op.Job = in.JobName[j]
			done := make([]float64, m)
			for s, d := range in.Demand[j] {
				if d > 0 {
					done[s] = d * rng.Float64()
				}
			}
			op.Done = done
		case p < 0.85 || len(transient[c]) == 0: // admit a transient job
			op.Kind = ChurnAdd
			op.Job = fmt.Sprintf("c%d-t%d", c, next[c])
			next[c]++
			op.Weight = 0.5 + 0.25*float64(rng.Intn(14))
			op.Demand = blockDemandRow(sp, c, rng)
			transient[c] = append(transient[c], op.Job)
		default: // evict the oldest transient in the block
			op.Kind = ChurnRemove
			op.Job = transient[c][0]
			transient[c] = transient[c][1:]
		}
		ops = append(ops, op)
	}
	return &Churn{Inst: in, Ops: ops}
}

// blockDemandRow draws a demand row confined to component c's site block,
// anchored at the block's first site (matching GenerateSparse's shape).
func blockDemandRow(sp SparseConfig, c int, rng *rand.Rand) []float64 {
	m := sp.Components * sp.SitesPerComponent
	return demandRowAt(m, c*sp.SitesPerComponent, sp.SitesPerComponent, sp.MeanDemand, rng)
}

// demandRowAt draws a demand row over a block of sitesPer sites starting
// at s0 in an m-site instance, anchored at s0 so every job in the block
// stays in one connected component.
func demandRowAt(m, s0, sitesPer int, mean float64, rng *rand.Rand) []float64 {
	row := make([]float64, m)
	k := 1 + rng.Intn(sitesPer)
	sites := append([]int{0}, rng.Perm(sitesPer - 1)[:k-1]...)
	total := mean * (0.5 + rng.Float64())
	split := make([]float64, k)
	var sum float64
	for x := range split {
		split[x] = 0.1 + rng.Float64()
		sum += split[x]
	}
	for x, off := range sites {
		if x > 0 {
			off++
		}
		row[s0+off] = total * split[x] / sum
	}
	return row
}

// Populate admits the base jobs into t in instance order.
func (c *Churn) Populate(t ChurnTarget) error {
	in := c.Inst
	for j, name := range in.JobName {
		if err := t.AddJob(name, 1, in.Demand[j], in.Work[j]); err != nil {
			return err
		}
	}
	return nil
}

// Apply applies one op to t. Errors from duplicate adds or removals of
// already-evicted transients (possible when a stream is replayed
// cyclically) are the caller's to classify.
func (op ChurnOp) Apply(t ChurnTarget) error {
	switch op.Kind {
	case ChurnWeight:
		return t.UpdateWeight(op.Job, op.Weight)
	case ChurnProgress:
		_, err := t.ReportProgress(op.Job, op.Done)
		return err
	case ChurnAdd:
		return t.AddJob(op.Job, op.Weight, op.Demand, op.Work)
	case ChurnRemove:
		return t.RemoveJob(op.Job)
	default:
		return fmt.Errorf("workload: unknown churn op kind %d", op.Kind)
	}
}

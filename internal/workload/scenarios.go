package workload

import "fmt"

// Scenario is a named preset matching the workload families used across
// the experiment suite.
type Scenario string

const (
	// ScenarioUniform spreads work evenly across sites (skew 0).
	ScenarioUniform Scenario = "uniform"
	// ScenarioMildSkew concentrates work mildly (Zipf 0.8).
	ScenarioMildSkew Scenario = "mild-skew"
	// ScenarioHighSkew concentrates work strongly (Zipf 1.5), the regime
	// where the paper reports AMF's largest wins.
	ScenarioHighSkew Scenario = "high-skew"
	// ScenarioHotspot sends most work to a single hot site (Zipf 2.5).
	ScenarioHotspot Scenario = "hotspot"
	// ScenarioHetero uses heterogeneous site capacities with mild skew.
	ScenarioHetero Scenario = "hetero"
)

// Scenarios lists all presets in presentation order.
func Scenarios() []Scenario {
	return []Scenario{ScenarioUniform, ScenarioMildSkew, ScenarioHighSkew,
		ScenarioHotspot, ScenarioHetero}
}

// Configure returns the batch Config for the scenario with the given
// shape and seed.
func (sc Scenario) Configure(numJobs, numSites int, seed uint64) (Config, error) {
	cfg := Config{
		NumJobs:      numJobs,
		NumSites:     numSites,
		SiteCapacity: 1,
		// Total demand comfortably oversubscribes capacity so fairness
		// actually binds: mean demand 3x the per-job fair share.
		MeanDemand: 3 * float64(numSites) / float64(numJobs),
		SizeDist:   SizeBoundedPareto,
		Seed:       seed,
	}
	switch sc {
	case ScenarioUniform:
		cfg.Skew = 0
	case ScenarioMildSkew:
		cfg.Skew = 0.8
	case ScenarioHighSkew:
		cfg.Skew = 1.5
	case ScenarioHotspot:
		cfg.Skew = 2.5
	case ScenarioHetero:
		cfg.Skew = 0.8
		cfg.HeteroCapacity = true
	default:
		return Config{}, fmt.Errorf("workload: unknown scenario %q", sc)
	}
	return cfg, nil
}

// Package workload generates the synthetic inputs for all experiments:
// multi-site instances whose per-site workload distribution follows a
// Zipf popularity law (the skew axis the paper's evaluation sweeps),
// job-size distributions, Poisson arrival streams and named scenario
// presets. Everything is seeded and deterministic.
package workload

import (
	"math"
	"math/rand"
)

// ZipfWeights returns m popularity weights proportional to rank^(-alpha),
// normalized to sum to 1. alpha = 0 yields a uniform distribution; larger
// alpha concentrates mass on low ranks ("hot" sites).
func ZipfWeights(m int, alpha float64) []float64 {
	if m <= 0 {
		return nil
	}
	w := make([]float64, m)
	var sum float64
	for i := range w {
		w[i] = math.Pow(float64(i+1), -alpha)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// SampleIndex draws an index from the (normalized or unnormalized)
// non-negative weight vector.
func SampleIndex(rng *rand.Rand, weights []float64) int {
	var sum float64
	for _, w := range weights {
		sum += w
	}
	if sum <= 0 {
		return rng.Intn(len(weights))
	}
	x := rng.Float64() * sum
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// SampleDistinct draws k distinct indices from the weight vector by
// sampling without replacement (weights of drawn indices are removed).
// k is clamped to len(weights).
func SampleDistinct(rng *rand.Rand, weights []float64, k int) []int {
	m := len(weights)
	if k > m {
		k = m
	}
	w := append([]float64(nil), weights...)
	out := make([]int, 0, k)
	for len(out) < k {
		i := SampleIndex(rng, w)
		out = append(out, i)
		w[i] = 0
	}
	return out
}

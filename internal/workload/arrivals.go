package workload

import (
	"math"
	"math/rand"

	"repro/internal/randx"
)

// Task is one unit of work pinned to a site (data locality): it occupies
// one resource unit at Site for Duration time units.
type Task struct {
	Site     int
	Duration float64
}

// Job is an online job for the simulators: it arrives at Arrival and must
// run all of its tasks, each at its pinned site.
type Job struct {
	ID      int
	Arrival float64
	Weight  float64
	Tasks   []Task
}

// WorkBySite sums task durations per site into a length-m vector.
func (j *Job) WorkBySite(m int) []float64 {
	w := make([]float64, m)
	for _, t := range j.Tasks {
		w[t.Site] += t.Duration
	}
	return w
}

// TasksBySite counts tasks per site into a length-m vector; this is the
// job's maximum useful parallelism at each site.
func (j *Job) TasksBySite(m int) []float64 {
	c := make([]float64, m)
	for _, t := range j.Tasks {
		c[t.Site]++
	}
	return c
}

// TotalWork sums all task durations.
func (j *Job) TotalWork() float64 {
	var w float64
	for _, t := range j.Tasks {
		w += t.Duration
	}
	return w
}

// StreamConfig parameterizes online job streams.
type StreamConfig struct {
	NumSites int
	// Lambda is the Poisson arrival rate (jobs per time unit). Zero makes
	// every job arrive at time 0 (a batch).
	Lambda float64
	// NumJobs is the number of jobs to emit.
	NumJobs int
	// Skew is the Zipf alpha of task placement across sites.
	Skew float64
	// PerJobSkew mirrors workload.Config.PerJobSkew: when true each job
	// concentrates its tasks on its own randomly-ordered site subset
	// instead of globally shared hot sites.
	PerJobSkew bool
	// TasksPerJobMean is the mean task count (geometric-ish, min 1;
	// default 10).
	TasksPerJobMean float64
	// TaskDurationMean is the mean task duration (exponential; default 1).
	TaskDurationMean float64
	// SitesPerJobMax bounds how many distinct sites a job's tasks span
	// (default: no bound).
	SitesPerJobMax int
	// Weighted assigns random job weights in [0.5, 4].
	Weighted bool
	// DiurnalAmplitude in [0, 1) modulates the arrival rate sinusoidally:
	// lambda(t) = Lambda * (1 + A*sin(2*pi*t/DiurnalPeriod)), sampled by
	// thinning — the day/night load cycle of real clusters. Zero keeps
	// arrivals homogeneous Poisson.
	DiurnalAmplitude float64
	// DiurnalPeriod is the cycle length (default 20 time units).
	DiurnalPeriod float64
	Seed          uint64
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.TasksPerJobMean <= 0 {
		c.TasksPerJobMean = 10
	}
	if c.TaskDurationMean <= 0 {
		c.TaskDurationMean = 1
	}
	if c.SitesPerJobMax <= 0 || c.SitesPerJobMax > c.NumSites {
		c.SitesPerJobMax = c.NumSites
	}
	if c.DiurnalPeriod <= 0 {
		c.DiurnalPeriod = 20
	}
	if c.DiurnalAmplitude < 0 {
		c.DiurnalAmplitude = 0
	}
	if c.DiurnalAmplitude >= 1 {
		c.DiurnalAmplitude = 0.99
	}
	return c
}

// GenerateStream emits NumJobs jobs with Poisson arrivals and Zipf-placed
// tasks, sorted by arrival time.
func GenerateStream(cfg StreamConfig) []Job {
	cfg = cfg.withDefaults()
	arrRng := randx.Stream(cfg.Seed, "stream/arrivals")
	taskRng := randx.Stream(cfg.Seed, "stream/tasks")

	pop := ZipfWeights(cfg.NumSites, cfg.Skew)
	jobs := make([]Job, cfg.NumJobs)
	now := 0.0
	for i := range jobs {
		if cfg.Lambda > 0 {
			now = nextArrival(arrRng, cfg, now)
		}
		jobs[i] = Job{
			ID:      i,
			Arrival: now,
			Weight:  1,
			Tasks:   genTasks(taskRng, cfg, pop),
		}
		if cfg.Weighted {
			jobs[i].Weight = 0.5 + taskRng.Float64()*3.5
		}
	}
	return jobs
}

func genTasks(rng *rand.Rand, cfg StreamConfig, pop []float64) []Task {
	// Geometric task count with the requested mean (min 1).
	count := 1
	p := 1 / cfg.TasksPerJobMean
	for rng.Float64() > p && count < 10000 {
		count++
	}
	var sites []int
	var sub []float64
	if cfg.PerJobSkew {
		// Uniform site subset; the job's own tasks concentrate by Zipf in
		// a random per-job order.
		sites = rng.Perm(cfg.NumSites)[:cfg.SitesPerJobMax]
		sub = ZipfWeights(len(sites), cfg.Skew)
	} else {
		// Restrict the job to a popular subset of sites.
		sites = SampleDistinct(rng, pop, cfg.SitesPerJobMax)
		sub = make([]float64, len(sites))
		for i, s := range sites {
			sub[i] = pop[s]
		}
	}
	tasks := make([]Task, count)
	for i := range tasks {
		tasks[i] = Task{
			Site:     sites[SampleIndex(rng, sub)],
			Duration: rng.ExpFloat64() * cfg.TaskDurationMean,
		}
	}
	return tasks
}

// nextArrival samples the next arrival after t. Homogeneous Poisson when
// DiurnalAmplitude is zero; otherwise a nonhomogeneous Poisson process via
// thinning against the peak rate Lambda*(1+A).
func nextArrival(rng *rand.Rand, cfg StreamConfig, t float64) float64 {
	if cfg.DiurnalAmplitude == 0 {
		return t + rng.ExpFloat64()/cfg.Lambda
	}
	peak := cfg.Lambda * (1 + cfg.DiurnalAmplitude)
	for {
		t += rng.ExpFloat64() / peak
		rate := cfg.Lambda * (1 + cfg.DiurnalAmplitude*math.Sin(2*math.Pi*t/cfg.DiurnalPeriod))
		if rng.Float64()*peak <= rate {
			return t
		}
	}
}

// OfferedLoad estimates the offered load of a stream against per-site
// capacity total: lambda x mean job work / total capacity.
func OfferedLoad(cfg StreamConfig, totalCapacity float64) float64 {
	cfg = cfg.withDefaults()
	if totalCapacity <= 0 {
		return math.Inf(1)
	}
	return cfg.Lambda * cfg.TasksPerJobMean * cfg.TaskDurationMean / totalCapacity
}

// LambdaForLoad returns the arrival rate that hits the target offered load
// rho against the given total capacity.
func LambdaForLoad(cfg StreamConfig, totalCapacity, rho float64) float64 {
	cfg = cfg.withDefaults()
	return rho * totalCapacity / (cfg.TasksPerJobMean * cfg.TaskDurationMean)
}

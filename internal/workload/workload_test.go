package workload

import (
	"math"
	"testing"

	"repro/internal/randx"
)

func TestZipfWeightsUniform(t *testing.T) {
	w := ZipfWeights(4, 0)
	for _, v := range w {
		if math.Abs(v-0.25) > 1e-12 {
			t.Fatalf("alpha=0 weights %v", w)
		}
	}
}

func TestZipfWeightsSkewed(t *testing.T) {
	w := ZipfWeights(3, 1)
	// proportional to 1, 1/2, 1/3 -> 6/11, 3/11, 2/11.
	want := []float64{6.0 / 11, 3.0 / 11, 2.0 / 11}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Fatalf("weights %v, want %v", w, want)
		}
	}
}

func TestZipfWeightsMonotone(t *testing.T) {
	w := ZipfWeights(10, 1.5)
	var sum float64
	for i := range w {
		sum += w[i]
		if i > 0 && w[i] > w[i-1]+1e-15 {
			t.Fatalf("weights not decreasing: %v", w)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum %g", sum)
	}
}

func TestZipfWeightsEmpty(t *testing.T) {
	if w := ZipfWeights(0, 1); w != nil {
		t.Fatalf("expected nil, got %v", w)
	}
}

func TestSampleIndexRespectsWeights(t *testing.T) {
	rng := randx.Stream(1, "test")
	w := []float64{0.9, 0.1}
	counts := [2]int{}
	for i := 0; i < 10000; i++ {
		counts[SampleIndex(rng, w)]++
	}
	if counts[0] < 8500 || counts[0] > 9500 {
		t.Fatalf("heavy index drawn %d/10000 times, want ~9000", counts[0])
	}
}

func TestSampleIndexZeroWeights(t *testing.T) {
	rng := randx.Stream(2, "test")
	w := []float64{0, 0, 0}
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		idx := SampleIndex(rng, w)
		if idx < 0 || idx >= 3 {
			t.Fatalf("index out of range: %d", idx)
		}
		seen[idx] = true
	}
	if len(seen) < 2 {
		t.Fatal("zero weights should fall back to uniform")
	}
}

func TestSampleDistinct(t *testing.T) {
	rng := randx.Stream(3, "test")
	w := ZipfWeights(6, 1)
	for trial := 0; trial < 50; trial++ {
		idx := SampleDistinct(rng, w, 4)
		if len(idx) != 4 {
			t.Fatalf("got %d indices", len(idx))
		}
		seen := map[int]bool{}
		for _, i := range idx {
			if seen[i] {
				t.Fatalf("duplicate index in %v", idx)
			}
			seen[i] = true
		}
	}
	if got := SampleDistinct(rng, w, 99); len(got) != 6 {
		t.Fatalf("k clamp failed: %d", len(got))
	}
}

func TestGenerateShapeAndDeterminism(t *testing.T) {
	cfg := Config{NumJobs: 20, NumSites: 5, SiteCapacity: 2, Skew: 1, Seed: 42}
	in1 := Generate(cfg)
	in2 := Generate(cfg)
	if in1.NumJobs() != 20 || in1.NumSites() != 5 {
		t.Fatalf("dims %dx%d", in1.NumJobs(), in1.NumSites())
	}
	if err := in1.Validate(); err != nil {
		t.Fatal(err)
	}
	for j := range in1.Demand {
		for s := range in1.Demand[j] {
			if in1.Demand[j][s] != in2.Demand[j][s] {
				t.Fatal("same seed produced different instances")
			}
		}
	}
	in3 := Generate(Config{NumJobs: 20, NumSites: 5, SiteCapacity: 2, Skew: 1, Seed: 43})
	same := true
	for j := range in1.Demand {
		for s := range in1.Demand[j] {
			if in1.Demand[j][s] != in3.Demand[j][s] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical instances")
	}
}

func TestGenerateSkewConcentratesDemand(t *testing.T) {
	agg := func(skew float64) float64 {
		in := Generate(Config{NumJobs: 200, NumSites: 10, Skew: skew, Seed: 7})
		// Fraction of total demand on the top site.
		site := make([]float64, in.NumSites())
		var total float64
		for j := range in.Demand {
			for s, d := range in.Demand[j] {
				site[s] += d
				total += d
			}
		}
		max := 0.0
		for _, v := range site {
			max = math.Max(max, v)
		}
		return max / total
	}
	low, high := agg(0), agg(2)
	if high < low*2 {
		t.Fatalf("skew 2 top-site share %g not much above uniform %g", high, low)
	}
}

func TestGenerateSitesPerJobBounds(t *testing.T) {
	in := Generate(Config{
		NumJobs: 50, NumSites: 8, Skew: 0.5, Seed: 11,
		SitesPerJobMin: 2, SitesPerJobMax: 3,
	})
	for j := range in.Demand {
		k := 0
		for _, d := range in.Demand[j] {
			if d > 0 {
				k++
			}
		}
		if k < 2 || k > 3 {
			t.Fatalf("job %d touches %d sites, want 2..3", j, k)
		}
	}
}

func TestGenerateWeighted(t *testing.T) {
	in := Generate(Config{NumJobs: 10, NumSites: 3, Weighted: true, Seed: 5})
	if in.Weight == nil {
		t.Fatal("weights not generated")
	}
	for _, w := range in.Weight {
		if w < 0.5 || w > 4 {
			t.Fatalf("weight %g out of range", w)
		}
	}
}

func TestGenerateHeteroCapacity(t *testing.T) {
	in := Generate(Config{NumJobs: 5, NumSites: 30, HeteroCapacity: true, SiteCapacity: 4, Seed: 13})
	mn, mx := math.Inf(1), 0.0
	for _, c := range in.SiteCapacity {
		mn = math.Min(mn, c)
		mx = math.Max(mx, c)
		if c < 1 || c > 16 {
			t.Fatalf("capacity %g outside [cap/4, 4cap]", c)
		}
	}
	if mx/mn < 2 {
		t.Fatalf("capacities suspiciously homogeneous: [%g, %g]", mn, mx)
	}
}

func TestSizeDistMeans(t *testing.T) {
	rng := randx.Stream(17, "sizes")
	for _, d := range []SizeDist{SizeUniform, SizeExponential, SizeBoundedPareto} {
		var sum float64
		const draws = 20000
		for i := 0; i < draws; i++ {
			v := d.sample(rng, 2)
			if v < 0 {
				t.Fatalf("%v produced negative size %g", d, v)
			}
			sum += v
		}
		mean := sum / draws
		if mean < 1.5 || mean > 2.5 {
			t.Fatalf("%v empirical mean %g, want ~2", d, mean)
		}
	}
}

func TestSizeDistString(t *testing.T) {
	if SizeUniform.String() != "uniform" || SizeBoundedPareto.String() != "bounded-pareto" {
		t.Fatal("size dist names")
	}
	if SizeDist(42).String() == "" {
		t.Fatal("unknown dist must render")
	}
}

func TestGenerateStreamArrivalsSorted(t *testing.T) {
	jobs := GenerateStream(StreamConfig{NumSites: 4, Lambda: 2, NumJobs: 100, Seed: 19})
	if len(jobs) != 100 {
		t.Fatalf("got %d jobs", len(jobs))
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Arrival < jobs[i-1].Arrival {
			t.Fatal("arrivals not sorted")
		}
	}
	for _, j := range jobs {
		if len(j.Tasks) == 0 {
			t.Fatalf("job %d has no tasks", j.ID)
		}
		for _, task := range j.Tasks {
			if task.Site < 0 || task.Site >= 4 {
				t.Fatalf("task site %d out of range", task.Site)
			}
			if task.Duration < 0 {
				t.Fatalf("negative duration %g", task.Duration)
			}
		}
	}
}

func TestGenerateStreamBatchMode(t *testing.T) {
	jobs := GenerateStream(StreamConfig{NumSites: 2, Lambda: 0, NumJobs: 10, Seed: 23})
	for _, j := range jobs {
		if j.Arrival != 0 {
			t.Fatalf("batch job arrived at %g", j.Arrival)
		}
	}
}

func TestJobHelpers(t *testing.T) {
	j := Job{Tasks: []Task{{Site: 0, Duration: 2}, {Site: 0, Duration: 1}, {Site: 2, Duration: 3}}}
	w := j.WorkBySite(3)
	if w[0] != 3 || w[1] != 0 || w[2] != 3 {
		t.Fatalf("work by site %v", w)
	}
	c := j.TasksBySite(3)
	if c[0] != 2 || c[1] != 0 || c[2] != 1 {
		t.Fatalf("tasks by site %v", c)
	}
	if j.TotalWork() != 6 {
		t.Fatalf("total work %g", j.TotalWork())
	}
}

func TestStreamRates(t *testing.T) {
	cfg := StreamConfig{NumSites: 4, TasksPerJobMean: 5, TaskDurationMean: 2}
	lambda := LambdaForLoad(cfg, 8, 0.8)
	cfg.Lambda = lambda
	if rho := OfferedLoad(cfg, 8); math.Abs(rho-0.8) > 1e-12 {
		t.Fatalf("round trip load %g", rho)
	}
}

func TestStreamTaskCountMean(t *testing.T) {
	jobs := GenerateStream(StreamConfig{
		NumSites: 3, NumJobs: 3000, TasksPerJobMean: 8, Seed: 29,
	})
	var sum float64
	for _, j := range jobs {
		sum += float64(len(j.Tasks))
	}
	mean := sum / float64(len(jobs))
	if mean < 7 || mean > 9 {
		t.Fatalf("task count mean %g, want ~8", mean)
	}
}

func TestScenarios(t *testing.T) {
	for _, sc := range Scenarios() {
		cfg, err := sc.Configure(50, 10, 1)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		in := Generate(cfg)
		if err := in.Validate(); err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
	}
	if _, err := Scenario("bogus").Configure(1, 1, 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestScenarioOversubscription(t *testing.T) {
	cfg, _ := ScenarioUniform.Configure(100, 10, 3)
	in := Generate(cfg)
	var demand float64
	for j := range in.Demand {
		demand += in.TotalDemand(j)
	}
	if demand < in.TotalCapacity()*1.5 {
		t.Fatalf("scenario undersubscribed: demand %g vs capacity %g",
			demand, in.TotalCapacity())
	}
}

func TestDiurnalArrivalsModulateRate(t *testing.T) {
	// With strong modulation, arrivals cluster in the high-rate half of
	// each cycle: significantly more than half land where sin > 0.
	cfg := StreamConfig{
		NumSites: 2, Lambda: 5, NumJobs: 4000,
		DiurnalAmplitude: 0.9, DiurnalPeriod: 10, Seed: 101,
	}
	jobs := GenerateStream(cfg)
	high := 0
	for _, j := range jobs {
		phase := math.Mod(j.Arrival, 10) / 10
		if phase < 0.5 { // sin(2*pi*phase) > 0 for phase in (0, 0.5)
			high++
		}
	}
	frac := float64(high) / float64(len(jobs))
	if frac < 0.6 {
		t.Fatalf("high-rate half holds %.2f of arrivals, want > 0.6", frac)
	}
	// Arrivals remain sorted and positive.
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Arrival < jobs[i-1].Arrival {
			t.Fatal("diurnal arrivals not sorted")
		}
	}
}

func TestDiurnalZeroAmplitudeMatchesPoisson(t *testing.T) {
	base := StreamConfig{NumSites: 2, Lambda: 2, NumJobs: 50, Seed: 103}
	diurnal := base
	diurnal.DiurnalAmplitude = 0
	a := GenerateStream(base)
	b := GenerateStream(diurnal)
	for i := range a {
		if a[i].Arrival != b[i].Arrival {
			t.Fatal("zero amplitude changed arrivals")
		}
	}
}

func TestDiurnalAmplitudeClamped(t *testing.T) {
	cfg := StreamConfig{
		NumSites: 1, Lambda: 1, NumJobs: 10,
		DiurnalAmplitude: 5, // clamped below 1
		Seed:             107,
	}
	jobs := GenerateStream(cfg)
	if len(jobs) != 10 {
		t.Fatalf("got %d jobs", len(jobs))
	}
	for _, j := range jobs {
		if math.IsNaN(j.Arrival) || j.Arrival < 0 {
			t.Fatalf("bad arrival %g", j.Arrival)
		}
	}
}

package workload

import (
	"reflect"
	"strings"
	"testing"
)

// TestGenerateChurnDeterministic: identical configs yield identical
// streams.
func TestGenerateChurnDeterministic(t *testing.T) {
	cfg := ChurnConfig{
		Sparse:    SparseConfig{Components: 8, JobsPerComponent: 4, SitesPerComponent: 3, Seed: 5},
		Mutations: 200,
		Seed:      9,
	}
	a, b := GenerateChurn(cfg), GenerateChurn(cfg)
	if !reflect.DeepEqual(a.Inst, b.Inst) || !reflect.DeepEqual(a.Ops, b.Ops) {
		t.Fatal("GenerateChurn is not deterministic for a fixed seed")
	}
	if len(a.Ops) != cfg.Mutations {
		t.Fatalf("got %d ops, want %d", len(a.Ops), cfg.Mutations)
	}
}

// TestChurnOpsComponentLocal: every op's footprint (demand, progress, or
// named job) stays inside its component's site block and job namespace.
func TestChurnOpsComponentLocal(t *testing.T) {
	sp := SparseConfig{Components: 6, JobsPerComponent: 5, SitesPerComponent: 4, Seed: 2}
	ch := GenerateChurn(ChurnConfig{Sparse: sp, Mutations: 300, Seed: 3})
	sp = sp.withDefaults()
	m := sp.Components * sp.SitesPerComponent
	for i, op := range ch.Ops {
		prefix := "c" + itoa(op.Component) + "-"
		if !strings.HasPrefix(op.Job, prefix) {
			t.Fatalf("op %d: job %q not in component %d", i, op.Job, op.Component)
		}
		var row []float64
		switch op.Kind {
		case ChurnAdd:
			row = op.Demand
		case ChurnProgress:
			row = op.Done
		default:
			continue
		}
		if len(row) != m {
			t.Fatalf("op %d: row width %d, want %d", i, len(row), m)
		}
		s0 := op.Component * sp.SitesPerComponent
		for s, v := range row {
			if v != 0 && (s < s0 || s >= s0+sp.SitesPerComponent) {
				t.Fatalf("op %d: nonzero entry at site %d outside block [%d,%d)", i, s, s0, s0+sp.SitesPerComponent)
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestChurnZipfSkew: skewed streams concentrate mutations on low-index
// components — the head component must be hit far more than the tail —
// while skew 0 reproduces the uniform stream exactly.
func TestChurnZipfSkew(t *testing.T) {
	cfg := ChurnConfig{
		Sparse:    SparseConfig{Components: 10, JobsPerComponent: 3, SitesPerComponent: 2, Seed: 4},
		Mutations: 2000,
		Seed:      11,
	}
	uniform := GenerateChurn(cfg)
	zero := cfg
	zero.ZipfSkew = 0
	if !reflect.DeepEqual(uniform.Ops, GenerateChurn(zero).Ops) {
		t.Fatal("ZipfSkew 0 changed the stream")
	}

	skewed := cfg
	skewed.ZipfSkew = 1.5
	counts := make([]int, cfg.Sparse.Components)
	for _, op := range GenerateChurn(skewed).Ops {
		counts[op.Component]++
	}
	head, tail := counts[0], counts[len(counts)-1]
	if head < 4*tail+1 {
		t.Fatalf("skew 1.5: head component hit %d times, tail %d — not skewed", head, tail)
	}
	// And the skewed stream is still deterministic.
	again := GenerateChurn(skewed)
	c2 := make([]int, cfg.Sparse.Components)
	for _, op := range again.Ops {
		c2[op.Component]++
	}
	if !reflect.DeepEqual(counts, c2) {
		t.Fatal("skewed stream not deterministic")
	}
}

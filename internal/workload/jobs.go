package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/randx"
)

// SizeDist selects the distribution of total job sizes.
type SizeDist int

const (
	// SizeUniform draws sizes uniformly in [0.5, 1.5] x mean.
	SizeUniform SizeDist = iota
	// SizeExponential draws exponentially with the given mean.
	SizeExponential
	// SizeBoundedPareto draws from a bounded Pareto (alpha 1.5, bounds
	// [mean/5, mean*20]) rescaled to the requested mean — the heavy-tailed
	// mix typical of analytics clusters.
	SizeBoundedPareto
)

func (d SizeDist) String() string {
	switch d {
	case SizeUniform:
		return "uniform"
	case SizeExponential:
		return "exponential"
	case SizeBoundedPareto:
		return "bounded-pareto"
	default:
		return fmt.Sprintf("sizedist(%d)", int(d))
	}
}

// sample draws one size with the given mean.
func (d SizeDist) sample(rng *rand.Rand, mean float64) float64 {
	switch d {
	case SizeExponential:
		return rng.ExpFloat64() * mean
	case SizeBoundedPareto:
		return boundedPareto(rng, 1.5, mean/5, mean*20) * mean / boundedParetoMean(1.5, mean/5, mean*20)
	default:
		return mean * (0.5 + rng.Float64())
	}
}

// boundedPareto draws from a Pareto(alpha) truncated to [lo, hi] by
// inverse-CDF sampling.
func boundedPareto(rng *rand.Rand, alpha, lo, hi float64) float64 {
	u := rng.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

func boundedParetoMean(alpha, lo, hi float64) float64 {
	// E[X] for bounded Pareto with alpha != 1.
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return la / (1 - la/ha) * alpha / (alpha - 1) *
		(1/math.Pow(lo, alpha-1) - 1/math.Pow(hi, alpha-1))
}

// Config parameterizes batch instance generation.
type Config struct {
	NumJobs  int
	NumSites int
	// SiteCapacity is each site's capacity; with HeteroCapacity it is the
	// mean of a log-uniform draw over [x/4, 4x].
	SiteCapacity   float64
	HeteroCapacity bool
	// Skew is the Zipf alpha of the per-site workload distribution. 0 means
	// uniform.
	Skew float64
	// PerJobSkew changes what Skew shapes. When false (default), sites have
	// a global popularity ranking: every job's workload concentrates on the
	// same hot sites (shared-dataset hotspots). When true, each job
	// concentrates its workload on its own randomly-ordered site subset:
	// the cluster stays globally balanced while individual jobs become
	// increasingly pinned — the skew axis of the paper's evaluation, where
	// per-site fairness starves pinned jobs and AMF compensates across
	// sites.
	PerJobSkew bool
	// SitesPerJobMin/Max bound the number of sites a job touches
	// (defaults: 1 and NumSites).
	SitesPerJobMin, SitesPerJobMax int
	// MeanDemand is the mean total demand per job (default 1).
	MeanDemand float64
	// SizeDist selects the job-size distribution.
	SizeDist SizeDist
	// Weighted assigns random job weights in [0.5, 4] when set.
	Weighted bool
	// Seed drives all randomness.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.SitesPerJobMin <= 0 {
		c.SitesPerJobMin = 1
	}
	if c.SitesPerJobMax <= 0 || c.SitesPerJobMax > c.NumSites {
		c.SitesPerJobMax = c.NumSites
	}
	if c.SitesPerJobMin > c.SitesPerJobMax {
		c.SitesPerJobMin = c.SitesPerJobMax
	}
	if c.MeanDemand <= 0 {
		c.MeanDemand = 1
	}
	if c.SiteCapacity <= 0 {
		c.SiteCapacity = 1
	}
	return c
}

// Generate builds a batch instance: NumJobs jobs over NumSites sites, each
// job spreading its total demand over a Zipf-popular subset of sites.
func Generate(cfg Config) *core.Instance {
	cfg = cfg.withDefaults()
	n, m := cfg.NumJobs, cfg.NumSites
	capRng := randx.Stream(cfg.Seed, "workload/capacity")
	jobRng := randx.Stream(cfg.Seed, "workload/jobs")

	in := &core.Instance{
		SiteCapacity: make([]float64, m),
		Demand:       make([][]float64, n),
	}
	for s := range in.SiteCapacity {
		if cfg.HeteroCapacity {
			// Log-uniform over [cap/4, 4cap].
			in.SiteCapacity[s] = cfg.SiteCapacity / 4 * math.Pow(16, capRng.Float64())
		} else {
			in.SiteCapacity[s] = cfg.SiteCapacity
		}
	}

	pop := ZipfWeights(m, cfg.Skew)
	for j := 0; j < n; j++ {
		in.Demand[j] = make([]float64, m)
		k := cfg.SitesPerJobMin
		if cfg.SitesPerJobMax > cfg.SitesPerJobMin {
			k += jobRng.Intn(cfg.SitesPerJobMax - cfg.SitesPerJobMin + 1)
		}
		total := cfg.SizeDist.sample(jobRng, cfg.MeanDemand)
		var sites []int
		var split []float64
		if cfg.PerJobSkew {
			// Uniform site subset, Zipf split in a random per-job order.
			sites = jobRng.Perm(m)[:k]
			split = ZipfWeights(k, cfg.Skew)
		} else {
			// Global hotspots: popular sites drawn and weighted by the
			// shared popularity ranking (jittered).
			sites = SampleDistinct(jobRng, pop, k)
			split = make([]float64, len(sites))
			for i, s := range sites {
				split[i] = pop[s] * (0.5 + jobRng.Float64())
			}
		}
		var sum float64
		for _, w := range split {
			sum += w
		}
		for i, s := range sites {
			in.Demand[j][s] = total * split[i] / sum
		}
	}
	if cfg.Weighted {
		in.Weight = make([]float64, n)
		for j := range in.Weight {
			in.Weight[j] = 0.5 + jobRng.Float64()*3.5
		}
	}
	return in
}

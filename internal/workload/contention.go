package workload

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/randx"
)

// Skew-contended churn: the workload shape phase reconciliation targets.
//
// GenerateChurn skews only which (uniformly sized) component each
// mutation hits; the incremental solver still pays a small-block re-solve
// per dirty commit, so skew barely hurts. The contention generator makes
// the skew bite twice: component SIZES follow the Zipf law (one giant
// component holding most jobs) and mutation popularity follows
// size × Zipf (∝ rank^(-2·skew)), so the giant component also absorbs
// the overwhelming majority of the stream. Under the exact ordered path
// the median commit then re-solves the giant block; under phase
// reconciliation the same commits buffer and the solve is paid once per
// phase boundary.

// ContentionConfig parameterizes a contention workload. Zero fields take
// the documented defaults.
type ContentionConfig struct {
	// Components is the number of independent blocks (default 8).
	Components int
	// Jobs is the total base-job count, split across components in
	// proportion to ZipfWeights(Components, Skew), at least 2 per
	// component (default 512).
	Jobs int
	// SitesPerComponent sizes each block's site range (default 4).
	SitesPerComponent int
	// SiteCapacity is each site's capacity (default 1).
	SiteCapacity float64
	// MeanDemand is the mean total demand per job (default
	// 2×SiteCapacity×SitesPerComponent×Components/Jobs, moderately
	// contending each block).
	MeanDemand float64
	// Skew is the Zipf exponent shared by the size and popularity laws
	// (default 1.1, the paper evaluation's high-skew point).
	Skew float64
	// Mutations is the stream length (default 4096).
	Mutations int
	// WorkScale sets base-job outstanding work per unit demand (default
	// 1e6 — progress reports never complete a base job).
	WorkScale float64
	// Seed drives all randomness.
	Seed uint64
}

func (c ContentionConfig) withDefaults() ContentionConfig {
	if c.Components <= 0 {
		c.Components = 8
	}
	if c.Jobs <= 0 {
		c.Jobs = 512
	}
	if c.SitesPerComponent <= 0 {
		c.SitesPerComponent = 4
	}
	if c.SiteCapacity <= 0 {
		c.SiteCapacity = 1
	}
	if c.MeanDemand <= 0 {
		c.MeanDemand = 2 * c.SiteCapacity * float64(c.SitesPerComponent) *
			float64(c.Components) / float64(c.Jobs)
	}
	if c.Skew <= 0 {
		c.Skew = 1.1
	}
	if c.Mutations <= 0 {
		c.Mutations = 4096
	}
	if c.WorkScale <= 0 {
		c.WorkScale = 1e6
	}
	return c
}

// Contention is a churn stream over a size-skewed base instance. The
// embedded Churn applies and populates exactly like GenerateChurn's.
type Contention struct {
	Churn
	// Sizes is the per-component base-job count, non-increasing in the
	// component index (component 0 is the giant).
	Sizes []int
	// Popularity is the per-component mutation probability the stream was
	// drawn from (normalized size × Zipf weights).
	Popularity []float64
}

// ComponentSizes splits total jobs across k components in proportion to
// ZipfWeights(k, skew), guaranteeing at least 2 jobs per component (a
// component of one job is a trivial solve and would dilute the regime).
// The split is deterministic in (total, k, skew) — no seed — so the hot
// component's identity (index 0, the largest share) is stable across
// seeds.
func ComponentSizes(total, k int, skew float64) []int {
	if k <= 0 {
		return nil
	}
	w := ZipfWeights(k, skew)
	sizes := make([]int, k)
	used := 0
	for c := range sizes {
		sizes[c] = 2
		used += 2
	}
	if used >= total {
		return sizes
	}
	rest := total - used
	given := 0
	for c := range sizes {
		g := int(math.Floor(float64(rest) * w[c]))
		sizes[c] += g
		given += g
	}
	// Rounding remainder lands on the largest components first.
	for c := 0; given < rest; c = (c + 1) % k {
		sizes[c]++
		given++
	}
	return sizes
}

// GenerateContention builds the size-skewed base instance plus its
// popularity-skewed mutation stream. Job naming follows GenerateChurn
// ("c<comp>-j<idx>" base, "c<comp>-t<n>" transient); the op mix is
// weight-heavy (70% reweight, 15% progress, 10% admit, 5% evict) because
// reweights are the cheapest op on the exact path and the most
// buffer-friendly on the phase path — the comparison the -contention
// bench makes.
func GenerateContention(cfg ContentionConfig) *Contention {
	cfg = cfg.withDefaults()
	rng := randx.Stream(cfg.Seed, "workload/contention")
	sizes := ComponentSizes(cfg.Jobs, cfg.Components, cfg.Skew)
	m := cfg.Components * cfg.SitesPerComponent

	in := &core.Instance{SiteCapacity: make([]float64, m)}
	for s := range in.SiteCapacity {
		in.SiteCapacity[s] = cfg.SiteCapacity
	}
	offset := make([]int, cfg.Components) // component → first job index
	for c, sz := range sizes {
		if c > 0 {
			offset[c] = offset[c-1] + sizes[c-1]
		}
		s0 := c * cfg.SitesPerComponent
		for i := 0; i < sz; i++ {
			row := demandRowAt(m, s0, cfg.SitesPerComponent, cfg.MeanDemand, rng)
			in.Demand = append(in.Demand, row)
			in.JobName = append(in.JobName, fmt.Sprintf("c%d-j%d", c, i))
			work := make([]float64, m)
			for s, d := range row {
				work[s] = d * cfg.WorkScale
			}
			in.Work = append(in.Work, work)
		}
	}

	// Popularity ∝ size share × Zipf weight = Zipf², so at skew 1.1 over 8
	// components the giant draws ~70% of the stream.
	zipf := ZipfWeights(cfg.Components, cfg.Skew)
	popularity := make([]float64, cfg.Components)
	var psum float64
	total := float64(cfg.Jobs)
	for c := range popularity {
		popularity[c] = float64(sizes[c]) / total * zipf[c]
		psum += popularity[c]
	}
	for c := range popularity {
		popularity[c] /= psum
	}

	transient := make([][]string, cfg.Components)
	next := make([]int, cfg.Components)
	ops := make([]ChurnOp, 0, cfg.Mutations)
	for len(ops) < cfg.Mutations {
		c := SampleIndex(rng, popularity)
		op := ChurnOp{Component: c}
		switch p := rng.Float64(); {
		case p < 0.70: // reweight a base job
			op.Kind = ChurnWeight
			op.Job = in.JobName[offset[c]+rng.Intn(sizes[c])]
			op.Weight = 0.5 + 0.25*float64(rng.Intn(14))
		case p < 0.85: // progress on a base job
			op.Kind = ChurnProgress
			j := offset[c] + rng.Intn(sizes[c])
			op.Job = in.JobName[j]
			done := make([]float64, m)
			for s, d := range in.Demand[j] {
				if d > 0 {
					done[s] = d * rng.Float64()
				}
			}
			op.Done = done
		case p < 0.95 || len(transient[c]) == 0: // admit a transient job
			op.Kind = ChurnAdd
			op.Job = fmt.Sprintf("c%d-t%d", c, next[c])
			next[c]++
			op.Weight = 0.5 + 0.25*float64(rng.Intn(14))
			op.Demand = demandRowAt(m, c*cfg.SitesPerComponent, cfg.SitesPerComponent, cfg.MeanDemand, rng)
			op.Work = nil
			transient[c] = append(transient[c], op.Job)
		default: // evict the oldest transient in the block
			op.Kind = ChurnRemove
			op.Job = transient[c][0]
			transient[c] = transient[c][1:]
		}
		ops = append(ops, op)
	}
	return &Contention{
		Churn:      Churn{Inst: in, Ops: ops},
		Sizes:      sizes,
		Popularity: popularity,
	}
}

package workload

import (
	"repro/internal/core"
	"repro/internal/randx"
)

// LargeGraphConfig parameterizes a single huge connected component: the
// dense-traffic regime the approximate water-filling fast path targets,
// where component decomposition buys nothing because the whole job×site
// demand graph is one piece. Shared by the -largegraph bench sweep and the
// approx-equivalence property test so both exercise the same graph shapes.
type LargeGraphConfig struct {
	// Jobs and Sites size the bipartite graph (defaults 256 and 32).
	Jobs  int
	Sites int
	// Degree is the number of sites each job demands at (default 4,
	// clamped to Sites). Edges ≈ Jobs×Degree.
	Degree int
	// CapacityTiers is the number of discrete site-capacity classes
	// (default 4). Tiered capacities cluster the exact solve's bottleneck
	// levels, the structure the equi-depth approximation lumps.
	CapacityTiers int
	// CapacityJitter spreads each site's capacity uniformly within
	// ±CapacityJitter of its tier value (relative; default 0.05), so every
	// site still saturates at a distinct level.
	CapacityJitter float64
	// SiteSkew is the Zipf exponent of site popularity for the non-anchor
	// edges (default 0.8): hot sites attract many jobs, the contention
	// that produces bottlenecks.
	SiteSkew float64
	// WeightClasses is the number of discrete job-weight classes
	// (default 3; weights 1..WeightClasses).
	WeightClasses int
	// Seed drives all randomness.
	Seed uint64
}

func (c LargeGraphConfig) withDefaults() LargeGraphConfig {
	if c.Jobs <= 0 {
		c.Jobs = 256
	}
	if c.Sites <= 0 {
		c.Sites = 32
	}
	if c.Degree <= 0 {
		c.Degree = 4
	}
	if c.Degree > c.Sites {
		c.Degree = c.Sites
	}
	if c.CapacityTiers <= 0 {
		c.CapacityTiers = 4
	}
	if c.CapacityJitter < 0 {
		c.CapacityJitter = 0
	} else if c.CapacityJitter == 0 {
		c.CapacityJitter = 0.05
	}
	if c.SiteSkew < 0 {
		c.SiteSkew = 0
	} else if c.SiteSkew == 0 {
		c.SiteSkew = 0.8
	}
	if c.WeightClasses <= 0 {
		c.WeightClasses = 3
	}
	return c
}

// GenerateLargeGraph builds one connected component of Jobs×Degree demand
// edges over Sites sites. Job j is anchored at sites j mod Sites and
// (j+1) mod Sites — a ring through every site that guarantees a single
// component and spreads base load — with its remaining Degree-2 edges
// drawn Zipf-skewed over site popularity. Site capacities come in
// CapacityTiers discrete classes with ±CapacityJitter relative spread;
// job weights in WeightClasses discrete classes; total demand is sized
// for ~2x contention so the solve mixes demand-capped and bottlenecked
// jobs.
func GenerateLargeGraph(cfg LargeGraphConfig) *core.Instance {
	cfg = cfg.withDefaults()
	rng := randx.Stream(cfg.Seed, "workload/largegraph")
	n, m := cfg.Jobs, cfg.Sites
	in := &core.Instance{
		SiteCapacity: make([]float64, m),
		Weight:       make([]float64, n),
		Demand:       make([][]float64, n),
	}
	for s := 0; s < m; s++ {
		tier := s % cfg.CapacityTiers
		base := float64(int(1) << uint(tier)) // 1, 2, 4, ... per tier
		in.SiteCapacity[s] = base * (1 + cfg.CapacityJitter*(2*rng.Float64()-1))
	}
	var capSum float64
	for _, c := range in.SiteCapacity {
		capSum += c
	}
	pop := ZipfWeights(m, cfg.SiteSkew)
	// ~2x contention: total demand across jobs is twice total capacity.
	meanDemand := 2 * capSum / float64(n)
	for j := 0; j < n; j++ {
		in.Weight[j] = float64(1 + rng.Intn(cfg.WeightClasses))
		row := make([]float64, m)
		sites := []int{j % m}
		if m > 1 {
			sites = append(sites, (j+1)%m)
		}
		if extra := cfg.Degree - len(sites); extra > 0 {
			w := append([]float64(nil), pop...)
			for _, s := range sites {
				w[s] = 0
			}
			sites = append(sites, SampleDistinct(rng, w, extra)...)
		}
		total := meanDemand * (0.25 + 1.5*rng.Float64())
		split := make([]float64, len(sites))
		var sum float64
		for x := range split {
			split[x] = 0.1 + rng.Float64()
			sum += split[x]
		}
		for x, s := range sites {
			row[s] = total * split[x] / sum
		}
		in.Demand[j] = row
	}
	return in
}

package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestZipfWeightsEdgeCases(t *testing.T) {
	if w := ZipfWeights(0, 1); w != nil {
		t.Fatalf("ZipfWeights(0) = %v, want nil", w)
	}
	if w := ZipfWeights(-3, 1); w != nil {
		t.Fatalf("ZipfWeights(-3) = %v, want nil", w)
	}
	// n=1: the single weight must normalize to exactly 1 for any skew.
	for _, alpha := range []float64{0, 1, 50} {
		w := ZipfWeights(1, alpha)
		if len(w) != 1 || w[0] != 1 {
			t.Fatalf("ZipfWeights(1, %g) = %v, want [1]", alpha, w)
		}
	}
	// skew ≈ 1: the classical harmonic regime; weights must be finite,
	// positive, decreasing, and sum to 1.
	checkDist := func(alpha float64, m int) {
		t.Helper()
		w := ZipfWeights(m, alpha)
		var sum float64
		for i, v := range w {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("ZipfWeights(%d, %g)[%d] = %g", m, alpha, i, v)
			}
			if i > 0 && alpha > 0 && v > w[i-1] {
				t.Fatalf("ZipfWeights(%d, %g) not decreasing at %d: %g > %g", m, alpha, i, v, w[i-1])
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("ZipfWeights(%d, %g) sums to %g", m, alpha, sum)
		}
	}
	checkDist(1, 64)
	checkDist(0.999, 64)
	// Very large skew: rank^(-50) underflows to 0 beyond the first few
	// ranks; the distribution must still normalize without NaN (0/sum is
	// fine, sum/sum==1 must hold).
	checkDist(50, 64)
	w := ZipfWeights(64, 50)
	if w[0] < 0.999 {
		t.Fatalf("ZipfWeights(64, 50)[0] = %g, want ~1 (mass on rank 1)", w[0])
	}
}

func TestSampleIndexEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Single element: always index 0, regardless of weight.
	for _, w := range [][]float64{{1}, {0}, {1e-300}} {
		for k := 0; k < 10; k++ {
			if i := SampleIndex(rng, w); i != 0 {
				t.Fatalf("SampleIndex(%v) = %d, want 0", w, i)
			}
		}
	}
	// Zero-sum weights fall back to uniform; indices must stay in range.
	zero := make([]float64, 7)
	seen := map[int]bool{}
	for k := 0; k < 200; k++ {
		i := SampleIndex(rng, zero)
		if i < 0 || i >= len(zero) {
			t.Fatalf("SampleIndex(zero) = %d out of range", i)
		}
		seen[i] = true
	}
	if len(seen) < 2 {
		t.Fatalf("SampleIndex(zero) not uniform: only saw %v", seen)
	}
	// Extreme skew: rank 1 holds ~all mass, so samples concentrate there.
	w := ZipfWeights(32, 50)
	for k := 0; k < 100; k++ {
		if i := SampleIndex(rng, w); i != 0 {
			t.Fatalf("SampleIndex(zipf 50) = %d, want 0", i)
		}
	}
	// Determinism: same seed, same draws.
	a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	wts := ZipfWeights(16, 1)
	for k := 0; k < 50; k++ {
		if ia, ib := SampleIndex(a, wts), SampleIndex(b, wts); ia != ib {
			t.Fatalf("draw %d: %d != %d for identical seeds", k, ia, ib)
		}
	}
}

func TestSampleDistinctClampAndUniqueness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := ZipfWeights(10, 1)
	// k > len clamps; result must be a permutation of all indices.
	out := SampleDistinct(rng, w, 25)
	if len(out) != 10 {
		t.Fatalf("SampleDistinct clamped to %d, want 10", len(out))
	}
	seen := map[int]bool{}
	for _, i := range out {
		if seen[i] {
			t.Fatalf("SampleDistinct repeated index %d", i)
		}
		seen[i] = true
	}
}

package workload

import (
	"repro/internal/core"
	"repro/internal/randx"
)

// SparseConfig parameterizes a block-diagonal multi-component instance:
// the data-locality regime the component decomposition targets, where each
// job demands resource only at the few sites holding its data and the
// job×site demand graph splits into many independent components.
type SparseConfig struct {
	// Components is the number of independent blocks (default 16).
	Components int
	// JobsPerComponent and SitesPerComponent size each block
	// (defaults 16 and 4).
	JobsPerComponent  int
	SitesPerComponent int
	// SiteCapacity is each site's capacity (default 1).
	SiteCapacity float64
	// MeanDemand is the mean total demand per job (default sized so each
	// block is moderately contended: 2×SitesPerComponent/JobsPerComponent
	// of the block capacity).
	MeanDemand float64
	// Seed drives all randomness.
	Seed uint64
}

func (c SparseConfig) withDefaults() SparseConfig {
	if c.Components <= 0 {
		c.Components = 16
	}
	if c.JobsPerComponent <= 0 {
		c.JobsPerComponent = 16
	}
	if c.SitesPerComponent <= 0 {
		c.SitesPerComponent = 4
	}
	if c.SiteCapacity <= 0 {
		c.SiteCapacity = 1
	}
	if c.MeanDemand <= 0 {
		c.MeanDemand = 2 * c.SiteCapacity * float64(c.SitesPerComponent) / float64(c.JobsPerComponent)
	}
	return c
}

// GenerateSparse builds a sparse instance of Components independent blocks,
// each with JobsPerComponent jobs demanding only within the block's
// SitesPerComponent sites. Every block is connected (each job touches the
// block's first site), so the instance has exactly Components connected
// components.
func GenerateSparse(cfg SparseConfig) *core.Instance {
	cfg = cfg.withDefaults()
	rng := randx.Stream(cfg.Seed, "workload/sparse")
	n := cfg.Components * cfg.JobsPerComponent
	m := cfg.Components * cfg.SitesPerComponent
	in := &core.Instance{
		SiteCapacity: make([]float64, m),
		Demand:       make([][]float64, n),
	}
	for s := range in.SiteCapacity {
		in.SiteCapacity[s] = cfg.SiteCapacity
	}
	for c := 0; c < cfg.Components; c++ {
		s0 := c * cfg.SitesPerComponent
		for i := 0; i < cfg.JobsPerComponent; i++ {
			j := c*cfg.JobsPerComponent + i
			row := make([]float64, m)
			// Anchor every job at the block's first site so the block is one
			// component, then spread over a random subset of the rest.
			k := 1 + rng.Intn(cfg.SitesPerComponent)
			sites := append([]int{0}, rng.Perm(cfg.SitesPerComponent - 1)[:k-1]...)
			total := cfg.MeanDemand * (0.5 + rng.Float64())
			split := make([]float64, k)
			var sum float64
			for x := range split {
				split[x] = 0.1 + rng.Float64()
				sum += split[x]
			}
			for x, off := range sites {
				if x > 0 {
					off++ // Perm draws from the sites after the anchor
				}
				row[s0+off] = total * split[x] / sum
			}
			in.Demand[j] = row
		}
	}
	return in
}

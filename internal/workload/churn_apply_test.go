package workload_test

// External test package: scheduler transitively imports workload (via
// sim), so applying a churn stream to a live controller must be tested
// from outside the package to avoid an import cycle.

import (
	"testing"

	"repro/internal/scheduler"
	"repro/internal/workload"
)

// TestChurnStreamApplies: the stream applies to a live scheduler without
// error in generated order, and base jobs survive (progress never
// completes them).
func TestChurnStreamApplies(t *testing.T) {
	ch := workload.GenerateChurn(workload.ChurnConfig{
		Sparse:    workload.SparseConfig{Components: 4, JobsPerComponent: 3, SitesPerComponent: 2, Seed: 1},
		Mutations: 250,
		Seed:      7,
	})
	sc, err := scheduler.New(scheduler.Config{SiteCapacity: ch.Inst.SiteCapacity})
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Populate(sc); err != nil {
		t.Fatal(err)
	}
	for i, op := range ch.Ops {
		if err := op.Apply(sc); err != nil {
			t.Fatalf("op %d (%+v): %v", i, op, err)
		}
	}
	st := sc.Stats()
	if st.Completed != 0 {
		t.Fatalf("churn progress completed %d base jobs, want 0", st.Completed)
	}
	if _, _, err := sc.Resolve(); err != nil {
		t.Fatal(err)
	}
}

package workload

import (
	"repro/internal/core"
	"repro/internal/randx"
)

// EndowmentConfig parameterizes the sharing-incentive stress family, built
// from the counterexample motif of the paper's negative result: "endowed"
// jobs own a generous private site (where their demand, not capacity, is
// the binding cap) and hold small claims on scarce shared sites that are
// crowded by "poor" jobs living only there. Aggregate max-min fairness
// hands the shared sites entirely to the poor jobs, pushing every endowed
// job below its isolated equal share; Enhanced AMF restores the
// entitlement.
type EndowmentConfig struct {
	// NumEndowed is the number of endowed jobs (each gets its own private
	// site).
	NumEndowed int
	// NumShared is the number of scarce shared sites.
	NumShared int
	// PoorPerSite is how many poor jobs are pinned at each shared site —
	// the contention axis of the E5 figure.
	PoorPerSite int
	// SharedCapacity is each shared site's capacity (default 0.2).
	SharedCapacity float64
	// PrivateCapacity is each private site's capacity. The default scales
	// with the job count (2 * n * PrivateDemand) so that the equal split
	// of the private site always exceeds the endowed job's demand there —
	// the motif requires the demand, not the capacity, to be binding.
	PrivateCapacity float64
	// PrivateDemand is each endowed job's demand at its private site
	// (default 0.9). It is deliberately not jittered: with symmetric
	// endowments and no poor jobs, AMF meets every equal share exactly,
	// giving the contention sweep a clean zero baseline.
	PrivateDemand float64
	// Jitter randomizes demands by +-Jitter fraction (default 0: exact).
	Jitter float64
	Seed   uint64
}

func (c EndowmentConfig) withDefaults() EndowmentConfig {
	if c.SharedCapacity <= 0 {
		c.SharedCapacity = 0.2
	}
	if c.PrivateDemand <= 0 {
		c.PrivateDemand = 0.9
	}
	if c.PrivateCapacity <= 0 {
		n := c.NumEndowed + c.NumShared*c.PoorPerSite
		c.PrivateCapacity = 2 * float64(n) * c.PrivateDemand
	}
	return c
}

// EndowmentInstance builds the instance: sites are [shared..., private...];
// jobs are [endowed..., poor...]. Endowed job i demands PrivateDemand at
// private site i and 1 unit at every shared site; each poor job demands 1
// unit at its single shared site.
func EndowmentInstance(cfg EndowmentConfig) *core.Instance {
	cfg = cfg.withDefaults()
	rng := randx.Stream(cfg.Seed, "endowment")
	jitter := func(v float64) float64 {
		if cfg.Jitter <= 0 {
			return v
		}
		return v * (1 + cfg.Jitter*(2*rng.Float64()-1))
	}

	m := cfg.NumShared + cfg.NumEndowed
	n := cfg.NumEndowed + cfg.NumShared*cfg.PoorPerSite
	in := &core.Instance{
		SiteCapacity: make([]float64, m),
		Demand:       make([][]float64, n),
	}
	for s := 0; s < cfg.NumShared; s++ {
		in.SiteCapacity[s] = jitter(cfg.SharedCapacity)
	}
	for i := 0; i < cfg.NumEndowed; i++ {
		in.SiteCapacity[cfg.NumShared+i] = cfg.PrivateCapacity
	}
	for j := 0; j < n; j++ {
		in.Demand[j] = make([]float64, m)
	}
	for i := 0; i < cfg.NumEndowed; i++ {
		in.Demand[i][cfg.NumShared+i] = cfg.PrivateDemand
		for s := 0; s < cfg.NumShared; s++ {
			in.Demand[i][s] = jitter(1)
		}
	}
	j := cfg.NumEndowed
	for s := 0; s < cfg.NumShared; s++ {
		for k := 0; k < cfg.PoorPerSite; k++ {
			in.Demand[j][s] = jitter(1)
			j++
		}
	}
	return in
}

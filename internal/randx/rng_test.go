package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSourceSeedReset(t *testing.T) {
	s := NewSource(7)
	first := s.Uint64()
	s.Seed(7)
	if got := s.Uint64(); got != first {
		t.Fatalf("Seed did not reset state: got %d want %d", got, first)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := NewSource(1)
	b := NewSource(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := NewSource(99)
	for i := 0; i < 10000; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative value %d", v)
		}
	}
}

func TestDeriveSeedStable(t *testing.T) {
	// Golden values lock the derivation so that experiment outputs remain
	// byte-stable across refactors.
	if DeriveSeed(1, "alpha") != DeriveSeed(1, "alpha") {
		t.Fatal("DeriveSeed not deterministic")
	}
	if DeriveSeed(1, "alpha") == DeriveSeed(1, "beta") {
		t.Fatal("stream names collide")
	}
	if DeriveSeed(1, "alpha") == DeriveSeed(2, "alpha") {
		t.Fatal("roots collide")
	}
}

func TestStreamIndependence(t *testing.T) {
	a := Stream(5, "jobs")
	b := Stream(5, "sites")
	// Streams must not be shifted copies of one another.
	av := make([]uint64, 64)
	bv := make([]uint64, 64)
	for i := range av {
		av[i] = a.Uint64()
		bv[i] = b.Uint64()
	}
	for lag := 0; lag < 8; lag++ {
		match := 0
		for i := 0; i+lag < len(av); i++ {
			if av[i+lag] == bv[i] {
				match++
			}
		}
		if match > 0 {
			t.Fatalf("streams share %d values at lag %d", match, lag)
		}
	}
}

func TestSubStreamsDiffer(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 200; i++ {
		r := Sub(9, "trial", i)
		v := r.Uint64()
		if j, ok := seen[v]; ok {
			t.Fatalf("sub-streams %d and %d start identically", i, j)
		}
		seen[v] = i
	}
}

func TestUniformityRough(t *testing.T) {
	// A coarse chi-square-ish sanity check: 16 buckets over 64k draws should
	// each hold close to 4096 values.
	s := NewSource(2024)
	const draws = 1 << 16
	var buckets [16]int
	for i := 0; i < draws; i++ {
		buckets[s.Uint64()>>60]++
	}
	want := float64(draws) / 16
	for i, c := range buckets {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d holds %d values, want about %.0f", i, c, want)
		}
	}
}

func TestQuickDeriveSeedInjectiveish(t *testing.T) {
	// Property: distinct (root, name) pairs essentially never collide.
	f := func(root uint64, a, b string) bool {
		if a == b {
			return true
		}
		return DeriveSeed(root, a) != DeriveSeed(root, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

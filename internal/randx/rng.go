// Package randx provides deterministic, splittable random number streams.
//
// All experiments in this repository are seeded. A single root seed is
// expanded into independent named streams (one per workload dimension, per
// trial, per generator) so that adding a new consumer of randomness does not
// perturb the values observed by existing consumers. Streams are derived by
// hashing the root seed with the stream name using SplitMix64, the standard
// mixer for seeding PRNG families.
package randx

import (
	"hash/fnv"
	"math/rand"
)

// splitmix64 advances the SplitMix64 state and returns the next output.
// It is used both as a seed deriver and as the core of Source.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a SplitMix64-backed rand.Source64. It is deliberately simple:
// the generators in this repository need reproducibility and speed, not
// cryptographic strength.
type Source struct {
	state uint64
}

// NewSource returns a Source seeded with the given value.
func NewSource(seed uint64) *Source {
	return &Source{state: seed}
}

// Seed resets the source state. Implements rand.Source.
func (s *Source) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 returns the next 64 random bits. Implements rand.Source64.
func (s *Source) Uint64() uint64 { return splitmix64(&s.state) }

// Int63 returns a non-negative 63-bit value. Implements rand.Source.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// DeriveSeed maps (root seed, stream name) to a stream seed. The mapping is
// stable across runs and platforms.
func DeriveSeed(root uint64, name string) uint64 {
	h := fnv.New64a()
	// The hash of the name decorrelates streams; mixing with the root seed
	// through SplitMix64 decorrelates roots.
	_, _ = h.Write([]byte(name))
	state := root ^ h.Sum64()
	// A couple of mixing rounds so that nearby roots yield unrelated states.
	splitmix64(&state)
	out := splitmix64(&state)
	return out
}

// Stream returns a deterministic *rand.Rand for the (root, name) pair.
func Stream(root uint64, name string) *rand.Rand {
	return rand.New(NewSource(DeriveSeed(root, name)))
}

// Sub derives a child stream from a parent stream name, e.g. per-trial
// streams: Sub(root, "e1/trial", 7).
func Sub(root uint64, name string, index int) *rand.Rand {
	state := DeriveSeed(root, name)
	state ^= uint64(index+1) * 0x9e3779b97f4a7c15
	splitmix64(&state)
	return rand.New(NewSource(splitmix64(&state)))
}

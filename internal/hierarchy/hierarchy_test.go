package hierarchy

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fairness"
)

func feq(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestTwoGroupsEqualWeight(t *testing.T) {
	// Group A has 3 jobs, group B has 1 job, all contesting one site:
	// groups split 50/50 regardless of member count; inside A, thirds.
	in := &core.Instance{
		SiteCapacity: []float64{6},
		Demand:       [][]float64{{6}, {6}, {6}, {6}},
	}
	res, err := Allocate(nil, in, []Group{
		{Name: "A", Jobs: []int{0, 1, 2}},
		{Name: "B", Jobs: []int{3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !feq(res.GroupAggregate[0], 3) || !feq(res.GroupAggregate[1], 3) {
		t.Fatalf("group aggregates %v, want [3 3]", res.GroupAggregate)
	}
	for j := 0; j < 3; j++ {
		if !feq(res.Alloc.Aggregate(j), 1) {
			t.Fatalf("A member %d got %g, want 1", j, res.Alloc.Aggregate(j))
		}
	}
	if !feq(res.Alloc.Aggregate(3), 3) {
		t.Fatalf("B member got %g, want 3", res.Alloc.Aggregate(3))
	}
}

func TestGroupWeights(t *testing.T) {
	in := &core.Instance{
		SiteCapacity: []float64{6},
		Demand:       [][]float64{{6}, {6}},
	}
	res, err := Allocate(nil, in, []Group{
		{Name: "light", Weight: 1, Jobs: []int{0}},
		{Name: "heavy", Weight: 2, Jobs: []int{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !feq(res.GroupAggregate[0], 2) || !feq(res.GroupAggregate[1], 4) {
		t.Fatalf("weighted groups %v, want [2 4]", res.GroupAggregate)
	}
}

func TestGroupShareIndependentOfMemberCount(t *testing.T) {
	// Flat weighted AMF would give a 5-job org 5x the share of a 1-job
	// org; hierarchy must keep them equal.
	in := &core.Instance{
		SiteCapacity: []float64{10},
		Demand:       [][]float64{{10}, {10}, {10}, {10}, {10}, {10}},
	}
	res, err := Allocate(nil, in, []Group{
		{Name: "big", Jobs: []int{0, 1, 2, 3, 4}},
		{Name: "small", Jobs: []int{5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !feq(res.GroupAggregate[0], res.GroupAggregate[1]) {
		t.Fatalf("groups %v, want equal", res.GroupAggregate)
	}
}

func TestInnerWeights(t *testing.T) {
	in := &core.Instance{
		SiteCapacity: []float64{6},
		Demand:       [][]float64{{6}, {6}, {6}},
		Weight:       []float64{1, 2, 1},
	}
	res, err := Allocate(nil, in, []Group{
		{Name: "A", Jobs: []int{0, 1}},
		{Name: "B", Jobs: []int{2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Groups split 3/3; inside A the 1:2 weights give 1 and 2.
	if !feq(res.Alloc.Aggregate(0), 1) || !feq(res.Alloc.Aggregate(1), 2) {
		t.Fatalf("inner weighted %g/%g, want 1/2",
			res.Alloc.Aggregate(0), res.Alloc.Aggregate(1))
	}
}

func TestCrossSiteHierarchy(t *testing.T) {
	// Org A pinned at site 0; org B flexible. Group-level AMF routes B to
	// site 1 so both orgs aggregate 1.
	in := &core.Instance{
		SiteCapacity: []float64{1, 1},
		Demand: [][]float64{
			{1, 0},
			{1, 1},
		},
	}
	res, err := Allocate(nil, in, []Group{
		{Name: "A", Jobs: []int{0}},
		{Name: "B", Jobs: []int{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !feq(res.GroupAggregate[0], 1) || !feq(res.GroupAggregate[1], 1) {
		t.Fatalf("groups %v, want [1 1]", res.GroupAggregate)
	}
}

func TestFeasibilityAndEnvelopes(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(8)
		m := 1 + rng.Intn(4)
		in := &core.Instance{
			SiteCapacity: make([]float64, m),
			Demand:       make([][]float64, n),
		}
		for s := range in.SiteCapacity {
			in.SiteCapacity[s] = 1 + rng.Float64()*4
		}
		for j := range in.Demand {
			in.Demand[j] = make([]float64, m)
			for s := range in.Demand[j] {
				if rng.Intn(2) == 0 {
					in.Demand[j][s] = rng.Float64() * 3
				}
			}
		}
		// Random 2-3 group partition.
		k := 2 + rng.Intn(2)
		groups := make([]Group, k)
		for g := range groups {
			groups[g].Name = string(rune('A' + g))
			groups[g].Weight = 0.5 + rng.Float64()*2
		}
		for j := 0; j < n; j++ {
			g := rng.Intn(k)
			groups[g].Jobs = append(groups[g].Jobs, j)
		}
		ok := true
		for _, g := range groups {
			if len(g.Jobs) == 0 {
				ok = false
			}
		}
		if !ok {
			continue
		}
		res, err := Allocate(nil, in, groups)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.Alloc.CheckFeasible(1e-5 * in.Scale()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Members stay within the group envelope per site.
		for g, grp := range groups {
			for s := 0; s < m; s++ {
				var used float64
				for _, j := range grp.Jobs {
					used += res.Alloc.Share[j][s]
				}
				if used > res.GroupEnvelope[g][s]+1e-5*in.Scale() {
					t.Fatalf("trial %d: group %d exceeds envelope at site %d: %g > %g",
						trial, g, s, used, res.GroupEnvelope[g][s])
				}
			}
		}
		// Every member's share respects its own demand caps even though the
		// inner instances only see the envelope.
		for j := 0; j < n; j++ {
			for s := 0; s < m; s++ {
				if res.Alloc.Share[j][s] > in.Demand[j][s]+1e-6 {
					t.Fatalf("trial %d: job %d over demand at site %d", trial, j, s)
				}
			}
		}
	}
}

func TestIntraGroupMaxMin(t *testing.T) {
	// Within a group's envelope, members are max-min fair: probe with the
	// generic certificate using an envelope-constrained oracle.
	in := &core.Instance{
		SiteCapacity: []float64{4},
		Demand:       [][]float64{{1}, {4}, {4}, {4}},
	}
	res, err := Allocate(nil, in, []Group{
		{Name: "A", Jobs: []int{0, 1, 2}},
		{Name: "B", Jobs: []int{3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Group A's envelope is 2 (its demand 9 vs B's 4 on capacity 4 -> 2/2).
	if !feq(res.GroupAggregate[0], 2) {
		t.Fatalf("group A aggregate %g, want 2", res.GroupAggregate[0])
	}
	// Inside A: demands 1,4,4 on capacity 2 -> waterfill gives 0.666 each
	// until job 0's demand... waterfill(2, [1,4,4]) = [0.666..., 0.666...,
	// 0.666...].
	want := fairness.Waterfill(2, []float64{1, 4, 4})
	for i, j := range []int{0, 1, 2} {
		if !feq(res.Alloc.Aggregate(j), want[i]) {
			t.Fatalf("member %d got %g, want %g", j, res.Alloc.Aggregate(j), want[i])
		}
	}
}

func TestValidateGroups(t *testing.T) {
	in := &core.Instance{
		SiteCapacity: []float64{1},
		Demand:       [][]float64{{1}, {1}},
	}
	cases := [][]Group{
		{},
		{{Name: "A", Jobs: []int{0}}}, // job 1 unassigned
		{{Name: "A", Jobs: []int{0, 0}}, {Name: "B", Jobs: []int{1}}}, // duplicate
		{{Name: "A", Jobs: []int{0, 5}}, {Name: "B", Jobs: []int{1}}}, // out of range
		{{Name: "A", Jobs: nil}, {Name: "B", Jobs: []int{0, 1}}},      // empty group
	}
	for i, groups := range cases {
		if _, err := Allocate(nil, in, groups); err == nil {
			t.Fatalf("case %d: invalid groups accepted", i)
		}
	}
}

func TestSingleGroupStillFeasibleAndEfficient(t *testing.T) {
	// With one group the top level grants the max-total envelope; the
	// inner division must remain feasible and Pareto efficient overall.
	in := &core.Instance{
		SiteCapacity: []float64{2, 2},
		Demand: [][]float64{
			{2, 1},
			{1, 2},
		},
	}
	res, err := Allocate(nil, in, []Group{{Name: "all", Jobs: []int{0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Alloc.CheckFeasible(1e-6); err != nil {
		t.Fatal(err)
	}
	var total float64
	for j := 0; j < 2; j++ {
		total += res.Alloc.Aggregate(j)
	}
	if !feq(total, core.MaxTotalAllocation(in)) {
		t.Fatalf("single-group total %g, want max %g", total, core.MaxTotalAllocation(in))
	}
}

// Package hierarchy implements two-level (queue-based) aggregate max-min
// fairness, the arrangement cluster managers expose as hierarchical
// queues: capacity is first divided across groups (organizations, teams)
// in proportion to group weights under AMF semantics, then each group's
// per-site envelope is divided among its member jobs, again under AMF.
//
// This is the standard practical construction (hierarchical queues in
// YARN/Mesos apply the same two-phase idea): the group level sees each
// group as one super-job whose per-site demand is the sum of its members'
// demands, so a group's share is independent of how many jobs it
// enqueues; inside the group, members are max-min fair subject to the
// group's envelope. The composition is feasible by construction and both
// levels inherit AMF's properties at their own scope.
package hierarchy

import (
	"fmt"

	"repro/internal/core"
)

// Group is a set of member jobs sharing a weight at the top level.
type Group struct {
	Name   string
	Weight float64 // <= 0 means 1
	// Jobs are indices into the instance's job list. Every job must belong
	// to exactly one group.
	Jobs []int
}

// Result carries both levels of the allocation.
type Result struct {
	// Alloc is the final per-job allocation on the original instance.
	Alloc *core.Allocation
	// GroupAggregate[g] is group g's total allocation across sites.
	GroupAggregate []float64
	// GroupEnvelope[g][s] is the per-site capacity handed to group g.
	GroupEnvelope [][]float64
}

// Allocate computes the hierarchical AMF allocation. Weights on the inner
// instance's jobs (Instance.Weight) shape the intra-group division.
func Allocate(sv *core.Solver, in *core.Instance, groups []Group) (*Result, error) {
	if sv == nil {
		sv = core.NewSolver()
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := validateGroups(in, groups); err != nil {
		return nil, err
	}

	m := in.NumSites()

	// Level 1: one super-job per group; demand = sum of member demands.
	top := &core.Instance{
		SiteCapacity: append([]float64(nil), in.SiteCapacity...),
		Demand:       make([][]float64, len(groups)),
		Weight:       make([]float64, len(groups)),
	}
	for g, grp := range groups {
		row := make([]float64, m)
		for _, j := range grp.Jobs {
			for s := 0; s < m; s++ {
				row[s] += in.Demand[j][s]
			}
		}
		top.Demand[g] = row
		w := grp.Weight
		if w <= 0 {
			w = 1
		}
		top.Weight[g] = w
	}
	topAlloc, err := sv.AMF(top)
	if err != nil {
		return nil, fmt.Errorf("hierarchy: group level: %w", err)
	}

	// Level 2: divide each group's per-site envelope among its members.
	res := &Result{
		Alloc:          core.NewAllocation(in),
		GroupAggregate: topAlloc.Aggregates(),
		GroupEnvelope:  make([][]float64, len(groups)),
	}
	for g, grp := range groups {
		envelope := append([]float64(nil), topAlloc.Share[g]...)
		res.GroupEnvelope[g] = envelope
		inner := &core.Instance{
			SiteCapacity: envelope,
			Demand:       make([][]float64, len(grp.Jobs)),
			Weight:       make([]float64, len(grp.Jobs)),
		}
		for i, j := range grp.Jobs {
			inner.Demand[i] = append([]float64(nil), in.Demand[j]...)
			inner.Weight[i] = in.JobWeight(j)
		}
		innerAlloc, err := sv.AMF(inner)
		if err != nil {
			return nil, fmt.Errorf("hierarchy: group %q: %w", grp.Name, err)
		}
		for i, j := range grp.Jobs {
			copy(res.Alloc.Share[j], innerAlloc.Share[i])
		}
	}
	return res, nil
}

func validateGroups(in *core.Instance, groups []Group) error {
	if len(groups) == 0 {
		return fmt.Errorf("hierarchy: no groups")
	}
	seen := make([]bool, in.NumJobs())
	for g, grp := range groups {
		if len(grp.Jobs) == 0 {
			return fmt.Errorf("hierarchy: group %d (%q) has no jobs", g, grp.Name)
		}
		for _, j := range grp.Jobs {
			if j < 0 || j >= in.NumJobs() {
				return fmt.Errorf("hierarchy: group %q references job %d of %d",
					grp.Name, j, in.NumJobs())
			}
			if seen[j] {
				return fmt.Errorf("hierarchy: job %d appears in multiple groups", j)
			}
			seen[j] = true
		}
	}
	for j, ok := range seen {
		if !ok {
			return fmt.Errorf("hierarchy: job %d belongs to no group", j)
		}
	}
	return nil
}

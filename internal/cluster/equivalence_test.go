package cluster_test

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/scheduler"
	"repro/internal/policy"
	"repro/internal/workload"
)

// routerTarget adapts the Router to workload.ChurnTarget.
type routerTarget struct{ r *cluster.Router }

func (t routerTarget) AddJob(id string, w float64, d, wk []float64) error {
	return t.r.AddJob(context.Background(), id, w, d, wk)
}
func (t routerTarget) RemoveJob(id string) error {
	return t.r.RemoveJob(context.Background(), id)
}
func (t routerTarget) UpdateWeight(id string, w float64) error {
	return t.r.UpdateWeight(context.Background(), id, w)
}
func (t routerTarget) ReportProgress(id string, done []float64) (bool, error) {
	return t.r.ReportProgress(context.Background(), id, done)
}

func diffAllocs(t *testing.T, what string, a, b map[string][]float64, tol float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d jobs", what, len(a), len(b))
	}
	for id, ra := range a {
		rb, ok := b[id]
		if !ok {
			t.Fatalf("%s: job %q missing on one side", what, id)
		}
		for s := range ra {
			if math.Abs(ra[s]-rb[s]) > tol {
				t.Fatalf("%s: job %q site %d: %g vs %g (tol %g)",
					what, id, s, ra[s], rb[s], tol)
			}
		}
	}
}

// TestRouterEquivalence is the sharding correctness property from
// DESIGN.md §14: for any churn stream, a router over N shards produces
// allocations identical (to 1e-9·Scale) to one scheduler solving the
// whole instance — for AMF trivially (components are independent) and
// for Enhanced-AMF because the router's weight broadcasts reproduce the
// global equal-share floors on every shard.
//
// 50 seeds × 2 policies × 2 shard counts = 200 independent streams.
func TestRouterEquivalence(t *testing.T) {
	const trials = 50
	for _, pol := range []policy.Policy{policy.AMF, policy.EnhancedAMF} {
		for _, shardCount := range []int{2, 3} {
			for trial := 0; trial < trials; trial++ {
				pol, shardCount, trial := pol, shardCount, trial
				t.Run(fmt.Sprintf("%s/shards%d/seed%d", pol.Name(), shardCount, trial), func(t *testing.T) {
					t.Parallel()
					runEquivalence(t, pol, shardCount, uint64(9000+trial))
				})
			}
		}
	}
}

func runEquivalence(t *testing.T, pol policy.Policy, shardCount int, seed uint64) {
	churn := workload.GenerateChurn(workload.ChurnConfig{
		Sparse: workload.SparseConfig{
			Components:        8,
			JobsPerComponent:  3,
			SitesPerComponent: 3,
			Seed:              seed,
		},
		Mutations: 30,
		Seed:      seed ^ 0xA5A5,
	})
	caps := churn.Inst.SiteCapacity

	oracle, err := scheduler.New(scheduler.Config{SiteCapacity: caps, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	shards, _ := newEngineShards(t, shardCount, caps, pol)
	router, err := cluster.NewRouter(shards, pol)
	if err != nil {
		t.Fatal(err)
	}
	tgt := routerTarget{router}

	if err := churn.Populate(oracle); err != nil {
		t.Fatal(err)
	}
	if err := churn.Populate(tgt); err != nil {
		t.Fatal(err)
	}
	for i, op := range churn.Ops {
		if err := op.Apply(oracle); err != nil {
			t.Fatalf("oracle op %d: %v", i, err)
		}
		if err := op.Apply(tgt); err != nil {
			t.Fatalf("router op %d: %v", i, err)
		}
	}

	want, err := oracle.Allocation()
	if err != nil {
		t.Fatal(err)
	}
	got, err := router.Allocation(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	diffAllocs(t, "router vs oracle", got, want, 1e-9*churn.Inst.Scale())

	if vec := router.VersionVector(); len(vec) != shardCount {
		t.Fatalf("version vector has %d entries, want %d", len(vec), shardCount)
	}
	// Cross-check the ledger: the router's W matches the oracle's live
	// weight sum bit-for-bit relevant to the floors.
	if pol.Capabilities().GlobalWeightFloors {
		if w, o := router.RouterStats().WeightSum, oracle.WeightSum(); math.Abs(w-o) > 1e-9 {
			t.Fatalf("router weight sum %g, oracle %g", w, o)
		}
	}
}

package cluster_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/obs/span"
	"repro/internal/scheduler"
	"repro/internal/serve"
	"repro/internal/policy"
	"repro/internal/workload"
)

// TestRouterOverHTTPShards runs the whole wire path: engine shards
// behind real API servers, a router over HTTPShards, and the router's
// own HTTP handler — merged allocations must still match the
// single-scheduler oracle, and the cluster routes must serve.
func TestRouterOverHTTPShards(t *testing.T) {
	pol := policy.EnhancedAMF
	churn := workload.GenerateChurn(workload.ChurnConfig{
		Sparse: workload.SparseConfig{
			Components:        6,
			JobsPerComponent:  3,
			SitesPerComponent: 2,
			Seed:              21,
		},
		Mutations: 30,
		Seed:      22,
	})
	caps := churn.Inst.SiteCapacity

	shards := make([]cluster.Shard, 2)
	for i := range shards {
		sc, err := scheduler.New(scheduler.Config{SiteCapacity: caps, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		rec := span.NewRecorder(64)
		eng, err := serve.New(sc, serve.Config{Traces: rec})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = eng.Close() })
		srv := httptest.NewServer(api.NewEngineServer(eng, nil, caps, pol).SetTraces(rec).Handler())
		t.Cleanup(srv.Close)
		shards[i] = cluster.HTTPShard{Client: api.NewClient(srv.URL, srv.Client())}
	}
	router, err := cluster.NewRouter(shards, pol)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(cluster.NewHandler(router, nil, caps, pol))
	t.Cleanup(front.Close)
	cl := api.NewClient(front.URL, front.Client())
	ctx := context.Background()

	oracle, err := scheduler.New(scheduler.Config{SiteCapacity: caps, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}

	// Drive the churn stream through the router's public HTTP API.
	clientTarget := apiTarget{cl}
	if err := churn.Populate(oracle); err != nil {
		t.Fatal(err)
	}
	if err := churn.Populate(clientTarget); err != nil {
		t.Fatal(err)
	}
	for i, op := range churn.Ops {
		if err := op.Apply(oracle); err != nil {
			t.Fatalf("oracle op %d: %v", i, err)
		}
		if err := op.Apply(clientTarget); err != nil {
			t.Fatalf("router op %d: %v", i, err)
		}
	}

	if err := cl.Readyz(ctx); err != nil {
		t.Fatalf("cluster readyz = %v", err)
	}
	alloc, err := cl.Allocation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.Allocation()
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string][]float64, len(alloc.Jobs))
	for id, sh := range alloc.Jobs {
		got[id] = sh.Shares
	}
	diffAllocs(t, "http router vs oracle", got, want, 1e-9*churn.Inst.Scale())
	if alloc.Version == 0 {
		t.Fatal("merged allocation has version 0")
	}

	// Cluster-specific routes.
	var versions cluster.VersionsResponse
	getJSON(t, front.URL+"/v1/cluster/versions", &versions)
	if versions.Shards != 2 || len(versions.Versions) != 2 || versions.Sum != alloc.Version {
		t.Fatalf("versions = %+v (allocation version %d)", versions, alloc.Version)
	}
	var rstats cluster.RouterStatsResponse
	getJSON(t, front.URL+"/v1/cluster/stats", &rstats)
	if rstats.Jobs == 0 || rstats.Broadcasts == 0 {
		t.Fatalf("router stats = %+v", rstats)
	}
	traces, err := cl.Traces(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces.Traces) == 0 {
		t.Fatal("merged traces empty")
	}
	for i := 1; i < len(traces.Traces); i++ {
		if traces.Traces[i].Start.After(traces.Traces[i-1].Start) {
			t.Fatal("merged traces not newest-first")
		}
	}
	// Merged stats through the standard surface.
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ost := oracle.Stats()
	if st.Jobs != ost.Jobs {
		t.Fatalf("merged stats jobs = %d, oracle %d", st.Jobs, ost.Jobs)
	}
}

// apiTarget adapts the typed API client to workload.ChurnTarget.
type apiTarget struct{ c *api.Client }

func (t apiTarget) AddJob(id string, w float64, d, wk []float64) error {
	return t.c.AddJob(context.Background(), api.AddJobRequest{ID: id, Weight: w, Demand: d, Work: wk})
}
func (t apiTarget) RemoveJob(id string) error {
	return t.c.RemoveJob(context.Background(), id)
}
func (t apiTarget) UpdateWeight(id string, w float64) error {
	return t.c.UpdateWeight(context.Background(), id, w)
}
func (t apiTarget) ReportProgress(id string, done []float64) (bool, error) {
	return t.c.ReportProgress(context.Background(), id, done)
}

func getJSON(t *testing.T, url string, out interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

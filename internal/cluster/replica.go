package cluster

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/policy"
	"repro/internal/scheduler"
	"repro/internal/serve"
	"repro/internal/wal"
)

// codedError is an error carrying its own stable API code (api.Coder).
type codedError struct{ msg, code string }

func (e *codedError) Error() string   { return e.msg }
func (e *codedError) APICode() string { return e.code }

// ErrReadOnly rejects mutations on a read replica: writes go to the
// primary; the replica only tails its WAL. Served as 400
// invalid_argument — the client addressed a write to a read endpoint.
var ErrReadOnly error = &codedError{
	msg: "cluster: replica is read-only, mutate the primary", code: api.CodeInvalidArgument}

// ErrSyncing is returned by a replica's reads and ReadyErr until it has
// caught up with the primary's durable head for the first time. Served
// as 503 unavailable: retryable once replay finishes.
var ErrSyncing error = &codedError{
	msg: "cluster: replica replaying WAL, not caught up yet", code: api.CodeUnavailable}

// ReplicaConfig configures a WAL-tailing read replica.
type ReplicaConfig struct {
	// Source streams the primary's WAL (the primary's ship endpoint).
	Source *wal.ShipClient
	// SiteCapacity and Policy must match the primary's deployment: the
	// WAL carries mutations, not configuration. (A policy mismatch is
	// caught on the first snapshot reset — the snapshot's policy header
	// fails scheduler.Restore; runtime switches on the primary replay
	// through the log's OpSetPolicy records and keep the replica aligned.)
	SiteCapacity []float64
	Policy       policy.Policy
	// Interval is the poll cadence once caught up (default 50ms). While
	// behind, the replica polls continuously.
	Interval time.Duration
	// Metrics receives replication gauges and counters; nil creates a
	// private registry.
	Metrics *obs.Registry
	// TraceBuffer sizes the replay-trace ring: one trace per applied WAL
	// batch (stages: decode, apply; Shard "replica", Seq the replica's
	// local batch counter — WAL payloads carry no sequence numbers).
	// 0 uses the default (64); negative disables replay tracing.
	TraceBuffer int
}

// ReplicaView is one published replica snapshot: an immutable allocation
// the read path serves lock-free (RCU — the poll loop publishes a fresh
// view per applied poll, readers load the pointer and never block it).
type ReplicaView struct {
	// Shares maps job ID to its per-site share vector. Read-only.
	Shares map[string][]float64
	// Version counts published views — the replica's monotonic sequence.
	Version uint64
	// Cursor is the WAL position this view reflects; Head is the
	// primary's durable head at fetch time. Head − Cursor is the lag.
	Cursor, Head wal.Cursor
	// AppliedAt is when this view was published (staleness anchor).
	AppliedAt time.Time
}

// Replica tails a primary's WAL over HTTP and serves read-only,
// stale-bounded state: every acknowledged batch is replayed through a
// local scheduler (deterministically — see wal.Mutation.Apply and
// TestReplayDeterminism) and published as a lock-free RCU snapshot.
// It implements api.Backend (mutations return ErrReadOnly), so
// api.NewBackendServer turns it into a read endpoint with /v1/readyz
// reporting catch-up.
type Replica struct {
	cfg ReplicaConfig
	sc  *scheduler.Scheduler
	reg *obs.Registry

	// traces records one replay trace per applied WAL batch (nil when
	// disabled). batchSeq is the replica's local batch counter — it owns
	// the poll goroutine, no synchronization needed.
	traces   *span.Recorder
	batchSeq uint64

	view     atomic.Pointer[ReplicaView]
	caughtUp atomic.Bool
	lastErr  atomic.Pointer[string]

	gLagSegments *obs.Gauge
	gLagBytes    *obs.Gauge
	gCaughtUp    *obs.Gauge
	gStaleness   *obs.Gauge
	cBatches     *obs.Counter
	cMutations   *obs.Counter
	cResets      *obs.Counter
	cPollErrors  *obs.Counter
	cApplyFailed *obs.Counter

	stop chan struct{}
	done chan struct{}
}

// NewReplica builds and starts a replica; Close stops it.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("cluster: replica needs a WAL source")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 50 * time.Millisecond
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	sc, err := scheduler.New(scheduler.Config{SiteCapacity: cfg.SiteCapacity, Policy: cfg.Policy})
	if err != nil {
		return nil, err
	}
	var traces *span.Recorder
	if cfg.TraceBuffer >= 0 {
		size := cfg.TraceBuffer
		if size == 0 {
			size = 64
		}
		traces = span.NewRecorder(size)
	}
	r := &Replica{
		cfg:    cfg,
		sc:     sc,
		reg:    reg,
		traces: traces,

		gLagSegments: reg.Gauge("replica.lag_segments"),
		gLagBytes:    reg.Gauge("replica.lag_bytes"),
		gCaughtUp:    reg.Gauge("replica.caught_up"),
		gStaleness:   reg.Gauge("replica.staleness_seconds"),
		cBatches:     reg.Counter("replica.batches_applied"),
		cMutations:   reg.Counter("replica.mutations_applied"),
		cResets:      reg.Counter("replica.resets"),
		cPollErrors:  reg.Counter("replica.poll_errors"),
		cApplyFailed: reg.Counter("replica.apply_failed"),

		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go r.run()
	return r, nil
}

// Close stops the poll loop. The last published view keeps serving.
func (r *Replica) Close() error {
	select {
	case <-r.stop:
		return nil
	default:
	}
	close(r.stop)
	<-r.done
	return nil
}

func (r *Replica) run() {
	defer close(r.done)
	cur := wal.Cursor{}
	version := uint64(0)
	for {
		next, v, err := r.syncOnce(cur, version)
		cur, version = next, v
		if err != nil {
			r.cPollErrors.Inc()
			msg := err.Error()
			r.lastErr.Store(&msg)
		}
		select {
		case <-r.stop:
			return
		case <-time.After(r.cfg.Interval):
		}
	}
}

// syncOnce polls until caught up with the primary's durable head (or an
// error), publishing a fresh view whenever state changed.
func (r *Replica) syncOnce(cur wal.Cursor, version uint64) (wal.Cursor, uint64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), readTimeout)
	defer cancel()
	for {
		resp, err := r.cfg.Source.Fetch(ctx, cur)
		if err != nil {
			return cur, version, err
		}
		changed := false
		if resp.Reset {
			r.cResets.Inc()
			snap, err := wal.DecodeState(resp.State)
			if err != nil {
				return cur, version, err
			}
			if err := r.sc.Restore(snap); err != nil {
				return cur, version, err
			}
			changed = true
		}
		for _, payload := range resp.Records {
			r.batchSeq++
			var tb *span.Builder
			if r.traces != nil {
				tb = span.Begin(span.MintID(), time.Now())
				tb.SetSeq(r.batchSeq)
				tb.SetShard("replica")
			}
			t0 := time.Now()
			ms, err := wal.DecodeBatch(payload)
			if tb != nil {
				tb.Stage("decode", time.Since(t0))
			}
			if err != nil {
				r.cApplyFailed.Inc()
				if tb != nil {
					tb.SetError(err)
					r.traces.Record(tb.Finish())
				}
				continue
			}
			r.cBatches.Inc()
			t0 = time.Now()
			var applyErr error
			for _, m := range ms {
				if err := m.Apply(r.sc); err != nil {
					r.cApplyFailed.Inc()
					applyErr = err
				} else {
					r.cMutations.Inc()
				}
			}
			if tb != nil {
				tb.Stage("apply", time.Since(t0))
				tb.SetBatch(len(ms), nil)
				tb.SetError(applyErr)
				r.traces.Record(tb.Finish())
			}
			changed = true
		}
		cur = resp.Next
		caught := !cur.Before(resp.Head)
		if changed || r.view.Load() == nil {
			version++
			if err := r.publish(version, cur, resp.Head); err != nil {
				return cur, version, err
			}
		}
		r.updateLag(cur, resp.Head, caught)
		if caught {
			r.caughtUp.Store(true)
			return cur, version, nil
		}
		select {
		case <-r.stop:
			return cur, version, nil
		default:
		}
	}
}

func (r *Replica) publish(version uint64, cur, head wal.Cursor) error {
	alloc, err := r.sc.Allocation()
	if err != nil {
		return fmt.Errorf("cluster: replica solve: %w", err)
	}
	r.view.Store(&ReplicaView{
		Shares:    alloc,
		Version:   version,
		Cursor:    cur,
		Head:      head,
		AppliedAt: time.Now(),
	})
	return nil
}

func (r *Replica) updateLag(cur, head wal.Cursor, caught bool) {
	r.gLagSegments.Set(float64(head.Segment) - float64(cur.Segment))
	if head.Segment == cur.Segment {
		r.gLagBytes.Set(float64(head.Offset - cur.Offset))
	} else {
		r.gLagBytes.Set(float64(head.Offset))
	}
	if caught {
		r.gCaughtUp.Set(1)
		r.gStaleness.Set(0)
	} else {
		r.gCaughtUp.Set(0)
		if v := r.view.Load(); v != nil {
			r.gStaleness.Set(time.Since(v.AppliedAt).Seconds())
		}
	}
}

// View returns the current published snapshot (nil before the first
// successful poll).
func (r *Replica) View() *ReplicaView { return r.view.Load() }

// Metrics returns the registry carrying the replication gauges.
func (r *Replica) Metrics() *obs.Registry { return r.reg }

// Traces returns the replay-trace ring — one trace per applied WAL batch,
// tagged Shard "replica" — for mounting at the read endpoint's
// /v1/traces (api.Server.SetTraces). Nil when replay tracing is disabled.
func (r *Replica) Traces() *span.Recorder { return r.traces }

// Explain derives the water-filling explanation from the replica's
// replayed job set (api.Explainer): same evidence as the primary, bounded
// by the replica's staleness. Unavailable (ErrSyncing) before the first
// published view.
func (r *Replica) Explain(ctx context.Context, job string) (*serve.ExplainResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	v := r.view.Load()
	if v == nil {
		return nil, ErrSyncing
	}
	ex, err := r.sc.Explain()
	if err != nil {
		return nil, err
	}
	if job != "" && ex.JobByName(job) == nil {
		return nil, fmt.Errorf("%w: %q", scheduler.ErrUnknownJob, job)
	}
	return &serve.ExplainResult{
		Version: v.Version, Policy: r.sc.PolicyName(), Shard: "replica",
		Explanation: ex,
	}, nil
}

// LastError reports the most recent poll error ("" when none).
func (r *Replica) LastError() string {
	if p := r.lastErr.Load(); p != nil {
		return *p
	}
	return ""
}

// ReadyErr implements api.ReadyChecker: unready (503 through the API)
// until the replica has caught up with the primary's durable head once.
func (r *Replica) ReadyErr() error {
	if !r.caughtUp.Load() {
		if msg := r.LastError(); msg != "" {
			return fmt.Errorf("%w (last poll error: %s)", ErrSyncing, msg)
		}
		return ErrSyncing
	}
	return nil
}

// SnapshotVersion implements api.Versioned.
func (r *Replica) SnapshotVersion() uint64 {
	if v := r.view.Load(); v != nil {
		return v.Version
	}
	return 0
}

// --- api.Backend: reads served from the RCU view, mutations rejected ---

func (r *Replica) AddJob(ctx context.Context, id string, weight float64, demand, work []float64) error {
	return ErrReadOnly
}

func (r *Replica) AddJobInQueue(ctx context.Context, queue, id string, weight float64, demand, work []float64) error {
	return ErrReadOnly
}

func (r *Replica) AddJobs(ctx context.Context, specs []scheduler.JobSpec) error { return ErrReadOnly }

func (r *Replica) AddQueue(ctx context.Context, name string, weight float64) error {
	return ErrReadOnly
}

func (r *Replica) RemoveJob(ctx context.Context, id string) error { return ErrReadOnly }

func (r *Replica) ReportProgress(ctx context.Context, id string, done []float64) (bool, error) {
	return false, ErrReadOnly
}

func (r *Replica) UpdateWeight(ctx context.Context, id string, weight float64) error {
	return ErrReadOnly
}

func (r *Replica) Shares(ctx context.Context, id string) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	v := r.view.Load()
	if v == nil {
		return nil, ErrSyncing
	}
	shares, ok := v.Shares[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", scheduler.ErrUnknownJob, id)
	}
	return shares, nil
}

func (r *Replica) Allocation(ctx context.Context) (map[string][]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	v := r.view.Load()
	if v == nil {
		return nil, ErrSyncing
	}
	return v.Shares, nil
}

// PolicyName reports the replica's active fairness policy — it follows
// the primary through replayed OpSetPolicy records (api.PolicyController
// read side).
func (r *Replica) PolicyName() string { return r.sc.PolicyName() }

// SetPolicy is rejected: the replica follows the primary's policy through
// the WAL (api.PolicyController write side, read-only here).
func (r *Replica) SetPolicy(ctx context.Context, name string) error { return ErrReadOnly }

func (r *Replica) Stats() scheduler.Stats { return r.sc.Stats() }

func (r *Replica) Snapshot() scheduler.Snapshot { return r.sc.Snapshot() }

func (r *Replica) Restore(ctx context.Context, snap scheduler.Snapshot) error { return ErrReadOnly }

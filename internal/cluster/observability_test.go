package cluster_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/policy"
	"repro/internal/scheduler"
	"repro/internal/serve"
	"repro/internal/wal"
)

// newObservedShards builds n engine shards with the full observability
// kit attached: a trace ring, a slow-trace retention ring, and a metrics
// registry — the same wiring runCluster performs in the binary.
func newObservedShards(t *testing.T, n int, caps []float64, pol policy.Policy) []cluster.Shard {
	t.Helper()
	shards := make([]cluster.Shard, n)
	for i := 0; i < n; i++ {
		sc, err := scheduler.New(scheduler.Config{SiteCapacity: caps, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		rec := span.NewRecorder(64)
		slow := span.NewSlowRecorder(16, time.Hour)
		reg := obs.NewRegistry()
		eng, err := serve.New(sc, serve.Config{Traces: rec, SlowTraces: slow, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = eng.Close() })
		shards[i] = cluster.EngineShard{Eng: eng, Rec: rec, Slow: slow, Reg: reg}
	}
	return shards
}

// TestClusterTraceStitching drives mutations through the router's HTTP
// surface and checks the stitched forest: router-level parents carry the
// shards' commit traces as children, correlated by parent trace ID and
// labeled with the owning shard; ?slow=1 reads the shards' slow-trace
// retention rings, slowest first.
func TestClusterTraceStitching(t *testing.T) {
	pol := policy.AMF
	nSites := 8
	caps := make([]float64, nSites)
	for i := range caps {
		caps[i] = 10
	}
	s0, s1 := splitSites(t, nSites)

	shards := newObservedShards(t, 2, caps, pol)
	router, err := cluster.NewRouter(shards, pol)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(cluster.NewHandler(router, nil, caps, pol))
	t.Cleanup(front.Close)
	cl := api.NewClient(front.URL, front.Client())
	ctx := context.Background()

	for _, j := range []struct {
		id   string
		site int
	}{{"a", s0}, {"b", s1}, {"c", s0}} {
		if err := cl.AddJob(ctx, api.AddJobRequest{ID: j.id, Demand: demandAt(nSites, j.site)}); err != nil {
			t.Fatalf("add %s: %v", j.id, err)
		}
	}

	tr, err := cl.Traces(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Traces) == 0 {
		t.Fatal("no router traces recorded")
	}
	children := 0
	shardsSeen := map[string]bool{}
	for _, p := range tr.Traces {
		for _, c := range p.Children {
			children++
			if c.Parent != p.ID {
				t.Fatalf("child %s stitched under %s but Parent=%s", c.ID, p.ID, c.Parent)
			}
			if c.Shard == "" {
				t.Fatalf("stitched child %s has no shard label", c.ID)
			}
			shardsSeen[c.Shard] = true
		}
	}
	if children < 3 {
		t.Fatalf("expected >=3 stitched shard commits, got %d", children)
	}
	if !shardsSeen["0"] || !shardsSeen["1"] {
		t.Fatalf("stitched children cover shards %v, want both 0 and 1", shardsSeen)
	}
	for i := 1; i < len(tr.Traces); i++ {
		if tr.Traces[i].Start.After(tr.Traces[i-1].Start) {
			t.Fatal("stitched forest not newest-first")
		}
	}

	// The slow view reads the shards' retention rings: slowest first,
	// every entry labeled with its shard.
	sl, err := cl.SlowTraces(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sl.Slow {
		t.Fatal("slow response not marked slow")
	}
	if len(sl.Traces) == 0 {
		t.Fatal("slow retention rings empty after commits")
	}
	for i, tc := range sl.Traces {
		if tc.Shard == "" {
			t.Fatalf("slow trace %d has no shard label", i)
		}
		if i > 0 && tc.Total > sl.Traces[i-1].Total {
			t.Fatal("slow traces not slowest-first")
		}
	}
}

// TestTraceHeaderPropagation covers the wire leg of stitching: a client
// context carrying trace and parent IDs must ride the X-AMF-Trace-Id and
// X-AMF-Parent-Span headers into a remote engine's commit trace.
func TestTraceHeaderPropagation(t *testing.T) {
	pol := policy.AMF
	caps := []float64{10, 10}
	sc, err := scheduler.New(scheduler.Config{SiteCapacity: caps, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	rec := span.NewRecorder(16)
	eng, err := serve.New(sc, serve.Config{Traces: rec})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	srv := httptest.NewServer(api.NewEngineServer(eng, nil, caps, pol).SetTraces(rec).Handler())
	t.Cleanup(srv.Close)
	cl := api.NewClient(srv.URL, srv.Client())

	const parent = span.ID("router-trace-1")
	ctx := span.NewParentContext(span.NewContext(context.Background(), parent), parent)
	if err := cl.AddJob(ctx, api.AddJobRequest{ID: "j", Demand: []float64{1, 0}}); err != nil {
		t.Fatal(err)
	}

	var got *span.Trace
	for _, tr := range rec.Recent(0) {
		if tr.ID == parent {
			got = tr
			break
		}
	}
	if got == nil {
		t.Fatalf("no engine trace adopted the request trace ID %q", parent)
	}
	if got.Parent != parent {
		t.Fatalf("engine trace parent = %q, want %q (X-AMF-Parent-Span lost)", got.Parent, parent)
	}
}

// TestRouterExplainRouting exercises /v1/explain through the cluster
// handler: a named job is routed to its owning shard, the response is
// labeled with that shard, and the explained level matches the merged
// allocation. Full dumps and unknown jobs are refused with stable codes.
func TestRouterExplainRouting(t *testing.T) {
	pol := policy.EnhancedAMF
	nSites := 8
	caps := make([]float64, nSites)
	for i := range caps {
		caps[i] = 6
	}
	s0, s1 := splitSites(t, nSites)

	shards, _ := newEngineShards(t, 2, caps, pol)
	router, err := cluster.NewRouter(shards, pol)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(cluster.NewHandler(router, nil, caps, pol))
	t.Cleanup(front.Close)
	cl := api.NewClient(front.URL, front.Client())
	ctx := context.Background()

	if err := cl.AddJob(ctx, api.AddJobRequest{ID: "a", Demand: demandAt(nSites, s0)}); err != nil {
		t.Fatal(err)
	}
	if err := cl.AddJob(ctx, api.AddJobRequest{ID: "b", Demand: demandAt(nSites, s1)}); err != nil {
		t.Fatal(err)
	}

	ra, err := cl.Explain(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := cl.Explain(ctx, "b")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []struct {
		name string
		resp api.ExplainResponse
	}{{"a", ra}, {"b", rb}} {
		if r.resp.Job == nil || r.resp.Job.Name != r.name {
			t.Fatalf("explain %q returned job %+v", r.name, r.resp.Job)
		}
		if r.resp.Shard == "" {
			t.Fatalf("explain %q carries no shard label", r.name)
		}
		if r.resp.Policy != pol.Name() {
			t.Fatalf("explain %q policy = %q", r.name, r.resp.Policy)
		}
		if r.resp.Job.Limit == "" {
			t.Fatalf("explain %q has no limit classification", r.name)
		}
	}
	if ra.Shard == rb.Shard {
		t.Fatalf("jobs on split sites explained by the same shard %q", ra.Shard)
	}

	// The explained level must agree with the merged allocation read.
	alloc, err := cl.Allocation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range alloc.Jobs["a"].Shares {
		sum += s
	}
	if d := ra.Job.Level - sum; d > 1e-9 || d < -1e-9 {
		t.Fatalf("explained level %g vs allocated %g", ra.Job.Level, sum)
	}

	if _, err := cl.Explain(ctx, ""); !errors.Is(err, api.ErrInvalidArgument) {
		t.Fatalf("full dump through router = %v, want invalid_argument", err)
	}
	if _, err := cl.Explain(ctx, "nope"); !errors.Is(err, api.ErrNotFound) {
		t.Fatalf("unknown job = %v, want not_found", err)
	}
}

// TestFederatedClusterMetrics checks the router's /metrics page: every
// shard's scrape appears relabeled shard="i", registered extra targets
// appear under their own label, families are merged under one # TYPE
// header, and the router's own fan-out telemetry rides along.
func TestFederatedClusterMetrics(t *testing.T) {
	pol := policy.AMF
	nSites := 8
	caps := make([]float64, nSites)
	for i := range caps {
		caps[i] = 10
	}
	s0, s1 := splitSites(t, nSites)

	shards := newObservedShards(t, 2, caps, pol)
	router, err := cluster.NewRouter(shards, pol)
	if err != nil {
		t.Fatal(err)
	}
	router.AddScrapeTarget("replica", "0", func(ctx context.Context) ([]byte, error) {
		return []byte("# TYPE amf_fake_total counter\namf_fake_total 3\n"), nil
	})
	front := httptest.NewServer(cluster.NewHandler(router, nil, caps, pol))
	t.Cleanup(front.Close)
	cl := api.NewClient(front.URL, front.Client())
	ctx := context.Background()

	if err := cl.AddJob(ctx, api.AddJobRequest{ID: "a", Demand: demandAt(nSites, s0)}); err != nil {
		t.Fatal(err)
	}
	if err := cl.AddJob(ctx, api.AddJobRequest{ID: "b", Demand: demandAt(nSites, s1)}); err != nil {
		t.Fatal(err)
	}
	// A merged read feeds the router's fan-out latency histogram, so the
	// router-only families appear on the page alongside the shard scrapes.
	if _, err := cl.Allocation(ctx); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		`shard="0"`,
		`shard="1"`,
		`amf_fake_total{replica="0"} 3`,
		"amf_cluster_fanout_latency_seconds",
		"amf_cluster_version_spread",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("federated page missing %q\n%s", want, body)
		}
	}
	// Both shards export the commit-latency family; federation must merge
	// their series under a single # TYPE header.
	if n := strings.Count(body, "# TYPE amf_engine_commit_latency"); n != 1 {
		t.Fatalf("amf_engine_commit_latency declared %d times, want 1", n)
	}

	// The client helper used for replica federation reads the same page.
	page, err := cl.ScrapeMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(page), `shard="0"`) {
		t.Fatal("ScrapeMetrics returned a different page")
	}
}

// TestReplicaReplayTraces: a replica with a trace buffer records one
// replay trace per applied WAL batch, tagged shard="replica" with a
// monotonic batch sequence and decode/apply stages.
func TestReplicaReplayTraces(t *testing.T) {
	pol := policy.AMF
	caps := []float64{4, 4, 4}

	dir := filepath.Join(t.TempDir(), "wal")
	log, _, err := wal.Open(dir, wal.Options{SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scheduler.New(scheduler.Config{SiteCapacity: caps, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.New(sc, serve.Config{Log: log, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })

	srv := httptest.NewServer(wal.NewShipHandler(log))
	t.Cleanup(srv.Close)
	rep, err := cluster.NewReplica(cluster.ReplicaConfig{
		Source:       &wal.ShipClient{Base: srv.URL, HTTP: srv.Client()},
		SiteCapacity: caps,
		Policy:       pol,
		Interval:     2 * time.Millisecond,
		TraceBuffer:  32,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rep.Close() })

	ctx := context.Background()
	for i := 0; i < 6; i++ {
		id := string(rune('a' + i))
		if err := eng.AddJob(ctx, id, 0, []float64{1, 1, 0}, nil); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUpTo(t, rep, log.Durable())

	traces := rep.Traces().Recent(0)
	if len(traces) == 0 {
		t.Fatal("replica recorded no replay traces")
	}
	for i, tr := range traces {
		if tr.Shard != "replica" {
			t.Fatalf("replay trace %d shard = %q", i, tr.Shard)
		}
		if tr.Seq == 0 {
			t.Fatalf("replay trace %d has no batch seq", i)
		}
		if i > 0 && tr.Seq >= traces[i-1].Seq {
			t.Fatal("replay seqs not monotonic (newest first)")
		}
		stages := map[string]bool{}
		for _, sp := range tr.Spans {
			stages[sp.Name] = true
		}
		if !stages["decode"] || !stages["apply"] {
			t.Fatalf("replay trace %d stages = %v, want decode+apply", i, tr.Spans)
		}
	}
}

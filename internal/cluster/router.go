package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs/span"
	"repro/internal/policy"
	"repro/internal/scheduler"
)

// Stable cluster errors. The API layer maps them through api.CodeFor's
// default (invalid_argument → 400) except ErrUnknownJob/ErrDuplicateJob
// pass-throughs, which keep their 404/409 codes.
var (
	// ErrCrossShard rejects a job whose demand sites are already owned by
	// more than one shard: admitting it would couple two shards' max-flow
	// feasibility problems, which the decomposition cannot express.
	ErrCrossShard = errors.New("cluster: job demand spans sites owned by different shards")
	// ErrQueuesUnsupported rejects queue operations in cluster mode:
	// hierarchical fairness needs a global queue view the shards don't have.
	ErrQueuesUnsupported = errors.New("cluster: queues are not supported in sharded mode")
	// ErrRestoreUnsupported rejects restore-through-the-router; restore
	// shards individually instead.
	ErrRestoreUnsupported = errors.New("cluster: restore through the router is unsupported; restore shards directly")
	// ErrPolicyMismatch rejects assembling a cluster whose shards disagree
	// with the router (and hence each other) on the fairness policy: a
	// merged allocation under mixed disciplines is meaningless, and the
	// router's weight-broadcast decision is policy-derived.
	ErrPolicyMismatch = errors.New("cluster: shard fairness policy does not match the router")
	// ErrConfigMismatch rejects a merged runtime-config read when the
	// shards disagree on any tuning knob — there is no single document to
	// report. Re-apply the config through the router (ApplyConfig) or fix
	// the divergent shard, then retry.
	ErrConfigMismatch = errors.New("cluster: shards disagree on runtime config")
)

// readTimeout bounds the context-less api.Backend read surfaces (Stats,
// Snapshot, ReadyErr) when fanning out to remote shards.
const readTimeout = 5 * time.Second

// RouterStats counts the router's cluster-coordination activity.
type RouterStats struct {
	// Jobs is the number of jobs currently routed.
	Jobs int
	// OwnedSites is the number of sites currently pinned to a shard.
	OwnedSites int
	// WeightSum is the router's global share-weight sum W.
	WeightSum float64
	// BroadcastVersion increments once per weight-sum change that needed
	// reconciling; Broadcasts counts the per-shard SetExternalWeight calls
	// it fanned out, and FastPathSkips the mutations that needed none
	// (single shard, AMF policy, or ΔW = 0).
	BroadcastVersion uint64
	Broadcasts       int64
	FastPathSkips    int64
	// CrossShardRejects counts jobs refused under ErrCrossShard.
	CrossShardRejects int64
}

// Router fans a cluster of shards into one api.Backend: it places each
// job on a shard by hashing its demand component (core.ShardKey), pins
// the job's sites to that shard so later overlapping jobs follow, merges
// reads across every shard, and — under Enhanced-AMF — reconciles the
// global weight sum by broadcasting W − W_shard to each shard's
// ExternalWeight whenever a mutation changes W.
//
// Mutations are serialized through the router's mutex: the router is the
// single sequencer that keeps site ownership and the weight ledger
// consistent with what the shards have durably applied.
type Router struct {
	shards   []Shard
	polName  string
	enhanced bool

	mu        sync.Mutex
	siteOwner map[int]int    // site → shard holding jobs that demand it
	siteRef   map[int]int    // site → count of routed jobs demanding it
	jobShard  map[string]int // job → shard
	jobSites  map[string][]int
	jobWeight map[string]float64 // effective (normalized) weight
	shardWt   []float64          // per-shard live weight sum W_k
	weightSum float64            // global W = Σ W_k

	broadcastVersion  atomic.Uint64
	broadcasts        atomic.Int64
	fastPathSkips     atomic.Int64
	crossShardRejects atomic.Int64

	// versions caches the vector observed by the most recent merged
	// Allocation — the cluster-wide snapshot version vector.
	versions atomic.Pointer[[]uint64]
}

// NewRouter builds a router over shards running the given fairness
// policy. The policy's capabilities decide whether weight broadcasts are
// needed: only policies declaring GlobalWeightFloors (Enhanced-AMF)
// couple components through the global weight sum. Every shard must run
// this policy — SyncFromShards verifies it and fails with
// ErrPolicyMismatch otherwise.
func NewRouter(shards []Shard, pol policy.Policy) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one shard")
	}
	if pol == nil {
		return nil, fmt.Errorf("cluster: router needs a policy")
	}
	return &Router{
		shards:    shards,
		polName:   pol.Name(),
		enhanced:  pol.Capabilities().GlobalWeightFloors,
		siteOwner: map[int]int{},
		siteRef:   map[int]int{},
		jobShard:  map[string]int{},
		jobSites:  map[string][]int{},
		jobWeight: map[string]float64{},
		shardWt:   make([]float64, len(shards)),
	}, nil
}

// NumShards reports the cluster size.
func (r *Router) NumShards() int { return len(r.shards) }

// PolicyName reports the fairness policy the cluster runs — the router's
// configured policy, which SyncFromShards verifies every shard agrees
// with. The router deliberately does NOT implement bespoke runtime
// switching (api.PolicyController); a cluster-wide switch goes through
// the unified config surface (ApplyConfig), which refuses to start from
// a mixed cluster and rolls the change across every shard.
func (r *Router) PolicyName() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.polName
}

// checkShardPoliciesLocked verifies every shard runs the router's policy.
func (r *Router) checkShardPoliciesLocked(ctx context.Context) error {
	for i, sh := range r.shards {
		name, err := sh.PolicyName(ctx)
		if err != nil {
			return fmt.Errorf("cluster: policy from shard %d: %w", i, err)
		}
		if name != r.polName {
			return fmt.Errorf("%w: shard %d runs %q, router expects %q",
				ErrPolicyMismatch, i, name, r.polName)
		}
	}
	return nil
}

// effWeight mirrors the scheduler's normalization: weight <= 0 means 1.
func effWeight(w float64) float64 {
	if w <= 0 {
		return 1
	}
	return w
}

// routeLocked picks the shard for a job with the given demand sites:
// the owner of any already-pinned site, else the component hash. extra
// overlays tentative ownership from earlier specs of the same batch.
func (r *Router) routeLocked(sites []int, extra map[int]int) (int, error) {
	owner := -1
	for _, s := range sites {
		o, ok := r.siteOwner[s]
		if !ok {
			if extra != nil {
				o, ok = extra[s]
			}
			if !ok {
				continue
			}
		}
		if owner == -1 {
			owner = o
		} else if o != owner {
			r.crossShardRejects.Add(1)
			return 0, fmt.Errorf("%w (shards %d and %d)", ErrCrossShard, owner, o)
		}
	}
	if owner >= 0 {
		return owner, nil
	}
	key, ok := core.ShardKey(sites)
	if !ok {
		return 0, fmt.Errorf("cluster: job demands no site")
	}
	return core.ShardOf(key, len(r.shards)), nil
}

// recordJobLocked pins a routed job into the ownership maps and the
// weight ledger, returning the weight delta to reconcile.
func (r *Router) recordJobLocked(id string, shard int, sites []int, weight float64) float64 {
	w := effWeight(weight)
	r.jobShard[id] = shard
	r.jobSites[id] = sites
	r.jobWeight[id] = w
	for _, s := range sites {
		r.siteOwner[s] = shard
		r.siteRef[s]++
	}
	r.shardWt[shard] += w
	r.weightSum += w
	return w
}

// forgetJobLocked unpins a removed (or completed) job, returning the
// negative weight delta to reconcile.
func (r *Router) forgetJobLocked(id string) float64 {
	shard := r.jobShard[id]
	w := r.jobWeight[id]
	for _, s := range r.jobSites[id] {
		if r.siteRef[s]--; r.siteRef[s] == 0 {
			delete(r.siteRef, s)
			delete(r.siteOwner, s)
		}
	}
	delete(r.jobShard, id)
	delete(r.jobSites, id)
	delete(r.jobWeight, id)
	r.shardWt[shard] -= w
	r.weightSum -= w
	return -w
}

// reconcileLocked broadcasts the new global weight sum after a mutation
// on shard `dirty` changed W by delta. The dirty shard itself never
// needs the broadcast: its local weight and W moved together, so its
// external weight W − W_dirty is unchanged — only the other shards'
// floors shifted. Fast path: nothing to do for AMF (no weight-sum
// coupling), a single-shard cluster, or ΔW = 0.
func (r *Router) reconcileLocked(ctx context.Context, dirty int, delta float64) error {
	if !r.enhanced || len(r.shards) == 1 || delta == 0 {
		r.fastPathSkips.Add(1)
		return nil
	}
	r.broadcastVersion.Add(1)
	var firstErr error
	for i, sh := range r.shards {
		if i == dirty {
			continue
		}
		ext := r.weightSum - r.shardWt[i]
		if ext < 0 {
			// Float cancellation can leave a tiny negative residue the
			// scheduler would reject.
			ext = 0
		}
		if err := sh.SetExternalWeight(ctx, ext); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: weight broadcast to shard %d: %w", i, err)
		}
		r.broadcasts.Add(1)
	}
	// A failed broadcast leaves that shard's floors stale until the next
	// reconcile; the mutation itself already committed on the dirty shard.
	return firstErr
}

// AddJob routes and registers one job.
func (r *Router) AddJob(ctx context.Context, id string, weight float64, demand, work []float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.jobShard[id]; ok {
		return fmt.Errorf("%w: %q", scheduler.ErrDuplicateJob, id)
	}
	sites := core.DemandSites(demand)
	shard, err := r.routeLocked(sites, nil)
	if err != nil {
		return err
	}
	if err := r.shards[shard].AddJob(ctx, id, weight, demand, work); err != nil {
		return err
	}
	delta := r.recordJobLocked(id, shard, sites, weight)
	return r.reconcileLocked(ctx, shard, delta)
}

// AddJobInQueue is unsupported in cluster mode.
func (r *Router) AddJobInQueue(ctx context.Context, queue, id string, weight float64, demand, work []float64) error {
	return ErrQueuesUnsupported
}

// AddQueue is unsupported in cluster mode.
func (r *Router) AddQueue(ctx context.Context, name string, weight float64) error {
	return ErrQueuesUnsupported
}

// AddJobs routes a batch. Specs are grouped by target shard and each
// group is registered atomically on its shard; when the batch spans
// shards and a later group fails, already-registered groups are rolled
// back best-effort, so the batch is all-or-nothing as long as the
// compensating removals succeed.
func (r *Router) AddJobs(ctx context.Context, specs []scheduler.JobSpec) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := map[string]bool{}
	tentative := map[int]int{}
	groups := map[int][]scheduler.JobSpec{}
	siteSets := map[string][]int{}
	for _, sp := range specs {
		if sp.Queue != "" {
			return ErrQueuesUnsupported
		}
		if _, ok := r.jobShard[sp.ID]; ok || seen[sp.ID] {
			return fmt.Errorf("%w: %q", scheduler.ErrDuplicateJob, sp.ID)
		}
		seen[sp.ID] = true
		sites := core.DemandSites(sp.Demand)
		shard, err := r.routeLocked(sites, tentative)
		if err != nil {
			return err
		}
		for _, s := range sites {
			tentative[s] = shard
		}
		siteSets[sp.ID] = sites
		groups[shard] = append(groups[shard], sp)
	}
	order := make([]int, 0, len(groups))
	for shard := range groups {
		order = append(order, shard)
	}
	sort.Ints(order)
	applied := make([]int, 0, len(order))
	for _, shard := range order {
		if err := r.shards[shard].AddJobs(ctx, groups[shard]); err != nil {
			for _, k := range applied {
				for _, sp := range groups[k] {
					_ = r.shards[k].RemoveJob(ctx, sp.ID)
				}
			}
			return err
		}
		applied = append(applied, shard)
	}
	var total float64
	last := 0
	for _, shard := range order {
		for _, sp := range groups[shard] {
			total += r.recordJobLocked(sp.ID, shard, siteSets[sp.ID], sp.Weight)
		}
		last = shard
	}
	if len(order) > 1 {
		// More than one shard got new weight: no single dirty shard, so
		// reconcile against a sentinel that broadcasts to everyone.
		last = -1
	}
	return r.reconcileLocked(ctx, last, total)
}

// RemoveJob routes a removal.
func (r *Router) RemoveJob(ctx context.Context, id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	shard, ok := r.jobShard[id]
	if !ok {
		return fmt.Errorf("%w: %q", scheduler.ErrUnknownJob, id)
	}
	if err := r.shards[shard].RemoveJob(ctx, id); err != nil {
		return err
	}
	delta := r.forgetJobLocked(id)
	return r.reconcileLocked(ctx, shard, delta)
}

// ReportProgress routes a progress report; a completed job leaves the
// ledger exactly like a removal.
func (r *Router) ReportProgress(ctx context.Context, id string, done []float64) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	shard, ok := r.jobShard[id]
	if !ok {
		return false, fmt.Errorf("%w: %q", scheduler.ErrUnknownJob, id)
	}
	completed, err := r.shards[shard].ReportProgress(ctx, id, done)
	if err != nil {
		return false, err
	}
	if completed {
		delta := r.forgetJobLocked(id)
		return true, r.reconcileLocked(ctx, shard, delta)
	}
	return false, nil
}

// UpdateWeight routes a weight change.
func (r *Router) UpdateWeight(ctx context.Context, id string, weight float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	shard, ok := r.jobShard[id]
	if !ok {
		return fmt.Errorf("%w: %q", scheduler.ErrUnknownJob, id)
	}
	if err := r.shards[shard].UpdateWeight(ctx, id, weight); err != nil {
		return err
	}
	old := r.jobWeight[id]
	w := effWeight(weight)
	r.jobWeight[id] = w
	r.shardWt[shard] += w - old
	r.weightSum += w - old
	return r.reconcileLocked(ctx, shard, w-old)
}

// Shares routes a single-job read to its shard.
func (r *Router) Shares(ctx context.Context, id string) ([]float64, error) {
	r.mu.Lock()
	shard, ok := r.jobShard[id]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", scheduler.ErrUnknownJob, id)
	}
	return r.shards[shard].Shares(ctx, id)
}

// Allocation fans the read out to every shard in parallel and merges the
// maps into one response, caching the per-shard snapshot versions as the
// cluster's version vector (VersionVector, SnapshotVersion).
func (r *Router) Allocation(ctx context.Context) (map[string][]float64, error) {
	type result struct {
		alloc   map[string][]float64
		version uint64
		err     error
	}
	results := make([]result, len(r.shards))
	var wg sync.WaitGroup
	for i, sh := range r.shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			results[i].alloc, results[i].version, results[i].err = sh.Allocation(ctx)
		}(i, sh)
	}
	wg.Wait()
	merged := map[string][]float64{}
	versions := make([]uint64, len(r.shards))
	for i, res := range results {
		if res.err != nil {
			return nil, fmt.Errorf("cluster: allocation from shard %d: %w", i, res.err)
		}
		versions[i] = res.version
		for id, shares := range res.alloc {
			merged[id] = shares
		}
	}
	r.versions.Store(&versions)
	return merged, nil
}

// VersionVector returns the per-shard snapshot versions observed by the
// most recent merged Allocation (nil before the first).
func (r *Router) VersionVector() []uint64 {
	p := r.versions.Load()
	if p == nil {
		return nil
	}
	return append([]uint64(nil), (*p)...)
}

// SnapshotVersion flattens the version vector into one scalar (the sum):
// each component is non-decreasing, so the sum is a monotonic cluster
// version suitable for api.Versioned.
func (r *Router) SnapshotVersion() uint64 {
	var sum uint64
	for _, v := range r.VersionVector() {
		sum += v
	}
	return sum
}

// Stats merges controller counters across shards: totals are summed,
// last-solve telemetry takes the slowest/largest shard.
func (r *Router) Stats() scheduler.Stats {
	ctx, cancel := context.WithTimeout(context.Background(), readTimeout)
	defer cancel()
	var out scheduler.Stats
	for _, sh := range r.shards {
		st, err := sh.Stats(ctx)
		if err != nil {
			continue // best effort: a dead shard drops out of the merge
		}
		out.Solves += st.Solves
		out.Skipped += st.Skipped
		out.Jobs += st.Jobs
		out.Completed += st.Completed
		if st.LastSolve > out.LastSolve {
			out.LastSolve = st.LastSolve
		}
		out.TotalSolveTime += st.TotalSolveTime
		out.LastComponents += st.LastComponents
		if st.LastLargestComponent > out.LastLargestComponent {
			out.LastLargestComponent = st.LastLargestComponent
		}
		if st.LastSpeedup > out.LastSpeedup {
			out.LastSpeedup = st.LastSpeedup
		}
		out.LastReused += st.LastReused
		out.LastResolved += st.LastResolved
		out.CacheHits += st.CacheHits
		out.CacheMisses += st.CacheMisses
		out.GlobalInvalidations += st.GlobalInvalidations
	}
	return out
}

// Snapshot merges the shards' job sets into one diagnostic snapshot.
// It cannot be restored through the router (see Restore); external
// weights are shard-local and omitted.
func (r *Router) Snapshot() scheduler.Snapshot {
	ctx, cancel := context.WithTimeout(context.Background(), readTimeout)
	defer cancel()
	var out scheduler.Snapshot
	for _, sh := range r.shards {
		snap, err := sh.Snapshot(ctx)
		if err != nil {
			continue
		}
		out.Jobs = append(out.Jobs, snap.Jobs...)
	}
	return out
}

// Restore is unsupported through the router.
func (r *Router) Restore(ctx context.Context, snap scheduler.Snapshot) error {
	return ErrRestoreUnsupported
}

// Traces merges the shards' commit-trace rings, newest first, capped at
// limit (0 = everything the shards returned).
func (r *Router) Traces(ctx context.Context, limit int) ([]*span.Trace, error) {
	var merged []*span.Trace
	for i, sh := range r.shards {
		traces, err := sh.Traces(ctx, limit)
		if err != nil {
			return nil, fmt.Errorf("cluster: traces from shard %d: %w", i, err)
		}
		merged = append(merged, traces...)
	}
	sort.SliceStable(merged, func(a, b int) bool {
		return merged[a].Start.After(merged[b].Start)
	})
	if limit > 0 && len(merged) > limit {
		merged = merged[:limit]
	}
	return merged, nil
}

// ReadyErr reports the first unready shard (api.ReadyChecker): the
// cluster can take mutations only when every shard can.
func (r *Router) ReadyErr() error {
	ctx, cancel := context.WithTimeout(context.Background(), readTimeout)
	defer cancel()
	for i, sh := range r.shards {
		if err := sh.ReadyErr(ctx); err != nil {
			return fmt.Errorf("cluster: shard %d unready: %w", i, err)
		}
	}
	return nil
}

// RouterStats reports the router's coordination counters.
func (r *Router) RouterStats() RouterStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RouterStats{
		Jobs:              len(r.jobShard),
		OwnedSites:        len(r.siteOwner),
		WeightSum:         r.weightSum,
		BroadcastVersion:  r.broadcastVersion.Load(),
		Broadcasts:        r.broadcasts.Load(),
		FastPathSkips:     r.fastPathSkips.Load(),
		CrossShardRejects: r.crossShardRejects.Load(),
	}
}

// SyncFromShards rebuilds the routing tables from the shards' live job
// sets — router restart against a running cluster. It fails if any shard
// runs a different fairness policy (ErrPolicyMismatch) or if two
// shards claim the same site (an operator mis-assembly the router must
// not paper over) and finishes by reconciling every shard's external
// weight against the rebuilt ledger.
func (r *Router) SyncFromShards(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.checkShardPoliciesLocked(ctx); err != nil {
		return err
	}
	siteOwner := map[int]int{}
	siteRef := map[int]int{}
	jobShard := map[string]int{}
	jobSites := map[string][]int{}
	jobWeight := map[string]float64{}
	shardWt := make([]float64, len(r.shards))
	var weightSum float64
	for i, sh := range r.shards {
		snap, err := sh.Snapshot(ctx)
		if err != nil {
			return fmt.Errorf("cluster: sync from shard %d: %w", i, err)
		}
		for _, j := range snap.Jobs {
			if prev, ok := jobShard[j.ID]; ok {
				return fmt.Errorf("cluster: job %q on shards %d and %d", j.ID, prev, i)
			}
			sites := core.DemandSites(j.Demand)
			for _, s := range sites {
				if o, ok := siteOwner[s]; ok && o != i {
					return fmt.Errorf("cluster: site %d owned by shards %d and %d", s, o, i)
				}
				siteOwner[s] = i
				siteRef[s]++
			}
			w := effWeight(j.Weight)
			jobShard[j.ID] = i
			jobSites[j.ID] = sites
			jobWeight[j.ID] = w
			shardWt[i] += w
			weightSum += w
		}
	}
	r.siteOwner, r.siteRef = siteOwner, siteRef
	r.jobShard, r.jobSites, r.jobWeight = jobShard, jobSites, jobWeight
	r.shardWt, r.weightSum = shardWt, weightSum
	if !r.enhanced {
		return nil
	}
	// Force a full broadcast even when W is unchanged (or zero): a
	// restarted shard may hold a stale external weight the ΔW fast path
	// would never repair.
	r.broadcastVersion.Add(1)
	var firstErr error
	for i, sh := range r.shards {
		ext := weightSum - shardWt[i]
		if ext < 0 {
			ext = 0
		}
		if err := sh.SetExternalWeight(ctx, ext); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: weight broadcast to shard %d: %w", i, err)
		}
		r.broadcasts.Add(1)
	}
	return firstErr
}

// RuntimeConfig merges the shards' runtime-tuning documents into the
// cluster's (api.ConfigPatcher read side). Every shard must report the
// identical document — a divergent shard fails the read with
// ErrConfigMismatch rather than silently picking a winner, mirroring the
// mixed-policy refusal.
func (r *Router) RuntimeConfig(ctx context.Context) (scheduler.RuntimeConfig, error) {
	var first scheduler.RuntimeConfig
	for i, sh := range r.shards {
		rc, err := sh.RuntimeConfig(ctx)
		if err != nil {
			return scheduler.RuntimeConfig{}, fmt.Errorf("cluster: config from shard %d: %w", i, err)
		}
		if i == 0 {
			first = rc
			continue
		}
		if rc != first {
			return scheduler.RuntimeConfig{}, fmt.Errorf(
				"%w: shard 0 reports %+v, shard %d reports %+v", ErrConfigMismatch, first, i, rc)
		}
	}
	return first, nil
}

// ApplyConfig rolls one runtime-tuning patch across every shard
// (api.ConfigPatcher write side). It refuses to start from a mixed
// cluster — the shards must already agree on the fairness policy
// (ErrPolicyMismatch), same as assembly — and then applies the patch
// shard by shard under the router's mutation lock; the first failure
// aborts the roll-out, leaving earlier shards on the new config (re-run
// the patch, or read RuntimeConfig to see the divergence, exactly like a
// failed weight broadcast). A successful policy patch updates the
// router's own policy and rebroadcasts external weights when the new
// policy's floor coupling demands it.
func (r *Router) ApplyConfig(ctx context.Context, p scheduler.ConfigPatch) error {
	if p.Empty() {
		return nil
	}
	var newPol policy.Policy
	if p.Policy != nil {
		pol, err := policy.ForName(*p.Policy)
		if err != nil {
			return err
		}
		newPol = pol
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.checkShardPoliciesLocked(ctx); err != nil {
		return err
	}
	for i, sh := range r.shards {
		if err := sh.ApplyConfig(ctx, p); err != nil {
			return fmt.Errorf("cluster: applying config on shard %d: %w", i, err)
		}
	}
	if newPol == nil {
		return nil
	}
	wasEnhanced := r.enhanced
	r.polName = newPol.Name()
	r.enhanced = newPol.Capabilities().GlobalWeightFloors
	if !r.enhanced || wasEnhanced {
		// Shards joining (or staying on) a floor-free policy ignore their
		// external weight, and an enhanced→enhanced switch keeps the floors
		// the ledger already broadcast.
		return nil
	}
	// Floor coupling just switched on: every shard needs its external
	// weight installed before the floors mean anything.
	r.broadcastVersion.Add(1)
	var firstErr error
	for i, sh := range r.shards {
		ext := r.weightSum - r.shardWt[i]
		if ext < 0 {
			ext = 0
		}
		if err := sh.SetExternalWeight(ctx, ext); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: weight broadcast to shard %d: %w", i, err)
		}
		r.broadcasts.Add(1)
	}
	return firstErr
}

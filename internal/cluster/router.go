package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/policy"
	"repro/internal/scheduler"
	"repro/internal/serve"
)

// Stable cluster errors. The API layer maps them through api.CodeFor's
// default (invalid_argument → 400) except ErrUnknownJob/ErrDuplicateJob
// pass-throughs, which keep their 404/409 codes.
var (
	// ErrCrossShard rejects a job whose demand sites are already owned by
	// more than one shard: admitting it would couple two shards' max-flow
	// feasibility problems, which the decomposition cannot express.
	ErrCrossShard = errors.New("cluster: job demand spans sites owned by different shards")
	// ErrQueuesUnsupported rejects queue operations in cluster mode:
	// hierarchical fairness needs a global queue view the shards don't have.
	ErrQueuesUnsupported = errors.New("cluster: queues are not supported in sharded mode")
	// ErrRestoreUnsupported rejects restore-through-the-router; restore
	// shards individually instead.
	ErrRestoreUnsupported = errors.New("cluster: restore through the router is unsupported; restore shards directly")
	// ErrPolicyMismatch rejects assembling a cluster whose shards disagree
	// with the router (and hence each other) on the fairness policy: a
	// merged allocation under mixed disciplines is meaningless, and the
	// router's weight-broadcast decision is policy-derived.
	ErrPolicyMismatch = errors.New("cluster: shard fairness policy does not match the router")
	// ErrConfigMismatch rejects a merged runtime-config read when the
	// shards disagree on any tuning knob — there is no single document to
	// report. Re-apply the config through the router (ApplyConfig) or fix
	// the divergent shard, then retry.
	ErrConfigMismatch = errors.New("cluster: shards disagree on runtime config")
)

// ErrExplainNeedsJob rejects a full-dump explanation through the router:
// job and site indexes in an Explanation are shard-local, so a merged
// dump would be incoherent. Name the job (?job=) to route the question to
// its owning shard, or read a shard's /v1/explain directly. Served as 400
// invalid_argument via the api.Coder surface.
var ErrExplainNeedsJob error = &codedError{
	msg:  "cluster: explanation through the router requires ?job=<name>; read shards directly for full dumps",
	code: api.CodeInvalidArgument}

// readTimeout bounds the context-less api.Backend read surfaces (Stats,
// Snapshot, ReadyErr) when fanning out to remote shards.
const readTimeout = 5 * time.Second

// RouterStats counts the router's cluster-coordination activity.
type RouterStats struct {
	// Jobs is the number of jobs currently routed.
	Jobs int
	// OwnedSites is the number of sites currently pinned to a shard.
	OwnedSites int
	// WeightSum is the router's global share-weight sum W.
	WeightSum float64
	// BroadcastVersion increments once per weight-sum change that needed
	// reconciling; Broadcasts counts the per-shard SetExternalWeight calls
	// it fanned out, and FastPathSkips the mutations that needed none
	// (single shard, AMF policy, or ΔW = 0).
	BroadcastVersion uint64
	Broadcasts       int64
	FastPathSkips    int64
	// CrossShardRejects counts jobs refused under ErrCrossShard.
	CrossShardRejects int64
}

// Router fans a cluster of shards into one api.Backend: it places each
// job on a shard by hashing its demand component (core.ShardKey), pins
// the job's sites to that shard so later overlapping jobs follow, merges
// reads across every shard, and — under Enhanced-AMF — reconciles the
// global weight sum by broadcasting W − W_shard to each shard's
// ExternalWeight whenever a mutation changes W.
//
// Mutations are serialized through the router's mutex: the router is the
// single sequencer that keeps site ownership and the weight ledger
// consistent with what the shards have durably applied.
type Router struct {
	shards   []Shard
	polName  string
	enhanced bool

	// reg receives the router's own observability families: per-op fan-out
	// latency histograms (cluster.fanout.latency.<op>), per-shard fan-out
	// error counters (cluster.fanout.errors.<i>) and the cluster version
	// spread gauge. nil disables router-side instrumentation. Set before
	// serving (SetMetrics).
	reg *obs.Registry
	// traces is the router's own trace ring: one parent trace per routed
	// mutation (stages: route, shard_commit, weight_broadcast), under
	// which Traces stitches the shards' commit traces. nil disables
	// router-level tracing (parent-ID propagation still happens).
	traces *span.Recorder
	// extraScrapes are additional federation sources beyond the shards —
	// read replicas, registered by the binary (AddScrapeTarget).
	extraScrapes []scrapeTarget

	mu        sync.Mutex
	siteOwner map[int]int    // site → shard holding jobs that demand it
	siteRef   map[int]int    // site → count of routed jobs demanding it
	jobShard  map[string]int // job → shard
	jobSites  map[string][]int
	jobWeight map[string]float64 // effective (normalized) weight
	shardWt   []float64          // per-shard live weight sum W_k
	weightSum float64            // global W = Σ W_k

	broadcastVersion  atomic.Uint64
	broadcasts        atomic.Int64
	fastPathSkips     atomic.Int64
	crossShardRejects atomic.Int64

	// versions caches the vector observed by the most recent merged
	// Allocation — the cluster-wide snapshot version vector.
	versions atomic.Pointer[[]uint64]
}

// NewRouter builds a router over shards running the given fairness
// policy. The policy's capabilities decide whether weight broadcasts are
// needed: only policies declaring GlobalWeightFloors (Enhanced-AMF)
// couple components through the global weight sum. Every shard must run
// this policy — SyncFromShards verifies it and fails with
// ErrPolicyMismatch otherwise.
func NewRouter(shards []Shard, pol policy.Policy) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one shard")
	}
	if pol == nil {
		return nil, fmt.Errorf("cluster: router needs a policy")
	}
	return &Router{
		shards:    shards,
		polName:   pol.Name(),
		enhanced:  pol.Capabilities().GlobalWeightFloors,
		siteOwner: map[int]int{},
		siteRef:   map[int]int{},
		jobShard:  map[string]int{},
		jobSites:  map[string][]int{},
		jobWeight: map[string]float64{},
		shardWt:   make([]float64, len(shards)),
	}, nil
}

// NumShards reports the cluster size.
func (r *Router) NumShards() int { return len(r.shards) }

// scrapeTarget is one extra metrics-federation source.
type scrapeTarget struct {
	label, value string
	scrape       func(ctx context.Context) ([]byte, error)
}

// SetMetrics attaches the registry receiving the router's fan-out
// telemetry. Call before serving; returns r for chaining.
func (r *Router) SetMetrics(reg *obs.Registry) *Router {
	r.reg = reg
	return r
}

// SetTraces attaches the router's parent-trace ring (see Traces). Call
// before serving; returns r for chaining.
func (r *Router) SetTraces(rec *span.Recorder) *Router {
	r.traces = rec
	return r
}

// AddScrapeTarget registers an extra metrics-federation source — a read
// replica's /metrics, labeled e.g. replica="0". Call before serving.
func (r *Router) AddScrapeTarget(label, value string, scrape func(ctx context.Context) ([]byte, error)) {
	r.extraScrapes = append(r.extraScrapes, scrapeTarget{label: label, value: value, scrape: scrape})
}

// observeFanout feeds one cluster.fanout.latency.<op> histogram.
func (r *Router) observeFanout(op string, start time.Time) {
	if r.reg != nil {
		r.reg.Observe("cluster.fanout.latency."+op, time.Since(start))
	}
}

// countShardError bumps the per-shard fan-out error counter.
func (r *Router) countShardError(shard int) {
	if r.reg != nil {
		r.reg.Counter("cluster.fanout.errors." + strconv.Itoa(shard)).Inc()
	}
}

// beginOp starts one routed mutation's observability context: the
// router-level parent trace ID (the request's trace ID when the API
// middleware minted one, else fresh) is installed in the context both as
// the trace ID — so fan-out legs reuse it and the shard's commit batches
// it under Requests — and as the parent span ID, which the API client
// forwards via the X-AMF-Parent-Span header (in-process shards read it
// straight from the context) so the shard stamps it on the commit trace
// for stitching. The returned builder is nil when router tracing is off;
// mark/finishOp tolerate that.
func (r *Router) beginOp(ctx context.Context) (context.Context, *span.Builder) {
	parent := span.FromContext(ctx)
	if parent == "" {
		parent = span.MintID()
		ctx = span.NewContext(ctx, parent)
	}
	ctx = span.NewParentContext(ctx, parent)
	if r.traces == nil {
		return ctx, nil
	}
	return ctx, span.Begin(parent, time.Now())
}

// mark appends one stage span covering [start, now) to a routed
// mutation's trace.
func mark(tb *span.Builder, name string, start time.Time) {
	if tb != nil {
		tb.Stage(name, time.Since(start))
	}
}

// finishOp records a routed mutation's completed trace.
func (r *Router) finishOp(tb *span.Builder, err error) {
	if tb == nil {
		return
	}
	tb.SetError(err)
	r.traces.Record(tb.Finish())
}

// PolicyName reports the fairness policy the cluster runs — the router's
// configured policy, which SyncFromShards verifies every shard agrees
// with. The router deliberately does NOT implement bespoke runtime
// switching (api.PolicyController); a cluster-wide switch goes through
// the unified config surface (ApplyConfig), which refuses to start from
// a mixed cluster and rolls the change across every shard.
func (r *Router) PolicyName() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.polName
}

// checkShardPoliciesLocked verifies every shard runs the router's policy.
func (r *Router) checkShardPoliciesLocked(ctx context.Context) error {
	for i, sh := range r.shards {
		name, err := sh.PolicyName(ctx)
		if err != nil {
			return fmt.Errorf("cluster: policy from shard %d: %w", i, err)
		}
		if name != r.polName {
			return fmt.Errorf("%w: shard %d runs %q, router expects %q",
				ErrPolicyMismatch, i, name, r.polName)
		}
	}
	return nil
}

// effWeight mirrors the scheduler's normalization: weight <= 0 means 1.
func effWeight(w float64) float64 {
	if w <= 0 {
		return 1
	}
	return w
}

// routeLocked picks the shard for a job with the given demand sites:
// the owner of any already-pinned site, else the component hash. extra
// overlays tentative ownership from earlier specs of the same batch.
func (r *Router) routeLocked(sites []int, extra map[int]int) (int, error) {
	owner := -1
	for _, s := range sites {
		o, ok := r.siteOwner[s]
		if !ok {
			if extra != nil {
				o, ok = extra[s]
			}
			if !ok {
				continue
			}
		}
		if owner == -1 {
			owner = o
		} else if o != owner {
			r.crossShardRejects.Add(1)
			return 0, fmt.Errorf("%w (shards %d and %d)", ErrCrossShard, owner, o)
		}
	}
	if owner >= 0 {
		return owner, nil
	}
	key, ok := core.ShardKey(sites)
	if !ok {
		return 0, fmt.Errorf("cluster: job demands no site")
	}
	return core.ShardOf(key, len(r.shards)), nil
}

// recordJobLocked pins a routed job into the ownership maps and the
// weight ledger, returning the weight delta to reconcile.
func (r *Router) recordJobLocked(id string, shard int, sites []int, weight float64) float64 {
	w := effWeight(weight)
	r.jobShard[id] = shard
	r.jobSites[id] = sites
	r.jobWeight[id] = w
	for _, s := range sites {
		r.siteOwner[s] = shard
		r.siteRef[s]++
	}
	r.shardWt[shard] += w
	r.weightSum += w
	return w
}

// forgetJobLocked unpins a removed (or completed) job, returning the
// negative weight delta to reconcile.
func (r *Router) forgetJobLocked(id string) float64 {
	shard := r.jobShard[id]
	w := r.jobWeight[id]
	for _, s := range r.jobSites[id] {
		if r.siteRef[s]--; r.siteRef[s] == 0 {
			delete(r.siteRef, s)
			delete(r.siteOwner, s)
		}
	}
	delete(r.jobShard, id)
	delete(r.jobSites, id)
	delete(r.jobWeight, id)
	r.shardWt[shard] -= w
	r.weightSum -= w
	return -w
}

// reconcileLocked broadcasts the new global weight sum after a mutation
// on shard `dirty` changed W by delta. The dirty shard itself never
// needs the broadcast: its local weight and W moved together, so its
// external weight W − W_dirty is unchanged — only the other shards'
// floors shifted. Fast path: nothing to do for AMF (no weight-sum
// coupling), a single-shard cluster, or ΔW = 0.
func (r *Router) reconcileLocked(ctx context.Context, dirty int, delta float64) error {
	if !r.enhanced || len(r.shards) == 1 || delta == 0 {
		r.fastPathSkips.Add(1)
		return nil
	}
	start := time.Now()
	defer func() { r.observeFanout("weight_broadcast", start) }()
	r.broadcastVersion.Add(1)
	var firstErr error
	for i, sh := range r.shards {
		if i == dirty {
			continue
		}
		ext := r.weightSum - r.shardWt[i]
		if ext < 0 {
			// Float cancellation can leave a tiny negative residue the
			// scheduler would reject.
			ext = 0
		}
		if err := sh.SetExternalWeight(ctx, ext); err != nil {
			r.countShardError(i)
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: weight broadcast to shard %d: %w", i, err)
			}
		}
		r.broadcasts.Add(1)
	}
	// A failed broadcast leaves that shard's floors stale until the next
	// reconcile; the mutation itself already committed on the dirty shard.
	return firstErr
}

// AddJob routes and registers one job.
func (r *Router) AddJob(ctx context.Context, id string, weight float64, demand, work []float64) (err error) {
	ctx, tb := r.beginOp(ctx)
	defer func() { r.finishOp(tb, err) }()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.jobShard[id]; ok {
		return fmt.Errorf("%w: %q", scheduler.ErrDuplicateJob, id)
	}
	sites := core.DemandSites(demand)
	t0 := time.Now()
	shard, err := r.routeLocked(sites, nil)
	mark(tb, "route", t0)
	if err != nil {
		return err
	}
	t0 = time.Now()
	err = r.shards[shard].AddJob(ctx, id, weight, demand, work)
	mark(tb, "shard_commit", t0)
	if err != nil {
		r.countShardError(shard)
		return err
	}
	delta := r.recordJobLocked(id, shard, sites, weight)
	t0 = time.Now()
	err = r.reconcileLocked(ctx, shard, delta)
	mark(tb, "weight_broadcast", t0)
	return err
}

// AddJobInQueue is unsupported in cluster mode.
func (r *Router) AddJobInQueue(ctx context.Context, queue, id string, weight float64, demand, work []float64) error {
	return ErrQueuesUnsupported
}

// AddQueue is unsupported in cluster mode.
func (r *Router) AddQueue(ctx context.Context, name string, weight float64) error {
	return ErrQueuesUnsupported
}

// AddJobs routes a batch. Specs are grouped by target shard and each
// group is registered atomically on its shard; when the batch spans
// shards and a later group fails, already-registered groups are rolled
// back best-effort, so the batch is all-or-nothing as long as the
// compensating removals succeed.
func (r *Router) AddJobs(ctx context.Context, specs []scheduler.JobSpec) (err error) {
	ctx, tb := r.beginOp(ctx)
	defer func() { r.finishOp(tb, err) }()
	r.mu.Lock()
	defer r.mu.Unlock()
	if tb != nil {
		tb.SetBatch(len(specs), nil)
	}
	seen := map[string]bool{}
	tentative := map[int]int{}
	groups := map[int][]scheduler.JobSpec{}
	siteSets := map[string][]int{}
	t0 := time.Now()
	for _, sp := range specs {
		if sp.Queue != "" {
			mark(tb, "route", t0)
			return ErrQueuesUnsupported
		}
		if _, ok := r.jobShard[sp.ID]; ok || seen[sp.ID] {
			mark(tb, "route", t0)
			return fmt.Errorf("%w: %q", scheduler.ErrDuplicateJob, sp.ID)
		}
		seen[sp.ID] = true
		sites := core.DemandSites(sp.Demand)
		shard, rerr := r.routeLocked(sites, tentative)
		if rerr != nil {
			mark(tb, "route", t0)
			return rerr
		}
		for _, s := range sites {
			tentative[s] = shard
		}
		siteSets[sp.ID] = sites
		groups[shard] = append(groups[shard], sp)
	}
	mark(tb, "route", t0)
	order := make([]int, 0, len(groups))
	for shard := range groups {
		order = append(order, shard)
	}
	sort.Ints(order)
	t0 = time.Now()
	applied := make([]int, 0, len(order))
	for _, shard := range order {
		if err := r.shards[shard].AddJobs(ctx, groups[shard]); err != nil {
			r.countShardError(shard)
			for _, k := range applied {
				for _, sp := range groups[k] {
					_ = r.shards[k].RemoveJob(ctx, sp.ID)
				}
			}
			mark(tb, "shard_commit", t0)
			return err
		}
		applied = append(applied, shard)
	}
	mark(tb, "shard_commit", t0)
	var total float64
	last := 0
	for _, shard := range order {
		for _, sp := range groups[shard] {
			total += r.recordJobLocked(sp.ID, shard, siteSets[sp.ID], sp.Weight)
		}
		last = shard
	}
	if len(order) > 1 {
		// More than one shard got new weight: no single dirty shard, so
		// reconcile against a sentinel that broadcasts to everyone.
		last = -1
	}
	t0 = time.Now()
	err = r.reconcileLocked(ctx, last, total)
	mark(tb, "weight_broadcast", t0)
	return err
}

// RemoveJob routes a removal.
func (r *Router) RemoveJob(ctx context.Context, id string) (err error) {
	ctx, tb := r.beginOp(ctx)
	defer func() { r.finishOp(tb, err) }()
	r.mu.Lock()
	defer r.mu.Unlock()
	shard, ok := r.jobShard[id]
	if !ok {
		return fmt.Errorf("%w: %q", scheduler.ErrUnknownJob, id)
	}
	t0 := time.Now()
	err = r.shards[shard].RemoveJob(ctx, id)
	mark(tb, "shard_commit", t0)
	if err != nil {
		r.countShardError(shard)
		return err
	}
	delta := r.forgetJobLocked(id)
	t0 = time.Now()
	err = r.reconcileLocked(ctx, shard, delta)
	mark(tb, "weight_broadcast", t0)
	return err
}

// ReportProgress routes a progress report; a completed job leaves the
// ledger exactly like a removal.
func (r *Router) ReportProgress(ctx context.Context, id string, done []float64) (completed bool, err error) {
	ctx, tb := r.beginOp(ctx)
	defer func() { r.finishOp(tb, err) }()
	r.mu.Lock()
	defer r.mu.Unlock()
	shard, ok := r.jobShard[id]
	if !ok {
		return false, fmt.Errorf("%w: %q", scheduler.ErrUnknownJob, id)
	}
	t0 := time.Now()
	completed, err = r.shards[shard].ReportProgress(ctx, id, done)
	mark(tb, "shard_commit", t0)
	if err != nil {
		r.countShardError(shard)
		return false, err
	}
	if completed {
		delta := r.forgetJobLocked(id)
		t0 = time.Now()
		err = r.reconcileLocked(ctx, shard, delta)
		mark(tb, "weight_broadcast", t0)
		return true, err
	}
	return false, nil
}

// UpdateWeight routes a weight change.
func (r *Router) UpdateWeight(ctx context.Context, id string, weight float64) (err error) {
	ctx, tb := r.beginOp(ctx)
	defer func() { r.finishOp(tb, err) }()
	r.mu.Lock()
	defer r.mu.Unlock()
	shard, ok := r.jobShard[id]
	if !ok {
		return fmt.Errorf("%w: %q", scheduler.ErrUnknownJob, id)
	}
	t0 := time.Now()
	err = r.shards[shard].UpdateWeight(ctx, id, weight)
	mark(tb, "shard_commit", t0)
	if err != nil {
		r.countShardError(shard)
		return err
	}
	old := r.jobWeight[id]
	w := effWeight(weight)
	r.jobWeight[id] = w
	r.shardWt[shard] += w - old
	r.weightSum += w - old
	t0 = time.Now()
	err = r.reconcileLocked(ctx, shard, w-old)
	mark(tb, "weight_broadcast", t0)
	return err
}

// Shares routes a single-job read to its shard.
func (r *Router) Shares(ctx context.Context, id string) ([]float64, error) {
	r.mu.Lock()
	shard, ok := r.jobShard[id]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", scheduler.ErrUnknownJob, id)
	}
	return r.shards[shard].Shares(ctx, id)
}

// Allocation fans the read out to every shard in parallel and merges the
// maps into one response, caching the per-shard snapshot versions as the
// cluster's version vector (VersionVector, SnapshotVersion).
func (r *Router) Allocation(ctx context.Context) (map[string][]float64, error) {
	start := time.Now()
	defer func() { r.observeFanout("allocation", start) }()
	type result struct {
		alloc   map[string][]float64
		version uint64
		err     error
	}
	results := make([]result, len(r.shards))
	var wg sync.WaitGroup
	for i, sh := range r.shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			results[i].alloc, results[i].version, results[i].err = sh.Allocation(ctx)
		}(i, sh)
	}
	wg.Wait()
	merged := map[string][]float64{}
	versions := make([]uint64, len(r.shards))
	for i, res := range results {
		if res.err != nil {
			r.countShardError(i)
			return nil, fmt.Errorf("cluster: allocation from shard %d: %w", i, res.err)
		}
		versions[i] = res.version
		for id, shares := range res.alloc {
			merged[id] = shares
		}
	}
	r.versions.Store(&versions)
	return merged, nil
}

// Explain routes the explainability question to the job's owning shard
// (api.Explainer) and labels the answer with that shard's index. Full
// dumps (job "") are refused: an Explanation's job and site indexes are
// shard-local, so a merged dump would be incoherent.
func (r *Router) Explain(ctx context.Context, job string) (*serve.ExplainResult, error) {
	if job == "" {
		return nil, ErrExplainNeedsJob
	}
	r.mu.Lock()
	shard, ok := r.jobShard[job]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", scheduler.ErrUnknownJob, job)
	}
	start := time.Now()
	defer func() { r.observeFanout("explain", start) }()
	res, err := r.shards[shard].Explain(ctx, job)
	if err != nil {
		r.countShardError(shard)
		return nil, fmt.Errorf("cluster: explain from shard %d: %w", shard, err)
	}
	res.Shard = strconv.Itoa(shard)
	return res, nil
}

// VersionVector returns the per-shard snapshot versions observed by the
// most recent merged Allocation (nil before the first).
func (r *Router) VersionVector() []uint64 {
	p := r.versions.Load()
	if p == nil {
		return nil
	}
	return append([]uint64(nil), (*p)...)
}

// SnapshotVersion flattens the version vector into one scalar (the sum):
// each component is non-decreasing, so the sum is a monotonic cluster
// version suitable for api.Versioned.
func (r *Router) SnapshotVersion() uint64 {
	var sum uint64
	for _, v := range r.VersionVector() {
		sum += v
	}
	return sum
}

// Stats merges controller counters across shards: totals are summed,
// last-solve telemetry takes the slowest/largest shard.
func (r *Router) Stats() scheduler.Stats {
	ctx, cancel := context.WithTimeout(context.Background(), readTimeout)
	defer cancel()
	var out scheduler.Stats
	for _, sh := range r.shards {
		st, err := sh.Stats(ctx)
		if err != nil {
			continue // best effort: a dead shard drops out of the merge
		}
		out.Solves += st.Solves
		out.Skipped += st.Skipped
		out.Jobs += st.Jobs
		out.Completed += st.Completed
		if st.LastSolve > out.LastSolve {
			out.LastSolve = st.LastSolve
		}
		out.TotalSolveTime += st.TotalSolveTime
		out.LastComponents += st.LastComponents
		if st.LastLargestComponent > out.LastLargestComponent {
			out.LastLargestComponent = st.LastLargestComponent
		}
		if st.LastSpeedup > out.LastSpeedup {
			out.LastSpeedup = st.LastSpeedup
		}
		out.LastReused += st.LastReused
		out.LastResolved += st.LastResolved
		out.CacheHits += st.CacheHits
		out.CacheMisses += st.CacheMisses
		out.GlobalInvalidations += st.GlobalInvalidations
	}
	return out
}

// Snapshot merges the shards' job sets into one diagnostic snapshot.
// It cannot be restored through the router (see Restore); external
// weights are shard-local and omitted.
func (r *Router) Snapshot() scheduler.Snapshot {
	ctx, cancel := context.WithTimeout(context.Background(), readTimeout)
	defer cancel()
	var out scheduler.Snapshot
	for _, sh := range r.shards {
		snap, err := sh.Snapshot(ctx)
		if err != nil {
			continue
		}
		out.Jobs = append(out.Jobs, snap.Jobs...)
	}
	return out
}

// Restore is unsupported through the router.
func (r *Router) Restore(ctx context.Context, snap scheduler.Snapshot) error {
	return ErrRestoreUnsupported
}

// Traces returns the cluster's stitched trace forest, newest first,
// capped at limit top-level trees (0 = everything).
//
// Every shard's whole ring is fetched in parallel and each shard-local
// commit trace is tagged with its shard index. Traces carrying a parent
// ID that matches a router-level trace (recorded per routed mutation —
// see beginOp) hang under that parent as Children; traces whose parent
// has already churned out of the router's ring, and standalone traces
// (no parent), stay visible as flat top-level entries.
func (r *Router) Traces(ctx context.Context, limit int) ([]*span.Trace, error) {
	start := time.Now()
	defer func() { r.observeFanout("traces", start) }()
	type result struct {
		traces []*span.Trace
		err    error
	}
	results := make([]result, len(r.shards))
	var wg sync.WaitGroup
	for i, sh := range r.shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			// Fetch the whole ring: a child relevant to a recent parent may
			// sit deeper than `limit` in a busy shard's ring.
			results[i].traces, results[i].err = sh.Traces(ctx, 0)
		}(i, sh)
	}
	wg.Wait()
	children := map[span.ID][]*span.Trace{}
	var flat []*span.Trace
	for i, res := range results {
		if res.err != nil {
			r.countShardError(i)
			return nil, fmt.Errorf("cluster: traces from shard %d: %w", i, res.err)
		}
		label := strconv.Itoa(i)
		for _, t := range res.traces {
			c := t.StitchChild(t.Parent, label)
			if c.Parent != "" {
				children[c.Parent] = append(children[c.Parent], c)
			} else {
				flat = append(flat, c)
			}
		}
	}
	var merged []*span.Trace
	if r.traces != nil {
		for _, p := range r.traces.Recent(0) {
			// Shallow copy: the recorded parent is immutable and shared with
			// concurrent readers; only the copy grows Children.
			cp := *p
			cp.Children = children[cp.ID]
			sort.SliceStable(cp.Children, func(a, b int) bool {
				return cp.Children[a].Shard < cp.Children[b].Shard
			})
			delete(children, cp.ID)
			merged = append(merged, &cp)
		}
	}
	// Children whose parent churned out of the router ring stay visible.
	for _, orphans := range children {
		flat = append(flat, orphans...)
	}
	merged = append(merged, flat...)
	sort.SliceStable(merged, func(a, b int) bool {
		return merged[a].Start.After(merged[b].Start)
	})
	if limit > 0 && len(merged) > limit {
		merged = merged[:limit]
	}
	return merged, nil
}

// SlowTraces merges the shards' slow-trace retention rings, slowest
// first, capped at limit (0 = everything retained), each trace tagged
// with its shard index.
func (r *Router) SlowTraces(ctx context.Context, limit int) ([]*span.Trace, error) {
	type result struct {
		traces []*span.Trace
		err    error
	}
	results := make([]result, len(r.shards))
	var wg sync.WaitGroup
	for i, sh := range r.shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			results[i].traces, results[i].err = sh.SlowTraces(ctx, limit)
		}(i, sh)
	}
	wg.Wait()
	var merged []*span.Trace
	for i, res := range results {
		if res.err != nil {
			r.countShardError(i)
			return nil, fmt.Errorf("cluster: slow traces from shard %d: %w", i, res.err)
		}
		label := strconv.Itoa(i)
		for _, t := range res.traces {
			merged = append(merged, t.StitchChild(t.Parent, label))
		}
	}
	sort.SliceStable(merged, func(a, b int) bool {
		return merged[a].Total > merged[b].Total
	})
	if limit > 0 && len(merged) > limit {
		merged = merged[:limit]
	}
	return merged, nil
}

// WriteFederatedMetrics scrapes every shard's (and registered replica's)
// Prometheus page concurrently and re-exports them as ONE exposition:
// shard pages gain a shard="<i>" label, extra targets their registered
// label pair, and the router's own registry (fan-out latencies, per-shard
// error counters, version spread) rides along unlabeled. A target that
// fails to scrape drops out of the page (best effort, counted in
// cluster.fanout.errors.<i> for shards) rather than failing the scrape.
func (r *Router) WriteFederatedMetrics(ctx context.Context, w io.Writer) error {
	start := time.Now()
	defer func() { r.observeFanout("metrics", start) }()
	n := len(r.shards) + len(r.extraScrapes)
	pages := make([]obs.ScrapedPage, 0, n+1)
	bodies := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, sh := range r.shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			bodies[i], errs[i] = sh.ScrapeMetrics(ctx)
		}(i, sh)
	}
	for i, t := range r.extraScrapes {
		wg.Add(1)
		go func(i int, t scrapeTarget) {
			defer wg.Done()
			bodies[i], errs[i] = t.scrape(ctx)
		}(len(r.shards)+i, t)
	}
	wg.Wait()
	for i := range r.shards {
		if errs[i] != nil {
			r.countShardError(i)
			continue
		}
		pages = append(pages, obs.ScrapedPage{Label: "shard", Value: strconv.Itoa(i), Body: bodies[i]})
	}
	for i, t := range r.extraScrapes {
		if errs[len(r.shards)+i] != nil {
			continue
		}
		pages = append(pages, obs.ScrapedPage{Label: t.label, Value: t.value, Body: bodies[len(r.shards)+i]})
	}
	if r.reg != nil {
		// Refresh the version-spread gauge from the latest merged read
		// before self-scraping: how far apart the shards' snapshot
		// versions sit, 0 for a lock-step (or single-shard) cluster.
		if vec := r.VersionVector(); len(vec) > 0 {
			lo, hi := vec[0], vec[0]
			for _, v := range vec[1:] {
				lo, hi = min(lo, v), max(hi, v)
			}
			r.reg.Gauge("cluster.version_spread").Set(float64(hi - lo))
		}
		var sb strings.Builder
		if err := r.reg.WritePrometheus(&sb); err == nil {
			pages = append(pages, obs.ScrapedPage{Body: []byte(sb.String())})
		}
	}
	return obs.WriteFederated(w, pages)
}

// ReadyErr reports the first unready shard (api.ReadyChecker): the
// cluster can take mutations only when every shard can.
func (r *Router) ReadyErr() error {
	ctx, cancel := context.WithTimeout(context.Background(), readTimeout)
	defer cancel()
	for i, sh := range r.shards {
		if err := sh.ReadyErr(ctx); err != nil {
			return fmt.Errorf("cluster: shard %d unready: %w", i, err)
		}
	}
	return nil
}

// RouterStats reports the router's coordination counters.
func (r *Router) RouterStats() RouterStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RouterStats{
		Jobs:              len(r.jobShard),
		OwnedSites:        len(r.siteOwner),
		WeightSum:         r.weightSum,
		BroadcastVersion:  r.broadcastVersion.Load(),
		Broadcasts:        r.broadcasts.Load(),
		FastPathSkips:     r.fastPathSkips.Load(),
		CrossShardRejects: r.crossShardRejects.Load(),
	}
}

// SyncFromShards rebuilds the routing tables from the shards' live job
// sets — router restart against a running cluster. It fails if any shard
// runs a different fairness policy (ErrPolicyMismatch) or if two
// shards claim the same site (an operator mis-assembly the router must
// not paper over) and finishes by reconciling every shard's external
// weight against the rebuilt ledger.
func (r *Router) SyncFromShards(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.checkShardPoliciesLocked(ctx); err != nil {
		return err
	}
	siteOwner := map[int]int{}
	siteRef := map[int]int{}
	jobShard := map[string]int{}
	jobSites := map[string][]int{}
	jobWeight := map[string]float64{}
	shardWt := make([]float64, len(r.shards))
	var weightSum float64
	for i, sh := range r.shards {
		snap, err := sh.Snapshot(ctx)
		if err != nil {
			return fmt.Errorf("cluster: sync from shard %d: %w", i, err)
		}
		for _, j := range snap.Jobs {
			if prev, ok := jobShard[j.ID]; ok {
				return fmt.Errorf("cluster: job %q on shards %d and %d", j.ID, prev, i)
			}
			sites := core.DemandSites(j.Demand)
			for _, s := range sites {
				if o, ok := siteOwner[s]; ok && o != i {
					return fmt.Errorf("cluster: site %d owned by shards %d and %d", s, o, i)
				}
				siteOwner[s] = i
				siteRef[s]++
			}
			w := effWeight(j.Weight)
			jobShard[j.ID] = i
			jobSites[j.ID] = sites
			jobWeight[j.ID] = w
			shardWt[i] += w
			weightSum += w
		}
	}
	r.siteOwner, r.siteRef = siteOwner, siteRef
	r.jobShard, r.jobSites, r.jobWeight = jobShard, jobSites, jobWeight
	r.shardWt, r.weightSum = shardWt, weightSum
	if !r.enhanced {
		return nil
	}
	// Force a full broadcast even when W is unchanged (or zero): a
	// restarted shard may hold a stale external weight the ΔW fast path
	// would never repair.
	r.broadcastVersion.Add(1)
	var firstErr error
	for i, sh := range r.shards {
		ext := weightSum - shardWt[i]
		if ext < 0 {
			ext = 0
		}
		if err := sh.SetExternalWeight(ctx, ext); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: weight broadcast to shard %d: %w", i, err)
		}
		r.broadcasts.Add(1)
	}
	return firstErr
}

// RuntimeConfig merges the shards' runtime-tuning documents into the
// cluster's (api.ConfigPatcher read side). Every shard must report the
// identical document — a divergent shard fails the read with
// ErrConfigMismatch rather than silently picking a winner, mirroring the
// mixed-policy refusal.
func (r *Router) RuntimeConfig(ctx context.Context) (scheduler.RuntimeConfig, error) {
	var first scheduler.RuntimeConfig
	for i, sh := range r.shards {
		rc, err := sh.RuntimeConfig(ctx)
		if err != nil {
			return scheduler.RuntimeConfig{}, fmt.Errorf("cluster: config from shard %d: %w", i, err)
		}
		if i == 0 {
			first = rc
			continue
		}
		if rc != first {
			return scheduler.RuntimeConfig{}, fmt.Errorf(
				"%w: shard 0 reports %+v, shard %d reports %+v", ErrConfigMismatch, first, i, rc)
		}
	}
	return first, nil
}

// ApplyConfig rolls one runtime-tuning patch across every shard
// (api.ConfigPatcher write side). It refuses to start from a mixed
// cluster — the shards must already agree on the fairness policy
// (ErrPolicyMismatch), same as assembly — and then applies the patch
// shard by shard under the router's mutation lock; the first failure
// aborts the roll-out, leaving earlier shards on the new config (re-run
// the patch, or read RuntimeConfig to see the divergence, exactly like a
// failed weight broadcast). A successful policy patch updates the
// router's own policy and rebroadcasts external weights when the new
// policy's floor coupling demands it.
func (r *Router) ApplyConfig(ctx context.Context, p scheduler.ConfigPatch) error {
	if p.Empty() {
		return nil
	}
	var newPol policy.Policy
	if p.Policy != nil {
		pol, err := policy.ForName(*p.Policy)
		if err != nil {
			return err
		}
		newPol = pol
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.checkShardPoliciesLocked(ctx); err != nil {
		return err
	}
	for i, sh := range r.shards {
		if err := sh.ApplyConfig(ctx, p); err != nil {
			return fmt.Errorf("cluster: applying config on shard %d: %w", i, err)
		}
	}
	if newPol == nil {
		return nil
	}
	wasEnhanced := r.enhanced
	r.polName = newPol.Name()
	r.enhanced = newPol.Capabilities().GlobalWeightFloors
	if !r.enhanced || wasEnhanced {
		// Shards joining (or staying on) a floor-free policy ignore their
		// external weight, and an enhanced→enhanced switch keeps the floors
		// the ledger already broadcast.
		return nil
	}
	// Floor coupling just switched on: every shard needs its external
	// weight installed before the floors mean anything.
	r.broadcastVersion.Add(1)
	var firstErr error
	for i, sh := range r.shards {
		ext := r.weightSum - r.shardWt[i]
		if ext < 0 {
			ext = 0
		}
		if err := sh.SetExternalWeight(ctx, ext); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: weight broadcast to shard %d: %w", i, err)
		}
		r.broadcasts.Add(1)
	}
	return firstErr
}

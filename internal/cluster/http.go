package cluster

import (
	"encoding/json"
	"net/http"
	"strconv"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/policy"
)

// VersionsResponse is the cluster-wide snapshot version vector — one
// monotonic snapshot version per shard, as observed by the most recent
// merged allocation read — plus its scalar sum (the value /v1/allocation
// reports as "version").
type VersionsResponse struct {
	Shards   int      `json:"shards"`
	Versions []uint64 `json:"versions"`
	Sum      uint64   `json:"sum"`
}

// RouterStatsResponse is the wire form of RouterStats.
type RouterStatsResponse struct {
	Jobs              int     `json:"jobs"`
	OwnedSites        int     `json:"owned_sites"`
	WeightSum         float64 `json:"weight_sum"`
	BroadcastVersion  uint64  `json:"broadcast_version"`
	Broadcasts        int64   `json:"broadcasts"`
	FastPathSkips     int64   `json:"fast_path_skips"`
	CrossShardRejects int64   `json:"cross_shard_rejects"`
}

// NewHandler mounts the full cluster control plane for a router: the
// standard /v1 API (api.NewBackendServer over the router — merged
// allocations with the cluster version, merged stats, readiness across
// every shard, /v1/explain routed to the owning shard) plus the
// cluster-specific routes:
//
//	GET /v1/traces            the stitched trace forest: router-level
//	                          parent traces with the shards' commit
//	                          traces hanging under them, newest first
//	                          (?limit=N); ?slow=1 reads the shards'
//	                          slow-trace retention rings instead,
//	                          slowest first
//	GET /metrics              ONE federated Prometheus page: every
//	                          shard's (and registered replica's) scrape
//	                          relabeled with shard="i"/replica="i",
//	                          plus the router's own fan-out telemetry
//	GET /v1/cluster/versions  the snapshot version vector
//	GET /v1/cluster/stats     routing and weight-broadcast counters
//
// The router's fan-out instrumentation and parent-trace ring are wired
// into reg and a fresh ring here (SetMetrics/SetTraces) unless the caller
// attached its own ring beforehand.
func NewHandler(r *Router, reg *obs.Registry, capacity []float64, pol policy.Policy) http.Handler {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r.SetMetrics(reg)
	if r.traces == nil {
		r.SetTraces(span.NewRecorder(256))
	}
	srv := api.NewBackendServer(r, reg, capacity, pol)
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("GET /v1/traces", func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		limit := 0
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				writeJSON(w, http.StatusBadRequest, map[string]string{
					"error": "limit must be a non-negative integer", "code": api.CodeInvalidArgument})
				return
			}
			limit = n
		}
		slow := q.Get("slow") == "1" || q.Get("slow") == "true"
		var traces []*span.Trace
		var err error
		if slow {
			traces, err = r.SlowTraces(req.Context(), limit)
		} else {
			traces, err = r.Traces(req.Context(), limit)
		}
		if err != nil {
			code := api.CodeFor(err)
			writeJSON(w, api.StatusFor(code), map[string]string{"error": err.Error(), "code": code})
			return
		}
		if traces == nil {
			traces = []*span.Trace{}
		}
		writeJSON(w, http.StatusOK, api.TracesResponse{Slow: slow, Traces: traces})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", obs.PromContentType)
		_ = r.WriteFederatedMetrics(req.Context(), w)
	})
	mux.HandleFunc("GET /v1/cluster/versions", func(w http.ResponseWriter, req *http.Request) {
		vec := r.VersionVector()
		var sum uint64
		for _, v := range vec {
			sum += v
		}
		writeJSON(w, http.StatusOK, VersionsResponse{Shards: r.NumShards(), Versions: vec, Sum: sum})
	})
	mux.HandleFunc("GET /v1/cluster/stats", func(w http.ResponseWriter, req *http.Request) {
		st := r.RouterStats()
		writeJSON(w, http.StatusOK, RouterStatsResponse{
			Jobs:              st.Jobs,
			OwnedSites:        st.OwnedSites,
			WeightSum:         st.WeightSum,
			BroadcastVersion:  st.BroadcastVersion,
			Broadcasts:        st.Broadcasts,
			FastPathSkips:     st.FastPathSkips,
			CrossShardRejects: st.CrossShardRejects,
		})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

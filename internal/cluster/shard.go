// Package cluster scales the allocator horizontally: a Router hashes
// job components across N engine shards and merges their reads, while
// Replicas tail a shard's write-ahead log over HTTP and serve lock-free
// stale-bounded reads.
//
// Sharding is correct because the solver's only cross-component coupling
// is the Enhanced-AMF equal-share floor, which depends on the global
// weight sum W. Every shard holds the full site-capacity vector, jobs
// are placed so no site is touched by two shards, and the router keeps
// each shard's core.Instance.ExternalWeight at W − W_shard — making each
// shard's solve the exact restriction of the global solve to its
// components. See DESIGN.md §14.
package cluster

import (
	"context"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/scheduler"
	"repro/internal/serve"
)

// The router is itself an api.Backend with the unified config surface
// and the explainability surface; replicas explain their replayed view.
var _ api.ConfigPatcher = (*Router)(nil)
var _ api.Explainer = (*Router)(nil)
var _ api.Explainer = (*Replica)(nil)

// Shard is the router's view of one engine shard: the mutation and read
// surface it fans out to, plus the cluster-specific hooks (external
// weight, snapshot version, readiness). Implemented in-process by
// EngineShard and over HTTP by HTTPShard.
type Shard interface {
	AddJob(ctx context.Context, id string, weight float64, demand, work []float64) error
	AddJobs(ctx context.Context, specs []scheduler.JobSpec) error
	RemoveJob(ctx context.Context, id string) error
	UpdateWeight(ctx context.Context, id string, weight float64) error
	ReportProgress(ctx context.Context, id string, done []float64) (bool, error)
	Shares(ctx context.Context, id string) ([]float64, error)
	// Allocation returns every job's shares together with the shard's
	// snapshot version — one coherent pair, so the router can assemble a
	// cluster-wide version vector from a single fan-out.
	Allocation(ctx context.Context) (map[string][]float64, uint64, error)
	Stats(ctx context.Context) (scheduler.Stats, error)
	Snapshot(ctx context.Context) (scheduler.Snapshot, error)
	Traces(ctx context.Context, limit int) ([]*span.Trace, error)
	// SlowTraces reads the shard's slow-trace retention ring, slowest
	// first (nil when the shard runs without slow retention).
	SlowTraces(ctx context.Context, limit int) ([]*span.Trace, error)
	// Explain derives the shard's allocation explanation (job "" = full
	// dump; the router routes named jobs to the owning shard).
	Explain(ctx context.Context, job string) (*serve.ExplainResult, error)
	// ScrapeMetrics returns the shard's raw Prometheus text exposition —
	// the router's federation input (nil page when unavailable).
	ScrapeMetrics(ctx context.Context) ([]byte, error)
	SetExternalWeight(ctx context.Context, w float64) error
	// PolicyName reports the shard's active fairness policy; the router
	// refuses to assemble a mixed-policy cluster (ErrPolicyMismatch).
	PolicyName(ctx context.Context) (string, error)
	// RuntimeConfig reports the shard's runtime-tuning document; the
	// router's merged read requires every shard to agree
	// (ErrConfigMismatch).
	RuntimeConfig(ctx context.Context) (scheduler.RuntimeConfig, error)
	// ApplyConfig applies one runtime-tuning patch on the shard — the
	// router fans a cluster-wide PATCH /v1/config out through it.
	ApplyConfig(ctx context.Context, p scheduler.ConfigPatch) error
	ReadyErr(ctx context.Context) error
}

// EngineShard adapts an in-process serving engine to the Shard surface —
// the deployment where one amf-server hosts every shard (-cluster-shards)
// and fan-out is a method call.
type EngineShard struct {
	Eng *serve.Engine
	// Rec is the engine's commit-trace ring (serve.Config.Traces); nil
	// serves empty trace merges.
	Rec *span.Recorder
	// Slow is the engine's slow-trace retention ring
	// (serve.Config.SlowTraces); nil serves empty slow reads.
	Slow *span.SlowRecorder
	// Reg is the registry the engine instruments; the router scrapes it
	// for metrics federation. nil contributes an empty page.
	Reg *obs.Registry
}

func (s EngineShard) AddJob(ctx context.Context, id string, weight float64, demand, work []float64) error {
	return s.Eng.AddJob(ctx, id, weight, demand, work)
}

func (s EngineShard) AddJobs(ctx context.Context, specs []scheduler.JobSpec) error {
	return s.Eng.AddJobs(ctx, specs)
}

func (s EngineShard) RemoveJob(ctx context.Context, id string) error {
	return s.Eng.RemoveJob(ctx, id)
}

func (s EngineShard) UpdateWeight(ctx context.Context, id string, weight float64) error {
	return s.Eng.UpdateWeight(ctx, id, weight)
}

func (s EngineShard) ReportProgress(ctx context.Context, id string, done []float64) (bool, error) {
	return s.Eng.ReportProgress(ctx, id, done)
}

func (s EngineShard) Shares(ctx context.Context, id string) ([]float64, error) {
	return s.Eng.Shares(ctx, id)
}

func (s EngineShard) Allocation(ctx context.Context) (map[string][]float64, uint64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	// One atomic load gives a coherent (shares, version) pair. The rows
	// are the engine's frozen snapshot rows: read-only, never mutated.
	snap := s.Eng.Current()
	return snap.Shares, snap.Version, nil
}

func (s EngineShard) Stats(ctx context.Context) (scheduler.Stats, error) {
	if err := ctx.Err(); err != nil {
		return scheduler.Stats{}, err
	}
	return s.Eng.Stats(), nil
}

func (s EngineShard) Snapshot(ctx context.Context) (scheduler.Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return scheduler.Snapshot{}, err
	}
	return s.Eng.Snapshot(), nil
}

func (s EngineShard) Traces(ctx context.Context, limit int) ([]*span.Trace, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.Rec == nil {
		return nil, nil
	}
	return s.Rec.Recent(limit), nil
}

func (s EngineShard) SlowTraces(ctx context.Context, limit int) ([]*span.Trace, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Slow.Slowest(limit), nil
}

func (s EngineShard) Explain(ctx context.Context, job string) (*serve.ExplainResult, error) {
	return s.Eng.Explain(ctx, job)
}

func (s EngineShard) ScrapeMetrics(ctx context.Context) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.Reg == nil {
		return nil, nil
	}
	var sb strings.Builder
	if err := s.Reg.WritePrometheus(&sb); err != nil {
		return nil, err
	}
	return []byte(sb.String()), nil
}

func (s EngineShard) SetExternalWeight(ctx context.Context, w float64) error {
	return s.Eng.SetExternalWeight(ctx, w)
}

func (s EngineShard) PolicyName(ctx context.Context) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return s.Eng.PolicyName(), nil
}

func (s EngineShard) RuntimeConfig(ctx context.Context) (scheduler.RuntimeConfig, error) {
	return s.Eng.RuntimeConfig(ctx)
}

func (s EngineShard) ApplyConfig(ctx context.Context, p scheduler.ConfigPatch) error {
	return s.Eng.ApplyConfig(ctx, p)
}

func (s EngineShard) ReadyErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.Eng.ReadyErr()
}

// HTTPShard adapts a remote shard server (cmd/amf-server) to the Shard
// surface via the typed API client — the cmd/amf-router deployment.
type HTTPShard struct {
	Client *api.Client
}

func (s HTTPShard) AddJob(ctx context.Context, id string, weight float64, demand, work []float64) error {
	return s.Client.AddJob(ctx, api.AddJobRequest{ID: id, Weight: weight, Demand: demand, Work: work})
}

func (s HTTPShard) AddJobs(ctx context.Context, specs []scheduler.JobSpec) error {
	reqs := make([]api.AddJobRequest, len(specs))
	for i, sp := range specs {
		reqs[i] = api.AddJobRequest{ID: sp.ID, Weight: sp.Weight, Queue: sp.Queue, Demand: sp.Demand, Work: sp.Work}
	}
	_, err := s.Client.AddJobs(ctx, reqs)
	return err
}

func (s HTTPShard) RemoveJob(ctx context.Context, id string) error {
	return s.Client.RemoveJob(ctx, id)
}

func (s HTTPShard) UpdateWeight(ctx context.Context, id string, weight float64) error {
	return s.Client.UpdateWeight(ctx, id, weight)
}

func (s HTTPShard) ReportProgress(ctx context.Context, id string, done []float64) (bool, error) {
	return s.Client.ReportProgress(ctx, id, done)
}

func (s HTTPShard) Shares(ctx context.Context, id string) ([]float64, error) {
	resp, err := s.Client.Shares(ctx, id)
	if err != nil {
		return nil, err
	}
	return resp.Shares, nil
}

func (s HTTPShard) Allocation(ctx context.Context) (map[string][]float64, uint64, error) {
	resp, err := s.Client.Allocation(ctx)
	if err != nil {
		return nil, 0, err
	}
	out := make(map[string][]float64, len(resp.Jobs))
	for id, sh := range resp.Jobs {
		out[id] = sh.Shares
	}
	return out, resp.Version, nil
}

func (s HTTPShard) Stats(ctx context.Context) (scheduler.Stats, error) {
	resp, err := s.Client.Stats(ctx)
	if err != nil {
		return scheduler.Stats{}, err
	}
	return scheduler.Stats{
		Solves: resp.Solves, Skipped: resp.Skipped,
		Jobs: resp.Jobs, Completed: resp.Completed,
		LastSolve:            time.Duration(resp.LastSolveSeconds * float64(time.Second)),
		TotalSolveTime:       time.Duration(resp.TotalSolveSeconds * float64(time.Second)),
		LastComponents:       resp.LastComponents,
		LastLargestComponent: resp.LargestComponent,
		LastSpeedup:          resp.LastSpeedup,
		LastReused:           resp.LastReused,
		LastResolved:         resp.LastResolved,
		CacheHits:            resp.CacheHits,
		CacheMisses:          resp.CacheMisses,
		GlobalInvalidations:  resp.GlobalInvalidations,
	}, nil
}

func (s HTTPShard) Snapshot(ctx context.Context) (scheduler.Snapshot, error) {
	return s.Client.Snapshot(ctx)
}

func (s HTTPShard) Traces(ctx context.Context, limit int) ([]*span.Trace, error) {
	resp, err := s.Client.Traces(ctx, limit)
	if err != nil {
		return nil, err
	}
	return resp.Traces, nil
}

func (s HTTPShard) SlowTraces(ctx context.Context, limit int) ([]*span.Trace, error) {
	resp, err := s.Client.SlowTraces(ctx, limit)
	if err != nil {
		return nil, err
	}
	return resp.Traces, nil
}

func (s HTTPShard) Explain(ctx context.Context, job string) (*serve.ExplainResult, error) {
	resp, err := s.Client.Explain(ctx, job)
	if err != nil {
		return nil, err
	}
	ex := &core.Explanation{
		Scale: resp.Scale, Tol: resp.Tol, SatTol: resp.SatTol,
		Jobs: resp.Jobs, Sites: resp.Sites,
	}
	if resp.Job != nil {
		// A filtered read carries only the requested row.
		ex.Jobs = []core.JobExplanation{*resp.Job}
	}
	return &serve.ExplainResult{
		Version: resp.Version, Policy: resp.Policy, Shard: resp.Shard,
		Explanation: ex,
	}, nil
}

func (s HTTPShard) ScrapeMetrics(ctx context.Context) ([]byte, error) {
	return s.Client.ScrapeMetrics(ctx)
}

func (s HTTPShard) SetExternalWeight(ctx context.Context, w float64) error {
	return s.Client.SetExternalWeight(ctx, w)
}

func (s HTTPShard) PolicyName(ctx context.Context) (string, error) {
	resp, err := s.Client.Policy(ctx)
	if err != nil {
		return "", err
	}
	return resp.Policy, nil
}

func (s HTTPShard) RuntimeConfig(ctx context.Context) (scheduler.RuntimeConfig, error) {
	resp, err := s.Client.Config(ctx)
	if err != nil {
		return scheduler.RuntimeConfig{}, err
	}
	return resp.RuntimeConfig(), nil
}

func (s HTTPShard) ApplyConfig(ctx context.Context, p scheduler.ConfigPatch) error {
	_, err := s.Client.SetConfig(ctx, api.NewConfigPatchRequest(p))
	return err
}

func (s HTTPShard) ReadyErr(ctx context.Context) error {
	return s.Client.Readyz(ctx)
}

package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/scheduler"
	"repro/internal/serve"
	"repro/internal/policy"
	"repro/internal/wal"
	"repro/internal/workload"
)

// engineTarget adapts serve.Engine to workload.ChurnTarget.
type engineTarget struct{ e *serve.Engine }

func (t engineTarget) AddJob(id string, w float64, d, wk []float64) error {
	return t.e.AddJob(context.Background(), id, w, d, wk)
}
func (t engineTarget) RemoveJob(id string) error {
	return t.e.RemoveJob(context.Background(), id)
}
func (t engineTarget) UpdateWeight(id string, w float64) error {
	return t.e.UpdateWeight(context.Background(), id, w)
}
func (t engineTarget) ReportProgress(id string, done []float64) (bool, error) {
	return t.e.ReportProgress(context.Background(), id, done)
}

// waitCaughtUpTo polls until the replica's view reaches at least the
// given WAL cursor.
func waitCaughtUpTo(t *testing.T, r *cluster.Replica, head wal.Cursor) *cluster.ReplicaView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if v := r.View(); v != nil && !v.Cursor.Before(head) {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("replica never reached %v (last error: %s)", head, r.LastError())
	return nil
}

// TestReplicaFollowsPrimary: a replica tailing the primary's WAL over
// HTTP converges to the primary's exact allocation after every churn
// stream, for both policies — including the primary's external-weight
// broadcasts, which ride the log.
func TestReplicaFollowsPrimary(t *testing.T) {
	for _, pol := range []policy.Policy{policy.AMF, policy.EnhancedAMF} {
		for trial := 0; trial < 4; trial++ {
			pol, trial := pol, trial
			t.Run(fmt.Sprintf("%s/seed%d", pol.Name(), trial), func(t *testing.T) {
				t.Parallel()
				churn := workload.GenerateChurn(workload.ChurnConfig{
					Sparse: workload.SparseConfig{
						Components:        5,
						JobsPerComponent:  3,
						SitesPerComponent: 3,
						Seed:              uint64(400 + trial),
					},
					Mutations: 40,
					Seed:      uint64(77 + trial),
				})
				caps := churn.Inst.SiteCapacity

				dir := filepath.Join(t.TempDir(), "wal")
				log, _, err := wal.Open(dir, wal.Options{SegmentBytes: 2048})
				if err != nil {
					t.Fatal(err)
				}
				sc, err := scheduler.New(scheduler.Config{SiteCapacity: caps, Policy: pol})
				if err != nil {
					t.Fatal(err)
				}
				eng, err := serve.New(sc, serve.Config{Log: log, MaxBatch: 4})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { _ = eng.Close() })

				srv := httptest.NewServer(wal.NewShipHandler(log))
				t.Cleanup(srv.Close)
				rep, err := cluster.NewReplica(cluster.ReplicaConfig{
					Source:       &wal.ShipClient{Base: srv.URL, HTTP: srv.Client()},
					SiteCapacity: caps,
					Policy:       pol,
					Interval:     2 * time.Millisecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { _ = rep.Close() })

				target := engineTarget{eng}
				if err := churn.Populate(target); err != nil {
					t.Fatal(err)
				}
				ctx := context.Background()
				for i, op := range churn.Ops {
					if err := op.Apply(target); err != nil {
						t.Fatalf("op %d: %v", i, err)
					}
					if i%13 == 4 {
						if err := eng.SetExternalWeight(ctx, float64(1+i%3)); err != nil {
							t.Fatal(err)
						}
					}
				}

				view := waitCaughtUpTo(t, rep, log.Durable())
				want := eng.Current()
				diffAllocs(t, "replica vs primary", view.Shares, want.Shares, 1e-9*churn.Inst.Scale())
				if err := rep.ReadyErr(); err != nil {
					t.Fatalf("caught-up replica unready: %v", err)
				}
				reg := rep.Metrics().Snapshot()
				if reg.Gauges["replica.caught_up"] != 1 {
					t.Fatal("caught_up gauge not 1")
				}
				if reg.Gauges["replica.lag_bytes"] != 0 || reg.Gauges["replica.lag_segments"] != 0 {
					t.Fatalf("lag gauges nonzero at head: %+v", reg.Gauges)
				}
			})
		}
	}
}

// TestReplicaResetFromSnapshot: a replica joining after the primary
// compacted its history is bootstrapped from the snapshot (ShipResponse
// reset) and still converges.
func TestReplicaResetFromSnapshot(t *testing.T) {
	caps := []float64{4, 4, 4}
	dir := t.TempDir()
	log, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()

	// Hand-build primary history: two jobs, then a compaction folding
	// them into a snapshot, then one more job in the record tail.
	primary, err := scheduler.New(scheduler.Config{SiteCapacity: caps, Policy: policy.EnhancedAMF})
	if err != nil {
		t.Fatal(err)
	}
	appendBatch := func(ms ...wal.Mutation) {
		t.Helper()
		for _, m := range ms {
			if err := m.Apply(primary); err != nil {
				t.Fatal(err)
			}
		}
		payload, err := wal.EncodeBatch(ms)
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Append(payload); err != nil {
			t.Fatal(err)
		}
		if err := log.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	appendBatch(wal.Mutation{Op: wal.OpAddJob, ID: "a", Weight: 2, Demand: []float64{1, 1, 0}})
	appendBatch(wal.Mutation{Op: wal.OpExternalWeight, Weight: 3})
	state, err := wal.EncodeState(primary.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Compact(state); err != nil {
		t.Fatal(err)
	}
	appendBatch(wal.Mutation{Op: wal.OpAddJob, ID: "b", Weight: 1, Demand: []float64{0, 1, 1}})

	srv := httptest.NewServer(wal.NewShipHandler(log))
	defer srv.Close()
	rep, err := cluster.NewReplica(cluster.ReplicaConfig{
		Source:       &wal.ShipClient{Base: srv.URL, HTTP: srv.Client()},
		SiteCapacity: caps,
		Policy:       policy.EnhancedAMF,
		Interval:     2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	view := waitCaughtUpTo(t, rep, log.Durable())
	want, err := primary.Allocation()
	if err != nil {
		t.Fatal(err)
	}
	diffAllocs(t, "replica vs primary after reset", view.Shares, want, 1e-12)
	if rep.Metrics().Snapshot().Counters["replica.resets"] != 1 {
		t.Fatal("replica did not record the snapshot reset")
	}
	if got := rep.Snapshot().ExternalWeight; got != 3 {
		t.Fatalf("replica external weight = %g, want 3 (from snapshot)", got)
	}
}

// TestReplicaAPISurface: a replica served through api.NewBackendServer
// is a read endpoint — readyz flips once caught up, mutations are
// rejected with stable codes, allocation carries the replica version.
func TestReplicaAPISurface(t *testing.T) {
	caps := []float64{2, 2}
	dir := t.TempDir()
	log, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	sc, err := scheduler.New(scheduler.Config{SiteCapacity: caps, Policy: policy.AMF})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.New(sc, serve.Config{Log: log})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()
	if err := eng.AddJob(ctx, "a", 1, []float64{1, 1}, nil); err != nil {
		t.Fatal(err)
	}

	// Unreachable source: the replica must stay unready, and its API
	// must answer 503 on readyz — never hang.
	bad, err := cluster.NewReplica(cluster.ReplicaConfig{
		Source:       &wal.ShipClient{Base: "http://127.0.0.1:1"},
		SiteCapacity: caps,
		Policy:       policy.AMF,
		Interval:     time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if err := bad.ReadyErr(); !errors.Is(err, cluster.ErrSyncing) {
		t.Fatalf("unreachable replica ReadyErr = %v, want ErrSyncing", err)
	}

	ship := httptest.NewServer(wal.NewShipHandler(log))
	defer ship.Close()
	rep, err := cluster.NewReplica(cluster.ReplicaConfig{
		Source:       &wal.ShipClient{Base: ship.URL, HTTP: ship.Client()},
		SiteCapacity: caps,
		Policy:       policy.AMF,
		Interval:     2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	waitCaughtUpTo(t, rep, log.Durable())

	apiSrv := httptest.NewServer(api.NewBackendServer(rep, nil, caps, policy.AMF).Handler())
	defer apiSrv.Close()
	cl := api.NewClient(apiSrv.URL, apiSrv.Client())

	if err := cl.Readyz(ctx); err != nil {
		t.Fatalf("caught-up replica readyz = %v", err)
	}
	alloc, err := cl.Allocation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.Jobs) != 1 || alloc.Version == 0 {
		t.Fatalf("replica allocation = %+v", alloc)
	}
	if err := cl.AddJob(ctx, api.AddJobRequest{ID: "x", Demand: []float64{1, 0}}); !errors.Is(err, api.ErrInvalidArgument) {
		t.Fatalf("mutation on replica = %v, want invalid_argument", err)
	}
	if err := cl.RemoveJob(ctx, "a"); !errors.Is(err, api.ErrInvalidArgument) {
		t.Fatalf("remove on replica = %v, want invalid_argument", err)
	}
}

package cluster_test

import (
	"context"
	"errors"
	"math"
	"net/http/httptest"
	"testing"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/policy"
	"repro/internal/scheduler"
)

func fptr(v float64) *float64 { return &v }
func iptr(v int) *int         { return &v }
func sptr(v string) *string   { return &v }

// TestRouterConfigFanOut checks that a cluster-wide patch reaches every
// shard and that the router's merged read agrees afterwards.
func TestRouterConfigFanOut(t *testing.T) {
	shards, scs := newEngineShards(t, 2, []float64{1, 1, 1, 1}, policy.AMF)
	r, err := cluster.NewRouter(shards, policy.AMF)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	patch := scheduler.ConfigPatch{
		ApproxEpsilon:   fptr(0.05),
		ApproxThreshold: iptr(2000),
		HotThreshold:    fptr(0.6),
		Window:          iptr(48),
	}
	if err := r.ApplyConfig(ctx, patch); err != nil {
		t.Fatal(err)
	}
	for i, sc := range scs {
		rc := sc.RuntimeConfig()
		if rc.ApproxEpsilon != 0.05 || rc.ApproxThreshold != 2000 {
			t.Fatalf("shard %d solver knobs %+v", i, rc)
		}
		if rc.Phase.HotThreshold != 0.6 || rc.Phase.Window != 48 {
			t.Fatalf("shard %d phase knobs %+v", i, rc.Phase)
		}
	}
	rc, err := r.RuntimeConfig(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rc.ApproxEpsilon != 0.05 || rc.Phase.HotThreshold != 0.6 {
		t.Fatalf("router merged config %+v", rc)
	}

	// An empty patch is a cluster-wide no-op.
	if err := r.ApplyConfig(ctx, scheduler.ConfigPatch{}); err != nil {
		t.Fatal(err)
	}
}

// TestRouterConfigMismatch checks the read path refuses to pick a winner
// when shards have diverged.
func TestRouterConfigMismatch(t *testing.T) {
	shards, scs := newEngineShards(t, 2, []float64{1, 1, 1, 1}, policy.AMF)
	r, err := cluster.NewRouter(shards, policy.AMF)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := r.RuntimeConfig(ctx); err != nil {
		t.Fatalf("fresh cluster should agree: %v", err)
	}
	// Diverge one shard out-of-band (operator hitting a shard directly).
	if err := scs[1].SetApproxConfig(0.5, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RuntimeConfig(ctx); !errors.Is(err, cluster.ErrConfigMismatch) {
		t.Fatalf("diverged cluster: err = %v, want ErrConfigMismatch", err)
	}
	// A cluster-wide patch that overwrites the diverged knobs re-converges
	// the cluster; the read works again.
	if err := r.ApplyConfig(ctx, scheduler.ConfigPatch{
		ApproxEpsilon: fptr(0.01), ApproxThreshold: iptr(100),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RuntimeConfig(ctx); err != nil {
		t.Fatalf("repatched cluster should agree: %v", err)
	}
}

// TestRouterConfigPolicySwitch flips an AMF cluster to Enhanced-AMF
// through the unified patch and checks the router starts brokering
// global weight sums (the Enhanced-AMF cross-shard protocol).
func TestRouterConfigPolicySwitch(t *testing.T) {
	shards, scs := newEngineShards(t, 2, []float64{1, 1, 1, 1}, policy.AMF)
	r, err := cluster.NewRouter(shards, policy.AMF)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s0, s1 := splitSites(t, 4)

	if err := r.AddJob(ctx, "a", 2, demandAt(4, s0), nil); err != nil {
		t.Fatal(err)
	}
	if err := r.AddJob(ctx, "b", 4, demandAt(4, s1), nil); err != nil {
		t.Fatal(err)
	}
	// AMF clusters never broadcast external weights.
	if scs[0].ExternalWeight() != 0 || scs[1].ExternalWeight() != 0 {
		t.Fatal("AMF cluster broadcast external weights")
	}

	if err := r.ApplyConfig(ctx, scheduler.ConfigPatch{Policy: sptr("amf-enhanced")}); err != nil {
		t.Fatal(err)
	}
	if got := r.PolicyName(); got != "amf-enhanced" {
		t.Fatalf("router policy after switch %q", got)
	}
	// The switch triggers a full weight broadcast: each shard sees the
	// cluster weight sum minus its own local sum.
	if got := scs[0].ExternalWeight(); math.Abs(got-4) > 1e-12 {
		t.Fatalf("shard 0 external weight %g, want 4", got)
	}
	if got := scs[1].ExternalWeight(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("shard 1 external weight %g, want 2", got)
	}
	// And subsequent mutations keep brokering.
	if err := r.UpdateWeight(ctx, "a", 6); err != nil {
		t.Fatal(err)
	}
	if got := scs[1].ExternalWeight(); math.Abs(got-6) > 1e-12 {
		t.Fatalf("shard 1 external weight after reweight %g, want 6", got)
	}
}

// TestRouterConfigMixedPolicyRefusal checks a patch is refused while the
// shards disagree on policy (the same refusal mutations get).
func TestRouterConfigMixedPolicyRefusal(t *testing.T) {
	shards, scs := newEngineShards(t, 2, []float64{1, 1, 1, 1}, policy.AMF)
	r, err := cluster.NewRouter(shards, policy.AMF)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := scs[1].SetPolicyName("drf"); err != nil {
		t.Fatal(err)
	}
	err = r.ApplyConfig(ctx, scheduler.ConfigPatch{HotThreshold: fptr(0.5)})
	if !errors.Is(err, cluster.ErrPolicyMismatch) {
		t.Fatalf("mixed-policy patch: err = %v, want ErrPolicyMismatch", err)
	}
	// Unknown policies are rejected before touching any shard.
	before := scs[0].RuntimeConfig()
	if err := scs[1].SetPolicyName("amf"); err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyConfig(ctx, scheduler.ConfigPatch{Policy: sptr("fifo")}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if scs[0].RuntimeConfig() != before {
		t.Fatal("rejected patch mutated shard 0")
	}
}

// TestRouterConfigOverHTTPShards runs the config fan-out across real API
// servers: the router's ApplyConfig becomes PATCH /v1/config on each
// shard and RuntimeConfig becomes GET /v1/config.
func TestRouterConfigOverHTTPShards(t *testing.T) {
	caps := []float64{1, 1, 1, 1}
	shards := make([]cluster.Shard, 2)
	scs := make([]*scheduler.Scheduler, 2)
	for i := range shards {
		sc, err := scheduler.New(scheduler.Config{SiteCapacity: caps, Policy: policy.AMF})
		if err != nil {
			t.Fatal(err)
		}
		srv := api.NewServer(sc, caps, policy.AMF)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		shards[i] = cluster.HTTPShard{Client: api.NewClient(ts.URL, ts.Client())}
		scs[i] = sc
	}
	r, err := cluster.NewRouter(shards, policy.AMF)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if err := r.ApplyConfig(ctx, scheduler.ConfigPatch{
		Policy:        sptr("amf-enhanced"),
		ApproxEpsilon: fptr(0.02),
		HotThreshold:  fptr(0.3),
		MaxBatches:    iptr(4),
	}); err != nil {
		t.Fatal(err)
	}
	for i, sc := range scs {
		rc := sc.RuntimeConfig()
		if rc.Policy != "amf-enhanced" || rc.ApproxEpsilon != 0.02 ||
			rc.Phase.HotThreshold != 0.3 || rc.Phase.MaxBatches != 4 {
			t.Fatalf("shard %d config over HTTP %+v", i, rc)
		}
	}
	rc, err := r.RuntimeConfig(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Policy != "amf-enhanced" || rc.Phase.MaxBatches != 4 {
		t.Fatalf("router merged config over HTTP %+v", rc)
	}
}

package cluster_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/scheduler"
	"repro/internal/serve"
	"repro/internal/policy"
)

// newEngineShards builds n WAL-less engine shards, each over the full
// site-capacity vector, returning the shards plus the underlying
// schedulers (for asserting on external weights).
func newEngineShards(t *testing.T, n int, caps []float64, pol policy.Policy) ([]cluster.Shard, []*scheduler.Scheduler) {
	t.Helper()
	shards := make([]cluster.Shard, n)
	scs := make([]*scheduler.Scheduler, n)
	for i := 0; i < n; i++ {
		sc, err := scheduler.New(scheduler.Config{SiteCapacity: caps, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := serve.New(sc, serve.Config{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = eng.Close() })
		shards[i] = cluster.EngineShard{Eng: eng}
		scs[i] = sc
	}
	return shards, scs
}

// sitesOnShard finds two site indices that hash to different shards of a
// 2-shard cluster, so tests can force placement deterministically.
func splitSites(t *testing.T, n int) (s0, s1 int) {
	t.Helper()
	s0, s1 = -1, -1
	for s := 0; s < 64; s++ {
		key, ok := core.ShardKey([]int{s})
		if !ok {
			t.Fatal("single site has no shard key")
		}
		switch core.ShardOf(key, 2) {
		case 0:
			if s0 == -1 {
				s0 = s
			}
		case 1:
			if s1 == -1 {
				s1 = s
			}
		}
		if s0 >= 0 && s1 >= 0 && s0 < n && s1 < n {
			return s0, s1
		}
	}
	t.Fatal("no shard split found in 64 sites")
	return 0, 0
}

func demandAt(n int, sites ...int) []float64 {
	d := make([]float64, n)
	for _, s := range sites {
		d[s] = 1
	}
	return d
}

func TestRouterCrossShardReject(t *testing.T) {
	const sites = 8
	caps := make([]float64, sites)
	for i := range caps {
		caps[i] = 10
	}
	shards, _ := newEngineShards(t, 2, caps, policy.AMF)
	r, err := cluster.NewRouter(shards, policy.AMF)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s0, s1 := splitSites(t, sites)

	if err := r.AddJob(ctx, "a", 1, demandAt(sites, s0), nil); err != nil {
		t.Fatal(err)
	}
	if err := r.AddJob(ctx, "b", 1, demandAt(sites, s1), nil); err != nil {
		t.Fatal(err)
	}
	// c touches sites owned by both shards: the decomposition cannot
	// express the coupling, so the router must refuse.
	if err := r.AddJob(ctx, "c", 1, demandAt(sites, s0, s1), nil); !errors.Is(err, cluster.ErrCrossShard) {
		t.Fatalf("cross-shard add = %v, want ErrCrossShard", err)
	}
	if st := r.RouterStats(); st.CrossShardRejects != 1 || st.Jobs != 2 {
		t.Fatalf("router stats = %+v", st)
	}
	// d overlaps only shard 0's site: it must follow the owner, even
	// when its own hash would have said otherwise.
	if err := r.AddJob(ctx, "d", 1, demandAt(sites, s0), nil); err != nil {
		t.Fatal(err)
	}
	shares, err := shards[core.ShardOf(mustKey(t, []int{s0}), 2)].Shares(ctx, "d")
	if err != nil || len(shares) != sites {
		t.Fatalf("job d not on owner shard: %v %v", shares, err)
	}
}

func mustKey(t *testing.T, sites []int) uint64 {
	t.Helper()
	key, ok := core.ShardKey(sites)
	if !ok {
		t.Fatal("no key")
	}
	return key
}

func TestRouterQueueAndRestoreUnsupported(t *testing.T) {
	shards, _ := newEngineShards(t, 2, []float64{1, 1}, policy.AMF)
	r, err := cluster.NewRouter(shards, policy.AMF)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := r.AddQueue(ctx, "q", 2); !errors.Is(err, cluster.ErrQueuesUnsupported) {
		t.Fatalf("AddQueue = %v", err)
	}
	if err := r.AddJobInQueue(ctx, "q", "j", 1, []float64{1, 0}, nil); !errors.Is(err, cluster.ErrQueuesUnsupported) {
		t.Fatalf("AddJobInQueue = %v", err)
	}
	if err := r.AddJobs(ctx, []scheduler.JobSpec{{ID: "j", Queue: "q", Demand: []float64{1, 0}}}); !errors.Is(err, cluster.ErrQueuesUnsupported) {
		t.Fatalf("AddJobs with queue = %v", err)
	}
	if err := r.Restore(ctx, scheduler.Snapshot{}); !errors.Is(err, cluster.ErrRestoreUnsupported) {
		t.Fatalf("Restore = %v", err)
	}
}

func TestRouterDuplicateAndUnknown(t *testing.T) {
	shards, _ := newEngineShards(t, 2, []float64{5, 5}, policy.AMF)
	r, _ := cluster.NewRouter(shards, policy.AMF)
	ctx := context.Background()
	if err := r.AddJob(ctx, "a", 1, []float64{1, 0}, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.AddJob(ctx, "a", 1, []float64{1, 0}, nil); !errors.Is(err, scheduler.ErrDuplicateJob) {
		t.Fatalf("duplicate add = %v", err)
	}
	if err := r.RemoveJob(ctx, "nope"); !errors.Is(err, scheduler.ErrUnknownJob) {
		t.Fatalf("unknown remove = %v", err)
	}
	if err := r.UpdateWeight(ctx, "nope", 2); !errors.Is(err, scheduler.ErrUnknownJob) {
		t.Fatalf("unknown weight = %v", err)
	}
	if _, err := r.Shares(ctx, "nope"); !errors.Is(err, scheduler.ErrUnknownJob) {
		t.Fatalf("unknown shares = %v", err)
	}
}

// TestRouterWeightBroadcast checks the Enhanced-AMF reconciliation
// invariant: after every mutation, each shard's external weight equals
// W_global − W_shard, and the dirty shard never receives a broadcast
// (its external weight is unchanged by its own mutations).
func TestRouterWeightBroadcast(t *testing.T) {
	const sites = 8
	caps := make([]float64, sites)
	for i := range caps {
		caps[i] = 10
	}
	shards, scs := newEngineShards(t, 2, caps, policy.EnhancedAMF)
	r, _ := cluster.NewRouter(shards, policy.EnhancedAMF)
	ctx := context.Background()
	s0, s1 := splitSites(t, sites)

	checkExternal := func(want0, want1 float64) {
		t.Helper()
		if got := scs[0].ExternalWeight(); math.Abs(got-want0) > 1e-12 {
			t.Fatalf("shard 0 external = %g, want %g", got, want0)
		}
		if got := scs[1].ExternalWeight(); math.Abs(got-want1) > 1e-12 {
			t.Fatalf("shard 1 external = %g, want %g", got, want1)
		}
	}

	if err := r.AddJob(ctx, "j0", 2, demandAt(sites, s0), nil); err != nil {
		t.Fatal(err)
	}
	checkExternal(0, 2) // W=2 all on shard 0
	if err := r.AddJob(ctx, "j1", 3, demandAt(sites, s1), nil); err != nil {
		t.Fatal(err)
	}
	checkExternal(3, 2) // W=5
	if err := r.UpdateWeight(ctx, "j0", 5); err != nil {
		t.Fatal(err)
	}
	checkExternal(3, 5) // W=8
	// Weight defaulting: weight<=0 normalizes to 1 on the shard and in
	// the router's ledger alike.
	if err := r.AddJob(ctx, "j2", 0, demandAt(sites, s0), nil); err != nil {
		t.Fatal(err)
	}
	checkExternal(3, 6) // W=9, shard0 holds 6
	if err := r.RemoveJob(ctx, "j1"); err != nil {
		t.Fatal(err)
	}
	checkExternal(0, 6) // W=6 all on shard 0

	st := r.RouterStats()
	if st.WeightSum != 6 {
		t.Fatalf("weight sum = %g, want 6", st.WeightSum)
	}
	if st.Broadcasts == 0 || st.BroadcastVersion == 0 {
		t.Fatalf("no broadcasts recorded: %+v", st)
	}
}

// TestRouterAMFSkipsBroadcasts: AMF has no weight-sum coupling, so the
// fast path must skip every reconcile.
func TestRouterAMFSkipsBroadcasts(t *testing.T) {
	shards, scs := newEngineShards(t, 2, []float64{5, 5, 5, 5}, policy.AMF)
	r, _ := cluster.NewRouter(shards, policy.AMF)
	ctx := context.Background()
	if err := r.AddJob(ctx, "a", 2, []float64{1, 0, 0, 0}, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.AddJob(ctx, "b", 3, []float64{0, 1, 0, 0}, nil); err != nil {
		t.Fatal(err)
	}
	st := r.RouterStats()
	if st.Broadcasts != 0 || st.FastPathSkips != 2 {
		t.Fatalf("AMF broadcast stats = %+v, want 0 broadcasts / 2 skips", st)
	}
	if scs[0].ExternalWeight() != 0 || scs[1].ExternalWeight() != 0 {
		t.Fatal("AMF shards received external weight")
	}
}

func TestRouterBatchAdd(t *testing.T) {
	const sites = 8
	caps := make([]float64, sites)
	for i := range caps {
		caps[i] = 10
	}
	shards, scs := newEngineShards(t, 2, caps, policy.EnhancedAMF)
	r, _ := cluster.NewRouter(shards, policy.EnhancedAMF)
	ctx := context.Background()
	s0, s1 := splitSites(t, sites)

	// A batch spanning both shards: split into per-shard groups, weight
	// ledger reconciled across the whole batch.
	specs := []scheduler.JobSpec{
		{ID: "a", Weight: 1, Demand: demandAt(sites, s0)},
		{ID: "b", Weight: 2, Demand: demandAt(sites, s1)},
		{ID: "c", Weight: 3, Demand: demandAt(sites, s0)},
	}
	if err := r.AddJobs(ctx, specs); err != nil {
		t.Fatal(err)
	}
	if st := r.RouterStats(); st.Jobs != 3 || st.WeightSum != 6 {
		t.Fatalf("after batch: %+v", st)
	}
	if got := scs[0].ExternalWeight(); got != 2 {
		t.Fatalf("shard 0 external = %g, want 2", got)
	}
	if got := scs[1].ExternalWeight(); got != 4 {
		t.Fatalf("shard 1 external = %g, want 4", got)
	}

	// A batch with one bad spec is rejected whole: the valid specs on the
	// other shard are rolled back.
	bad := []scheduler.JobSpec{
		{ID: "d", Weight: 1, Demand: demandAt(sites, s0)},
		{ID: "a", Weight: 1, Demand: demandAt(sites, s1)}, // duplicate
	}
	if err := r.AddJobs(ctx, bad); !errors.Is(err, scheduler.ErrDuplicateJob) {
		t.Fatalf("bad batch = %v", err)
	}
	if st := r.RouterStats(); st.Jobs != 3 {
		t.Fatalf("batch rollback left %d jobs, want 3", st.Jobs)
	}
	if _, err := r.Shares(ctx, "d"); !errors.Is(err, scheduler.ErrUnknownJob) {
		t.Fatal("rolled-back job still routed")
	}
}

func TestRouterSyncFromShards(t *testing.T) {
	const sites = 8
	caps := make([]float64, sites)
	for i := range caps {
		caps[i] = 10
	}
	shards, scs := newEngineShards(t, 2, caps, policy.EnhancedAMF)
	r1, _ := cluster.NewRouter(shards, policy.EnhancedAMF)
	ctx := context.Background()
	s0, s1 := splitSites(t, sites)
	if err := r1.AddJob(ctx, "a", 2, demandAt(sites, s0), nil); err != nil {
		t.Fatal(err)
	}
	if err := r1.AddJob(ctx, "b", 3, demandAt(sites, s1), nil); err != nil {
		t.Fatal(err)
	}

	// A fresh router (restart) over the same shards rebuilds the ledger.
	r2, _ := cluster.NewRouter(shards, policy.EnhancedAMF)
	if err := r2.SyncFromShards(ctx); err != nil {
		t.Fatal(err)
	}
	st := r2.RouterStats()
	if st.Jobs != 2 || st.WeightSum != 5 || st.OwnedSites != 2 {
		t.Fatalf("synced stats = %+v", st)
	}
	if got := scs[0].ExternalWeight(); got != 3 {
		t.Fatalf("post-sync shard 0 external = %g, want 3", got)
	}
	// Routing state survives: an overlapping job follows the owner, a
	// duplicate is refused.
	if err := r2.AddJob(ctx, "a", 1, demandAt(sites, s0), nil); !errors.Is(err, scheduler.ErrDuplicateJob) {
		t.Fatalf("duplicate after sync = %v", err)
	}
	if err := r2.AddJob(ctx, "c", 1, demandAt(sites, s0, s1), nil); !errors.Is(err, cluster.ErrCrossShard) {
		t.Fatalf("cross-shard after sync = %v", err)
	}

	// Mis-assembled cluster: the same site populated on both shards must
	// fail the sync, not be papered over.
	bad, _ := newEngineShards(t, 2, caps, policy.AMF)
	for i, sh := range bad {
		if err := sh.AddJob(ctx, "dup"+string(rune('0'+i)), 1, demandAt(sites, 0), nil); err != nil {
			t.Fatal(err)
		}
	}
	r3, _ := cluster.NewRouter(bad, policy.AMF)
	if err := r3.SyncFromShards(ctx); err == nil {
		t.Fatal("sync over conflicting shards succeeded")
	}
}

func TestRouterCompletionFreesSites(t *testing.T) {
	shards, _ := newEngineShards(t, 2, []float64{4, 4}, policy.EnhancedAMF)
	r, _ := cluster.NewRouter(shards, policy.EnhancedAMF)
	ctx := context.Background()
	if err := r.AddJob(ctx, "a", 2, []float64{1, 0}, []float64{0.5, 0}); err != nil {
		t.Fatal(err)
	}
	completed, err := r.ReportProgress(ctx, "a", []float64{0.5, 0})
	if err != nil || !completed {
		t.Fatalf("progress = %v %v, want completed", completed, err)
	}
	st := r.RouterStats()
	if st.Jobs != 0 || st.OwnedSites != 0 || st.WeightSum != 0 {
		t.Fatalf("completion left ledger dirty: %+v", st)
	}
	if _, err := r.Shares(ctx, "a"); !errors.Is(err, scheduler.ErrUnknownJob) {
		t.Fatal("completed job still routed")
	}
}

// Package stats provides the summary statistics used by the experiment
// harness: streaming moments (Welford), percentiles, CDFs, coefficient of
// variation and normal-approximation confidence intervals. It deliberately
// sticks to the small set of estimators the paper's evaluation needs.
package stats

import (
	"math"
	"sort"
)

// Summary accumulates streaming count/mean/variance/min/max via Welford's
// algorithm. The zero value is ready to use.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds a value into the summary.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		s.min = math.Min(s.min, x)
		s.max = math.Max(s.max, x)
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddAll folds a slice of values.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N reports the number of values seen.
func (s *Summary) N() int { return s.n }

// Mean reports the arithmetic mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Var reports the sample variance (0 with fewer than two values).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std reports the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min reports the smallest value (0 when empty).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max reports the largest value (0 when empty).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// CoV reports the coefficient of variation std/mean (0 when mean is 0).
func (s *Summary) CoV() float64 {
	if s.mean == 0 {
		return 0
	}
	return s.Std() / s.mean
}

// Mean is a convenience over a slice.
func Mean(xs []float64) float64 {
	var s Summary
	s.AddAll(xs)
	return s.Mean()
}

// Std is a convenience over a slice.
func Std(xs []float64) float64 {
	var s Summary
	s.AddAll(xs)
	return s.Std()
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between order statistics. It returns NaN on empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

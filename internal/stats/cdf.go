package stats

import "sort"

// CDFPoint is one point of an empirical CDF: Fraction of the samples are
// <= Value.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF returns the full empirical CDF of the samples (one point per sample,
// duplicates collapsed to their highest fraction). Empty input yields nil.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var out []CDFPoint
	n := float64(len(sorted))
	for i, v := range sorted {
		f := float64(i+1) / n
		if len(out) > 0 && out[len(out)-1].Value == v {
			out[len(out)-1].Fraction = f
			continue
		}
		out = append(out, CDFPoint{Value: v, Fraction: f})
	}
	return out
}

// CDFAt evaluates the empirical CDF at x: the fraction of samples <= x.
func CDFAt(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := sort.SearchFloat64s(sorted, x)
	// Move past duplicates equal to x.
	for idx < len(sorted) && sorted[idx] <= x {
		idx++
	}
	return float64(idx) / float64(len(sorted))
}

// SampleCDF downsamples the empirical CDF to at most k evenly spaced
// fraction levels, suitable for plotting series.
func SampleCDF(xs []float64, k int) []CDFPoint {
	if len(xs) == 0 || k <= 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, 0, k)
	for i := 1; i <= k; i++ {
		f := float64(i) / float64(k)
		idx := int(f*float64(len(sorted))) - 1
		if idx < 0 {
			idx = 0
		}
		out = append(out, CDFPoint{Value: sorted[idx], Fraction: f})
	}
	return out
}

package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func feq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Fatalf("N=%d", s.N())
	}
	if !feq(s.Mean(), 5, 1e-12) {
		t.Fatalf("mean %g", s.Mean())
	}
	// Sample variance of this classic set: 32/7.
	if !feq(s.Var(), 32.0/7, 1e-12) {
		t.Fatalf("var %g", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max %g/%g", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.Min() != 0 || s.Max() != 0 || s.CoV() != 0 {
		t.Fatal("empty summary must be all zeros")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(3)
	if s.Var() != 0 || s.Std() != 0 {
		t.Fatal("single value has zero variance")
	}
	if s.Min() != 3 || s.Max() != 3 {
		t.Fatal("single value min/max")
	}
}

func TestCoV(t *testing.T) {
	var s Summary
	s.AddAll([]float64{1, 1, 1})
	if s.CoV() != 0 {
		t.Fatalf("constant CoV %g", s.CoV())
	}
	var u Summary
	u.AddAll([]float64{1, 3})
	want := u.Std() / 2
	if !feq(u.CoV(), want, 1e-12) {
		t.Fatalf("CoV %g want %g", u.CoV(), want)
	}
}

func TestWelfordMatchesTwoPass(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 5
		}
		var s Summary
		s.AddAll(xs)
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		v := 0.0
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		v /= float64(n - 1)
		return feq(s.Mean(), mean, 1e-9) && feq(s.Var(), v, 1e-9*(1+v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 %g", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 %g", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("p50 %g", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("p25 %g", got)
	}
	// Interpolation between order statistics.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Fatalf("interpolated p50 %g", got)
	}
}

func TestPercentileUnsortedInputUntouched(t *testing.T) {
	xs := []float64{5, 1, 3}
	_ = Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileEmpty(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile must be NaN")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Fatalf("median %g", got)
	}
}

func TestMeanStdHelpers(t *testing.T) {
	if !feq(Mean([]float64{1, 2, 3}), 2, 1e-12) {
		t.Fatal("Mean helper")
	}
	if !feq(Std([]float64{1, 3}), math.Sqrt2, 1e-12) {
		t.Fatal("Std helper")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2, 2})
	// values 1,2,2,3 -> points (1,.25) (2,.75) (3,1)
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1}}
	if len(pts) != len(want) {
		t.Fatalf("got %v", pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("point %d = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 2, 5}
	if got := CDFAt(xs, 0); got != 0 {
		t.Fatalf("below min: %g", got)
	}
	if got := CDFAt(xs, 2); got != 0.75 {
		t.Fatalf("at duplicate: %g", got)
	}
	if got := CDFAt(xs, 10); got != 1 {
		t.Fatalf("above max: %g", got)
	}
}

func TestSampleCDF(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	pts := SampleCDF(xs, 4)
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].Value != 25 || pts[3].Value != 100 {
		t.Fatalf("quartiles %v", pts)
	}
	if pts[3].Fraction != 1 {
		t.Fatalf("last fraction %g", pts[3].Fraction)
	}
}

func TestNormalCI(t *testing.T) {
	xs := make([]float64, 1000)
	rng := rand.New(rand.NewSource(7))
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	ci := NormalCI(xs, 0.95)
	if ci.Lower > ci.Mean || ci.Upper < ci.Mean {
		t.Fatal("interval must bracket the mean")
	}
	// Halfwidth about 1.96/sqrt(1000) ~ 0.062 for unit-variance samples.
	if ci.Halfwidth() < 0.03 || ci.Halfwidth() > 0.12 {
		t.Fatalf("halfwidth %g out of expected range", ci.Halfwidth())
	}
}

func TestNormalCISmallSamples(t *testing.T) {
	ci := NormalCI([]float64{4}, 0.95)
	if ci.Lower != 4 || ci.Upper != 4 {
		t.Fatalf("degenerate CI %v", ci)
	}
}

func TestZQuantile(t *testing.T) {
	cases := []struct{ p, z float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.995, 2.575829},
		{0.025, -1.959964},
		{0.9, 1.281552},
	}
	for _, c := range cases {
		if got := zQuantile(c.p); !feq(got, c.z, 1e-4) {
			t.Fatalf("z(%g) = %g, want %g", c.p, got, c.z)
		}
	}
	if !math.IsInf(zQuantile(0), -1) || !math.IsInf(zQuantile(1), 1) {
		t.Fatal("boundary quantiles must be infinite")
	}
}

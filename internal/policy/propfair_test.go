package policy

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func pfSolve(t *testing.T, in *core.Instance) [][]float64 {
	t.Helper()
	a, _, err := NewPropFair().Allocate(context.Background(), &View{Inst: in})
	if err != nil {
		t.Fatal(err)
	}
	return a.Share
}

func pfObjective(in *core.Instance, share [][]float64) float64 {
	v := 0.0
	for j := range share {
		a := 0.0
		for _, x := range share[j] {
			a += x
		}
		if a <= 0 {
			return math.Inf(-1)
		}
		v += in.JobWeight(j) * math.Log(a)
	}
	return v
}

// One congested site: proportional fairness splits capacity in proportion
// to the weights, x_j = w_j·C/Σw.
func TestPropFairSingleSiteProportional(t *testing.T) {
	in := &core.Instance{
		SiteCapacity: []float64{6},
		Demand:       [][]float64{{10}, {10}, {10}},
		Weight:       []float64{1, 2, 3},
	}
	share := pfSolve(t, in)
	want := []float64{1, 2, 3}
	for j := range want {
		if math.Abs(share[j][0]-want[j]) > 1e-6 {
			t.Fatalf("job %d share %g, want %g", j, share[j][0], want[j])
		}
	}
}

// A demand-capped job releases exactly its unused share to the others.
func TestPropFairDemandCap(t *testing.T) {
	in := &core.Instance{
		SiteCapacity: []float64{10},
		Demand:       [][]float64{{2}, {100}},
	}
	share := pfSolve(t, in)
	if math.Abs(share[0][0]-2) > 1e-6 || math.Abs(share[1][0]-8) > 1e-6 {
		t.Fatalf("shares (%g, %g), want (2, 8)", share[0][0], share[1][0])
	}
}

// Uncongested capacity is free: every job takes its full demand.
func TestPropFairUncongested(t *testing.T) {
	in := &core.Instance{
		SiteCapacity: []float64{10, 10},
		Demand:       [][]float64{{1, 2}, {3, 0.5}},
	}
	share := pfSolve(t, in)
	for j := range share {
		for s := range share[j] {
			if math.Abs(share[j][s]-in.Demand[j][s]) > 1e-9 {
				t.Fatalf("job %d site %d: %g, want full demand %g", j, s, share[j][s], in.Demand[j][s])
			}
		}
	}
}

// Jobs on disjoint congested sites don't interact.
func TestPropFairDisjointSites(t *testing.T) {
	in := &core.Instance{
		SiteCapacity: []float64{1, 2},
		Demand:       [][]float64{{5, 0}, {0, 5}},
		Weight:       []float64{1, 7},
	}
	share := pfSolve(t, in)
	if math.Abs(share[0][0]-1) > 1e-6 || math.Abs(share[1][1]-2) > 1e-6 {
		t.Fatalf("shares %v, want each job to own its site's capacity", share)
	}
}

// Regression: an instance whose optimum ties two site prices (a job
// interior at both congested sites). The strict-order tatonnement
// limit-cycles here; the primal fallback must still deliver the optimum.
func TestPropFairPriceTieRegression(t *testing.T) {
	in := &core.Instance{
		SiteCapacity: []float64{1.4598880781306915, 4.769999575821686, 4.670931018015035, 1.448390831892555, 4.350880514668433, 3.109414881832721},
		Demand: [][]float64{
			{0, 0, 0, 0.34477643171161537, 1.08679908182258, 1.2439550493535354},
			{0, 0, 0, 0.11387325425663838, 0, 1.7160580884682393},
			{0, 0, 0, 1.3339384413547144, 0, 0.883738356421918},
		},
		Weight: []float64{3.5845423664423506, 3.760996295368609, 3.0853975935293727},
	}
	share := pfSolve(t, in)
	alloc := &core.Allocation{Inst: in, Share: share}
	if err := alloc.CheckFeasible(1e-9 * in.Scale()); err != nil {
		t.Fatal(err)
	}
	// Both congested sites must be saturated at the optimum (total demand
	// exceeds capacity on each, so their prices are positive).
	for _, s := range []int{3, 5} {
		load := 0.0
		for j := range share {
			load += share[j][s]
		}
		if math.Abs(load-in.SiteCapacity[s]) > 1e-6*in.SiteCapacity[s] {
			t.Fatalf("congested site %d load %g, capacity %g", s, load, in.SiteCapacity[s])
		}
	}
	assertNoFeasiblePointBeats(t, rand.New(rand.NewSource(5)), in, share, 400)
}

// Property: over random instances the returned allocation is feasible and
// no random feasible point achieves a higher weighted log utility.
func TestPropFairOptimalityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(4)
		in := &core.Instance{
			SiteCapacity: make([]float64, m),
			Demand:       make([][]float64, n),
			Weight:       make([]float64, n),
		}
		for s := 0; s < m; s++ {
			in.SiteCapacity[s] = 0.5 + rng.Float64()*3
		}
		for j := 0; j < n; j++ {
			in.Weight[j] = 0.5 + rng.Float64()*3
			in.Demand[j] = make([]float64, m)
			for s := 0; s < m; s++ {
				if rng.Intn(3) > 0 {
					in.Demand[j][s] = 0.1 + rng.Float64()*2
				}
			}
			// Keep every job allocatable somewhere.
			if in.Demand[j][rng.Intn(m)] == 0 {
				in.Demand[j][rng.Intn(m)] = 0.1 + rng.Float64()
			}
		}
		share := pfSolve(t, in)
		alloc := &core.Allocation{Inst: in, Share: share}
		if err := alloc.CheckFeasible(1e-9 * in.Scale()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertNoFeasiblePointBeats(t, rng, in, share, 100)
	}
}

// assertNoFeasiblePointBeats samples random feasible allocations (random
// sub-demand profiles scaled into per-site capacity) and checks none has
// a higher proportional-fairness objective than the solution.
func assertNoFeasiblePointBeats(t *testing.T, rng *rand.Rand, in *core.Instance, share [][]float64, samples int) {
	t.Helper()
	n, m := in.NumJobs(), in.NumSites()
	opt := pfObjective(in, share)
	for k := 0; k < samples; k++ {
		x := make([][]float64, n)
		load := make([]float64, m)
		for j := 0; j < n; j++ {
			x[j] = make([]float64, m)
			for s := 0; s < m; s++ {
				x[j][s] = rng.Float64() * in.Demand[j][s]
				load[s] += x[j][s]
			}
		}
		for s := 0; s < m; s++ {
			if load[s] > in.SiteCapacity[s] && load[s] > 0 {
				f := in.SiteCapacity[s] / load[s]
				for j := 0; j < n; j++ {
					x[j][s] *= f
				}
			}
		}
		if obj := pfObjective(in, x); obj > opt+1e-6*(1+math.Abs(opt)) {
			t.Fatalf("random feasible point beats solution: %g > %g", obj, opt)
		}
	}
}

func TestProjectCappedSimplex(t *testing.T) {
	// Inside the set: clipping only.
	y := []float64{0.5, -0.2, 3}
	projectCappedSimplex(y, []float64{1, 1, 2}, 10)
	if y[0] != 0.5 || y[1] != 0 || y[2] != 2 {
		t.Fatalf("clip-only projection wrong: %v", y)
	}
	// Over budget: shift down to the capacity hyperplane.
	y = []float64{2, 2, 2}
	projectCappedSimplex(y, []float64{5, 5, 5}, 3)
	sum := y[0] + y[1] + y[2]
	if math.Abs(sum-3) > 1e-9 || math.Abs(y[0]-1) > 1e-9 {
		t.Fatalf("simplex projection wrong: %v (sum %g)", y, sum)
	}
	// Zero capacity: everything collapses.
	y = []float64{1, 2}
	projectCappedSimplex(y, []float64{1, 2}, 0)
	if y[0] != 0 || y[1] != 0 {
		t.Fatalf("zero-capacity projection wrong: %v", y)
	}
}

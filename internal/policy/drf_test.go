package policy

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/multires"
)

// randomMultiInstance builds comps disconnected blocks of jobs/sites with
// K resources, so decomposition and caching both have something to do.
func randomMultiInstance(rng *rand.Rand, comps, jobsPer, sitesPer, k int) *multires.Instance {
	n, m := comps*jobsPer, comps*sitesPer
	in := &multires.Instance{
		SiteCapacity: make([][]float64, m),
		TaskUse:      make([][]float64, n),
		TaskCount:    make([][]float64, n),
		Weight:       make([]float64, n),
	}
	for s := 0; s < m; s++ {
		in.SiteCapacity[s] = make([]float64, k)
		for r := 0; r < k; r++ {
			in.SiteCapacity[s][r] = 1 + rng.Float64()*4
		}
	}
	for j := 0; j < n; j++ {
		c := j / jobsPer
		in.Weight[j] = 0.5 + rng.Float64()*3
		in.TaskUse[j] = make([]float64, k)
		for r := 0; r < k; r++ {
			in.TaskUse[j][r] = 0.1 + rng.Float64()
		}
		in.TaskCount[j] = make([]float64, m)
		s0 := c * sitesPer
		in.TaskCount[j][s0] = 1 + rng.Float64()*3 // anchor keeps the block connected
		for s := s0 + 1; s < s0+sitesPer; s++ {
			if rng.Intn(2) == 0 {
				in.TaskCount[j][s] = 1 + rng.Float64()*3
			}
		}
	}
	return in
}

// Decomposed-and-cached SolveMulti must match the monolithic progressive
// filling: the feasible region is a product over connected components and
// dominant shares are normalized against the global capacity totals, so
// the leximin decomposes exactly (up to bisection tolerance).
func TestDRFDecomposedMatchesMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(3)
		in := randomMultiInstance(rng, 1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(2), k)

		d := NewDRF()
		got, st, err := d.SolveMulti(context.Background(), in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !st.Native {
			t.Fatalf("trial %d: DRF stats not native", trial)
		}
		mono, err := (&multires.Solver{}).AggregateDRF(in)
		if err != nil {
			t.Fatalf("trial %d: monolithic: %v", trial, err)
		}
		dg, dm := got.DominantShares(), mono.DominantShares()
		for j := range dg {
			if diff := math.Abs(dg[j] - dm[j]); diff > 1e-4 {
				t.Fatalf("trial %d job %d: dominant share %g (decomposed) vs %g (monolithic), diff %g",
					trial, j, dg[j], dm[j], diff)
			}
		}
		if err := got.CheckFeasible(1e-6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// Component-local churn: only the touched component re-solves, the rest
// comes out of the result cache, and a cached answer is bit-identical to
// the original solve.
func TestDRFCacheReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := randomMultiInstance(rng, 3, 2, 2, 2)
	d := NewDRF()
	ctx := context.Background()

	first, st, err := d.SolveMulti(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if st.Components != 3 || st.Resolved != 3 || st.Reused != 0 {
		t.Fatalf("first solve stats %+v, want 3 components all resolved", st)
	}

	again, st, err := d.SolveMulti(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reused != 3 || st.Resolved != 0 {
		t.Fatalf("identical re-solve stats %+v, want all 3 reused", st)
	}
	for j := range first.Tasks {
		for s := range first.Tasks[j] {
			if first.Tasks[j][s] != again.Tasks[j][s] {
				t.Fatalf("cached result differs at job %d site %d", j, s)
			}
		}
	}

	// Touch one component's weight: exactly one re-solve.
	in.Weight[0] *= 2
	_, st, err = d.SolveMulti(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reused != 2 || st.Resolved != 1 {
		t.Fatalf("post-churn stats %+v, want 2 reused / 1 resolved", st)
	}
	if d.CacheLen() != 4 {
		t.Fatalf("cache holds %d entries, want 4 (3 original + 1 churned)", d.CacheLen())
	}
	if st.CacheHits != 5 || st.CacheMisses != 4 {
		t.Fatalf("cumulative hits/misses %d/%d, want 5/4", st.CacheHits, st.CacheMisses)
	}
}

func TestDRFCacheEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := &DRF{MaxCacheEntries: 4}
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		in := randomMultiInstance(rng, 1, 2, 2, 1)
		if _, _, err := d.SolveMulti(ctx, in); err != nil {
			t.Fatal(err)
		}
	}
	if n := d.CacheLen(); n > 4 {
		t.Fatalf("cache grew to %d entries past the bound of 4", n)
	}
}

// The K=1 reduction of DRF is weighted max-min fairness over aggregates —
// exactly AMF's objective over the same feasible region — so on
// single-resource instances the two must agree.
func TestDRFK1MatchesAMF(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(3)
		in := &core.Instance{
			SiteCapacity: make([]float64, m),
			Demand:       make([][]float64, n),
			Weight:       make([]float64, n),
		}
		for s := 0; s < m; s++ {
			in.SiteCapacity[s] = 1 + rng.Float64()*4
		}
		for j := 0; j < n; j++ {
			in.Weight[j] = 0.5 + rng.Float64()*2
			in.Demand[j] = make([]float64, m)
			for s := 0; s < m; s++ {
				if rng.Intn(3) > 0 {
					in.Demand[j][s] = 0.2 + rng.Float64()*2
				}
			}
			if in.Demand[j][rng.Intn(m)] == 0 {
				in.Demand[j][rng.Intn(m)] = 0.2 + rng.Float64()
			}
		}
		d := &DRF{Eps: 1e-9}
		got, _, err := d.Allocate(context.Background(), &View{Inst: in})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := core.NewSolver().AMF(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		tol := 1e-5 * in.Scale()
		for j := 0; j < n; j++ {
			var ag, aw float64
			for s := 0; s < m; s++ {
				ag += got.Share[j][s]
				aw += want.Share[j][s]
			}
			// Weighted aggregate shares must match; the per-site split may
			// legitimately differ between optimal placements.
			if diff := math.Abs(ag - aw); diff > tol {
				t.Fatalf("trial %d job %d: aggregate %g (DRF K=1) vs %g (AMF), diff %g",
					trial, j, ag, aw, diff)
			}
		}
	}
}

// Jobs with no positive task count anywhere form no component and stay at
// zero without disturbing the others.
func TestDRFIdleJob(t *testing.T) {
	in := &multires.Instance{
		SiteCapacity: [][]float64{{4}},
		TaskUse:      [][]float64{{1}, {1}},
		TaskCount:    [][]float64{{3}, {0}},
	}
	d := NewDRF()
	got, st, err := d.SolveMulti(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if st.Components != 1 {
		t.Fatalf("%d components, want 1 (idle job excluded)", st.Components)
	}
	if got.Tasks[1][0] != 0 {
		t.Fatalf("idle job allocated %g tasks", got.Tasks[1][0])
	}
	if math.Abs(got.Tasks[0][0]-3) > 1e-6 {
		t.Fatalf("active job got %g tasks, want its full count 3", got.Tasks[0][0])
	}
}

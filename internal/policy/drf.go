package policy

import (
	"context"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/multires"
)

// DRF is dominant-resource fairness behind the serving stack: the
// weighted aggregate dominant-share vector is max-min fair over all
// feasible task placements (multires.AggregateDRF — progressive filling
// with the LP feasibility oracle).
//
// The serving view is single-resource, so Allocate solves it as the K=1
// special case of the multi-resource problem; SolveMulti is the general
// entry point for vector-valued instances.
//
// Two things make DRF serviceable under churn:
//
//   - Component decomposition: jobs are partitioned by connected
//     components of the job×site demand graph and each component is
//     solved independently. This is exact *provided* dominant shares are
//     normalized against the global capacity totals
//     (multires.Instance.CapacityTotals): the feasible region is a
//     product over components, so the leximin decomposes, and the
//     normalization constant is global either way.
//   - Precomputed-result caching: each component's solve is stored under
//     a fingerprint of its exact content (and the policy parameters).
//     Component-local churn re-solves one component and serves the rest
//     from cache — the same shape as the single-resource incremental
//     path, but owned by the policy since the core solver cannot run DRF.
//
// A DRF instance is safe for concurrent use; construct one per
// controller (NewDRF) so cache state is never shared across engines.
type DRF struct {
	// Eps is the progressive-filling bisection tolerance, passed through
	// to multires.Solver (default 1e-6).
	Eps float64
	// MaxCacheEntries bounds the result cache (default 4096); the least
	// recently used entries are evicted past the bound.
	MaxCacheEntries int

	mu     sync.Mutex
	cache  map[uint64]*drfEntry
	seq    uint64
	hits   int64
	misses int64
}

// drfEntry is one cached component solve. sub is kept to verify a
// fingerprint hit against the exact content (hash collisions must lose),
// and tasks rows are immutable once stored.
type drfEntry struct {
	sub     *multires.Instance
	tasks   [][]float64
	lastUse uint64
}

// NewDRF returns a DRF policy with its own (empty) result cache.
func NewDRF() *DRF { return &DRF{} }

func (d *DRF) Name() string { return "drf" }

func (d *DRF) Capabilities() Capabilities {
	// Incremental is false: the core water-filling solver cannot run DRF,
	// so the scheduler's from-scratch path is used and the policy's own
	// component cache provides the churn win instead. Commutative is true
	// — dominant shares depend only on current demands and weights — so
	// the discipline opts into phase reconciliation, though without the
	// incremental path there is no per-component telemetry to mark
	// components hot, and the bit is latent today.
	return Capabilities{MultiResource: true, Commutative: true}
}

func (d *DRF) Fingerprint() uint64 {
	h := fnvString(fnvOffset, "drf")
	return fnvFloat(h, d.eps())
}

func (d *DRF) eps() float64 {
	if d.Eps > 0 {
		return d.Eps
	}
	return 1e-6
}

func (d *DRF) maxEntries() int {
	if d.MaxCacheEntries > 0 {
		return d.MaxCacheEntries
	}
	return 4096
}

// Allocate solves the single-resource serving view as a K=1
// multi-resource instance: one resource, task shape 1, task counts =
// per-site demand. Tasks and resource units coincide, so the placement
// maps back to per-site shares unchanged.
func (d *DRF) Allocate(ctx context.Context, v *View) (*core.Allocation, Stats, error) {
	if err := v.Inst.Validate(); err != nil {
		return nil, Stats{}, err
	}
	in := v.Inst
	n, m := in.NumJobs(), in.NumSites()
	mi := &multires.Instance{
		SiteCapacity: make([][]float64, m),
		TaskUse:      make([][]float64, n),
		TaskCount:    in.Demand,
		Weight:       in.Weight,
	}
	for s := 0; s < m; s++ {
		mi.SiteCapacity[s] = []float64{in.SiteCapacity[s]}
	}
	for j := 0; j < n; j++ {
		mi.TaskUse[j] = unitTaskShape
	}
	alloc, st, err := d.SolveMulti(ctx, mi)
	if err != nil {
		return nil, st, err
	}
	return &core.Allocation{Inst: in, Share: alloc.Tasks}, st, nil
}

// unitTaskShape is the shared K=1 task shape: one task consumes one unit
// of the single resource.
var unitTaskShape = []float64{1}

// SolveMulti computes the DRF allocation of a multi-resource instance via
// component decomposition with global-totals normalization and the result
// cache. The returned allocation's Tasks rows are freshly assembled; the
// per-component rows they are scattered from may be cache-shared and must
// not be mutated.
func (d *DRF) SolveMulti(ctx context.Context, in *multires.Instance) (*multires.Allocation, Stats, error) {
	if err := in.Validate(); err != nil {
		return nil, Stats{}, err
	}
	n := in.NumJobs()
	out := multires.NewAllocation(in)
	if n == 0 {
		return out, Stats{Native: true}, nil
	}
	totals := in.CapacityTotals
	if totals == nil {
		totals = in.TotalCapacity()
	}

	comps := componentsOf(in)
	st := Stats{Native: true, Components: len(comps)}
	for _, comp := range comps {
		if err := ctx.Err(); err != nil {
			return nil, st, err
		}
		if len(comp.jobs) > st.Largest {
			st.Largest = len(comp.jobs)
		}
		sub, fp := d.subInstance(in, comp, totals)
		tasks, hit, err := d.solveComponent(sub, fp)
		if err != nil {
			return nil, st, err
		}
		if hit {
			st.Reused++
		} else {
			st.Resolved++
		}
		for cj, j := range comp.jobs {
			for cs, s := range comp.sites {
				out.Tasks[j][s] = tasks[cj][cs]
			}
		}
	}
	d.mu.Lock()
	st.CacheHits, st.CacheMisses = d.hits, d.misses
	d.mu.Unlock()
	return out, st, nil
}

// component is one connected component of the job×site demand graph, in
// deterministic (ascending) order.
type component struct {
	jobs  []int
	sites []int
}

// componentsOf partitions jobs by shared sites (TaskCount > 0). Jobs with
// no positive task count anywhere form no component: they can run nothing
// and stay at zero tasks.
func componentsOf(in *multires.Instance) []component {
	n, m := in.NumJobs(), in.NumSites()
	parent := make([]int, n)
	for j := range parent {
		parent[j] = j
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	siteOwner := make([]int, m)
	for s := range siteOwner {
		siteOwner[s] = -1
	}
	for j := 0; j < n; j++ {
		for s := 0; s < m; s++ {
			if in.TaskCount[j][s] <= 0 {
				continue
			}
			if siteOwner[s] < 0 {
				siteOwner[s] = j
			} else {
				union(siteOwner[s], j)
			}
		}
	}
	byRoot := map[int]*component{}
	var order []int
	for j := 0; j < n; j++ {
		active := false
		for s := 0; s < m; s++ {
			if in.TaskCount[j][s] > 0 {
				active = true
				break
			}
		}
		if !active {
			continue
		}
		r := find(j)
		c, ok := byRoot[r]
		if !ok {
			c = &component{}
			byRoot[r] = c
			order = append(order, r)
		}
		c.jobs = append(c.jobs, j)
	}
	for s := 0; s < m; s++ {
		if siteOwner[s] < 0 {
			continue
		}
		byRoot[find(siteOwner[s])].sites = append(byRoot[find(siteOwner[s])].sites, s)
	}
	out := make([]component, 0, len(order))
	for _, r := range order {
		c := byRoot[r]
		sort.Ints(c.sites)
		out = append(out, *c)
	}
	return out
}

// subInstance carves one component out of the instance, normalized
// against the global totals, and fingerprints its exact content together
// with the policy parameters.
func (d *DRF) subInstance(in *multires.Instance, c component, totals []float64) (*multires.Instance, uint64) {
	k := in.NumResources()
	sub := &multires.Instance{
		SiteCapacity:   make([][]float64, len(c.sites)),
		TaskUse:        make([][]float64, len(c.jobs)),
		TaskCount:      make([][]float64, len(c.jobs)),
		Weight:         make([]float64, len(c.jobs)),
		CapacityTotals: totals,
	}
	h := fnvUint64(d.Fingerprint(), uint64(k))
	h = fnvFloats(h, totals)
	for i, s := range c.sites {
		sub.SiteCapacity[i] = in.SiteCapacity[s]
		h = fnvFloats(h, in.SiteCapacity[s])
	}
	for i, j := range c.jobs {
		sub.TaskUse[i] = in.TaskUse[j]
		sub.Weight[i] = in.JobWeight(j)
		row := make([]float64, len(c.sites))
		for cs, s := range c.sites {
			row[cs] = in.TaskCount[j][s]
		}
		sub.TaskCount[i] = row
		h = fnvFloats(h, in.TaskUse[j])
		h = fnvFloat(h, sub.Weight[i])
		h = fnvFloats(h, row)
	}
	return sub, h
}

// solveComponent returns the component's task placement, from the cache
// when the fingerprint and exact content match, else by running the
// progressive filling and caching the result.
func (d *DRF) solveComponent(sub *multires.Instance, fp uint64) ([][]float64, bool, error) {
	d.mu.Lock()
	if e, ok := d.cache[fp]; ok && sameInstance(e.sub, sub) {
		d.seq++
		e.lastUse = d.seq
		d.hits++
		tasks := e.tasks
		d.mu.Unlock()
		return tasks, true, nil
	}
	d.misses++
	d.mu.Unlock()

	sv := &multires.Solver{Eps: d.Eps}
	alloc, err := sv.AggregateDRF(sub)
	if err != nil {
		return nil, false, err
	}

	d.mu.Lock()
	if d.cache == nil {
		d.cache = map[uint64]*drfEntry{}
	}
	d.seq++
	d.cache[fp] = &drfEntry{sub: sub, tasks: alloc.Tasks, lastUse: d.seq}
	if len(d.cache) > d.maxEntries() {
		d.evictLocked()
	}
	d.mu.Unlock()
	return alloc.Tasks, false, nil
}

// evictLocked drops the least recently used half of the cache.
func (d *DRF) evictLocked() {
	type kv struct {
		key     uint64
		lastUse uint64
	}
	all := make([]kv, 0, len(d.cache))
	for k, e := range d.cache {
		all = append(all, kv{k, e.lastUse})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].lastUse < all[b].lastUse })
	for _, e := range all[:len(all)/2] {
		delete(d.cache, e.key)
	}
}

// CacheLen reports the number of cached component results (telemetry and
// tests).
func (d *DRF) CacheLen() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.cache)
}

// sameInstance compares two instances field by field — the collision
// check behind a fingerprint hit.
func sameInstance(a, b *multires.Instance) bool {
	if len(a.SiteCapacity) != len(b.SiteCapacity) || len(a.TaskUse) != len(b.TaskUse) {
		return false
	}
	for i := range a.SiteCapacity {
		if !sameRow(a.SiteCapacity[i], b.SiteCapacity[i]) {
			return false
		}
	}
	for i := range a.TaskUse {
		if !sameRow(a.TaskUse[i], b.TaskUse[i]) ||
			!sameRow(a.TaskCount[i], b.TaskCount[i]) ||
			math.Float64bits(a.Weight[i]) != math.Float64bits(b.Weight[i]) {
			return false
		}
	}
	return sameRow(a.CapacityTotals, b.CapacityTotals)
}

func sameRow(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// Package policy is the pluggable fairness layer: every allocation
// discipline the system can serve — the paper's AMF family, the per-site
// max-min baseline, multi-resource DRF and proportional fairness — sits
// behind one Policy interface, so the scheduler, serving engine, API,
// cluster router and WAL are all policy-agnostic. A policy declares its
// capabilities (incremental re-solving, global weight floors, approximate
// fast path) and the layers above adapt: the scheduler keeps its
// dirty-set/incremental machinery only for policies that support it, the
// cluster router broadcasts the weight sum only for policies that need
// it, and result caches mix the policy fingerprint into their keys so a
// runtime policy switch can never serve a stale allocation.
package policy

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
)

// Capabilities declares what machinery a policy can ride. The layers
// above consult these instead of switching on policy identity.
type Capabilities struct {
	// Incremental: the policy's shares depend only on weights, demands and
	// capacities — all captured by the component fingerprint — so the
	// scheduler may run it through core.IncrementalSolver, re-solving only
	// dirty components.
	Incremental bool
	// GlobalWeightFloors: the policy's allocation depends on the global
	// share-weight sum (Enhanced AMF's equal-share floors). The cluster
	// router must broadcast W − W_shard to every shard, and a weight-sum
	// change invalidates every cached component.
	GlobalWeightFloors bool
	// MultiResource: the policy generalizes to vector-valued capacities
	// and task shapes (DRF). The single-resource serving view is solved as
	// the K=1 special case.
	MultiResource bool
	// Approx: the policy honors the solver's approximate water-filling
	// knobs (ApproxEpsilon/ApproxThreshold).
	Approx bool
	// Commutative: the policy's allocation is a pure function of the
	// current weights, demands and capacities, so progress reports and
	// weight updates targeting the same job set commute — applying them
	// merged at a phase boundary yields the same allocation as applying
	// them one commit at a time. The serving engine buffers such mutations
	// for hot components (Doppel-style phase reconciliation) only when the
	// active policy sets this bit. AMF+JCT does not: its JCT-refined split
	// depends on outstanding work, so a deferred progress report would
	// change intermediate allocations, not just the final one.
	Commutative bool
}

// View is the read-only problem a policy allocates over: the scheduler's
// instance view plus the shared core solver. Policies must not mutate
// either.
type View struct {
	Inst   *core.Instance
	Solver *core.Solver
}

// Stats is the telemetry one Allocate call reports. Policies that manage
// their own decomposition and result cache (DRF) set Native and fill the
// counters; wrappers around the core solver leave Native false and the
// scheduler reads the solver's own SolveStats instead.
type Stats struct {
	Native     bool
	Components int
	Largest    int
	// Reused counts components served from the policy's result cache this
	// call; Resolved counts components actually solved.
	Reused   int
	Resolved int
	// CacheHits/CacheMisses are cumulative over the policy instance.
	CacheHits   int64
	CacheMisses int64
}

// Policy is one fairness discipline. Implementations must be safe for
// concurrent use; Allocate must treat the view as read-only and return
// freshly allocated (or immutably cached) share rows.
type Policy interface {
	// Name is the stable identifier used by flags, the HTTP API, snapshot
	// headers and cluster agreement checks.
	Name() string
	Capabilities() Capabilities
	// Allocate computes the policy's allocation for the view. The returned
	// allocation's Share rows are aligned with view.Inst.JobName.
	Allocate(ctx context.Context, v *View) (*core.Allocation, Stats, error)
	// Fingerprint is a stable hash of the policy's identity and parameters,
	// mixed into result-cache keys: two policies with different fingerprints
	// can never share a cached allocation.
	Fingerprint() uint64
}

// solverOf returns the view's solver, defaulting like the sim layer does.
func solverOf(v *View) *core.Solver {
	if v.Solver != nil {
		return v.Solver
	}
	return core.NewSolver()
}

// ForName constructs the named policy. Stateless disciplines return
// shared singletons; stateful ones (DRF's result cache) return a fresh
// instance so two controllers never share cache state.
func ForName(name string) (Policy, error) {
	switch name {
	case "amf":
		return AMF, nil
	case "amf+jct":
		return AMFJCT, nil
	case "amf-enhanced":
		return EnhancedAMF, nil
	case "psmmf":
		return PSMMF, nil
	case "drf":
		return NewDRF(), nil
	case "propfair":
		return NewPropFair(), nil
	}
	return nil, fmt.Errorf("policy: unknown policy %q (known: %v)", name, Names())
}

// Names lists every selectable policy name in presentation order.
func Names() []string {
	return []string{"amf", "amf+jct", "amf-enhanced", "psmmf", "drf", "propfair"}
}

// fnv64 is FNV-1a over raw bytes — the same construction the incremental
// solver's component fingerprints use, kept dependency-free here.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	h ^= 0xff // terminator so "ab","c" != "a","bc"
	h *= fnvPrime
	return h
}

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

func fnvFloat(h uint64, f float64) uint64 {
	return fnvUint64(h, math.Float64bits(f))
}

func fnvFloats(h uint64, fs []float64) uint64 {
	h = fnvUint64(h, uint64(len(fs)))
	for _, f := range fs {
		h = fnvFloat(h, f)
	}
	return h
}

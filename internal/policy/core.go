package policy

import (
	"context"

	"repro/internal/core"
)

// The paper's single-resource disciplines, exposed as Policy
// implementations. They are thin stateless wrappers over the shared core
// solver: the solver's own component decomposition, worker pool and
// approximate fast path do the heavy lifting, so Stats stays non-Native
// and the scheduler reads core.SolveStats directly.
var (
	// AMF is aggregate max-min fairness, the paper's proposal.
	AMF Policy = amfPolicy{}
	// AMFJCT is AMF plus the completion-time split optimization.
	AMFJCT Policy = jctPolicy{}
	// EnhancedAMF preserves sharing incentive: equal-share floors from the
	// global weight sum, max-min filling above them.
	EnhancedAMF Policy = enhancedPolicy{}
	// PSMMF is the per-site max-min baseline the paper compares against.
	PSMMF Policy = psmmfPolicy{}
)

type amfPolicy struct{}

func (amfPolicy) Name() string { return "amf" }
func (amfPolicy) Capabilities() Capabilities {
	return Capabilities{Incremental: true, Approx: true, Commutative: true}
}
func (amfPolicy) Fingerprint() uint64 { return fnvString(fnvOffset, "amf") }
func (amfPolicy) Allocate(ctx context.Context, v *View) (*core.Allocation, Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	a, err := solverOf(v).AMF(v.Inst)
	return a, Stats{}, err
}

type jctPolicy struct{}

func (jctPolicy) Name() string { return "amf+jct" }
func (jctPolicy) Capabilities() Capabilities {
	// The JCT split depends on outstanding work, which the component
	// fingerprint does not capture: from-scratch solves only.
	return Capabilities{}
}
func (jctPolicy) Fingerprint() uint64 { return fnvString(fnvOffset, "amf+jct") }
func (jctPolicy) Allocate(ctx context.Context, v *View) (*core.Allocation, Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	a, err := solverOf(v).AMFWithJCT(v.Inst)
	return a, Stats{}, err
}

type enhancedPolicy struct{}

func (enhancedPolicy) Name() string { return "amf-enhanced" }
func (enhancedPolicy) Capabilities() Capabilities {
	return Capabilities{Incremental: true, GlobalWeightFloors: true, Approx: true, Commutative: true}
}
func (enhancedPolicy) Fingerprint() uint64 { return fnvString(fnvOffset, "amf-enhanced") }
func (enhancedPolicy) Allocate(ctx context.Context, v *View) (*core.Allocation, Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	a, err := solverOf(v).EnhancedAMF(v.Inst)
	return a, Stats{}, err
}

type psmmfPolicy struct{}

func (psmmfPolicy) Name() string               { return "psmmf" }
func (psmmfPolicy) Capabilities() Capabilities { return Capabilities{Commutative: true} }
func (psmmfPolicy) Fingerprint() uint64        { return fnvString(fnvOffset, "psmmf") }
func (psmmfPolicy) Allocate(ctx context.Context, v *View) (*core.Allocation, Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	if err := v.Inst.Validate(); err != nil {
		return nil, Stats{}, err
	}
	return core.PerSiteMMF(v.Inst), Stats{}, nil
}

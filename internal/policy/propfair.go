package policy

import (
	"context"
	"math"
	"sort"

	"repro/internal/core"
)

// PropFair is weighted proportional fairness (Bonald & Roberts): the
// allocation maximizes Σ_j w_j·log(a_j) over per-site shares x[j][s] with
// a_j = Σ_s x[j][s], subject to per-site capacities Σ_j x[j][s] ≤ c_s and
// per-site demand caps 0 ≤ x[j][s] ≤ d[j][s].
//
// The fast path is an iterative dual-price (tatonnement) market: each
// site carries a price p_s, each job buys its utility-maximizing bundle
// given the prices (fill cheapest sites until the marginal utility
// w_j/a_j drops to the next price), and congested sites reprice
// multiplicatively toward load = capacity. Log utilities are gross
// substitutes, so when the best response is single-valued the dynamics
// contract to the unique proportionally fair allocation.
//
// The best response is NOT single-valued everywhere: a job interior at
// two congested sites forces their prices to tie at the fixed point, and
// the strict cheapest-first fill order is discontinuous exactly at a tie
// — the price dynamics then limit-cycle instead of converging. When the
// tatonnement stalls, the solve falls back to projected gradient ascent
// on the primal shares: the objective is concave and the feasible set is
// a product of per-site capped simplices (projection is a scalar
// bisection per site), so the ascent has no kink to chatter on and
// converges deterministically.
type PropFair struct {
	// Tol is the relative capacity residual at convergence (default 1e-10).
	Tol float64
	// MaxIter bounds iterations in each phase (default 20000).
	MaxIter int
}

// NewPropFair returns a proportional-fairness policy with defaults.
func NewPropFair() *PropFair { return &PropFair{} }

func (p *PropFair) Name() string               { return "propfair" }
func (p *PropFair) Capabilities() Capabilities { return Capabilities{Commutative: true} }

func (p *PropFair) Fingerprint() uint64 {
	h := fnvString(fnvOffset, "propfair")
	h = fnvFloat(h, p.tol())
	return fnvUint64(h, uint64(p.maxIter()))
}

func (p *PropFair) tol() float64 {
	if p.Tol > 0 {
		return p.Tol
	}
	return 1e-10
}

func (p *PropFair) maxIter() int {
	if p.MaxIter > 0 {
		return p.MaxIter
	}
	return 20000
}

func (p *PropFair) Allocate(ctx context.Context, v *View) (*core.Allocation, Stats, error) {
	in := v.Inst
	if err := in.Validate(); err != nil {
		return nil, Stats{}, err
	}
	share, err := p.solve(ctx, in)
	if err != nil {
		return nil, Stats{}, err
	}
	return &core.Allocation{Inst: in, Share: share}, Stats{}, nil
}

func (p *PropFair) solve(ctx context.Context, in *core.Instance) ([][]float64, error) {
	n, m := in.NumJobs(), in.NumSites()
	share := make([][]float64, n)
	for j := range share {
		share[j] = make([]float64, m)
	}
	if n == 0 {
		return share, nil
	}

	// A site whose total demand fits its capacity is never congested: its
	// price is zero and every job takes its full demand there.
	demandSum := make([]float64, m)
	for j := 0; j < n; j++ {
		for s, d := range in.Demand[j] {
			demandSum[s] += d
		}
	}
	congested := make([]bool, m)
	anyCongested := false
	for s := 0; s < m; s++ {
		if demandSum[s] > in.SiteCapacity[s] && in.SiteCapacity[s] > 0 {
			congested[s] = true
			anyCongested = true
		}
	}

	price := make([]float64, m)
	var wSum float64
	for j := 0; j < n; j++ {
		wSum += in.JobWeight(j)
	}
	var cSum float64
	for s := 0; s < m; s++ {
		cSum += in.SiteCapacity[s]
	}
	init := 1.0
	if cSum > 0 {
		init = math.Max(wSum/cSum, 1e-12)
	}
	for s := 0; s < m; s++ {
		if congested[s] {
			price[s] = init
		}
	}

	// Phase 1: price tatonnement. Bounded well below MaxIter — when the
	// market has not cleared by then it is limit-cycling on a price tie,
	// and more sweeps cannot help.
	tatIters := p.maxIter()
	if tatIters > 1000 {
		tatIters = 1000
	}
	load := make([]float64, m)
	tol := p.tol()
	converged := false
	for iter := 0; iter < tatIters; iter++ {
		if iter%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for s := range load {
			load[s] = 0
		}
		for j := 0; j < n; j++ {
			p.bestResponse(in, j, price, share[j])
			for s, x := range share[j] {
				load[s] += x
			}
		}
		if !anyCongested {
			return share, nil
		}
		// Converged when every congested site's load matches capacity (or
		// its price has collapsed: demand at price ~0 no longer fills it).
		maxResid := 0.0
		for s := 0; s < m; s++ {
			if !congested[s] {
				continue
			}
			resid := math.Abs(load[s]-in.SiteCapacity[s]) / in.SiteCapacity[s]
			if price[s] <= 1e-300 && load[s] <= in.SiteCapacity[s]*(1+tol) {
				continue // effectively free and uncongested at the fixed point
			}
			if resid > maxResid {
				maxResid = resid
			}
		}
		if maxResid <= tol {
			converged = true
			break
		}
		// Multiplicative repricing toward load = capacity. The damped
		// exponent keeps the gross-substitutes tatonnement contractive.
		for s := 0; s < m; s++ {
			if !congested[s] || price[s] <= 0 {
				continue
			}
			ratio := load[s] / in.SiteCapacity[s]
			if ratio <= 0 {
				ratio = tol // price far too high: collapse it quickly
			}
			price[s] *= math.Pow(ratio, 0.5)
		}
	}
	if !converged {
		// Phase 2: the market stalled on a price tie — finish on the primal.
		if err := p.ascent(ctx, in, share); err != nil {
			return nil, err
		}
	}

	// Exact feasibility: scale any residually over-capacity site down.
	for s := range load {
		load[s] = 0
	}
	for j := 0; j < n; j++ {
		for s, x := range share[j] {
			load[s] += x
		}
	}
	for s := 0; s < m; s++ {
		if load[s] <= in.SiteCapacity[s] || load[s] <= 0 {
			continue
		}
		f := in.SiteCapacity[s] / load[s]
		for j := 0; j < n; j++ {
			share[j][s] *= f
		}
	}
	return share, nil
}

// bestResponse fills x (len = sites) with job j's utility-maximizing
// bundle at the given prices: sites are taken in ascending price order,
// fully while the marginal utility w/a exceeds the next price, and the
// marginal site is filled partially up to a = w/p.
func (p *PropFair) bestResponse(in *core.Instance, j int, price []float64, x []float64) {
	type siteCost struct {
		s int
		p float64
	}
	m := len(price)
	order := make([]siteCost, 0, m)
	for s := 0; s < m; s++ {
		x[s] = 0
		if in.Demand[j][s] <= 0 {
			continue
		}
		order = append(order, siteCost{s, price[s]})
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].p != order[b].p {
			return order[a].p < order[b].p
		}
		return order[a].s < order[b].s
	})
	w := in.JobWeight(j)
	a := 0.0
	for _, sc := range order {
		d := in.Demand[j][sc.s]
		if sc.p <= 0 {
			// Free capacity: marginal utility w/a is always positive.
			x[sc.s] = d
			a += d
			continue
		}
		// Keep buying at this price while w/a > p, i.e. until a = w/p.
		want := w/sc.p - a
		if want <= 0 {
			break
		}
		take := math.Min(want, d)
		x[sc.s] = take
		a += take
	}
}

// ascent overwrites share with the proportionally fair allocation found
// by projected gradient ascent with backtracking line search: maximize
// Σ_j w_j·log(a_j) directly over the feasible polytope. It restarts from
// a deterministic point (full demand scaled per site to capacity) rather
// than the stalled tatonnement state, so the result never depends on
// where the limit cycle was interrupted.
func (p *PropFair) ascent(ctx context.Context, in *core.Instance, share [][]float64) error {
	n, m := in.NumJobs(), in.NumSites()
	demandSum := make([]float64, m)
	for j := 0; j < n; j++ {
		for s, d := range in.Demand[j] {
			demandSum[s] += d
		}
	}
	// A job is active when it can receive anything at all; inactive jobs
	// stay at zero and are excluded from the objective (log 0).
	active := make([]bool, n)
	for j := 0; j < n; j++ {
		for s := 0; s < m; s++ {
			if in.Demand[j][s] > 0 && in.SiteCapacity[s] > 0 {
				active[j] = true
				break
			}
		}
	}
	cur := make([][]float64, n)
	for j := 0; j < n; j++ {
		cur[j] = make([]float64, m)
		for s := 0; s < m; s++ {
			if !active[j] || in.Demand[j][s] <= 0 || in.SiteCapacity[s] <= 0 {
				continue
			}
			f := 1.0
			if demandSum[s] > in.SiteCapacity[s] {
				f = in.SiteCapacity[s] / demandSum[s]
			}
			cur[j][s] = in.Demand[j][s] * f
		}
	}

	agg := make([]float64, n)
	objective := func(x [][]float64) float64 {
		v := 0.0
		for j := 0; j < n; j++ {
			if !active[j] {
				continue
			}
			a := 0.0
			for _, xs := range x[j] {
				a += xs
			}
			agg[j] = a
			if a <= 0 {
				return math.Inf(-1)
			}
			v += in.JobWeight(j) * math.Log(a)
		}
		return v
	}

	cand := make([][]float64, n)
	grad := make([][]float64, n)
	for j := range cand {
		cand[j] = make([]float64, m)
		grad[j] = make([]float64, m)
	}
	col := make([]float64, n)
	dcol := make([]float64, n)

	f := objective(cur)
	eta := 1.0
	flat := 0
	for iter := 0; iter < p.maxIter(); iter++ {
		if iter%64 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		for j := 0; j < n; j++ {
			if !active[j] {
				continue
			}
			g := in.JobWeight(j) / agg[j]
			for s := 0; s < m; s++ {
				if in.Demand[j][s] > 0 {
					grad[j][s] = g
				} else {
					grad[j][s] = 0
				}
			}
		}
		improved := false
		for bt := 0; bt < 60; bt++ {
			for s := 0; s < m; s++ {
				for j := 0; j < n; j++ {
					col[j] = cur[j][s] + eta*grad[j][s]
					dcol[j] = in.Demand[j][s]
				}
				projectCappedSimplex(col, dcol, in.SiteCapacity[s])
				for j := 0; j < n; j++ {
					cand[j][s] = col[j]
				}
			}
			if fc := objective(cand); fc > f {
				improved = fc-f > 1e-13*(1+math.Abs(f))
				f = fc
				cur, cand = cand, cur
				eta *= 1.5
				break
			}
			eta *= 0.5
		}
		// agg must reflect the accepted iterate: a rejected final
		// candidate leaves stale aggregates behind.
		objective(cur)
		if improved {
			flat = 0
		} else if flat++; flat >= 32 {
			break
		}
	}
	for j := 0; j < n; j++ {
		copy(share[j], cur[j])
	}
	return nil
}

// projectCappedSimplex projects y (in place) onto
// {x : 0 ≤ x_j ≤ d_j, Σ_j x_j ≤ c} in Euclidean norm: clip, and if the
// clipped sum still exceeds c, shift by the λ ≥ 0 with
// Σ clip(y_j−λ, 0, d_j) = c, found by bisection (the shifted-clip sum is
// continuous and nonincreasing in λ).
func projectCappedSimplex(y, d []float64, c float64) {
	if c <= 0 {
		for j := range y {
			y[j] = 0
		}
		return
	}
	sum := 0.0
	hi := 0.0
	for j := range y {
		v := y[j]
		if v < 0 {
			v = 0
		} else if v > d[j] {
			v = d[j]
		}
		sum += v
		if y[j] > hi {
			hi = y[j]
		}
	}
	if sum <= c {
		for j := range y {
			if y[j] < 0 {
				y[j] = 0
			} else if y[j] > d[j] {
				y[j] = d[j]
			}
		}
		return
	}
	lo := 0.0
	for it := 0; it < 100 && hi-lo > 0; it++ {
		mid := 0.5 * (lo + hi)
		s := 0.0
		for j := range y {
			v := y[j] - mid
			if v < 0 {
				v = 0
			} else if v > d[j] {
				v = d[j]
			}
			s += v
		}
		if s > c {
			lo = mid
		} else {
			hi = mid
		}
	}
	lam := 0.5 * (lo + hi)
	for j := range y {
		v := y[j] - lam
		if v < 0 {
			v = 0
		} else if v > d[j] {
			v = d[j]
		}
		y[j] = v
	}
}

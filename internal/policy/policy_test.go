package policy

import (
	"context"
	"testing"

	"repro/internal/core"
)

func TestForNameRoundTrip(t *testing.T) {
	for _, name := range Names() {
		p, err := ForName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("ForName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ForName("bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := ForName(""); err == nil {
		t.Fatal("empty policy name accepted")
	}
}

func TestCapabilityMatrix(t *testing.T) {
	want := map[string]Capabilities{
		"amf":          {Incremental: true, Approx: true, Commutative: true},
		"amf+jct":      {},
		"amf-enhanced": {Incremental: true, GlobalWeightFloors: true, Approx: true, Commutative: true},
		"psmmf":        {Commutative: true},
		"drf":          {MultiResource: true, Commutative: true},
		"propfair":     {Commutative: true},
	}
	for _, name := range Names() {
		p, err := ForName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Capabilities(); got != want[name] {
			t.Fatalf("%s capabilities %+v, want %+v", name, got, want[name])
		}
	}
}

func TestFingerprintsDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, name := range Names() {
		p, err := ForName(name)
		if err != nil {
			t.Fatal(err)
		}
		fp := p.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("policies %s and %s share fingerprint %#x", prev, name, fp)
		}
		seen[fp] = name
	}
	// Parameter changes must change the fingerprint: a tuned instance can
	// never share a cache entry with a default one.
	if (&DRF{Eps: 1e-9}).Fingerprint() == NewDRF().Fingerprint() {
		t.Fatal("DRF fingerprint ignores Eps")
	}
	if (&PropFair{Tol: 1e-6}).Fingerprint() == NewPropFair().Fingerprint() {
		t.Fatal("PropFair fingerprint ignores Tol")
	}
}

func TestStatefulPoliciesGetFreshInstances(t *testing.T) {
	a, _ := ForName("drf")
	b, _ := ForName("drf")
	if a.(*DRF) == b.(*DRF) {
		t.Fatal("ForName(drf) shares cache state between controllers")
	}
	x, _ := ForName("amf")
	y, _ := ForName("amf")
	if x != y {
		t.Fatal("stateless policies should be shared singletons")
	}
}

func TestAllocateRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := &core.Instance{
		SiteCapacity: []float64{1},
		Demand:       [][]float64{{1}},
	}
	for _, name := range []string{"amf", "amf+jct", "amf-enhanced"} {
		p, err := ForName(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := p.Allocate(ctx, &View{Inst: in}); err == nil {
			t.Fatalf("%s: cancelled context accepted", name)
		}
	}
}

package core

import (
	"math/rand"
	"testing"
)

func amfAlloc(sv *Solver) AllocatorFunc {
	return func(in *Instance) (*Allocation, error) { return sv.AMF(in) }
}

func TestProbeStrategyProofnessAMF(t *testing.T) {
	// AMF is strategy-proof: no misreport may increase useful allocation.
	rng := rand.New(rand.NewSource(179))
	sv := NewSolver()
	for trial := 0; trial < 8; trial++ {
		in := randInstance(rng, 2+rng.Intn(4), 1+rng.Intn(3))
		outcomes, err := ProbeStrategyProofness(in, amfAlloc(sv), 6, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outcomes {
			if o.Gain > 1e-4*in.Scale() {
				t.Fatalf("trial %d: job %d gained %g by misreporting (truth %g, best %g)",
					trial, o.Job, o.Gain, o.TruthUseful, o.BestUseful)
			}
		}
	}
}

func TestProbeStrategyProofnessCounterexampleInstance(t *testing.T) {
	// The sharing-incentive counterexample is a tempting place to game the
	// allocator (job X would love its equal share back); AMF must still
	// resist all probes.
	in := sharingIncentiveInstance()
	rng := rand.New(rand.NewSource(181))
	outcomes, err := ProbeStrategyProofness(in, amfAlloc(NewSolver()), 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if o.Gain > 1e-5 {
			t.Fatalf("job %d gained %g", o.Job, o.Gain)
		}
	}
}

func TestProbeStrategyProofnessPerSiteMMF(t *testing.T) {
	// The per-site baseline is also strategy-proof (independent per-site
	// water-filling); this guards the prober against false positives.
	rng := rand.New(rand.NewSource(191))
	alloc := func(in *Instance) (*Allocation, error) { return PerSiteMMF(in), nil }
	for trial := 0; trial < 8; trial++ {
		in := randInstance(rng, 2+rng.Intn(4), 1+rng.Intn(3))
		outcomes, err := ProbeStrategyProofness(in, alloc, 6, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outcomes {
			if o.Gain > 1e-6*in.Scale() {
				t.Fatalf("trial %d: job %d gained %g under PS-MMF", trial, o.Job, o.Gain)
			}
		}
	}
}

func TestProbeDetectsGameableStrawmanPolicy(t *testing.T) {
	// Negative control: a policy that divides each site proportionally to
	// *reported* demand is trivially gameable by exaggerating. The prober
	// must find a positive gain, otherwise it has no teeth.
	alloc := func(in *Instance) (*Allocation, error) {
		a := NewAllocation(in)
		for s := range in.SiteCapacity {
			var tot float64
			for j := range in.Demand {
				tot += in.Demand[j][s]
			}
			if tot == 0 {
				continue
			}
			for j := range in.Demand {
				a.Share[j][s] = in.SiteCapacity[s] * in.Demand[j][s] / tot
			}
		}
		return a, nil
	}
	in := &Instance{
		SiteCapacity: []float64{1}, // scarce site
		Demand:       [][]float64{{1}, {1}},
	}
	rng := rand.New(rand.NewSource(193))
	outcomes, err := ProbeStrategyProofness(in, alloc, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range outcomes {
		if o.Gain > 0.1 {
			found = true
		}
	}
	if !found {
		t.Fatal("prober failed to exploit a proportional-to-report policy")
	}
}

func TestUsefulAllocationZeroDemand(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{2},
		Demand:       [][]float64{{2}},
	}
	a := NewAllocation(in)
	a.Share[0][0] = 2
	if u := UsefulAllocation(a, 0, []float64{0}); u != 0 {
		t.Fatalf("useful allocation %g with zero true demand", u)
	}
}

package core

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Approximate water-filling for huge connected components.
//
// The exact progressive-filling loop (amf.go) pays one bottleneck round —
// a bracket search plus a Newton/bisection refinement, each step a max-flow
// probe over the whole component — per DISTINCT saturation level. That is
// the right trade for the small components the decomposition produces, but
// a single dense million-edge component has thousands of distinct levels
// and every probe touches every edge: the solve degenerates to
// rounds × probes × O(E).
//
// Following the sorted water-filling idea of "Solving Max-Min Fair
// Resource Allocations Quickly on Large Graphs" (Namyar et al. 2023), the
// approximate path trades exactness for round count:
//
//   - Jobs are bucketed into sorted equi-depth groups by their demand-cap
//     level D_j/w_j (approxLadder). The fill level jumps group boundary to
//     group boundary, so one feasible probe retires a whole group of
//     demand-capped jobs instead of discovering them a round at a time.
//
//   - When a probe comes back infeasible, the bracket between the last
//     feasible level and the probe holds one or more bottlenecks. Instead
//     of refining each to machine precision, the bracket is bisected only
//     down to a coarse width ltol = ApproxEpsilon·Scale/(4·wmax), and
//     every job the residual graph marks non-growable freezes AT ONCE at
//     the flow it actually received — lumping all bottleneck levels that
//     fall within the bracket into a single round.
//
// The per-job error bound comes from the incremental flow machinery: a
// feasible checkpoint at level lo saturates every source edge at its
// target τ_j(lo), and augmenting paths only ever cross source edges
// forward, so after the probe at the infeasible end hi each job's received
// flow r_j sits in [τ_j(lo), τ_j(hi)]. The exact bottleneck level t* of
// the lumped jobs also lies in [lo, hi), hence |r_j − τ_j(t*)| ≤
// (hi−lo)·w_j ≤ ltol·wmax = ApproxEpsilon·Scale/4 — a quarter of the
// budget, leaving headroom for the second-order redistribution a coarse
// freeze causes downstream. Demand-capped jobs freeze at their exact
// demand, contributing no error. Feasibility is never approximated: the
// final witness max-flow at the frozen levels must still check out.
//
// The path is wired as a size-triggered fast route (Solver.fillComponent):
// components with more than ApproxThreshold jobs+edges take it, everything
// else — and everything when ApproxEpsilon is 0 — runs the exact
// fillMono bit-for-bit.

// approxReport is the per-component record of an approximate solve,
// carried back to the solve entry points that aggregate SolveStats and
// emit the solve.approx stage events after worker pools drain.
type approxReport struct {
	// used marks that the component actually routed through approxFill.
	used bool
	// errBound is the largest certified per-job aggregate deviation from
	// the exact max-min allocation (absolute, in resource units).
	errBound float64
	// d is the wall time of the approximate solve, for the solve.approx
	// stage event.
	d time.Duration
}

// approxEnabled reports whether the approximate fast path can trigger at
// all: both knobs must be positive. ApproxEpsilon == 0 is the exactness
// guarantee — every solve takes the exact path bit-for-bit.
func (sv *Solver) approxEnabled() bool {
	return sv.ApproxEpsilon > 0 && sv.ApproxThreshold > 0
}

// approxRoute reports whether the (sub-)instance is large enough for the
// approximate path: jobs + positive-demand edges above ApproxThreshold.
// The scan early-exits once the threshold is crossed, so huge components
// pay O(threshold), not O(E), to decide.
func (sv *Solver) approxRoute(in *Instance) bool {
	if !sv.approxEnabled() {
		return false
	}
	size := in.NumJobs()
	if size > sv.ApproxThreshold {
		return true
	}
	for _, row := range in.Demand {
		for _, d := range row {
			if d > 0 {
				size++
				if size > sv.ApproxThreshold {
					return true
				}
			}
		}
	}
	return false
}

// fillComponent solves one connected component (or the whole instance on
// the monolithic path), routing through the approximate water-filling when
// the fast path is enabled and the component is large enough. Callers emit
// the solve.approx stage event from the report (not here: parallel workers
// must not fire the OnStage hook concurrently).
func (sv *Solver) fillComponent(in *Instance, floors []float64) (*Allocation, approxReport, error) {
	if sv.approxRoute(in) {
		t0 := time.Now()
		alloc, bound, err := sv.approxFill(in, floors)
		return alloc, approxReport{used: true, errBound: bound, d: time.Since(t0)}, err
	}
	alloc, err := sv.fillMono(in, floors, nil)
	return alloc, approxReport{}, err
}

// approxLadder builds the candidate fill levels: equi-depth quantiles of
// the unfrozen jobs' demand-cap levels D_j/w_j, ascending and
// deduplicated, ending at the maximum. Group count grows with the square
// root of the job count so ladder maintenance stays negligible next to
// the probes it saves.
func approxLadder(in *Instance, frozen []bool, total []float64) []float64 {
	his := make([]float64, 0, len(total))
	for j := range total {
		if !frozen[j] {
			his = append(his, total[j]/in.JobWeight(j))
		}
	}
	if len(his) == 0 {
		return nil
	}
	sort.Float64s(his)
	groups := int(math.Sqrt(float64(len(his))))
	if groups < 4 {
		groups = 4
	}
	if groups > 64 {
		groups = 64
	}
	// Tiny components (threshold set very low) can have fewer jobs than
	// the minimum group count; every job is then its own group.
	if groups > len(his) {
		groups = len(his)
	}
	ladder := make([]float64, 0, groups)
	for g := 1; g <= groups; g++ {
		v := his[g*len(his)/groups-1]
		if len(ladder) == 0 || v > ladder[len(ladder)-1] {
			ladder = append(ladder, v)
		}
	}
	return ladder
}

// approxFill runs equi-depth approximate water-filling over one connected
// component, with optional per-job floors (Enhanced AMF). It returns the
// allocation and the certified per-job aggregate deviation bound.
func (sv *Solver) approxFill(in *Instance, floors []float64) (*Allocation, float64, error) {
	n := in.NumJobs()
	alloc := NewAllocation(in)
	if n == 0 {
		return alloc, 0, nil
	}

	scale := in.Scale()
	flowEps := math.Max(1e-12*scale, 1e-18)
	featol := sv.eps() * scale * (1 + math.Sqrt(float64(n)))
	scr := sv.getScratch()
	defer sv.putScratch(scr)
	scr.resize(n)
	nw := &scr.nw
	nw.rebuild(in, flowEps)

	floor := func(j int) float64 {
		if floors == nil {
			return 0
		}
		return math.Min(floors[j], in.TotalDemand(j))
	}

	level := scr.level
	frozen := scr.frozen
	targets := scr.targets
	total := scr.total

	remaining := 0
	wmax := 0.0
	for j := 0; j < n; j++ {
		total[j] = in.TotalDemand(j)
		if total[j] <= 0 {
			frozen[j] = true
			level[j] = 0
		} else {
			remaining++
			if w := in.JobWeight(j); w > wmax {
				wmax = w
			}
		}
	}
	if remaining == 0 {
		return alloc, 0, nil
	}

	// ltol is the bottleneck bracket width: jobs lumped into one bracket
	// freeze at most ltol·w_j (aggregate) from their exact level, so it
	// spends a quarter of the epsilon budget on direct bracket error.
	ltol := sv.ApproxEpsilon * scale / (4 * wmax)

	target := func(t float64) []float64 {
		for j := 0; j < n; j++ {
			if frozen[j] {
				targets[j] = level[j]
			} else {
				targets[j] = math.Max(floor(j), math.Min(t*in.JobWeight(j), total[j]))
			}
		}
		return targets
	}

	// Initial feasible checkpoint: every job at its floor (zero for plain
	// AMF, the isolated equal shares for Enhanced AMF).
	initTargets := scr.init
	for j := 0; j < n; j++ {
		if frozen[j] {
			initTargets[j] = level[j]
		} else {
			initTargets[j] = floor(j)
		}
	}
	flow0, want0 := nw.maxFlowAt(initTargets)
	if flow0 < want0-featol {
		return nil, 0, fmt.Errorf("core: floor vector infeasible: flow %g < %g", flow0, want0)
	}
	cp := &scr.cp
	nw.saveCheckpointTo(cp, flow0)

	ladder := approxLadder(in, frozen, total)

	errBound := 0.0
	dtol := sv.eps() * scale
	tPrev := 0.0
	step := 0
	maxRounds := 2*n + len(ladder) + 16
	for round := 0; remaining > 0; round++ {
		if round > maxRounds {
			return nil, 0, fmt.Errorf("core: approximate filling made no progress after %d rounds", round)
		}
		// hi: beyond this level every unfrozen target is demand-capped.
		hi := 0.0
		for j := 0; j < n; j++ {
			if !frozen[j] {
				hi = math.Max(hi, total[j]/in.JobWeight(j))
			}
		}
		for step < len(ladder) && ladder[step] <= tPrev {
			step++
		}
		t := hi
		if step < len(ladder) && ladder[step] < hi {
			t = ladder[step]
		}

		flow, want := nw.probeFrom(cp, target(t))
		if flow >= want-featol {
			// Feasible at the ladder level: advance the checkpoint and
			// retire the whole group of jobs the level demand-caps. They
			// freeze at their received target τ_j(t) — within dtol of their
			// exact demand — NOT at total[j]: the checkpoint saturates them
			// at τ_j(t), and freezing even dtol above it would leave a dust
			// deficit per job that accumulates across a large component
			// until probes read as infeasible with no unsaturated job.
			nw.saveCheckpointTo(cp, flow)
			frozeAny := false
			for j := 0; j < n; j++ {
				if !frozen[j] && t*in.JobWeight(j) >= total[j]-dtol {
					frozen[j] = true
					level[j] = targets[j]
					remaining--
					frozeAny = true
				}
			}
			if t >= hi && !frozeAny && remaining > 0 {
				// t == hi demand-caps every survivor; numerical dust could
				// leave a straggler, which is demand-capped by definition.
				for j := 0; j < n; j++ {
					if !frozen[j] {
						frozen[j] = true
						level[j] = targets[j]
						remaining--
					}
				}
			}
			tPrev = t
			continue
		}

		// Infeasible: the bracket (tPrev, t] holds one or more bottleneck
		// levels. Narrow it to ltol — feasible midpoints advance the
		// checkpoint — then freeze every non-growable job at once.
		lo, hiB := tPrev, t
		for hiB-lo > ltol {
			mid := lo + (hiB-lo)/2
			if f, w := nw.probeFrom(cp, target(mid)); f >= w-featol {
				nw.saveCheckpointTo(cp, f)
				lo = mid
			} else {
				hiB = mid
			}
		}
		// One probe at the infeasible end. Restored checkpoints keep every
		// frozen job saturated at its level and augmentation never reduces
		// source-edge flow, so at an infeasible max flow some UNFROZEN job
		// has an unsaturated source edge — it could not even receive its
		// target, which puts it in a cut-limited group whose exact common
		// level lies below hiB (and above the feasible lo). Freezing such
		// jobs at their received flow, clamped to [τ_j(lo), τ_j(hiB)], is
		// therefore off by at most the bracket width: (hiB−lo)·w_j ≤
		// ltol·w_j. Jobs the flow happened to saturate are left alone; if
		// they belong to the same exhausted group the next round's probe
		// comes back infeasible immediately and catches them unsaturated.
		flowB, wantB := nw.probeFrom(cp, target(hiB))
		// The total deficit wantB−flowB exceeds featol and is spread over
		// at most n jobs, so the largest per-job deficit clears half the
		// mean: satTol always detects at least one job.
		satTol := math.Max(4*flowEps, (wantB-flowB)/float64(2*n))
		frozeAny := false
		for j := 0; j < n; j++ {
			if frozen[j] {
				continue
			}
			w := in.JobWeight(j)
			if lo*w >= total[j]-dtol {
				// Demand-capped at the feasible end; freeze at τ_j(lo),
				// the level the lo checkpoint saturates (see the feasible
				// branch for why not total[j]).
				frozen[j] = true
				level[j] = math.Max(floor(j), math.Min(lo*w, total[j]))
				remaining--
				frozeAny = true
				continue
			}
			hij := math.Max(floor(j), math.Min(hiB*w, total[j]))
			r := nw.g.Flow(nw.srcEdge[j])
			if r >= hij-satTol {
				continue
			}
			loj := math.Max(floor(j), math.Min(lo*w, total[j]))
			if r < loj {
				r = loj
			}
			frozen[j] = true
			level[j] = r
			remaining--
			frozeAny = true
			if dev := hij - loj; dev > errBound {
				errBound = dev
			}
		}
		if !frozeAny {
			return nil, 0, fmt.Errorf("core: approximate bottleneck near level %g froze no job", hiB)
		}
		// Restore the invariant that the checkpoint saturates every job at
		// its current (level, τ(tPrev)) target — without it, a later
		// infeasible probe could dump its deficit on a frozen job's
		// unraised flow and mask the truly unsaturated jobs. The hiB flow
		// dominates the post-freeze targets pointwise, so this probe is
		// feasible by flow decomposition.
		flowL, wantL := nw.probeFrom(cp, target(lo))
		if flowL < wantL-featol {
			return nil, 0, fmt.Errorf("core: post-freeze levels infeasible near %g: flow %g < %g", lo, flowL, wantL)
		}
		nw.saveCheckpointTo(cp, flowL)
		tPrev = lo
	}

	// Final witness flow at the frozen levels: feasibility is exact even
	// when the levels are approximate.
	flow, want := nw.probeFrom(cp, level)
	if flow < want-math.Max(featol, 1e-6*scale*float64(n)) {
		return nil, 0, fmt.Errorf("core: final levels infeasible: flow %g < %g", flow, want)
	}
	nw.shares(alloc)
	return alloc, errBound, nil
}

package core

import (
	"math"
	"math/rand"
	"testing"
)

// randClusteredInstance builds a block-structured instance: sites split
// into blocks and every job demands only within one block, so the
// decomposed solve path sees several independent components.
func randClusteredInstance(rng *rand.Rand, blocks, sitesPerBlock, jobsPerBlock int) *Instance {
	m := blocks * sitesPerBlock
	in := &Instance{
		SiteCapacity: make([]float64, m),
	}
	for s := range in.SiteCapacity {
		in.SiteCapacity[s] = 0.5 + rng.Float64()*4.5
	}
	for b := 0; b < blocks; b++ {
		for j := 0; j < jobsPerBlock; j++ {
			row := make([]float64, m)
			s0 := b * sitesPerBlock
			k := 1 + rng.Intn(sitesPerBlock)
			row[s0] = 0.1 + rng.Float64()*2
			for _, off := range rng.Perm(sitesPerBlock - 1)[:k-1] {
				row[s0+1+off] = 0.1 + rng.Float64()*2
			}
			in.Demand = append(in.Demand, row)
			in.Weight = append(in.Weight, 0.5+rng.Float64()*3.5)
		}
	}
	return in
}

// checkExplanation asserts the acceptance properties: every reported
// level equals the published aggregate to 1e-9*Scale, and every reported
// binding site is actually saturated (independently recomputed from the
// share matrix).
func checkExplanation(t *testing.T, in *Instance, a *Allocation, ex *Explanation) {
	t.Helper()
	scale := in.Scale()
	levelTol := 1e-9 * scale
	if len(ex.Jobs) != in.NumJobs() || len(ex.Sites) != in.NumSites() {
		t.Fatalf("explanation shape %dx%d, want %dx%d",
			len(ex.Jobs), len(ex.Sites), in.NumJobs(), in.NumSites())
	}
	load := make([]float64, in.NumSites())
	for j := range a.Share {
		for s, v := range a.Share[j] {
			load[s] += v
		}
	}
	for j, je := range ex.Jobs {
		if got, want := je.Level, a.Aggregate(j); math.Abs(got-want) > levelTol {
			t.Fatalf("job %d reported level %g, allocation %g (tol %g)", j, got, want, levelTol)
		}
		for _, bs := range je.BindingSites {
			if residual := in.SiteCapacity[bs.Site] - load[bs.Site]; residual > ex.SatTol {
				t.Fatalf("job %d binding site %d not saturated: residual %g > %g",
					j, bs.Site, residual, ex.SatTol)
			}
			if a.Share[j][bs.Site] >= in.Demand[j][bs.Site]-ex.Tol {
				t.Fatalf("job %d binding site %d has no residual demand", j, bs.Site)
			}
		}
		switch je.Limit {
		case ExplainDemandCapped:
			if math.Abs(je.Level-in.TotalDemand(j)) > ex.Tol {
				t.Fatalf("job %d demand-capped at level %g, demand %g", j, je.Level, in.TotalDemand(j))
			}
		case ExplainZeroDemand:
			if in.TotalDemand(j) > 0 {
				t.Fatalf("job %d marked zero-demand with demand %g", j, in.TotalDemand(j))
			}
		case ExplainBottlenecked:
			if len(je.BindingSites) == 0 {
				t.Fatalf("job %d bottlenecked with no binding sites (level %g, demand %g)",
					j, je.Level, in.TotalDemand(j))
			}
		}
		if in.TotalDemand(j) > 0 && je.FreezeRound < 1 {
			t.Fatalf("job %d has freeze round %d", j, je.FreezeRound)
		}
	}
	for s, se := range ex.Sites {
		if math.Abs(se.Load-load[s]) > levelTol {
			t.Fatalf("site %d reported load %g, actual %g", s, se.Load, load[s])
		}
		if se.Saturated != (se.Residual <= ex.SatTol) {
			t.Fatalf("site %d saturation flag inconsistent: residual %g, sat_tol %g",
				s, se.Residual, ex.SatTol)
		}
	}
}

// TestExplainProperty is the acceptance property test: for 200 random
// instances spanning AMF and Enhanced-AMF on flat and clustered
// topologies, every reported binding site is saturated and every reported
// level matches the published allocation to 1e-9*Scale. Run under -race.
func TestExplainProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(811))
	sv := NewSolver()
	for trial := 0; trial < 200; trial++ {
		var in *Instance
		if trial%2 == 0 {
			in = randWeightedInstance(rng, 2+rng.Intn(10), 2+rng.Intn(5))
		} else {
			in = randClusteredInstance(rng, 2+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(4))
		}
		enhanced := trial%4 >= 2
		var (
			a      *Allocation
			floors []float64
			err    error
		)
		if enhanced {
			floors = EqualShares(in)
			a, err = sv.EnhancedAMF(in)
		} else {
			a, err = sv.AMF(in)
		}
		if err != nil {
			t.Fatalf("trial %d: solve: %v", trial, err)
		}
		ex := Explain(in, a.Share, floors)
		checkExplanation(t, in, a, ex)
		if enhanced {
			for j, je := range ex.Jobs {
				if math.Abs(je.Floor-floors[j]) > 0 {
					t.Fatalf("trial %d: job %d floor %g, want %g", trial, j, je.Floor, floors[j])
				}
				if je.Level < floors[j]-ex.Tol {
					t.Fatalf("trial %d: job %d level %g below floor %g", trial, j, je.Level, floors[j])
				}
			}
		}
	}
}

// TestExplainAgainstDiagnostics cross-checks the post-hoc limit
// classification against the solver's in-loop freeze diagnostics.
func TestExplainAgainstDiagnostics(t *testing.T) {
	rng := rand.New(rand.NewSource(821))
	sv := NewSolver()
	for trial := 0; trial < 50; trial++ {
		in := randWeightedInstance(rng, 2+rng.Intn(8), 2+rng.Intn(4))
		a, diag, err := sv.AMFDiag(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ex := Explain(in, a.Share, nil)
		for j := range ex.Jobs {
			want := diag.Limit(j)
			got := ex.Jobs[j].Limit
			// The two classifiers may legitimately disagree when a job is
			// simultaneously at its demand and at the bottleneck level;
			// only flag hard contradictions.
			if want == LimitDemand && got == ExplainBottlenecked {
				if a.Aggregate(j) < in.TotalDemand(j)-ex.SatTol {
					t.Fatalf("trial %d: job %d diag says demand-capped, explain says bottlenecked (agg %g, demand %g)",
						trial, j, a.Aggregate(j), in.TotalDemand(j))
				}
			}
			if want == LimitBottleneck && got == ExplainDemandCapped {
				if a.Aggregate(j) < in.TotalDemand(j)-ex.SatTol {
					t.Fatalf("trial %d: job %d diag says bottlenecked, explain says demand-capped far from demand",
						trial, j)
				}
			}
		}
	}
}

// TestExplainNamedLookup exercises JobByName and the named fields.
func TestExplainNamedLookup(t *testing.T) {
	in := sharingIncentiveInstance()
	in.JobName = []string{"x", "y", "z"}
	in.SiteName = []string{"private", "contested"}
	sv := NewSolver()
	a, err := sv.AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	ex := Explain(in, a.Share, nil)
	je := ex.JobByName("y")
	if je == nil || je.Job != 1 {
		t.Fatalf("JobByName(y) = %+v", je)
	}
	if je.Limit != ExplainBottlenecked {
		t.Fatalf("job y limit = %s, want bottlenecked", je.Limit)
	}
	if len(je.BindingSites) != 1 || je.BindingSites[0].Name != "contested" {
		t.Fatalf("job y binding sites = %+v", je.BindingSites)
	}
	if ex.JobByName("missing") != nil {
		t.Fatal("JobByName(missing) != nil")
	}
}

// TestExplainFloorBound checks the Enhanced-AMF floor-binding flag on the
// canonical sharing-incentive counterexample: job X's floor lifts it above
// its plain-AMF level.
func TestExplainFloorBound(t *testing.T) {
	in := sharingIncentiveInstance()
	sv := NewSolver()
	floors := EqualShares(in)
	a, err := sv.EnhancedAMF(in)
	if err != nil {
		t.Fatal(err)
	}
	ex := Explain(in, a.Share, floors)
	x := ex.Jobs[0]
	if !x.FloorBound {
		t.Fatalf("job X not floor-bound: %+v", x)
	}
	if x.Limit != ExplainFloorBound {
		t.Fatalf("job X limit = %s, want floor-bound", x.Limit)
	}
	checkExplanation(t, in, a, ex)
}

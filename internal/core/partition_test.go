package core

import (
	"math"
	"math/rand"
	"testing"
)

// randSparseInstance assembles an instance from several independent blocks
// (jobs demanding only within their block's site range), then shuffles the
// global site and job order so component discovery cannot rely on
// contiguity. It sprinkles in zero-demand jobs and sites no job touches.
// The returned block count is a lower bound on the true component count
// (a block may itself be internally disconnected).
func randSparseInstance(rng *rand.Rand, weighted bool) (*Instance, int) {
	blocks := 1 + rng.Intn(6)
	type span struct{ js, je, ss, se int } // job/site ranges per block
	var spans []span
	nj, ns := 0, 0
	for b := 0; b < blocks; b++ {
		bj := 1 + rng.Intn(5)
		bs := 1 + rng.Intn(4)
		spans = append(spans, span{nj, nj + bj, ns, ns + bs})
		nj += bj
		ns += bs
	}
	deadJobs := rng.Intn(3)    // all-zero demand
	unusedSites := rng.Intn(3) // capacity no job can reach
	n, m := nj+deadJobs, ns+unusedSites

	sitePerm := rng.Perm(m)
	jobPerm := rng.Perm(n)
	in := &Instance{
		SiteCapacity: make([]float64, m),
		Demand:       make([][]float64, n),
	}
	for j := range in.Demand {
		in.Demand[j] = make([]float64, m)
	}
	for s := 0; s < m; s++ {
		in.SiteCapacity[sitePerm[s]] = 0.5 + rng.Float64()*9.5
	}
	for _, sp := range spans {
		for j := sp.js; j < sp.je; j++ {
			bs := sp.se - sp.ss
			k := 1 + rng.Intn(bs)
			for _, off := range rng.Perm(bs)[:k] {
				in.Demand[jobPerm[j]][sitePerm[sp.ss+off]] = 0.1 + rng.Float64()*4.9
			}
		}
	}
	if weighted {
		in.Weight = make([]float64, n)
		for j := range in.Weight {
			in.Weight[j] = 0.5 + rng.Float64()*3.5
		}
	}
	return in, blocks
}

// TestDecomposedMatchesMonolithic is the equivalence property test: on
// random sparse instances, the component-decomposed parallel solve and the
// monolithic solve produce the same AMF aggregate vector (the AMF vector
// is unique; the per-site split is only a witness). Run under -race in CI,
// this also exercises the merge and the scratch pool for data races.
func TestDecomposedMatchesMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dec := &Solver{}                  // decomposed, parallel (default)
	mono := &Solver{Monolithic: true} // single network
	for trial := 0; trial < 200; trial++ {
		in, blocks := randSparseInstance(rng, trial%2 == 1)
		tol := 1e-9 * in.Scale()
		for _, enhanced := range []bool{false, true} {
			solve := func(sv *Solver) *Allocation {
				t.Helper()
				var a *Allocation
				var err error
				if enhanced {
					a, err = sv.EnhancedAMF(in)
				} else {
					a, err = sv.AMF(in)
				}
				if err != nil {
					t.Fatalf("trial %d (enhanced=%v): %v", trial, enhanced, err)
				}
				return a
			}
			got := solve(dec)
			want := solve(mono)
			for j := range want.Share {
				if d := math.Abs(got.Aggregate(j) - want.Aggregate(j)); d > tol {
					t.Fatalf("trial %d (enhanced=%v, blocks=%d): job %d aggregate %g (decomposed) vs %g (monolithic), |diff| %g > %g",
						trial, enhanced, blocks, j, got.Aggregate(j), want.Aggregate(j), d, tol)
				}
			}
			if err := got.CheckFeasible(1e-6 * in.Scale()); err != nil {
				t.Fatalf("trial %d: decomposed allocation infeasible: %v", trial, err)
			}
			if st := dec.LastStats(); st.Components < blocks {
				t.Fatalf("trial %d: LastStats reports %d components, block construction guarantees >= %d",
					trial, st.Components, blocks)
			}
		}
	}
}

// TestSingleComponentTakesMonolithicPath checks that a fully connected
// instance bypasses decomposition entirely: the default solver must report
// one component and produce a split bit-for-bit identical to the
// explicitly monolithic solver (same code path, same arithmetic).
func TestSingleComponentTakesMonolithicPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := &Instance{
		SiteCapacity: []float64{3, 4, 2},
		Demand:       make([][]float64, 12),
	}
	for j := range in.Demand {
		in.Demand[j] = make([]float64, 3)
		for s := range in.Demand[j] {
			in.Demand[j][s] = 0.1 + rng.Float64()*2
		}
	}
	dec := &Solver{}
	mono := &Solver{Monolithic: true}
	got, err := dec.AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mono.AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want.Share {
		for s := range want.Share[j] {
			if got.Share[j][s] != want.Share[j][s] {
				t.Fatalf("job %d site %d: decomposed-path share %g != monolithic %g (single component must take the identical path)",
					j, s, got.Share[j][s], want.Share[j][s])
			}
		}
	}
	st := dec.LastStats()
	if st.Components != 1 {
		t.Fatalf("Components = %d, want 1", st.Components)
	}
	if st.LargestComponent != in.NumJobs() {
		t.Fatalf("LargestComponent = %d, want %d", st.LargestComponent, in.NumJobs())
	}
	if st.Speedup != 1 {
		t.Fatalf("Speedup = %g, want 1 on the monolithic path", st.Speedup)
	}
}

// TestDecomposedZeroDemandAndUnusedSites checks the degenerate shapes the
// partitioner must tolerate: jobs with no demand anywhere (no component),
// sites no job touches, and a zero-capacity site inside a component.
func TestDecomposedZeroDemandAndUnusedSites(t *testing.T) {
	in := &Instance{
		//              comp0  comp0  comp1  unused  comp1(zero cap)
		SiteCapacity: []float64{2, 1, 3, 5, 0},
		Demand: [][]float64{
			{1, 2, 0, 0, 0}, // comp 0
			{2, 0, 0, 0, 0}, // comp 0
			{0, 0, 4, 0, 1}, // comp 1
			{0, 0, 0, 0, 0}, // zero demand: no component
			{0, 0, 2, 0, 0}, // comp 1
		},
	}
	sv := &Solver{}
	a, err := sv.AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	if st := sv.LastStats(); st.Components != 2 {
		t.Fatalf("Components = %d, want 2", st.Components)
	}
	if agg := a.Aggregate(3); agg != 0 {
		t.Fatalf("zero-demand job got aggregate %g, want 0", agg)
	}
	mono, err := (&Solver{Monolithic: true}).AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	tol := 1e-9 * in.Scale()
	for j := range mono.Share {
		approx(t, a.Aggregate(j), mono.Aggregate(j), tol, "aggregate")
	}
	checkAMFInvariants(t, in, a)
}

// TestDecomposedSequential pins the Parallelism=1 path (worker pool of
// one) to the parallel default.
func TestDecomposedSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in, _ := randSparseInstance(rng, true)
	seq := &Solver{Parallelism: 1}
	par := &Solver{}
	a1, err := seq.AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := par.AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	tol := 1e-9 * in.Scale()
	for j := range a1.Share {
		approx(t, a2.Aggregate(j), a1.Aggregate(j), tol, "aggregate")
	}
}

// TestWarmSolverReuse checks that a solver's pooled scratch (network
// arena, checkpoint buffers) does not leak state between solves: the same
// instance re-solved warm is bit-identical to the cold solve, including
// after an interleaved solve of a differently-shaped instance and after
// Reset.
func TestWarmSolverReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	big := randWeightedInstance(rng, 40, 8)
	small := randInstance(rng, 3, 2)
	sv := &Solver{Monolithic: true} // one network, maximal arena reuse
	cold, err := sv.AMF(big)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv.AMF(small); err != nil {
		t.Fatal(err)
	}
	warm, err := sv.AMF(big)
	if err != nil {
		t.Fatal(err)
	}
	for j := range cold.Share {
		for s := range cold.Share[j] {
			if warm.Share[j][s] != cold.Share[j][s] {
				t.Fatalf("job %d site %d: warm share %g != cold %g", j, s, warm.Share[j][s], cold.Share[j][s])
			}
		}
	}
	sv.Reset()
	after, err := sv.AMF(big)
	if err != nil {
		t.Fatal(err)
	}
	for j := range cold.Share {
		for s := range cold.Share[j] {
			if after.Share[j][s] != cold.Share[j][s] {
				t.Fatalf("job %d site %d: post-Reset share %g != cold %g", j, s, after.Share[j][s], cold.Share[j][s])
			}
		}
	}
}

// TestComponentsLabeling pins the union-find labeling itself.
func TestComponentsLabeling(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{1, 1, 1, 1},
		Demand: [][]float64{
			{1, 0, 0, 0},
			{0, 0, 1, 0},
			{1, 1, 0, 0},
			{0, 0, 0, 0},
			{0, 1, 0, 0}, // bridges to comp of jobs 0,2 via site 1
		},
	}
	comp, ncomp := components(in)
	if ncomp != 2 {
		t.Fatalf("ncomp = %d, want 2", ncomp)
	}
	if comp[3] != -1 {
		t.Fatalf("zero-demand job labeled %d, want -1", comp[3])
	}
	if comp[0] != comp[2] || comp[0] != comp[4] {
		t.Fatalf("jobs 0,2,4 should share a component: %v", comp)
	}
	if comp[1] == comp[0] {
		t.Fatalf("job 1 should be its own component: %v", comp)
	}
}

package core

import (
	"math"
	"testing"
)

func TestDemandSites(t *testing.T) {
	got := DemandSites([]float64{0, 1.5, 0, 2, 0.25})
	want := []int{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("DemandSites = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DemandSites = %v, want %v", got, want)
		}
	}
	if s := DemandSites([]float64{0, 0}); s != nil {
		t.Fatalf("zero demand: got %v, want nil", s)
	}
}

func TestShardKeyStable(t *testing.T) {
	if _, ok := ShardKey(nil); ok {
		t.Fatal("empty footprint should have no key")
	}
	k1, ok := ShardKey([]int{7, 3, 9})
	if !ok {
		t.Fatal("footprint should have a key")
	}
	// The key depends only on the smallest site, so overlapping footprints
	// anchored at the same site agree.
	k2, _ := ShardKey([]int{3, 12})
	if k1 != k2 {
		t.Fatalf("keys for footprints sharing min site differ: %d vs %d", k1, k2)
	}
	k3, _ := ShardKey([]int{4, 12})
	if k1 == k3 {
		t.Fatal("keys for different anchor sites should differ")
	}
}

func TestShardOfSpread(t *testing.T) {
	if ShardOf(123, 1) != 0 || ShardOf(123, 0) != 0 {
		t.Fatal("degenerate shard counts must map to 0")
	}
	seen := map[int]bool{}
	for s := 0; s < 64; s++ {
		k, _ := ShardKey([]int{s})
		sh := ShardOf(k, 4)
		if sh < 0 || sh >= 4 {
			t.Fatalf("ShardOf out of range: %d", sh)
		}
		seen[sh] = true
	}
	if len(seen) != 4 {
		t.Fatalf("64 anchor sites hit only %d of 4 shards", len(seen))
	}
}

// TestEqualSharesExternalWeight is the sharding correctness kernel: slicing
// an instance's jobs across shards that each carry the full capacity vector
// and the complementary weight as ExternalWeight must reproduce the global
// equal-share floors exactly.
func TestEqualSharesExternalWeight(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{4, 2, 3},
		Demand: [][]float64{
			{2, 0, 0},
			{1, 1, 0},
			{0, 0, 5},
			{0, 3, 1},
		},
		Weight: []float64{1, 2, 0.5, 3},
	}
	global := EqualShares(in)

	for lo := 1; lo < in.NumJobs(); lo++ {
		shard := &Instance{
			SiteCapacity: in.SiteCapacity,
			Demand:       in.Demand[lo:],
			Weight:       in.Weight[lo:],
		}
		for j := 0; j < lo; j++ {
			shard.ExternalWeight += in.Weight[j]
		}
		got := EqualShares(shard)
		for j := range got {
			if math.Abs(got[j]-global[lo+j]) > 1e-12 {
				t.Fatalf("shard split at %d: job %d floor %g, global %g", lo, lo+j, got[j], global[lo+j])
			}
		}
	}
}

func TestValidateExternalWeight(t *testing.T) {
	in := &Instance{SiteCapacity: []float64{1}, Demand: [][]float64{{1}}}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		in.ExternalWeight = bad
		if err := in.Validate(); err == nil {
			t.Fatalf("external weight %g should fail validation", bad)
		}
	}
	in.ExternalWeight = 2.5
	if err := in.Validate(); err != nil {
		t.Fatalf("valid external weight rejected: %v", err)
	}
	if got := in.Clone().ExternalWeight; got != 2.5 {
		t.Fatalf("Clone dropped ExternalWeight: %g", got)
	}
}

package core

import (
	"math"
	"sort"

	"repro/internal/maxflow"
)

// jctMaxTheta is the largest stretch the add-on searches; allocations whose
// aggregates cannot realize any finite completion time for some job (all of
// a work site's capacity pinned elsewhere) fall back to the witness split.
const jctMaxTheta = 1e6

// jctStuckTheta is the stretch beyond which a job is treated as stuck: if
// a job cannot be served at every work site even when allowed a 1e4x
// slowdown, holding a sliver of capacity for it only distorts the min-max
// search, so it is excluded from the optimization (its shares stay free).
const jctStuckTheta = 1e4

// OptimizeJCT redistributes each job's aggregate allocation across sites to
// reduce job completion times, holding the aggregate vector of base fixed
// (so AMF fairness is untouched). It minimizes the maximum completion-time
// stretch over jobs, then greedily tightens individual jobs within the
// remaining slack, approximating the lexicographic minimum.
//
// Completion times use the fluid model: job j with share a[j][s] finishes
// its site-s work in Work[j][s]/a[j][s]; its completion time is the max
// over sites; its stretch divides that by the best time achievable with the
// same aggregate (TotalWork/Aggregate).
//
// If no finite stretch is jointly feasible the witness split from base is
// returned unchanged.
func (sv *Solver) OptimizeJCT(base *Allocation) (*Allocation, error) {
	in := base.Inst
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := in.NumJobs()
	agg := base.Aggregates()
	scale := in.Scale()
	tol := sv.eps() * scale

	// Jobs participating in stretch optimization: positive aggregate,
	// positive work, and a finite per-job minimal stretch.
	thetaMin := make([]float64, n)
	included := make([]bool, n)
	for j := 0; j < n; j++ {
		W := in.TotalWork(j)
		if agg[j] <= tol || W <= 0 {
			continue
		}
		tm := 1.0
		finite := true
		for s := range in.SiteCapacity {
			w := in.JobWork(j, s)
			if w <= 0 {
				continue
			}
			d := in.Demand[j][s]
			if d <= 0 {
				finite = false
				break
			}
			// theta_j >= w*A/(W*d) keeps the lower bound within demand.
			tm = math.Max(tm, w*agg[j]/(W*d))
		}
		if finite {
			included[j] = true
			thetaMin[j] = tm
		}
	}

	solve := func(theta []float64) (*Allocation, bool) {
		return sv.jctFeasible(in, agg, included, theta)
	}

	// Phase 0: exclude stuck jobs — those that cannot be served at every
	// work site even alone at jctStuckTheta. Their lower bounds would pin
	// the global min-max stretch at meaningless magnitudes.
	if !sv.SkipJCTRefine {
		for j := 0; j < n; j++ {
			if !included[j] {
				continue
			}
			probe := make([]float64, n)
			solo := make([]bool, n)
			solo[j] = true
			probe[j] = math.Max(jctStuckTheta, thetaMin[j])
			if _, ok := sv.jctFeasible(in, agg, solo, probe); !ok {
				included[j] = false
			}
		}
	}

	// Phase 1: global min-max stretch by binary search.
	theta := make([]float64, n)
	set := func(v float64) []float64 {
		for j := range theta {
			if included[j] {
				theta[j] = math.Max(v, thetaMin[j])
			}
		}
		return theta
	}
	if _, ok := solve(set(jctMaxTheta)); !ok {
		// Some job's work sits at a site whose capacity is entirely pinned
		// elsewhere, so no finite completion time is jointly realizable for
		// the full set. Exclude the stuck jobs individually and retry; if
		// the remainder still cannot be served, keep the witness split.
		for j := 0; j < n; j++ {
			if !included[j] {
				continue
			}
			probe := make([]float64, n)
			solo := make([]bool, n)
			solo[j] = true
			probe[j] = jctMaxTheta
			if _, ok := sv.jctFeasible(in, agg, solo, probe); !ok {
				included[j] = false
			}
		}
		if _, ok := solve(set(jctMaxTheta)); !ok {
			return base.Clone(), nil
		}
	}
	lo := 1.0
	for j := 0; j < n; j++ {
		if included[j] {
			lo = math.Max(lo, thetaMin[j])
		}
	}
	hiTheta := jctMaxTheta
	loTheta := lo
	if _, ok := solve(set(loTheta)); ok {
		hiTheta = loTheta
	} else {
		for hiTheta/loTheta > 1.0+1e-4 {
			mid := math.Sqrt(hiTheta * loTheta)
			if _, ok := solve(set(mid)); ok {
				hiTheta = mid
			} else {
				loTheta = mid
			}
		}
	}
	bounds := make([]float64, n)
	for j := 0; j < n; j++ {
		if included[j] {
			bounds[j] = math.Max(hiTheta, thetaMin[j])
		}
	}

	if sv.SkipJCTRefine {
		out, ok := solve(bounds)
		if !ok {
			return base.Clone(), nil
		}
		return out, nil
	}

	// Phase 2: tighten individual jobs within the global bound, hardest
	// (largest minimal stretch) first.
	order := make([]int, 0, n)
	for j := 0; j < n; j++ {
		if included[j] {
			order = append(order, j)
		}
	}
	sort.Slice(order, func(a, b int) bool { return thetaMin[order[a]] > thetaMin[order[b]] })
	for _, j := range order {
		lo, hi := thetaMin[j], bounds[j]
		if hi/lo <= 1.0+1e-4 {
			continue
		}
		probe := append([]float64(nil), bounds...)
		probe[j] = lo
		if _, ok := solve(probe); ok {
			bounds[j] = lo
			continue
		}
		for hi/lo > 1.0+1e-3 {
			mid := math.Sqrt(hi * lo)
			probe[j] = mid
			if _, ok := solve(probe); ok {
				hi = mid
			} else {
				lo = mid
			}
		}
		bounds[j] = hi
	}

	out, ok := solve(bounds)
	if !ok {
		// Should not happen: bounds were verified feasible along the way.
		return base.Clone(), nil
	}
	return out, nil
}

// jctFeasible tests whether shares exist that (a) meet every job's pinned
// aggregate, (b) respect demands and capacities, and (c) give each included
// job j at least Work[j][s]*A_j/(theta_j*W_j) at every site with work, so
// its stretch is at most theta_j. On success it returns the allocation.
func (sv *Solver) jctFeasible(in *Instance, agg []float64, included []bool, theta []float64) (*Allocation, bool) {
	n := in.NumJobs()
	m := in.NumSites()
	scale := in.Scale()
	eps := math.Max(1e-9*scale, 1e-15)

	src := 0
	jobNode := func(j int) int { return 1 + j }
	siteNode := func(s int) int { return 1 + n + s }
	sink := 1 + n + m

	var edges []maxflow.BoundedEdge
	type ref struct{ j, s, idx int }
	var refs []ref
	for j := 0; j < n; j++ {
		if agg[j] <= 0 {
			continue
		}
		edges = append(edges, maxflow.BoundedEdge{
			From: src, To: jobNode(j), Lower: agg[j], Upper: agg[j],
		})
		W := in.TotalWork(j)
		for s := 0; s < m; s++ {
			d := in.Demand[j][s]
			if d <= 0 {
				continue
			}
			lower := 0.0
			if included[j] && theta[j] > 0 && W > 0 {
				if w := in.JobWork(j, s); w > 0 {
					lower = math.Min(w*agg[j]/(theta[j]*W), d)
				}
			}
			if lower < 100*eps {
				// A bound this small is numerically indistinguishable from
				// zero and would destabilize the circulation transform.
				lower = 0
			}
			refs = append(refs, ref{j: j, s: s, idx: len(edges)})
			edges = append(edges, maxflow.BoundedEdge{
				From: jobNode(j), To: siteNode(s), Lower: lower, Upper: d,
			})
		}
	}
	for s := 0; s < m; s++ {
		edges = append(edges, maxflow.BoundedEdge{
			From: siteNode(s), To: sink, Lower: 0, Upper: in.SiteCapacity[s],
		})
	}
	flows, ok := maxflow.FeasibleFlow(2+n+m, src, sink, edges, eps)
	if !ok {
		return nil, false
	}
	alloc := NewAllocation(in)
	for _, r := range refs {
		f := flows[r.idx]
		if f < 10*eps {
			// Numerical dust masquerades as a served work site and turns
			// infinite completion times into astronomically finite ones.
			f = 0
		}
		alloc.Share[r.j][r.s] = f
	}
	return alloc, true
}

// AMFWithJCT computes the AMF allocation and applies the completion-time
// add-on to its per-site split.
func (sv *Solver) AMFWithJCT(in *Instance) (*Allocation, error) {
	base, err := sv.AMF(in)
	if err != nil {
		return nil, err
	}
	return sv.OptimizeJCT(base)
}

package core

import (
	"fmt"
	"math"
)

// Allocation holds a per-job, per-site resource assignment for an instance.
type Allocation struct {
	Inst  *Instance
	Share [][]float64 // Share[j][s] = resource given to job j at site s
}

// NewAllocation returns an all-zero allocation for the instance.
func NewAllocation(in *Instance) *Allocation {
	share := make([][]float64, in.NumJobs())
	for j := range share {
		share[j] = make([]float64, in.NumSites())
	}
	return &Allocation{Inst: in, Share: share}
}

// Clone returns a deep copy sharing the same instance.
func (a *Allocation) Clone() *Allocation {
	return &Allocation{Inst: a.Inst, Share: cloneMatrix(a.Share)}
}

// Aggregate reports A_j, job j's total allocation across all sites.
func (a *Allocation) Aggregate(j int) float64 {
	var t float64
	for _, v := range a.Share[j] {
		t += v
	}
	return t
}

// Aggregates reports the vector of per-job aggregate allocations.
func (a *Allocation) Aggregates() []float64 {
	out := make([]float64, len(a.Share))
	for j := range a.Share {
		out[j] = a.Aggregate(j)
	}
	return out
}

// SiteLoad reports the total resource handed out at site s.
func (a *Allocation) SiteLoad(s int) float64 {
	var t float64
	for j := range a.Share {
		t += a.Share[j][s]
	}
	return t
}

// Utilization reports the fraction of total capacity allocated.
func (a *Allocation) Utilization() float64 {
	total := a.Inst.TotalCapacity()
	if total == 0 {
		return 0
	}
	var used float64
	for s := range a.Inst.SiteCapacity {
		used += a.SiteLoad(s)
	}
	return used / total
}

// CompletionTime reports job j's fluid completion time under static rates:
// max over sites of work/rate. Sites with work but no allocation yield +Inf;
// a job with no work completes at time 0.
func (a *Allocation) CompletionTime(j int) float64 {
	var t float64
	for s := range a.Inst.SiteCapacity {
		w := a.Inst.JobWork(j, s)
		if w <= 0 {
			continue
		}
		r := a.Share[j][s]
		if r <= 0 {
			return math.Inf(1)
		}
		t = math.Max(t, w/r)
	}
	return t
}

// Stretch reports job j's completion-time stretch: its fluid completion
// time divided by the best completion time achievable with the same
// aggregate (TotalWork/Aggregate). Returns 1 for jobs with no work and +Inf
// for jobs with work but a zero aggregate.
func (a *Allocation) Stretch(j int) float64 {
	w := a.Inst.TotalWork(j)
	if w <= 0 {
		return 1
	}
	agg := a.Aggregate(j)
	if agg <= 0 {
		return math.Inf(1)
	}
	ideal := w / agg
	return a.CompletionTime(j) / ideal
}

// CheckFeasible verifies demand caps, site capacities and non-negativity
// within tolerance tol (absolute, in resource units).
func (a *Allocation) CheckFeasible(tol float64) error {
	in := a.Inst
	if len(a.Share) != in.NumJobs() {
		return fmt.Errorf("core: allocation has %d rows for %d jobs", len(a.Share), in.NumJobs())
	}
	for j, row := range a.Share {
		if len(row) != in.NumSites() {
			return fmt.Errorf("core: job %d row has %d entries for %d sites", j, len(row), in.NumSites())
		}
		for s, v := range row {
			if v < -tol {
				return fmt.Errorf("core: job %d site %d has negative share %g", j, s, v)
			}
			if v > in.Demand[j][s]+tol {
				return fmt.Errorf("core: job %d site %d share %g exceeds demand %g",
					j, s, v, in.Demand[j][s])
			}
		}
	}
	for s := range in.SiteCapacity {
		if load := a.SiteLoad(s); load > in.SiteCapacity[s]+tol {
			return fmt.Errorf("core: site %d load %g exceeds capacity %g",
				s, load, in.SiteCapacity[s])
		}
	}
	return nil
}

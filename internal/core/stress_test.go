package core

import (
	"math"
	"math/rand"
	"testing"
)

// Adversarial and numerically extreme instances for the progressive
// filling machinery: exact ties, degenerate bottleneck cascades, and
// magnitude spreads that stress the epsilon handling.

func TestAMFManyIdenticalJobs(t *testing.T) {
	// 50 identical jobs on one site: one bottleneck freezing everyone.
	n := 50
	in := &Instance{
		SiteCapacity: []float64{10},
		Demand:       make([][]float64, n),
	}
	for j := range in.Demand {
		in.Demand[j] = []float64{5}
	}
	a, err := NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		approx(t, a.Aggregate(j), 0.2, 1e-6, "identical job share")
	}
}

func TestAMFBottleneckCascade(t *testing.T) {
	// A chain of sites with capacities 1, 2, 4, 8...; job k pinned to site
	// k, plus one flexible job spanning all. Each site freezes at its own
	// level: many distinct rounds.
	m := 8
	in := &Instance{
		SiteCapacity: make([]float64, m),
		Demand:       make([][]float64, m+1),
	}
	for s := 0; s < m; s++ {
		in.SiteCapacity[s] = math.Pow(2, float64(s))
	}
	for j := 0; j < m; j++ {
		in.Demand[j] = make([]float64, m)
		in.Demand[j][j] = 1e9 // effectively unbounded
	}
	in.Demand[m] = make([]float64, m)
	for s := 0; s < m; s++ {
		in.Demand[m][s] = 1e9
	}
	a, err := NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	checkAMFInvariants(t, in, a)
	// The pinned job at site 0 shares capacity 1 with the flexible job's
	// claim; levels must be nondecreasing in site index for pinned jobs.
	prev := -1.0
	for j := 0; j < m; j++ {
		if a.Aggregate(j) < prev-1e-6 {
			t.Fatalf("pinned levels not monotone: job %d got %g after %g",
				j, a.Aggregate(j), prev)
		}
		prev = a.Aggregate(j)
	}
}

func TestAMFExtremeMagnitudeSpread(t *testing.T) {
	// Capacities and demands spanning 9 orders of magnitude.
	in := &Instance{
		SiteCapacity: []float64{1e-3, 1e6},
		Demand: [][]float64{
			{1e-3, 0},
			{1e-3, 1e6},
			{0, 1e6},
		},
	}
	a, err := NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckFeasible(1e-6 * in.Scale()); err != nil {
		t.Fatal(err)
	}
	// Site 1 dominates: jobs 1 and 2 split it evenly; job 0 shares the
	// tiny site with job 1's claim there (which job 1 does not need).
	approx(t, a.Aggregate(1), 5e5, 1e-2*in.Scale(), "big flexible job")
	approx(t, a.Aggregate(2), 5e5, 1e-2*in.Scale(), "big pinned job")
	if a.Aggregate(0) < 1e-3-1e-9 {
		t.Fatalf("tiny job starved: %g", a.Aggregate(0))
	}
}

func TestAMFTinyCapacities(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{1e-9, 1e-9},
		Demand: [][]float64{
			{1e-9, 1e-9},
			{1e-9, 0},
		},
	}
	a, err := NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckFeasible(1e-15); err != nil {
		t.Fatal(err)
	}
	approx(t, a.Aggregate(0), 1e-9, 1e-12, "tiny flexible")
	approx(t, a.Aggregate(1), 1e-9, 1e-12, "tiny pinned")
}

func TestAMFNearTieBottlenecks(t *testing.T) {
	// Two independent site groups whose bottleneck levels differ by 1e-9:
	// freezing must not mix them up.
	in := &Instance{
		SiteCapacity: []float64{1, 1 + 2e-9},
		Demand: [][]float64{
			{9, 0},
			{9, 0},
			{0, 9},
			{0, 9},
		},
	}
	a, err := NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, a.Aggregate(0), 0.5, 1e-6, "group A")
	approx(t, a.Aggregate(2), 0.5+1e-9, 1e-6, "group B")
	if err := a.CheckFeasible(1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestAMFLargeInstanceSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	rng := rand.New(rand.NewSource(401))
	in := randInstance(rng, 500, 30)
	a, err := NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckFeasible(1e-5 * in.Scale()); err != nil {
		t.Fatal(err)
	}
	if !IsParetoEfficient(a, 1e-4*in.Scale()*float64(in.NumJobs()+1)) {
		t.Fatal("large instance not Pareto efficient")
	}
	// Cross-check a handful of jobs with the max-min certificate (the full
	// check would be O(n) max-flows).
	nw := a.Aggregates()
	_ = nw
	bis, err := (&Solver{Method: MethodBisect}).AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < in.NumJobs(); j += 50 {
		if math.Abs(a.Aggregate(j)-bis.Aggregate(j)) > 1e-4*in.Scale() {
			t.Fatalf("job %d: newton %g vs bisect %g", j, a.Aggregate(j), bis.Aggregate(j))
		}
	}
}

func TestEnhancedAMFOnCascade(t *testing.T) {
	// Floors interact with multiple bottleneck rounds.
	in := &Instance{
		SiteCapacity: []float64{1, 4},
		Demand: [][]float64{
			{3, 0},
			{3, 0},
			{3, 4},
			{0, 4},
		},
	}
	a, err := NewSolver().EnhancedAMF(in)
	if err != nil {
		t.Fatal(err)
	}
	es := EqualShares(in)
	for j := range es {
		if a.Aggregate(j) < es[j]-1e-6 {
			t.Fatalf("job %d below floor %g: %g", j, es[j], a.Aggregate(j))
		}
	}
	if err := a.CheckFeasible(1e-6 * in.Scale()); err != nil {
		t.Fatal(err)
	}
}

func TestSolverEpsOverride(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{3},
		Demand:       [][]float64{{2}, {2}},
	}
	sv := &Solver{Eps: 1e-12}
	a, err := sv.AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, a.Aggregate(0), 1.5, 1e-9, "tight-eps solve")
}

func TestMaxNewtonIterFallback(t *testing.T) {
	// Forcing Newton to give up after one iteration must still produce the
	// right answer via the bisection fallback.
	rng := rand.New(rand.NewSource(409))
	in := randInstance(rng, 12, 5)
	sv := &Solver{MaxNewtonIter: 1}
	a, err := sv.AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Share {
		if math.Abs(a.Aggregate(j)-ref.Aggregate(j)) > 1e-4*in.Scale() {
			t.Fatalf("job %d: fallback %g vs reference %g",
				j, a.Aggregate(j), ref.Aggregate(j))
		}
	}
}

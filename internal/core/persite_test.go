package core

import (
	"math/rand"
	"testing"
)

func TestPerSiteMMFSingleSite(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{10},
		Demand:       [][]float64{{2}, {4}, {10}},
	}
	a := PerSiteMMF(in)
	for j, want := range []float64{2, 4, 4} {
		approx(t, a.Aggregate(j), want, 1e-9, "aggregate")
	}
}

func TestPerSiteMMFIndependentSites(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{2, 2},
		Demand: [][]float64{
			{2, 2},
			{2, 0},
		},
	}
	a := PerSiteMMF(in)
	// Site 0 split 1/1; site 1 entirely to job 0.
	approx(t, a.Share[0][0], 1, 1e-9, "job0 site0")
	approx(t, a.Share[1][0], 1, 1e-9, "job1 site0")
	approx(t, a.Share[0][1], 2, 1e-9, "job0 site1")
	approx(t, a.Aggregate(0), 3, 1e-9, "job0 aggregate")
	approx(t, a.Aggregate(1), 1, 1e-9, "job1 aggregate")
}

func TestPerSiteMMFIgnoresAggregateImbalance(t *testing.T) {
	// The baseline's defining weakness (the paper's motivation): a job
	// pinned to one contested site is not compensated elsewhere.
	in := &Instance{
		SiteCapacity: []float64{1, 1},
		Demand: [][]float64{
			{1, 1}, // flexible job
			{1, 0}, // pinned job
		},
	}
	ps := PerSiteMMF(in)
	approx(t, ps.Aggregate(0), 1.5, 1e-9, "flexible job under PS-MMF")
	approx(t, ps.Aggregate(1), 0.5, 1e-9, "pinned job under PS-MMF")

	amf, err := NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, amf.Aggregate(0), 1, 1e-6, "flexible job under AMF")
	approx(t, amf.Aggregate(1), 1, 1e-6, "pinned job under AMF")
}

func TestPerSiteMMFFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(149))
	for trial := 0; trial < 50; trial++ {
		in := randInstance(rng, 2+rng.Intn(10), 1+rng.Intn(6))
		a := PerSiteMMF(in)
		if err := a.CheckFeasible(1e-9 * in.Scale()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPerSiteMMFParetoEfficient(t *testing.T) {
	// Per-site water-filling exhausts each site up to demand, so it is
	// Pareto efficient site by site... but NOT necessarily in aggregate
	// terms: it always allocates min(c_s, sum d_js) at each site, which is
	// the maximum total. So total-wise it matches MaxTotalAllocation only
	// when no cross-site routing could serve more demand. Here we only
	// check feasible totals never exceed the max.
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 30; trial++ {
		in := randInstance(rng, 2+rng.Intn(8), 1+rng.Intn(5))
		a := PerSiteMMF(in)
		var total float64
		for j := range a.Share {
			total += a.Aggregate(j)
		}
		if max := MaxTotalAllocation(in); total > max+1e-6*in.Scale()*float64(in.NumJobs()) {
			t.Fatalf("trial %d: total %g exceeds max %g", trial, total, max)
		}
	}
}

func TestPerSiteMMFWeighted(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{6},
		Demand:       [][]float64{{10}, {10}},
		Weight:       []float64{1, 2},
	}
	a := PerSiteMMF(in)
	approx(t, a.Aggregate(0), 2, 1e-9, "weight-1")
	approx(t, a.Aggregate(1), 4, 1e-9, "weight-2")
}

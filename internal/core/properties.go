package core

import (
	"math"
	"math/rand"
)

// AllocatorFunc computes an allocation for an instance; used by the
// strategy-proofness prober so that any policy (AMF, Enhanced AMF, PS-MMF)
// can be probed uniformly.
type AllocatorFunc func(*Instance) (*Allocation, error)

// MisreportOutcome records the most profitable misreport found for one job.
type MisreportOutcome struct {
	Job         int
	TruthUseful float64 // useful allocation when reporting truthfully
	BestUseful  float64 // best useful allocation over all misreports tried
	Gain        float64 // BestUseful - TruthUseful
}

// UsefulAllocation measures what job j actually gets out of an allocation
// given its true per-site demands: shares beyond the true demand at a site
// are useless (the job has no work there to run).
func UsefulAllocation(a *Allocation, j int, trueDemand []float64) float64 {
	var v float64
	for s := range trueDemand {
		v += math.Min(a.Share[j][s], trueDemand[s])
	}
	return v
}

// ProbeStrategyProofness searches for profitable demand misreports under
// the given allocator. For each job it tries `trials` random misreports
// plus a fixed battery of structured ones (scaling, concentration,
// exaggeration, site dropping) and records the largest gain in useful
// allocation. A strategy-proof policy yields only non-positive gains (up to
// numerical tolerance).
func ProbeStrategyProofness(in *Instance, alloc AllocatorFunc, trials int, rng *rand.Rand) ([]MisreportOutcome, error) {
	truth, err := alloc(in)
	if err != nil {
		return nil, err
	}
	n := in.NumJobs()
	m := in.NumSites()
	out := make([]MisreportOutcome, 0, n)
	for j := 0; j < n; j++ {
		trueDemand := in.Demand[j]
		res := MisreportOutcome{
			Job:         j,
			TruthUseful: UsefulAllocation(truth, j, trueDemand),
		}
		res.BestUseful = res.TruthUseful

		try := func(report []float64) error {
			lied := in.Clone()
			copy(lied.Demand[j], report)
			if lied.Work != nil {
				// Work describes true outstanding work; a misreport only
				// changes the declared demand.
				copy(lied.Work[j], in.Work[j])
			}
			a, err := alloc(lied)
			if err != nil {
				return err
			}
			if u := UsefulAllocation(a, j, trueDemand); u > res.BestUseful {
				res.BestUseful = u
			}
			return nil
		}

		// Structured misreports.
		for _, f := range []float64{0.25, 0.5, 2, 4, 16} {
			report := make([]float64, m)
			for s := range report {
				report[s] = trueDemand[s] * f
			}
			if err := try(report); err != nil {
				return nil, err
			}
		}
		// Exaggerate to site capacity everywhere the job has any demand.
		report := make([]float64, m)
		for s := range report {
			if trueDemand[s] > 0 {
				report[s] = in.SiteCapacity[s]
			}
		}
		if err := try(report); err != nil {
			return nil, err
		}
		// Claim demand at every site (fabricating locality).
		for s := range report {
			report[s] = math.Max(trueDemand[s], in.SiteCapacity[s])
		}
		if err := try(report); err != nil {
			return nil, err
		}
		// Concentrate the total demand on each single site in turn.
		total := in.TotalDemand(j)
		for s := 0; s < m; s++ {
			if trueDemand[s] == 0 {
				continue
			}
			report := make([]float64, m)
			report[s] = total
			if err := try(report); err != nil {
				return nil, err
			}
		}
		// Random misreports.
		for k := 0; k < trials; k++ {
			report := make([]float64, m)
			for s := range report {
				switch rng.Intn(3) {
				case 0:
					report[s] = trueDemand[s] * rng.Float64() * 3
				case 1:
					report[s] = rng.Float64() * in.SiteCapacity[s]
				default:
					report[s] = trueDemand[s]
				}
			}
			if err := try(report); err != nil {
				return nil, err
			}
		}
		res.Gain = res.BestUseful - res.TruthUseful
		out = append(out, res)
	}
	return out, nil
}

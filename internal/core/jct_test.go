package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestOptimizeJCTPreservesAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(157))
	sv := NewSolver()
	for trial := 0; trial < 30; trial++ {
		in := randInstance(rng, 2+rng.Intn(6), 1+rng.Intn(4))
		base, err := sv.AMF(in)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := sv.OptimizeJCT(base)
		if err != nil {
			t.Fatal(err)
		}
		for j := range base.Share {
			if math.Abs(opt.Aggregate(j)-base.Aggregate(j)) > 1e-5*in.Scale() {
				t.Fatalf("trial %d job %d: aggregate changed %g -> %g",
					trial, j, base.Aggregate(j), opt.Aggregate(j))
			}
		}
		if err := opt.CheckFeasible(1e-5 * in.Scale()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestOptimizeJCTNeverWorsensMaxStretch(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	sv := NewSolver()
	for trial := 0; trial < 25; trial++ {
		in := randInstance(rng, 2+rng.Intn(6), 2+rng.Intn(4))
		base, err := sv.AMF(in)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := sv.OptimizeJCT(base)
		if err != nil {
			t.Fatal(err)
		}
		baseMax, optMax := 0.0, 0.0
		for j := range base.Share {
			baseMax = math.Max(baseMax, base.Stretch(j))
			optMax = math.Max(optMax, opt.Stretch(j))
		}
		if math.IsInf(baseMax, 1) {
			continue // witness had an unserved work site; nothing to compare
		}
		if optMax > baseMax*(1+1e-2)+1e-6 {
			t.Fatalf("trial %d: max stretch worsened %g -> %g", trial, baseMax, optMax)
		}
	}
}

func TestOptimizeJCTProportionalWhenUncontested(t *testing.T) {
	// A single job: the optimal split is proportional to work, stretch 1.
	in := &Instance{
		SiteCapacity: []float64{2, 2},
		Demand:       [][]float64{{2, 1}},
	}
	sv := NewSolver()
	opt, err := sv.AMFWithJCT(in)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate = 3 (demand-capped); proportional split is the demand.
	approx(t, opt.Aggregate(0), 3, 1e-5, "aggregate")
	if s := opt.Stretch(0); s > 1+1e-3 {
		t.Fatalf("stretch %g, want 1", s)
	}
}

func TestOptimizeJCTBalancesSkewedWitness(t *testing.T) {
	// Two symmetric jobs, two sites. One valid AMF witness puts job 0
	// entirely on site 0 and job 1 on site 1 -> each has stretch 2 if its
	// work is spread evenly. The add-on must find the stretch-1 split.
	in := &Instance{
		SiteCapacity: []float64{1, 1},
		Demand: [][]float64{
			{1, 1},
			{1, 1},
		},
	}
	sv := NewSolver()
	base, err := sv.AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	// Force the bad witness manually.
	bad := base.Clone()
	bad.Share[0][0], bad.Share[0][1] = 1, 0
	bad.Share[1][0], bad.Share[1][1] = 0, 1
	opt, err := sv.OptimizeJCT(bad)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		if s := opt.Stretch(j); s > 1+1e-2 {
			t.Fatalf("job %d stretch %g after optimization, want ~1", j, s)
		}
		approx(t, opt.Share[j][0], 0.5, 1e-2, "balanced share")
	}
}

func TestOptimizeJCTExplicitWork(t *testing.T) {
	// Work differs from demand: job 0's work is concentrated on site 1
	// although its demand is symmetric; the optimizer must weight the
	// split by work.
	in := &Instance{
		SiteCapacity: []float64{10, 1},
		Demand:       [][]float64{{1, 1}},
		Work:         [][]float64{{0.2, 0.8}},
	}
	opt, err := NewSolver().AMFWithJCT(in)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate 2 (demand-capped); proportional-to-work would be
	// (0.4, 1.6) but site 1 caps the share at min(demand,cap)=1. Minimal
	// stretch: a1 = 1 (site 1 full for this job), a0 = 1.
	approx(t, opt.Aggregate(0), 2, 1e-5, "aggregate")
	if opt.Share[0][1] < 0.99 {
		t.Fatalf("work-heavy site underallocated: %g", opt.Share[0][1])
	}
}

func TestOptimizeJCTStuckJobFallsBack(t *testing.T) {
	// Job 0 has work at site 1 whose capacity is entirely pinned by job 1's
	// aggregate (job 1 only lives there). No finite stretch exists for job
	// 0, but the call must still succeed and keep aggregates.
	in := &Instance{
		SiteCapacity: []float64{1, 1},
		Demand: [][]float64{
			{1, 1},
			{0, 4},
		},
	}
	sv := NewSolver()
	base, err := sv.AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := sv.OptimizeJCT(base)
	if err != nil {
		t.Fatal(err)
	}
	for j := range base.Share {
		if math.Abs(opt.Aggregate(j)-base.Aggregate(j)) > 1e-5 {
			t.Fatalf("aggregates changed for job %d", j)
		}
	}
}

func TestOptimizeJCTZeroAggregateJob(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{0, 1},
		Demand: [][]float64{
			{1, 0}, // can only use the zero-capacity site
			{0, 1},
		},
	}
	sv := NewSolver()
	opt, err := sv.AMFWithJCT(in)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, opt.Aggregate(0), 0, 1e-9, "starved job")
	approx(t, opt.Aggregate(1), 1, 1e-5, "served job")
}

func TestStretchAndCompletionTime(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{4, 4},
		Demand:       [][]float64{{2, 2}},
	}
	a := NewAllocation(in)
	a.Share[0][0], a.Share[0][1] = 2, 1
	// CT = max(2/2, 2/1) = 2; ideal = 4/3; stretch = 1.5.
	approx(t, a.CompletionTime(0), 2, 1e-9, "completion time")
	approx(t, a.Stretch(0), 1.5, 1e-9, "stretch")
}

func TestCompletionTimeUnserved(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{1, 1},
		Demand:       [][]float64{{1, 1}},
	}
	a := NewAllocation(in)
	a.Share[0][0] = 1 // nothing at site 1 although work exists there
	if !math.IsInf(a.CompletionTime(0), 1) {
		t.Fatal("expected infinite completion time")
	}
}

func TestCompletionTimeNoWork(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{1},
		Demand:       [][]float64{{0}},
	}
	a := NewAllocation(in)
	if ct := a.CompletionTime(0); ct != 0 {
		t.Fatalf("completion time %g, want 0", ct)
	}
	if s := a.Stretch(0); s != 1 {
		t.Fatalf("stretch %g, want 1", s)
	}
}

func TestAMFWithJCTReducesMeanStretchOnSkew(t *testing.T) {
	// A mildly adversarial instance where naive witnesses routinely leave
	// unbalanced splits; the add-on should bring mean stretch close to 1.
	rng := rand.New(rand.NewSource(167))
	sv := NewSolver()
	var worse, total int
	for trial := 0; trial < 20; trial++ {
		in := randInstance(rng, 4, 3)
		base, err := sv.AMF(in)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := sv.OptimizeJCT(base)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < in.NumJobs(); j++ {
			bs, os := base.Stretch(j), opt.Stretch(j)
			if math.IsInf(bs, 1) || math.IsInf(os, 1) {
				continue
			}
			total++
			if os > bs+1e-3 {
				worse++
			}
		}
	}
	// The add-on minimizes the max stretch then tightens individuals;
	// individual jobs may trade a little, but widespread worsening means a
	// bug.
	if worse*5 > total {
		t.Fatalf("%d of %d job stretches worsened", worse, total)
	}
}

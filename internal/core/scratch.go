package core

// solveScratch holds the per-solve working state of progressive filling:
// the flow network (graph arena), the advancing checkpoint, and the
// level/target vectors. Solvers pool scratches (see Solver.getScratch) so
// that a warm solver re-solving — the serving engine re-solves a nearly
// identical instance on every batch commit — reuses the arena instead of
// rebuilding every slice, arc list and checkpoint buffer from scratch. A
// scratch is also what each parallel component worker checks out, so the
// pool doubles as the per-worker arena during decomposed solves.
type solveScratch struct {
	nw network
	cp checkpoint
	// level is the frozen aggregate per job; targets the probe vector for a
	// common unfrozen level; total the per-job total demand; init the floor
	// vector of the initial feasible checkpoint; probe the slow-path freeze
	// probe buffer; frozen the per-job freeze flags.
	level   []float64
	targets []float64
	total   []float64
	init    []float64
	probe   []float64
	frozen  []bool
}

// resize readies the scratch for an n-job solve. Only level and frozen
// carry state between writes and reads, so only they are cleared; the rest
// are fully overwritten before first use.
func (scr *solveScratch) resize(n int) {
	if cap(scr.level) < n {
		scr.level = make([]float64, n)
		scr.targets = make([]float64, n)
		scr.total = make([]float64, n)
		scr.init = make([]float64, n)
		scr.probe = make([]float64, n)
		scr.frozen = make([]bool, n)
		return
	}
	scr.level = scr.level[:n]
	scr.targets = scr.targets[:n]
	scr.total = scr.total[:n]
	scr.init = scr.init[:n]
	scr.probe = scr.probe[:n]
	scr.frozen = scr.frozen[:n]
	for j := 0; j < n; j++ {
		scr.level[j] = 0
		scr.frozen[j] = false
	}
}

// getScratch checks a scratch out of the solver's pool (allocating a fresh
// one when the pool is empty). Safe for concurrent use.
func (sv *Solver) getScratch() *solveScratch {
	if s, ok := sv.scratch.Get().(*solveScratch); ok {
		return s
	}
	return &solveScratch{}
}

// putScratch returns a scratch to the pool. The instance reference is
// dropped so pooling a scratch never pins a retired instance; the arenas
// (graph arcs, adjacency, checkpoint buffers, vectors) stay warm.
func (sv *Solver) putScratch(scr *solveScratch) {
	scr.nw.in = nil
	sv.scratch.Put(scr)
}

// Reset drops the solver's pooled scratch state (network arenas, checkpoint
// buffers, probe vectors). A warm solver retains arenas sized for the last
// instances it solved; call Reset to release that memory when switching to
// a much smaller workload, or to return the solver to its cold state.
func (sv *Solver) Reset() {
	for sv.scratch.Get() != nil {
	}
}

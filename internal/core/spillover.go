package core

import "math"

// Spillover models a relaxation of hard data locality: a job may also be
// allocated resources at sites where it has no local work, processing
// remotely-fetched data at efficiency Gamma < 1 (WAN transfer overhead).
// The paper's model is the Gamma -> 0 limit (hard pinning); delay-
// scheduling-style systems operate between the extremes.
//
// The relaxed allocation problem stays a bipartite demand problem: each
// job's demand at every site grows by RemotePerSite units (the remote
// slots it could usefully occupy there), so the AMF machinery applies
// unchanged. Fairness is measured on raw resource aggregates; *useful*
// throughput discounts remote units by Gamma.
type Spillover struct {
	// RemotePerSite is the extra demand each job gains at every site
	// (including sites with local demand — remote slots there are
	// indistinguishable from extra local parallelism and are discounted
	// only for the work the job cannot feed locally).
	RemotePerSite float64
	// Gamma is the efficiency of a remote resource unit in (0, 1].
	Gamma float64
}

// Apply returns the relaxed instance: demand d'[j][s] = d[j][s] +
// RemotePerSite wherever the job has any work at all (a job with zero
// total demand gains nothing). Work is preserved.
func (sp Spillover) Apply(in *Instance) *Instance {
	out := in.Clone()
	for j := range out.Demand {
		if in.TotalDemand(j) <= 0 {
			continue
		}
		for s := range out.Demand[j] {
			out.Demand[j][s] += sp.RemotePerSite
		}
	}
	return out
}

// UsefulRate reports job j's locality-discounted processing rate under an
// allocation on the relaxed instance: shares within the original local
// demand count fully, surplus (remote) shares count Gamma each.
func (sp Spillover) UsefulRate(orig *Instance, a *Allocation, j int) float64 {
	var rate float64
	for s := range orig.SiteCapacity {
		local := math.Min(a.Share[j][s], orig.Demand[j][s])
		remote := math.Max(0, a.Share[j][s]-orig.Demand[j][s])
		rate += local + sp.Gamma*remote
	}
	return rate
}

// UsefulRates reports every job's locality-discounted rate.
func (sp Spillover) UsefulRates(orig *Instance, a *Allocation) []float64 {
	out := make([]float64, orig.NumJobs())
	for j := range out {
		out[j] = sp.UsefulRate(orig, a, j)
	}
	return out
}

package core

import "time"

// StageEvent is one timed stage of a solve, delivered through
// Solver.OnStage — the instrumentation feed the serving engine turns into
// per-stage latency histograms and commit-trace spans.
//
// Non-detail events partition the solve sequentially (validate, partition,
// solve, merge — emitted in execution order from the goroutine driving the
// solve), so their durations sum to the solve wall time up to
// uninstrumented slack. Detail events report work that ran concurrently
// inside a stage (one per re-solved component, on the worker pool) and
// overlap the enclosing "solve" event; consumers must not add them to the
// sequential timeline.
type StageEvent struct {
	// Name is the stage: "validate", "partition", "solve", "merge", or
	// "solve.component" for detail events.
	Name string
	// Duration is the stage's wall time.
	Duration time.Duration
	// Detail marks overlapping informational events (per-component solves).
	Detail bool
}

// Stage names emitted by the solvers.
const (
	StageValidate       = "validate"
	StagePartition      = "partition"
	StageSolve          = "solve"
	StageMerge          = "merge"
	StageSolveComponent = "solve.component"
	StageSolveApprox    = "solve.approx"
)

// stage delivers one event to the OnStage hook, if installed.
func (sv *Solver) stage(name string, d time.Duration, detail bool) {
	if sv.OnStage != nil {
		sv.OnStage(StageEvent{Name: name, Duration: d, Detail: detail})
	}
}

package core

import (
	"math"
	"sort"
)

// Explanation answers the paper's operational question — why did job j
// converge to aggregate level A_j — from the published allocation itself.
// It is derived post-hoc from (instance, share matrix, optional floors)
// rather than captured inside the water-filling loop, so it is exact for
// every solve path (monolithic, decomposed, incremental splicing, and the
// approximate fast path) and costs nothing on the commit path: engines
// compute it lazily per published snapshot.
type Explanation struct {
	// Scale is the instance magnitude the tolerance derives from.
	Scale float64 `json:"scale"`
	// Tol is the absolute level tolerance, eps*scale*(1+sqrt n), mirroring
	// the solver's feasibility tolerance.
	Tol float64 `json:"tol"`
	// SatTol is the looser saturation tolerance: a site counts as
	// saturated when its residual capacity is at most SatTol. It mirrors
	// the slack the solver's final witness flow is allowed.
	SatTol float64           `json:"sat_tol"`
	Jobs   []JobExplanation  `json:"jobs"`
	Sites  []SiteExplanation `json:"sites"`
}

// Limit strings for JobExplanation.Limit.
const (
	ExplainDemandCapped = "demand-capped"
	ExplainBottlenecked = "bottlenecked"
	ExplainFloorBound   = "floor-bound"
	ExplainZeroDemand   = "zero-demand"
)

// JobExplanation explains one job's final level.
type JobExplanation struct {
	Job  int    `json:"job"`
	Name string `json:"name,omitempty"`
	// Level is the job's aggregate allocation A_j = sum_s share[j][s].
	Level float64 `json:"level"`
	// NormLevel is the weighted level A_j / w_j progressive filling raised
	// uniformly across unfrozen jobs.
	NormLevel float64 `json:"norm_level"`
	Weight    float64 `json:"weight"`
	// Demand is the job's total demand D_j, the demand-capped ceiling.
	Demand float64 `json:"demand"`
	// Floor is the job's Enhanced-AMF equal-share floor (0 when the solve
	// ran without floors).
	Floor float64 `json:"floor,omitempty"`
	// FloorBound reports that the floor is binding: the job sits at its
	// equal share rather than at the common water level.
	FloorBound bool `json:"floor_bound,omitempty"`
	// Limit classifies what froze the job: demand-capped, floor-bound,
	// bottlenecked, or zero-demand.
	Limit string `json:"limit"`
	// FreezeRound is the job's position in the reconstructed freeze
	// cascade: 1 for the lowest distinct normalized level, increasing from
	// there. Zero-demand jobs report round 0.
	FreezeRound int `json:"freeze_round"`
	// BindingSites lists the saturated sites that stopped a bottlenecked
	// job: sites where it still has residual demand but the site is full.
	BindingSites []BindingSite `json:"binding_sites,omitempty"`
}

// BindingSite is one saturated site pinning a bottlenecked job.
type BindingSite struct {
	Site int    `json:"site"`
	Name string `json:"name,omitempty"`
	// Residual is the site's spare capacity, capacity - load. Saturation
	// means Residual <= SatTol.
	Residual float64 `json:"residual"`
	// JobResidualDemand is how much more the job could productively use at
	// this site, demand[j][s] - share[j][s].
	JobResidualDemand float64 `json:"job_residual_demand"`
}

// SiteExplanation summarizes one site's load state.
type SiteExplanation struct {
	Site      int     `json:"site"`
	Name      string  `json:"name,omitempty"`
	Capacity  float64 `json:"capacity"`
	Load      float64 `json:"load"`
	Residual  float64 `json:"residual"`
	Saturated bool    `json:"saturated"`
	// Jobs lists the member jobs holding a positive share at this site.
	Jobs []int `json:"jobs,omitempty"`
}

// Explain derives the explanation for a published share matrix. floors is
// the Enhanced-AMF equal-share vector the solve ran with, or nil for plain
// AMF. The share matrix is read, never retained.
func Explain(in *Instance, share [][]float64, floors []float64) *Explanation {
	n := in.NumJobs()
	m := in.NumSites()
	scale := in.Scale()
	tol := 1e-9 * scale * (1 + math.Sqrt(float64(n)))
	satTol := math.Max(tol, 1e-6*scale)

	ex := &Explanation{
		Scale:  scale,
		Tol:    tol,
		SatTol: satTol,
		Jobs:   make([]JobExplanation, n),
		Sites:  make([]SiteExplanation, m),
	}

	load := make([]float64, m)
	for s := 0; s < m; s++ {
		var members []int
		for j := 0; j < n; j++ {
			v := share[j][s]
			load[s] += v
			if v > tol {
				members = append(members, j)
			}
		}
		cap := in.SiteCapacity[s]
		se := SiteExplanation{
			Site:      s,
			Capacity:  cap,
			Load:      load[s],
			Residual:  cap - load[s],
			Saturated: load[s] >= cap-satTol,
			Jobs:      members,
		}
		if in.SiteName != nil {
			se.Name = in.SiteName[s]
		}
		ex.Sites[s] = se
	}

	for j := 0; j < n; j++ {
		var level, demand float64
		for s := 0; s < m; s++ {
			level += share[j][s]
			demand += in.Demand[j][s]
		}
		w := in.JobWeight(j)
		je := JobExplanation{
			Job:       j,
			Level:     level,
			NormLevel: level / w,
			Weight:    w,
			Demand:    demand,
		}
		if in.JobName != nil {
			je.Name = in.JobName[j]
		}
		if floors != nil {
			je.Floor = floors[j]
			// The floor binds when the job sits at it instead of at a
			// higher common level. Demand-capping dominates: a job that
			// received its whole demand needed no floor.
			je.FloorBound = floors[j] > tol && level <= floors[j]+tol && level < demand-tol
		}
		switch {
		case demand <= 0:
			je.Limit = ExplainZeroDemand
		case level >= demand-tol:
			je.Limit = ExplainDemandCapped
		case je.FloorBound:
			je.Limit = ExplainFloorBound
		default:
			je.Limit = ExplainBottlenecked
		}
		if je.Limit == ExplainBottlenecked || je.Limit == ExplainFloorBound {
			for s := 0; s < m; s++ {
				resDemand := in.Demand[j][s] - share[j][s]
				if resDemand <= tol {
					continue // no residual demand here, site cannot bind
				}
				if !ex.Sites[s].Saturated {
					continue // spare capacity, not a binding constraint
				}
				bs := BindingSite{
					Site:              s,
					Residual:          ex.Sites[s].Residual,
					JobResidualDemand: resDemand,
				}
				if in.SiteName != nil {
					bs.Name = in.SiteName[s]
				}
				je.BindingSites = append(je.BindingSites, bs)
			}
		}
		ex.Jobs[j] = je
	}

	ex.assignRounds(tol)
	return ex
}

// assignRounds reconstructs the freeze cascade by ranking distinct
// normalized levels: progressive filling freezes lower levels first, so
// the cluster of lowest NormLevels froze in round 1, the next distinct
// cluster in round 2, and so on. Levels within tol of each other (in
// normalized units) collapse into one round.
func (ex *Explanation) assignRounds(tol float64) {
	type jl struct {
		idx  int
		norm float64
	}
	levels := make([]jl, 0, len(ex.Jobs))
	for i := range ex.Jobs {
		if ex.Jobs[i].Limit == ExplainZeroDemand {
			ex.Jobs[i].FreezeRound = 0
			continue
		}
		levels = append(levels, jl{i, ex.Jobs[i].NormLevel})
	}
	sort.Slice(levels, func(a, b int) bool { return levels[a].norm < levels[b].norm })
	round := 0
	prev := math.Inf(-1)
	for _, l := range levels {
		if l.norm > prev+tol {
			round++
			prev = l.norm
		}
		ex.Jobs[l.idx].FreezeRound = round
	}
}

// JobByName returns the explanation row for the named job, or nil.
func (ex *Explanation) JobByName(name string) *JobExplanation {
	for i := range ex.Jobs {
		if ex.Jobs[i].Name == name {
			return &ex.Jobs[i]
		}
	}
	return nil
}

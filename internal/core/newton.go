package core

import (
	"math"
	"sort"
)

// clampedJob describes one term of a sum of clamped linear functions
// tau(t) = max(Floor, min(t*Weight, Demand)); used by the discrete-Newton
// bottleneck finder to invert target sums.
type clampedJob struct {
	Floor, Demand, Weight float64
}

func (c clampedJob) at(t float64) float64 {
	return math.Max(c.Floor, math.Min(t*c.Weight, c.Demand))
}

// solveClampedSum returns the smallest t >= 0 such that
// sum_j tau_j(t) >= target. It returns +Inf if even t = +Inf cannot reach
// the target (i.e. sum of demands < target), and 0 if the floors alone
// already meet it.
func solveClampedSum(jobs []clampedJob, target float64) float64 {
	var atZero, atInf float64
	for _, j := range jobs {
		atZero += math.Max(j.Floor, 0)
		atInf += math.Max(j.Floor, j.Demand)
	}
	if atZero >= target {
		return 0
	}
	if atInf < target {
		return math.Inf(1)
	}

	// Breakpoints: job j's term starts growing at a_j = Floor/Weight and
	// stops at b_j = Demand/Weight.
	type event struct {
		t     float64
		slope float64 // slope delta at this breakpoint
	}
	events := make([]event, 0, 2*len(jobs))
	for _, j := range jobs {
		if j.Weight <= 0 || j.Demand <= j.Floor {
			continue // constant term
		}
		a := j.Floor / j.Weight
		b := j.Demand / j.Weight
		events = append(events, event{t: a, slope: j.Weight})
		events = append(events, event{t: b, slope: -j.Weight})
	}
	sort.Slice(events, func(x, y int) bool { return events[x].t < events[y].t })

	value := atZero
	slope := 0.0
	tcur := 0.0
	for _, ev := range events {
		if ev.t > tcur {
			// Advance across the segment [tcur, ev.t] with current slope.
			if slope > 0 {
				need := (target - value) / slope
				if tcur+need <= ev.t {
					return tcur + need
				}
			}
			value += slope * (ev.t - tcur)
			tcur = ev.t
		}
		slope += ev.slope
	}
	if slope > 0 {
		return tcur + (target-value)/slope
	}
	// Numerically the target is reachable (atInf >= target) but rounding in
	// the sweep left us short; the last breakpoint is the answer.
	return tcur
}

// sumClamped evaluates sum_j tau_j(t).
func sumClamped(jobs []clampedJob, t float64) float64 {
	var v float64
	for _, j := range jobs {
		v += j.at(t)
	}
	return v
}

// Package core implements Aggregate Max-min Fairness (AMF) for distributed
// job execution across multiple sites, reproducing Guan, Li and Tang,
// "On Max-min Fair Resource Allocation for Distributed Job Execution",
// ICPP 2019.
//
// The package provides:
//
//   - the AMF allocator (progressive filling with a max-flow feasibility
//     oracle), computing the unique max-min fair vector of aggregate
//     allocations together with a witness per-site split,
//   - Enhanced AMF, which additionally guarantees the sharing-incentive
//     property by flooring every job at its isolated equal share,
//   - the completion-time add-on, which redistributes each job's aggregate
//     across sites to reduce job completion times without disturbing the
//     AMF aggregates,
//   - the per-site max-min fair baseline (PS-MMF) the paper compares
//     against, and
//   - verifiers for the fairness properties the paper proves (Pareto
//     efficiency, envy-freeness, sharing incentive) plus an empirical
//     strategy-proofness prober.
package core

import (
	"errors"
	"fmt"
	"math"
)

// Instance describes a multi-site allocation problem: m sites with
// capacities, n jobs with per-site demands pinned by data locality.
type Instance struct {
	// SiteCapacity[s] is the amount of resource available at site s.
	SiteCapacity []float64
	// Demand[j][s] is the maximum amount of resource job j can productively
	// use at site s (its parallelizable local work). A job can only be
	// served at sites where it has positive demand.
	Demand [][]float64
	// Weight[j] is job j's share weight. Nil means every job has weight 1.
	Weight []float64
	// Work[j][s] is the amount of work job j must complete at site s, used
	// by the completion-time add-on and the simulators. Nil means
	// Work == Demand (each unit of demand is one unit of outstanding work).
	Work [][]float64
	// JobName and SiteName are optional labels for traces and reports.
	JobName  []string
	SiteName []string
	// ExternalWeight is share weight held by jobs outside this instance.
	// In a sharded deployment each shard solves its local jobs against the
	// full site-capacity vector, but Enhanced-AMF floors (EqualShares)
	// depend on the GLOBAL weight sum; the cluster router reconciles it by
	// broadcasting W_global - W_local, which lands here. Zero for a
	// standalone instance.
	ExternalWeight float64
}

// NumJobs reports the number of jobs.
func (in *Instance) NumJobs() int { return len(in.Demand) }

// NumSites reports the number of sites.
func (in *Instance) NumSites() int { return len(in.SiteCapacity) }

// JobWeight reports job j's weight, defaulting to 1.
func (in *Instance) JobWeight(j int) float64 {
	if in.Weight == nil {
		return 1
	}
	return in.Weight[j]
}

// JobWork reports the work of job j at site s, defaulting to its demand.
func (in *Instance) JobWork(j, s int) float64 {
	if in.Work == nil {
		return in.Demand[j][s]
	}
	return in.Work[j][s]
}

// TotalDemand reports D_j, the sum of job j's per-site demands.
func (in *Instance) TotalDemand(j int) float64 {
	var d float64
	for _, v := range in.Demand[j] {
		d += v
	}
	return d
}

// TotalWork reports W_j, the sum of job j's per-site work.
func (in *Instance) TotalWork(j int) float64 {
	var w float64
	for s := range in.SiteCapacity {
		w += in.JobWork(j, s)
	}
	return w
}

// TotalCapacity reports the sum of site capacities.
func (in *Instance) TotalCapacity() float64 {
	var c float64
	for _, v := range in.SiteCapacity {
		c += v
	}
	return c
}

// Scale reports the magnitude of the instance (its largest capacity or
// demand), used to set numerical tolerances. An all-zero instance scales
// to 1 so tolerances stay meaningful.
func (in *Instance) Scale() float64 {
	s := 0.0
	for _, c := range in.SiteCapacity {
		s = math.Max(s, c)
	}
	for _, row := range in.Demand {
		for _, d := range row {
			s = math.Max(s, d)
		}
	}
	if s == 0 {
		return 1
	}
	return s
}

// Validate checks structural and numerical sanity. Allocators call it
// before solving.
func (in *Instance) Validate() error {
	m := in.NumSites()
	if m == 0 {
		return errors.New("core: instance has no sites")
	}
	for s, c := range in.SiteCapacity {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("core: site %d has invalid capacity %g", s, c)
		}
	}
	for j, row := range in.Demand {
		if len(row) != m {
			return fmt.Errorf("core: job %d has %d demand entries, want %d", j, len(row), m)
		}
		for s, d := range row {
			if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				return fmt.Errorf("core: job %d has invalid demand %g at site %d", j, d, s)
			}
		}
	}
	if in.Weight != nil {
		if len(in.Weight) != in.NumJobs() {
			return fmt.Errorf("core: %d weights for %d jobs", len(in.Weight), in.NumJobs())
		}
		for j, w := range in.Weight {
			if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("core: job %d has invalid weight %g", j, w)
			}
		}
	}
	if w := in.ExternalWeight; w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("core: invalid external weight %g", w)
	}
	if in.Work != nil {
		if len(in.Work) != in.NumJobs() {
			return fmt.Errorf("core: %d work rows for %d jobs", len(in.Work), in.NumJobs())
		}
		for j, row := range in.Work {
			if len(row) != m {
				return fmt.Errorf("core: job %d has %d work entries, want %d", j, len(row), m)
			}
			for s, w := range row {
				if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
					return fmt.Errorf("core: job %d has invalid work %g at site %d", j, w, s)
				}
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	out := &Instance{
		SiteCapacity:   append([]float64(nil), in.SiteCapacity...),
		Demand:         cloneMatrix(in.Demand),
		ExternalWeight: in.ExternalWeight,
	}
	if in.Weight != nil {
		out.Weight = append([]float64(nil), in.Weight...)
	}
	if in.Work != nil {
		out.Work = cloneMatrix(in.Work)
	}
	if in.JobName != nil {
		out.JobName = append([]string(nil), in.JobName...)
	}
	if in.SiteName != nil {
		out.SiteName = append([]string(nil), in.SiteName...)
	}
	return out
}

func cloneMatrix(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// EqualShares returns each job's isolated equal share: the aggregate it
// would receive if every site's capacity were divided among jobs in
// proportion to their weights, es_j = sum_s min(d[j][s], c_s*w_j/W).
// This is the sharing-incentive benchmark: an allocation gives job j its
// sharing incentive if A_j >= es_j. W includes in.ExternalWeight, so a
// cluster shard floors its local jobs against the global weight sum.
func EqualShares(in *Instance) []float64 {
	n := in.NumJobs()
	out := make([]float64, n)
	wsum := in.ExternalWeight
	for j := 0; j < n; j++ {
		wsum += in.JobWeight(j)
	}
	if wsum == 0 {
		return out
	}
	for j := 0; j < n; j++ {
		frac := in.JobWeight(j) / wsum
		var es float64
		for s, c := range in.SiteCapacity {
			es += math.Min(in.Demand[j][s], c*frac)
		}
		out[j] = es
	}
	return out
}

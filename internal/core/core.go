package core

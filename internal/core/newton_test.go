package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveClampedSumLinear(t *testing.T) {
	jobs := []clampedJob{{Floor: 0, Demand: 10, Weight: 1}, {Floor: 0, Demand: 10, Weight: 1}}
	// sum = 2t for t in [0,10]; target 6 -> t=3.
	approx(t, solveClampedSum(jobs, 6), 3, 1e-9, "t")
}

func TestSolveClampedSumWithDemandKink(t *testing.T) {
	jobs := []clampedJob{
		{Floor: 0, Demand: 2, Weight: 1},
		{Floor: 0, Demand: 10, Weight: 1},
	}
	// For t<=2 sum=2t; beyond, sum=2+t. Target 7 -> t=5.
	approx(t, solveClampedSum(jobs, 7), 5, 1e-9, "t")
}

func TestSolveClampedSumWithFloors(t *testing.T) {
	jobs := []clampedJob{
		{Floor: 3, Demand: 10, Weight: 1}, // flat at 3 until t=3
		{Floor: 0, Demand: 10, Weight: 1},
	}
	// t=1: sum = 3+1 = 4. Target 4 -> t=1.
	approx(t, solveClampedSum(jobs, 4), 1, 1e-9, "t")
	// Target 8 -> both linear: 2t = 8 -> t=4.
	approx(t, solveClampedSum(jobs, 8), 4, 1e-9, "t")
}

func TestSolveClampedSumWeights(t *testing.T) {
	jobs := []clampedJob{
		{Floor: 0, Demand: 100, Weight: 2},
		{Floor: 0, Demand: 100, Weight: 3},
	}
	// sum = 5t; target 10 -> 2.
	approx(t, solveClampedSum(jobs, 10), 2, 1e-9, "t")
}

func TestSolveClampedSumBoundaries(t *testing.T) {
	jobs := []clampedJob{{Floor: 1, Demand: 2, Weight: 1}}
	if got := solveClampedSum(jobs, 0.5); got != 0 {
		t.Fatalf("floors already exceed target: t=%g, want 0", got)
	}
	if got := solveClampedSum(jobs, 5); !math.IsInf(got, 1) {
		t.Fatalf("unreachable target: t=%g, want +Inf", got)
	}
	approx(t, solveClampedSum(jobs, 2), 2, 1e-9, "exact demand target")
}

func TestSolveClampedSumEmpty(t *testing.T) {
	if got := solveClampedSum(nil, 1); !math.IsInf(got, 1) {
		t.Fatalf("empty job set with positive target: %g", got)
	}
	if got := solveClampedSum(nil, 0); got != 0 {
		t.Fatalf("empty job set with zero target: %g", got)
	}
}

func TestSolveClampedSumQuickInverse(t *testing.T) {
	// Property: evaluating the sum at the returned t reproduces the target
	// (when the target lies strictly between floors-sum and demands-sum).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		jobs := make([]clampedJob, n)
		var lo, hi float64
		for i := range jobs {
			d := 0.5 + rng.Float64()*10
			fl := rng.Float64() * d * 0.8
			w := 0.2 + rng.Float64()*3
			jobs[i] = clampedJob{Floor: fl, Demand: d, Weight: w}
			lo += fl
			hi += d
		}
		target := lo + (hi-lo)*(0.05+0.9*rng.Float64())
		tt := solveClampedSum(jobs, target)
		if math.IsInf(tt, 1) {
			return false
		}
		return math.Abs(sumClamped(jobs, tt)-target) < 1e-6*(1+target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSolveClampedSumMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(197))
	jobs := make([]clampedJob, 6)
	var hi float64
	for i := range jobs {
		d := 1 + rng.Float64()*5
		jobs[i] = clampedJob{Floor: rng.Float64(), Demand: d, Weight: 0.5 + rng.Float64()}
		hi += d
	}
	prev := -1.0
	for target := 0.5; target < hi; target += 0.25 {
		tt := solveClampedSum(jobs, target)
		if math.IsInf(tt, 1) {
			break
		}
		if tt < prev-1e-12 {
			t.Fatalf("solve not monotone: target %g gave t %g < %g", target, tt, prev)
		}
		prev = tt
	}
}

func TestClampedJobAt(t *testing.T) {
	j := clampedJob{Floor: 1, Demand: 4, Weight: 2}
	approx(t, j.at(0), 1, 1e-12, "below floor")
	approx(t, j.at(1), 2, 1e-12, "linear")
	approx(t, j.at(10), 4, 1e-12, "demand capped")
}

package core

import (
	"math"

	"repro/internal/fairness"
)

// MaxTotalAllocation reports the largest total allocation any feasible
// allocation can hand out: the max flow with every job capped at its total
// demand.
func MaxTotalAllocation(in *Instance) float64 {
	nw := buildNetwork(in, math.Max(1e-13*in.Scale(), 1e-15))
	targets := make([]float64, in.NumJobs())
	for j := range targets {
		targets[j] = in.TotalDemand(j)
	}
	flow, _ := nw.maxFlowAt(targets)
	return flow
}

// IsParetoEfficient reports whether the allocation is Pareto efficient.
// For the flow polytope of this problem an allocation is Pareto efficient
// iff its total equals MaxTotalAllocation: any shortfall admits an
// augmenting path that raises some job without lowering any other.
func IsParetoEfficient(a *Allocation, tol float64) bool {
	var total float64
	for j := range a.Share {
		total += a.Aggregate(j)
	}
	return total >= MaxTotalAllocation(a.Inst)-tol
}

// AggregateMaxMinViolation checks the allocation's aggregate vector for a
// (weighted) max-min fairness violation over the instance's feasible set,
// probing with perturbation delta. It returns a violating job index and
// true, or (-1, false) if the vector is max-min fair up to delta.
func AggregateMaxMinViolation(a *Allocation, delta float64) (int, bool) {
	in := a.Inst
	nw := buildNetwork(in, math.Max(1e-13*in.Scale(), 1e-15))
	// The oracle tolerance must sit far below the probe delta, or the
	// probe's own bump would be absorbed as numerical slack.
	tol := math.Max(1e-11*in.Scale()*float64(in.NumJobs()+1), delta*1e-3)
	oracle := func(target []float64) bool {
		return nw.feasible(target, tol)
	}
	demands := make([]float64, in.NumJobs())
	weights := make([]float64, in.NumJobs())
	for j := range demands {
		demands[j] = in.TotalDemand(j)
		weights[j] = in.JobWeight(j)
	}
	return fairness.WeightedMaxMinViolation(a.Aggregates(), demands, weights, oracle, delta)
}

// EnvyPairs returns the (envier, envied) pairs in the allocation: job j
// envies job k when j would obtain a strictly larger weight-normalized
// aggregate from k's per-site bundle, truncated to j's own demands, than it
// gets from its own. AMF allocations are envy-free, so this is empty for
// them up to tol.
func EnvyPairs(a *Allocation, tol float64) [][2]int {
	in := a.Inst
	n := in.NumJobs()
	var out [][2]int
	for j := 0; j < n; j++ {
		own := a.Aggregate(j) / in.JobWeight(j)
		for k := 0; k < n; k++ {
			if k == j {
				continue
			}
			var usable float64
			for s := range in.SiteCapacity {
				usable += math.Min(a.Share[k][s], in.Demand[j][s])
			}
			if usable/in.JobWeight(k) > own+tol {
				out = append(out, [2]int{j, k})
			}
		}
	}
	return out
}

// SharingIncentiveViolations returns the jobs whose aggregate falls short
// of their isolated equal share (EqualShares) by more than tol, together
// with the shortfalls. Plain AMF can produce violations (the paper's
// negative result); Enhanced AMF never does.
func SharingIncentiveViolations(a *Allocation, tol float64) (jobs []int, shortfalls []float64) {
	es := EqualShares(a.Inst)
	for j := range a.Share {
		if gap := es[j] - a.Aggregate(j); gap > tol {
			jobs = append(jobs, j)
			shortfalls = append(shortfalls, gap)
		}
	}
	return jobs, shortfalls
}

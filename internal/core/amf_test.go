package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/fairness"
)

func TestAMFSingleSiteMatchesWaterfill(t *testing.T) {
	// With one site, AMF must coincide with classic water-filling.
	in := &Instance{
		SiteCapacity: []float64{10},
		Demand:       [][]float64{{2}, {4}, {10}},
	}
	a, err := NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	want := fairness.Waterfill(10, []float64{2, 4, 10})
	for j := range want {
		approx(t, a.Aggregate(j), want[j], 1e-6, "aggregate")
	}
}

func TestAMFTwoJobsOneContestedSite(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{3},
		Demand:       [][]float64{{2}, {2}},
	}
	a, err := NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, a.Aggregate(0), 1.5, 1e-6, "job 0")
	approx(t, a.Aggregate(1), 1.5, 1e-6, "job 1")
}

func TestAMFCrossSiteBalancing(t *testing.T) {
	// Job 0 is pinned to site 0; job 1 can use either site. AMF routes job 1
	// away from the contested site so both reach aggregate 1... then job 1
	// keeps growing into the leftover.
	in := &Instance{
		SiteCapacity: []float64{1, 1},
		Demand: [][]float64{
			{1, 0},
			{1, 1},
		},
	}
	a, err := NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, a.Aggregate(0), 1, 1e-6, "pinned job")
	approx(t, a.Aggregate(1), 1, 1e-6, "flexible job")
	// The split must put job 1 entirely on site 1.
	approx(t, a.Share[1][0], 0, 1e-6, "job1 at site0")
	approx(t, a.Share[1][1], 1, 1e-6, "job1 at site1")
}

func TestAMFDistinctBottlenecks(t *testing.T) {
	// Two jobs contest a small site, a third owns a big site: two freeze
	// rounds at different levels.
	in := &Instance{
		SiteCapacity: []float64{1, 6},
		Demand: [][]float64{
			{5, 0},
			{5, 0},
			{0, 5},
		},
	}
	a, err := NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, a.Aggregate(0), 0.5, 1e-6, "contested job 0")
	approx(t, a.Aggregate(1), 0.5, 1e-6, "contested job 1")
	approx(t, a.Aggregate(2), 5, 1e-6, "private job (demand-capped)")
}

func TestAMFSharingIncentiveCounterexampleAggregates(t *testing.T) {
	in := sharingIncentiveInstance()
	a, err := NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	// Contested site 1 (capacity 0.2) goes to the two poor jobs; job X ends
	// at its private-site demand 0.9.
	approx(t, a.Aggregate(0), 0.9, 1e-6, "job X")
	approx(t, a.Aggregate(1), 0.1, 1e-6, "job Y")
	approx(t, a.Aggregate(2), 0.1, 1e-6, "job Z")
	checkAMFInvariants(t, in, a)
}

func TestAMFZeroDemandJob(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{4},
		Demand:       [][]float64{{0}, {4}},
	}
	a, err := NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, a.Aggregate(0), 0, 1e-9, "zero-demand job")
	approx(t, a.Aggregate(1), 4, 1e-6, "other job")
}

func TestAMFZeroCapacitySite(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{0, 2},
		Demand:       [][]float64{{5, 1}, {5, 1}},
	}
	a, err := NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, a.Aggregate(0), 1, 1e-6, "job 0")
	approx(t, a.Aggregate(1), 1, 1e-6, "job 1")
}

func TestAMFNoJobs(t *testing.T) {
	in := &Instance{SiteCapacity: []float64{1}}
	a, err := NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Share) != 0 {
		t.Fatalf("expected empty allocation, got %d rows", len(a.Share))
	}
}

func TestAMFAbundantCapacity(t *testing.T) {
	// Everyone is demand-capped.
	in := &Instance{
		SiteCapacity: []float64{100, 100},
		Demand:       [][]float64{{1, 2}, {3, 0}, {0, 4}},
	}
	a, err := NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range []float64{3, 3, 4} {
		approx(t, a.Aggregate(j), want, 1e-6, "aggregate")
	}
}

func TestAMFWeighted(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{6},
		Demand:       [][]float64{{10}, {10}},
		Weight:       []float64{1, 2},
	}
	a, err := NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, a.Aggregate(0), 2, 1e-6, "weight-1 job")
	approx(t, a.Aggregate(1), 4, 1e-6, "weight-2 job")
}

func TestAMFWeightedDemandCap(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{6},
		Demand:       [][]float64{{1}, {10}},
		Weight:       []float64{1, 2},
	}
	a, err := NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, a.Aggregate(0), 1, 1e-6, "capped job")
	approx(t, a.Aggregate(1), 5, 1e-6, "big job gets the rest")
}

func TestAMFInvalidInstance(t *testing.T) {
	bad := []*Instance{
		{SiteCapacity: nil, Demand: nil},
		{SiteCapacity: []float64{-1}, Demand: [][]float64{{1}}},
		{SiteCapacity: []float64{1}, Demand: [][]float64{{-2}}},
		{SiteCapacity: []float64{1}, Demand: [][]float64{{1, 2}}},
		{SiteCapacity: []float64{1}, Demand: [][]float64{{1}}, Weight: []float64{0}},
		{SiteCapacity: []float64{1}, Demand: [][]float64{{math.NaN()}}},
	}
	for i, in := range bad {
		if _, err := NewSolver().AMF(in); err == nil {
			t.Fatalf("case %d: invalid instance accepted", i)
		}
	}
}

func TestAMFRandomInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(10)
		m := 1 + rng.Intn(6)
		in := randInstance(rng, n, m)
		a, err := NewSolver().AMF(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkAMFInvariants(t, in, a)
	}
}

func TestAMFWeightedRandomInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(8)
		m := 1 + rng.Intn(5)
		in := randWeightedInstance(rng, n, m)
		a, err := NewSolver().AMF(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkAMFInvariants(t, in, a)
	}
}

func TestNewtonAndBisectAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	newton := &Solver{Method: MethodNewton}
	bisect := &Solver{Method: MethodBisect}
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(12)
		m := 1 + rng.Intn(6)
		in := randInstance(rng, n, m)
		if trial%3 == 0 {
			in = randWeightedInstance(rng, n, m)
		}
		an, err := newton.AMF(in)
		if err != nil {
			t.Fatalf("trial %d newton: %v", trial, err)
		}
		ab, err := bisect.AMF(in)
		if err != nil {
			t.Fatalf("trial %d bisect: %v", trial, err)
		}
		for j := 0; j < n; j++ {
			if math.Abs(an.Aggregate(j)-ab.Aggregate(j)) > 1e-4*in.Scale() {
				t.Fatalf("trial %d job %d: newton %g vs bisect %g",
					trial, j, an.Aggregate(j), ab.Aggregate(j))
			}
		}
	}
}

func TestAMFAggregateVectorIsLeximinMaximal(t *testing.T) {
	// Compare the AMF sorted aggregate vector against per-site MMF and a
	// few random feasible allocations: AMF must be leximin-largest.
	rng := rand.New(rand.NewSource(109))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(4)
		in := randInstance(rng, n, m)
		a, err := NewSolver().AMF(in)
		if err != nil {
			t.Fatal(err)
		}
		amf := a.Aggregates()
		if other := PerSiteMMF(in).Aggregates(); fairness.LexLess(amf, other, 1e-6) {
			t.Fatalf("trial %d: PS-MMF %v leximin-beats AMF %v", trial, other, amf)
		}
		// Random feasible allocations: greedy random fill.
		for k := 0; k < 5; k++ {
			b := randomFeasible(rng, in)
			if fairness.LexLess(amf, b.Aggregates(), 1e-6) {
				t.Fatalf("trial %d: random allocation %v leximin-beats AMF %v",
					trial, b.Aggregates(), amf)
			}
		}
	}
}

// randomFeasible greedily hands out random feasible shares.
func randomFeasible(rng *rand.Rand, in *Instance) *Allocation {
	a := NewAllocation(in)
	left := append([]float64(nil), in.SiteCapacity...)
	for _, j := range rng.Perm(in.NumJobs()) {
		for s := range in.SiteCapacity {
			if in.Demand[j][s] <= 0 || left[s] <= 0 {
				continue
			}
			x := math.Min(in.Demand[j][s], left[s]) * rng.Float64()
			a.Share[j][s] = x
			left[s] -= x
		}
	}
	return a
}

func TestAMFLevelsHelper(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{3},
		Demand:       [][]float64{{2}, {2}},
	}
	levels, err := NewSolver().AMFLevels(in)
	if err != nil {
		t.Fatal(err)
	}
	sort.Float64s(levels)
	approx(t, levels[0], 1.5, 1e-6, "level 0")
	approx(t, levels[1], 1.5, 1e-6, "level 1")
}

func TestAMFDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	in := randInstance(rng, 8, 4)
	a1, err := NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a1.Share {
		for s := range a1.Share[j] {
			if a1.Share[j][s] != a2.Share[j][s] {
				t.Fatalf("non-deterministic share at job %d site %d", j, s)
			}
		}
	}
}

func TestAMFEnvyFree(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	for trial := 0; trial < 40; trial++ {
		in := randInstance(rng, 2+rng.Intn(8), 1+rng.Intn(5))
		a, err := NewSolver().AMF(in)
		if err != nil {
			t.Fatal(err)
		}
		if pairs := EnvyPairs(a, 1e-5*in.Scale()); len(pairs) != 0 {
			t.Fatalf("trial %d: envy pairs %v (aggregates %v)", trial, pairs, a.Aggregates())
		}
	}
}

func TestMethodString(t *testing.T) {
	if MethodNewton.String() != "newton" || MethodBisect.String() != "bisect" {
		t.Fatal("unexpected method names")
	}
	if Method(9).String() == "" {
		t.Fatal("unknown method must still render")
	}
}

package core

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Method selects how the progressive-filling loop locates the bottleneck
// level at each round.
type Method int

const (
	// MethodNewton finds each bottleneck exactly via discrete Newton
	// iteration on the parametric min cut (default; typically 2-5 max-flow
	// calls per round).
	MethodNewton Method = iota
	// MethodBisect brackets each bottleneck by bisection on the level
	// (robust reference; ~55 max-flow calls per round).
	MethodBisect
)

func (m Method) String() string {
	switch m {
	case MethodNewton:
		return "newton"
	case MethodBisect:
		return "bisect"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Solver computes AMF allocations. The zero value is ready to use, and all
// methods are safe for concurrent use. A solver is worth keeping warm: it
// pools its per-solve working state (flow-network arena, checkpoint
// buffers, level vectors), so repeated solves over similarly-shaped
// instances — the serving engine's batch commits — stop paying the build
// cost; see Reset to drop that state.
type Solver struct {
	// Method selects the bottleneck finder (default MethodNewton).
	Method Method
	// Eps is the relative numerical tolerance (default 1e-9).
	Eps float64
	// MaxNewtonIter bounds Newton iterations per round before falling back
	// to bisection (default 64).
	MaxNewtonIter int
	// SkipJCTRefine makes OptimizeJCT stop after the global min-max stretch
	// phase, skipping the per-job tightening pass. Simulators that re-solve
	// on every event use this to trade a slightly looser split for an
	// order-of-magnitude fewer flow computations.
	SkipJCTRefine bool
	// Parallelism bounds the worker pool used to solve independent
	// connected components concurrently (default GOMAXPROCS; 1 solves
	// components sequentially). See partition.go.
	Parallelism int
	// Monolithic disables connected-component decomposition: the instance
	// is always solved as one flow network, the pre-decomposition behavior.
	Monolithic bool
	// ApproxEpsilon, when positive, arms the approximate water-filling fast
	// path (approx.go): components routed to it are guaranteed per-job
	// aggregates within ApproxEpsilon*Instance.Scale() of the exact max-min
	// allocation. Zero (the default) disables the path entirely — every
	// solve is exact, bit-for-bit the pre-approximation behavior.
	ApproxEpsilon float64
	// ApproxThreshold is the component size — jobs plus positive-demand
	// edges — above which the approximate path triggers. Zero (the default)
	// disables it; components at or below the threshold always solve
	// exactly. Both knobs must be positive for the fast path to engage.
	ApproxThreshold int
	// OnStage, when set, receives a StageEvent after each solve stage
	// completes (see StageEvent for the contract). Non-detail events are
	// delivered from the goroutine driving the solve, in execution order;
	// detail events are delivered from the same goroutine after the worker
	// pool drains. The hook must be cheap and must not call back into the
	// solver.
	OnStage func(StageEvent)

	// scratch pools per-solve working state across solves and across
	// parallel component workers; see solveScratch.
	scratch sync.Pool
	// statsMu guards stats, the decomposition record of the latest solve.
	statsMu sync.Mutex
	stats   SolveStats
}

// NewSolver returns a solver with default settings.
func NewSolver() *Solver { return &Solver{} }

func (sv *Solver) eps() float64 {
	if sv.Eps > 0 {
		return sv.Eps
	}
	return 1e-9
}

func (sv *Solver) maxNewton() int {
	if sv.MaxNewtonIter > 0 {
		return sv.MaxNewtonIter
	}
	return 64
}

// AMF computes the aggregate max-min fair allocation: the unique allocation
// whose per-job aggregate vector is (weighted) max-min fair over all
// feasible allocations. The returned allocation carries a witness per-site
// split realizing the aggregates; use OptimizeJCT to pick the split that
// minimizes completion times.
func (sv *Solver) AMF(in *Instance) (*Allocation, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return sv.fill(in, nil)
}

// EnhancedAMF computes the sharing-incentive-preserving variant: every job
// is first guaranteed its isolated equal share (EqualShares), and the
// remaining capacity is filled max-min fairly above those floors.
func (sv *Solver) EnhancedAMF(in *Instance) (*Allocation, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return sv.fill(in, EqualShares(in))
}

// AMFLevels is like AMF but returns only the aggregate vector; used when
// the per-site split is not needed.
func (sv *Solver) AMFLevels(in *Instance) ([]float64, error) {
	a, err := sv.AMF(in)
	if err != nil {
		return nil, err
	}
	return a.Aggregates(), nil
}

// fill runs progressive filling with optional per-job floors. floors may be
// nil (plain AMF) or a feasible floor vector with floors[j] <= D_j
// (Enhanced AMF; EqualShares satisfies this by construction).
func (sv *Solver) fill(in *Instance, floors []float64) (*Allocation, error) {
	return sv.fillDiag(in, floors, nil)
}

// fillDiag is fill with an optional freeze-cascade recorder. It dispatches
// between the component-decomposed path (partition.go) and the monolithic
// single-network path; diagnostics always take the monolithic path so that
// freeze rounds are reported against the global level order.
func (sv *Solver) fillDiag(in *Instance, floors []float64, diag *Diagnostics) (*Allocation, error) {
	if diag == nil && !sv.Monolithic {
		if alloc, done, err := sv.fillDecomposed(in, floors); done {
			return alloc, err
		}
	}
	start := time.Now()
	var alloc *Allocation
	var rep approxReport
	var err error
	if diag != nil {
		// Diagnostics report freeze rounds against exact bottleneck levels;
		// the approximate path has no such rounds, so it never applies here.
		alloc, err = sv.fillMono(in, floors, diag)
	} else {
		alloc, rep, err = sv.fillComponent(in, floors)
	}
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	if rep.used {
		sv.stage(StageSolveApprox, rep.d, true)
	}
	st := SolveStats{
		Components:       1,
		LargestComponent: in.NumJobs(),
		SequentialTime:   wall,
		WallTime:         wall,
		Speedup:          1,
	}
	if rep.used {
		st.ApproxComponents = 1
		st.ApproxErrorBound = rep.errBound
	}
	sv.recordStats(st)
	return alloc, nil
}

// fillMono runs progressive filling over the whole instance as a single
// flow network. It is both the monolithic solve path and the per-component
// worker of the decomposed path.
func (sv *Solver) fillMono(in *Instance, floors []float64, diag *Diagnostics) (*Allocation, error) {
	n := in.NumJobs()
	alloc := NewAllocation(in)
	if n == 0 {
		return alloc, nil
	}

	scale := in.Scale()
	flowEps := math.Max(1e-12*scale, 1e-18)
	// Feasibility slack: max-flow rounding error accumulates roughly with
	// the square root of the edge count; anything beyond a sqrt(n) factor
	// needlessly caps the dynamic range between the smallest meaningful
	// allocation and the largest capacity (~1e5 with the 1e-9 default).
	featol := sv.eps() * scale * (1 + math.Sqrt(float64(n)))
	scr := sv.getScratch()
	defer sv.putScratch(scr)
	scr.resize(n)
	nw := &scr.nw
	nw.rebuild(in, flowEps)

	floor := func(j int) float64 {
		if floors == nil {
			return 0
		}
		return math.Min(floors[j], in.TotalDemand(j))
	}

	level := scr.level // frozen aggregate per job
	frozen := scr.frozen
	targets := scr.targets // scratch

	// Jobs with zero demand freeze immediately.
	total := scr.total
	remaining := 0
	for j := 0; j < n; j++ {
		total[j] = in.TotalDemand(j)
		if total[j] <= 0 {
			frozen[j] = true
			level[j] = 0
		} else {
			remaining++
		}
	}

	// target fills the scratch vector for a common unfrozen level t.
	target := func(t float64) []float64 {
		for j := 0; j < n; j++ {
			if frozen[j] {
				targets[j] = level[j]
			} else {
				targets[j] = math.Max(floor(j), math.Min(t*in.JobWeight(j), total[j]))
			}
		}
		return targets
	}

	// Establish the initial feasible checkpoint: every job at its floor
	// (zero for plain AMF; the isolated equal shares — feasible by
	// construction — for Enhanced AMF).
	initTargets := scr.init
	for j := 0; j < n; j++ {
		if frozen[j] {
			initTargets[j] = level[j]
		} else {
			initTargets[j] = floor(j)
		}
	}
	flow0, want0 := nw.maxFlowAt(initTargets)
	if flow0 < want0-featol {
		return nil, fmt.Errorf("core: floor vector infeasible: flow %g < %g", flow0, want0)
	}
	cp := &scr.cp
	nw.saveCheckpointTo(cp, flow0)
	tPrev := 0.0

	for round := 0; remaining > 0; round++ {
		if round > n {
			return nil, fmt.Errorf("core: progressive filling made no progress after %d rounds", round)
		}
		// hi: beyond this level all unfrozen targets are demand-capped.
		hi := 0.0
		for j := 0; j < n; j++ {
			if !frozen[j] {
				hi = math.Max(hi, total[j]/in.JobWeight(j))
			}
		}
		// Bracket the bottleneck by exponential search upward from the
		// previous level: this keeps each probe's incremental flow small
		// (the checkpoint advances on every feasible probe) instead of
		// pushing the full remaining headroom at hi every round.
		tLow := tPrev
		tHigh := hi
		atHi := true
		gap := hi - tPrev
		for _, frac := range []float64{1.0 / 4, 1} {
			t := tPrev + gap*frac
			flow, want := nw.probeFrom(cp, target(t))
			if flow >= want-featol {
				nw.saveCheckpointTo(cp, flow)
				tLow = t
			} else {
				tHigh = t
				atHi = false
				break
			}
		}
		if atHi {
			// Feasible with every unfrozen job at its full demand: all
			// remaining jobs are demand-capped.
			round := FreezeRound{Level: hi}
			for j := 0; j < n; j++ {
				if !frozen[j] {
					frozen[j] = true
					level[j] = total[j]
					remaining--
					round.DemandCapped = append(round.DemandCapped, j)
				}
			}
			if diag != nil {
				diag.Rounds = append(diag.Rounds, round)
			}
			break
		}

		var tstar float64
		var err error
		// slack bounds how far tstar can sit below the true bottleneck
		// level (zero for Newton, the bracket tolerance for bisection);
		// the freeze detector must treat residual capacity of that order
		// as zero or it will see every job as still raisable.
		var slack float64
		switch sv.Method {
		case MethodBisect:
			tstar, slack = sv.bisectBottleneck(nw, cp, target, tLow, tHigh, featol)
		default:
			tstar, err = sv.newtonBottleneck(nw, cp, in, frozen, level, floor, total, target, tLow, tHigh, featol)
			if err != nil {
				tstar, slack = sv.bisectBottleneck(nw, cp, target, tLow, tHigh, featol)
			}
		}

		// Probe once at the bottleneck: the resulting residual state yields
		// the freeze information, and the same feasible flow becomes the
		// next round's checkpoint — saving it now (instead of re-probing
		// after freezing) removes one full flow computation per round.
		flowStar, _ := nw.probeFrom(cp, target(tstar))
		nw.saveCheckpointTo(cp, flowStar)
		var sumW float64
		for j := 0; j < n; j++ {
			if !frozen[j] {
				sumW += in.JobWeight(j)
			}
		}
		freezeEps := math.Max(flowEps, math.Max(1e-7*scale, 4*slack*sumW))
		nw.g.SetEps(freezeEps)
		canGrow := nw.g.SinkSide(nw.sink)
		nw.g.SetEps(flowEps)

		frozeAny := false
		dtol := sv.eps() * scale
		round := FreezeRound{Level: tstar}
		for j := 0; j < n; j++ {
			if frozen[j] {
				continue
			}
			tj := math.Max(floor(j), math.Min(tstar*in.JobWeight(j), total[j]))
			switch {
			case tstar*in.JobWeight(j) >= total[j]-dtol:
				frozen[j] = true
				level[j] = total[j]
				frozeAny = true
				remaining--
				round.DemandCapped = append(round.DemandCapped, j)
			case !canGrow[nw.jobNode(j)]:
				frozen[j] = true
				level[j] = tj
				frozeAny = true
				remaining--
				round.Bottlenecked = append(round.Bottlenecked, j)
			}
		}
		if !frozeAny {
			// Residual-based detection failed (possible when bisection left
			// slack); probe each job individually from the bottleneck
			// checkpoint using the hoisted scratch buffer.
			bump := math.Max(100*featol, 1e-6*scale)
			probe := scr.probe
			for j := 0; j < n; j++ {
				if frozen[j] {
					continue
				}
				tj := math.Max(floor(j), math.Min(tstar*in.JobWeight(j), total[j]))
				copy(probe, target(tstar))
				probe[j] = tj + bump
				if flow, want := nw.probeFrom(cp, probe); flow < want-featol {
					frozen[j] = true
					level[j] = tj
					frozeAny = true
					remaining--
					round.Bottlenecked = append(round.Bottlenecked, j)
				}
			}
		}
		if !frozeAny {
			return nil, fmt.Errorf("core: bottleneck at level %g froze no job", tstar)
		}
		if diag != nil {
			diag.Rounds = append(diag.Rounds, round)
		}
		tPrev = tstar
	}

	// Final witness flow at the frozen levels.
	flow, want := nw.probeFrom(cp, level)
	if flow < want-math.Max(featol, 1e-6*scale*float64(n)) {
		return nil, fmt.Errorf("core: final levels infeasible: flow %g < %g", flow, want)
	}
	nw.shares(alloc)
	return alloc, nil
}

// bisectBottleneck brackets the largest feasible common level in [lo, hi].
// The caller guarantees target(lo) is feasible and target(hi) is not.
// Feasible probes advance the caller's checkpoint so later probes augment
// from them. The returned slack is the final bracket width: the true
// bottleneck lies in [tstar, tstar+slack].
func (sv *Solver) bisectBottleneck(nw *network, cp *checkpoint, target func(float64) []float64, lo, hi, featol float64) (tstar, slack float64) {
	ttol := sv.eps() * math.Max(hi, 1e-300)
	for hi-lo > ttol {
		mid := (lo + hi) / 2
		if flow, want := nw.probeFrom(cp, target(mid)); flow >= want-featol {
			nw.saveCheckpointTo(cp, flow)
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, hi - lo
}

// newtonBottleneck finds the largest feasible common level in [tLow, tHigh]
// exactly via discrete Newton iteration on the parametric min cut. Starting
// from the infeasible tHigh, each iteration reads the min cut, expresses
// both the cut capacity and the target sum as (piecewise) linear functions
// of the level, and solves for their crossing. The first feasible iterate
// is the bottleneck.
func (sv *Solver) newtonBottleneck(
	nw *network,
	cp *checkpoint,
	in *Instance,
	frozen []bool,
	level []float64,
	floor func(int) float64,
	total []float64,
	target func(float64) []float64,
	tLow, tHigh, featol float64,
) (tstar float64, err error) {
	t := tHigh
	n := in.NumJobs()
	for iter := 0; iter < sv.maxNewton(); iter++ {
		flow, want := nw.probeFrom(cp, target(t))
		if flow >= want-featol {
			return t, nil
		}
		side := nw.g.SourceSide(nw.src)

		// Constant part of the cut: crossing demand edges and site edges.
		var crest float64
		for j := 0; j < n; j++ {
			if !side[nw.jobNode(j)] {
				continue
			}
			for _, se := range nw.jobEdges[j] {
				if !side[nw.siteNode(se.site)] {
					crest += nw.g.Cap(se.id)
				}
			}
		}
		for s := 0; s < in.NumSites(); s++ {
			if side[nw.siteNode(s)] {
				crest += in.SiteCapacity[s]
			}
		}
		// Frozen jobs on the source side contribute their fixed level to
		// the target sum but not to the cut.
		var frozenReach float64
		var live []clampedJob
		for j := 0; j < n; j++ {
			if !side[nw.jobNode(j)] {
				continue
			}
			if frozen[j] {
				frozenReach += level[j]
			} else {
				live = append(live, clampedJob{
					Floor:  floor(j),
					Demand: total[j],
					Weight: in.JobWeight(j),
				})
			}
		}
		// Solve sum tau_live(t') = crest - frozenReach.
		required := crest - frozenReach
		tn := solveClampedSum(live, required)
		if math.IsInf(tn, 1) || tn >= t || tn < tLow-sv.eps()*math.Max(tHigh, 1e-300) {
			return 0, fmt.Errorf("core: newton step stalled at t=%g (next %g)", t, tn)
		}
		if tn < tLow {
			tn = tLow
		}
		t = tn
	}
	return 0, fmt.Errorf("core: newton did not converge in %d iterations", sv.maxNewton())
}

package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Connected-component decomposition of the job×site demand graph.
//
// Data locality — the premise of the paper — makes realistic instances
// sparse: each job demands resource only at the few sites holding its
// data, so the bipartite demand graph typically splits into many connected
// components. No feasible allocation moves resource across components
// (a job's share at a site is capped by its demand there, which is zero
// outside its component), so the feasibility oracle factorizes and
// progressive filling never couples components: AMF over a component is
// exactly the restriction of AMF over the whole instance. The same holds
// for Enhanced AMF provided the floors are computed against the FULL
// instance first (EqualShares depends on the global weight sum) and then
// sliced per component — which is what fill does.
//
// The solver exploits this by solving components as independent
// sub-instances on a bounded worker pool (Solver.Parallelism, default
// GOMAXPROCS) and merging the per-component witness splits back into one
// Allocation. Each worker checks its own solveScratch out of the solver's
// pool, so parallel workers never share a flow network.

// SolveStats describes how the most recent AMF/EnhancedAMF solve executed:
// how the instance decomposed into independent components and what
// parallel execution bought.
type SolveStats struct {
	// Seq is a monotonically increasing solve counter: it advances by one
	// every time the solver records a run, so a caller holding two
	// LastStats reads can tell whether the solver executed in between
	// (policies like PS-MMF never enter the core solver at all).
	Seq uint64
	// Components is the number of connected components of the job×site
	// demand graph that were solved (1 for the monolithic path).
	Components int
	// LargestComponent is the job count of the largest component solved
	// (the whole job count on the monolithic path).
	LargestComponent int
	// SequentialTime sums the per-component solve wall times — what a
	// sequential solve of the same decomposition would have cost.
	SequentialTime time.Duration
	// WallTime is the observed wall-clock time of the solve.
	WallTime time.Duration
	// Speedup is SequentialTime/WallTime: the parallel speedup of the
	// decomposed solve (1 on the monolithic path).
	Speedup float64
	// ApproxComponents is how many components routed through the
	// approximate water-filling fast path (approx.go); zero means the
	// whole solve was exact.
	ApproxComponents int
	// ApproxErrorBound is the largest certified per-job aggregate
	// deviation from the exact max-min allocation across all approximately
	// solved components (absolute, in resource units; zero when every
	// component solved exactly).
	ApproxErrorBound float64
}

// LastStats reports the decomposition record of the solver's most recent
// AMF/EnhancedAMF solve. Safe for concurrent use.
func (sv *Solver) LastStats() SolveStats {
	sv.statsMu.Lock()
	defer sv.statsMu.Unlock()
	return sv.stats
}

func (sv *Solver) recordStats(st SolveStats) {
	sv.statsMu.Lock()
	st.Seq = sv.stats.Seq + 1
	sv.stats = st
	sv.statsMu.Unlock()
}

// parallelism reports the effective worker-pool bound.
func (sv *Solver) parallelism() int {
	if sv.Parallelism > 0 {
		return sv.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// components labels each job with the connected component of the job×site
// demand graph it belongs to, via union-find over the sites each job
// touches. Jobs with no positive demand belong to no component and are
// labeled -1 (they freeze at zero without ever entering a network).
// Labels are compacted to 0..ncomp-1.
func components(in *Instance) (jobComp []int, ncomp int) {
	n := in.NumJobs()
	m := in.NumSites()
	parent := make([]int, m)
	for s := range parent {
		parent[s] = s
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	first := make([]int, n)
	for j := 0; j < n; j++ {
		first[j] = -1
		for s, d := range in.Demand[j] {
			if d <= 0 {
				continue
			}
			if first[j] < 0 {
				first[j] = s
			} else if ra, rb := find(first[j]), find(s); ra != rb {
				parent[ra] = rb
			}
		}
	}
	label := make([]int, m)
	for s := range label {
		label[s] = -1
	}
	jobComp = make([]int, n)
	for j := 0; j < n; j++ {
		if first[j] < 0 {
			jobComp[j] = -1
			continue
		}
		r := find(first[j])
		if label[r] < 0 {
			label[r] = ncomp
			ncomp++
		}
		jobComp[j] = label[r]
	}
	return jobComp, ncomp
}

// subInstance is one component materialized as an independent instance,
// with the index maps needed to merge its solution back.
type subInstance struct {
	in     *Instance
	jobs   []int // global job index per local row
	sites  []int // global site index per local column
	floors []float64
}

// buildSubInstances materializes each component. Sites untouched by any
// job (and hence outside every component) are dropped: their capacity is
// unreachable and cannot affect any allocation. floors, when non-nil, are
// sliced per component — they were computed against the full instance.
func buildSubInstances(in *Instance, floors []float64, jobComp []int, ncomp int) []subInstance {
	n := in.NumJobs()
	m := in.NumSites()
	subs := make([]subInstance, ncomp)
	// A site is touched by jobs of at most one component: any two jobs with
	// positive demand at it were unioned through it.
	siteSeen := make([]bool, m)
	for j := 0; j < n; j++ {
		c := jobComp[j]
		if c < 0 {
			continue
		}
		subs[c].jobs = append(subs[c].jobs, j)
		for s, d := range in.Demand[j] {
			if d > 0 && !siteSeen[s] {
				siteSeen[s] = true
				subs[c].sites = append(subs[c].sites, s)
			}
		}
	}
	for c := range subs {
		sub := &subs[c]
		nj, ns := len(sub.jobs), len(sub.sites)
		si := &Instance{
			SiteCapacity: make([]float64, ns),
			Demand:       make([][]float64, nj),
		}
		for ls, s := range sub.sites {
			si.SiteCapacity[ls] = in.SiteCapacity[s]
		}
		if in.Weight != nil {
			si.Weight = make([]float64, nj)
		}
		if floors != nil {
			sub.floors = make([]float64, nj)
		}
		for lj, j := range sub.jobs {
			row := make([]float64, ns)
			for ls, s := range sub.sites {
				row[ls] = in.Demand[j][s]
			}
			si.Demand[lj] = row
			if si.Weight != nil {
				si.Weight[lj] = in.Weight[j]
			}
			if sub.floors != nil {
				sub.floors[lj] = floors[j]
			}
		}
		sub.in = si
	}
	return subs
}

// fillDecomposed splits the instance into connected components and solves
// each as an independent sub-instance on a bounded worker pool, merging
// the per-component allocations. It reports done=false when the instance
// has at most one component: the caller then takes the monolithic path on
// the full instance, unchanged from the pre-decomposition behavior.
func (sv *Solver) fillDecomposed(in *Instance, floors []float64) (*Allocation, bool, error) {
	tPart := time.Now()
	jobComp, ncomp := components(in)
	if ncomp <= 1 {
		return nil, false, nil
	}
	start := time.Now()
	subs := buildSubInstances(in, floors, jobComp, ncomp)
	alloc := NewAllocation(in)
	sv.stage(StagePartition, time.Since(tPart), false)
	tSolve := time.Now()

	workers := sv.parallelism()
	if workers > ncomp {
		workers = ncomp
	}
	// perComp collects per-component solve wall times for detail stage
	// events; workers write disjoint indices, so no lock is needed.
	var perComp []time.Duration
	if sv.OnStage != nil {
		perComp = make([]time.Duration, ncomp)
	}
	// reps collects per-component approximate-path reports; same disjoint
	// indexing as perComp.
	reps := make([]approxReport, ncomp)
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		seqNS    atomic.Int64
		errMu    sync.Mutex
		firstErr error
	)
	worker := func() {
		defer wg.Done()
		for {
			c := int(next.Add(1)) - 1
			if c >= ncomp {
				return
			}
			sub := &subs[c]
			t0 := time.Now()
			a, rep, err := sv.fillComponent(sub.in, sub.floors)
			d := time.Since(t0)
			reps[c] = rep
			seqNS.Add(int64(d))
			if perComp != nil {
				perComp[c] = d
			}
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("core: component %d (%d jobs): %w", c, len(sub.jobs), err)
				}
				errMu.Unlock()
				return
			}
			// Rows of alloc.Share are disjoint across components, so the
			// merge needs no lock.
			for lj, j := range sub.jobs {
				row := alloc.Share[j]
				for ls, s := range sub.sites {
					row[s] = a.Share[lj][ls]
				}
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, true, firstErr
	}
	for _, d := range perComp {
		sv.stage(StageSolveComponent, d, true)
	}
	if sv.OnStage != nil {
		for _, rep := range reps {
			if rep.used {
				sv.stage(StageSolveApprox, rep.d, true)
			}
		}
	}
	// The merge is folded into the workers (share rows are disjoint across
	// components), so the decomposed path emits no separate merge stage.
	sv.stage(StageSolve, time.Since(tSolve), false)

	st := SolveStats{
		Components:     ncomp,
		SequentialTime: time.Duration(seqNS.Load()),
		WallTime:       time.Since(start),
	}
	for c := range subs {
		if nj := len(subs[c].jobs); nj > st.LargestComponent {
			st.LargestComponent = nj
		}
		if reps[c].used {
			st.ApproxComponents++
			if reps[c].errBound > st.ApproxErrorBound {
				st.ApproxErrorBound = reps[c].errBound
			}
		}
	}
	if st.WallTime > 0 {
		st.Speedup = float64(st.SequentialTime) / float64(st.WallTime)
	}
	sv.recordStats(st)
	return alloc, true, nil
}

package core

import (
	"math"
	"math/rand"
	"testing"
)

// Property tests on the completion-time add-on's invariants.

func TestJCTStretchNeverBelowOne(t *testing.T) {
	// Stretch is defined relative to the best completion time achievable
	// with the same aggregate, so no split can dip below 1.
	rng := rand.New(rand.NewSource(601))
	sv := NewSolver()
	for trial := 0; trial < 20; trial++ {
		in := randInstance(rng, 2+rng.Intn(6), 1+rng.Intn(4))
		opt, err := sv.AMFWithJCT(in)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < in.NumJobs(); j++ {
			if s := opt.Stretch(j); s < 1-1e-6 {
				t.Fatalf("trial %d job %d stretch %g below 1", trial, j, s)
			}
		}
	}
}

func TestJCTAddonIdempotent(t *testing.T) {
	// Re-optimizing an already optimized split must not change stretches
	// materially (the min-max point is a fixed point up to tie-breaking).
	rng := rand.New(rand.NewSource(607))
	sv := NewSolver()
	for trial := 0; trial < 10; trial++ {
		in := randInstance(rng, 2+rng.Intn(5), 2+rng.Intn(3))
		once, err := sv.AMFWithJCT(in)
		if err != nil {
			t.Fatal(err)
		}
		twice, err := sv.OptimizeJCT(once)
		if err != nil {
			t.Fatal(err)
		}
		max1, max2 := 0.0, 0.0
		for j := 0; j < in.NumJobs(); j++ {
			s1, s2 := once.Stretch(j), twice.Stretch(j)
			if !math.IsInf(s1, 1) {
				max1 = math.Max(max1, s1)
			}
			if !math.IsInf(s2, 1) {
				max2 = math.Max(max2, s2)
			}
		}
		if max2 > max1*1.01+1e-6 {
			t.Fatalf("trial %d: re-optimizing worsened max stretch %g -> %g",
				trial, max1, max2)
		}
	}
}

func TestJCTAddonWithExplicitWeights(t *testing.T) {
	// Weights shape aggregates, not the stretch optimization; the add-on
	// must preserve weighted aggregates exactly.
	rng := rand.New(rand.NewSource(613))
	sv := NewSolver()
	for trial := 0; trial < 10; trial++ {
		in := randWeightedInstance(rng, 2+rng.Intn(5), 1+rng.Intn(3))
		base, err := sv.AMF(in)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := sv.OptimizeJCT(base)
		if err != nil {
			t.Fatal(err)
		}
		for j := range base.Share {
			if math.Abs(opt.Aggregate(j)-base.Aggregate(j)) > 1e-5*in.Scale() {
				t.Fatalf("trial %d job %d aggregate drifted", trial, j)
			}
		}
	}
}

func TestJCTSkipRefineStillSound(t *testing.T) {
	// The cheap simulator mode (min-max phase only) preserves all hard
	// invariants: aggregates and feasibility.
	rng := rand.New(rand.NewSource(617))
	sv := &Solver{SkipJCTRefine: true}
	for trial := 0; trial < 15; trial++ {
		in := randInstance(rng, 2+rng.Intn(6), 1+rng.Intn(4))
		base, err := sv.AMF(in)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := sv.OptimizeJCT(base)
		if err != nil {
			t.Fatal(err)
		}
		if err := opt.CheckFeasible(1e-5 * in.Scale()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for j := range base.Share {
			if math.Abs(opt.Aggregate(j)-base.Aggregate(j)) > 1e-5*in.Scale() {
				t.Fatalf("trial %d job %d aggregate drifted under SkipJCTRefine", trial, j)
			}
		}
	}
}

package core

// Diagnostics explains how a progressive-filling solve unfolded: the
// cascade of bottleneck rounds and which jobs froze at which level. This
// answers the operational question "why is my job capped at X?" — either
// it ran out of demand, or it sits in a bottleneck group whose sites
// filled up at that level.
type Diagnostics struct {
	Rounds []FreezeRound
}

// FreezeRound is one round of progressive filling.
type FreezeRound struct {
	// Level is the common (weighted) level at which this round's
	// bottleneck formed. For the final demand-capped round it is the
	// largest remaining demand level.
	Level float64
	// DemandCapped lists jobs frozen because they reached their total
	// demand.
	DemandCapped []int
	// Bottlenecked lists jobs frozen because every path to spare capacity
	// was exhausted at this level.
	Bottlenecked []int
}

// JobLimit describes what capped one job.
type JobLimit int

const (
	// LimitUnknown means the job does not appear in the diagnostics
	// (e.g. zero demand).
	LimitUnknown JobLimit = iota
	// LimitDemand means the job received its entire demand.
	LimitDemand
	// LimitBottleneck means the job was stopped by site capacity.
	LimitBottleneck
)

func (l JobLimit) String() string {
	switch l {
	case LimitDemand:
		return "demand-capped"
	case LimitBottleneck:
		return "bottlenecked"
	default:
		return "unknown"
	}
}

// Limit reports what capped job j.
func (d *Diagnostics) Limit(j int) JobLimit {
	for _, r := range d.Rounds {
		for _, k := range r.DemandCapped {
			if k == j {
				return LimitDemand
			}
		}
		for _, k := range r.Bottlenecked {
			if k == j {
				return LimitBottleneck
			}
		}
	}
	return LimitUnknown
}

// Cohort reports the other jobs frozen in the same round as job j — the
// group competing for the same saturated sites. It returns nil for jobs
// not bottlenecked.
func (d *Diagnostics) Cohort(j int) []int {
	for _, r := range d.Rounds {
		for _, k := range r.Bottlenecked {
			if k == j {
				out := make([]int, 0, len(r.Bottlenecked)-1)
				for _, o := range r.Bottlenecked {
					if o != j {
						out = append(out, o)
					}
				}
				return out
			}
		}
	}
	return nil
}

// AMFDiag computes the AMF allocation together with the freeze cascade.
func (sv *Solver) AMFDiag(in *Instance) (*Allocation, *Diagnostics, error) {
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	diag := &Diagnostics{}
	a, err := sv.fillDiag(in, nil, diag)
	return a, diag, err
}

// EnhancedAMFDiag is AMFDiag for the sharing-incentive variant.
func (sv *Solver) EnhancedAMFDiag(in *Instance) (*Allocation, *Diagnostics, error) {
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	diag := &Diagnostics{}
	a, err := sv.fillDiag(in, EqualShares(in), diag)
	return a, diag, err
}

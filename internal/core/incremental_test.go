package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// incHarness maintains a mutable named instance organized in site blocks,
// so mutation streams keep the sparse multi-component shape the
// incremental solver targets while still exercising merges (a job can be
// given demand in a second block) and splits (that demand removed).
type incHarness struct {
	caps []float64
	name []string
	wt   []float64
	dem  [][]float64
	next int
}

func newIncHarness(rng *rand.Rand, blocks, sitesPerBlock int) *incHarness {
	m := blocks * sitesPerBlock
	h := &incHarness{caps: make([]float64, m)}
	for s := range h.caps {
		h.caps[s] = 0.5 + rng.Float64()*4.5
	}
	return h
}

func (h *incHarness) numBlocks(sitesPerBlock int) int { return len(h.caps) / sitesPerBlock }

// addJob adds a job demanding only within block b.
func (h *incHarness) addJob(rng *rand.Rand, b, sitesPerBlock int) string {
	name := fmt.Sprintf("j%d", h.next)
	h.next++
	row := make([]float64, len(h.caps))
	s0 := b * sitesPerBlock
	k := 1 + rng.Intn(sitesPerBlock)
	row[s0] = 0.1 + rng.Float64()*2 // anchor keeps the block connected
	for _, off := range rng.Perm(sitesPerBlock - 1)[:k-1] {
		row[s0+1+off] = 0.1 + rng.Float64()*2
	}
	h.name = append(h.name, name)
	h.wt = append(h.wt, 0.5+rng.Float64()*3.5)
	h.dem = append(h.dem, row)
	return name
}

func (h *incHarness) removeJob(i int) string {
	name := h.name[i]
	h.name = append(h.name[:i], h.name[i+1:]...)
	h.wt = append(h.wt[:i], h.wt[i+1:]...)
	h.dem = append(h.dem[:i], h.dem[i+1:]...)
	return name
}

// instance materializes the current revision with fresh backing arrays, so
// the incremental solver never observes in-place mutation of a previous
// revision's rows.
func (h *incHarness) instance() *Instance {
	in := &Instance{
		SiteCapacity: append([]float64(nil), h.caps...),
		Weight:       append([]float64(nil), h.wt...),
		Demand:       cloneMatrix(h.dem),
		JobName:      append([]string(nil), h.name...),
	}
	return in
}

func checkIncrementalMatches(t *testing.T, tag string, x *IncrementalSolver, in *Instance, dirty map[string]bool, enhanced bool) {
	t.Helper()
	got, err := x.Solve(in, dirty)
	if err != nil {
		t.Fatalf("%s: incremental: %v", tag, err)
	}
	ref := &Solver{}
	var want *Allocation
	if enhanced {
		want, err = ref.EnhancedAMF(in)
	} else {
		want, err = ref.AMF(in)
	}
	if err != nil {
		t.Fatalf("%s: reference: %v", tag, err)
	}
	tol := 1e-9 * in.Scale()
	for j := range want.Share {
		if d := math.Abs(got.Aggregate(j) - want.Aggregate(j)); d > tol {
			t.Fatalf("%s: job %d (%s) aggregate %g (incremental) vs %g (scratch), |diff| %g > %g",
				tag, j, in.JobName[j], got.Aggregate(j), want.Aggregate(j), d, tol)
		}
	}
	if err := got.CheckFeasible(1e-6 * in.Scale()); err != nil {
		t.Fatalf("%s: incremental allocation infeasible: %v", tag, err)
	}
	st := x.LastStats()
	if st.Reused+st.CacheHits+st.Solved != st.Components {
		t.Fatalf("%s: stats don't partition: reused %d + hits %d + solved %d != components %d",
			tag, st.Reused, st.CacheHits, st.Solved, st.Components)
	}
}

// TestIncrementalMatchesFromScratch runs random mutation streams — demand
// edits, weight changes, job adds/removals, cross-block bridges and their
// removal — asserting after every mutation that the incremental solve
// matches a from-scratch solve of the same revision, for both AMF and
// Enhanced AMF.
func TestIncrementalMatchesFromScratch(t *testing.T) {
	const (
		streams       = 40
		mutations     = 25
		sitesPerBlock = 3
	)
	rng := rand.New(rand.NewSource(99))
	for stream := 0; stream < streams; stream++ {
		enhanced := stream%2 == 1
		blocks := 2 + rng.Intn(4)
		h := newIncHarness(rng, blocks, sitesPerBlock)
		for b := 0; b < blocks; b++ {
			for i := 0; i < 1+rng.Intn(4); i++ {
				h.addJob(rng, b, sitesPerBlock)
			}
		}
		x := &IncrementalSolver{Enhanced: enhanced}
		checkIncrementalMatches(t, fmt.Sprintf("stream %d init", stream), x, h.instance(), nil, enhanced)

		for mut := 0; mut < mutations; mut++ {
			dirty := map[string]bool{}
			switch op := rng.Intn(6); {
			case op == 0: // add
				dirty[h.addJob(rng, rng.Intn(blocks), sitesPerBlock)] = true
			case op == 1 && len(h.name) > 1: // remove
				h.removeJob(rng.Intn(len(h.name)))
			case op == 2 && len(h.name) > 0: // weight change
				i := rng.Intn(len(h.name))
				h.wt[i] = 0.5 + rng.Float64()*3.5
				dirty[h.name[i]] = true
			case op == 3 && len(h.name) > 0: // demand edit within the job's sites
				i := rng.Intn(len(h.name))
				for s, d := range h.dem[i] {
					if d > 0 {
						h.dem[i][s] = 0.1 + rng.Float64()*2
						break
					}
				}
				dirty[h.name[i]] = true
			case op == 4 && len(h.name) > 0: // bridge: demand in another block (merge)
				i := rng.Intn(len(h.name))
				b := rng.Intn(blocks)
				h.dem[i][b*sitesPerBlock] = 0.1 + rng.Float64()
				dirty[h.name[i]] = true
			case op == 5 && len(h.name) > 0: // re-anchor to one block (possible split)
				i := rng.Intn(len(h.name))
				row := make([]float64, len(h.caps))
				b := rng.Intn(blocks)
				row[b*sitesPerBlock] = 0.1 + rng.Float64()*2
				h.dem[i] = row
				dirty[h.name[i]] = true
			default:
				dirty[h.addJob(rng, rng.Intn(blocks), sitesPerBlock)] = true
			}
			checkIncrementalMatches(t, fmt.Sprintf("stream %d mut %d", stream, mut), x, h.instance(), dirty, enhanced)
		}
	}
}

// TestIncrementalCarryAndCache pins the reuse accounting: an untouched
// revision splices every component without hashing, a single-job mutation
// re-solves exactly one component, and reverting that mutation hits the
// fingerprint cache instead of solving.
func TestIncrementalCarryAndCache(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const blocks, spb = 6, 3
	h := newIncHarness(rng, blocks, spb)
	for b := 0; b < blocks; b++ {
		h.addJob(rng, b, spb)
		h.addJob(rng, b, spb)
	}
	x := &IncrementalSolver{}
	if _, err := x.Solve(h.instance(), nil); err != nil {
		t.Fatal(err)
	}
	st := x.LastStats()
	if st.Components != blocks || st.Solved != blocks {
		t.Fatalf("initial solve: components %d solved %d, want %d/%d", st.Components, st.Solved, blocks, blocks)
	}

	if _, err := x.Solve(h.instance(), nil); err != nil {
		t.Fatal(err)
	}
	st = x.LastStats()
	if st.Reused != blocks || st.Solved != 0 || st.CacheHits != 0 {
		t.Fatalf("clean re-solve: reused %d hits %d solved %d, want %d/0/0", st.Reused, st.CacheHits, st.Solved, blocks)
	}

	old := h.dem[0][0]
	h.dem[0][0] = old + 1
	if _, err := x.Solve(h.instance(), map[string]bool{h.name[0]: true}); err != nil {
		t.Fatal(err)
	}
	st = x.LastStats()
	if st.Solved != 1 || st.Reused != blocks-1 {
		t.Fatalf("single-job mutation: solved %d reused %d, want 1/%d", st.Solved, st.Reused, blocks-1)
	}

	h.dem[0][0] = old // revert: the component's fingerprint round-trips
	if _, err := x.Solve(h.instance(), map[string]bool{h.name[0]: true}); err != nil {
		t.Fatal(err)
	}
	st = x.LastStats()
	if st.CacheHits != 1 || st.Solved != 0 || st.Reused != blocks-1 {
		t.Fatalf("reverted mutation: hits %d solved %d reused %d, want 1/0/%d", st.CacheHits, st.Solved, st.Reused, blocks-1)
	}
}

// TestEnhancedWeightChangeInvalidatesAllComponents pins the global
// invalidation rule: Enhanced-AMF floors depend on the global weight sum,
// so a weight change in ONE component must push every component through
// fingerprint validation — none may be carried as untouched — and the
// resulting shares must match a from-scratch Enhanced solve.
func TestEnhancedWeightChangeInvalidatesAllComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const blocks, spb = 5, 3
	h := newIncHarness(rng, blocks, spb)
	for b := 0; b < blocks; b++ {
		for i := 0; i < 3; i++ {
			h.addJob(rng, b, spb)
		}
	}
	x := &IncrementalSolver{Enhanced: true}
	if _, err := x.Solve(h.instance(), nil); err != nil {
		t.Fatal(err)
	}

	h.wt[0] *= 2
	checkIncrementalMatches(t, "weight change", x, h.instance(), map[string]bool{h.name[0]: true}, true)
	st := x.LastStats()
	if st.GlobalInvalidations != 1 {
		t.Fatalf("GlobalInvalidations = %d, want 1", st.GlobalInvalidations)
	}
	if st.Reused != 0 {
		t.Fatalf("weight change under Enhanced AMF carried %d components untouched; floors moved globally, want 0", st.Reused)
	}
	// The floors embed in every fingerprint, so untouched components whose
	// floors moved must re-solve, not cache-hit.
	if st.Solved != blocks {
		t.Fatalf("Solved = %d, want all %d components re-solved", st.Solved, blocks)
	}

	// Plain AMF has no floors: the same mutation shape must NOT invalidate
	// other components.
	h2 := newIncHarness(rand.New(rand.NewSource(17)), blocks, spb)
	rng2 := rand.New(rand.NewSource(18))
	for b := 0; b < blocks; b++ {
		for i := 0; i < 3; i++ {
			h2.addJob(rng2, b, spb)
		}
	}
	xp := &IncrementalSolver{}
	if _, err := xp.Solve(h2.instance(), nil); err != nil {
		t.Fatal(err)
	}
	h2.wt[0] *= 2
	if _, err := xp.Solve(h2.instance(), map[string]bool{h2.name[0]: true}); err != nil {
		t.Fatal(err)
	}
	if st := xp.LastStats(); st.Reused != blocks-1 || st.GlobalInvalidations != 0 {
		t.Fatalf("plain AMF weight change: reused %d globalInval %d, want %d/0", st.Reused, st.GlobalInvalidations, blocks-1)
	}
}

// TestIncrementalSplitMerge walks a component through a merge (a job
// bridges two blocks), verifies the merged component re-solves while
// bystanders are reused, then removes the bridge and verifies the split
// components come back from the fingerprint cache.
func TestIncrementalSplitMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const blocks, spb = 4, 3
	h := newIncHarness(rng, blocks, spb)
	for b := 0; b < blocks; b++ {
		h.addJob(rng, b, spb)
		h.addJob(rng, b, spb)
	}
	x := &IncrementalSolver{}
	checkIncrementalMatches(t, "init", x, h.instance(), nil, false)

	// Bridge blocks 0 and 1 through job 0.
	saved := h.dem[0][spb]
	h.dem[0][spb] = 0.7
	checkIncrementalMatches(t, "merge", x, h.instance(), map[string]bool{h.name[0]: true}, false)
	st := x.LastStats()
	if st.Components != blocks-1 {
		t.Fatalf("after merge: %d components, want %d", st.Components, blocks-1)
	}
	if st.Reused != blocks-2 || st.Solved != 1 {
		t.Fatalf("after merge: reused %d solved %d, want %d/1", st.Reused, st.Solved, blocks-2)
	}

	// Remove the bridge: blocks 0 and 1 split apart again, and both halves
	// were solved before the merge — the cache must resurrect them.
	h.dem[0][spb] = saved
	checkIncrementalMatches(t, "split", x, h.instance(), map[string]bool{h.name[0]: true}, false)
	st = x.LastStats()
	if st.Components != blocks {
		t.Fatalf("after split: %d components, want %d", st.Components, blocks)
	}
	if st.CacheHits != 2 || st.Solved != 0 || st.Reused != blocks-2 {
		t.Fatalf("after split: hits %d solved %d reused %d, want 2/0/%d", st.CacheHits, st.Solved, st.Reused, blocks-2)
	}
}

// TestIncrementalRemovalAndZeroDemand covers job removal (the component
// re-solves without the member) and a job whose demand drops to all-zero
// (it leaves its component and gets a zero share row).
func TestIncrementalRemovalAndZeroDemand(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const blocks, spb = 3, 3
	h := newIncHarness(rng, blocks, spb)
	for b := 0; b < blocks; b++ {
		h.addJob(rng, b, spb)
		h.addJob(rng, b, spb)
		h.addJob(rng, b, spb)
	}
	x := &IncrementalSolver{}
	checkIncrementalMatches(t, "init", x, h.instance(), nil, false)

	h.removeJob(1)
	checkIncrementalMatches(t, "removal", x, h.instance(), nil, false)
	st := x.LastStats()
	if st.Solved != 1 || st.Reused != blocks-1 {
		t.Fatalf("removal: solved %d reused %d, want 1/%d", st.Solved, st.Reused, blocks-1)
	}

	// Zero out a job's demand: it must drop out of its component and
	// receive a zero row.
	zeroed := h.name[0]
	h.dem[0] = make([]float64, len(h.caps))
	in := h.instance()
	a, err := x.Solve(in, map[string]bool{zeroed: true})
	if err != nil {
		t.Fatal(err)
	}
	if agg := a.Aggregate(0); agg != 0 {
		t.Fatalf("zero-demand job aggregate = %g, want 0", agg)
	}
	checkIncrementalMatches(t, "zero-demand", x, h.instance(), map[string]bool{zeroed: true}, false)
}

package core

import (
	"math"
	"testing"
)

func TestSpilloverApply(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{1, 1},
		Demand: [][]float64{
			{1, 0},
			{0, 0}, // empty job gains nothing
		},
	}
	sp := Spillover{RemotePerSite: 0.5, Gamma: 0.5}
	out := sp.Apply(in)
	approx(t, out.Demand[0][0], 1.5, 1e-12, "local+remote")
	approx(t, out.Demand[0][1], 0.5, 1e-12, "pure remote")
	approx(t, out.Demand[1][0], 0, 1e-12, "empty job")
	// Original untouched.
	approx(t, in.Demand[0][1], 0, 1e-12, "original")
}

func TestSpilloverUsefulRate(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{2, 2},
		Demand:       [][]float64{{1, 0}},
	}
	sp := Spillover{RemotePerSite: 1, Gamma: 0.25}
	relaxed := sp.Apply(in)
	a := NewAllocation(relaxed)
	a.Share[0][0] = 1.5 // 1 local + 0.5 remote
	a.Share[0][1] = 1.0 // all remote
	// Useful: 1 + 0.25*0.5 + 0.25*1 = 1.375.
	approx(t, sp.UsefulRate(in, a, 0), 1.375, 1e-12, "useful rate")
	rates := sp.UsefulRates(in, a)
	approx(t, rates[0], 1.375, 1e-12, "useful rates")
}

func TestSpilloverHelpsPinnedJob(t *testing.T) {
	// A job pinned to a contested site gains useful throughput from remote
	// slots even at modest efficiency.
	in := &Instance{
		SiteCapacity: []float64{1, 1},
		Demand: [][]float64{
			{1, 0}, // pinned
			{1, 0}, // pinned (same crowded site)
		},
	}
	sv := NewSolver()
	base, err := sv.AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	sp := Spillover{RemotePerSite: 1, Gamma: 0.5}
	relaxed, err := sv.AMF(sp.Apply(in))
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		baseRate := Spillover{Gamma: 1}.UsefulRate(in, base, j)
		relaxedRate := sp.UsefulRate(in, relaxed, j)
		// Base: 0.5 each at site 0. Relaxed: 0.5 local + 0.5 remote at
		// site 1 -> 0.5 + 0.25 = 0.75.
		if relaxedRate <= baseRate+0.1 {
			t.Fatalf("job %d: spillover did not help: %g vs %g", j, relaxedRate, baseRate)
		}
	}
}

func TestSpilloverGammaZeroLimit(t *testing.T) {
	// With Gamma=0 the remote units are useless: useful rate equals the
	// local share regardless of the relaxed allocation.
	in := &Instance{
		SiteCapacity: []float64{1, 4},
		Demand:       [][]float64{{1, 0}},
	}
	sp := Spillover{RemotePerSite: 4, Gamma: 0}
	relaxed, err := NewSolver().AMF(sp.Apply(in))
	if err != nil {
		t.Fatal(err)
	}
	useful := sp.UsefulRate(in, relaxed, 0)
	local := math.Min(relaxed.Share[0][0], 1)
	approx(t, useful, local, 1e-9, "gamma-zero useful rate")
}

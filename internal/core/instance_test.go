package core

import (
	"math"
	"testing"
)

func TestInstanceAccessors(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{2, 3},
		Demand:       [][]float64{{1, 2}, {0, 4}},
	}
	if in.NumJobs() != 2 || in.NumSites() != 2 {
		t.Fatalf("dims %dx%d", in.NumJobs(), in.NumSites())
	}
	approx(t, in.TotalDemand(0), 3, 1e-12, "D_0")
	approx(t, in.TotalDemand(1), 4, 1e-12, "D_1")
	approx(t, in.TotalCapacity(), 5, 1e-12, "total cap")
	approx(t, in.JobWeight(0), 1, 1e-12, "default weight")
	approx(t, in.JobWork(0, 1), 2, 1e-12, "work defaults to demand")
	approx(t, in.TotalWork(1), 4, 1e-12, "W_1")
	if s := in.Scale(); s != 4 {
		t.Fatalf("scale %g, want 4", s)
	}
}

func TestInstanceExplicitWorkAndWeights(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{2},
		Demand:       [][]float64{{1}},
		Work:         [][]float64{{5}},
		Weight:       []float64{2.5},
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	approx(t, in.JobWork(0, 0), 5, 1e-12, "explicit work")
	approx(t, in.JobWeight(0), 2.5, 1e-12, "explicit weight")
}

func TestInstanceValidateErrors(t *testing.T) {
	cases := []*Instance{
		{},
		{SiteCapacity: []float64{math.Inf(1)}, Demand: [][]float64{{1}}},
		{SiteCapacity: []float64{1}, Demand: [][]float64{{1}}, Work: [][]float64{{-1}}},
		{SiteCapacity: []float64{1}, Demand: [][]float64{{1}}, Work: [][]float64{{1, 2}}},
		{SiteCapacity: []float64{1}, Demand: [][]float64{{1}}, Weight: []float64{1, 2}},
		{SiteCapacity: []float64{1}, Demand: [][]float64{{1}}, Work: [][]float64{{1}, {1}}},
	}
	for i, in := range cases {
		if err := in.Validate(); err == nil {
			t.Fatalf("case %d: invalid instance validated", i)
		}
	}
}

func TestInstanceCloneIsDeep(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{1},
		Demand:       [][]float64{{1}},
		Weight:       []float64{1},
		Work:         [][]float64{{2}},
		JobName:      []string{"a"},
		SiteName:     []string{"s"},
	}
	c := in.Clone()
	c.SiteCapacity[0] = 9
	c.Demand[0][0] = 9
	c.Weight[0] = 9
	c.Work[0][0] = 9
	c.JobName[0] = "x"
	if in.SiteCapacity[0] != 1 || in.Demand[0][0] != 1 || in.Weight[0] != 1 ||
		in.Work[0][0] != 2 || in.JobName[0] != "a" {
		t.Fatal("clone aliases original storage")
	}
}

func TestAllocationClone(t *testing.T) {
	in := &Instance{SiteCapacity: []float64{1}, Demand: [][]float64{{1}}}
	a := NewAllocation(in)
	a.Share[0][0] = 0.5
	b := a.Clone()
	b.Share[0][0] = 0.9
	if a.Share[0][0] != 0.5 {
		t.Fatal("allocation clone aliases original")
	}
}

func TestSiteLoad(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{5},
		Demand:       [][]float64{{2}, {3}},
	}
	a := NewAllocation(in)
	a.Share[0][0], a.Share[1][0] = 1, 2
	approx(t, a.SiteLoad(0), 3, 1e-12, "site load")
}

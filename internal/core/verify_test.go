package core

import (
	"math/rand"
	"testing"
)

func TestMaxTotalAllocation(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{2, 3},
		Demand: [][]float64{
			{2, 0},
			{2, 2},
		},
	}
	// Site 0 serves 2 total; site 1 serves 2 (only job 1 demands it).
	approx(t, MaxTotalAllocation(in), 4, 1e-6, "max total")
}

func TestMaxTotalAllocationDemandLimited(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{100},
		Demand:       [][]float64{{1}, {2}},
	}
	approx(t, MaxTotalAllocation(in), 3, 1e-6, "max total")
}

func TestIsParetoEfficientRejectsWaste(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{2},
		Demand:       [][]float64{{2}, {2}},
	}
	a := NewAllocation(in)
	a.Share[0][0], a.Share[1][0] = 0.5, 0.5
	if IsParetoEfficient(a, 1e-6) {
		t.Fatal("wasteful allocation accepted as Pareto efficient")
	}
	a.Share[0][0], a.Share[1][0] = 1, 1
	if !IsParetoEfficient(a, 1e-6) {
		t.Fatal("efficient allocation rejected")
	}
}

func TestEnvyPairsDetectsEnvy(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{4},
		Demand:       [][]float64{{4}, {4}},
	}
	a := NewAllocation(in)
	a.Share[0][0], a.Share[1][0] = 1, 3
	pairs := EnvyPairs(a, 1e-9)
	if len(pairs) != 1 || pairs[0] != [2]int{0, 1} {
		t.Fatalf("pairs = %v, want [[0 1]]", pairs)
	}
}

func TestEnvyPairsRespectsDemandTruncation(t *testing.T) {
	// Job 0 cannot use site 1 at all, so job 1's rich bundle there is
	// worthless to it: no envy.
	in := &Instance{
		SiteCapacity: []float64{2, 4},
		Demand: [][]float64{
			{2, 0},
			{2, 4},
		},
	}
	a := NewAllocation(in)
	a.Share[0][0] = 1
	a.Share[1][0] = 1
	a.Share[1][1] = 4
	if pairs := EnvyPairs(a, 1e-9); len(pairs) != 0 {
		t.Fatalf("unexpected envy %v", pairs)
	}
}

func TestEnvyPairsWeighted(t *testing.T) {
	// Weight-2 job holding twice as much is not envied after normalization.
	in := &Instance{
		SiteCapacity: []float64{6},
		Demand:       [][]float64{{6}, {6}},
		Weight:       []float64{1, 2},
	}
	a := NewAllocation(in)
	a.Share[0][0], a.Share[1][0] = 2, 4
	if pairs := EnvyPairs(a, 1e-9); len(pairs) != 0 {
		t.Fatalf("unexpected envy %v", pairs)
	}
}

func TestSharingIncentiveViolationsClean(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{2},
		Demand:       [][]float64{{2}, {2}},
	}
	a, err := NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	if jobs, _ := SharingIncentiveViolations(a, 1e-6); len(jobs) != 0 {
		t.Fatalf("unexpected violations %v", jobs)
	}
}

func TestAggregateMaxMinViolationFlagsPerSiteMMF(t *testing.T) {
	// PS-MMF aggregates are generally NOT aggregate max-min fair; the
	// canonical pinned-vs-flexible instance must be flagged.
	in := &Instance{
		SiteCapacity: []float64{1, 1},
		Demand: [][]float64{
			{1, 1},
			{1, 0},
		},
	}
	ps := PerSiteMMF(in)
	j, bad := AggregateMaxMinViolation(ps, 1e-4)
	if !bad {
		t.Fatalf("PS-MMF aggregates %v not flagged", ps.Aggregates())
	}
	if j != 1 {
		t.Fatalf("flagged job %d, want 1 (the pinned job)", j)
	}
}

func TestUsefulAllocationTruncates(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{4, 4},
		Demand:       [][]float64{{4, 4}},
	}
	a := NewAllocation(in)
	a.Share[0][0], a.Share[0][1] = 3, 2
	trueDemand := []float64{1, 4}
	approx(t, UsefulAllocation(a, 0, trueDemand), 3, 1e-9, "useful")
}

func TestCheckFeasibleCatchesViolations(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{2},
		Demand:       [][]float64{{1}},
	}
	a := NewAllocation(in)
	a.Share[0][0] = 1.5 // exceeds demand
	if err := a.CheckFeasible(1e-9); err == nil {
		t.Fatal("demand violation not caught")
	}
	in2 := &Instance{
		SiteCapacity: []float64{1},
		Demand:       [][]float64{{5}, {5}},
	}
	b := NewAllocation(in2)
	b.Share[0][0], b.Share[1][0] = 0.8, 0.8 // exceeds capacity
	if err := b.CheckFeasible(1e-9); err == nil {
		t.Fatal("capacity violation not caught")
	}
	c := NewAllocation(in)
	c.Share[0][0] = -0.5
	if err := c.CheckFeasible(1e-9); err == nil {
		t.Fatal("negative share not caught")
	}
}

func TestUtilization(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{2, 2},
		Demand:       [][]float64{{2, 2}},
	}
	a := NewAllocation(in)
	a.Share[0][0] = 2
	approx(t, a.Utilization(), 0.5, 1e-9, "utilization")
}

func TestRandomizedEnhancedNoEnvyGuarantee(t *testing.T) {
	// Enhanced AMF is NOT claimed envy-free in general, but its output must
	// at least be feasible with floors; sanity-run EnvyPairs to make sure
	// the verifier itself never crashes on its shapes.
	rng := rand.New(rand.NewSource(173))
	for trial := 0; trial < 20; trial++ {
		in := randInstance(rng, 2+rng.Intn(6), 1+rng.Intn(4))
		a, err := NewSolver().EnhancedAMF(in)
		if err != nil {
			t.Fatal(err)
		}
		_ = EnvyPairs(a, 1e-6)
	}
}

package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestEqualSharesBasic(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{4, 2},
		Demand: [][]float64{
			{4, 2},
			{1, 0},
		},
	}
	es := EqualShares(in)
	// Job 0: min(4, 2) + min(2, 1) = 3. Job 1: min(1, 2) + 0 = 1.
	approx(t, es[0], 3, 1e-9, "es job 0")
	approx(t, es[1], 1, 1e-9, "es job 1")
}

func TestEqualSharesWeighted(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{6},
		Demand:       [][]float64{{10}, {10}},
		Weight:       []float64{1, 2},
	}
	es := EqualShares(in)
	approx(t, es[0], 2, 1e-9, "weight-1 share")
	approx(t, es[1], 4, 1e-9, "weight-2 share")
}

func TestEqualSharesCappedByDemand(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{100},
		Demand:       [][]float64{{1}, {100}},
	}
	es := EqualShares(in)
	approx(t, es[0], 1, 1e-9, "small job capped by demand")
	approx(t, es[1], 50, 1e-9, "big job gets half")
}

func TestAMFViolatesSharingIncentive(t *testing.T) {
	// The paper's negative result: plain AMF can leave a job below its
	// isolated equal share.
	in := sharingIncentiveInstance()
	a, err := NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	jobs, gaps := SharingIncentiveViolations(a, 1e-6)
	if len(jobs) != 1 || jobs[0] != 0 {
		t.Fatalf("expected exactly job 0 violated, got %v", jobs)
	}
	// es_X = 0.9 + 0.2/3; AMF gives 0.9; shortfall 0.2/3.
	approx(t, gaps[0], 0.2/3, 1e-6, "shortfall")
}

func TestEnhancedAMFRestoresSharingIncentive(t *testing.T) {
	in := sharingIncentiveInstance()
	a, err := NewSolver().EnhancedAMF(in)
	if err != nil {
		t.Fatal(err)
	}
	if jobs, _ := SharingIncentiveViolations(a, 1e-6); len(jobs) != 0 {
		t.Fatalf("enhanced AMF violated sharing incentive for %v (aggregates %v)",
			jobs, a.Aggregates())
	}
	// Job X floored at 0.9 + 0.2/3; Y and Z split the rest of site 1.
	approx(t, a.Aggregate(0), 0.9+0.2/3, 1e-5, "job X")
	approx(t, a.Aggregate(1), 0.2/3, 1e-5, "job Y")
	approx(t, a.Aggregate(2), 0.2/3, 1e-5, "job Z")
}

func TestEnhancedAMFNeverViolatesSharingIncentive(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(10)
		m := 1 + rng.Intn(6)
		in := randInstance(rng, n, m)
		if trial%4 == 0 {
			in = randWeightedInstance(rng, n, m)
		}
		a, err := NewSolver().EnhancedAMF(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := a.CheckFeasible(1e-6 * in.Scale()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if jobs, gaps := SharingIncentiveViolations(a, 1e-5*in.Scale()); len(jobs) != 0 {
			t.Fatalf("trial %d: violations %v (gaps %v)", trial, jobs, gaps)
		}
	}
}

func TestEnhancedAMFParetoEfficient(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	for trial := 0; trial < 30; trial++ {
		in := randInstance(rng, 2+rng.Intn(8), 1+rng.Intn(5))
		a, err := NewSolver().EnhancedAMF(in)
		if err != nil {
			t.Fatal(err)
		}
		if !IsParetoEfficient(a, 1e-5*in.Scale()*float64(in.NumJobs()+1)) {
			t.Fatalf("trial %d: enhanced AMF not Pareto efficient", trial)
		}
	}
}

func TestEnhancedMatchesPlainWhenNoViolation(t *testing.T) {
	// When plain AMF already clears every floor, the two coincide.
	in := &Instance{
		SiteCapacity: []float64{4},
		Demand:       [][]float64{{4}, {4}},
	}
	sv := NewSolver()
	plain, err := sv.AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	enh, err := sv.EnhancedAMF(in)
	if err != nil {
		t.Fatal(err)
	}
	for j := range plain.Share {
		approx(t, enh.Aggregate(j), plain.Aggregate(j), 1e-6, "aggregate")
	}
}

func TestEnhancedAMFFloorsAboveBottleneckLevel(t *testing.T) {
	// Floors can exceed the max-min level of the unfloored problem; the
	// allocation must still respect them exactly.
	in := sharingIncentiveInstance()
	a, err := NewSolver().EnhancedAMF(in)
	if err != nil {
		t.Fatal(err)
	}
	es := EqualShares(in)
	for j := range es {
		if a.Aggregate(j) < es[j]-1e-6 {
			t.Fatalf("job %d below floor: %g < %g", j, a.Aggregate(j), es[j])
		}
	}
}

func TestEnhancedAMFBisectAgreesWithNewton(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	newton := &Solver{Method: MethodNewton}
	bisect := &Solver{Method: MethodBisect}
	for trial := 0; trial < 30; trial++ {
		in := randInstance(rng, 2+rng.Intn(8), 1+rng.Intn(5))
		an, err := newton.EnhancedAMF(in)
		if err != nil {
			t.Fatalf("trial %d newton: %v", trial, err)
		}
		ab, err := bisect.EnhancedAMF(in)
		if err != nil {
			t.Fatalf("trial %d bisect: %v", trial, err)
		}
		for j := range an.Share {
			if math.Abs(an.Aggregate(j)-ab.Aggregate(j)) > 1e-4*in.Scale() {
				t.Fatalf("trial %d job %d: %g vs %g", trial, j, an.Aggregate(j), ab.Aggregate(j))
			}
		}
	}
}

func TestEnhancedAMFDominatesEqualSharesExactlyAtTightness(t *testing.T) {
	// Three jobs fully contesting one site: floors equal levels; enhanced
	// and plain agree, both at c/3.
	in := &Instance{
		SiteCapacity: []float64{3},
		Demand:       [][]float64{{9}, {9}, {9}},
	}
	a, err := NewSolver().EnhancedAMF(in)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		approx(t, a.Aggregate(j), 1, 1e-6, "aggregate")
	}
}

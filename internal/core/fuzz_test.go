package core

import (
	"math"
	"testing"
)

// FuzzAMFSolve decodes a byte string into a small instance and checks that
// the solver either rejects it (Validate) or returns a feasible, Pareto
// efficient allocation. This hardens the numerical paths (bottleneck
// search, freezing, witness extraction) against adversarial magnitudes.
func FuzzAMFSolve(f *testing.F) {
	f.Add([]byte{2, 2, 10, 10, 5, 0, 0, 5})
	f.Add([]byte{1, 1, 1, 1})
	f.Add([]byte{3, 2, 100, 1, 9, 9, 0, 1, 200, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		in, ok := decodeInstance(data)
		if !ok {
			t.Skip()
		}
		if err := in.Validate(); err != nil {
			t.Skip()
		}
		a, err := NewSolver().AMF(in)
		if err != nil {
			// The solver may reject only invalid inputs; valid ones must
			// solve.
			t.Fatalf("AMF failed on valid instance: %v", err)
		}
		if err := a.CheckFeasible(1e-5 * in.Scale()); err != nil {
			t.Fatalf("infeasible output: %v", err)
		}
		if !IsParetoEfficient(a, 1e-4*in.Scale()*float64(in.NumJobs()+1)) {
			t.Fatal("output not Pareto efficient")
		}
	})
}

// decodeInstance builds a small instance from fuzz bytes: first two bytes
// pick the shape (n in 1..4, m in 1..3); remaining bytes feed capacities
// and demands as values in [0, 25.5].
func decodeInstance(data []byte) (*Instance, bool) {
	if len(data) < 2 {
		return nil, false
	}
	n := int(data[0])%4 + 1
	m := int(data[1])%3 + 1
	need := m + n*m
	vals := data[2:]
	if len(vals) < need {
		return nil, false
	}
	in := &Instance{
		SiteCapacity: make([]float64, m),
		Demand:       make([][]float64, n),
	}
	k := 0
	for s := 0; s < m; s++ {
		in.SiteCapacity[s] = float64(vals[k]) / 10
		k++
	}
	for j := 0; j < n; j++ {
		in.Demand[j] = make([]float64, m)
		for s := 0; s < m; s++ {
			in.Demand[j][s] = float64(vals[k]) / 10
			k++
		}
	}
	return in, true
}

// FuzzEnhancedAMF checks the floors invariant under fuzzing: every job
// ends at or above its isolated equal share.
func FuzzEnhancedAMF(f *testing.F) {
	f.Add([]byte{2, 1, 20, 10, 10})
	f.Add([]byte{3, 2, 100, 2, 9, 10, 0, 1, 20, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		in, ok := decodeInstance(data)
		if !ok {
			t.Skip()
		}
		if err := in.Validate(); err != nil {
			t.Skip()
		}
		a, err := NewSolver().EnhancedAMF(in)
		if err != nil {
			t.Fatalf("EnhancedAMF failed: %v", err)
		}
		es := EqualShares(in)
		for j := range es {
			if a.Aggregate(j) < es[j]-1e-5*math.Max(1, in.Scale()) {
				t.Fatalf("job %d below floor: %g < %g", j, a.Aggregate(j), es[j])
			}
		}
	})
}

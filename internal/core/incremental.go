package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Incremental solving: re-solve only the connected components a mutation
// batch actually touched, splicing cached results for the rest.
//
// The component decomposition (partition.go) makes each connected component
// of the job×site demand graph an independent sub-problem, but a plain
// decomposed solve still re-partitions and re-solves every component from
// scratch. In a serving deployment most mutation batches are local — the
// paper's data-locality premise means a batch typically touches one job in
// one component — so an IncrementalSolver carries three pieces of state
// from solve to solve:
//
//   - The partition itself. Union-find runs only over the jobs of affected
//     components (those that gained, lost or changed a member, or own a
//     site a mutated job now touches); every other component keeps its
//     membership untouched. Merges and re-splits therefore cost time
//     proportional to the components involved, not the instance.
//
//   - Per-component results. An untouched component's share rows are
//     spliced from its previous solve without any hashing. A touched
//     component is fingerprinted (job names, weights, demand/work rows,
//     site capacities, and Enhanced-AMF floors) and looked up in a result
//     cache before solving, so content that round-trips — a weight toggled
//     back, a component re-split into a previously seen shape — costs a
//     hash instead of a solve. Hash hits are verified byte-for-byte
//     against the stored key, so a collision can never splice wrong rows.
//
//   - The Enhanced-AMF invalidation rule. Floors (EqualShares) depend on
//     the GLOBAL weight sum, so any job-set or weight change moves every
//     job's floor and invalidates all components, even untouched ones.
//     The solver recomputes floors against the full instance every solve
//     and, when the weight sum changed, routes every component through the
//     fingerprint path; components whose floors happen to be bit-identical
//     (all clamped at demand) still hit the cache — the fingerprint, which
//     embeds the floors, is the precise invalidation test.
//
// Share rows handed out by Solve are immutable and shared: the same row
// backs the result cache, subsequent allocations, and anything the caller
// published. Callers must treat Allocation.Share as read-only.

// IncrementalStats describes how the most recent IncrementalSolver.Solve
// executed, plus cumulative cache accounting across the solver's lifetime.
type IncrementalStats struct {
	// Components is the number of live connected components after the
	// solve; LargestComponent is the job count of the biggest one.
	Components       int
	LargestComponent int
	// Reused counts untouched components spliced from their previous
	// result without hashing; CacheHits counts touched components whose
	// fingerprint hit the result cache; Solved counts components actually
	// re-solved. Reused + CacheHits + Solved == Components.
	Reused    int
	CacheHits int
	Solved    int
	// SequentialTime sums the per-component solve wall times; WallTime is
	// the wall-clock time of the whole Solve call (partition maintenance,
	// fingerprinting, cache splicing included). Speedup is their ratio
	// (zero when nothing was solved).
	SequentialTime time.Duration
	WallTime       time.Duration
	Speedup        float64
	// TotalCacheHits/TotalCacheMisses accumulate fingerprint-cache lookups
	// over the solver's lifetime; GlobalInvalidations counts Enhanced-AMF
	// floor invalidations (weight-sum changes).
	TotalCacheHits      int64
	TotalCacheMisses    int64
	GlobalInvalidations int64
	// ApproxComponents counts components of the most recent solve that
	// routed through the approximate water-filling fast path;
	// ApproxErrorBound is their largest certified per-job aggregate
	// deviation from the exact allocation (see SolveStats).
	ApproxComponents int
	ApproxErrorBound float64
}

// IncrementalSolver computes AMF (or Enhanced-AMF) allocations across a
// stream of instance revisions, re-solving only the components invalidated
// since the previous call. The zero value is ready to use. Unlike Solver,
// an IncrementalSolver is NOT safe for concurrent use: callers (the
// scheduler controller) serialize Solve/LastStats/Reset externally.
type IncrementalSolver struct {
	// Solver is the underlying component solver (default NewSolver()); its
	// scratch pool keeps flow-network arenas warm across components.
	Solver *Solver
	// Enhanced applies the sharing-incentive floors (EnhancedAMF).
	Enhanced bool
	// CacheAge is how many solves an unused cache entry survives before
	// eviction (default 8).
	CacheAge uint64

	m        int
	gen      uint64
	jobs     map[string]*incComp // job name -> component (nil: zero demand)
	comps    map[int]*incComp
	nextID   int
	siteComp []int // site -> owning component id, -1 unowned
	cache    map[uint64][]*compResult
	capBits  uint64
	prevWSum float64
	haveWSum bool
	stats    IncrementalStats
	keyBuf   []byte
}

// incComp is one live connected component carried across solves.
type incComp struct {
	id    int
	key   string   // stable identity: lexicographically smallest member name
	jobs  []string // member job names, sorted to instance order at use
	sites []int    // sorted global site indices
	dirty bool

	// mutGen is the generation at which a mutation last dirtied this
	// component; solveGen/lastSolve record its most recent actual solve.
	// The scheduler's hot/cold classifier reads these via VisitComponents.
	mutGen    uint64
	solveGen  uint64
	lastSolve time.Duration

	result   *compResult
	pendHash uint64
	pendKey  []byte
}

// CompStat is the per-component telemetry row VisitComponents reports
// after a Solve: the component's stable identity, membership, whether the
// most recent Solve dirtied (Touched) or actually re-solved (Solved) it,
// and the wall time of its most recent solve. Jobs and Sites are the
// solver's own slices — callers must treat them as read-only and must not
// retain them across Solve calls.
type CompStat struct {
	Key       string
	Jobs      []string
	Sites     []int
	Touched   bool
	Solved    bool
	LastSolve time.Duration
}

// VisitComponents calls fn for every live component, in no particular
// order. Like Solve, it must be externally serialized with Solve/Reset.
func (x *IncrementalSolver) VisitComponents(fn func(CompStat)) {
	for _, c := range x.comps {
		fn(CompStat{
			Key:       c.key,
			Jobs:      c.jobs,
			Sites:     c.sites,
			Touched:   c.mutGen == x.gen,
			Solved:    c.solveGen == x.gen,
			LastSolve: c.lastSolve,
		})
	}
}

// compResult is one cached component solution: the fingerprint it was
// solved under and an immutable full-width share row per member job.
type compResult struct {
	hash     uint64
	key      []byte
	shares   map[string][]float64
	lastUsed uint64
}

// Reset drops all carried state (partition, results, cache); the next
// Solve runs from scratch. Cumulative counters are kept.
func (x *IncrementalSolver) Reset() {
	x.m = 0
	x.jobs = nil
	x.comps = nil
	x.siteComp = nil
	x.cache = nil
	x.haveWSum = false
}

// LastStats reports the record of the most recent Solve.
func (x *IncrementalSolver) LastStats() IncrementalStats { return x.stats }

func (x *IncrementalSolver) cacheAge() uint64 {
	if x.CacheAge > 0 {
		return x.CacheAge
	}
	return 8
}

// Solve computes the allocation for in, reusing every component result the
// mutations since the previous Solve cannot have invalidated.
//
// Contract: in.JobName must hold a unique non-empty name per job — names
// are how jobs are identified across revisions. dirty must contain the
// name of every job whose weight, demand or work changed since the
// previous Solve (added jobs may appear but are detected regardless, as
// are removals, via the job-set diff). Site count and capacities are
// expected to be stable across calls; if they change, all carried state is
// dropped and the solve runs from scratch.
//
// The returned allocation's share rows are immutable views shared with the
// solver's cache and with previous/future results: callers must not
// mutate them.
func (x *IncrementalSolver) Solve(in *Instance, dirty map[string]bool) (*Allocation, error) {
	start := time.Now()
	n, m := in.NumJobs(), in.NumSites()
	if len(in.JobName) != n {
		return nil, fmt.Errorf("core: incremental solve needs a name per job (%d names, %d jobs)", len(in.JobName), n)
	}
	sv := x.Solver
	if sv == nil {
		sv = NewSolver()
		x.Solver = sv
	}

	capBits := hashFloats(in.SiteCapacity)
	fresh := x.jobs == nil || x.m != m || x.capBits != capBits
	// Validation is itself incremental: a full O(n·m) Instance.Validate
	// only when carried state resets; afterwards, cheap shape checks here
	// plus a float scan of just the dirty rows (validateJobData below) —
	// clean rows were validated by the solve that last saw them change.
	// (The dirty-row scans run inside the diff loop and are accounted to
	// the partition stage.)
	tValidate := time.Now()
	if fresh {
		if err := in.Validate(); err != nil {
			return nil, err
		}
	} else {
		if in.Weight != nil && len(in.Weight) != n {
			return nil, fmt.Errorf("core: %d weights for %d jobs", len(in.Weight), n)
		}
		if in.Work != nil && len(in.Work) != n {
			return nil, fmt.Errorf("core: %d work rows for %d jobs", len(in.Work), n)
		}
		for j, row := range in.Demand {
			if len(row) != m {
				return nil, fmt.Errorf("core: job %d has %d demand entries, want %d", j, len(row), m)
			}
			if in.Work != nil && len(in.Work[j]) != m {
				return nil, fmt.Errorf("core: job %d has %d work entries, want %d", j, len(in.Work[j]), m)
			}
		}
	}
	sv.stage(StageValidate, time.Since(tValidate), false)
	if fresh {
		x.m, x.capBits = m, capBits
		x.jobs = make(map[string]*incComp, n)
		x.comps = map[int]*incComp{}
		x.siteComp = make([]int, m)
		for s := range x.siteComp {
			x.siteComp[s] = -1
		}
		if x.cache == nil {
			x.cache = map[uint64][]*compResult{}
		}
		x.haveWSum = false
	}
	x.gen++
	tPartition := time.Now()

	idx := make(map[string]int, n)
	for i, name := range in.JobName {
		if name == "" {
			return nil, fmt.Errorf("core: incremental solve needs non-empty job names (job %d)", i)
		}
		if _, dup := idx[name]; dup {
			return nil, fmt.Errorf("core: incremental solve needs unique job names (%q duplicated)", name)
		}
		idx[name] = i
	}

	// Enhanced-AMF floors are computed against the FULL instance
	// (EqualShares depends on the global weight sum) and sliced per
	// component. A weight-sum change moves every floor: all components
	// must re-validate through the fingerprint path.
	var floors []float64
	globalInval := false
	if x.Enhanced {
		wsum := in.ExternalWeight
		for j := 0; j < n; j++ {
			wsum += in.JobWeight(j)
		}
		floors = EqualShares(in)
		if x.haveWSum && math.Float64bits(wsum) != math.Float64bits(x.prevWSum) {
			globalInval = true
			x.stats.GlobalInvalidations++
		}
		x.prevWSum, x.haveWSum = wsum, true
	}

	// Diff the job set against the previous revision and close over the
	// affected components: any that lost a member, contain a mutated
	// member, or own a site a mutated job now touches (merge).
	affected := map[*incComp]bool{}
	var dirtyIdx []int
	for name, c := range x.jobs {
		if _, ok := idx[name]; !ok {
			if c != nil {
				affected[c] = true
			}
			delete(x.jobs, name)
		}
	}
	for i, name := range in.JobName {
		c, known := x.jobs[name]
		if known && !dirty[name] {
			continue
		}
		if !fresh {
			if err := validateJobData(in, i); err != nil {
				return nil, err
			}
		}
		dirtyIdx = append(dirtyIdx, i)
		if known && c != nil {
			affected[c] = true
		}
		for s, d := range in.Demand[i] {
			if d > 0 {
				if cid := x.siteComp[s]; cid >= 0 {
					affected[x.comps[cid]] = true
				}
			}
		}
	}
	if len(dirtyIdx) > 0 || len(affected) > 0 {
		x.repartition(in, idx, affected, dirtyIdx)
	}

	// Classify components: carried results splice directly; touched (or
	// globally invalidated) ones consult the fingerprint cache; misses are
	// solved as independent sub-instances on the worker pool.
	ids := make([]int, 0, len(x.comps))
	for id := range x.comps {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	st := IncrementalStats{Components: len(x.comps)}
	var toSolve []*incComp
	for _, id := range ids {
		c := x.comps[id]
		if nj := len(c.jobs); nj > st.LargestComponent {
			st.LargestComponent = nj
		}
		if c.dirty {
			// Mutation-dirty this generation (repartitioned or content
			// changed) — distinct from globalInval, which routes untouched
			// components through the fingerprint without a mutation hit.
			c.mutGen = x.gen
		}
		if !c.dirty && !globalInval && c.result != nil {
			c.result.lastUsed = x.gen
			st.Reused++
			continue
		}
		sort.Slice(c.jobs, func(a, b int) bool { return idx[c.jobs[a]] < idx[c.jobs[b]] })
		key := x.fingerprint(in, idx, c, floors)
		h := fnv64(key)
		if r := x.cacheLookup(h, key); r != nil {
			r.lastUsed = x.gen
			c.result = r
			c.dirty = false
			st.CacheHits++
			x.stats.TotalCacheHits++
			continue
		}
		x.stats.TotalCacheMisses++
		c.result = nil
		c.dirty = true
		c.pendHash = h
		c.pendKey = append([]byte(nil), key...)
		toSolve = append(toSolve, c)
	}
	st.Solved = len(toSolve)
	sv.stage(StagePartition, time.Since(tPartition), false)
	tSolve := time.Now()

	var seqNS atomic.Int64
	// perComp collects per-component solve wall times for detail stage
	// events and the hot/cold classifier; workers write disjoint indices,
	// so no lock is needed.
	perComp := make([]time.Duration, len(toSolve))
	// reps collects per-component approximate-path reports; same disjoint
	// indexing as perComp.
	reps := make([]approxReport, len(toSolve))
	if len(toSolve) > 0 {
		workers := sv.parallelism()
		if workers > len(toSolve) {
			workers = len(toSolve)
		}
		var (
			wg       sync.WaitGroup
			next     atomic.Int64
			errMu    sync.Mutex
			firstErr error
		)
		worker := func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(toSolve) {
					return
				}
				c := toSolve[k]
				t0 := time.Now()
				res, rep, err := x.solveComp(sv, in, idx, c, floors)
				d := time.Since(t0)
				reps[k] = rep
				seqNS.Add(int64(d))
				perComp[k] = d
				c.lastSolve = d
				c.solveGen = x.gen
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("core: incremental component (%d jobs): %w", len(c.jobs), err)
					}
					errMu.Unlock()
					return
				}
				// c stays dirty until its result lands, so a failed solve
				// leaves the state consistent for the next attempt.
				c.result = res
				c.dirty = false
			}
		}
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go worker()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		for _, c := range toSolve {
			x.cache[c.result.hash] = append(x.cache[c.result.hash], c.result)
			c.pendKey = nil
		}
	}
	for _, d := range perComp {
		sv.stage(StageSolveComponent, d, true)
	}
	for _, rep := range reps {
		if rep.used {
			st.ApproxComponents++
			if rep.errBound > st.ApproxErrorBound {
				st.ApproxErrorBound = rep.errBound
			}
			if sv.OnStage != nil {
				sv.stage(StageSolveApprox, rep.d, true)
			}
		}
	}
	sv.stage(StageSolve, time.Since(tSolve), false)
	tMerge := time.Now()

	alloc := &Allocation{Inst: in, Share: make([][]float64, n)}
	for i, name := range in.JobName {
		c := x.jobs[name]
		if c == nil {
			alloc.Share[i] = make([]float64, m)
			continue
		}
		row := c.result.shares[name]
		if row == nil {
			return nil, fmt.Errorf("core: incremental state lost shares for job %q", name)
		}
		alloc.Share[i] = row
	}

	x.evict()
	sv.stage(StageMerge, time.Since(tMerge), false)

	st.SequentialTime = time.Duration(seqNS.Load())
	st.WallTime = time.Since(start)
	if st.WallTime > 0 && st.SequentialTime > 0 {
		st.Speedup = float64(st.SequentialTime) / float64(st.WallTime)
	}
	st.TotalCacheHits = x.stats.TotalCacheHits
	st.TotalCacheMisses = x.stats.TotalCacheMisses
	st.GlobalInvalidations = x.stats.GlobalInvalidations
	x.stats = st
	// Mirror the decomposition record onto the underlying solver so
	// LastStats consumers see this solve regardless of entry point.
	sv.recordStats(SolveStats{
		Components:       st.Components,
		LargestComponent: st.LargestComponent,
		SequentialTime:   st.SequentialTime,
		WallTime:         st.WallTime,
		Speedup:          st.Speedup,
		ApproxComponents: st.ApproxComponents,
		ApproxErrorBound: st.ApproxErrorBound,
	})
	return alloc, nil
}

// repartition re-runs union-find over just the affected components' jobs
// plus the mutated/new jobs, dissolving the affected components and
// forming their replacements. Untouched components keep their membership,
// sites and results.
func (x *IncrementalSolver) repartition(in *Instance, idx map[string]int, affected map[*incComp]bool, dirtyIdx []int) {
	repart := map[int]bool{}
	for _, i := range dirtyIdx {
		repart[i] = true
	}
	for c := range affected {
		for _, name := range c.jobs {
			if i, ok := idx[name]; ok && x.jobs[name] == c {
				repart[i] = true
			}
		}
		for _, s := range c.sites {
			if x.siteComp[s] == c.id {
				x.siteComp[s] = -1
			}
		}
		delete(x.comps, c.id)
	}
	order := make([]int, 0, len(repart))
	for i := range repart {
		order = append(order, i)
	}
	sort.Ints(order)

	// Union-find over the sites these jobs touch; every such site is
	// unowned here (its owner, if any, was dissolved above).
	parent := map[int]int{}
	var find func(int) int
	find = func(s int) int {
		p, ok := parent[s]
		if !ok {
			parent[s] = s
			return s
		}
		if p != s {
			p = find(p)
			parent[s] = p
		}
		return p
	}
	for _, i := range order {
		first := -1
		for s, d := range in.Demand[i] {
			if d <= 0 {
				continue
			}
			if first < 0 {
				first = s
				find(s)
				continue
			}
			if ra, rb := find(first), find(s); ra != rb {
				parent[ra] = rb
			}
		}
	}
	byRoot := map[int]*incComp{}
	for _, i := range order {
		name := in.JobName[i]
		first := -1
		for s, d := range in.Demand[i] {
			if d > 0 {
				first = s
				break
			}
		}
		if first < 0 {
			x.jobs[name] = nil // zero demand: no component, zero shares
			continue
		}
		r := find(first)
		c := byRoot[r]
		if c == nil {
			c = &incComp{id: x.nextID, dirty: true}
			x.nextID++
			byRoot[r] = c
			x.comps[c.id] = c
		}
		c.jobs = append(c.jobs, name)
		x.jobs[name] = c
		for s, d := range in.Demand[i] {
			if d > 0 && x.siteComp[s] != c.id {
				x.siteComp[s] = c.id
				c.sites = append(c.sites, s)
			}
		}
	}
	for _, c := range byRoot {
		sort.Ints(c.sites)
		// Stable identity: the lexicographically smallest member name. It
		// survives re-splits as long as that member stays in the component,
		// which is what lets the classifier accumulate hit counts across
		// repartitions.
		c.key = c.jobs[0]
		for _, name := range c.jobs[1:] {
			if name < c.key {
				c.key = name
			}
		}
	}
}

// solveComp materializes one component as an independent sub-instance,
// solves it with the component worker path (exact or approximate, per the
// solver's routing), and scatters the local rows into immutable full-width
// rows.
func (x *IncrementalSolver) solveComp(sv *Solver, in *Instance, idx map[string]int, c *incComp, floors []float64) (*compResult, approxReport, error) {
	nj, ns := len(c.jobs), len(c.sites)
	sub := &Instance{
		SiteCapacity: make([]float64, ns),
		Demand:       make([][]float64, nj),
	}
	for ls, s := range c.sites {
		sub.SiteCapacity[ls] = in.SiteCapacity[s]
	}
	if in.Weight != nil {
		sub.Weight = make([]float64, nj)
	}
	var subFloors []float64
	if floors != nil {
		subFloors = make([]float64, nj)
	}
	for lj, name := range c.jobs {
		i := idx[name]
		row := make([]float64, ns)
		for ls, s := range c.sites {
			row[ls] = in.Demand[i][s]
		}
		sub.Demand[lj] = row
		if sub.Weight != nil {
			sub.Weight[lj] = in.Weight[i]
		}
		if subFloors != nil {
			subFloors[lj] = floors[i]
		}
	}
	a, rep, err := sv.fillComponent(sub, subFloors)
	if err != nil {
		return nil, rep, err
	}
	res := &compResult{
		hash:     c.pendHash,
		key:      c.pendKey,
		shares:   make(map[string][]float64, nj),
		lastUsed: x.gen,
	}
	for lj, name := range c.jobs {
		row := make([]float64, x.m)
		for ls, s := range c.sites {
			row[s] = a.Share[lj][ls]
		}
		res.shares[name] = row
	}
	return res, rep, nil
}

// fingerprint serializes everything the component's solution depends on:
// member names, weights, demand and work rows restricted to the
// component's sites, site indices and capacities, (Enhanced) floors, and
// the approximate-path routing decision — a component solved approximately
// under one epsilon must not be spliced for a solve under another, or for
// an exact solve. The buffer is reused across calls; callers copy before
// retaining.
func (x *IncrementalSolver) fingerprint(in *Instance, idx map[string]int, c *incComp, floors []float64) []byte {
	buf := x.keyBuf[:0]
	edges := 0
	if floors != nil {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(c.sites)))
	for _, s := range c.sites {
		buf = binary.AppendUvarint(buf, uint64(s))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(in.SiteCapacity[s]))
	}
	buf = binary.AppendUvarint(buf, uint64(len(c.jobs)))
	for _, name := range c.jobs {
		i := idx[name]
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(in.JobWeight(i)))
		if floors != nil {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(floors[i]))
		}
		for _, s := range c.sites {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(in.Demand[i][s]))
			if in.Demand[i][s] > 0 {
				edges++
			}
		}
		if in.Work != nil {
			buf = append(buf, 1)
			for _, s := range c.sites {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(in.Work[i][s]))
			}
		} else {
			buf = append(buf, 0)
		}
	}
	// The routing decision mirrors Solver.approxRoute on the materialized
	// sub-instance: jobs + positive-demand edges against the threshold.
	if sv := x.Solver; sv != nil && sv.approxEnabled() && len(c.jobs)+edges > sv.ApproxThreshold {
		buf = append(buf, 1)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(sv.ApproxEpsilon))
	} else {
		buf = append(buf, 0)
	}
	x.keyBuf = buf
	return buf
}

func (x *IncrementalSolver) cacheLookup(h uint64, key []byte) *compResult {
	for _, r := range x.cache[h] {
		if bytes.Equal(r.key, key) {
			return r
		}
	}
	return nil
}

// evict drops cache entries unused for CacheAge generations.
func (x *IncrementalSolver) evict() {
	age := x.cacheAge()
	for h, bucket := range x.cache {
		keep := bucket[:0]
		for _, r := range bucket {
			if x.gen-r.lastUsed <= age {
				keep = append(keep, r)
			}
		}
		if len(keep) == 0 {
			delete(x.cache, h)
		} else {
			x.cache[h] = keep
		}
	}
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// validateJobData float-scans one job's weight, demand and work rows —
// the per-dirty-job slice of Instance.Validate (lengths are checked
// centrally in Solve).
func validateJobData(in *Instance, j int) error {
	if in.Weight != nil {
		if w := in.Weight[j]; w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("core: job %d has invalid weight %g", j, w)
		}
	}
	for s, d := range in.Demand[j] {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("core: job %d has invalid demand %g at site %d", j, d, s)
		}
	}
	if in.Work != nil {
		for s, w := range in.Work[j] {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("core: job %d has invalid work %g at site %d", j, w, s)
			}
		}
	}
	return nil
}

func fnv64(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

func hashFloats(v []float64) uint64 {
	h := uint64(fnvOffset)
	for _, f := range v {
		bits := math.Float64bits(f)
		for k := 0; k < 64; k += 8 {
			h ^= uint64(byte(bits >> k))
			h *= fnvPrime
		}
	}
	return h
}

package core

import (
	"math"
	"math/rand"
	"testing"
)

// randInstance generates a random instance: m sites with capacities in
// [0.5, 10], n jobs each demanding at 1..m random sites with per-site
// demands in (0, 5].
func randInstance(rng *rand.Rand, n, m int) *Instance {
	in := &Instance{
		SiteCapacity: make([]float64, m),
		Demand:       make([][]float64, n),
	}
	for s := range in.SiteCapacity {
		in.SiteCapacity[s] = 0.5 + rng.Float64()*9.5
	}
	for j := range in.Demand {
		in.Demand[j] = make([]float64, m)
		k := 1 + rng.Intn(m)
		for _, s := range rng.Perm(m)[:k] {
			in.Demand[j][s] = 0.1 + rng.Float64()*4.9
		}
	}
	return in
}

// randWeightedInstance additionally assigns weights in [0.5, 4].
func randWeightedInstance(rng *rand.Rand, n, m int) *Instance {
	in := randInstance(rng, n, m)
	in.Weight = make([]float64, n)
	for j := range in.Weight {
		in.Weight[j] = 0.5 + rng.Float64()*3.5
	}
	return in
}

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %g, want %g (tol %g)", what, got, want, tol)
	}
}

func checkAMFInvariants(t *testing.T, in *Instance, a *Allocation) {
	t.Helper()
	scale := in.Scale()
	if err := a.CheckFeasible(1e-6 * scale); err != nil {
		t.Fatalf("infeasible allocation: %v", err)
	}
	if !IsParetoEfficient(a, 1e-5*scale*float64(in.NumJobs()+1)) {
		var tot float64
		for j := range a.Share {
			tot += a.Aggregate(j)
		}
		t.Fatalf("not Pareto efficient: total %g < max %g", tot, MaxTotalAllocation(in))
	}
	if j, bad := AggregateMaxMinViolation(a, 1e-4*scale); bad {
		t.Fatalf("aggregate vector not max-min fair: job %d can be raised (aggregates %v)",
			j, a.Aggregates())
	}
}

// sharingIncentiveInstance is the counterexample exercised throughout the
// tests: job X owns a large private site (capacity 10, demand 0.9) and has
// a small claim on a tiny contested site (capacity 0.2) crowded by two jobs
// that live only there. Under AMF the contested site goes entirely to the
// poor jobs, so X ends below its isolated equal share
// es_X = 0.9 + 0.2/3 ~ 0.9667.
func sharingIncentiveInstance() *Instance {
	return &Instance{
		SiteCapacity: []float64{10, 0.2},
		Demand: [][]float64{
			{0.9, 1}, // job X
			{0, 1},   // job Y
			{0, 1},   // job Z
		},
	}
}

package core

import "repro/internal/fairness"

// PerSiteMMF computes the baseline the paper compares against: each site
// independently divides its capacity max-min fairly (weighted, demand
// capped) among the jobs with positive demand there. Aggregates are simply
// the row sums; no coordination happens across sites, so jobs whose work
// concentrates at popular sites end up with small aggregates.
func PerSiteMMF(in *Instance) *Allocation {
	alloc := NewAllocation(in)
	n := in.NumJobs()
	demands := make([]float64, n)
	weights := make([]float64, n)
	for j := 0; j < n; j++ {
		weights[j] = in.JobWeight(j)
	}
	for s := range in.SiteCapacity {
		for j := 0; j < n; j++ {
			demands[j] = in.Demand[j][s]
		}
		shares := fairness.WeightedWaterfill(in.SiteCapacity[s], demands, weights)
		for j := 0; j < n; j++ {
			alloc.Share[j][s] = shares[j]
		}
	}
	return alloc
}

package core_test

// The approx-equivalence property tests live in an external test package
// so they can share workload.GenerateLargeGraph with the -largegraph bench
// (the workload package imports core, so an internal test would cycle).

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// approxTrialEps is the epsilon the property sweep certifies: per-job
// aggregates within 1% of the instance scale.
const approxTrialEps = 0.01

func randLargeGraph(rng *rand.Rand, trial int) *core.Instance {
	return workload.GenerateLargeGraph(workload.LargeGraphConfig{
		Jobs:          80 + rng.Intn(120),
		Sites:         12 + rng.Intn(20),
		Degree:        3 + rng.Intn(4),
		CapacityTiers: 2 + rng.Intn(4),
		SiteSkew:      0.4 + rng.Float64(),
		WeightClasses: 1 + rng.Intn(4),
		Seed:          uint64(trial) + 1,
	})
}

// TestApproxEquivalenceWithinEpsilon is the epsilon-bound property test:
// across 200 random single-component large graphs, the approximate path's
// per-job aggregates stay within ApproxEpsilon*Scale of the exact solver,
// for both AMF and Enhanced-AMF with external-weight floors, and the
// reported error bound honors the same budget.
func TestApproxEquivalenceWithinEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(2019))
	exact := core.NewSolver()
	approx := &core.Solver{ApproxEpsilon: approxTrialEps, ApproxThreshold: 1}
	for trial := 0; trial < 200; trial++ {
		in := randLargeGraph(rng, trial)
		enhanced := trial%2 == 1
		if enhanced {
			// External weight shifts every EqualShares floor, the
			// Enhanced-AMF regime the scheduler runs in a shard.
			in.ExternalWeight = rng.Float64() * 8
		}
		solve := func(sv *core.Solver) *core.Allocation {
			t.Helper()
			var a *core.Allocation
			var err error
			if enhanced {
				a, err = sv.EnhancedAMF(in)
			} else {
				a, err = sv.AMF(in)
			}
			if err != nil {
				t.Fatalf("trial %d (enhanced=%v): %v", trial, enhanced, err)
			}
			return a
		}
		want := solve(exact)
		got := solve(approx)

		st := approx.LastStats()
		if st.ApproxComponents == 0 {
			t.Fatalf("trial %d: threshold 1 did not route through the approximate path", trial)
		}
		budget := approxTrialEps * in.Scale()
		if st.ApproxErrorBound > budget {
			t.Fatalf("trial %d: reported error bound %g exceeds budget %g", trial, st.ApproxErrorBound, budget)
		}
		for j := 0; j < in.NumJobs(); j++ {
			dev := math.Abs(got.Aggregate(j) - want.Aggregate(j))
			if dev > budget {
				t.Fatalf("trial %d (enhanced=%v): job %d deviates %g > budget %g (exact %g, approx %g)",
					trial, enhanced, j, dev, budget, want.Aggregate(j), got.Aggregate(j))
			}
		}
	}
}

// TestApproxTinyComponents drives the approximate path over components
// with fewer jobs than the minimum ladder group count (regression: the
// equi-depth ladder indexed out of range on a 2-job component when a low
// threshold routed it approximate).
func TestApproxTinyComponents(t *testing.T) {
	for jobs := 1; jobs <= 6; jobs++ {
		in := workload.GenerateLargeGraph(workload.LargeGraphConfig{
			Jobs: jobs, Sites: 3, Degree: 2, Seed: uint64(jobs),
		})
		exact, err := core.NewSolver().AMF(in)
		if err != nil {
			t.Fatalf("jobs=%d exact: %v", jobs, err)
		}
		sv := &core.Solver{ApproxEpsilon: approxTrialEps, ApproxThreshold: 1}
		got, err := sv.AMF(in)
		if err != nil {
			t.Fatalf("jobs=%d approx: %v", jobs, err)
		}
		budget := approxTrialEps * in.Scale()
		for j := 0; j < jobs; j++ {
			if dev := math.Abs(got.Aggregate(j) - exact.Aggregate(j)); dev > budget {
				t.Fatalf("jobs=%d: job %d deviates %g > budget %g", jobs, j, dev, budget)
			}
		}
	}
}

// TestApproxDisabledBitIdentical pins the exactness knob: epsilon=0 (or an
// unreachable threshold) must produce bit-for-bit the plain solver's
// allocation, with no component reported as approximate.
func TestApproxDisabledBitIdentical(t *testing.T) {
	in := workload.GenerateLargeGraph(workload.LargeGraphConfig{Jobs: 200, Sites: 24, Seed: 42})
	plain := core.NewSolver()
	want, err := plain.AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	for name, sv := range map[string]*core.Solver{
		"epsilon zero":        {ApproxEpsilon: 0, ApproxThreshold: 1},
		"threshold zero":      {ApproxEpsilon: 0.01, ApproxThreshold: 0},
		"threshold unreached": {ApproxEpsilon: 0.01, ApproxThreshold: math.MaxInt},
	} {
		got, err := sv.AMF(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st := sv.LastStats(); st.ApproxComponents != 0 || st.ApproxErrorBound != 0 {
			t.Fatalf("%s: stats report approximate components: %+v", name, st)
		}
		for j := range want.Share {
			for s := range want.Share[j] {
				if got.Share[j][s] != want.Share[j][s] {
					t.Fatalf("%s: share[%d][%d] = %g, want %g (must be bit-identical)",
						name, j, s, got.Share[j][s], want.Share[j][s])
				}
			}
		}
	}
}

// TestApproxThresholdRoutesSmallExact checks the size trigger: with the
// threshold above the instance size the solve is exact, just below it the
// approximate path engages.
func TestApproxThresholdRoutesSmallExact(t *testing.T) {
	in := workload.GenerateLargeGraph(workload.LargeGraphConfig{Jobs: 60, Sites: 12, Degree: 3, Seed: 7})
	size := in.NumJobs() + 60*3 // jobs + edges (degree is exact per job)
	over := &core.Solver{ApproxEpsilon: 0.01, ApproxThreshold: size}
	if _, err := over.AMF(in); err != nil {
		t.Fatal(err)
	}
	if st := over.LastStats(); st.ApproxComponents != 0 {
		t.Fatalf("threshold %d (== size) routed approximate: %+v", size, st)
	}
	under := &core.Solver{ApproxEpsilon: 0.01, ApproxThreshold: size - 1}
	if _, err := under.AMF(in); err != nil {
		t.Fatal(err)
	}
	if st := under.LastStats(); st.ApproxComponents != 1 {
		t.Fatalf("threshold %d (< size) stayed exact: %+v", size-1, st)
	}
}

// TestApproxIncrementalWithinEpsilon drives the approximate path through
// the incremental solver: the spliced result must respect the epsilon
// budget against an exact from-scratch solve, and the fingerprint must
// keep approximate and exact cache entries apart when epsilon changes.
func TestApproxIncrementalWithinEpsilon(t *testing.T) {
	in := workload.GenerateLargeGraph(workload.LargeGraphConfig{Jobs: 150, Sites: 20, Seed: 13})
	in.JobName = make([]string, in.NumJobs())
	for j := range in.JobName {
		in.JobName[j] = "job-" + string(rune('A'+j/26)) + string(rune('a'+j%26))
	}
	exact, err := core.NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}

	inc := &core.IncrementalSolver{Solver: &core.Solver{ApproxEpsilon: approxTrialEps, ApproxThreshold: 1}}
	got, err := inc.Solve(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := inc.LastStats()
	if st.ApproxComponents == 0 {
		t.Fatalf("incremental solve did not route approximate: %+v", st)
	}
	budget := approxTrialEps * in.Scale()
	if st.ApproxErrorBound > budget {
		t.Fatalf("error bound %g exceeds budget %g", st.ApproxErrorBound, budget)
	}
	for j := 0; j < in.NumJobs(); j++ {
		if dev := math.Abs(got.Aggregate(j) - exact.Aggregate(j)); dev > budget {
			t.Fatalf("job %d deviates %g > budget %g", j, dev, budget)
		}
	}

	// Flipping the solver to exact must not splice the approximate cached
	// result: after Reset the solve re-runs exactly.
	inc.Solver.ApproxEpsilon = 0
	inc.Reset()
	got2, err := inc.Solve(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := inc.LastStats(); st.ApproxComponents != 0 {
		t.Fatalf("exact re-solve reported approximate components: %+v", st)
	}
	for j := range exact.Share {
		for s := range exact.Share[j] {
			if got2.Share[j][s] != exact.Share[j][s] {
				t.Fatalf("share[%d][%d] differs from exact after disabling approximation", j, s)
			}
		}
	}
}

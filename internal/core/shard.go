package core

// Shard keys for the cluster router.
//
// The component decomposition (partition.go) already proves that connected
// components of the job×site demand graph are independent sub-problems, so
// component identity is the natural shard key. Components are not stable
// under churn — a bridging job merges two of them — so the router shards by
// the *sites* a job touches (site ownership is the transitive closure of
// component membership) and uses DemandSites/ShardKey/ShardOf to place jobs
// whose sites are not yet owned by any shard.

// DemandSites returns the ascending site indices where demand is positive:
// the job's footprint, and the atom of shard-placement decisions.
func DemandSites(demand []float64) []int {
	var sites []int
	for s, d := range demand {
		if d > 0 {
			sites = append(sites, s)
		}
	}
	return sites
}

// ShardKey returns a stable shard key for a job footprint: an FNV-1a hash
// of the smallest touched site index. ok is false when the footprint is
// empty (a zero-demand job belongs to no component and may be placed
// anywhere).
func ShardKey(sites []int) (key uint64, ok bool) {
	if len(sites) == 0 {
		return 0, false
	}
	min := sites[0]
	for _, s := range sites[1:] {
		if s < min {
			min = s
		}
	}
	h := uint64(fnvOffset)
	for k := 0; k < 64; k += 8 {
		h ^= uint64(byte(uint64(min) >> k))
		h *= fnvPrime
	}
	return h, true
}

// ShardOf maps a shard key onto one of n shards.
func ShardOf(key uint64, n int) int {
	if n <= 1 {
		return 0
	}
	return int(key % uint64(n))
}

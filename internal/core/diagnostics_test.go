package core

import (
	"math/rand"
	"sort"
	"testing"
)

func TestDiagnosticsTwoRounds(t *testing.T) {
	// Jobs 0,1 bottleneck on the small site at 0.5; job 2 demand-caps on
	// the big site.
	in := &Instance{
		SiteCapacity: []float64{1, 6},
		Demand: [][]float64{
			{5, 0},
			{5, 0},
			{0, 5},
		},
	}
	a, diag, err := NewSolver().AMFDiag(in)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, a.Aggregate(0), 0.5, 1e-6, "bottlenecked job")
	if len(diag.Rounds) != 2 {
		t.Fatalf("rounds %d, want 2 (%+v)", len(diag.Rounds), diag.Rounds)
	}
	first := diag.Rounds[0]
	approx(t, first.Level, 0.5, 1e-6, "first bottleneck level")
	got := append([]int(nil), first.Bottlenecked...)
	sort.Ints(got)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("bottlenecked %v, want [0 1]", got)
	}
	// Second round: job 2 demand-capped.
	second := diag.Rounds[1]
	if len(second.DemandCapped) != 1 || second.DemandCapped[0] != 2 {
		t.Fatalf("second round %+v", second)
	}
}

func TestDiagnosticsLimitAndCohort(t *testing.T) {
	in := &Instance{
		SiteCapacity: []float64{1, 6},
		Demand: [][]float64{
			{5, 0},
			{5, 0},
			{0, 5},
		},
	}
	_, diag, err := NewSolver().AMFDiag(in)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Limit(0) != LimitBottleneck {
		t.Fatalf("job 0 limit %v", diag.Limit(0))
	}
	if diag.Limit(2) != LimitDemand {
		t.Fatalf("job 2 limit %v", diag.Limit(2))
	}
	cohort := diag.Cohort(0)
	if len(cohort) != 1 || cohort[0] != 1 {
		t.Fatalf("cohort %v, want [1]", cohort)
	}
	if diag.Cohort(2) != nil {
		t.Fatalf("demand-capped job has cohort %v", diag.Cohort(2))
	}
}

func TestDiagnosticsCoverAllJobs(t *testing.T) {
	rng := rand.New(rand.NewSource(421))
	for trial := 0; trial < 20; trial++ {
		in := randInstance(rng, 2+rng.Intn(10), 1+rng.Intn(5))
		a, diag, err := NewSolver().AMFDiag(in)
		if err != nil {
			t.Fatal(err)
		}
		_ = a
		seen := map[int]int{}
		for _, r := range diag.Rounds {
			for _, j := range r.DemandCapped {
				seen[j]++
			}
			for _, j := range r.Bottlenecked {
				seen[j]++
			}
		}
		for j := 0; j < in.NumJobs(); j++ {
			if in.TotalDemand(j) <= 0 {
				continue // zero-demand jobs never enter the cascade
			}
			if seen[j] != 1 {
				t.Fatalf("trial %d: job %d appears %d times in cascade", trial, j, seen[j])
			}
		}
	}
}

func TestDiagnosticsLevelsNondecreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(431))
	for trial := 0; trial < 20; trial++ {
		in := randInstance(rng, 3+rng.Intn(8), 1+rng.Intn(4))
		_, diag, err := NewSolver().AMFDiag(in)
		if err != nil {
			t.Fatal(err)
		}
		prev := -1.0
		for i, r := range diag.Rounds {
			// The final demand-capped round may jump to the max demand
			// level; bottleneck levels themselves must not decrease.
			if len(r.Bottlenecked) > 0 && r.Level < prev-1e-9 {
				t.Fatalf("trial %d: round %d level %g below %g", trial, i, r.Level, prev)
			}
			if len(r.Bottlenecked) > 0 {
				prev = r.Level
			}
		}
	}
}

func TestEnhancedDiag(t *testing.T) {
	in := sharingIncentiveInstance()
	a, diag, err := NewSolver().EnhancedAMFDiag(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.Rounds) == 0 {
		t.Fatal("no rounds recorded")
	}
	es := EqualShares(in)
	for j := range es {
		if a.Aggregate(j) < es[j]-1e-6 {
			t.Fatalf("job %d below floor", j)
		}
	}
}

func TestJobLimitStrings(t *testing.T) {
	if LimitDemand.String() != "demand-capped" ||
		LimitBottleneck.String() != "bottlenecked" ||
		LimitUnknown.String() != "unknown" {
		t.Fatal("limit strings")
	}
}

func TestDiagnosticsMatchPlainSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(433))
	for trial := 0; trial < 15; trial++ {
		in := randInstance(rng, 2+rng.Intn(8), 1+rng.Intn(4))
		plain, err := NewSolver().AMF(in)
		if err != nil {
			t.Fatal(err)
		}
		withDiag, _, err := NewSolver().AMFDiag(in)
		if err != nil {
			t.Fatal(err)
		}
		for j := range plain.Share {
			if plain.Aggregate(j) != withDiag.Aggregate(j) {
				t.Fatalf("trial %d: diagnostics changed the solve", trial)
			}
		}
	}
}

package core

import (
	"testing"
)

// multiComponentInstance builds k independent 2-job/2-site blocks, so the
// demand graph has exactly k connected components.
func multiComponentInstance(k int) *Instance {
	in := &Instance{
		SiteCapacity: make([]float64, 2*k),
		Demand:       make([][]float64, 2*k),
		JobName:      make([]string, 2*k),
	}
	for b := 0; b < k; b++ {
		in.SiteCapacity[2*b] = 4
		in.SiteCapacity[2*b+1] = 4
		for i := 0; i < 2; i++ {
			j := 2*b + i
			row := make([]float64, 2*k)
			row[2*b] = 3
			row[2*b+1] = 1
			in.Demand[j] = row
			in.JobName[j] = string(rune('a'+b)) + string(rune('0'+i))
		}
	}
	return in
}

// TestSolverStageEventsDecomposed: the decomposed solve path reports
// partition and solve stages in order, plus one detail event per
// component, and the hook sees everything from the caller's goroutine.
func TestSolverStageEventsDecomposed(t *testing.T) {
	const k = 4
	var events []StageEvent
	sv := &Solver{OnStage: func(ev StageEvent) { events = append(events, ev) }}
	if _, err := sv.AMF(multiComponentInstance(k)); err != nil {
		t.Fatal(err)
	}
	var order []string
	details := 0
	for _, ev := range events {
		if ev.Detail {
			if ev.Name != StageSolveComponent {
				t.Fatalf("detail event %q", ev.Name)
			}
			details++
			continue
		}
		if ev.Duration < 0 {
			t.Fatalf("stage %s has negative duration %v", ev.Name, ev.Duration)
		}
		order = append(order, ev.Name)
	}
	if details != k {
		t.Fatalf("got %d solve.component details, want %d", details, k)
	}
	want := []string{StagePartition, StageSolve}
	if len(order) != len(want) {
		t.Fatalf("stage order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("stage order = %v, want %v", order, want)
		}
	}
}

// TestSolverStageEventsIncremental: the incremental path reports the full
// validate → partition → solve → merge sequence, with one detail event
// per component actually re-solved.
func TestSolverStageEventsIncremental(t *testing.T) {
	const k = 3
	var events []StageEvent
	sv := NewSolver()
	sv.OnStage = func(ev StageEvent) { events = append(events, ev) }
	x := &IncrementalSolver{Solver: sv}

	in := multiComponentInstance(k)
	if _, err := x.Solve(in, nil); err != nil {
		t.Fatal(err)
	}
	checkIncrementalStages(t, events, x.LastStats().Solved)

	// A dirty job in one component re-solves just that component: still
	// the full stage sequence, but only one detail event.
	events = nil
	in.Demand[0][0] = 2
	if _, err := x.Solve(in, map[string]bool{in.JobName[0]: true}); err != nil {
		t.Fatal(err)
	}
	if solved := x.LastStats().Solved; solved != 1 {
		t.Fatalf("re-solved %d components, want 1", solved)
	}
	checkIncrementalStages(t, events, 1)
}

func checkIncrementalStages(t *testing.T, events []StageEvent, wantDetails int) {
	t.Helper()
	var order []string
	details := 0
	for _, ev := range events {
		if ev.Detail {
			details++
			continue
		}
		order = append(order, ev.Name)
	}
	want := []string{StageValidate, StagePartition, StageSolve, StageMerge}
	if len(order) != len(want) {
		t.Fatalf("stage order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("stage order = %v, want %v", order, want)
		}
	}
	if details != wantDetails {
		t.Fatalf("got %d detail events, want %d", details, wantDetails)
	}
}

// TestSolverNilOnStage: an uninstrumented solver must not emit (or crash).
func TestSolverNilOnStage(t *testing.T) {
	sv := &Solver{}
	if _, err := sv.AMF(multiComponentInstance(2)); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"repro/internal/maxflow"
)

// network wraps the bipartite flow network used as the feasibility oracle:
//
//	src --(target_j)--> job_j --(d[j][s])--> site_s --(c_s)--> sink
//
// A target vector (t_1..t_n) of aggregate allocations is feasible iff the
// max flow equals sum(t_j). The network is built once per solve; only the
// source-edge capacities change between queries.
type network struct {
	in      *Instance
	g       *maxflow.Graph
	src     int
	sink    int
	srcEdge []maxflow.EdgeID
	// jobEdges[j] lists job j's (site, edge) pairs for sites with positive
	// demand; used to read the witness split out of the final flow.
	jobEdges [][]siteEdge
	scale    float64
	flowEps  float64
}

type siteEdge struct {
	site int
	id   maxflow.EdgeID
}

func (nw *network) jobNode(j int) int  { return 1 + j }
func (nw *network) siteNode(s int) int { return 1 + nw.in.NumJobs() + s }

// buildNetwork constructs the flow network for the instance. flowEps is the
// residual-slack threshold handed to the max-flow solver.
func buildNetwork(in *Instance, flowEps float64) *network {
	nw := &network{}
	nw.rebuild(in, flowEps)
	return nw
}

// rebuild (re)constructs the flow network in place, reusing the graph's arc
// storage and the edge-index slices of a previous solve when present. This
// is what makes a warm solver cheap to re-run: the serving engine re-solves
// a nearly identical instance on every batch commit, and rebuilding in
// place turns that into pure writes over already-allocated arenas.
func (nw *network) rebuild(in *Instance, flowEps float64) {
	n := in.NumJobs()
	m := in.NumSites()
	nw.in = in
	nw.src = 0
	nw.sink = 1 + n + m
	nw.scale = in.Scale()
	nw.flowEps = flowEps
	if nw.g == nil {
		nw.g = maxflow.New(2 + n + m)
	} else {
		nw.g.Reuse(2 + n + m)
	}
	nw.g.SetEps(flowEps)
	if cap(nw.srcEdge) < n {
		nw.srcEdge = make([]maxflow.EdgeID, n)
	} else {
		nw.srcEdge = nw.srcEdge[:n]
	}
	if cap(nw.jobEdges) < n {
		nw.jobEdges = append(nw.jobEdges[:cap(nw.jobEdges)], make([][]siteEdge, n-cap(nw.jobEdges))...)
	} else {
		nw.jobEdges = nw.jobEdges[:n]
	}
	for j := 0; j < n; j++ {
		nw.jobEdges[j] = nw.jobEdges[j][:0]
		nw.srcEdge[j] = nw.g.AddEdge(nw.src, nw.jobNode(j), 0)
		for s := 0; s < m; s++ {
			if d := in.Demand[j][s]; d > 0 {
				id := nw.g.AddEdge(nw.jobNode(j), nw.siteNode(s), d)
				nw.jobEdges[j] = append(nw.jobEdges[j], siteEdge{site: s, id: id})
			}
		}
	}
	for s := 0; s < m; s++ {
		nw.g.AddEdge(nw.siteNode(s), nw.sink, in.SiteCapacity[s])
	}
}

// maxFlowAt installs the target vector on the source edges, clears previous
// flow and runs max flow from scratch. It returns the flow value and the
// target sum. Flow state is left on the graph for cut extraction.
func (nw *network) maxFlowAt(targets []float64) (flow, want float64) {
	for j, t := range targets {
		if t < 0 {
			t = 0
		}
		nw.g.SetCap(nw.srcEdge[j], t)
		want += t
	}
	nw.g.Reset()
	flow = nw.g.MaxFlow(nw.src, nw.sink)
	return flow, want
}

// checkpoint remembers a feasible flow so later probes can augment
// incrementally instead of recomputing from zero.
type checkpoint struct {
	state maxflow.State
	flow  float64
}

// saveCheckpointTo captures the current (feasible) flow state into cp,
// reusing its buffers across rounds and across solves.
func (nw *network) saveCheckpointTo(cp *checkpoint, flow float64) {
	nw.g.SaveStateTo(&cp.state)
	cp.flow = flow
}

// probeFrom restores the checkpoint, raises the source capacities to the
// target vector (which must dominate the checkpoint's levels) and augments
// to max flow. It returns the new flow value and the target sum.
func (nw *network) probeFrom(cp *checkpoint, targets []float64) (flow, want float64) {
	nw.g.RestoreState(&cp.state)
	for j, t := range targets {
		if t < 0 {
			t = 0
		}
		nw.g.RaiseCap(nw.srcEdge[j], t)
		want += t
	}
	flow = cp.flow + nw.g.MaxFlow(nw.src, nw.sink)
	return flow, want
}

// feasible reports whether the target vector is feasible within tol.
func (nw *network) feasible(targets []float64, tol float64) bool {
	flow, want := nw.maxFlowAt(targets)
	return flow >= want-tol
}

// shares reads the per-site split of the current flow into the allocation.
// Flows below numerical dust are dropped: a 1e-14 sliver on a work site
// would turn an infinite fluid completion time into an astronomically
// finite one.
func (nw *network) shares(out *Allocation) {
	dust := 100 * nw.flowEps
	for j, edges := range nw.jobEdges {
		row := out.Share[j]
		for s := range row {
			row[s] = 0
		}
		for _, se := range edges {
			if f := nw.g.Flow(se.id); f > dust {
				row[se.site] = f
			}
		}
	}
}

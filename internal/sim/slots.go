package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/workload"
)

// SlotConfig parameterizes the slot-granular task simulator.
type SlotConfig struct {
	// SlotsPerSite is the integral slot count of each site.
	SlotsPerSite []int
	// Policy decides each job's slot quota whenever the cluster state
	// changes.
	Policy Policy
	// Solver overrides the default core solver (optional).
	Solver *core.Solver
	// Preemptive lets the scheduler stop running tasks of jobs above their
	// quota (checkpointing semantics: a preempted task keeps its remaining
	// duration and is requeued). Without it, quota changes only take
	// effect as tasks drain — the realistic default.
	Preemptive bool
}

// SlotResult aggregates a slot-granular run.
type SlotResult struct {
	Jobs []JobRecord
	// Utilization is the time-averaged fraction of slots busy until the
	// makespan.
	Utilization float64
	Makespan    float64
	// TasksStarted counts task launches. Without preemption it equals the
	// total task count on a successful run; with preemption, restarts of
	// checkpointed tasks count again.
	TasksStarted int
}

// runningTask tracks one occupied slot; preemption cancels the pending
// finish event via the cancelled flag.
type runningTask struct {
	finish    float64
	cancelled bool
}

type slotJob struct {
	job     *workload.Job
	pending [][]float64      // per site: stack of pending task durations
	running []int            // per site: running task count
	run     [][]*runningTask // per site: running task records
	left    int              // tasks not yet finished
}

// RunSlots executes the job stream on integral slots: the policy's
// fractional allocation is rounded to per-site slot quotas (largest
// remainder) and free slots are handed to the jobs furthest below quota.
// By default tasks run to completion, so quota changes take effect as
// running tasks drain — the behaviour of a real cluster scheduler, which
// is exactly the discretization the fluid model ignores; with
// SlotConfig.Preemptive the scheduler instead stops over-quota tasks and
// requeues their remainders (checkpointing).
func RunSlots(cfg SlotConfig, jobs []workload.Job) (result SlotResult, err error) {
	// The scheduler body reports allocator failures by panicking out of
	// event closures; convert those to errors at the boundary.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: %v", r)
		}
	}()
	m := len(cfg.SlotsPerSite)
	if m == 0 {
		return SlotResult{}, fmt.Errorf("sim: no sites")
	}
	for s, c := range cfg.SlotsPerSite {
		if c < 0 {
			return SlotResult{}, fmt.Errorf("sim: negative slot count at site %d", s)
		}
	}

	eng := NewEngine()
	var (
		active   []*slotJob
		records  []JobRecord
		busy     int
		busyInt  float64
		lastTime float64
		started  int
	)
	totalSlots := 0
	for _, c := range cfg.SlotsPerSite {
		totalSlots += c
	}
	free := append([]int(nil), cfg.SlotsPerSite...)

	accountTime := func() {
		now := eng.Now()
		busyInt += float64(busy) * (now - lastTime)
		lastTime = now
	}

	var reschedule func()

	finishTask := func(sj *slotJob, s int, task *runningTask) func() {
		return func() {
			if task.cancelled {
				return // preempted; the slot was freed at preemption time
			}
			accountTime()
			busy--
			free[s]++
			sj.running[s]--
			for i, rt := range sj.run[s] {
				if rt == task {
					sj.run[s] = append(sj.run[s][:i], sj.run[s][i+1:]...)
					break
				}
			}
			sj.left--
			if sj.left == 0 {
				records = append(records, JobRecord{
					ID:         sj.job.ID,
					Arrival:    sj.job.Arrival,
					Completion: eng.Now(),
					TotalWork:  sj.job.TotalWork(),
					NumTasks:   len(sj.job.Tasks),
					Weight:     sj.job.Weight,
				})
				for i, a := range active {
					if a == sj {
						active = append(active[:i], active[i+1:]...)
						break
					}
				}
			}
			reschedule()
		}
	}

	startTask := func(sj *slotJob, s int) {
		n := len(sj.pending[s])
		d := sj.pending[s][n-1]
		sj.pending[s] = sj.pending[s][:n-1]
		task := &runningTask{finish: eng.Now() + d}
		sj.running[s]++
		sj.run[s] = append(sj.run[s], task)
		free[s]--
		busy++
		started++
		eng.Schedule(task.finish, finishTask(sj, s, task))
	}

	// preempt stops the running task of sj at site s with the most
	// remaining time, requeueing its remainder (checkpoint semantics).
	preempt := func(sj *slotJob, s int) {
		best := -1
		for i, rt := range sj.run[s] {
			if best < 0 || rt.finish > sj.run[s][best].finish {
				best = i
			}
		}
		if best < 0 {
			return
		}
		rt := sj.run[s][best]
		rt.cancelled = true
		sj.run[s] = append(sj.run[s][:best], sj.run[s][best+1:]...)
		sj.running[s]--
		sj.pending[s] = append(sj.pending[s], rt.finish-eng.Now())
		busy--
		free[s]++
	}

	reschedule = func() {
		if len(active) == 0 {
			return
		}
		// Build the residual instance: demand = outstanding task count,
		// work = pending durations + remaining run time.
		now := eng.Now()
		in := &core.Instance{
			SiteCapacity: make([]float64, m),
			Demand:       make([][]float64, len(active)),
			Work:         make([][]float64, len(active)),
			Weight:       make([]float64, len(active)),
		}
		for s := 0; s < m; s++ {
			in.SiteCapacity[s] = float64(cfg.SlotsPerSite[s])
		}
		for i, sj := range active {
			d := make([]float64, m)
			w := make([]float64, m)
			for s := 0; s < m; s++ {
				d[s] = float64(len(sj.pending[s]) + sj.running[s])
				w[s] = 0
				for _, dur := range sj.pending[s] {
					w[s] += dur
				}
				for _, rt := range sj.run[s] {
					w[s] += rt.finish - now
				}
			}
			in.Demand[i] = d
			in.Work[i] = w
			in.Weight[i] = sj.job.Weight
		}
		alloc, err := cfg.Policy.Allocate(cfg.Solver, in)
		if err != nil {
			panic(fmt.Sprintf("sim: slot allocation failed at t=%g: %v", now, err))
		}
		// Round per site to integral quotas, then hand out free slots by
		// largest deficit.
		for s := 0; s < m; s++ {
			quota := roundQuotas(alloc, active, s, cfg.SlotsPerSite[s])
			if cfg.Preemptive {
				accountTime()
				for i, sj := range active {
					for sj.running[s] > quota[i] {
						preempt(sj, s)
					}
				}
			}
			for free[s] > 0 {
				best := -1
				bestDef := 0
				for i, sj := range active {
					def := quota[i] - sj.running[s]
					if def > bestDef && len(sj.pending[s]) > 0 {
						best, bestDef = i, def
					}
				}
				if best < 0 {
					// Work-conserving backfill: quotas may round to zero
					// while tasks still wait; give the slot to any job with
					// pending work.
					for i, sj := range active {
						if len(sj.pending[s]) > 0 {
							best = i
							break
						}
					}
					_ = bestDef
				}
				if best < 0 {
					break
				}
				startTask(active[best], s)
			}
		}
	}

	// Schedule arrivals.
	ordered := make([]*workload.Job, len(jobs))
	for i := range jobs {
		ordered[i] = &jobs[i]
	}
	sort.SliceStable(ordered, func(a, b int) bool { return ordered[a].Arrival < ordered[b].Arrival })
	for _, j := range ordered {
		j := j
		eng.Schedule(j.Arrival, func() {
			accountTime()
			sj := &slotJob{
				job:     j,
				pending: make([][]float64, m),
				running: make([]int, m),
				run:     make([][]*runningTask, m),
				left:    len(j.Tasks),
			}
			for _, t := range j.Tasks {
				sj.pending[t.Site] = append(sj.pending[t.Site], t.Duration)
			}
			if sj.left == 0 {
				records = append(records, JobRecord{
					ID: j.ID, Arrival: j.Arrival, Completion: j.Arrival,
					Weight: j.Weight,
				})
				return
			}
			active = append(active, sj)
			reschedule()
		})
	}

	eng.Run()
	res := SlotResult{
		Jobs:         records,
		Makespan:     eng.Now(),
		TasksStarted: started,
	}
	if eng.Now() > 0 && totalSlots > 0 {
		res.Utilization = busyInt / (float64(totalSlots) * eng.Now())
	}
	sort.Slice(res.Jobs, func(a, b int) bool { return res.Jobs[a].ID < res.Jobs[b].ID })
	if remaining := len(jobs) - len(res.Jobs); remaining != 0 {
		return res, fmt.Errorf("sim: %d jobs never completed", remaining)
	}
	return res, nil
}

// roundQuotas converts fractional shares at site s into integer quotas
// summing to at most the slot count, using largest remainders.
func roundQuotas(alloc *core.Allocation, active []*slotJob, s, slots int) []int {
	n := len(active)
	quota := make([]int, n)
	type frac struct {
		idx int
		f   float64
	}
	var fracs []frac
	used := 0
	for i := 0; i < n; i++ {
		sh := alloc.Share[i][s]
		q := int(math.Floor(sh + 1e-9))
		quota[i] = q
		used += q
		fracs = append(fracs, frac{idx: i, f: sh - float64(q)})
	}
	sort.Slice(fracs, func(a, b int) bool { return fracs[a].f > fracs[b].f })
	for _, fr := range fracs {
		if used >= slots {
			break
		}
		if fr.f > 1e-9 {
			quota[fr.idx]++
			used++
		}
	}
	return quota
}

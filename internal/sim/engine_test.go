package sim

import "testing"

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
	if e.Now() != 3 {
		t.Fatalf("clock %g", e.Now())
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(1, func() { order = append(order, "a") })
	e.Schedule(1, func() { order = append(order, "b") })
	e.Run()
	if order[0] != "a" || order[1] != "b" {
		t.Fatalf("tie order %v", order)
	}
}

func TestEngineScheduleDuringRun(t *testing.T) {
	e := NewEngine()
	var hits []float64
	e.Schedule(1, func() {
		hits = append(hits, e.Now())
		e.Schedule(2, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 2 {
		t.Fatalf("hits %v", hits)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	e.Schedule(1, func() {})
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, at := range []float64{1, 2, 5} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 2 {
		t.Fatalf("fired %v", fired)
	}
	if e.Now() != 3 {
		t.Fatalf("clock %g, want 3", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d", e.Pending())
	}
	e.Run()
	if len(fired) != 3 || e.Now() != 5 {
		t.Fatalf("after Run: fired %v, now %g", fired, e.Now())
	}
}

func TestEngineStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
}

package sim

import (
	"repro/internal/stats"
)

// JCTs extracts the completion-time vector of a job record set.
func JCTs(jobs []JobRecord) []float64 {
	out := make([]float64, len(jobs))
	for i, r := range jobs {
		out[i] = r.JCT()
	}
	return out
}

// MeanJCT reports the average completion time.
func MeanJCT(jobs []JobRecord) float64 { return stats.Mean(JCTs(jobs)) }

// PercentileJCT reports the p-th percentile completion time.
func PercentileJCT(jobs []JobRecord, p float64) float64 {
	return stats.Percentile(JCTs(jobs), p)
}

// Slowdowns normalizes each job's JCT by a caller-supplied ideal time
// (e.g. its critical path under unlimited resources), yielding the
// slowdown distribution. Jobs whose ideal time is non-positive are
// skipped.
func Slowdowns(jobs []JobRecord, ideal func(JobRecord) float64) []float64 {
	var out []float64
	for _, r := range jobs {
		base := ideal(r)
		if base <= 0 {
			continue
		}
		out = append(out, r.JCT()/base)
	}
	return out
}

package sim

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func TestSlotsSingleJobSequential(t *testing.T) {
	// 3 unit tasks, 1 slot: strictly sequential, JCT 3.
	jobs := []workload.Job{{
		ID: 0, Weight: 1,
		Tasks: []workload.Task{
			{Site: 0, Duration: 1}, {Site: 0, Duration: 1}, {Site: 0, Duration: 1},
		},
	}}
	res, err := RunSlots(SlotConfig{SlotsPerSite: []int{1}, Policy: PolicyAMF}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Jobs[0].JCT()-3) > 1e-9 {
		t.Fatalf("JCT %g, want 3", res.Jobs[0].JCT())
	}
	if res.TasksStarted != 3 {
		t.Fatalf("started %d tasks", res.TasksStarted)
	}
	if math.Abs(res.Utilization-1) > 1e-9 {
		t.Fatalf("utilization %g", res.Utilization)
	}
}

func TestSlotsParallelTasks(t *testing.T) {
	// 3 unit tasks, 3 slots: fully parallel, JCT 1.
	jobs := []workload.Job{{
		ID: 0, Weight: 1,
		Tasks: []workload.Task{
			{Site: 0, Duration: 1}, {Site: 0, Duration: 1}, {Site: 0, Duration: 1},
		},
	}}
	res, err := RunSlots(SlotConfig{SlotsPerSite: []int{3}, Policy: PolicyAMF}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Jobs[0].JCT()-1) > 1e-9 {
		t.Fatalf("JCT %g, want 1", res.Jobs[0].JCT())
	}
}

func TestSlotsFairSplitTwoJobs(t *testing.T) {
	// Two jobs, 4 tasks each (unit duration), 2 slots. Job 0's arrival
	// event runs first, so it grabs both slots for the first unit
	// (non-preemptive; quotas only bind as tasks drain). Afterwards each
	// holds one slot: job 0 finishes its remaining 2 tasks by t=3, job 1
	// its 4 sequential tasks by t=4. The makespan matches the fair
	// fluid outcome exactly.
	mk := func(id int) workload.Job {
		j := workload.Job{ID: id, Weight: 1}
		for i := 0; i < 4; i++ {
			j.Tasks = append(j.Tasks, workload.Task{Site: 0, Duration: 1})
		}
		return j
	}
	res, err := RunSlots(SlotConfig{SlotsPerSite: []int{2}, Policy: PolicyAMF},
		[]workload.Job{mk(0), mk(1)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Jobs[0].JCT()-3) > 1e-9 {
		t.Fatalf("job 0 JCT %g, want 3", res.Jobs[0].JCT())
	}
	if math.Abs(res.Jobs[1].JCT()-4) > 1e-9 {
		t.Fatalf("job 1 JCT %g, want 4", res.Jobs[1].JCT())
	}
	if math.Abs(res.Makespan-4) > 1e-9 {
		t.Fatalf("makespan %g, want 4", res.Makespan)
	}
}

func TestSlotsWorkConservingBackfill(t *testing.T) {
	// One tiny job and one big job on 4 slots: when the tiny job has no
	// pending tasks left, its quota must flow to the big one.
	tiny := workload.Job{ID: 0, Weight: 1, Tasks: []workload.Task{{Site: 0, Duration: 10}}}
	big := workload.Job{ID: 1, Weight: 1}
	for i := 0; i < 12; i++ {
		big.Tasks = append(big.Tasks, workload.Task{Site: 0, Duration: 1})
	}
	res, err := RunSlots(SlotConfig{SlotsPerSite: []int{4}, Policy: PolicyAMF},
		[]workload.Job{tiny, big})
	if err != nil {
		t.Fatal(err)
	}
	// Big job runs on 3 slots while tiny holds one: 12 tasks / 3 slots = 4.
	if res.Jobs[1].JCT() > 4+1e-9 {
		t.Fatalf("big job JCT %g, want <= 4 (backfill broken?)", res.Jobs[1].JCT())
	}
}

func TestSlotsLateArrivalNonPreemptive(t *testing.T) {
	// Job 0 grabs both slots with long tasks; job 1 arrives later and must
	// wait for a slot to free (no preemption).
	first := workload.Job{ID: 0, Weight: 1, Tasks: []workload.Task{
		{Site: 0, Duration: 4}, {Site: 0, Duration: 4},
	}}
	second := workload.Job{ID: 1, Arrival: 1, Weight: 1, Tasks: []workload.Task{
		{Site: 0, Duration: 1},
	}}
	res, err := RunSlots(SlotConfig{SlotsPerSite: []int{2}, Policy: PolicyAMF},
		[]workload.Job{first, second})
	if err != nil {
		t.Fatal(err)
	}
	// Second job starts at t=4 when a slot frees, done at 5, JCT 4.
	if math.Abs(res.Jobs[1].Completion-5) > 1e-9 {
		t.Fatalf("late job completes at %g, want 5", res.Jobs[1].Completion)
	}
}

func TestSlotsAllPoliciesComplete(t *testing.T) {
	jobs := workload.GenerateStream(workload.StreamConfig{
		NumSites: 3, Lambda: 1, NumJobs: 25, Skew: 1, TasksPerJobMean: 5,
		TaskDurationMean: 0.5, Seed: 43,
	})
	for _, p := range Policies() {
		res, err := RunSlots(SlotConfig{SlotsPerSite: []int{3, 3, 3}, Policy: p}, jobs)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(res.Jobs) != len(jobs) {
			t.Fatalf("%s: %d of %d completed", p, len(res.Jobs), len(jobs))
		}
		total := 0
		for i := range jobs {
			total += len(jobs[i].Tasks)
		}
		if res.TasksStarted != total {
			t.Fatalf("%s: started %d of %d tasks", p, res.TasksStarted, total)
		}
	}
}

func TestSlotsDeterministic(t *testing.T) {
	jobs := workload.GenerateStream(workload.StreamConfig{
		NumSites: 2, Lambda: 1, NumJobs: 12, Seed: 47,
	})
	r1, err := RunSlots(SlotConfig{SlotsPerSite: []int{2, 2}, Policy: PolicyAMF}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSlots(SlotConfig{SlotsPerSite: []int{2, 2}, Policy: PolicyAMF}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Jobs {
		if r1.Jobs[i].Completion != r2.Jobs[i].Completion {
			t.Fatal("slot sim not deterministic")
		}
	}
}

func TestSlotsZeroTaskJob(t *testing.T) {
	jobs := []workload.Job{{ID: 0, Arrival: 2, Weight: 1}}
	res, err := RunSlots(SlotConfig{SlotsPerSite: []int{1}, Policy: PolicyAMF}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 1 || res.Jobs[0].JCT() != 0 {
		t.Fatalf("zero-task job record %v", res.Jobs)
	}
}

func TestSlotsNoSitesError(t *testing.T) {
	if _, err := RunSlots(SlotConfig{Policy: PolicyAMF}, nil); err == nil {
		t.Fatal("expected error with no sites")
	}
}

func TestSlotsNegativeSlotsError(t *testing.T) {
	if _, err := RunSlots(SlotConfig{SlotsPerSite: []int{-1}, Policy: PolicyAMF}, nil); err == nil {
		t.Fatal("expected error with negative slots")
	}
}

func TestSlotsVsFluidAgreement(t *testing.T) {
	// On coarse workloads the two simulators must agree on mean JCT within
	// discretization error (tasks are unit-ish, slots are plentiful).
	jobs := workload.GenerateStream(workload.StreamConfig{
		NumSites: 2, Lambda: 0.5, NumJobs: 20, TasksPerJobMean: 6,
		TaskDurationMean: 1, Seed: 53,
	})
	fl, err := RunFluid(FluidConfig{SiteCapacity: []float64{6, 6}, Policy: PolicyAMF}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := RunSlots(SlotConfig{SlotsPerSite: []int{6, 6}, Policy: PolicyAMF}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	fm, sm := MeanJCT(fl.Jobs), MeanJCT(sl.Jobs)
	if sm < fm*0.5 || sm > fm*2.5 {
		t.Fatalf("fluid mean JCT %g vs slot %g: discretization gap too large", fm, sm)
	}
}

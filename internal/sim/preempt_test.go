package sim

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func TestPreemptiveReclaimsSlots(t *testing.T) {
	// Job 0 grabs both slots with long tasks; job 1 arrives at t=1.
	// Non-preemptive: job 1 waits until t=4. Preemptive: one of job 0's
	// tasks is checkpointed immediately and job 1 starts at t=1.
	mk := func() []workload.Job {
		return []workload.Job{
			{ID: 0, Weight: 1, Tasks: []workload.Task{
				{Site: 0, Duration: 4}, {Site: 0, Duration: 4},
			}},
			{ID: 1, Arrival: 1, Weight: 1, Tasks: []workload.Task{
				{Site: 0, Duration: 1},
			}},
		}
	}
	nonp, err := RunSlots(SlotConfig{SlotsPerSite: []int{2}, Policy: PolicyAMF}, mk())
	if err != nil {
		t.Fatal(err)
	}
	pre, err := RunSlots(SlotConfig{SlotsPerSite: []int{2}, Policy: PolicyAMF, Preemptive: true}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nonp.Jobs[1].Completion-5) > 1e-9 {
		t.Fatalf("non-preemptive late job completes at %g, want 5", nonp.Jobs[1].Completion)
	}
	if math.Abs(pre.Jobs[1].Completion-2) > 1e-9 {
		t.Fatalf("preemptive late job completes at %g, want 2", pre.Jobs[1].Completion)
	}
}

func TestPreemptiveConservesWork(t *testing.T) {
	// Checkpointing must not lose or duplicate work: job 0's preempted
	// task resumes with its remainder, so its completion is exactly the
	// fair-share outcome.
	jobs := []workload.Job{
		{ID: 0, Weight: 1, Tasks: []workload.Task{
			{Site: 0, Duration: 4}, {Site: 0, Duration: 4},
		}},
		{ID: 1, Arrival: 1, Weight: 1, Tasks: []workload.Task{
			{Site: 0, Duration: 1},
		}},
	}
	pre, err := RunSlots(SlotConfig{SlotsPerSite: []int{2}, Policy: PolicyAMF, Preemptive: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Total work = 9 slot-units on 2 slots; busy time integral must match.
	totalWork := 9.0
	busy := pre.Utilization * 2 * pre.Makespan
	if math.Abs(busy-totalWork) > 1e-6 {
		t.Fatalf("busy integral %g, want %g (work lost or duplicated)", busy, totalWork)
	}
	// Job 0: task A runs 0..4; task B runs 0..1, is checkpointed with 3
	// units left, resumes at t=2 when job 1 finishes, and completes at 5
	// (tasks are atomic, so the remainder cannot spread over both slots).
	if math.Abs(pre.Jobs[0].Completion-5) > 1e-9 {
		t.Fatalf("job 0 completes at %g, want 5", pre.Jobs[0].Completion)
	}
}

func TestPreemptiveAllJobsComplete(t *testing.T) {
	jobs := workload.GenerateStream(workload.StreamConfig{
		NumSites: 3, Lambda: 1, NumJobs: 30, Skew: 1.2, PerJobSkew: true,
		TasksPerJobMean: 5, TaskDurationMean: 0.8, Seed: 73,
	})
	for _, p := range []Policy{PolicyPSMMF, PolicyAMF} {
		res, err := RunSlots(SlotConfig{
			SlotsPerSite: []int{3, 3, 3}, Policy: p, Preemptive: true,
		}, jobs)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(res.Jobs) != len(jobs) {
			t.Fatalf("%s: %d of %d completed", p, len(res.Jobs), len(jobs))
		}
		total := 0
		for i := range jobs {
			total += len(jobs[i].Tasks)
		}
		if res.TasksStarted < total {
			t.Fatalf("%s: started %d below task count %d", p, res.TasksStarted, total)
		}
	}
}

func TestPreemptiveTracksFluidCloser(t *testing.T) {
	// Preemption removes the drain lag, so slot-granular mean JCT should
	// sit at least as close to the fluid model as the non-preemptive run
	// (allowing a little noise).
	jobs := workload.GenerateStream(workload.StreamConfig{
		NumSites: 2, Lambda: 0.8, NumJobs: 25, Skew: 1, PerJobSkew: true,
		TasksPerJobMean: 6, Seed: 79,
	})
	fl, err := RunFluid(FluidConfig{SiteCapacity: []float64{4, 4}, Policy: PolicyAMF}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	nonp, err := RunSlots(SlotConfig{SlotsPerSite: []int{4, 4}, Policy: PolicyAMF}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := RunSlots(SlotConfig{SlotsPerSite: []int{4, 4}, Policy: PolicyAMF, Preemptive: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	fm := MeanJCT(fl.Jobs)
	gapNon := math.Abs(MeanJCT(nonp.Jobs) - fm)
	gapPre := math.Abs(MeanJCT(pre.Jobs) - fm)
	if gapPre > gapNon*1.25+0.1 {
		t.Fatalf("preemptive gap %g much worse than non-preemptive %g (fluid %g)",
			gapPre, gapNon, fm)
	}
}

func TestPreemptiveDeterministic(t *testing.T) {
	jobs := workload.GenerateStream(workload.StreamConfig{
		NumSites: 2, Lambda: 1, NumJobs: 15, Seed: 83,
	})
	r1, err := RunSlots(SlotConfig{SlotsPerSite: []int{2, 2}, Policy: PolicyAMF, Preemptive: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSlots(SlotConfig{SlotsPerSite: []int{2, 2}, Policy: PolicyAMF, Preemptive: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Jobs {
		if r1.Jobs[i].Completion != r2.Jobs[i].Completion {
			t.Fatal("preemptive sim not deterministic")
		}
	}
}

package sim

import (
	"testing"

	"repro/internal/core"
)

func TestPolicyStringsRoundTrip(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if got != p {
			t.Fatalf("round trip %s -> %s", p, got)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Fatal("unknown policy parsed")
	}
	if Policy(99).String() == "" {
		t.Fatal("unknown policy must render")
	}
}

func TestPolicyAllocateDispatch(t *testing.T) {
	in := &core.Instance{
		SiteCapacity: []float64{2},
		Demand:       [][]float64{{2}, {2}},
	}
	for _, p := range Policies() {
		a, err := p.Allocate(nil, in)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if err := a.CheckFeasible(1e-6); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		// Symmetric instance: both jobs must get 1 under every policy.
		for j := 0; j < 2; j++ {
			if d := a.Aggregate(j) - 1; d > 1e-6 || d < -1e-6 {
				t.Fatalf("%s: job %d aggregate %g, want 1", p, j, a.Aggregate(j))
			}
		}
	}
	if _, err := Policy(99).Allocate(nil, in); err == nil {
		t.Fatal("unknown policy allocated")
	}
}

func TestPolicyAllocateCustomSolver(t *testing.T) {
	in := &core.Instance{
		SiteCapacity: []float64{2},
		Demand:       [][]float64{{2}, {2}},
	}
	sv := &core.Solver{Method: core.MethodBisect}
	a, err := PolicyAMF.Allocate(sv, in)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckFeasible(1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestSlowdowns(t *testing.T) {
	jobs := []JobRecord{
		{ID: 0, Arrival: 0, Completion: 4, TotalWork: 2},
		{ID: 1, Arrival: 0, Completion: 1, TotalWork: 0}, // skipped
	}
	out := Slowdowns(jobs, func(r JobRecord) float64 { return r.TotalWork })
	if len(out) != 1 || out[0] != 2 {
		t.Fatalf("slowdowns %v", out)
	}
}

func TestJCTHelpers(t *testing.T) {
	jobs := []JobRecord{
		{Arrival: 0, Completion: 2},
		{Arrival: 1, Completion: 5},
	}
	v := JCTs(jobs)
	if v[0] != 2 || v[1] != 4 {
		t.Fatalf("JCTs %v", v)
	}
	if MeanJCT(jobs) != 3 {
		t.Fatalf("mean %g", MeanJCT(jobs))
	}
	if PercentileJCT(jobs, 100) != 4 {
		t.Fatalf("p100 %g", PercentileJCT(jobs, 100))
	}
}

package sim

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func TestPeriodicReallocFewerSolves(t *testing.T) {
	jobs := workload.GenerateStream(workload.StreamConfig{
		NumSites: 3, Lambda: 1, NumJobs: 25, Skew: 1, PerJobSkew: true,
		TasksPerJobMean: 5, Seed: 61,
	})
	event, err := RunFluid(FluidConfig{
		SiteCapacity: []float64{3, 3, 3}, Policy: PolicyAMF,
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	periodic, err := RunFluid(FluidConfig{
		SiteCapacity: []float64{3, 3, 3}, Policy: PolicyAMF,
		ReallocInterval: 5,
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if periodic.Reallocations >= event.Reallocations {
		t.Fatalf("periodic solves %d not below event-driven %d",
			periodic.Reallocations, event.Reallocations)
	}
	if len(periodic.Jobs) != len(jobs) {
		t.Fatalf("periodic completed %d of %d jobs", len(periodic.Jobs), len(jobs))
	}
}

func TestPeriodicReallocStalenessCostsJCT(t *testing.T) {
	// Stale rates waste freed capacity, so mean JCT should not improve
	// with a coarse grid (it typically worsens).
	jobs := workload.GenerateStream(workload.StreamConfig{
		NumSites: 3, Lambda: 1.5, NumJobs: 40, Skew: 1.2, PerJobSkew: true,
		TasksPerJobMean: 6, Seed: 67,
	})
	event, err := RunFluid(FluidConfig{
		SiteCapacity: []float64{3, 3, 3}, Policy: PolicyAMF,
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := RunFluid(FluidConfig{
		SiteCapacity: []float64{3, 3, 3}, Policy: PolicyAMF,
		ReallocInterval: 10,
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if MeanJCT(coarse.Jobs) < MeanJCT(event.Jobs)*0.98 {
		t.Fatalf("coarse grid beat event-driven: %g vs %g",
			MeanJCT(coarse.Jobs), MeanJCT(event.Jobs))
	}
}

func TestPeriodicReallocConvergesToEventDriven(t *testing.T) {
	// A very fine grid approximates event-driven completion times.
	jobs := workload.GenerateStream(workload.StreamConfig{
		NumSites: 2, Lambda: 0.8, NumJobs: 15, Skew: 1, PerJobSkew: true,
		TasksPerJobMean: 4, Seed: 71,
	})
	event, err := RunFluid(FluidConfig{
		SiteCapacity: []float64{2, 2}, Policy: PolicyAMF,
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := RunFluid(FluidConfig{
		SiteCapacity: []float64{2, 2}, Policy: PolicyAMF,
		ReallocInterval: 0.05,
		MaxEvents:       100000,
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	em, fm := MeanJCT(event.Jobs), MeanJCT(fine.Jobs)
	if math.Abs(em-fm) > em*0.15 {
		t.Fatalf("fine grid diverges: %g vs %g", fm, em)
	}
}

func TestPeriodicNoStarvationWhenStalled(t *testing.T) {
	// A single job whose only allocated portion empties mid-interval must
	// wait for the grid, not trigger the starvation error.
	jobs := []workload.Job{{
		ID: 0, Weight: 1,
		Tasks: []workload.Task{
			{Site: 0, Duration: 1},
			{Site: 1, Duration: 1},
		},
	}}
	res, err := RunFluid(FluidConfig{
		SiteCapacity:    []float64{1, 1},
		Policy:          PolicyAMF,
		ReallocInterval: 4,
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 1 {
		t.Fatal("job did not complete")
	}
}

func TestFairnessAvgAMFAboveBaseline(t *testing.T) {
	jobs := workload.GenerateStream(workload.StreamConfig{
		NumSites: 3, Lambda: 1.5, NumJobs: 40, Skew: 1.5, PerJobSkew: true,
		TasksPerJobMean: 6, SitesPerJobMax: 2, Seed: 91,
	})
	amf, err := RunFluid(FluidConfig{SiteCapacity: []float64{3, 3, 3}, Policy: PolicyAMF}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := RunFluid(FluidConfig{SiteCapacity: []float64{3, 3, 3}, Policy: PolicyPSMMF}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if amf.FairnessAvg <= ps.FairnessAvg {
		t.Fatalf("AMF online fairness %g not above PS-MMF %g",
			amf.FairnessAvg, ps.FairnessAvg)
	}
	if amf.FairnessAvg <= 0 || amf.FairnessAvg > 1+1e-9 {
		t.Fatalf("fairness out of range: %g", amf.FairnessAvg)
	}
}

func TestFairnessAvgSingleJobIsOne(t *testing.T) {
	jobs := []workload.Job{{
		ID: 0, Weight: 1,
		Tasks: []workload.Task{{Site: 0, Duration: 2}},
	}}
	res, err := RunFluid(FluidConfig{SiteCapacity: []float64{1}, Policy: PolicyAMF}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.FairnessAvg != 1 {
		t.Fatalf("single-job fairness %g, want 1", res.FairnessAvg)
	}
}

package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/workload"
)

// JobRecord is the per-job outcome of a simulation run.
type JobRecord struct {
	ID         int
	Arrival    float64
	Completion float64
	TotalWork  float64
	NumTasks   int
	Weight     float64
}

// JCT reports the job's completion time (response time).
func (r JobRecord) JCT() float64 { return r.Completion - r.Arrival }

// FluidConfig parameterizes the fluid simulator.
type FluidConfig struct {
	// SiteCapacity is the per-site resource capacity.
	SiteCapacity []float64
	// Policy is the allocation discipline applied on every event.
	Policy Policy
	// Solver overrides the default core solver (optional).
	Solver *core.Solver
	// MaxEvents bounds the number of re-allocation events as a safety
	// valve (default: 1000 + 100 per job).
	MaxEvents int
	// ReallocInterval > 0 switches from event-driven re-allocation to a
	// periodic grid: the allocator runs only at multiples of the interval
	// (plus arrivals/admissions); rates go stale in between, and a job
	// portion that empties simply stops consuming until the next solve.
	// This models schedulers that batch allocation decisions and is the
	// staleness ablation of the evaluation.
	ReallocInterval float64
}

// FluidResult aggregates a fluid run.
type FluidResult struct {
	Jobs []JobRecord
	// Utilization is the time-averaged fraction of total capacity in use
	// between time 0 and the makespan.
	Utilization float64
	// Makespan is the completion time of the last job.
	Makespan float64
	// Reallocations counts allocator invocations.
	Reallocations int
	// FairnessAvg is the time-averaged Jain index of the active jobs'
	// weight-normalized aggregate rates, taken over intervals with at
	// least two active jobs (1 if there are none): the online counterpart
	// of the paper's allocation-balance metric.
	FairnessAvg float64
}

// fluidJob is the in-flight state of one job.
type fluidJob struct {
	job      *workload.Job
	rem      []float64 // remaining work per site
	parallel []float64 // max useful parallelism per site (task counts)
	share    []float64 // current rates
}

// RunFluid executes the job stream under the fluid model: each active job
// receives a continuous rate per site from the policy; rates change only
// at arrivals and (portion) completions, where the allocator is re-run on
// the remaining work. Completion times are exact for the fluid dynamics.
func RunFluid(cfg FluidConfig, jobs []workload.Job) (FluidResult, error) {
	m := len(cfg.SiteCapacity)
	if m == 0 {
		return FluidResult{}, fmt.Errorf("sim: no sites")
	}
	maxEvents := cfg.MaxEvents
	if maxEvents <= 0 {
		maxEvents = 1000 + 100*len(jobs)
	}

	pending := make([]*workload.Job, len(jobs))
	for i := range jobs {
		pending[i] = &jobs[i]
	}
	sort.SliceStable(pending, func(a, b int) bool {
		return pending[a].Arrival < pending[b].Arrival
	})

	var totalCap float64
	for _, c := range cfg.SiteCapacity {
		totalCap += c
	}
	scale := 1.0
	for _, j := range jobs {
		scale = math.Max(scale, j.TotalWork())
	}
	workTol := 1e-9 * scale

	var (
		active    []*fluidJob
		records   []JobRecord
		now       float64
		busyInt   float64 // integral of allocated capacity over time
		jainInt   float64 // integral of instantaneous Jain over contention time
		jainDur   float64 // total time with >= 2 active jobs
		reallocs  int
		nextIndex int
		needSolve = true
		nextSolve float64
	)
	periodic := cfg.ReallocInterval > 0

	admit := func() {
		for nextIndex < len(pending) && pending[nextIndex].Arrival <= now+workTol {
			j := pending[nextIndex]
			nextIndex++
			if j.TotalWork() <= workTol {
				// Nothing to execute: completes on arrival.
				records = append(records, JobRecord{
					ID: j.ID, Arrival: j.Arrival, Completion: j.Arrival,
					NumTasks: len(j.Tasks), Weight: j.Weight,
				})
				continue
			}
			active = append(active, &fluidJob{
				job:      j,
				rem:      j.WorkBySite(m),
				parallel: j.TasksBySite(m),
				share:    make([]float64, m),
			})
		}
	}

	for iter := 0; ; iter++ {
		if iter > 10*maxEvents {
			return FluidResult{}, fmt.Errorf("sim: exceeded %d loop iterations (livelock?)", 10*maxEvents)
		}
		admitted := nextIndex
		admit()
		if nextIndex > admitted {
			needSolve = true
		}
		if len(active) == 0 {
			if nextIndex >= len(pending) {
				break
			}
			now = pending[nextIndex].Arrival
			continue
		}
		if reallocs >= maxEvents {
			return FluidResult{}, fmt.Errorf("sim: exceeded %d re-allocation events (livelock?)", maxEvents)
		}

		if !periodic || needSolve || now >= nextSolve-workTol {
			// Build the residual instance and allocate.
			in := &core.Instance{
				SiteCapacity: cfg.SiteCapacity,
				Demand:       make([][]float64, len(active)),
				Work:         make([][]float64, len(active)),
				Weight:       make([]float64, len(active)),
			}
			for i, fj := range active {
				d := make([]float64, m)
				w := make([]float64, m)
				for s := 0; s < m; s++ {
					if fj.rem[s] > workTol {
						d[s] = fj.parallel[s]
						w[s] = fj.rem[s]
					}
				}
				in.Demand[i] = d
				in.Work[i] = w
				in.Weight[i] = fj.job.Weight
			}
			alloc, err := cfg.Policy.Allocate(cfg.Solver, in)
			if err != nil {
				return FluidResult{}, fmt.Errorf("sim: allocation failed at t=%g: %v", now, err)
			}
			reallocs++
			needSolve = false
			nextSolve = now + cfg.ReallocInterval
			for i, fj := range active {
				copy(fj.share, alloc.Share[i])
			}
		}
		var used float64
		for _, fj := range active {
			for s := 0; s < m; s++ {
				if fj.rem[s] > workTol {
					used += fj.share[s]
				}
			}
		}
		jain := instantJain(active, workTol)

		// Time to the next event: the earliest portion completion, the
		// next arrival, or (in periodic mode) the next allocation slot.
		dt := math.Inf(1)
		if nextIndex < len(pending) {
			dt = pending[nextIndex].Arrival - now
		}
		if periodic {
			dt = math.Min(dt, nextSolve-now)
		}
		for _, fj := range active {
			for s := 0; s < m; s++ {
				if fj.rem[s] > workTol && fj.share[s] > 1e-15 {
					dt = math.Min(dt, fj.rem[s]/fj.share[s])
				}
			}
		}
		if math.IsInf(dt, 1) {
			// No arrivals left and nobody is making progress.
			return FluidResult{}, fmt.Errorf("sim: starvation at t=%g with %d active jobs", now, len(active))
		}
		if dt < 0 {
			dt = 0
		}

		// Advance.
		now += dt
		busyInt += used * dt
		if len(active) >= 2 {
			jainInt += jain * dt
			jainDur += dt
		}
		keep := active[:0]
		for _, fj := range active {
			done := true
			for s := 0; s < m; s++ {
				if fj.rem[s] <= workTol {
					fj.rem[s] = 0
					continue
				}
				fj.rem[s] -= fj.share[s] * dt
				if fj.rem[s] <= workTol {
					fj.rem[s] = 0
				} else {
					done = false
				}
			}
			if done {
				records = append(records, JobRecord{
					ID:         fj.job.ID,
					Arrival:    fj.job.Arrival,
					Completion: now,
					TotalWork:  fj.job.TotalWork(),
					NumTasks:   len(fj.job.Tasks),
					Weight:     fj.job.Weight,
				})
			} else {
				keep = append(keep, fj)
			}
		}
		active = keep
	}

	res := FluidResult{
		Jobs:          records,
		Makespan:      now,
		Reallocations: reallocs,
		FairnessAvg:   1,
	}
	if jainDur > 0 {
		res.FairnessAvg = jainInt / jainDur
	}
	if now > 0 && totalCap > 0 {
		res.Utilization = busyInt / (totalCap * now)
	}
	sort.Slice(res.Jobs, func(a, b int) bool { return res.Jobs[a].ID < res.Jobs[b].ID })
	return res, nil
}

// instantJain computes the Jain index of the active jobs' weight-normalized
// aggregate rates, counting only rates serving outstanding work.
func instantJain(active []*fluidJob, workTol float64) float64 {
	if len(active) == 0 {
		return 1
	}
	var sum, sq float64
	for _, fj := range active {
		var rate float64
		for s, r := range fj.share {
			if fj.rem[s] > workTol {
				rate += r
			}
		}
		w := fj.job.Weight
		if w <= 0 {
			w = 1
		}
		rate /= w
		sum += rate
		sq += rate * rate
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(active)) * sq)
}

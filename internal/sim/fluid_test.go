package sim

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func singleTaskJob(id int, arrival float64, site int, dur float64) workload.Job {
	return workload.Job{
		ID: id, Arrival: arrival, Weight: 1,
		Tasks: []workload.Task{{Site: site, Duration: dur}},
	}
}

func TestFluidSingleJob(t *testing.T) {
	jobs := []workload.Job{singleTaskJob(0, 0, 0, 4)}
	res, err := RunFluid(FluidConfig{SiteCapacity: []float64{1}, Policy: PolicyAMF}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 1 {
		t.Fatalf("completed %d jobs", len(res.Jobs))
	}
	// One task, parallelism 1, capacity 1: completes at t=4.
	if math.Abs(res.Jobs[0].JCT()-4) > 1e-6 {
		t.Fatalf("JCT %g, want 4", res.Jobs[0].JCT())
	}
	if math.Abs(res.Makespan-4) > 1e-6 {
		t.Fatalf("makespan %g", res.Makespan)
	}
	if math.Abs(res.Utilization-1) > 1e-6 {
		t.Fatalf("utilization %g, want 1", res.Utilization)
	}
}

func TestFluidTwoJobsShareSite(t *testing.T) {
	// Two single-task jobs on one unit-capacity site. Each task is one unit
	// of parallelism, so each runs at rate 0.5 until both finish at t=2
	// under max-min sharing (fluid processor sharing).
	jobs := []workload.Job{
		singleTaskJob(0, 0, 0, 1),
		singleTaskJob(1, 0, 0, 1),
	}
	res, err := RunFluid(FluidConfig{SiteCapacity: []float64{1}, Policy: PolicyAMF}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Jobs {
		if math.Abs(r.JCT()-2) > 1e-6 {
			t.Fatalf("job %d JCT %g, want 2", r.ID, r.JCT())
		}
	}
}

func TestFluidLateArrival(t *testing.T) {
	// Job 0 runs alone until t=1, then shares; both at rate 0.5 after.
	// Job 0 has 2 units: finishes 1 + 1/0.5... it has 1 unit left at t=1,
	// runs at 0.5 -> done at t=3. Job 1 has 1 unit at 0.5 -> would finish
	// at 3 too; at t=3 both complete.
	jobs := []workload.Job{
		singleTaskJob(0, 0, 0, 2),
		singleTaskJob(1, 1, 0, 1),
	}
	res, err := RunFluid(FluidConfig{SiteCapacity: []float64{1}, Policy: PolicyAMF}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Jobs[0].Completion-3) > 1e-6 {
		t.Fatalf("job 0 completes at %g, want 3", res.Jobs[0].Completion)
	}
	if math.Abs(res.Jobs[1].Completion-3) > 1e-6 {
		t.Fatalf("job 1 completes at %g, want 3", res.Jobs[1].Completion)
	}
}

func TestFluidParallelismCap(t *testing.T) {
	// One job with a single task on a capacity-4 site: its parallelism is
	// 1, so it runs at rate 1 despite the spare capacity.
	jobs := []workload.Job{singleTaskJob(0, 0, 0, 2)}
	res, err := RunFluid(FluidConfig{SiteCapacity: []float64{4}, Policy: PolicyAMF}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Jobs[0].JCT()-2) > 1e-6 {
		t.Fatalf("JCT %g, want 2 (parallelism cap ignored?)", res.Jobs[0].JCT())
	}
}

func TestFluidMultiSiteJob(t *testing.T) {
	// A job with one task at each of two sites completes when the slower
	// portion does.
	jobs := []workload.Job{{
		ID: 0, Weight: 1,
		Tasks: []workload.Task{{Site: 0, Duration: 1}, {Site: 1, Duration: 3}},
	}}
	res, err := RunFluid(FluidConfig{SiteCapacity: []float64{1, 1}, Policy: PolicyAMF}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Jobs[0].JCT()-3) > 1e-6 {
		t.Fatalf("JCT %g, want 3", res.Jobs[0].JCT())
	}
}

func TestFluidAllPoliciesComplete(t *testing.T) {
	jobs := workload.GenerateStream(workload.StreamConfig{
		NumSites: 3, Lambda: 1.5, NumJobs: 30, Skew: 1, TasksPerJobMean: 4,
		TaskDurationMean: 0.5, Seed: 31,
	})
	for _, p := range Policies() {
		res, err := RunFluid(FluidConfig{
			SiteCapacity: []float64{3, 3, 3}, Policy: p,
		}, jobs)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(res.Jobs) != len(jobs) {
			t.Fatalf("%s: %d of %d jobs completed", p, len(res.Jobs), len(jobs))
		}
		for _, r := range res.Jobs {
			if r.Completion < r.Arrival-1e-9 {
				t.Fatalf("%s: job %d completed before arrival", p, r.ID)
			}
		}
		if res.Utilization < 0 || res.Utilization > 1+1e-9 {
			t.Fatalf("%s: utilization %g", p, res.Utilization)
		}
	}
}

func TestFluidDeterministic(t *testing.T) {
	jobs := workload.GenerateStream(workload.StreamConfig{
		NumSites: 2, Lambda: 1, NumJobs: 15, Seed: 37,
	})
	r1, err := RunFluid(FluidConfig{SiteCapacity: []float64{2, 2}, Policy: PolicyAMF}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunFluid(FluidConfig{SiteCapacity: []float64{2, 2}, Policy: PolicyAMF}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Jobs {
		if r1.Jobs[i].Completion != r2.Jobs[i].Completion {
			t.Fatal("fluid sim not deterministic")
		}
	}
}

func TestFluidZeroTaskJob(t *testing.T) {
	jobs := []workload.Job{
		{ID: 0, Arrival: 1, Weight: 1}, // no tasks
		singleTaskJob(1, 0, 0, 1),
	}
	res, err := RunFluid(FluidConfig{SiteCapacity: []float64{1}, Policy: PolicyAMF}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("completed %d jobs", len(res.Jobs))
	}
	if res.Jobs[0].JCT() > 1e-9 {
		t.Fatalf("empty job JCT %g", res.Jobs[0].JCT())
	}
}

func TestFluidNoSitesError(t *testing.T) {
	if _, err := RunFluid(FluidConfig{Policy: PolicyAMF}, nil); err == nil {
		t.Fatal("expected error with no sites")
	}
}

func TestFluidConservesWork(t *testing.T) {
	// Busy integral equals total work executed.
	jobs := workload.GenerateStream(workload.StreamConfig{
		NumSites: 2, Lambda: 2, NumJobs: 20, TasksPerJobMean: 3, Seed: 41,
	})
	var total float64
	for i := range jobs {
		total += jobs[i].TotalWork()
	}
	res, err := RunFluid(FluidConfig{SiteCapacity: []float64{2, 2}, Policy: PolicyAMF}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Utilization * 4 * res.Makespan
	if math.Abs(got-total) > 1e-6*(1+total) {
		t.Fatalf("busy integral %g, total work %g", got, total)
	}
}

func TestFluidPSMMFvsAMFPinnedJob(t *testing.T) {
	// The paper's motivating scenario in miniature: a pinned job contests
	// site 0 with a flexible job. Under AMF the flexible job is pushed to
	// site 1, so the pinned job finishes sooner than under PS-MMF.
	mk := func() []workload.Job {
		flexible := workload.Job{ID: 0, Weight: 1}
		pinned := workload.Job{ID: 1, Weight: 1}
		for i := 0; i < 4; i++ {
			flexible.Tasks = append(flexible.Tasks,
				workload.Task{Site: 0, Duration: 1},
				workload.Task{Site: 1, Duration: 1})
			pinned.Tasks = append(pinned.Tasks,
				workload.Task{Site: 0, Duration: 1})
		}
		return []workload.Job{flexible, pinned}
	}
	amf, err := RunFluid(FluidConfig{SiteCapacity: []float64{1, 1}, Policy: PolicyAMF}, mk())
	if err != nil {
		t.Fatal(err)
	}
	ps, err := RunFluid(FluidConfig{SiteCapacity: []float64{1, 1}, Policy: PolicyPSMMF}, mk())
	if err != nil {
		t.Fatal(err)
	}
	// Under PS-MMF the flexible job takes half of site 0 while also owning
	// site 1, so the pinned job needs 8 time units. AMF routes the flexible
	// job to site 1, halving the pinned job's completion time.
	if math.Abs(ps.Jobs[1].JCT()-8) > 1e-6 {
		t.Fatalf("pinned job under PS-MMF: JCT %g, want 8", ps.Jobs[1].JCT())
	}
	if math.Abs(amf.Jobs[1].JCT()-4) > 1e-6 {
		t.Fatalf("pinned job under AMF: JCT %g, want 4", amf.Jobs[1].JCT())
	}
	if amf.Jobs[0].JCT() > ps.Jobs[0].JCT()+1e-6 {
		t.Fatalf("flexible job worsened: AMF %g vs PS-MMF %g",
			amf.Jobs[0].JCT(), ps.Jobs[0].JCT())
	}
}

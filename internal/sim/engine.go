// Package sim provides the evaluation substrate: a discrete-event engine,
// a fluid multi-site cluster simulator (continuous allocation rates,
// re-solved at every arrival and completion) and a slot-granular task
// simulator (integral slots, non-preemptive tasks) that cross-checks the
// fluid results. Both execute any of the allocation policies from
// internal/core over online job streams from internal/workload.
package sim

import "container/heap"

// Engine is a minimal discrete-event simulator: schedule closures at
// absolute times, run them in order. Ties run in scheduling order.
type Engine struct {
	now float64
	seq int64
	h   eventHeap
}

type event struct {
	at  float64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewEngine returns an engine at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.h) }

// Schedule runs fn at the given absolute time. Scheduling in the past
// (before Now) panics: it would silently reorder causality.
func (e *Engine) Schedule(at float64, fn func()) {
	if at < e.now {
		panic("sim: scheduling into the past")
	}
	e.seq++
	heap.Push(&e.h, event{at: at, seq: e.seq, fn: fn})
}

// Step runs the next event; it reports false when none remain.
func (e *Engine) Step() bool {
	if len(e.h) == 0 {
		return false
	}
	ev := heap.Pop(&e.h).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run drains all events (including those scheduled while running).
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil processes events up to and including time t; later events stay
// queued and the clock advances to at most t.
func (e *Engine) RunUntil(t float64) {
	for len(e.h) > 0 && e.h[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

package sim

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/policy"
)

// Policy selects the allocation discipline the simulated scheduler applies
// whenever the active job set changes.
type Policy int

const (
	// PolicyAMF applies aggregate max-min fairness (the paper's proposal).
	PolicyAMF Policy = iota
	// PolicyAMFJCT applies AMF plus the completion-time add-on.
	PolicyAMFJCT
	// PolicyEnhancedAMF applies the sharing-incentive-preserving variant.
	PolicyEnhancedAMF
	// PolicyPSMMF applies the per-site max-min baseline.
	PolicyPSMMF
)

// Policies lists all policies in presentation order.
func Policies() []Policy {
	return []Policy{PolicyPSMMF, PolicyAMF, PolicyAMFJCT, PolicyEnhancedAMF}
}

func (p Policy) String() string {
	switch p {
	case PolicyAMF:
		return "amf"
	case PolicyAMFJCT:
		return "amf+jct"
	case PolicyEnhancedAMF:
		return "amf-enhanced"
	case PolicyPSMMF:
		return "psmmf"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses the String form back into a Policy.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown policy %q", s)
}

// Impl returns the shared policy-layer implementation this enum value
// names. The simulator and the serving stack dispatch through the same
// implementations, so the two can never diverge; the enum survives only
// as the paper experiments' compact iteration/presentation form.
func (p Policy) Impl() policy.Policy {
	switch p {
	case PolicyAMF:
		return policy.AMF
	case PolicyAMFJCT:
		return policy.AMFJCT
	case PolicyEnhancedAMF:
		return policy.EnhancedAMF
	case PolicyPSMMF:
		return policy.PSMMF
	default:
		return nil
	}
}

// Allocate computes the policy's allocation for the instance by
// delegating to the shared implementation (see Impl).
func (p Policy) Allocate(sv *core.Solver, in *core.Instance) (*core.Allocation, error) {
	impl := p.Impl()
	if impl == nil {
		return nil, fmt.Errorf("sim: unknown policy %d", int(p))
	}
	alloc, _, err := impl.Allocate(context.Background(), &policy.View{Inst: in, Solver: sv})
	return alloc, err
}

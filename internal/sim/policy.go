package sim

import (
	"fmt"

	"repro/internal/core"
)

// Policy selects the allocation discipline the simulated scheduler applies
// whenever the active job set changes.
type Policy int

const (
	// PolicyAMF applies aggregate max-min fairness (the paper's proposal).
	PolicyAMF Policy = iota
	// PolicyAMFJCT applies AMF plus the completion-time add-on.
	PolicyAMFJCT
	// PolicyEnhancedAMF applies the sharing-incentive-preserving variant.
	PolicyEnhancedAMF
	// PolicyPSMMF applies the per-site max-min baseline.
	PolicyPSMMF
)

// Policies lists all policies in presentation order.
func Policies() []Policy {
	return []Policy{PolicyPSMMF, PolicyAMF, PolicyAMFJCT, PolicyEnhancedAMF}
}

func (p Policy) String() string {
	switch p {
	case PolicyAMF:
		return "amf"
	case PolicyAMFJCT:
		return "amf+jct"
	case PolicyEnhancedAMF:
		return "amf-enhanced"
	case PolicyPSMMF:
		return "psmmf"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses the String form back into a Policy.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown policy %q", s)
}

// Allocate computes the policy's allocation for the instance.
func (p Policy) Allocate(sv *core.Solver, in *core.Instance) (*core.Allocation, error) {
	if sv == nil {
		sv = core.NewSolver()
	}
	switch p {
	case PolicyAMF:
		return sv.AMF(in)
	case PolicyAMFJCT:
		return sv.AMFWithJCT(in)
	case PolicyEnhancedAMF:
		return sv.EnhancedAMF(in)
	case PolicyPSMMF:
		return core.PerSiteMMF(in), nil
	default:
		return nil, fmt.Errorf("sim: unknown policy %d", int(p))
	}
}

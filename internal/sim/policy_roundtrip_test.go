package sim

import (
	"testing"

	"repro/internal/policy"
)

// The enum survives only as the paper experiments' iteration form; its
// identity must stay glued to the policy layer's: String() is the layer's
// stable name, Impl() is the shared implementation, and ParsePolicy
// round-trips.
func TestPolicyEnumMatchesPolicyLayer(t *testing.T) {
	for _, p := range Policies() {
		impl := p.Impl()
		if impl == nil {
			t.Fatalf("%v: no implementation", p)
		}
		if impl.Name() != p.String() {
			t.Fatalf("%v: Impl().Name() = %q, String() = %q", p, impl.Name(), p.String())
		}
		byName, err := policy.ForName(p.String())
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if byName.Name() != impl.Name() {
			t.Fatalf("%v: ForName gives %q", p, byName.Name())
		}
		back, err := ParsePolicy(p.String())
		if err != nil || back != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), back, err)
		}
	}
	if _, err := ParsePolicy("drf"); err == nil {
		t.Fatal("the enum covers only the paper's four policies; drf must not parse")
	}
	if Policy(99).Impl() != nil {
		t.Fatal("out-of-range enum has an implementation")
	}
}

// Package trace serializes instances, allocations and simulation results
// so experiments can be archived, diffed and replayed by the CLI tools:
// JSON for structured round-trips, CSV for spreadsheet-friendly exports.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/sim"
)

// instanceJSON is the wire form of core.Instance.
type instanceJSON struct {
	SiteCapacity []float64   `json:"site_capacity"`
	Demand       [][]float64 `json:"demand"`
	Weight       []float64   `json:"weight,omitempty"`
	Work         [][]float64 `json:"work,omitempty"`
	JobName      []string    `json:"job_name,omitempty"`
	SiteName     []string    `json:"site_name,omitempty"`
}

// WriteInstance encodes the instance as indented JSON.
func WriteInstance(w io.Writer, in *core.Instance) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(instanceJSON{
		SiteCapacity: in.SiteCapacity,
		Demand:       in.Demand,
		Weight:       in.Weight,
		Work:         in.Work,
		JobName:      in.JobName,
		SiteName:     in.SiteName,
	})
}

// ReadInstance decodes an instance and validates it.
func ReadInstance(r io.Reader) (*core.Instance, error) {
	var raw instanceJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("trace: decoding instance: %w", err)
	}
	in := &core.Instance{
		SiteCapacity: raw.SiteCapacity,
		Demand:       raw.Demand,
		Weight:       raw.Weight,
		Work:         raw.Work,
		JobName:      raw.JobName,
		SiteName:     raw.SiteName,
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// allocationJSON is the wire form of an allocation (without the instance).
type allocationJSON struct {
	Share      [][]float64 `json:"share"`
	Aggregates []float64   `json:"aggregates"`
}

// WriteAllocation encodes the allocation (shares plus derived aggregates).
func WriteAllocation(w io.Writer, a *core.Allocation) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(allocationJSON{Share: a.Share, Aggregates: a.Aggregates()})
}

// ReadAllocation decodes shares against the given instance and checks
// feasibility within tol.
func ReadAllocation(r io.Reader, in *core.Instance, tol float64) (*core.Allocation, error) {
	var raw allocationJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("trace: decoding allocation: %w", err)
	}
	a := &core.Allocation{Inst: in, Share: raw.Share}
	if err := a.CheckFeasible(tol); err != nil {
		return nil, err
	}
	return a, nil
}

// WriteJobRecords encodes simulation job records as JSON.
func WriteJobRecords(w io.Writer, jobs []sim.JobRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jobs)
}

// ReadJobRecords decodes simulation job records.
func ReadJobRecords(r io.Reader) ([]sim.JobRecord, error) {
	var jobs []sim.JobRecord
	if err := json.NewDecoder(r).Decode(&jobs); err != nil {
		return nil, fmt.Errorf("trace: decoding job records: %w", err)
	}
	return jobs, nil
}

package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/workload"
)

// WriteJobStreamCSV exports an online job stream, one row per task:
// job, arrival, weight, site, duration. The format round-trips through
// ReadJobStreamCSV and is the interchange format of amf-sim.
func WriteJobStreamCSV(w io.Writer, jobs []workload.Job) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"job", "arrival", "weight", "site", "duration"}); err != nil {
		return err
	}
	for _, j := range jobs {
		for _, task := range j.Tasks {
			rec := []string{
				strconv.Itoa(j.ID),
				formatFloat(j.Arrival),
				formatFloat(j.Weight),
				strconv.Itoa(task.Site),
				formatFloat(task.Duration),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		if len(j.Tasks) == 0 {
			// Preserve empty jobs with a sentinel row (site -1).
			rec := []string{
				strconv.Itoa(j.ID),
				formatFloat(j.Arrival),
				formatFloat(j.Weight),
				"-1",
				"0",
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadJobStreamCSV parses the format written by WriteJobStreamCSV. Jobs
// are returned sorted by arrival time (ties by ID).
func ReadJobStreamCSV(r io.Reader) ([]workload.Job, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading stream CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	byID := map[int]*workload.Job{}
	var order []int
	for i, row := range rows[1:] {
		if len(row) != 5 {
			return nil, fmt.Errorf("trace: stream row %d has %d fields, want 5", i+1, len(row))
		}
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("trace: stream row %d job: %w", i+1, err)
		}
		arrival, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: stream row %d arrival: %w", i+1, err)
		}
		weight, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: stream row %d weight: %w", i+1, err)
		}
		site, err := strconv.Atoi(row[3])
		if err != nil {
			return nil, fmt.Errorf("trace: stream row %d site: %w", i+1, err)
		}
		duration, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: stream row %d duration: %w", i+1, err)
		}
		j, ok := byID[id]
		if !ok {
			j = &workload.Job{ID: id, Arrival: arrival, Weight: weight}
			byID[id] = j
			order = append(order, id)
		}
		if site >= 0 {
			if duration < 0 {
				return nil, fmt.Errorf("trace: stream row %d negative duration", i+1)
			}
			j.Tasks = append(j.Tasks, workload.Task{Site: site, Duration: duration})
		}
	}
	out := make([]workload.Job, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Arrival != out[b].Arrival {
			return out[a].Arrival < out[b].Arrival
		}
		return out[a].ID < out[b].ID
	})
	return out, nil
}

// NumSitesOf reports the minimum site count a stream requires (max site
// index + 1).
func NumSitesOf(jobs []workload.Job) int {
	max := -1
	for _, j := range jobs {
		for _, t := range j.Tasks {
			if t.Site > max {
				max = t.Site
			}
		}
	}
	return max + 1
}

package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
	"repro/internal/sim"
)

// WriteAllocationCSV exports one row per (job, site) pair with positive
// demand: job, site, demand, share.
func WriteAllocationCSV(w io.Writer, a *core.Allocation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"job", "site", "demand", "share"}); err != nil {
		return err
	}
	for j := range a.Share {
		for s := range a.Share[j] {
			if a.Inst.Demand[j][s] <= 0 {
				continue
			}
			rec := []string{
				strconv.Itoa(j),
				strconv.Itoa(s),
				formatFloat(a.Inst.Demand[j][s]),
				formatFloat(a.Share[j][s]),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJobRecordsCSV exports job records: id, arrival, completion, jct,
// total_work, num_tasks.
func WriteJobRecordsCSV(w io.Writer, jobs []sim.JobRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "arrival", "completion", "jct", "total_work", "num_tasks"}); err != nil {
		return err
	}
	for _, r := range jobs {
		rec := []string{
			strconv.Itoa(r.ID),
			formatFloat(r.Arrival),
			formatFloat(r.Completion),
			formatFloat(r.JCT()),
			formatFloat(r.TotalWork),
			strconv.Itoa(r.NumTasks),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadJobRecordsCSV parses the format written by WriteJobRecordsCSV.
func ReadJobRecordsCSV(r io.Reader) ([]sim.JobRecord, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	var out []sim.JobRecord
	for i, row := range rows[1:] {
		if len(row) != 6 {
			return nil, fmt.Errorf("trace: row %d has %d fields, want 6", i+1, len(row))
		}
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d id: %w", i+1, err)
		}
		arrival, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d arrival: %w", i+1, err)
		}
		completion, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d completion: %w", i+1, err)
		}
		work, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d work: %w", i+1, err)
		}
		tasks, err := strconv.Atoi(row[5])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d tasks: %w", i+1, err)
		}
		out = append(out, sim.JobRecord{
			ID: id, Arrival: arrival, Completion: completion,
			TotalWork: work, NumTasks: tasks,
		})
	}
	return out, nil
}

func formatFloat(f float64) string {
	// Shortest representation that parses back exactly: traces must
	// round-trip bit-for-bit for reproducibility.
	return strconv.FormatFloat(f, 'g', -1, 64)
}

package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadInstance ensures arbitrary bytes never panic the decoder and
// that anything it accepts re-encodes cleanly.
func FuzzReadInstance(f *testing.F) {
	f.Add(`{"site_capacity":[1,2],"demand":[[1,0],[0,2]]}`)
	f.Add(`{"site_capacity":[],"demand":[]}`)
	f.Add(`{nonsense`)
	f.Add(`{"site_capacity":[1],"demand":[[-1]]}`)
	f.Fuzz(func(t *testing.T, s string) {
		in, err := ReadInstance(strings.NewReader(s))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteInstance(&buf, in); err != nil {
			t.Fatalf("accepted instance failed to encode: %v", err)
		}
		if _, err := ReadInstance(&buf); err != nil {
			t.Fatalf("re-encoded instance rejected: %v", err)
		}
	})
}

// FuzzReadJobStreamCSV ensures arbitrary CSV never panics and that
// accepted streams round-trip.
func FuzzReadJobStreamCSV(f *testing.F) {
	f.Add("job,arrival,weight,site,duration\n1,0,1,0,2\n")
	f.Add("job,arrival,weight,site,duration\n1,0,1,-1,0\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, s string) {
		jobs, err := ReadJobStreamCSV(strings.NewReader(s))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteJobStreamCSV(&buf, jobs); err != nil {
			t.Fatalf("accepted stream failed to encode: %v", err)
		}
		again, err := ReadJobStreamCSV(&buf)
		if err != nil {
			t.Fatalf("re-encoded stream rejected: %v", err)
		}
		if len(again) != len(jobs) {
			t.Fatalf("round trip changed job count %d -> %d", len(jobs), len(again))
		}
	})
}

package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestJobStreamRoundTrip(t *testing.T) {
	jobs := workload.GenerateStream(workload.StreamConfig{
		NumSites: 3, Lambda: 1, NumJobs: 12, Skew: 1, Seed: 5,
	})
	var buf bytes.Buffer
	if err := WriteJobStreamCSV(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJobStreamCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("round trip %d of %d jobs", len(got), len(jobs))
	}
	for i := range jobs {
		a, b := jobs[i], got[i]
		if a.ID != b.ID || a.Arrival != b.Arrival || a.Weight != b.Weight {
			t.Fatalf("job %d header mismatch: %+v vs %+v", i, a, b)
		}
		if len(a.Tasks) != len(b.Tasks) {
			t.Fatalf("job %d has %d tasks, want %d", i, len(b.Tasks), len(a.Tasks))
		}
		for k := range a.Tasks {
			if a.Tasks[k] != b.Tasks[k] {
				t.Fatalf("job %d task %d mismatch", i, k)
			}
		}
	}
}

func TestJobStreamEmptyJobPreserved(t *testing.T) {
	jobs := []workload.Job{{ID: 7, Arrival: 1.5, Weight: 2}}
	var buf bytes.Buffer
	if err := WriteJobStreamCSV(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJobStreamCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 7 || len(got[0].Tasks) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestJobStreamSortsByArrival(t *testing.T) {
	csv := `job,arrival,weight,site,duration
2,5,1,0,1
1,2,1,0,1
3,2,1,1,1
`
	got, err := ReadJobStreamCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != 1 || got[1].ID != 3 || got[2].ID != 2 {
		t.Fatalf("order %v %v %v", got[0].ID, got[1].ID, got[2].ID)
	}
}

func TestJobStreamErrors(t *testing.T) {
	bad := []string{
		"job,arrival,weight,site\n1,0,1,0\n", // short row
		"h1,h2,h3,h4,h5\nx,0,1,0,1\n",        // bad job id
		"h1,h2,h3,h4,h5\n1,x,1,0,1\n",        // bad arrival
		"h1,h2,h3,h4,h5\n1,0,1,0,-2\n",       // negative duration
	}
	for i, s := range bad {
		if _, err := ReadJobStreamCSV(strings.NewReader(s)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	if got, err := ReadJobStreamCSV(strings.NewReader("")); err != nil || got != nil {
		t.Fatalf("empty input: %v %v", got, err)
	}
}

func TestNumSitesOf(t *testing.T) {
	jobs := []workload.Job{
		{Tasks: []workload.Task{{Site: 2}, {Site: 0}}},
		{Tasks: []workload.Task{{Site: 5}}},
	}
	if n := NumSitesOf(jobs); n != 6 {
		t.Fatalf("sites %d, want 6", n)
	}
	if n := NumSitesOf(nil); n != 0 {
		t.Fatalf("empty sites %d", n)
	}
}

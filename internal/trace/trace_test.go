package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func sampleInstance() *core.Instance {
	return &core.Instance{
		SiteCapacity: []float64{2, 3},
		Demand:       [][]float64{{1, 2}, {0, 3}},
		Weight:       []float64{1, 2},
		Work:         [][]float64{{1, 2}, {0, 4}},
		JobName:      []string{"a", "b"},
		SiteName:     []string{"s0", "s1"},
	}
}

func TestInstanceRoundTrip(t *testing.T) {
	in := sampleInstance()
	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumJobs() != 2 || got.NumSites() != 2 {
		t.Fatalf("dims %dx%d", got.NumJobs(), got.NumSites())
	}
	if got.Demand[1][1] != 3 || got.Weight[1] != 2 || got.Work[1][1] != 4 {
		t.Fatal("values lost in round trip")
	}
	if got.JobName[0] != "a" || got.SiteName[1] != "s1" {
		t.Fatal("names lost in round trip")
	}
}

func TestReadInstanceValidates(t *testing.T) {
	bad := `{"site_capacity":[1],"demand":[[-1]]}`
	if _, err := ReadInstance(strings.NewReader(bad)); err == nil {
		t.Fatal("invalid instance accepted")
	}
	if _, err := ReadInstance(strings.NewReader("{nonsense")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestAllocationRoundTrip(t *testing.T) {
	in := sampleInstance()
	a, err := core.NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteAllocation(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllocation(&buf, in, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Share {
		for s := range a.Share[j] {
			if got.Share[j][s] != a.Share[j][s] {
				t.Fatal("shares lost in round trip")
			}
		}
	}
}

func TestReadAllocationChecksFeasibility(t *testing.T) {
	in := sampleInstance()
	bad := `{"share":[[9,9],[9,9]]}`
	if _, err := ReadAllocation(strings.NewReader(bad), in, 1e-9); err == nil {
		t.Fatal("infeasible allocation accepted")
	}
}

func TestJobRecordsJSONRoundTrip(t *testing.T) {
	jobs := []sim.JobRecord{
		{ID: 0, Arrival: 0, Completion: 2.5, TotalWork: 3, NumTasks: 4, Weight: 1},
		{ID: 1, Arrival: 1, Completion: 4, TotalWork: 1, NumTasks: 1, Weight: 2},
	}
	var buf bytes.Buffer
	if err := WriteJobRecords(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJobRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Completion != 4 || got[0].NumTasks != 4 {
		t.Fatalf("round trip lost data: %+v", got)
	}
}

func TestAllocationCSV(t *testing.T) {
	in := sampleInstance()
	a, err := core.NewSolver().AMF(in)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteAllocationCSV(&buf, a); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "job,site,demand,share") {
		t.Fatalf("missing header: %s", out)
	}
	// Job 1 has no demand at site 0: exactly 3 data rows.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestJobRecordsCSVRoundTrip(t *testing.T) {
	jobs := []sim.JobRecord{
		{ID: 3, Arrival: 0.5, Completion: 2.5, TotalWork: 3.25, NumTasks: 7},
	}
	var buf bytes.Buffer
	if err := WriteJobRecordsCSV(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJobRecordsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d records", len(got))
	}
	r := got[0]
	if r.ID != 3 || r.Arrival != 0.5 || r.Completion != 2.5 || r.TotalWork != 3.25 || r.NumTasks != 7 {
		t.Fatalf("round trip mismatch: %+v", r)
	}
}

func TestReadJobRecordsCSVErrors(t *testing.T) {
	if _, err := ReadJobRecordsCSV(strings.NewReader("id,arrival\n1,2\n")); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := ReadJobRecordsCSV(strings.NewReader("h1,h2,h3,h4,h5,h6\nx,0,0,0,0,0\n")); err == nil {
		t.Fatal("non-numeric id accepted")
	}
	got, err := ReadJobRecordsCSV(strings.NewReader(""))
	if err != nil || got != nil {
		t.Fatalf("empty input: %v %v", got, err)
	}
}

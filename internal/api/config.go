package api

// The unified runtime-tuning surface: GET/PATCH /v1/config.
//
// Every runtime knob that used to have a bespoke endpoint — the fairness
// policy (PUT /v1/policy) and the approximate-solver routing
// (PUT /v1/solver/approx) — plus the phase-reconciliation knobs
// introduced alongside it, is readable and patchable through one
// document:
//
//	{
//	  "site_capacity": [...],            // immutable, echoed on GET
//	  "policy": "amf",
//	  "solver": {"approx_epsilon": 0.01, "approx_threshold": 4096},
//	  "phase":  {"hot_threshold": 0.5, "max_batches": 8,
//	             "max_interval_ms": 10, "window": 32}
//	}
//
// PATCH takes the same nesting with every field optional; absent fields
// keep their current values. Validation is field-level: a bad patch is
// rejected as a whole (nothing is applied) with 400 invalid_argument and
// a "fields" list naming every offending field by its JSON path together
// with a stable per-field code — clients fix all of them in one round
// trip. A valid patch is applied atomically; on the serving engine it
// rides an exclusive group commit and is WAL-logged (OpSetConfig), so it
// survives crash recovery and replicates to followers.
//
// The bespoke endpoints remain as thin deprecated aliases: they keep
// their exact wire shapes, route through the same logged application
// when the backend supports it, and advertise the successor via
// `Deprecation: true` and `Link: </v1/config>; rel="successor-version"`
// response headers.

import (
	"context"
	"encoding/json"
	"math"
	"net/http"

	"repro/internal/policy"
	"repro/internal/scheduler"
	"repro/internal/serve"
)

// ConfigPatcher is the optional unified runtime-tuning surface behind
// GET/PATCH /v1/config. RuntimeConfig returns the full tuning document;
// ApplyConfig applies a validated-in-full, atomically-applied partial
// update. The read takes a context (and can fail) because the cluster
// router implements it by fanning out to shards. Backends without the
// methods serve the legacy read-only config document and reject PATCH
// with invalid_argument.
type ConfigPatcher interface {
	RuntimeConfig(ctx context.Context) (scheduler.RuntimeConfig, error)
	ApplyConfig(ctx context.Context, p scheduler.ConfigPatch) error
}

var _ ConfigPatcher = (*serve.Engine)(nil)
var _ ConfigPatcher = schedulerBackend{}

// PhaseReporter is the optional phase-reconciliation read surface:
// PhaseInfo returns the count of acknowledged commutative mutations
// buffered against hot components and not yet folded into the published
// allocation (0 = the allocation is exact), plus the classifier's
// current hot-set size. GET /v1/allocation carries both.
type PhaseReporter interface {
	PhaseInfo() (phaseLag, hotComponents int)
}

var _ PhaseReporter = (*serve.Engine)(nil)

func (b schedulerBackend) RuntimeConfig(ctx context.Context) (scheduler.RuntimeConfig, error) {
	if err := ctx.Err(); err != nil {
		return scheduler.RuntimeConfig{}, err
	}
	return b.sc.RuntimeConfig(), nil
}

func (b schedulerBackend) ApplyConfig(ctx context.Context, p scheduler.ConfigPatch) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return b.sc.ApplyConfigPatch(p)
}

// SolverConfigSection is the solver block of the /v1/config document.
type SolverConfigSection struct {
	// ApproxEpsilon is the approximate water-filling deviation budget as a
	// fraction of the instance scale; 0 disables the approximate path.
	ApproxEpsilon float64 `json:"approx_epsilon"`
	// ApproxThreshold is the component size above which the approximation
	// engages.
	ApproxThreshold int `json:"approx_threshold"`
}

// SolverPatchSection is the solver block of a PATCH /v1/config body; nil
// fields keep their current values.
type SolverPatchSection struct {
	ApproxEpsilon   *float64 `json:"approx_epsilon,omitempty"`
	ApproxThreshold *int     `json:"approx_threshold,omitempty"`
}

// PhasePatchSection is the phase block of a PATCH /v1/config body; nil
// fields keep their current values. The document (GET) side reuses
// scheduler.PhaseConfig directly.
type PhasePatchSection struct {
	HotThreshold  *float64 `json:"hot_threshold,omitempty"`
	MaxBatches    *int     `json:"max_batches,omitempty"`
	MaxIntervalMS *int     `json:"max_interval_ms,omitempty"`
	Window        *int     `json:"window,omitempty"`
}

// ConfigPatchRequest is the PATCH /v1/config wire form: the config
// document's nesting with every field optional.
type ConfigPatchRequest struct {
	Policy *string             `json:"policy,omitempty"`
	Solver *SolverPatchSection `json:"solver,omitempty"`
	Phase  *PhasePatchSection  `json:"phase,omitempty"`
}

// Stable per-field validation codes, carried in FieldError.Code. The
// response's top-level code stays "invalid_argument"; these pinpoint
// which constraint each offending field violated.
const (
	// FieldCodeUnknownPolicy: "policy" does not name a registered fairness
	// policy.
	FieldCodeUnknownPolicy = "unknown_policy"
	// FieldCodeOutOfRange: the value violates its documented range (e.g. a
	// negative threshold, a hot threshold outside [0, 1]).
	FieldCodeOutOfRange = "out_of_range"
	// FieldCodeNotFinite: the value must be a finite number.
	FieldCodeNotFinite = "not_finite"
)

// FieldError names one offending field of a rejected config patch by its
// JSON path (e.g. "solver.approx_epsilon"), with a human-readable reason
// and a stable per-field code.
type FieldError struct {
	Field string `json:"field"`
	Error string `json:"error"`
	Code  string `json:"code"`
}

// ConfigPatchError is the PATCH /v1/config rejection body: the standard
// error envelope plus the per-field breakdown. Nothing was applied.
type ConfigPatchError struct {
	errorResponse
	Fields []FieldError `json:"fields,omitempty"`
}

// validate runs field-level validation, returning one FieldError per
// offending field (empty = syntactically valid; the backend still
// validates the folded result against its current state on apply).
func (r ConfigPatchRequest) validate() []FieldError {
	var fe []FieldError
	bad := func(field, code, msg string) {
		fe = append(fe, FieldError{Field: field, Error: msg, Code: code})
	}
	if r.Policy != nil {
		if _, err := policy.ForName(*r.Policy); err != nil {
			bad("policy", FieldCodeUnknownPolicy, err.Error())
		}
	}
	if s := r.Solver; s != nil {
		if s.ApproxEpsilon != nil {
			switch eps := *s.ApproxEpsilon; {
			case math.IsNaN(eps) || math.IsInf(eps, 0):
				bad("solver.approx_epsilon", FieldCodeNotFinite, "epsilon must be a finite non-negative fraction")
			case eps < 0:
				bad("solver.approx_epsilon", FieldCodeOutOfRange, "epsilon must be non-negative")
			}
		}
		if s.ApproxThreshold != nil && *s.ApproxThreshold < 0 {
			bad("solver.approx_threshold", FieldCodeOutOfRange, "threshold must be non-negative")
		}
	}
	if p := r.Phase; p != nil {
		if p.HotThreshold != nil {
			switch ht := *p.HotThreshold; {
			case math.IsNaN(ht) || math.IsInf(ht, 0):
				bad("phase.hot_threshold", FieldCodeNotFinite, "hot threshold must be a finite fraction in [0, 1]")
			case ht < 0 || ht > 1:
				bad("phase.hot_threshold", FieldCodeOutOfRange, "hot threshold must be a fraction in [0, 1]")
			}
		}
		if p.MaxBatches != nil && *p.MaxBatches < 0 {
			bad("phase.max_batches", FieldCodeOutOfRange, "max batches must be non-negative")
		}
		if p.MaxIntervalMS != nil && *p.MaxIntervalMS < 0 {
			bad("phase.max_interval_ms", FieldCodeOutOfRange, "max interval must be non-negative")
		}
		if p.Window != nil && *p.Window < 0 {
			bad("phase.window", FieldCodeOutOfRange, "classifier window must be non-negative")
		}
	}
	return fe
}

// Patch flattens the wire form into the scheduler-level patch.
func (r ConfigPatchRequest) Patch() scheduler.ConfigPatch {
	p := scheduler.ConfigPatch{Policy: r.Policy}
	if s := r.Solver; s != nil {
		p.ApproxEpsilon = s.ApproxEpsilon
		p.ApproxThreshold = s.ApproxThreshold
	}
	if ph := r.Phase; ph != nil {
		p.HotThreshold = ph.HotThreshold
		p.MaxBatches = ph.MaxBatches
		p.MaxIntervalMS = ph.MaxIntervalMS
		p.Window = ph.Window
	}
	return p
}

// NewConfigPatchRequest nests a scheduler-level patch back into the wire
// form — the inverse of Patch, for programmatic callers like the cluster
// router's HTTP shard adapter.
func NewConfigPatchRequest(p scheduler.ConfigPatch) ConfigPatchRequest {
	r := ConfigPatchRequest{Policy: p.Policy}
	if p.ApproxEpsilon != nil || p.ApproxThreshold != nil {
		r.Solver = &SolverPatchSection{
			ApproxEpsilon:   p.ApproxEpsilon,
			ApproxThreshold: p.ApproxThreshold,
		}
	}
	if p.HotThreshold != nil || p.MaxBatches != nil || p.MaxIntervalMS != nil || p.Window != nil {
		r.Phase = &PhasePatchSection{
			HotThreshold:  p.HotThreshold,
			MaxBatches:    p.MaxBatches,
			MaxIntervalMS: p.MaxIntervalMS,
			Window:        p.Window,
		}
	}
	return r
}

// RuntimeConfig flattens the document's tunable fields into the
// scheduler-level form (zero values for sections an older server
// omitted). The cluster router's HTTP shard adapter uses it.
func (c ConfigResponse) RuntimeConfig() scheduler.RuntimeConfig {
	rc := scheduler.RuntimeConfig{Policy: c.Policy}
	if c.Solver != nil {
		rc.ApproxEpsilon = c.Solver.ApproxEpsilon
		rc.ApproxThreshold = c.Solver.ApproxThreshold
	}
	if c.Phase != nil {
		rc.Phase = *c.Phase
	}
	return rc
}

// configDoc assembles the full /v1/config document from the backend's
// runtime config plus the server's immutable boot config.
func (s *Server) configDoc(ctx context.Context, cp ConfigPatcher) (ConfigResponse, error) {
	rc, err := cp.RuntimeConfig(ctx)
	if err != nil {
		return ConfigResponse{}, err
	}
	doc := s.cfg
	doc.Policy = rc.Policy
	doc.Solver = &SolverConfigSection{
		ApproxEpsilon:   rc.ApproxEpsilon,
		ApproxThreshold: rc.ApproxThreshold,
	}
	ph := rc.Phase
	doc.Phase = &ph
	return doc, nil
}

// handlePatchConfig applies one partial runtime-tuning update. All
// field-level validation failures are collected and reported together;
// a valid patch is applied atomically and answered with the updated
// document. An empty patch is a no-op that returns the current document.
func (s *Server) handlePatchConfig(w http.ResponseWriter, r *http.Request) {
	cp, ok := s.sc.(ConfigPatcher)
	if !ok {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: "backend does not support runtime config patching", Code: CodeInvalidArgument})
		return
	}
	var req ConfigPatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, err)
		return
	}
	if fields := req.validate(); len(fields) > 0 {
		writeJSON(w, http.StatusBadRequest, ConfigPatchError{
			errorResponse: errorResponse{
				Error: "config patch failed validation", Code: CodeInvalidArgument},
			Fields: fields,
		})
		return
	}
	if patch := req.Patch(); !patch.Empty() {
		if err := cp.ApplyConfig(r.Context(), patch); err != nil {
			writeError(w, err)
			return
		}
	}
	doc, err := s.configDoc(r.Context(), cp)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

// setDeprecatedAlias marks a response as coming from a deprecated alias
// of PATCH /v1/config (RFC 8594-style sunset signalling). The aliases
// keep their exact wire shapes; callers should migrate to the successor
// the Link header names.
func setDeprecatedAlias(w http.ResponseWriter) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", `</v1/config>; rel="successor-version"`)
}

package api

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"testing"

	"repro/internal/scheduler"
	"repro/internal/serve"
	"repro/internal/policy"
	"repro/internal/wal"
)

func TestReadyzEngineLifecycle(t *testing.T) {
	dir := t.TempDir()
	fail := false
	log, _, err := wal.Open(dir, wal.Options{
		Sync: func(f *os.File) error {
			if fail {
				return errors.New("injected fsync failure")
			}
			return f.Sync()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scheduler.New(scheduler.Config{
		SiteCapacity: []float64{1, 1},
		Policy:       policy.AMF,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.New(sc, serve.Config{Log: log})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Crash() })
	srv := NewEngineServer(eng, nil, []float64{1, 1}, policy.AMF)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	if err := c.Readyz(ctx); err != nil {
		t.Fatalf("healthy engine not ready: %v", err)
	}
	// A WAL fail-stop flips readiness to 503/unavailable while liveness
	// stays 200: the process still serves reads.
	fail = true
	if err := eng.AddJob(ctx, "a", 1, []float64{1, 0}, nil); !errors.Is(err, serve.ErrWALFailed) {
		t.Fatalf("add after FailNext = %v, want ErrWALFailed", err)
	}
	err = c.Readyz(ctx)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("readyz after fail-stop = %v, want unavailable", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 503 {
		t.Fatalf("readyz status = %v, want 503", err)
	}
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz after fail-stop = %v, want ok (liveness is separate)", err)
	}
}

// TestReadyzSchedulerBackend: a bare scheduler has no WAL and no replay —
// always ready.
func TestReadyzSchedulerBackend(t *testing.T) {
	sc, err := scheduler.New(scheduler.Config{
		SiteCapacity: []float64{1},
		Policy:       policy.AMF,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(sc, []float64{1}, policy.AMF).Handler())
	t.Cleanup(ts.Close)
	if err := NewClient(ts.URL, ts.Client()).Readyz(context.Background()); err != nil {
		t.Fatalf("bare scheduler not ready: %v", err)
	}
}

func TestExternalWeightEndpoint(t *testing.T) {
	c, eng := newEngineTestServer(t)
	ctx := context.Background()
	if err := c.AddJob(ctx, AddJobRequest{ID: "a", Weight: 1, Demand: []float64{1, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetExternalWeight(ctx, 3); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.ExternalWeight != 3 {
		t.Fatalf("snapshot external weight = %g, want 3", snap.ExternalWeight)
	}
	if err := c.SetExternalWeight(ctx, -1); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("negative external weight = %v, want invalid_argument", err)
	}
	_ = eng
}

// TestAllocationVersion: engine-backed allocations carry the snapshot
// version; each commit advances it.
func TestAllocationVersion(t *testing.T) {
	c, _ := newEngineTestServer(t)
	ctx := context.Background()
	if err := c.AddJob(ctx, AddJobRequest{ID: "a", Demand: []float64{1, 1}}); err != nil {
		t.Fatal(err)
	}
	a1, err := c.Allocation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Version == 0 {
		t.Fatal("engine-backed allocation has version 0")
	}
	if err := c.AddJob(ctx, AddJobRequest{ID: "b", Demand: []float64{0, 1}}); err != nil {
		t.Fatal(err)
	}
	a2, err := c.Allocation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Version <= a1.Version {
		t.Fatalf("version did not advance: %d then %d", a1.Version, a2.Version)
	}
}

package api

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/scheduler"
)

func ptr[T any](v T) *T { return &v }

// TestConfigPatchRoundTrip drives every runtime knob through
// PATCH /v1/config and reads each back through GET /v1/config and the
// backend scheduler.
func TestConfigPatchRoundTrip(t *testing.T) {
	c, sc := newTestServer(t)
	ctx := context.Background()

	doc, err := c.SetConfig(ctx, ConfigPatchRequest{
		Policy: ptr("amf-enhanced"),
		Solver: &SolverPatchSection{
			ApproxEpsilon:   ptr(0.02),
			ApproxThreshold: ptr(5000),
		},
		Phase: &PhasePatchSection{
			HotThreshold:  ptr(0.4),
			MaxBatches:    ptr(16),
			MaxIntervalMS: ptr(25),
			Window:        ptr(64),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Policy != "amf-enhanced" {
		t.Fatalf("patched policy %q, want amf-enhanced", doc.Policy)
	}
	if doc.Solver == nil || doc.Solver.ApproxEpsilon != 0.02 || doc.Solver.ApproxThreshold != 5000 {
		t.Fatalf("patched solver section %+v", doc.Solver)
	}
	if doc.Phase == nil || doc.Phase.HotThreshold != 0.4 || doc.Phase.MaxBatches != 16 ||
		doc.Phase.MaxIntervalMS != 25 || doc.Phase.Window != 64 {
		t.Fatalf("patched phase section %+v", doc.Phase)
	}

	// GET serves the same document.
	got, err := c.Config(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.RuntimeConfig() != doc.RuntimeConfig() {
		t.Fatalf("GET %+v != PATCH response %+v", got.RuntimeConfig(), doc.RuntimeConfig())
	}
	if len(got.SiteCapacity) != 2 {
		t.Fatalf("GET lost the boot config: %+v", got)
	}

	// The scheduler behind the server observed every knob.
	rc := sc.RuntimeConfig()
	if rc.Policy != "amf-enhanced" || rc.ApproxEpsilon != 0.02 || rc.ApproxThreshold != 5000 {
		t.Fatalf("scheduler runtime config %+v", rc)
	}
	if rc.Phase.HotThreshold != 0.4 || rc.Phase.MaxBatches != 16 ||
		rc.Phase.MaxIntervalMS != 25 || rc.Phase.Window != 64 {
		t.Fatalf("scheduler phase config %+v", rc.Phase)
	}

	// Partial patch: one field changes, everything else sticks.
	doc, err = c.SetConfig(ctx, ConfigPatchRequest{
		Phase: &PhasePatchSection{HotThreshold: ptr(0.0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Phase.HotThreshold != 0 || doc.Phase.MaxBatches != 16 {
		t.Fatalf("partial patch clobbered untouched fields: %+v", doc.Phase)
	}
	if doc.Policy != "amf-enhanced" || doc.Solver.ApproxEpsilon != 0.02 {
		t.Fatalf("partial patch clobbered other sections: policy %q solver %+v", doc.Policy, doc.Solver)
	}
}

// TestConfigPatchEmptyNoop checks that an empty patch body applies
// nothing and returns the current document.
func TestConfigPatchEmptyNoop(t *testing.T) {
	c, sc := newTestServer(t)
	before := sc.RuntimeConfig()
	doc, err := c.SetConfig(context.Background(), ConfigPatchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if doc.RuntimeConfig() != before {
		t.Fatalf("empty patch changed config: %+v -> %+v", before, doc.RuntimeConfig())
	}
	if sc.RuntimeConfig() != before {
		t.Fatalf("empty patch reached the scheduler: %+v", sc.RuntimeConfig())
	}
}

// TestConfigPatchFieldErrors sends a patch with several invalid fields
// and checks they are all reported together with stable per-field codes,
// and that nothing — not even the valid fields — was applied.
func TestConfigPatchFieldErrors(t *testing.T) {
	c, sc := newTestServer(t)
	before := sc.RuntimeConfig()

	_, fields, err := c.SetConfigDetailed(context.Background(), ConfigPatchRequest{
		Policy: ptr("round-robin"), // unknown
		Solver: &SolverPatchSection{
			ApproxEpsilon:   ptr(-0.5),  // negative
			ApproxThreshold: ptr(10000), // valid — must still not apply
		},
		Phase: &PhasePatchSection{
			HotThreshold: ptr(1.5), // out of [0, 1]
			MaxBatches:   ptr(-1),  // negative
		},
	})
	if !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("error = %v, want invalid_argument", err)
	}
	if fields == nil {
		t.Fatal("no field-level breakdown returned")
	}
	want := map[string]string{
		"policy":                FieldCodeUnknownPolicy,
		"solver.approx_epsilon": FieldCodeOutOfRange,
		"phase.hot_threshold":   FieldCodeOutOfRange,
		"phase.max_batches":     FieldCodeOutOfRange,
	}
	got := map[string]string{}
	for _, f := range fields.Fields {
		got[f.Field] = f.Code
	}
	for field, code := range want {
		if got[field] != code {
			t.Errorf("field %q: code %q, want %q (all: %v)", field, got[field], code, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("reported fields %v, want exactly %v", got, want)
	}
	// Rejection is atomic: the valid threshold did not slip through.
	if sc.RuntimeConfig() != before {
		t.Fatalf("rejected patch mutated config: %+v -> %+v", before, sc.RuntimeConfig())
	}
}

// TestConfigPatchRejectsNonFinite drives the raw HTTP surface with
// non-JSON numbers for float fields.
func TestConfigPatchRejectsNonFinite(t *testing.T) {
	_, srv := newDirectServer(t)
	for _, body := range []string{
		`{"solver": {"approx_epsilon": 1e999}}`,
		`{"phase": {"hot_threshold": NaN}}`,
	} {
		req := httptest.NewRequest(http.MethodPatch, "/v1/config", strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("body %s: status %d, want 400", body, rec.Code)
		}
	}
}

// TestConfigPatchEngineBacked runs the round trip through the serving
// engine backend: the patch rides an exclusive group commit.
func TestConfigPatchEngineBacked(t *testing.T) {
	c, eng := newEngineTestServer(t)
	ctx := context.Background()
	doc, err := c.SetConfig(ctx, ConfigPatchRequest{
		Phase: &PhasePatchSection{HotThreshold: ptr(0.5), Window: ptr(16)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Phase == nil || doc.Phase.HotThreshold != 0.5 || doc.Phase.Window != 16 {
		t.Fatalf("engine-backed patch response %+v", doc.Phase)
	}
	rc, err := eng.RuntimeConfig(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Phase.HotThreshold != 0.5 || rc.Phase.Window != 16 {
		t.Fatalf("engine runtime config %+v", rc.Phase)
	}
}

// TestAllocationCarriesPhaseLag tunes phase reconciliation on over
// PATCH /v1/config, heats a component with repeated weight updates, and
// checks GET /v1/allocation reports the resulting lag — then that a
// snapshot barrier drains it back to zero.
func TestAllocationCarriesPhaseLag(t *testing.T) {
	c, eng := newEngineTestServer(t)
	ctx := context.Background()

	if _, err := c.SetConfig(ctx, ConfigPatchRequest{
		Phase: &PhasePatchSection{
			HotThreshold:  ptr(0.3),
			MaxBatches:    ptr(1000),
			MaxIntervalMS: ptr(600000),
			Window:        ptr(4),
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddJob(ctx, AddJobRequest{ID: "h1", Demand: []float64{1, 1}, Work: []float64{1e6, 1e6}}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddJob(ctx, AddJobRequest{ID: "h2", Demand: []float64{1, 0}, Work: []float64{1e6, 0}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.UpdateWeight(ctx, "h1", 1+float64(i%3)); err != nil {
			t.Fatal(err)
		}
	}
	alloc, err := c.Allocation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.PhaseLag == 0 || alloc.HotComponents == 0 {
		t.Fatalf("allocation phase_lag = %d, hot_components = %d; want both > 0",
			alloc.PhaseLag, alloc.HotComponents)
	}
	// Snapshot is a barrier: afterwards reads are exact again.
	if _, err := c.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}
	if alloc, err = c.Allocation(ctx); err != nil {
		t.Fatal(err)
	}
	if alloc.PhaseLag != 0 {
		t.Fatalf("phase_lag after snapshot barrier = %d, want 0", alloc.PhaseLag)
	}
	_ = eng
}

// TestDeprecatedAliasHeaders checks that the bespoke tuning endpoints
// advertise their successor while keeping their exact wire shapes.
func TestDeprecatedAliasHeaders(t *testing.T) {
	_, srv := newDirectServer(t)
	ts := srv.Handler()
	cases := []struct {
		method, path, body string
	}{
		{http.MethodPut, "/v1/policy", `{"policy": "amf"}`},
		{http.MethodPut, "/v1/solver/approx", `{"epsilon": 0.01, "threshold": 100}`},
		{http.MethodGet, "/v1/solver/approx", ""},
	}
	for _, tc := range cases {
		var rd *strings.Reader
		if tc.body != "" {
			rd = strings.NewReader(tc.body)
		} else {
			rd = strings.NewReader("")
		}
		req := httptest.NewRequest(tc.method, tc.path, rd)
		rec := httptest.NewRecorder()
		ts.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s %s: status %d body %s", tc.method, tc.path, rec.Code, rec.Body.String())
		}
		if got := rec.Header().Get("Deprecation"); got != "true" {
			t.Errorf("%s %s: Deprecation header %q, want \"true\"", tc.method, tc.path, got)
		}
		if got := rec.Header().Get("Link"); !strings.Contains(got, "/v1/config") ||
			!strings.Contains(got, `rel="successor-version"`) {
			t.Errorf("%s %s: Link header %q lacks successor-version pointer", tc.method, tc.path, got)
		}
	}
	// The unified endpoint itself is not deprecated.
	req := httptest.NewRequest(http.MethodGet, "/v1/config", nil)
	rec := httptest.NewRecorder()
	ts.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Header().Get("Deprecation") != "" {
		t.Fatalf("GET /v1/config: status %d, Deprecation %q", rec.Code, rec.Header().Get("Deprecation"))
	}
}

// TestDeprecatedAliasesShareTheUnifiedPath checks a change made through
// an alias is visible through /v1/config and vice versa.
func TestDeprecatedAliasesShareTheUnifiedPath(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()

	if err := c.SetApproxConfig(ctx, 0.03, 700); err != nil {
		t.Fatal(err)
	}
	doc, err := c.Config(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Solver == nil || doc.Solver.ApproxEpsilon != 0.03 || doc.Solver.ApproxThreshold != 700 {
		t.Fatalf("alias write invisible to /v1/config: %+v", doc.Solver)
	}

	if _, err := c.SetConfig(ctx, ConfigPatchRequest{
		Solver: &SolverPatchSection{ApproxEpsilon: ptr(0.07)},
	}); err != nil {
		t.Fatal(err)
	}
	got, err := c.ApproxConfig(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epsilon != 0.07 || got.Threshold != 700 {
		t.Fatalf("unified write invisible to alias GET: %+v", got)
	}
}

// newDirectServer builds a scheduler-backed Server without an HTTP
// listener, for header- and wire-level assertions via httptest recorders.
func newDirectServer(t *testing.T) (*scheduler.Scheduler, *Server) {
	t.Helper()
	sc, err := scheduler.New(scheduler.Config{
		SiteCapacity: []float64{1, 1},
		Policy:       policy.AMF,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc, NewServer(sc, []float64{1, 1}, policy.AMF)
}

// TestConfigDocumentWireShape pins the JSON nesting of the document so
// the quickstart in the README stays truthful.
func TestConfigDocumentWireShape(t *testing.T) {
	_, srv := newDirectServer(t)
	req := httptest.NewRequest(http.MethodGet, "/v1/config", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"site_capacity", "policy", "solver", "phase"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("document lacks %q: %s", key, rec.Body.String())
		}
	}
}

package api

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/scheduler"
	"repro/internal/serve"
	"repro/internal/policy"
	"repro/internal/wal"
)

// durableStack is one controller process: scheduler + WAL-backed engine +
// HTTP server + client, recovered from dir.
type durableStack struct {
	sc  *scheduler.Scheduler
	eng *serve.Engine
	cl  *Client
}

func newDurableStack(t *testing.T, dir string) *durableStack {
	t.Helper()
	l, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scheduler.New(scheduler.Config{
		SiteCapacity: []float64{2, 2},
		Policy:       policy.AMF,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Replay(sc); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	eng, err := serve.New(sc, serve.Config{Metrics: reg, Log: l})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	srv := NewEngineServer(eng, reg, []float64{2, 2}, policy.AMF)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &durableStack{sc: sc, eng: eng, cl: NewClient(ts.URL, ts.Client())}
}

// TestStructuredErrorCodes: every failure mode carries its stable code on
// the wire and matches the client sentinels under errors.Is.
func TestStructuredErrorCodes(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()

	_, err := c.Shares(ctx, "ghost")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown job err = %v, want ErrNotFound", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != CodeNotFound || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job APIError = %+v", apiErr)
	}

	if err := c.AddJob(ctx, AddJobRequest{ID: "a", Demand: []float64{1, 1}}); err != nil {
		t.Fatal(err)
	}
	err = c.AddJob(ctx, AddJobRequest{ID: "a", Demand: []float64{1, 1}})
	if !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("duplicate err = %v, want ErrAlreadyExists", err)
	}

	err = c.AddJob(ctx, AddJobRequest{ID: "b", Demand: []float64{1}})
	if !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("validation err = %v, want ErrInvalidArgument", err)
	}
	if errors.Is(err, ErrNotFound) || errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("invalid_argument matched the wrong sentinel: %v", err)
	}
}

// TestCancelledContextMapsToUnavailable: a request whose context is
// already dead reaches the backend, which refuses it; the server answers
// 503/unavailable.
func TestCancelledContextMapsToUnavailable(t *testing.T) {
	for _, engine := range []bool{false, true} {
		sc, err := scheduler.New(scheduler.Config{SiteCapacity: []float64{1, 1}, Policy: policy.AMF})
		if err != nil {
			t.Fatal(err)
		}
		var srv *Server
		if engine {
			eng, err := serve.New(sc, serve.Config{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = eng.Close() })
			srv = NewEngineServer(eng, nil, []float64{1, 1}, policy.AMF)
		} else {
			srv = NewServer(sc, []float64{1, 1}, policy.AMF)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		req := httptest.NewRequest(http.MethodPost, "/v1/jobs",
			strings.NewReader(`{"id":"x","demand":[1,1]}`)).WithContext(ctx)
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("engine=%v: cancelled request -> %d, want 503 (body %s)",
				engine, rec.Code, rec.Body.String())
		}
		if !strings.Contains(rec.Body.String(), CodeUnavailable) {
			t.Fatalf("engine=%v: cancelled request body %q missing %q",
				engine, rec.Body.String(), CodeUnavailable)
		}
	}
}

// TestBatchEndpointOneSolve: POST /v1/jobs:batch lands the whole set in
// exactly one solve.
func TestBatchEndpointOneSolve(t *testing.T) {
	st := newDurableStack(t, t.TempDir())
	ctx := context.Background()
	preSolves := st.sc.Stats().Solves

	resp, err := st.cl.AddJobs(ctx, []AddJobRequest{
		{ID: "a", Demand: []float64{1, 0}},
		{ID: "b", Demand: []float64{0, 1}},
		{ID: "c", Demand: []float64{1, 1}, Weight: 2, Queue: ""},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Added != 3 || len(resp.Results) != 3 {
		t.Fatalf("batch response = %+v", resp)
	}
	if got := st.sc.Stats().Solves - preSolves; got != 1 {
		t.Fatalf("batch add solved %d times, want exactly 1", got)
	}
	alloc, err := st.cl.Allocation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.Jobs) != 3 {
		t.Fatalf("allocation has %d jobs after batch, want 3", len(alloc.Jobs))
	}
}

// TestBatchEndpointAllOrNothing: one invalid item rejects the whole
// batch, and the per-item report pinpoints it with its own code.
func TestBatchEndpointAllOrNothing(t *testing.T) {
	st := newDurableStack(t, t.TempDir())
	ctx := context.Background()
	if err := st.cl.AddJob(ctx, AddJobRequest{ID: "taken", Demand: []float64{1, 1}}); err != nil {
		t.Fatal(err)
	}

	resp, err := st.cl.AddJobs(ctx, []AddJobRequest{
		{ID: "fresh", Demand: []float64{1, 0}},
		{ID: "taken", Demand: []float64{0, 1}},      // duplicate
		{ID: "badlen", Demand: []float64{1}},        // wrong arity
		{ID: "fresh2", Demand: []float64{0.5, 0.5}}, // valid, still rejected
	})
	if !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("rejected batch err = %v, want ErrInvalidArgument", err)
	}
	if resp.Added != 0 || len(resp.Results) != 4 {
		t.Fatalf("rejected batch response = %+v", resp)
	}
	if resp.Results[0].Error != "" || resp.Results[3].Error != "" {
		t.Fatalf("valid items carry errors: %+v", resp.Results)
	}
	if resp.Results[1].Code != CodeAlreadyExists {
		t.Fatalf("duplicate item code = %q, want already_exists", resp.Results[1].Code)
	}
	if resp.Results[2].Code != CodeInvalidArgument {
		t.Fatalf("bad-arity item code = %q, want invalid_argument", resp.Results[2].Code)
	}
	// Nothing leaked: only the pre-existing job is allocated.
	alloc, err := st.cl.Allocation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.Jobs) != 1 {
		t.Fatalf("rejected batch leaked jobs: %v", alloc.Jobs)
	}
	// Duplicate IDs within one batch are also atomic rejections.
	if _, err := st.cl.AddJobs(ctx, []AddJobRequest{
		{ID: "twin", Demand: []float64{1, 0}},
		{ID: "twin", Demand: []float64{0, 1}},
	}); err == nil {
		t.Fatal("in-batch duplicate accepted")
	}
}

// sameAllocations compares two wire allocations to 1e-9 aggregates.
func sameAllocations(t *testing.T, tag string, got, want AllocationResponse) {
	t.Helper()
	if len(got.Jobs) != len(want.Jobs) {
		t.Fatalf("%s: %d jobs, want %d", tag, len(got.Jobs), len(want.Jobs))
	}
	for id, w := range want.Jobs {
		g, ok := got.Jobs[id]
		if !ok {
			t.Fatalf("%s: job %q missing", tag, id)
		}
		if math.Abs(g.Aggregate-w.Aggregate) > 1e-9 {
			t.Fatalf("%s: job %q aggregate %g, want %g", tag, id, g.Aggregate, w.Aggregate)
		}
		for s := range w.Shares {
			if math.Abs(g.Shares[s]-w.Shares[s]) > 1e-9 {
				t.Fatalf("%s: job %q shares %v, want %v", tag, id, g.Shares, w.Shares)
			}
		}
	}
}

// TestClientServerCrashRecoveryRoundTrip is the end-to-end durability
// round-trip over the wire: batch-add through the client, hard-crash the
// engine, restart a fresh stack from the same data directory, and the
// restarted server reports an identical /v1/allocation.
func TestClientServerCrashRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	st := newDurableStack(t, dir)
	if _, err := st.cl.AddJobs(ctx, []AddJobRequest{
		{ID: "etl", Demand: []float64{2, 0}, Work: []float64{10, 0}},
		{ID: "ml", Demand: []float64{1, 2}, Weight: 2},
		{ID: "web", Demand: []float64{1, 1}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.cl.UpdateWeight(ctx, "web", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := st.cl.ReportProgress(ctx, "etl", []float64{4, 0}); err != nil {
		t.Fatal(err)
	}
	before, err := st.cl.Allocation(ctx)
	if err != nil {
		t.Fatal(err)
	}

	st.eng.Crash() // simulated process death: no seal, no final snapshot

	st2 := newDurableStack(t, dir)
	after, err := st2.cl.Allocation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sameAllocations(t, "crash-restart", after, before)

	// The restarted controller is live, not just a replica of the past.
	if err := st2.cl.AddJob(ctx, AddJobRequest{ID: "new", Demand: []float64{0.5, 0.5}}); err != nil {
		t.Fatal(err)
	}
}

// TestClientServerGracefulRestartRoundTrip is the SIGTERM-shaped variant:
// amf-server's signal handler calls eng.Close(), which folds the WAL into
// a final snapshot; the restart recovers from the snapshot alone.
func TestClientServerGracefulRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	st := newDurableStack(t, dir)
	if _, err := st.cl.AddJobs(ctx, []AddJobRequest{
		{ID: "a", Demand: []float64{2, 1}},
		{ID: "b", Demand: []float64{1, 2}},
	}); err != nil {
		t.Fatal(err)
	}
	before, err := st.cl.Allocation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.eng.Close(); err != nil { // what the SIGTERM handler runs
		t.Fatal(err)
	}

	st2 := newDurableStack(t, dir)
	after, err := st2.cl.Allocation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sameAllocations(t, "graceful-restart", after, before)
}

// TestMetricsCarryWALTelemetry: with a WAL attached, /v1/metrics reports
// fsync latency and log-depth telemetry.
func TestMetricsCarryWALTelemetry(t *testing.T) {
	st := newDurableStack(t, t.TempDir())
	ctx := context.Background()
	if err := st.cl.AddJob(ctx, AddJobRequest{ID: "a", Demand: []float64{1, 1}}); err != nil {
		t.Fatal(err)
	}
	m, err := st.cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Histograms["wal.fsync_latency"].Count == 0 {
		t.Fatalf("wal.fsync_latency histogram empty: %v", m.Histograms)
	}
	if m.Histograms["wal.append_latency"].Count == 0 {
		t.Fatalf("wal.append_latency histogram empty: %v", m.Histograms)
	}
	if got, ok := m.Gauges["wal.records_since_compact"]; !ok || got < 1 {
		t.Fatalf("wal.records_since_compact gauge = %v (ok=%v)", got, ok)
	}
	if got := m.Gauges["wal.segments"]; got < 1 {
		t.Fatalf("wal.segments gauge = %v", got)
	}
}

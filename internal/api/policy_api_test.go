package api

import (
	"context"
	"errors"
	"testing"

	"repro/internal/policy"
	"repro/internal/scheduler"
	"repro/internal/wal"
)

// TestPolicyEndpointEngine drives the policy surface end to end on the
// engine backend: read the active policy, switch it at runtime, observe
// the switch in every read surface (policy, config, stats, allocation).
func TestPolicyEndpointEngine(t *testing.T) {
	c, eng := newEngineTestServer(t)
	ctx := context.Background()

	pr, err := c.Policy(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Policy != "amf" {
		t.Fatalf("initial policy %q, want amf", pr.Policy)
	}
	if len(pr.Available) != len(policy.Names()) {
		t.Fatalf("available = %v, want all of %v", pr.Available, policy.Names())
	}

	if err := c.AddJob(ctx, AddJobRequest{ID: "a", Demand: []float64{1, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetPolicy(ctx, "drf"); err != nil {
		t.Fatal(err)
	}
	if got := eng.PolicyName(); got != "drf" {
		t.Fatalf("engine policy %q after switch", got)
	}
	pr, err = c.Policy(ctx)
	if err != nil || pr.Policy != "drf" {
		t.Fatalf("policy after switch = %+v, %v", pr, err)
	}
	cfg, err := c.Config(ctx)
	if err != nil || cfg.Policy != "drf" {
		t.Fatalf("config after switch = %+v, %v", cfg, err)
	}
	st, err := c.Stats(ctx)
	if err != nil || st.Policy != "drf" {
		t.Fatalf("stats after switch = %+v, %v", st, err)
	}
	alloc, err := c.Allocation(ctx)
	if err != nil || alloc.Policy != "drf" {
		t.Fatalf("allocation after switch policy = %q, %v", alloc.Policy, err)
	}
	if len(alloc.Jobs) != 1 {
		t.Fatalf("allocation lost jobs across the switch: %v", alloc.Jobs)
	}

	// Unknown and empty names are invalid_argument; the active policy is
	// untouched.
	if err := c.SetPolicy(ctx, "nope"); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("unknown policy err = %v, want ErrInvalidArgument", err)
	}
	if err := c.SetPolicy(ctx, ""); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("empty policy err = %v, want ErrInvalidArgument", err)
	}
	if pr, _ := c.Policy(ctx); pr.Policy != "drf" {
		t.Fatalf("failed switch changed policy to %q", pr.Policy)
	}
}

// TestPolicyEndpointDirect: the scheduler-backed server supports runtime
// switching too.
func TestPolicyEndpointDirect(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()
	if err := c.SetPolicy(ctx, "propfair"); err != nil {
		t.Fatal(err)
	}
	pr, err := c.Policy(ctx)
	if err != nil || pr.Policy != "propfair" {
		t.Fatalf("policy = %+v, %v", pr, err)
	}
}

// TestPolicySwitchSurvivesCrash: a runtime switch is a logged mutation.
// After a crash, replaying the WAL tail re-runs the switch at the same
// point in the mutation order, so the restarted controller comes back
// under the switched policy with the identical allocation.
func TestPolicySwitchSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	st := newDurableStack(t, dir)
	if _, err := st.cl.AddJobs(ctx, []AddJobRequest{
		{ID: "a", Demand: []float64{2, 0}},
		{ID: "b", Demand: []float64{1, 2}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.cl.SetPolicy(ctx, "drf"); err != nil {
		t.Fatal(err)
	}
	if err := st.cl.AddJob(ctx, AddJobRequest{ID: "c", Demand: []float64{1, 1}}); err != nil {
		t.Fatal(err)
	}
	before, err := st.cl.Allocation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	st.eng.Crash()

	st2 := newDurableStack(t, dir)
	if got := st2.sc.PolicyName(); got != "drf" {
		t.Fatalf("recovered policy %q, want drf", got)
	}
	after, err := st2.cl.Allocation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.Policy != "drf" {
		t.Fatalf("recovered allocation policy %q", after.Policy)
	}
	sameAllocations(t, "crash-recovery across policy switch", after, before)
}

// TestRecoveryRefusesMismatchedSnapshotPolicy: a graceful shutdown after
// a switch folds the WAL into a snapshot stamped with the new policy.
// Restarting with the old policy configured must fail loudly at replay,
// not silently serve under the wrong discipline.
func TestRecoveryRefusesMismatchedSnapshotPolicy(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	st := newDurableStack(t, dir)
	if err := st.cl.AddJob(ctx, AddJobRequest{ID: "a", Demand: []float64{1, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := st.cl.SetPolicy(ctx, "psmmf"); err != nil {
		t.Fatal(err)
	}
	if err := st.eng.Close(); err != nil { // folds into a final snapshot
		t.Fatal(err)
	}

	_, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scheduler.New(scheduler.Config{SiteCapacity: []float64{2, 2}, Policy: policy.AMF})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Replay(sc); err == nil {
		t.Fatal("replaying a psmmf snapshot into an amf controller succeeded")
	}
	// The right configuration recovers cleanly.
	_, rec2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := scheduler.New(scheduler.Config{SiteCapacity: []float64{2, 2}, Policy: policy.PSMMF})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec2.Replay(sc2); err != nil {
		t.Fatalf("matching recovery failed: %v", err)
	}
	if sc2.PolicyName() != "psmmf" {
		t.Fatalf("recovered policy %q", sc2.PolicyName())
	}
}

// Package api exposes the scheduler controller over a JSON/HTTP control
// plane — the deployment surface for running the allocator as a sidecar or
// standalone service — together with a typed Go client.
//
// Endpoints (all JSON):
//
//	GET    /v1/healthz                 liveness: 200 as long as the process
//	                                   can serve HTTP at all — reads keep
//	                                   working even after a WAL fail-stop
//	GET    /v1/readyz                  readiness: 200 only when the backend
//	                                   can take mutations and is caught up;
//	                                   503 {"code":"unavailable"} while WAL
//	                                   recovery/replica replay is in
//	                                   progress or after fail-stop
//	                                   (serve.ErrWALFailed). Routers and
//	                                   load balancers health-check THIS,
//	                                   not /v1/healthz.
//	GET    /v1/config                  the runtime-tuning document: site
//	                                   capacities, policy, solver and
//	                                   phase-reconciliation knobs
//	PATCH  /v1/config                  apply a partial runtime-tuning
//	                                   update: validated in full with
//	                                   per-field error codes, applied
//	                                   atomically, WAL-logged
//	GET    /v1/policy                  active fairness policy + valid names
//	PUT    /v1/policy                  DEPRECATED alias of PATCH /v1/config
//	                                   {"policy": ...}; sends Deprecation +
//	                                   successor-version Link headers
//	POST   /v1/queues                  declare a weighted queue
//	POST   /v1/jobs                    register a job (optionally in a queue)
//	POST   /v1/jobs:batch              register many jobs atomically, one solve
//	DELETE /v1/jobs/{id}               deregister (cancel) a job
//	POST   /v1/jobs/{id}/progress     report completed work
//	PUT    /v1/jobs/{id}/weight       change a job's weight
//	GET    /v1/jobs/{id}/shares       one job's current shares
//	GET    /v1/allocation              all current shares
//	GET    /v1/stats                   controller counters
//	GET    /v1/metrics                 metrics registry snapshot
//	GET    /v1/traces                  recent commit traces (see SetTraces)
//	GET    /v1/snapshot                download controller state
//	PUT    /v1/snapshot                restore controller state
//	PUT    /v1/cluster/external-weight reconcile the external share-weight
//	                                   sum (cluster router broadcast)
//	PUT    /v1/solver/approx           DEPRECATED alias of PATCH /v1/config
//	                                   {"solver": ...}; sends Deprecation +
//	                                   successor-version Link headers
//	GET    /v1/solver/approx           current approximation knobs
//	                                   (deprecated; read /v1/config)
//	GET    /metrics                    Prometheus text exposition
//
// Every endpoint is wrapped in metrics middleware recording per-endpoint
// request counts, error counts and latency histograms into an obs.Registry,
// served at GET /v1/metrics alongside the solver's counters — and, in
// Prometheus text-exposition form, at GET /metrics.
//
// The middleware also assigns every request a trace ID (honoring an
// inbound X-AMF-Trace-Id header, else minting one), returns it in the
// X-AMF-Trace-Id response header, and propagates it through the request
// context into the engine's group commits, where it correlates the
// request with the commit trace recorded at GET /v1/traces.
//
// The server fronts either a bare scheduler.Scheduler (NewServer) or a
// serve.Engine (NewEngineServer) — with the engine, mutations are batched
// through its group commit and GET /v1/allocation is served lock-free from
// the engine's published snapshot. Handlers pass the request context to
// the backend: a client that disconnects or times out while its mutation
// is still queued abandons the commit instead of blocking on the batch
// window.
//
// Errors are returned as {"error": "...", "code": "..."} where code is one
// of the stable constants in this package (invalid_argument → 400,
// not_found → 404, already_exists → 409, unavailable → 503). The Go
// client surfaces them as *APIError values matching the Err* sentinels
// under errors.Is.
package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/policy"
	"repro/internal/scheduler"
	"repro/internal/serve"
)

// TraceHeader is the response (and optional request) header carrying the
// request's trace ID.
const TraceHeader = "X-AMF-Trace-Id"

// ParentHeader is the request header carrying the cluster-level parent
// trace ID: the router mints one per fan-out and shards stamp it on the
// commit traces the request rides in (span.Trace.Parent), so the router's
// GET /v1/traces can stitch shard-local traces under their parent.
const ParentHeader = "X-AMF-Parent-Span"

// Backend is the controller surface the API serves. All mutations and
// reads are context-aware; implementations must return promptly with
// ctx.Err() (or an error wrapping it) once ctx is cancelled. Implemented
// by *serve.Engine (batched mutations, lock-free snapshot reads) and, via
// an internal adapter, by a bare *scheduler.Scheduler.
type Backend interface {
	AddJob(ctx context.Context, id string, weight float64, demand, work []float64) error
	AddJobInQueue(ctx context.Context, queue, id string, weight float64, demand, work []float64) error
	AddJobs(ctx context.Context, specs []scheduler.JobSpec) error
	AddQueue(ctx context.Context, name string, weight float64) error
	RemoveJob(ctx context.Context, id string) error
	ReportProgress(ctx context.Context, id string, done []float64) (bool, error)
	UpdateWeight(ctx context.Context, id string, weight float64) error
	Shares(ctx context.Context, id string) ([]float64, error)
	Allocation(ctx context.Context) (map[string][]float64, error)
	Stats() scheduler.Stats
	Snapshot() scheduler.Snapshot
	Restore(ctx context.Context, snap scheduler.Snapshot) error
}

// ReadyChecker is the optional readiness surface behind GET /v1/readyz.
// Backends that can be temporarily unable to take mutations (WAL recovery,
// replica replay, fail-stop) return the reason from ReadyErr; backends
// without the method are always ready. *serve.Engine implements it.
type ReadyChecker interface {
	ReadyErr() error
}

// Versioned is the optional snapshot-version surface. Backends that
// publish versioned allocation snapshots (the engine's RCU snapshot, a
// replica's replayed view) expose the version so cluster reads can be
// stitched into a coherent version vector.
type Versioned interface {
	SnapshotVersion() uint64
}

// ExternalWeighter is the optional cluster-reconciliation surface behind
// PUT /v1/cluster/external-weight: the share-weight sum held by jobs
// outside this backend, folded into Enhanced-AMF equal-share floors.
type ExternalWeighter interface {
	SetExternalWeight(ctx context.Context, w float64) error
}

// ApproxConfigurer is the optional solver-tuning surface behind
// PUT/GET /v1/solver/approx: the approximate water-filling knobs
// (core.Solver.ApproxEpsilon / ApproxThreshold). Backends without the
// methods reject the routes with invalid_argument.
type ApproxConfigurer interface {
	SetApproxConfig(ctx context.Context, epsilon float64, threshold int) error
	ApproxConfig() (epsilon float64, threshold int)
}

// PolicyController is the optional fairness-policy surface behind
// GET/PUT /v1/policy: the active policy's wire name, and a runtime switch
// to another one (policy.Names lists the valid names). Backends without
// the methods serve the constructor-time policy read-only and reject the
// switch with invalid_argument.
type PolicyController interface {
	PolicyName() string
	SetPolicy(ctx context.Context, name string) error
}

// Explainer is the optional allocation-explainability surface behind
// GET /v1/explain: the water-filling evidence (per-job final level,
// freeze round, binding sites, floor flags; per-site saturation) derived
// from the backend's published allocation. job "" requests the full
// explanation; a named job must exist (scheduler.ErrUnknownJob → 404).
// Implemented by *serve.Engine (snapshot-consistent, cached per version),
// the cluster router (routed to the owning shard) and read replicas.
type Explainer interface {
	Explain(ctx context.Context, job string) (*serve.ExplainResult, error)
}

var _ Backend = (*serve.Engine)(nil)
var _ Backend = schedulerBackend{}
var _ ReadyChecker = (*serve.Engine)(nil)
var _ Versioned = (*serve.Engine)(nil)
var _ ExternalWeighter = (*serve.Engine)(nil)
var _ ExternalWeighter = schedulerBackend{}
var _ ApproxConfigurer = (*serve.Engine)(nil)
var _ ApproxConfigurer = schedulerBackend{}
var _ PolicyController = (*serve.Engine)(nil)
var _ PolicyController = schedulerBackend{}
var _ Explainer = (*serve.Engine)(nil)
var _ Explainer = schedulerBackend{}

// schedulerBackend adapts a bare controller to the context-aware Backend.
// The scheduler's methods are fast and synchronous, so honoring the
// context reduces to not starting after cancellation.
type schedulerBackend struct {
	sc *scheduler.Scheduler
}

func (b schedulerBackend) AddJob(ctx context.Context, id string, weight float64, demand, work []float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return b.sc.AddJob(id, weight, demand, work)
}

func (b schedulerBackend) AddJobInQueue(ctx context.Context, queue, id string, weight float64, demand, work []float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return b.sc.AddJobInQueue(queue, id, weight, demand, work)
}

func (b schedulerBackend) AddJobs(ctx context.Context, specs []scheduler.JobSpec) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return b.sc.AddJobs(specs)
}

func (b schedulerBackend) AddQueue(ctx context.Context, name string, weight float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return b.sc.AddQueue(name, weight)
}

func (b schedulerBackend) RemoveJob(ctx context.Context, id string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return b.sc.RemoveJob(id)
}

func (b schedulerBackend) ReportProgress(ctx context.Context, id string, done []float64) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return b.sc.ReportProgress(id, done)
}

func (b schedulerBackend) UpdateWeight(ctx context.Context, id string, weight float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return b.sc.UpdateWeight(id, weight)
}

func (b schedulerBackend) Shares(ctx context.Context, id string) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.sc.Shares(id)
}

func (b schedulerBackend) Allocation(ctx context.Context) (map[string][]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.sc.Allocation()
}

func (b schedulerBackend) Stats() scheduler.Stats { return b.sc.Stats() }

func (b schedulerBackend) Snapshot() scheduler.Snapshot { return b.sc.Snapshot() }

func (b schedulerBackend) Restore(ctx context.Context, snap scheduler.Snapshot) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return b.sc.Restore(snap)
}

func (b schedulerBackend) SetExternalWeight(ctx context.Context, w float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return b.sc.SetExternalWeight(w)
}

func (b schedulerBackend) SetApproxConfig(ctx context.Context, epsilon float64, threshold int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return b.sc.SetApproxConfig(epsilon, threshold)
}

func (b schedulerBackend) ApproxConfig() (epsilon float64, threshold int) {
	return b.sc.ApproxConfig()
}

func (b schedulerBackend) Explain(ctx context.Context, job string) (*serve.ExplainResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ex, err := b.sc.Explain()
	if err != nil {
		return nil, err
	}
	if job != "" && ex.JobByName(job) == nil {
		return nil, fmt.Errorf("%w: %q", scheduler.ErrUnknownJob, job)
	}
	return &serve.ExplainResult{Policy: b.sc.PolicyName(), Explanation: ex}, nil
}

func (b schedulerBackend) PolicyName() string { return b.sc.PolicyName() }

func (b schedulerBackend) SetPolicy(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return b.sc.SetPolicyName(name)
}

// AddJobRequest registers a job. Queue, when set, must name a queue
// previously declared via POST /v1/queues.
type AddJobRequest struct {
	ID     string    `json:"id"`
	Weight float64   `json:"weight,omitempty"`
	Queue  string    `json:"queue,omitempty"`
	Demand []float64 `json:"demand"`
	Work   []float64 `json:"work,omitempty"`
}

// spec converts the wire form into the scheduler's job spec.
func (r AddJobRequest) spec() scheduler.JobSpec {
	return scheduler.JobSpec{
		ID: r.ID, Weight: r.Weight, Queue: r.Queue,
		Demand: r.Demand, Work: r.Work,
	}
}

// BatchAddRequest registers a set of jobs atomically: either every job is
// added — in one engine commit, with one solve — or none are.
type BatchAddRequest struct {
	Jobs []AddJobRequest `json:"jobs"`
}

// BatchItemResult is one job's outcome in a batch registration. Error and
// Code are empty for jobs that were (or would have been) valid.
type BatchItemResult struct {
	ID    string `json:"id"`
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
}

// BatchAddResponse reports a batch registration. On rejection Added is 0
// and Results pinpoints the offending items.
type BatchAddResponse struct {
	Added   int               `json:"added"`
	Results []BatchItemResult `json:"results"`
}

// AddQueueRequest declares a queue with a weight.
type AddQueueRequest struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight,omitempty"`
}

// ProgressRequest reports completed work per site.
type ProgressRequest struct {
	Done []float64 `json:"done"`
}

// ProgressResponse reports whether the job completed.
type ProgressResponse struct {
	Completed bool `json:"completed"`
}

// SharesResponse carries one job's allocation.
type SharesResponse struct {
	ID        string    `json:"id"`
	Shares    []float64 `json:"shares"`
	Aggregate float64   `json:"aggregate"`
}

// AllocationResponse carries every job's allocation. Version is the
// backend's snapshot version when it publishes one (see Versioned) — a
// monotonic per-backend sequence the cluster router assembles into its
// snapshot version vector; 0 when the backend is unversioned.
type AllocationResponse struct {
	Jobs    map[string]SharesResponse `json:"jobs"`
	Version uint64                    `json:"version,omitempty"`
	// Policy is the wire name of the fairness policy the allocation was
	// solved under.
	Policy string `json:"policy,omitempty"`
	// PhaseLag counts acknowledged commutative mutations buffered against
	// hot components and not yet folded into this allocation (see
	// PhaseReporter). 0 means the allocation is exact.
	PhaseLag int `json:"phase_lag,omitempty"`
	// HotComponents is the phase classifier's hot-set size at publish
	// time.
	HotComponents int `json:"hot_components,omitempty"`
}

// ConfigResponse is the GET /v1/config (and PATCH /v1/config response)
// document: the controller's immutable boot configuration plus, when the
// backend exposes the unified tuning surface (ConfigPatcher), the full
// runtime-tuning state. Solver and Phase are nil for legacy read-only
// backends, keeping the historical two-field shape.
type ConfigResponse struct {
	SiteCapacity []float64              `json:"site_capacity"`
	Policy       string                 `json:"policy"`
	Solver       *SolverConfigSection   `json:"solver,omitempty"`
	Phase        *scheduler.PhaseConfig `json:"phase,omitempty"`
}

// StatsResponse mirrors scheduler.Stats, plus the active policy name.
type StatsResponse struct {
	Policy            string  `json:"policy,omitempty"`
	Solves            int     `json:"solves"`
	Skipped           int     `json:"skipped"`
	Jobs              int     `json:"jobs"`
	Completed         int     `json:"completed"`
	LastSolveSeconds  float64 `json:"last_solve_seconds"`
	TotalSolveSeconds float64 `json:"total_solve_seconds"`
	LastComponents    int     `json:"last_components"`
	LargestComponent  int     `json:"largest_component"`
	LastSpeedup       float64 `json:"last_speedup"`
	// Incremental-solve telemetry: components reused vs. re-solved by the
	// most recent solve, and lifetime fingerprint-cache accounting.
	LastReused          int   `json:"last_reused"`
	LastResolved        int   `json:"last_resolved"`
	CacheHits           int64 `json:"cache_hits"`
	CacheMisses         int64 `json:"cache_misses"`
	GlobalInvalidations int64 `json:"global_invalidations"`
	// Approximate water-filling telemetry from the most recent solve:
	// components routed through the approximate path, and the solver's
	// certified per-job deviation bound (0 when every component was exact).
	ApproxComponents int     `json:"approx_components"`
	ApproxErrorBound float64 `json:"approx_error_bound"`
	// SolveLatency and CommitLatency carry the estimated p50/p95/p99 of
	// the backend's solve and commit latency histograms (nil against a
	// backend without engine instrumentation), so load harnesses read them
	// here instead of re-deriving from /v1/metrics buckets.
	SolveLatency  *LatencyQuantiles `json:"solve_latency,omitempty"`
	CommitLatency *LatencyQuantiles `json:"commit_latency,omitempty"`
}

// LatencyQuantiles is a histogram's estimated quantile summary, in
// seconds, interpolated from its exponential buckets.
type LatencyQuantiles struct {
	Count      int64   `json:"count"`
	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// Server wraps a controller backend with the HTTP API.
type Server struct {
	sc         Backend
	cfg        ConfigResponse
	mux        *http.ServeMux
	reg        *obs.Registry
	traces     *span.Recorder
	slowTraces *span.SlowRecorder
}

// NewServer builds the API around a bare controller. capacity and
// pol are echoed by /v1/config (the scheduler does not expose the
// capacities). The server creates its own metrics registry (see Metrics).
func NewServer(sc *scheduler.Scheduler, capacity []float64, pol policy.Policy) *Server {
	return newServer(schedulerBackend{sc: sc}, obs.NewRegistry(), capacity, pol)
}

// NewEngineServer builds the API around a serving engine: mutations are
// group-committed, allocation reads come lock-free from the engine's
// published snapshot. reg should be the registry the engine instruments
// (so /v1/metrics unifies HTTP and solver telemetry); nil creates a fresh
// one.
func NewEngineServer(eng *serve.Engine, reg *obs.Registry, capacity []float64, pol policy.Policy) *Server {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return newServer(eng, reg, capacity, pol)
}

// NewBackendServer builds the API around any Backend implementation —
// the extension point for backends beyond the bare scheduler and the
// engine, such as a cluster read replica or the shard router's merged
// view. Optional capabilities (ReadyChecker, Versioned, ExternalWeighter,
// PolicyController) are discovered by interface assertion. nil reg
// creates a fresh registry.
func NewBackendServer(be Backend, reg *obs.Registry, capacity []float64, pol policy.Policy) *Server {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return newServer(be, reg, capacity, pol)
}

func newServer(be Backend, reg *obs.Registry, capacity []float64, pol policy.Policy) *Server {
	name := ""
	if pol != nil {
		name = pol.Name()
	}
	s := &Server{
		sc: be,
		cfg: ConfigResponse{
			SiteCapacity: append([]float64(nil), capacity...),
			Policy:       name,
		},
		mux: http.NewServeMux(),
		reg: reg,
	}
	s.route("GET /v1/healthz", s.handleHealthz)
	s.route("GET /v1/readyz", s.handleReadyz)
	s.route("GET /v1/config", s.handleConfig)
	s.route("PATCH /v1/config", s.handlePatchConfig)
	s.route("GET /v1/policy", s.handleGetPolicy)
	s.route("PUT /v1/policy", s.handlePutPolicy)
	s.route("POST /v1/jobs", s.handleAddJob)
	s.route("POST /v1/jobs:batch", s.handleAddJobsBatch)
	s.route("POST /v1/queues", s.handleAddQueue)
	s.route("DELETE /v1/jobs/{id}", s.handleRemoveJob)
	s.route("POST /v1/jobs/{id}/progress", s.handleProgress)
	s.route("PUT /v1/jobs/{id}/weight", s.handleWeight)
	s.route("GET /v1/jobs/{id}/shares", s.handleShares)
	s.route("GET /v1/allocation", s.handleAllocation)
	s.route("GET /v1/stats", s.handleStats)
	s.route("GET /v1/metrics", s.handleMetrics)
	s.route("GET /v1/traces", s.handleTraces)
	s.route("GET /v1/explain", s.handleExplain)
	s.route("GET /v1/snapshot", s.handleGetSnapshot)
	s.route("PUT /v1/snapshot", s.handlePutSnapshot)
	s.route("PUT /v1/cluster/external-weight", s.handleExternalWeight)
	s.route("PUT /v1/solver/approx", s.handlePutApproxConfig)
	s.route("GET /v1/solver/approx", s.handleGetApproxConfig)
	s.route("GET /metrics", s.handlePromMetrics)
	return s
}

// Handler returns the HTTP handler for mounting.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the registry the server instruments into.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// SetTraces attaches the commit-trace ring served at GET /v1/traces —
// normally the same span.Recorder passed to the engine via
// serve.Config.Traces. Call before serving requests; it returns s for
// chaining. Without it /v1/traces serves an empty list.
func (s *Server) SetTraces(rec *span.Recorder) *Server {
	s.traces = rec
	return s
}

// SetSlowTraces attaches the slow-trace retention ring served at
// GET /v1/traces?slow=1 — normally the same span.SlowRecorder passed to
// the engine via serve.Config.SlowTraces. Returns s for chaining.
// Without it ?slow=1 serves an empty list.
func (s *Server) SetSlowTraces(rec *span.SlowRecorder) *Server {
	s.slowTraces = rec
	return s
}

// route registers a handler wrapped in per-endpoint middleware: request
// and error counters plus a latency histogram keyed by the route pattern,
// and trace-ID assignment — the request's trace ID (inbound header or
// freshly minted) is echoed in the X-AMF-Trace-Id response header and
// propagated through the request context into the backend, where the
// engine stamps it on the commit trace the mutation rides in.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	reqs := s.reg.Counter("http.requests." + pattern)
	errs := s.reg.Counter("http.errors." + pattern)
	lat := s.reg.Histogram("http.latency." + pattern)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := requestTraceID(r)
		w.Header().Set(TraceHeader, string(id))
		ctx := span.NewContext(r.Context(), id)
		if p := r.Header.Get(ParentHeader); p != "" && len(p) <= 64 {
			ctx = span.NewParentContext(ctx, span.ID(p))
		}
		r = r.WithContext(ctx)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		reqs.Inc()
		if sw.status >= 400 {
			errs.Inc()
		}
		lat.Observe(time.Since(start))
	})
}

// requestTraceID returns the request's trace ID: a sane inbound
// X-AMF-Trace-Id value when the client sent one (so callers can stitch
// their own request IDs through), else freshly minted.
func requestTraceID(r *http.Request) span.ID {
	if v := r.Header.Get(TraceHeader); v != "" && len(v) <= 64 {
		return span.ID(v)
	}
	return span.MintID()
}

// statusWriter captures the response status for the metrics middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	code := CodeFor(err)
	writeJSON(w, StatusFor(code), errorResponse{Error: err.Error(), Code: code})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ReadyResponse reports the backend's readiness. When Status is "unready"
// Error and Code explain why (code is always "unavailable": the condition
// is retryable against a caught-up or restarted backend).
type ReadyResponse struct {
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	Code   string `json:"code,omitempty"`
}

// handleReadyz is readiness, distinct from handleHealthz's liveness: 503
// with the stable "unavailable" code while the backend cannot take
// mutations — WAL recovery or replica replay still in progress, or a WAL
// fail-stop (serve.ErrWALFailed) — and 200 once caught up. Backends
// without a ReadyErr method are unconditionally ready.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if rc, ok := s.sc.(ReadyChecker); ok {
		if err := rc.ReadyErr(); err != nil {
			writeJSON(w, http.StatusServiceUnavailable, ReadyResponse{
				Status: "unready", Error: err.Error(), Code: CodeUnavailable,
			})
			return
		}
	}
	writeJSON(w, http.StatusOK, ReadyResponse{Status: "ready"})
}

// ExternalWeightRequest carries the cluster router's weight-sum broadcast:
// the total share weight of jobs living on other shards.
type ExternalWeightRequest struct {
	Weight float64 `json:"weight"`
}

func (s *Server) handleExternalWeight(w http.ResponseWriter, r *http.Request) {
	ew, ok := s.sc.(ExternalWeighter)
	if !ok {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: "backend does not support external weight", Code: CodeInvalidArgument})
		return
	}
	var req ExternalWeightRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, err)
		return
	}
	if err := ew.SetExternalWeight(r.Context(), req.Weight); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "updated"})
}

// ApproxConfigRequest retunes the solver's approximate water-filling
// knobs. Epsilon is the per-job deviation budget as a fraction of the
// instance scale (0 disables the fast path); Threshold is the component
// size (jobs + demand edges) above which the approximation engages.
type ApproxConfigRequest struct {
	Epsilon   float64 `json:"epsilon"`
	Threshold int     `json:"threshold"`
}

// ApproxConfigResponse reports the solver's current approximation knobs.
type ApproxConfigResponse struct {
	Epsilon   float64 `json:"epsilon"`
	Threshold int     `json:"threshold"`
}

// handlePutApproxConfig is the deprecated alias of
// PATCH /v1/config {"solver": ...}: same wire shape as always, routed
// through the unified (logged, atomic) config application when the
// backend provides it, and advertising the successor endpoint via the
// Deprecation/Link headers.
func (s *Server) handlePutApproxConfig(w http.ResponseWriter, r *http.Request) {
	setDeprecatedAlias(w)
	ac, ok := s.sc.(ApproxConfigurer)
	if !ok {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: "backend does not support approximation tuning", Code: CodeInvalidArgument})
		return
	}
	var req ApproxConfigRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		// NaN cannot ride JSON, so a NaN epsilon surfaces here as a
		// decode failure — already an invalid_argument via writeError.
		writeError(w, err)
		return
	}
	if req.Epsilon < 0 || math.IsInf(req.Epsilon, 0) || math.IsNaN(req.Epsilon) {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: "epsilon must be a finite non-negative fraction", Code: CodeInvalidArgument})
		return
	}
	if req.Threshold < 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: "threshold must be non-negative", Code: CodeInvalidArgument})
		return
	}
	err := error(nil)
	if cp, ok := s.sc.(ConfigPatcher); ok {
		err = cp.ApplyConfig(r.Context(), scheduler.ConfigPatch{
			ApproxEpsilon: &req.Epsilon, ApproxThreshold: &req.Threshold})
	} else {
		err = ac.SetApproxConfig(r.Context(), req.Epsilon, req.Threshold)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "updated"})
}

func (s *Server) handleGetApproxConfig(w http.ResponseWriter, r *http.Request) {
	setDeprecatedAlias(w)
	ac, ok := s.sc.(ApproxConfigurer)
	if !ok {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: "backend does not support approximation tuning", Code: CodeInvalidArgument})
		return
	}
	eps, threshold := ac.ApproxConfig()
	writeJSON(w, http.StatusOK, ApproxConfigResponse{Epsilon: eps, Threshold: threshold})
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	if cp, ok := s.sc.(ConfigPatcher); ok {
		doc, err := s.configDoc(r.Context(), cp)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, doc)
		return
	}
	cfg := s.cfg
	cfg.Policy = s.policyName()
	writeJSON(w, http.StatusOK, cfg)
}

// policyName reports the backend's live policy when it exposes one
// (PolicyController), else the constructor-time echo.
func (s *Server) policyName() string {
	if pc, ok := s.sc.(PolicyController); ok {
		return pc.PolicyName()
	}
	return s.cfg.Policy
}

// PolicyRequest switches the active fairness policy by wire name.
type PolicyRequest struct {
	Policy string `json:"policy"`
}

// PolicyResponse reports the active fairness policy and, on reads, the
// full set of valid wire names.
type PolicyResponse struct {
	Policy    string   `json:"policy"`
	Available []string `json:"available,omitempty"`
}

func (s *Server) handleGetPolicy(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, PolicyResponse{
		Policy:    s.policyName(),
		Available: policy.Names(),
	})
}

// handlePutPolicy is the deprecated alias of
// PATCH /v1/config {"policy": ...}: same wire shape as always, routed
// through the unified (logged, atomic) config application when the
// backend provides it, and advertising the successor endpoint via the
// Deprecation/Link headers.
func (s *Server) handlePutPolicy(w http.ResponseWriter, r *http.Request) {
	setDeprecatedAlias(w)
	pc, ok := s.sc.(PolicyController)
	if !ok {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: "backend does not support policy switching", Code: CodeInvalidArgument})
		return
	}
	var req PolicyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, err)
		return
	}
	if req.Policy == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: "policy name required", Code: CodeInvalidArgument})
		return
	}
	err := error(nil)
	if cp, ok := s.sc.(ConfigPatcher); ok {
		err = cp.ApplyConfig(r.Context(), scheduler.ConfigPatch{Policy: &req.Policy})
	} else {
		err = pc.SetPolicy(r.Context(), req.Policy)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, PolicyResponse{Policy: pc.PolicyName()})
}

func (s *Server) handleAddJob(w http.ResponseWriter, r *http.Request) {
	var req AddJobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, err)
		return
	}
	if req.ID == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "job id required", Code: CodeInvalidArgument})
		return
	}
	var err error
	if req.Queue != "" {
		err = s.sc.AddJobInQueue(r.Context(), req.Queue, req.ID, req.Weight, req.Demand, req.Work)
	} else {
		err = s.sc.AddJob(r.Context(), req.ID, req.Weight, req.Demand, req.Work)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": req.ID})
}

// handleAddJobsBatch registers the whole set atomically through one
// backend commit — with the engine that means exactly one solve and one
// WAL record for the entire batch. On rejection the response still
// carries a per-item report so callers can pinpoint (and fix) the
// offending entries without re-submitting blind.
func (s *Server) handleAddJobsBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchAddRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Jobs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "jobs required", Code: CodeInvalidArgument})
		return
	}
	specs := make([]scheduler.JobSpec, len(req.Jobs))
	for i, j := range req.Jobs {
		specs[i] = j.spec()
	}
	err := s.sc.AddJobs(r.Context(), specs)
	resp := BatchAddResponse{Results: make([]BatchItemResult, len(req.Jobs))}
	for i, j := range req.Jobs {
		resp.Results[i] = BatchItemResult{ID: j.ID}
	}
	if err == nil {
		resp.Added = len(req.Jobs)
		writeJSON(w, http.StatusCreated, resp)
		return
	}
	var be *scheduler.BatchError
	if errors.As(err, &be) && len(be.Errs) == len(resp.Results) {
		for i, ierr := range be.Errs {
			if ierr != nil {
				resp.Results[i].Error = ierr.Error()
				resp.Results[i].Code = CodeFor(ierr)
			}
		}
		code := CodeFor(err)
		writeJSON(w, StatusFor(code), struct {
			errorResponse
			BatchAddResponse
		}{
			errorResponse{Error: err.Error(), Code: code},
			resp,
		})
		return
	}
	writeError(w, err)
}

func (s *Server) handleAddQueue(w http.ResponseWriter, r *http.Request) {
	var req AddQueueRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.sc.AddQueue(r.Context(), req.Name, req.Weight); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"name": req.Name})
}

func (s *Server) handleRemoveJob(w http.ResponseWriter, r *http.Request) {
	if err := s.sc.RemoveJob(r.Context(), r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "removed"})
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	var req ProgressRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, err)
		return
	}
	done, err := s.sc.ReportProgress(r.Context(), r.PathValue("id"), req.Done)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ProgressResponse{Completed: done})
}

// WeightRequest updates a job's weight.
type WeightRequest struct {
	Weight float64 `json:"weight"`
}

func (s *Server) handleWeight(w http.ResponseWriter, r *http.Request) {
	var req WeightRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.sc.UpdateWeight(r.Context(), r.PathValue("id"), req.Weight); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "updated"})
}

func (s *Server) handleShares(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	shares, err := s.sc.Shares(r.Context(), id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sharesResponse(id, shares))
}

func sharesResponse(id string, shares []float64) SharesResponse {
	var agg float64
	for _, v := range shares {
		agg += v
	}
	return SharesResponse{ID: id, Shares: shares, Aggregate: agg}
}

func (s *Server) handleAllocation(w http.ResponseWriter, r *http.Request) {
	alloc, err := s.sc.Allocation(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	resp := AllocationResponse{Jobs: make(map[string]SharesResponse, len(alloc))}
	for id, shares := range alloc {
		resp.Jobs[id] = sharesResponse(id, shares)
	}
	if v, ok := s.sc.(Versioned); ok {
		// Read after the allocation: the version is at or after the map,
		// so a reader polling for "version >= X" never sees stale data.
		resp.Version = v.SnapshotVersion()
	}
	if pr, ok := s.sc.(PhaseReporter); ok {
		resp.PhaseLag, resp.HotComponents = pr.PhaseInfo()
	}
	resp.Policy = s.policyName()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGetSnapshot(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sc.Snapshot())
}

func (s *Server) handlePutSnapshot(w http.ResponseWriter, r *http.Request) {
	var snap scheduler.Snapshot
	if err := json.NewDecoder(r.Body).Decode(&snap); err != nil {
		writeError(w, err)
		return
	}
	if err := s.sc.Restore(r.Context(), snap); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "restored"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.sc.Stats()
	snap := s.reg.Snapshot()
	writeJSON(w, http.StatusOK, StatsResponse{
		Policy: s.policyName(),
		Solves: st.Solves, Skipped: st.Skipped, Jobs: st.Jobs, Completed: st.Completed,
		LastSolveSeconds:    st.LastSolve.Seconds(),
		TotalSolveSeconds:   st.TotalSolveTime.Seconds(),
		LastComponents:      st.LastComponents,
		LargestComponent:    st.LastLargestComponent,
		LastSpeedup:         st.LastSpeedup,
		LastReused:          st.LastReused,
		LastResolved:        st.LastResolved,
		CacheHits:           st.CacheHits,
		CacheMisses:         st.CacheMisses,
		GlobalInvalidations: st.GlobalInvalidations,
		ApproxComponents:    st.LastApproxComponents,
		ApproxErrorBound:    st.LastApproxErrorBound,
		SolveLatency:        latencyQuantiles(snap, "engine.solve_latency"),
		CommitLatency:       latencyQuantiles(snap, "engine.commit_latency"),
	})
}

// latencyQuantiles summarizes one of the engine's latency histograms for
// /v1/stats, or nil when the backend never recorded it (bare scheduler,
// replica) — looked up through the snapshot so reading stats does not
// create empty histograms in the registry.
func latencyQuantiles(snap obs.Snapshot, name string) *LatencyQuantiles {
	h, ok := snap.Histograms[name]
	if !ok || h.Count == 0 {
		return nil
	}
	return &LatencyQuantiles{
		Count:      h.Count,
		P50Seconds: h.P50,
		P95Seconds: h.P95,
		P99Seconds: h.P99,
	}
}

// TracesResponse carries the most recent commit traces, newest first —
// or, with ?slow=1, the slow-trace retention ring's contents slowest
// first.
type TracesResponse struct {
	// Capacity is the trace ring's size (0 when tracing is disabled).
	Capacity int `json:"capacity"`
	// Slow marks a slow-retention read: Traces came from the slow ring
	// and are ordered slowest first.
	Slow bool `json:"slow,omitempty"`
	// Traces are the recorded commit traces, newest first (slowest first
	// when Slow).
	Traces []*span.Trace `json:"traces"`
}

// handleTraces serves the recent commit traces: GET /v1/traces?limit=N
// returns up to N newest-first (the whole ring when limit is absent).
// ?slow=1 switches to the slow-trace retention ring — the N slowest
// commits inside the retention window, slowest first (see SetSlowTraces).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	resp := TracesResponse{Traces: []*span.Trace{}}
	q := r.URL.Query()
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: "limit must be a non-negative integer", Code: CodeInvalidArgument})
			return
		}
		limit = n
	}
	if v := q.Get("slow"); v == "1" || v == "true" {
		resp.Slow = true
		resp.Capacity = s.slowTraces.Cap()
		resp.Traces = s.slowTraces.Slowest(limit)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if s.traces != nil {
		resp.Capacity = s.traces.Cap()
		resp.Traces = s.traces.Recent(limit)
	}
	writeJSON(w, http.StatusOK, resp)
}

// ExplainResponse is the GET /v1/explain document: the water-filling
// evidence behind the backend's published allocation. With ?job=<name>
// only that job's row is returned (Job set, Jobs/Sites empty); without it
// the full per-job and per-site explanation is dumped.
type ExplainResponse struct {
	// Version is the allocation snapshot version the explanation was
	// derived from (0 for unversioned backends).
	Version uint64 `json:"version,omitempty"`
	// Policy is the fairness policy the allocation was solved under.
	Policy string `json:"policy,omitempty"`
	// Shard labels which cluster member answered ("" standalone, a shard
	// index when routed, "replica" from a read replica).
	Shard string `json:"shard,omitempty"`
	// Scale, Tol and SatTol echo the explanation's tolerances so callers
	// can reproduce the saturation and level judgments.
	Scale  float64 `json:"scale"`
	Tol    float64 `json:"tol"`
	SatTol float64 `json:"sat_tol"`
	// Job is the single requested job's explanation (?job=<name>).
	Job *core.JobExplanation `json:"job,omitempty"`
	// Jobs and Sites are the full dump (no ?job filter).
	Jobs  []core.JobExplanation  `json:"jobs,omitempty"`
	Sites []core.SiteExplanation `json:"sites,omitempty"`
}

// handleExplain serves the allocation explainability surface:
// GET /v1/explain dumps the full water-filling evidence,
// GET /v1/explain?job=<name> one job's row (404 for unknown jobs).
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	ex, ok := s.sc.(Explainer)
	if !ok {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: "backend does not support allocation explanations", Code: CodeInvalidArgument})
		return
	}
	job := r.URL.Query().Get("job")
	res, err := ex.Explain(r.Context(), job)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := ExplainResponse{
		Version: res.Version,
		Policy:  res.Policy,
		Shard:   res.Shard,
		Scale:   res.Explanation.Scale,
		Tol:     res.Explanation.Tol,
		SatTol:  res.Explanation.SatTol,
	}
	if job != "" {
		resp.Job = res.Explanation.JobByName(job)
		if resp.Job == nil {
			// The backend validated existence; a nil row here means the job
			// vanished between validation and derivation — treat as unknown.
			writeError(w, fmt.Errorf("%w: %q", scheduler.ErrUnknownJob, job))
			return
		}
	} else {
		resp.Jobs = res.Explanation.Jobs
		resp.Sites = res.Explanation.Sites
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePromMetrics serves the registry in Prometheus text exposition
// format — the scrape target. The JSON twin stays at /v1/metrics.
func (s *Server) handlePromMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mirrorSchedulerGauges()
	w.Header().Set("Content-Type", obs.PromContentType)
	_ = s.reg.WritePrometheus(w)
}

// handleMetrics serves the registry snapshot. Scheduler counters are
// mirrored into gauges right before snapshotting, so /v1/metrics and
// /v1/stats always report the same solver numbers.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mirrorSchedulerGauges()
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

// mirrorSchedulerGauges copies the controller's counters into gauges so
// both metrics surfaces (/v1/metrics JSON and /metrics Prometheus) report
// the same solver numbers as /v1/stats.
func (s *Server) mirrorSchedulerGauges() {
	st := s.sc.Stats()
	s.reg.Gauge("scheduler.solves").Set(float64(st.Solves))
	s.reg.Gauge("scheduler.skipped").Set(float64(st.Skipped))
	s.reg.Gauge("scheduler.jobs").Set(float64(st.Jobs))
	s.reg.Gauge("scheduler.completed").Set(float64(st.Completed))
	s.reg.Gauge("scheduler.last_solve_seconds").Set(st.LastSolve.Seconds())
	s.reg.Gauge("scheduler.total_solve_seconds").Set(st.TotalSolveTime.Seconds())
	s.reg.Gauge("scheduler.last_components").Set(float64(st.LastComponents))
	s.reg.Gauge("scheduler.largest_component").Set(float64(st.LastLargestComponent))
	s.reg.Gauge("scheduler.last_speedup").Set(st.LastSpeedup)
	s.reg.Gauge("scheduler.last_reused").Set(float64(st.LastReused))
	s.reg.Gauge("scheduler.last_resolved").Set(float64(st.LastResolved))
	s.reg.Gauge("scheduler.cache_hits").Set(float64(st.CacheHits))
	s.reg.Gauge("scheduler.cache_misses").Set(float64(st.CacheMisses))
	s.reg.Gauge("scheduler.global_invalidations").Set(float64(st.GlobalInvalidations))
	s.reg.Gauge("scheduler.approx_components").Set(float64(st.LastApproxComponents))
	s.reg.Gauge("scheduler.approx_error_bound").Set(st.LastApproxErrorBound)
}

// Package api exposes the scheduler controller over a JSON/HTTP control
// plane — the deployment surface for running the allocator as a sidecar or
// standalone service — together with a typed Go client.
//
// Endpoints (all JSON):
//
//	GET    /v1/healthz                 liveness
//	GET    /v1/config                  site capacities, policy
//	POST   /v1/queues                  declare a weighted queue
//	POST   /v1/jobs                    register a job (optionally in a queue)
//	DELETE /v1/jobs/{id}               deregister (cancel) a job
//	POST   /v1/jobs/{id}/progress     report completed work
//	PUT    /v1/jobs/{id}/weight       change a job's weight
//	GET    /v1/jobs/{id}/shares       one job's current shares
//	GET    /v1/allocation              all current shares
//	GET    /v1/stats                   controller counters
//	GET    /v1/snapshot                download controller state
//	PUT    /v1/snapshot                restore controller state
//
// Errors are returned as {"error": "..."} with conventional status codes:
// 400 for validation failures, 404 for unknown jobs, 409 for duplicates.
package api

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/scheduler"
	"repro/internal/sim"
)

// AddJobRequest registers a job. Queue, when set, must name a queue
// previously declared via POST /v1/queues.
type AddJobRequest struct {
	ID     string    `json:"id"`
	Weight float64   `json:"weight,omitempty"`
	Queue  string    `json:"queue,omitempty"`
	Demand []float64 `json:"demand"`
	Work   []float64 `json:"work,omitempty"`
}

// AddQueueRequest declares a queue with a weight.
type AddQueueRequest struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight,omitempty"`
}

// ProgressRequest reports completed work per site.
type ProgressRequest struct {
	Done []float64 `json:"done"`
}

// ProgressResponse reports whether the job completed.
type ProgressResponse struct {
	Completed bool `json:"completed"`
}

// SharesResponse carries one job's allocation.
type SharesResponse struct {
	ID        string    `json:"id"`
	Shares    []float64 `json:"shares"`
	Aggregate float64   `json:"aggregate"`
}

// AllocationResponse carries every job's allocation.
type AllocationResponse struct {
	Jobs map[string]SharesResponse `json:"jobs"`
}

// ConfigResponse describes the controller's static configuration.
type ConfigResponse struct {
	SiteCapacity []float64 `json:"site_capacity"`
	Policy       string    `json:"policy"`
}

// StatsResponse mirrors scheduler.Stats.
type StatsResponse struct {
	Solves    int `json:"solves"`
	Skipped   int `json:"skipped"`
	Jobs      int `json:"jobs"`
	Completed int `json:"completed"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Server wraps a scheduler with the HTTP API.
type Server struct {
	sc     *scheduler.Scheduler
	cfg    ConfigResponse
	mux    *http.ServeMux
	policy sim.Policy
}

// NewServer builds the API around an existing controller. capacity and
// policy are echoed by /v1/config (the scheduler does not expose them).
func NewServer(sc *scheduler.Scheduler, capacity []float64, policy sim.Policy) *Server {
	s := &Server{
		sc: sc,
		cfg: ConfigResponse{
			SiteCapacity: append([]float64(nil), capacity...),
			Policy:       policy.String(),
		},
		mux:    http.NewServeMux(),
		policy: policy,
	}
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/config", s.handleConfig)
	s.mux.HandleFunc("POST /v1/jobs", s.handleAddJob)
	s.mux.HandleFunc("POST /v1/queues", s.handleAddQueue)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleRemoveJob)
	s.mux.HandleFunc("POST /v1/jobs/{id}/progress", s.handleProgress)
	s.mux.HandleFunc("PUT /v1/jobs/{id}/weight", s.handleWeight)
	s.mux.HandleFunc("GET /v1/jobs/{id}/shares", s.handleShares)
	s.mux.HandleFunc("GET /v1/allocation", s.handleAllocation)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/snapshot", s.handleGetSnapshot)
	s.mux.HandleFunc("PUT /v1/snapshot", s.handlePutSnapshot)
	return s
}

// Handler returns the HTTP handler for mounting.
func (s *Server) Handler() http.Handler { return s.mux }

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, scheduler.ErrUnknownJob):
		status = http.StatusNotFound
	case errors.Is(err, scheduler.ErrDuplicateJob):
		status = http.StatusConflict
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleConfig(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.cfg)
}

func (s *Server) handleAddJob(w http.ResponseWriter, r *http.Request) {
	var req AddJobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, err)
		return
	}
	if req.ID == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "job id required"})
		return
	}
	var err error
	if req.Queue != "" {
		err = s.sc.AddJobInQueue(req.Queue, req.ID, req.Weight, req.Demand, req.Work)
	} else {
		err = s.sc.AddJob(req.ID, req.Weight, req.Demand, req.Work)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": req.ID})
}

func (s *Server) handleAddQueue(w http.ResponseWriter, r *http.Request) {
	var req AddQueueRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.sc.AddQueue(req.Name, req.Weight); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"name": req.Name})
}

func (s *Server) handleRemoveJob(w http.ResponseWriter, r *http.Request) {
	if err := s.sc.RemoveJob(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "removed"})
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	var req ProgressRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, err)
		return
	}
	done, err := s.sc.ReportProgress(r.PathValue("id"), req.Done)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ProgressResponse{Completed: done})
}

// WeightRequest updates a job's weight.
type WeightRequest struct {
	Weight float64 `json:"weight"`
}

func (s *Server) handleWeight(w http.ResponseWriter, r *http.Request) {
	var req WeightRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.sc.UpdateWeight(r.PathValue("id"), req.Weight); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "updated"})
}

func (s *Server) handleShares(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	shares, err := s.sc.Shares(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sharesResponse(id, shares))
}

func sharesResponse(id string, shares []float64) SharesResponse {
	var agg float64
	for _, v := range shares {
		agg += v
	}
	return SharesResponse{ID: id, Shares: shares, Aggregate: agg}
}

func (s *Server) handleAllocation(w http.ResponseWriter, _ *http.Request) {
	alloc, err := s.sc.Allocation()
	if err != nil {
		writeError(w, err)
		return
	}
	resp := AllocationResponse{Jobs: make(map[string]SharesResponse, len(alloc))}
	for id, shares := range alloc {
		resp.Jobs[id] = sharesResponse(id, shares)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGetSnapshot(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sc.Snapshot())
}

func (s *Server) handlePutSnapshot(w http.ResponseWriter, r *http.Request) {
	var snap scheduler.Snapshot
	if err := json.NewDecoder(r.Body).Decode(&snap); err != nil {
		writeError(w, err)
		return
	}
	if err := s.sc.Restore(snap); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "restored"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.sc.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{
		Solves: st.Solves, Skipped: st.Skipped, Jobs: st.Jobs, Completed: st.Completed,
	})
}

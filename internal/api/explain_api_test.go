package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs/span"
	"repro/internal/policy"
	"repro/internal/scheduler"
	"repro/internal/serve"
)

// TestStatsLatencyQuantiles: after a commit, GET /v1/stats reports p50/
// p95/p99 for the engine's solve and commit latency histograms.
func TestStatsLatencyQuantiles(t *testing.T) {
	ts, _, _ := newTracedServer(t)

	resp := postJSON(t, ts.URL+"/v1/jobs", `{"id":"a","demand":[2,0]}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add job status = %d", resp.StatusCode)
	}

	g, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(g.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	for _, q := range []struct {
		name string
		lq   *LatencyQuantiles
	}{{"solve", st.SolveLatency}, {"commit", st.CommitLatency}} {
		if q.lq == nil {
			t.Fatalf("stats missing %s latency quantiles", q.name)
		}
		if q.lq.Count < 1 {
			t.Fatalf("%s latency count = %d", q.name, q.lq.Count)
		}
		if q.lq.P50Seconds > q.lq.P95Seconds || q.lq.P95Seconds > q.lq.P99Seconds {
			t.Fatalf("%s quantiles not monotone: %+v", q.name, q.lq)
		}
		if q.lq.P99Seconds <= 0 {
			t.Fatalf("%s p99 = %g", q.name, q.lq.P99Seconds)
		}
	}
}

// TestStatsQuantilesAbsentBeforeCommits: a fresh engine has empty latency
// histograms, so the stats response omits the quantile blocks entirely.
func TestStatsQuantilesAbsentBeforeCommits(t *testing.T) {
	ts, _, _ := newTracedServer(t)
	g, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(g.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.SolveLatency != nil || st.CommitLatency != nil {
		t.Fatalf("quantiles reported with no commits: %+v %+v", st.SolveLatency, st.CommitLatency)
	}
}

// TestEngineExplainEndpoint: GET /v1/explain serves the full post-hoc
// water-filling explanation; ?job= narrows to one row and unknown names
// are a 404 with the stable not_found code.
func TestEngineExplainEndpoint(t *testing.T) {
	ts, _, _ := newTracedServer(t)

	for _, body := range []string{
		`{"id":"big","demand":[4,4]}`,
		`{"id":"small","demand":[1,0]}`,
	} {
		if resp := postJSON(t, ts.URL+"/v1/jobs", body); resp.StatusCode != http.StatusCreated {
			t.Fatalf("add job status = %d", resp.StatusCode)
		}
	}

	g, err := http.Get(ts.URL + "/v1/explain")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Body.Close()
	var full ExplainResponse
	if err := json.NewDecoder(g.Body).Decode(&full); err != nil {
		t.Fatal(err)
	}
	if len(full.Jobs) != 2 || len(full.Sites) == 0 {
		t.Fatalf("full dump = %d jobs %d sites", len(full.Jobs), len(full.Sites))
	}
	if full.Version == 0 || full.Policy != policy.AMF.Name() || full.Shard != "" {
		t.Fatalf("explain header = %+v", full)
	}
	if full.Scale <= 0 || full.Tol <= 0 || full.SatTol < full.Tol {
		t.Fatalf("tolerances = scale %g tol %g sat %g", full.Scale, full.Tol, full.SatTol)
	}
	for _, j := range full.Jobs {
		switch j.Limit {
		case core.ExplainDemandCapped, core.ExplainBottlenecked,
			core.ExplainFloorBound, core.ExplainZeroDemand:
		default:
			t.Fatalf("job %s has unclassified limit %q", j.Name, j.Limit)
		}
	}

	n, err := http.Get(ts.URL + "/v1/explain?job=small")
	if err != nil {
		t.Fatal(err)
	}
	defer n.Body.Close()
	var one ExplainResponse
	if err := json.NewDecoder(n.Body).Decode(&one); err != nil {
		t.Fatal(err)
	}
	if one.Job == nil || one.Job.Name != "small" || len(one.Jobs) != 0 {
		t.Fatalf("named explain = %+v", one)
	}
	// "small" demands 1 on a 4-capacity site shared with "big": demand is
	// the binding limit and the row must say so.
	if one.Job.Limit != core.ExplainDemandCapped {
		t.Fatalf("small limit = %q, want demand-capped", one.Job.Limit)
	}

	bad, err := http.Get(ts.URL + "/v1/explain?job=nope")
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Body.Close()
	if bad.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d", bad.StatusCode)
	}
}

// TestSlowTracesEndpoint: GET /v1/traces?slow=1 reads the slow-trace
// retention ring, slowest first, and reports its capacity.
func TestSlowTracesEndpoint(t *testing.T) {
	sc, err := scheduler.New(scheduler.Config{SiteCapacity: []float64{4, 4}, Policy: policy.AMF})
	if err != nil {
		t.Fatal(err)
	}
	rec := span.NewRecorder(32)
	slow := span.NewSlowRecorder(8, time.Hour)
	eng, err := serve.New(sc, serve.Config{Traces: rec, SlowTraces: slow})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	srv := NewEngineServer(eng, nil, []float64{4, 4}, policy.AMF).SetTraces(rec).SetSlowTraces(slow)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	for _, body := range []string{
		`{"id":"a","demand":[1,0]}`,
		`{"id":"b","demand":[0,1]}`,
	} {
		if resp := postJSON(t, ts.URL+"/v1/jobs", body); resp.StatusCode != http.StatusCreated {
			t.Fatalf("add job status = %d", resp.StatusCode)
		}
	}

	g, err := http.Get(ts.URL + "/v1/traces?slow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Body.Close()
	var tresp TracesResponse
	if err := json.NewDecoder(g.Body).Decode(&tresp); err != nil {
		t.Fatal(err)
	}
	if !tresp.Slow || tresp.Capacity != 8 {
		t.Fatalf("slow response header = slow=%v cap=%d", tresp.Slow, tresp.Capacity)
	}
	if len(tresp.Traces) == 0 {
		t.Fatal("slow ring empty after commits")
	}
	for i := 1; i < len(tresp.Traces); i++ {
		if tresp.Traces[i].Total > tresp.Traces[i-1].Total {
			t.Fatal("slow traces not slowest-first")
		}
	}
}

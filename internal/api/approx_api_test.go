package api

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/scheduler"
	"repro/internal/policy"
)

func TestApproxConfigRoundTrip(t *testing.T) {
	c, sc := newTestServer(t)
	ctx := context.Background()

	// Fresh controller: knobs default to disabled (0, 0).
	got, err := c.ApproxConfig(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epsilon != 0 || got.Threshold != 0 {
		t.Fatalf("default knobs %+v, want zero", got)
	}

	if err := c.SetApproxConfig(ctx, 0.02, 5000); err != nil {
		t.Fatal(err)
	}
	got, err = c.ApproxConfig(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epsilon != 0.02 || got.Threshold != 5000 {
		t.Fatalf("knobs after PUT %+v, want {0.02 5000}", got)
	}
	// The scheduler behind the server observed the same values.
	if eps, th := sc.ApproxConfig(); eps != 0.02 || th != 5000 {
		t.Fatalf("scheduler knobs (%g, %d), want (0.02, 5000)", eps, th)
	}
}

func TestApproxConfigValidation(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()

	if err := c.SetApproxConfig(ctx, -0.01, 100); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("negative epsilon: got %v, want invalid_argument", err)
	}
	if err := c.SetApproxConfig(ctx, 0.01, -1); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("negative threshold: got %v, want invalid_argument", err)
	}
}

// TestApproxConfigRejectsNonFinite drives the raw HTTP surface: NaN and
// Inf cannot ride JSON numbers, so they must surface as a stable
// invalid_argument decode failure, never a 500 or a silently-zero knob.
func TestApproxConfigRejectsNonFinite(t *testing.T) {
	sc, err := scheduler.New(scheduler.Config{
		SiteCapacity: []float64{1, 1},
		Policy:       policy.AMF,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sc, []float64{1, 1}, policy.AMF)
	for _, body := range []string{
		`{"epsilon": NaN, "threshold": 10}`,
		`{"epsilon": Infinity, "threshold": 10}`,
		`{"epsilon": 1e999, "threshold": 10}`,
	} {
		req := httptest.NewRequest(http.MethodPut, "/v1/solver/approx", strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("body %s: status %d, want 400", body, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), CodeInvalidArgument) {
			t.Fatalf("body %s: response %s lacks %q", body, rec.Body.String(), CodeInvalidArgument)
		}
	}
	if eps, th := sc.ApproxConfig(); eps != 0 || th != 0 {
		t.Fatalf("rejected requests mutated knobs to (%g, %d)", eps, th)
	}
}

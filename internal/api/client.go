package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/obs"
	"repro/internal/scheduler"
)

// Client is a typed client for the control-plane API.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient targets a server at base (e.g. "http://127.0.0.1:8080").
// httpClient may be nil for http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// APIError is a non-2xx response from the server.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("api: %d %s", e.StatusCode, e.Message)
}

func (c *Client) do(method, path string, in, out interface{}) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var er errorResponse
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
			msg = er.Error
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// Healthz checks liveness.
func (c *Client) Healthz() error {
	return c.do(http.MethodGet, "/v1/healthz", nil, nil)
}

// Config fetches the controller configuration.
func (c *Client) Config() (ConfigResponse, error) {
	var out ConfigResponse
	err := c.do(http.MethodGet, "/v1/config", nil, &out)
	return out, err
}

// AddJob registers a job.
func (c *Client) AddJob(req AddJobRequest) error {
	return c.do(http.MethodPost, "/v1/jobs", req, nil)
}

// AddQueue declares a weighted queue.
func (c *Client) AddQueue(name string, weight float64) error {
	return c.do(http.MethodPost, "/v1/queues", AddQueueRequest{Name: name, Weight: weight}, nil)
}

// RemoveJob cancels a job.
func (c *Client) RemoveJob(id string) error {
	return c.do(http.MethodDelete, "/v1/jobs/"+id, nil, nil)
}

// UpdateWeight changes a job's share weight at runtime.
func (c *Client) UpdateWeight(id string, weight float64) error {
	return c.do(http.MethodPut, "/v1/jobs/"+id+"/weight", WeightRequest{Weight: weight}, nil)
}

// ReportProgress reports completed work; it returns whether the job
// finished.
func (c *Client) ReportProgress(id string, done []float64) (bool, error) {
	var out ProgressResponse
	err := c.do(http.MethodPost, "/v1/jobs/"+id+"/progress",
		ProgressRequest{Done: done}, &out)
	return out.Completed, err
}

// Shares fetches one job's current allocation.
func (c *Client) Shares(id string) (SharesResponse, error) {
	var out SharesResponse
	err := c.do(http.MethodGet, "/v1/jobs/"+id+"/shares", nil, &out)
	return out, err
}

// Allocation fetches every job's allocation.
func (c *Client) Allocation() (AllocationResponse, error) {
	var out AllocationResponse
	err := c.do(http.MethodGet, "/v1/allocation", nil, &out)
	return out, err
}

// Stats fetches controller counters.
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	err := c.do(http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Metrics fetches the server's metrics registry snapshot.
func (c *Client) Metrics() (obs.Snapshot, error) {
	var out obs.Snapshot
	err := c.do(http.MethodGet, "/v1/metrics", nil, &out)
	return out, err
}

// Snapshot downloads the controller's job-set state.
func (c *Client) Snapshot() (scheduler.Snapshot, error) {
	var out scheduler.Snapshot
	err := c.do(http.MethodGet, "/v1/snapshot", nil, &out)
	return out, err
}

// RestoreSnapshot replaces the controller's job set.
func (c *Client) RestoreSnapshot(snap scheduler.Snapshot) error {
	return c.do(http.MethodPut, "/v1/snapshot", snap, nil)
}

package api

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/scheduler"
)

// Client is a typed client for the control-plane API. Every call takes a
// context: cancellation aborts the HTTP request, which server-side
// abandons a still-queued mutation instead of blocking on the engine's
// batch window.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient targets a server at base (e.g. "http://127.0.0.1:8080").
// httpClient may be nil for http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// do runs one request. On a non-2xx response it returns an *APIError
// carrying the server's stable code; when out is non-nil it additionally
// tries to decode the error body into out, so endpoints whose failures
// carry structure (e.g. the batch registration's per-item report) still
// deliver it.
func (c *Client) do(ctx context.Context, method, path string, in, out interface{}) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate tracing identity from the context: the request trace ID
	// (so a router's fan-out legs correlate with its own request) and the
	// cluster-level parent span ID (so the shard stamps its commit trace
	// with the router's parent for stitching).
	if id := span.FromContext(ctx); id != "" {
		req.Header.Set(TraceHeader, string(id))
	}
	if p := span.ParentFromContext(ctx); p != "" {
		req.Header.Set(ParentHeader, string(p))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		data, _ := io.ReadAll(resp.Body)
		var er errorResponse
		msg := resp.Status
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		if out != nil {
			_ = json.Unmarshal(data, out)
		}
		return &APIError{StatusCode: resp.StatusCode, Code: er.Code, Message: msg}
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// Healthz checks liveness.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil, nil)
}

// Readyz checks readiness. A nil error means the backend can take
// mutations; an *APIError with CodeUnavailable means WAL recovery or
// replica replay is still running, or the WAL fail-stopped.
func (c *Client) Readyz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/v1/readyz", nil, nil)
}

// SetExternalWeight reconciles the backend's external share-weight sum —
// the cluster router's weight broadcast.
func (c *Client) SetExternalWeight(ctx context.Context, weight float64) error {
	return c.do(ctx, http.MethodPut, "/v1/cluster/external-weight",
		ExternalWeightRequest{Weight: weight}, nil)
}

// SetApproxConfig retunes the solver's approximate water-filling knobs:
// epsilon is the per-job deviation budget as a fraction of instance scale
// (0 disables the fast path), threshold the component size above which it
// engages.
func (c *Client) SetApproxConfig(ctx context.Context, epsilon float64, threshold int) error {
	return c.do(ctx, http.MethodPut, "/v1/solver/approx",
		ApproxConfigRequest{Epsilon: epsilon, Threshold: threshold}, nil)
}

// ApproxConfig fetches the solver's current approximation knobs.
func (c *Client) ApproxConfig(ctx context.Context) (ApproxConfigResponse, error) {
	var out ApproxConfigResponse
	err := c.do(ctx, http.MethodGet, "/v1/solver/approx", nil, &out)
	return out, err
}

// Traces fetches up to limit recent commit traces (0 = the whole ring).
func (c *Client) Traces(ctx context.Context, limit int) (TracesResponse, error) {
	var out TracesResponse
	path := "/v1/traces"
	if limit > 0 {
		path += "?limit=" + strconv.Itoa(limit)
	}
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// SlowTraces fetches up to limit traces from the slow-trace retention
// ring (GET /v1/traces?slow=1), slowest first. 0 = everything retained.
func (c *Client) SlowTraces(ctx context.Context, limit int) (TracesResponse, error) {
	var out TracesResponse
	path := "/v1/traces?slow=1"
	if limit > 0 {
		path += "&limit=" + strconv.Itoa(limit)
	}
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Explain fetches the allocation explanation. job "" requests the full
// per-job and per-site dump; a named job returns only that job's row
// (ErrUnknownJob for jobs the backend does not know).
func (c *Client) Explain(ctx context.Context, job string) (ExplainResponse, error) {
	var out ExplainResponse
	path := "/v1/explain"
	if job != "" {
		path += "?job=" + url.QueryEscape(job)
	}
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// ScrapeMetrics fetches the raw Prometheus text exposition from
// GET /metrics — the cluster router's federation input.
func (c *Client) ScrapeMetrics(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, &APIError{StatusCode: resp.StatusCode, Message: resp.Status}
	}
	return io.ReadAll(resp.Body)
}

// Policy fetches the active fairness policy and the valid wire names.
func (c *Client) Policy(ctx context.Context) (PolicyResponse, error) {
	var out PolicyResponse
	err := c.do(ctx, http.MethodGet, "/v1/policy", nil, &out)
	return out, err
}

// SetPolicy switches the backend's fairness policy at runtime by wire
// name (see Policy for the valid names).
func (c *Client) SetPolicy(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodPut, "/v1/policy", PolicyRequest{Policy: name}, nil)
}

// Config fetches the runtime-tuning document (site capacities, policy,
// solver and phase-reconciliation knobs; the Solver/Phase sections are
// nil against a backend without the unified config surface).
func (c *Client) Config(ctx context.Context) (ConfigResponse, error) {
	var out ConfigResponse
	err := c.do(ctx, http.MethodGet, "/v1/config", nil, &out)
	return out, err
}

// SetConfig applies a partial runtime-tuning update (PATCH /v1/config)
// and returns the resulting document. A rejected patch surfaces as an
// *APIError; decode the response body's "fields" list (ConfigPatchError)
// for the per-field breakdown via SetConfigDetailed.
func (c *Client) SetConfig(ctx context.Context, patch ConfigPatchRequest) (ConfigResponse, error) {
	var out ConfigResponse
	err := c.do(ctx, http.MethodPatch, "/v1/config", patch, &out)
	return out, err
}

// SetConfigDetailed is SetConfig keeping the per-field validation
// breakdown: on a validation rejection the returned ConfigPatchError
// lists every offending field with its stable code.
func (c *Client) SetConfigDetailed(ctx context.Context, patch ConfigPatchRequest) (ConfigResponse, *ConfigPatchError, error) {
	var out struct {
		ConfigResponse
		ConfigPatchError
	}
	err := c.do(ctx, http.MethodPatch, "/v1/config", patch, &out)
	if err != nil && len(out.Fields) > 0 {
		return ConfigResponse{}, &out.ConfigPatchError, err
	}
	return out.ConfigResponse, nil, err
}

// AddJob registers a job.
func (c *Client) AddJob(ctx context.Context, req AddJobRequest) error {
	return c.do(ctx, http.MethodPost, "/v1/jobs", req, nil)
}

// AddJobs registers a set of jobs atomically in one controller commit:
// one solve for the whole batch, all-or-nothing. The response's Results
// are index-aligned with jobs and, on rejection, pinpoint the invalid
// items (err will match ErrAlreadyExists or ErrInvalidArgument).
func (c *Client) AddJobs(ctx context.Context, jobs []AddJobRequest) (BatchAddResponse, error) {
	var out BatchAddResponse
	err := c.do(ctx, http.MethodPost, "/v1/jobs:batch", BatchAddRequest{Jobs: jobs}, &out)
	return out, err
}

// AddQueue declares a weighted queue.
func (c *Client) AddQueue(ctx context.Context, name string, weight float64) error {
	return c.do(ctx, http.MethodPost, "/v1/queues", AddQueueRequest{Name: name, Weight: weight}, nil)
}

// RemoveJob cancels a job.
func (c *Client) RemoveJob(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
}

// UpdateWeight changes a job's share weight at runtime.
func (c *Client) UpdateWeight(ctx context.Context, id string, weight float64) error {
	return c.do(ctx, http.MethodPut, "/v1/jobs/"+id+"/weight", WeightRequest{Weight: weight}, nil)
}

// ReportProgress reports completed work; it returns whether the job
// finished.
func (c *Client) ReportProgress(ctx context.Context, id string, done []float64) (bool, error) {
	var out ProgressResponse
	err := c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/progress",
		ProgressRequest{Done: done}, &out)
	return out.Completed, err
}

// Shares fetches one job's current allocation.
func (c *Client) Shares(ctx context.Context, id string) (SharesResponse, error) {
	var out SharesResponse
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/shares", nil, &out)
	return out, err
}

// Allocation fetches every job's allocation.
func (c *Client) Allocation(ctx context.Context) (AllocationResponse, error) {
	var out AllocationResponse
	err := c.do(ctx, http.MethodGet, "/v1/allocation", nil, &out)
	return out, err
}

// Stats fetches controller counters.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Metrics fetches the server's metrics registry snapshot.
func (c *Client) Metrics(ctx context.Context) (obs.Snapshot, error) {
	var out obs.Snapshot
	err := c.do(ctx, http.MethodGet, "/v1/metrics", nil, &out)
	return out, err
}

// Snapshot downloads the controller's job-set state.
func (c *Client) Snapshot(ctx context.Context) (scheduler.Snapshot, error) {
	var out scheduler.Snapshot
	err := c.do(ctx, http.MethodGet, "/v1/snapshot", nil, &out)
	return out, err
}

// RestoreSnapshot replaces the controller's job set.
func (c *Client) RestoreSnapshot(ctx context.Context, snap scheduler.Snapshot) error {
	return c.do(ctx, http.MethodPut, "/v1/snapshot", snap, nil)
}

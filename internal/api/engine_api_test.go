package api

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/scheduler"
	"repro/internal/serve"
	"repro/internal/policy"
)

func newEngineTestServer(t *testing.T) (*Client, *serve.Engine) {
	t.Helper()
	sc, err := scheduler.New(scheduler.Config{
		SiteCapacity: []float64{1, 1},
		Policy:       policy.AMF,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	eng, err := serve.New(sc, serve.Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	srv := NewEngineServer(eng, reg, []float64{1, 1}, policy.AMF)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, ts.Client()), eng
}

// TestEngineBackedLifecycle runs the job lifecycle through the batched
// engine backend: same wire behavior as the direct scheduler backend.
func TestEngineBackedLifecycle(t *testing.T) {
	c, eng := newEngineTestServer(t)
	if err := c.AddJob(context.Background(), AddJobRequest{ID: "a", Demand: []float64{1, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddJob(context.Background(), AddJobRequest{ID: "b", Demand: []float64{1, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddJob(context.Background(), AddJobRequest{ID: "a", Demand: []float64{1, 1}}); err == nil ||
		!strings.Contains(err.Error(), "exists") {
		t.Fatalf("duplicate add err = %v", err)
	}
	alloc, err := c.Allocation(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.Jobs) != 2 {
		t.Fatalf("allocation has %d jobs, want 2", len(alloc.Jobs))
	}
	if err := c.UpdateWeight(context.Background(), "a", 3); err != nil {
		t.Fatal(err)
	}
	completed, err := c.ReportProgress(context.Background(), "b", []float64{1, 0})
	if err != nil || !completed {
		t.Fatalf("progress = %v, %v, want completed", completed, err)
	}
	if _, err := c.Shares(context.Background(), "b"); err == nil {
		t.Fatal("Shares(b) should 404 after completion")
	}
	// Reads are served from the engine's published snapshot.
	if snap := eng.Current(); len(snap.Shares) != 1 {
		t.Fatalf("engine snapshot has %d jobs, want 1", len(snap.Shares))
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs != 1 || st.Completed != 1 || st.Solves == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LastSolveSeconds <= 0 || st.TotalSolveSeconds < st.LastSolveSeconds {
		t.Fatalf("stats missing solve durations: %+v", st)
	}
}

// TestMetricsEndpoint verifies GET /v1/metrics carries per-endpoint HTTP
// telemetry, engine instrumentation, and solver counters that agree with
// /v1/stats.
func TestMetricsEndpoint(t *testing.T) {
	c, _ := newEngineTestServer(t)
	if err := c.AddJob(context.Background(), AddJobRequest{ID: "a", Demand: []float64{1, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Allocation(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Shares(context.Background(), "missing"); err == nil {
		t.Fatal("expected 404")
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters["http.requests.POST /v1/jobs"] != 1 {
		t.Fatalf("job request counter = %v", m.Counters)
	}
	if m.Counters["http.errors.GET /v1/jobs/{id}/shares"] != 1 {
		t.Fatalf("error counter missing: %v", m.Counters)
	}
	h, ok := m.Histograms["http.latency.GET /v1/allocation"]
	if !ok || h.Count != 1 || h.P50 <= 0 {
		t.Fatalf("allocation latency histogram = %+v", h)
	}
	if m.Histograms["engine.solve_latency"].Count == 0 {
		t.Fatalf("solve latency histogram empty: %v", m.Histograms)
	}
	if m.Counters["engine.mutations_total"] != 1 {
		t.Fatalf("engine mutation counter = %v", m.Counters)
	}
	// Solver numbers must agree between /v1/stats and /v1/metrics.
	if got := m.Gauges["scheduler.solves"]; got != float64(st.Solves) {
		t.Fatalf("metrics solves = %g, stats = %d", got, st.Solves)
	}
	if got := m.Gauges["scheduler.jobs"]; got != 1 {
		t.Fatalf("metrics jobs gauge = %g, want 1", got)
	}
	// Decomposition telemetry: one job over two sites is one component,
	// reported by both the scheduler mirror and the engine gauges.
	if got := m.Gauges["scheduler.last_components"]; got != 1 {
		t.Fatalf("metrics last_components gauge = %g, want 1", got)
	}
	if got := m.Gauges["scheduler.largest_component"]; got != 1 {
		t.Fatalf("metrics largest_component gauge = %g, want 1", got)
	}
	if got := m.Gauges["engine.solve_components"]; got != 1 {
		t.Fatalf("engine solve_components gauge = %g, want 1", got)
	}
	if got := m.Gauges["scheduler.last_speedup"]; got != float64(st.LastSpeedup) || got <= 0 {
		t.Fatalf("metrics last_speedup gauge = %g, stats %g", got, st.LastSpeedup)
	}
	// Incremental-solve telemetry: the single add was a cache miss that
	// re-solved its one component, mirrored by stats and metrics alike.
	if st.LastResolved != 1 || st.CacheMisses == 0 {
		t.Fatalf("stats incremental fields = %+v, want last_resolved 1 and cache misses recorded", st)
	}
	if got := m.Gauges["scheduler.last_resolved"]; got != float64(st.LastResolved) {
		t.Fatalf("metrics last_resolved gauge = %g, stats = %d", got, st.LastResolved)
	}
	if got := m.Gauges["scheduler.last_reused"]; got != float64(st.LastReused) {
		t.Fatalf("metrics last_reused gauge = %g, stats = %d", got, st.LastReused)
	}
	if got := m.Gauges["scheduler.cache_misses"]; got != float64(st.CacheMisses) {
		t.Fatalf("metrics cache_misses gauge = %g, stats = %d", got, st.CacheMisses)
	}
	if _, ok := m.Gauges["scheduler.cache_hits"]; !ok {
		t.Fatalf("metrics missing scheduler.cache_hits gauge: %v", m.Gauges)
	}
}

// TestMetricsOnDirectServer: the non-engine server also serves /v1/metrics
// with HTTP middleware telemetry.
func TestMetricsOnDirectServer(t *testing.T) {
	c, _ := newTestServer(t)
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters["http.requests.GET /v1/healthz"] != 1 {
		t.Fatalf("healthz counter = %v", m.Counters)
	}
}

package api

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/scheduler"
	"repro/internal/serve"
	"repro/internal/policy"
)

// newTracedServer builds the full observability stack: scheduler + traced
// engine + API server sharing one registry and one trace ring.
func newTracedServer(t *testing.T) (*httptest.Server, *span.Recorder, *obs.Registry) {
	t.Helper()
	sc, err := scheduler.New(scheduler.Config{
		SiteCapacity: []float64{4, 4},
		Policy:       policy.AMF,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rec := span.NewRecorder(32)
	eng, err := serve.New(sc, serve.Config{Metrics: reg, Traces: rec})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	srv := NewEngineServer(eng, reg, []float64{4, 4}, policy.AMF).SetTraces(rec)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, rec, reg
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestTraceHeaderAndCorrelation: a mutation's X-AMF-Trace-Id response
// header names a trace retrievable from GET /v1/traces, with the commit's
// stage spans attached.
func TestTraceHeaderAndCorrelation(t *testing.T) {
	ts, _, _ := newTracedServer(t)

	resp := postJSON(t, ts.URL+"/v1/jobs", `{"id":"a","demand":[2,0]}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add job status = %d", resp.StatusCode)
	}
	id := resp.Header.Get(TraceHeader)
	if len(id) != 16 {
		t.Fatalf("trace header = %q, want 16 hex chars", id)
	}

	tr, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	var tresp TracesResponse
	if err := json.NewDecoder(tr.Body).Decode(&tresp); err != nil {
		t.Fatal(err)
	}
	if tresp.Capacity != 32 {
		t.Fatalf("capacity = %d, want 32", tresp.Capacity)
	}
	found := false
	for _, trace := range tresp.Traces {
		for _, r := range trace.Requests {
			if string(r) == id {
				found = true
				if len(trace.Spans) == 0 {
					t.Fatalf("correlated trace has no spans: %+v", trace)
				}
			}
		}
	}
	if !found {
		t.Fatalf("trace %s not found in /v1/traces (%d traces)", id, len(tresp.Traces))
	}

	// Reads get a trace ID too, even though they never enter a commit.
	g, err := http.Get(ts.URL + "/v1/allocation")
	if err != nil {
		t.Fatal(err)
	}
	g.Body.Close()
	if got := g.Header.Get(TraceHeader); len(got) != 16 {
		t.Fatalf("read trace header = %q", got)
	}
}

// TestInboundTraceIDHonored: a client-supplied X-AMF-Trace-Id is echoed
// back and stitched into the commit trace.
func TestInboundTraceIDHonored(t *testing.T) {
	ts, rec, _ := newTracedServer(t)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(`{"id":"a","demand":[2,0]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceHeader, "cafe0000cafe0000")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(TraceHeader); got != "cafe0000cafe0000" {
		t.Fatalf("echoed trace ID = %q", got)
	}
	found := false
	for _, trace := range rec.Recent(0) {
		if trace.ID == span.ID("cafe0000cafe0000") {
			found = true
		}
	}
	if !found {
		t.Fatal("inbound trace ID did not name the commit trace")
	}
}

// TestTracesLimitValidation: limit must be a non-negative integer.
func TestTracesLimitValidation(t *testing.T) {
	ts, _, _ := newTracedServer(t)
	for _, bad := range []string{"x", "-1", "1.5"} {
		resp, err := http.Get(ts.URL + "/v1/traces?limit=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("limit=%s status = %d, want 400", bad, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/traces?limit=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tresp TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&tresp); err != nil {
		t.Fatal(err)
	}
	if len(tresp.Traces) > 1 {
		t.Fatalf("limit=1 returned %d traces", len(tresp.Traces))
	}
}

// TestTracesWithoutRecorder: an untraced server serves an empty list, not
// an error.
func TestTracesWithoutRecorder(t *testing.T) {
	sc, err := scheduler.New(scheduler.Config{SiteCapacity: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sc, []float64{1}, policy.AMF)
	req := httptest.NewRequest(http.MethodGet, "/v1/traces", nil)
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var tresp TracesResponse
	if err := json.Unmarshal(w.Body.Bytes(), &tresp); err != nil {
		t.Fatal(err)
	}
	if tresp.Capacity != 0 || len(tresp.Traces) != 0 {
		t.Fatalf("untraced response = %+v, want empty", tresp)
	}
}

// TestPromMetricsEndpoint: GET /metrics serves valid Prometheus text
// exposition with histogram buckets, _count and _sum series, and the
// fairness gauges.
func TestPromMetricsEndpoint(t *testing.T) {
	ts, _, _ := newTracedServer(t)

	resp := postJSON(t, ts.URL+"/v1/jobs", `{"id":"a","demand":[2,0]}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add job status = %d", resp.StatusCode)
	}

	m, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Body.Close()
	if ct := m.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(m.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE amf_engine_commits_total counter",
		"amf_engine_commit_latency_seconds_count",
		"amf_engine_commit_latency_seconds_sum",
		`amf_engine_commit_latency_seconds_bucket`,
		`le="+Inf"`,
		`amf_engine_stage_latency_seconds_bucket{stage="solve"`,
		"amf_fairness_jain_index 1",
		"amf_scheduler_jobs 1",
		`amf_http_requests_total{route="POST /v1/jobs"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, out)
		}
	}
}

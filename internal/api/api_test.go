package api

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/scheduler"
	"repro/internal/policy"
)

func newTestServer(t *testing.T) (*Client, *scheduler.Scheduler) {
	t.Helper()
	sc, err := scheduler.New(scheduler.Config{
		SiteCapacity: []float64{1, 1},
		Policy:       policy.AMF,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sc, []float64{1, 1}, policy.AMF)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, ts.Client()), sc
}

func TestHealthzAndConfig(t *testing.T) {
	c, _ := newTestServer(t)
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	cfg, err := c.Config(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.SiteCapacity) != 2 || cfg.SiteCapacity[0] != 1 {
		t.Fatalf("config %+v", cfg)
	}
	if cfg.Policy != "amf" {
		t.Fatalf("policy %q", cfg.Policy)
	}
}

func TestJobLifecycle(t *testing.T) {
	c, _ := newTestServer(t)
	if err := c.AddJob(context.Background(), AddJobRequest{
		ID: "flexible", Demand: []float64{1, 1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddJob(context.Background(), AddJobRequest{
		ID: "pinned", Demand: []float64{1, 0},
	}); err != nil {
		t.Fatal(err)
	}
	sh, err := c.Shares(context.Background(), "pinned")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sh.Aggregate-1) > 1e-6 {
		t.Fatalf("pinned aggregate %g, want 1", sh.Aggregate)
	}
	alloc, err := c.Allocation(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.Jobs) != 2 {
		t.Fatalf("allocation has %d jobs", len(alloc.Jobs))
	}
	if math.Abs(alloc.Jobs["flexible"].Shares[1]-1) > 1e-6 {
		t.Fatalf("flexible shares %v", alloc.Jobs["flexible"].Shares)
	}

	// Progress to completion.
	done, err := c.ReportProgress(context.Background(), "pinned", []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("pinned should have completed")
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 1 || st.Jobs != 1 {
		t.Fatalf("stats %+v", st)
	}

	if err := c.RemoveJob(context.Background(), "flexible"); err != nil {
		t.Fatal(err)
	}
	st, _ = c.Stats(context.Background())
	if st.Jobs != 0 {
		t.Fatalf("jobs %d after removal", st.Jobs)
	}
}

func TestErrorMapping(t *testing.T) {
	c, _ := newTestServer(t)
	// Unknown job -> 404.
	_, err := c.Shares(context.Background(), "ghost")
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job error %v", err)
	}
	if err := c.RemoveJob(context.Background(), "ghost"); err == nil {
		t.Fatal("removing ghost succeeded")
	}
	// Duplicate -> 409.
	if err := c.AddJob(context.Background(), AddJobRequest{ID: "a", Demand: []float64{1, 1}}); err != nil {
		t.Fatal(err)
	}
	err = c.AddJob(context.Background(), AddJobRequest{ID: "a", Demand: []float64{1, 1}})
	apiErr, ok = err.(*APIError)
	if !ok || apiErr.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate error %v", err)
	}
	// Validation -> 400.
	err = c.AddJob(context.Background(), AddJobRequest{ID: "b", Demand: []float64{1}})
	apiErr, ok = err.(*APIError)
	if !ok || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("validation error %v", err)
	}
	// Missing id -> 400.
	err = c.AddJob(context.Background(), AddJobRequest{Demand: []float64{1, 1}})
	apiErr, ok = err.(*APIError)
	if !ok || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing id error %v", err)
	}
}

func TestMalformedJSON(t *testing.T) {
	_, sc := newTestServer(t)
	srv := NewServer(sc, []float64{1, 1}, policy.AMF)
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader("{nonsense"))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed JSON -> %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "error") {
		t.Fatalf("no error body: %s", rec.Body.String())
	}
}

func TestMethodRouting(t *testing.T) {
	_, sc := newTestServer(t)
	srv := NewServer(sc, []float64{1, 1}, policy.AMF)
	// GET on POST-only endpoint.
	req := httptest.NewRequest(http.MethodGet, "/v1/jobs", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code == http.StatusOK {
		t.Fatalf("GET /v1/jobs -> %d, want an error status", rec.Code)
	}
	// Unknown path.
	req = httptest.NewRequest(http.MethodGet, "/v1/nope", nil)
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown path -> %d", rec.Code)
	}
}

func TestWeightedJobOverAPI(t *testing.T) {
	c, _ := newTestServer(t)
	if err := c.AddJob(context.Background(), AddJobRequest{ID: "light", Weight: 1, Demand: []float64{1, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddJob(context.Background(), AddJobRequest{ID: "heavy", Weight: 3, Demand: []float64{1, 1}}); err != nil {
		t.Fatal(err)
	}
	light, err := c.Shares(context.Background(), "light")
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := c.Shares(context.Background(), "heavy")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(heavy.Aggregate-3*light.Aggregate) > 1e-6 {
		t.Fatalf("weights not respected: light %g heavy %g", light.Aggregate, heavy.Aggregate)
	}
}

func TestProgressWithExplicitWork(t *testing.T) {
	c, _ := newTestServer(t)
	if err := c.AddJob(context.Background(), AddJobRequest{
		ID: "w", Demand: []float64{1, 1}, Work: []float64{5, 5},
	}); err != nil {
		t.Fatal(err)
	}
	done, err := c.ReportProgress(context.Background(), "w", []float64{5, 4})
	if err != nil || done {
		t.Fatalf("done=%v err=%v", done, err)
	}
	done, err = c.ReportProgress(context.Background(), "w", []float64{0, 1})
	if err != nil || !done {
		t.Fatalf("done=%v err=%v", done, err)
	}
}

func TestSnapshotOverAPI(t *testing.T) {
	c, _ := newTestServer(t)
	if err := c.AddJob(context.Background(), AddJobRequest{ID: "a", Demand: []float64{1, 1}, Work: []float64{3, 3}}); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != 1 || snap.Jobs[0].ID != "a" {
		t.Fatalf("snapshot %+v", snap)
	}
	// Restore into a second server.
	c2, _ := newTestServer(t)
	if err := c2.RestoreSnapshot(context.Background(), snap); err != nil {
		t.Fatal(err)
	}
	sh, err := c2.Shares(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if sh.Aggregate <= 0 {
		t.Fatalf("restored job has no allocation: %+v", sh)
	}
	// Bad snapshot -> 400.
	err = c2.RestoreSnapshot(context.Background(), scheduler.Snapshot{Jobs: []scheduler.Job{
		{ID: "x", Demand: []float64{1}, Remaining: []float64{1}},
	}})
	if apiErr, ok := err.(*APIError); !ok || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad snapshot error %v", err)
	}
}

func TestQueuesOverAPI(t *testing.T) {
	c, _ := newTestServer(t)
	if err := c.AddQueue(context.Background(), "prod", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddQueue(context.Background(), "", 1); err == nil {
		t.Fatal("empty queue name accepted")
	}
	if err := c.AddJob(context.Background(), AddJobRequest{ID: "p", Queue: "prod", Demand: []float64{1, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddJob(context.Background(), AddJobRequest{ID: "d", Demand: []float64{1, 1}}); err != nil {
		t.Fatal(err)
	}
	// prod (weight 2) vs default (weight 1) on capacity 2: 4/3 vs 2/3.
	p, err := c.Shares(context.Background(), "p")
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Shares(context.Background(), "d")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Aggregate-2*d.Aggregate) > 1e-6 {
		t.Fatalf("queue weights over API: %g vs %g", p.Aggregate, d.Aggregate)
	}
	// Unknown queue -> 400.
	err = c.AddJob(context.Background(), AddJobRequest{ID: "x", Queue: "ghost", Demand: []float64{1, 1}})
	if apiErr, ok := err.(*APIError); !ok || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown queue error %v", err)
	}
}

func TestUpdateWeightOverAPI(t *testing.T) {
	c, _ := newTestServer(t)
	_ = c.AddJob(context.Background(), AddJobRequest{ID: "a", Demand: []float64{1, 1}})
	_ = c.AddJob(context.Background(), AddJobRequest{ID: "b", Demand: []float64{1, 1}})
	if err := c.UpdateWeight(context.Background(), "a", 3); err != nil {
		t.Fatal(err)
	}
	a, _ := c.Shares(context.Background(), "a")
	b, _ := c.Shares(context.Background(), "b")
	if math.Abs(a.Aggregate-3*b.Aggregate) > 1e-6 {
		t.Fatalf("weight update not applied: %g vs %g", a.Aggregate, b.Aggregate)
	}
	if err := c.UpdateWeight(context.Background(), "ghost", 2); err == nil {
		t.Fatal("unknown job accepted")
	}
}

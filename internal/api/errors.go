package api

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/scheduler"
	"repro/internal/serve"
)

// Stable machine-readable error codes, carried in every error response's
// "code" field. Clients should branch on these (via the Err* sentinels
// and errors.Is), not on message text or bare status codes.
const (
	// CodeInvalidArgument: the request was malformed or failed validation.
	CodeInvalidArgument = "invalid_argument"
	// CodeNotFound: the referenced job does not exist.
	CodeNotFound = "not_found"
	// CodeAlreadyExists: the job or queue is already registered.
	CodeAlreadyExists = "already_exists"
	// CodeUnavailable: the controller cannot take mutations right now —
	// it is shutting down, its write-ahead log failed, or the request's
	// context was cancelled before the mutation committed. Retryable
	// against a healthy (or restarted) controller.
	CodeUnavailable = "unavailable"
)

// Sentinel errors for errors.Is against client-side failures:
//
//	err := cl.AddJob(ctx, req)
//	if errors.Is(err, api.ErrAlreadyExists) { ... }
var (
	ErrInvalidArgument = &APIError{Code: CodeInvalidArgument}
	ErrNotFound        = &APIError{Code: CodeNotFound}
	ErrAlreadyExists   = &APIError{Code: CodeAlreadyExists}
	ErrUnavailable     = &APIError{Code: CodeUnavailable}
)

// APIError is a non-2xx response from the server, carrying the stable
// code alongside the transport status and human-readable message.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("api: %d %s: %s", e.StatusCode, e.Code, e.Message)
	}
	return fmt.Sprintf("api: %d %s", e.StatusCode, e.Message)
}

// Is matches the Err* sentinels: a target with only a Code set matches
// any APIError carrying that code.
func (e *APIError) Is(target error) bool {
	t, ok := target.(*APIError)
	if !ok {
		return false
	}
	return (t.Code == "" || t.Code == e.Code) &&
		(t.StatusCode == 0 || t.StatusCode == e.StatusCode)
}

// Coder lets backend errors defined outside this package carry their own
// stable code — CodeFor honors it before falling back to its sentinel
// classification. The cluster package uses it (e.g. a syncing replica's
// reads are "unavailable", not "invalid_argument").
type Coder interface {
	APICode() string
}

// CodeFor classifies a backend error into its stable code. Exported for
// HTTP surfaces outside this package (the cluster router) that must speak
// the same error vocabulary.
func CodeFor(err error) string {
	var c Coder
	if errors.As(err, &c) {
		return c.APICode()
	}
	switch {
	case errors.Is(err, scheduler.ErrUnknownJob):
		return CodeNotFound
	case errors.Is(err, scheduler.ErrDuplicateJob):
		return CodeAlreadyExists
	case errors.Is(err, serve.ErrClosed),
		errors.Is(err, serve.ErrWALFailed),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return CodeUnavailable
	default:
		return CodeInvalidArgument
	}
}

// StatusFor maps a stable code onto its HTTP status.
func StatusFor(code string) int {
	switch code {
	case CodeNotFound:
		return http.StatusNotFound
	case CodeAlreadyExists:
		return http.StatusConflict
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

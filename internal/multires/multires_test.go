package multires

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fairness"
)

func feq(a, b float64) bool { return math.Abs(a-b) <= 1e-4*(1+math.Abs(a)+math.Abs(b)) }

// classicDRF is the example from the DRF paper: one 9-CPU/18-GB cluster,
// job A tasks <1 CPU, 4 GB>, job B tasks <3 CPU, 1 GB>. The fluid DRF
// allocation is exactly 3 tasks for A and 2 for B (dominant shares 2/3).
func classicDRF() *Instance {
	return &Instance{
		SiteCapacity: [][]float64{{9, 18}},
		TaskUse:      [][]float64{{1, 4}, {3, 1}},
		TaskCount:    [][]float64{{100}, {100}},
	}
}

func TestPerSiteDRFClassic(t *testing.T) {
	a, err := PerSiteDRF(classicDRF())
	if err != nil {
		t.Fatal(err)
	}
	if !feq(a.Tasks[0][0], 3) || !feq(a.Tasks[1][0], 2) {
		t.Fatalf("tasks %v, want A=3 B=2", a.Tasks)
	}
	ds := a.DominantShares()
	if !feq(ds[0], 2.0/3) || !feq(ds[1], 2.0/3) {
		t.Fatalf("dominant shares %v, want 2/3 each", ds)
	}
}

func TestAggregateDRFClassicSingleSite(t *testing.T) {
	// With one site, aggregate DRF coincides with per-site DRF.
	var sv Solver
	a, err := sv.AggregateDRF(classicDRF())
	if err != nil {
		t.Fatal(err)
	}
	ds := a.DominantShares()
	if !feq(ds[0], 2.0/3) || !feq(ds[1], 2.0/3) {
		t.Fatalf("dominant shares %v, want 2/3 each", ds)
	}
	if err := a.CheckFeasible(1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestDominantInfo(t *testing.T) {
	in := classicDRF()
	dom := in.Dominant()
	if dom[0].Resource != 1 { // memory: 4/18 > 1/9
		t.Fatalf("job A dominant %d, want 1", dom[0].Resource)
	}
	if dom[1].Resource != 0 { // CPU: 3/9 > 1/18
		t.Fatalf("job B dominant %d, want 0", dom[1].Resource)
	}
	if !feq(dom[0].PerTask, 4.0/18) || !feq(dom[1].PerTask, 3.0/9) {
		t.Fatalf("per-task shares %v", dom)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []*Instance{
		{},
		{SiteCapacity: [][]float64{{1}}, TaskUse: [][]float64{{0}}, TaskCount: [][]float64{{1}}},
		{SiteCapacity: [][]float64{{1}}, TaskUse: [][]float64{{-1}}, TaskCount: [][]float64{{1}}},
		{SiteCapacity: [][]float64{{1, 2}}, TaskUse: [][]float64{{1}}, TaskCount: [][]float64{{1}}},
		{SiteCapacity: [][]float64{{1}}, TaskUse: [][]float64{{1}}, TaskCount: [][]float64{{1, 2}}},
		{SiteCapacity: [][]float64{{1}}, TaskUse: [][]float64{{1}}, TaskCount: [][]float64{{1}},
			Weight: []float64{0}},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestAggregateDRFPinnedVsFlexible(t *testing.T) {
	// Multi-resource analogue of the paper's motivating case: two sites
	// with identical capacity vectors; job P pinned to site 0, job F can
	// run anywhere. Aggregate DRF routes F to site 1 so both end at
	// dominant share 1/2.
	in := &Instance{
		SiteCapacity: [][]float64{{4, 8}, {4, 8}},
		TaskUse:      [][]float64{{1, 2}, {1, 2}},
		TaskCount: [][]float64{
			{100, 0},
			{100, 100},
		},
	}
	var sv Solver
	agg, err := sv.AggregateDRF(in)
	if err != nil {
		t.Fatal(err)
	}
	ds := agg.DominantShares()
	if !feq(ds[0], 0.5) || !feq(ds[1], 0.5) {
		t.Fatalf("aggregate DRF shares %v, want [0.5 0.5]", ds)
	}

	ps, err := PerSiteDRF(in)
	if err != nil {
		t.Fatal(err)
	}
	psDS := ps.DominantShares()
	// Per-site: site 0 split between P and F (dominant share 1/4 each
	// against the cluster), F also takes all of site 1 (another 1/2):
	// P=0.25, F=0.75.
	if !feq(psDS[0], 0.25) || !feq(psDS[1], 0.75) {
		t.Fatalf("per-site DRF shares %v, want [0.25 0.75]", psDS)
	}
}

func TestAggregateDRFTaskCaps(t *testing.T) {
	// A job with few task slots freezes at its cap; the other grows.
	in := &Instance{
		SiteCapacity: [][]float64{{10, 10}},
		TaskUse:      [][]float64{{1, 1}, {1, 1}},
		TaskCount:    [][]float64{{2}, {100}},
	}
	var sv Solver
	a, err := sv.AggregateDRF(in)
	if err != nil {
		t.Fatal(err)
	}
	if !feq(a.TotalTasks(0), 2) {
		t.Fatalf("capped job tasks %g, want 2", a.TotalTasks(0))
	}
	if !feq(a.TotalTasks(1), 8) {
		t.Fatalf("big job tasks %g, want 8", a.TotalTasks(1))
	}
}

func TestAggregateDRFWeighted(t *testing.T) {
	in := &Instance{
		SiteCapacity: [][]float64{{6, 6}},
		TaskUse:      [][]float64{{1, 1}, {1, 1}},
		TaskCount:    [][]float64{{100}, {100}},
		Weight:       []float64{1, 2},
	}
	var sv Solver
	a, err := sv.AggregateDRF(in)
	if err != nil {
		t.Fatal(err)
	}
	if !feq(a.TotalTasks(0), 2) || !feq(a.TotalTasks(1), 4) {
		t.Fatalf("weighted tasks %g/%g, want 2/4", a.TotalTasks(0), a.TotalTasks(1))
	}
}

func TestAggregateDRFHeterogeneousShapes(t *testing.T) {
	// CPU-heavy and memory-heavy jobs on one site: the DRF trade lets both
	// exceed 1/2 of their dominant resource.
	in := &Instance{
		SiteCapacity: [][]float64{{9, 18}},
		TaskUse:      [][]float64{{1, 4}, {3, 1}},
		TaskCount:    [][]float64{{100}, {100}},
	}
	var sv Solver
	a, err := sv.AggregateDRF(in)
	if err != nil {
		t.Fatal(err)
	}
	ds := a.DominantShares()
	for j, v := range ds {
		if v < 0.5 {
			t.Fatalf("job %d dominant share %g below equal split", j, v)
		}
	}
}

func TestAggregateDRFMaxMinCertificate(t *testing.T) {
	// Generic max-min verification with the LP oracle.
	rng := rand.New(rand.NewSource(83))
	var sv Solver
	for trial := 0; trial < 10; trial++ {
		in := randMRInstance(rng, 2+rng.Intn(3), 1+rng.Intn(2), 2)
		a, err := sv.AggregateDRF(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := a.CheckFeasible(1e-5); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		dom := in.Dominant()
		ds := a.DominantShares()
		dsMax := make([]float64, in.NumJobs())
		for j := range dsMax {
			if math.IsInf(dom[j].PerTask, 1) {
				continue
			}
			var slots float64
			for _, c := range in.TaskCount[j] {
				slots += c
			}
			dsMax[j] = slots * dom[j].PerTask
		}
		oracle := func(target []float64) bool {
			_, ok := sv.feasible(in, dom, target)
			return ok
		}
		if j, bad := fairness.MaxMinViolation(ds, dsMax, oracle, 1e-3); bad {
			t.Fatalf("trial %d: dominant shares not max-min fair (job %d, ds %v)",
				trial, j, ds)
		}
	}
}

func randMRInstance(rng *rand.Rand, n, m, k int) *Instance {
	in := &Instance{
		SiteCapacity: make([][]float64, m),
		TaskUse:      make([][]float64, n),
		TaskCount:    make([][]float64, n),
	}
	for s := 0; s < m; s++ {
		in.SiteCapacity[s] = make([]float64, k)
		for r := 0; r < k; r++ {
			in.SiteCapacity[s][r] = 2 + rng.Float64()*8
		}
	}
	for j := 0; j < n; j++ {
		in.TaskUse[j] = make([]float64, k)
		for r := 0; r < k; r++ {
			in.TaskUse[j][r] = 0.2 + rng.Float64()*2
		}
		in.TaskCount[j] = make([]float64, m)
		for s := 0; s < m; s++ {
			if rng.Intn(3) > 0 {
				in.TaskCount[j][s] = float64(1 + rng.Intn(8))
			}
		}
	}
	return in
}

func TestPerSiteDRFFeasibleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 30; trial++ {
		in := randMRInstance(rng, 2+rng.Intn(5), 1+rng.Intn(3), 1+rng.Intn(3))
		a, err := PerSiteDRF(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := a.CheckFeasible(1e-6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPerSiteDRFSecondRoundGrowth(t *testing.T) {
	// CPU-only and memory-only jobs: when CPU saturates, the memory job
	// must keep growing to its own bottleneck (progressive filling, not a
	// single stop).
	in := &Instance{
		SiteCapacity: [][]float64{{4, 8}},
		TaskUse:      [][]float64{{1, 0}, {0, 1}},
		TaskCount:    [][]float64{{100}, {100}},
	}
	a, err := PerSiteDRF(in)
	if err != nil {
		t.Fatal(err)
	}
	if !feq(a.Tasks[0][0], 4) {
		t.Fatalf("cpu job tasks %g, want 4", a.Tasks[0][0])
	}
	if !feq(a.Tasks[1][0], 8) {
		t.Fatalf("memory job tasks %g, want 8 (second-round growth)", a.Tasks[1][0])
	}
}

func TestZeroCapacityResource(t *testing.T) {
	// A job needing a resource with zero supply gets nothing; others are
	// unaffected.
	in := &Instance{
		SiteCapacity: [][]float64{{4, 0}},
		TaskUse:      [][]float64{{1, 1}, {1, 0}},
		TaskCount:    [][]float64{{10}, {10}},
	}
	var sv Solver
	a, err := sv.AggregateDRF(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTasks(0) > 1e-9 {
		t.Fatalf("impossible job got %g tasks", a.TotalTasks(0))
	}
	if !feq(a.TotalTasks(1), 4) {
		t.Fatalf("possible job got %g tasks, want 4", a.TotalTasks(1))
	}
}

func TestAllocationAccessors(t *testing.T) {
	in := classicDRF()
	a := NewAllocation(in)
	a.Tasks[0][0] = 2
	if !feq(a.ResourceLoad(0, 1), 8) {
		t.Fatalf("memory load %g, want 8", a.ResourceLoad(0, 1))
	}
	if err := a.CheckFeasible(1e-9); err != nil {
		t.Fatal(err)
	}
	a.Tasks[0][0] = 1000
	if err := a.CheckFeasible(1e-9); err == nil {
		t.Fatal("overload accepted")
	}
}

package multires

import (
	"fmt"
	"math"

	"repro/internal/lp"
)

// Solver computes multi-resource fair allocations.
type Solver struct {
	// Eps is the relative tolerance of the progressive filling (default
	// 1e-6; the LP oracle is the cost driver, so the multi-resource solver
	// uses a coarser default than the single-resource one).
	Eps float64
}

func (sv *Solver) eps() float64 {
	if sv != nil && sv.Eps > 0 {
		return sv.Eps
	}
	return 1e-6
}

// AggregateDRF computes the allocation whose weighted aggregate
// dominant-share vector is max-min fair: progressive filling on a common
// dominant-share level with an LP feasibility oracle, freezing jobs that
// cannot be raised (detected by individual probes).
func (sv *Solver) AggregateDRF(in *Instance) (*Allocation, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := in.NumJobs()
	dom := in.Dominant()

	// Maximum dominant share each job could ever reach (all task slots).
	dsMax := make([]float64, n)
	for j := 0; j < n; j++ {
		if math.IsInf(dom[j].PerTask, 1) {
			dsMax[j] = 0
			continue
		}
		var slots float64
		for _, c := range in.TaskCount[j] {
			slots += c
		}
		dsMax[j] = slots * dom[j].PerTask
	}

	frozen := make([]bool, n)
	level := make([]float64, n) // frozen dominant share
	remaining := 0
	for j := 0; j < n; j++ {
		if dsMax[j] <= 0 {
			frozen[j] = true
		} else {
			remaining++
		}
	}

	target := func(t float64) []float64 {
		out := make([]float64, n)
		for j := 0; j < n; j++ {
			if frozen[j] {
				out[j] = level[j]
			} else {
				out[j] = math.Min(t*in.JobWeight(j), dsMax[j])
			}
		}
		return out
	}

	var last *Allocation
	for round := 0; remaining > 0; round++ {
		if round > n {
			return nil, fmt.Errorf("multires: no progress after %d rounds", round)
		}
		hi := 0.0
		for j := 0; j < n; j++ {
			if !frozen[j] {
				hi = math.Max(hi, dsMax[j]/in.JobWeight(j))
			}
		}
		if a, ok := sv.feasible(in, dom, target(hi)); ok {
			for j := 0; j < n; j++ {
				if !frozen[j] {
					frozen[j] = true
					level[j] = dsMax[j]
					remaining--
				}
			}
			last = a
			break
		}
		// Bisection for the bottleneck level.
		lo := 0.0
		ttol := sv.eps() * math.Max(hi, 1e-12)
		var atLo *Allocation
		for hi-lo > ttol {
			mid := (lo + hi) / 2
			if a, ok := sv.feasible(in, dom, target(mid)); ok {
				lo = mid
				atLo = a
			} else {
				hi = mid
			}
		}
		tstar := lo
		last = atLo
		// Freeze: demand-capped jobs, then individually-probed stuck jobs.
		frozeAny := false
		bump := math.Max(50*ttol, 1e-9)
		base := target(tstar)
		for j := 0; j < n; j++ {
			if frozen[j] {
				continue
			}
			if tstar*in.JobWeight(j) >= dsMax[j]-ttol {
				frozen[j] = true
				level[j] = dsMax[j]
				frozeAny = true
				remaining--
				continue
			}
			probe := append([]float64(nil), base...)
			probe[j] += bump
			if _, ok := sv.feasible(in, dom, probe); !ok {
				frozen[j] = true
				level[j] = base[j]
				frozeAny = true
				remaining--
			}
		}
		if !frozeAny {
			return nil, fmt.Errorf("multires: bottleneck at %g froze no job", tstar)
		}
	}

	// Final placement at the frozen levels.
	a, ok := sv.feasible(in, dom, level)
	if !ok {
		// The levels were verified feasible along the way; allow the last
		// witnessed placement as a fallback against borderline numerics.
		if last == nil {
			return nil, fmt.Errorf("multires: final levels infeasible")
		}
		a = last
	}
	return a, nil
}

// feasible tests whether every job can simultaneously hold the given
// dominant share, returning a witness placement.
//
// Variables: x[j][s] (tasks), flattened j*m+s. Constraints:
//
//	sum_s x[j][s] = target_j / dom_j.PerTask   (aggregate pinned)
//	x[j][s] <= TaskCount[j][s]
//	sum_j x[j][s]*TaskUse[j][r] <= SiteCapacity[s][r]
func (sv *Solver) feasible(in *Instance, dom []DominantInfo, targets []float64) (*Allocation, bool) {
	n, m, k := in.NumJobs(), in.NumSites(), in.NumResources()
	nv := n * m
	idx := func(j, s int) int { return j*m + s }

	var a [][]float64
	var b []float64
	// Task-count caps.
	for j := 0; j < n; j++ {
		for s := 0; s < m; s++ {
			row := make([]float64, nv)
			row[idx(j, s)] = 1
			a = append(a, row)
			b = append(b, in.TaskCount[j][s])
		}
	}
	// Per-site per-resource capacities.
	for s := 0; s < m; s++ {
		for r := 0; r < k; r++ {
			row := make([]float64, nv)
			for j := 0; j < n; j++ {
				row[idx(j, s)] = in.TaskUse[j][r]
			}
			a = append(a, row)
			b = append(b, in.SiteCapacity[s][r])
		}
	}
	// Aggregate equalities.
	var e [][]float64
	var f []float64
	for j := 0; j < n; j++ {
		if math.IsInf(dom[j].PerTask, 1) || dom[j].PerTask <= 0 {
			continue // job cannot run; its target must be 0
		}
		row := make([]float64, nv)
		for s := 0; s < m; s++ {
			row[idx(j, s)] = 1
		}
		e = append(e, row)
		f = append(f, targets[j]/dom[j].PerTask)
	}

	x, ok := lp.Feasible(nv, a, b, e, f)
	if !ok {
		return nil, false
	}
	alloc := NewAllocation(in)
	for j := 0; j < n; j++ {
		for s := 0; s < m; s++ {
			alloc.Tasks[j][s] = x[idx(j, s)]
		}
	}
	return alloc, true
}

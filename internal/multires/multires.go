// Package multires extends aggregate max-min fairness to multiple resource
// types, the Dominant Resource Fairness (DRF) setting the paper's line of
// work builds on: each site holds a capacity *vector* (CPUs, memory, ...),
// each job's tasks consume a fixed resource vector, and fairness is defined
// on *dominant shares* — the fraction of the cluster-wide supply of a job's
// most-demanded resource that it occupies.
//
// Two allocators are provided, mirroring the single-resource pair:
//
//   - AggregateDRF: the weighted dominant-share vector, aggregated across
//     sites, is max-min fair over all feasible task placements. Feasibility
//     of a dominant-share target is a linear program (per-site vector
//     capacities break the max-flow structure), solved with internal/lp.
//   - PerSiteDRF: the baseline; every site independently runs fluid DRF on
//     its own capacity vector.
//
// This is an extension beyond the paper (its model is single-resource);
// DESIGN.md records it as such.
package multires

import (
	"errors"
	"fmt"
	"math"
)

// Instance is a multi-resource, multi-site allocation problem.
type Instance struct {
	// SiteCapacity[s][k] is the amount of resource k at site s.
	SiteCapacity [][]float64
	// TaskUse[j][k] is the amount of resource k consumed by one of job j's
	// tasks (the job's task shape, identical at every site).
	TaskUse [][]float64
	// TaskCount[j][s] is job j's maximum useful parallelism at site s.
	TaskCount [][]float64
	// Weight[j] is job j's share weight (nil = all ones).
	Weight []float64
	// CapacityTotals, when non-nil, overrides the per-resource totals used
	// for dominant-share normalization (Dominant). A sub-instance carved
	// out of a larger problem — one connected component of a decomposed
	// instance — must normalize against the *global* supply, not its own
	// slice of it, for its dominant shares to mean the same thing they do
	// in the monolithic solve. Nil means the totals are summed from
	// SiteCapacity as usual.
	CapacityTotals []float64
}

// NumJobs reports the number of jobs.
func (in *Instance) NumJobs() int { return len(in.TaskUse) }

// NumSites reports the number of sites.
func (in *Instance) NumSites() int { return len(in.SiteCapacity) }

// NumResources reports the number of resource types.
func (in *Instance) NumResources() int {
	if len(in.SiteCapacity) == 0 {
		return 0
	}
	return len(in.SiteCapacity[0])
}

// JobWeight reports job j's weight, defaulting to 1.
func (in *Instance) JobWeight(j int) float64 {
	if in.Weight == nil {
		return 1
	}
	return in.Weight[j]
}

// Validate checks structural sanity.
func (in *Instance) Validate() error {
	m, k := in.NumSites(), in.NumResources()
	if m == 0 || k == 0 {
		return errors.New("multires: no sites or no resources")
	}
	for s, row := range in.SiteCapacity {
		if len(row) != k {
			return fmt.Errorf("multires: site %d has %d resources, want %d", s, len(row), k)
		}
		for r, c := range row {
			if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				return fmt.Errorf("multires: site %d resource %d capacity %g", s, r, c)
			}
		}
	}
	for j, row := range in.TaskUse {
		if len(row) != k {
			return fmt.Errorf("multires: job %d task shape has %d resources, want %d", j, len(row), k)
		}
		positive := false
		for r, u := range row {
			if u < 0 || math.IsNaN(u) || math.IsInf(u, 0) {
				return fmt.Errorf("multires: job %d resource %d use %g", j, r, u)
			}
			if u > 0 {
				positive = true
			}
		}
		if !positive {
			return fmt.Errorf("multires: job %d consumes nothing", j)
		}
	}
	if len(in.TaskCount) != in.NumJobs() {
		return fmt.Errorf("multires: %d task-count rows for %d jobs", len(in.TaskCount), in.NumJobs())
	}
	for j, row := range in.TaskCount {
		if len(row) != m {
			return fmt.Errorf("multires: job %d has %d task counts, want %d", j, len(row), m)
		}
		for s, c := range row {
			if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				return fmt.Errorf("multires: job %d site %d count %g", j, s, c)
			}
		}
	}
	if in.Weight != nil {
		if len(in.Weight) != in.NumJobs() {
			return fmt.Errorf("multires: %d weights for %d jobs", len(in.Weight), in.NumJobs())
		}
		for j, w := range in.Weight {
			if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("multires: job %d weight %g", j, w)
			}
		}
	}
	if in.CapacityTotals != nil {
		if len(in.CapacityTotals) != k {
			return fmt.Errorf("multires: %d capacity totals for %d resources", len(in.CapacityTotals), k)
		}
		for r, c := range in.CapacityTotals {
			if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				return fmt.Errorf("multires: resource %d capacity total %g", r, c)
			}
		}
	}
	return nil
}

// TotalCapacity sums each resource across sites.
func (in *Instance) TotalCapacity() []float64 {
	tot := make([]float64, in.NumResources())
	for _, row := range in.SiteCapacity {
		for r, c := range row {
			tot[r] += c
		}
	}
	return tot
}

// DominantInfo describes a job's dominant resource against the cluster
// totals.
type DominantInfo struct {
	Resource int
	// PerTask is the dominant share contributed by one running task:
	// TaskUse[dom] / TotalCapacity[dom].
	PerTask float64
}

// Dominant computes each job's dominant resource. Resources with zero
// total capacity are skipped (a job demanding only such resources cannot
// run and yields PerTask = +Inf). The normalization totals come from
// CapacityTotals when set (see Instance.CapacityTotals), else from
// summing SiteCapacity.
func (in *Instance) Dominant() []DominantInfo {
	tot := in.CapacityTotals
	if tot == nil {
		tot = in.TotalCapacity()
	}
	out := make([]DominantInfo, in.NumJobs())
	for j := range out {
		best := -1
		bestShare := 0.0
		impossible := false
		for r, u := range in.TaskUse[j] {
			if u <= 0 {
				continue
			}
			if tot[r] <= 0 {
				impossible = true
				continue
			}
			if share := u / tot[r]; share > bestShare {
				bestShare = share
				best = r
			}
		}
		if best < 0 {
			out[j] = DominantInfo{Resource: -1, PerTask: math.Inf(1)}
			continue
		}
		if impossible {
			// Some required resource has zero supply anywhere: no task can
			// run regardless of the dominant-share arithmetic.
			out[j] = DominantInfo{Resource: best, PerTask: math.Inf(1)}
			continue
		}
		out[j] = DominantInfo{Resource: best, PerTask: bestShare}
	}
	return out
}

// Allocation holds a task-level placement.
type Allocation struct {
	Inst *Instance
	// Tasks[j][s] is the (fluid) number of job-j tasks running at site s.
	Tasks [][]float64
}

// NewAllocation returns an all-zero allocation.
func NewAllocation(in *Instance) *Allocation {
	t := make([][]float64, in.NumJobs())
	for j := range t {
		t[j] = make([]float64, in.NumSites())
	}
	return &Allocation{Inst: in, Tasks: t}
}

// TotalTasks reports job j's total running tasks.
func (a *Allocation) TotalTasks(j int) float64 {
	var t float64
	for _, v := range a.Tasks[j] {
		t += v
	}
	return t
}

// DominantShares reports each job's aggregate dominant share.
func (a *Allocation) DominantShares() []float64 {
	dom := a.Inst.Dominant()
	out := make([]float64, a.Inst.NumJobs())
	for j := range out {
		if math.IsInf(dom[j].PerTask, 1) {
			out[j] = 0
			continue
		}
		out[j] = a.TotalTasks(j) * dom[j].PerTask
	}
	return out
}

// ResourceLoad reports the usage of resource r at site s.
func (a *Allocation) ResourceLoad(s, r int) float64 {
	var load float64
	for j := range a.Tasks {
		load += a.Tasks[j][s] * a.Inst.TaskUse[j][r]
	}
	return load
}

// CheckFeasible verifies task caps and per-site resource capacities.
func (a *Allocation) CheckFeasible(tol float64) error {
	in := a.Inst
	for j := range a.Tasks {
		for s, x := range a.Tasks[j] {
			if x < -tol {
				return fmt.Errorf("multires: job %d site %d negative tasks %g", j, s, x)
			}
			if x > in.TaskCount[j][s]+tol {
				return fmt.Errorf("multires: job %d site %d tasks %g exceed count %g",
					j, s, x, in.TaskCount[j][s])
			}
		}
	}
	for s := 0; s < in.NumSites(); s++ {
		for r := 0; r < in.NumResources(); r++ {
			if load := a.ResourceLoad(s, r); load > in.SiteCapacity[s][r]+tol {
				return fmt.Errorf("multires: site %d resource %d load %g exceeds %g",
					s, r, load, in.SiteCapacity[s][r])
			}
		}
	}
	return nil
}

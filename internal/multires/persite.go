package multires

import "math"

// PerSiteDRF computes the baseline: every site independently runs fluid
// Dominant Resource Fairness against its own capacity vector — the direct
// multi-resource analogue of per-site max-min fairness. Each site raises a
// common weighted *local* dominant-share level with progressive filling:
// a job freezes when its task count caps out or when any resource it uses
// saturates; jobs not touching the saturated resource keep growing.
func PerSiteDRF(in *Instance) (*Allocation, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	alloc := NewAllocation(in)
	for s := 0; s < in.NumSites(); s++ {
		perSiteDRFOne(in, s, alloc)
	}
	return alloc, nil
}

// perSiteDRFOne fills site s of the allocation.
func perSiteDRFOne(in *Instance, s int, alloc *Allocation) {
	n := in.NumJobs()
	k := in.NumResources()

	// Per-job local dominant share per task (against this site's vector).
	perTask := make([]float64, n)
	unfrozen := make([]bool, n)
	tasks := make([]float64, n)
	remaining := 0
	for j := 0; j < n; j++ {
		if in.TaskCount[j][s] <= 0 {
			continue
		}
		best := 0.0
		impossible := false
		for r := 0; r < k; r++ {
			u := in.TaskUse[j][r]
			if u <= 0 {
				continue
			}
			if in.SiteCapacity[s][r] <= 0 {
				impossible = true
				break
			}
			best = math.Max(best, u/in.SiteCapacity[s][r])
		}
		if impossible || best <= 0 {
			continue
		}
		perTask[j] = best
		unfrozen[j] = true
		remaining++
	}

	// tasksAt reports job j's task count at common level t (frozen jobs
	// keep their fixed count).
	tasksAt := func(j int, t float64) float64 {
		if !unfrozen[j] {
			return tasks[j]
		}
		return math.Min(in.TaskCount[j][s], t*in.JobWeight(j)/perTask[j])
	}
	load := func(t float64, r int) float64 {
		var l float64
		for j := 0; j < n; j++ {
			l += tasksAt(j, t) * in.TaskUse[j][r]
		}
		return l
	}
	feasible := func(t float64) bool {
		for r := 0; r < k; r++ {
			if load(t, r) > in.SiteCapacity[s][r]*(1+1e-12)+1e-12 {
				return false
			}
		}
		return true
	}

	tPrev := 0.0
	for round := 0; remaining > 0 && round <= n; round++ {
		hi := tPrev
		for j := 0; j < n; j++ {
			if unfrozen[j] {
				hi = math.Max(hi, in.TaskCount[j][s]*perTask[j]/in.JobWeight(j))
			}
		}
		tstar := hi
		if !feasible(hi) {
			lo := tPrev
			for hi-lo > 1e-11*math.Max(1, hi) {
				mid := (lo + hi) / 2
				if feasible(mid) {
					lo = mid
				} else {
					hi = mid
				}
			}
			tstar = lo
		}
		// Saturated resources at tstar.
		saturated := make([]bool, k)
		for r := 0; r < k; r++ {
			if load(tstar, r) >= in.SiteCapacity[s][r]-1e-9*(1+in.SiteCapacity[s][r]) {
				saturated[r] = true
			}
		}
		frozeAny := false
		for j := 0; j < n; j++ {
			if !unfrozen[j] {
				continue
			}
			x := tasksAt(j, tstar)
			capped := x >= in.TaskCount[j][s]-1e-12*(1+in.TaskCount[j][s])
			blocked := false
			for r := 0; r < k; r++ {
				if saturated[r] && in.TaskUse[j][r] > 0 {
					blocked = true
					break
				}
			}
			if capped || blocked {
				tasks[j] = x
				unfrozen[j] = false
				remaining--
				frozeAny = true
			}
		}
		if !frozeAny {
			// Numerical corner: freeze everyone at the current level.
			for j := 0; j < n; j++ {
				if unfrozen[j] {
					tasks[j] = tasksAt(j, tstar)
					unfrozen[j] = false
					remaining--
				}
			}
		}
		tPrev = tstar
	}
	for j := 0; j < n; j++ {
		alloc.Tasks[j][s] = tasks[j]
	}
}

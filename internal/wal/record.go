// Package wal is the controller's durability layer: a segmented,
// checksummed write-ahead log of mutation batches plus periodic state
// snapshots, giving the serving engine crash recovery without putting a
// disk write on every mutation's critical path.
//
// Layout on disk (one directory per controller):
//
//	wal-<seq>.log     segment: a sequence of framed records
//	state-<seq>.snap  snapshot: one framed record holding the full
//	                  controller state, covering all segments <= seq
//
// Each record is framed as
//
//	[ length uint32 LE | crc uint32 LE | payload ]
//
// where crc is CRC-32C (Castagnoli) over the payload. Replay walks the
// segments newer than the latest valid snapshot in order and stops a
// segment at the first torn (short) or corrupt (checksum-mismatched)
// record: such a record was never acknowledged — its group fsync did not
// complete — so dropping it recovers exactly the acknowledged state.
// Appends after recovery always go to a fresh segment, never into a
// possibly-torn tail, which keeps "skip the bad tail, keep later
// segments" sound.
//
// The Log appends whole batches as single records and fsyncs once per
// batch (group commit); Compact folds everything into a snapshot file and
// deletes the sealed segments. Fsync and write are injectable for fault
// testing (crash-mid-batch, torn writes, full disk).
package wal

import (
	"encoding/binary"
	"hash/crc32"
)

// recordHeader is the framing overhead per record: 4-byte payload length
// plus 4-byte CRC-32C, both little-endian.
const recordHeader = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendRecord frames payload onto dst.
func appendRecord(dst, payload []byte) []byte {
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// scanRecords walks one segment's bytes and returns the payloads of every
// valid record prefix. Scanning stops at the first torn (fewer bytes than
// the frame claims) or corrupt (CRC mismatch) record; skipped reports
// whether anything was dropped. Returned payloads alias data.
func scanRecords(data []byte) (payloads [][]byte, skipped bool) {
	off := 0
	for off < len(data) {
		if len(data)-off < recordHeader {
			return payloads, true // torn header
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > len(data)-off-recordHeader {
			return payloads, true // torn payload
		}
		payload := data[off+recordHeader : off+recordHeader+n]
		if crc32.Checksum(payload, castagnoli) != crc {
			return payloads, true // bit flip or mis-framed garbage
		}
		payloads = append(payloads, payload)
		off += recordHeader + n
	}
	return payloads, false
}

package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string, opts Options) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return l, rec
}

func appendSync(t *testing.T, l *Log, payload string) {
	t.Helper()
	if err := l.Append([]byte(payload)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

func payloadStrings(rec *Recovery) []string {
	out := make([]string, len(rec.Records))
	for i, p := range rec.Records {
		out[i] = string(p)
	}
	return out
}

func TestRecordCodecRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("alpha"), {}, []byte("gamma with a longer payload"),
		bytes.Repeat([]byte{0xAB}, 1024),
	}
	var buf []byte
	for _, p := range payloads {
		buf = appendRecord(buf, p)
	}
	got, skipped := scanRecords(buf)
	if skipped {
		t.Fatal("clean buffer reported skipped records")
	}
	if len(got) != len(payloads) {
		t.Fatalf("decoded %d records, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], payloads[i])
		}
	}
}

func TestScanStopsAtTornRecord(t *testing.T) {
	full := appendRecord(appendRecord(nil, []byte("one")), []byte("two"))
	// Cut the tail mid-way through record two at every possible point.
	firstLen := recordHeader + len("one")
	for cut := firstLen + 1; cut < len(full); cut++ {
		got, skipped := scanRecords(full[:cut])
		if !skipped {
			t.Fatalf("cut at %d: torn tail not reported", cut)
		}
		if len(got) != 1 || string(got[0]) != "one" {
			t.Fatalf("cut at %d: recovered %q, want just \"one\"", cut, got)
		}
	}
}

func TestScanStopsAtBitFlip(t *testing.T) {
	full := appendRecord(appendRecord(nil, []byte("one")), []byte("two"))
	firstLen := recordHeader + len("one")
	// Flip one bit in every byte of record two (header and payload alike):
	// record one must survive, record two must be dropped.
	for i := firstLen; i < len(full); i++ {
		corrupted := append([]byte(nil), full...)
		corrupted[i] ^= 0x40
		got, skipped := scanRecords(corrupted)
		if !skipped {
			t.Fatalf("flip at %d: corruption not reported", i)
		}
		if len(got) != 1 || string(got[0]) != "one" {
			t.Fatalf("flip at %d: recovered %q, want just \"one\"", i, got)
		}
	}
}

func TestOpenEmptyDir(t *testing.T) {
	l, rec := openT(t, t.TempDir(), Options{})
	if rec.State != nil || len(rec.Records) != 0 || rec.SkippedRecords != 0 {
		t.Fatalf("recovery from empty dir = %+v", rec)
	}
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("fresh log has %d segments, want 1", st.Segments)
	}
}

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	for i := 0; i < 5; i++ {
		appendSync(t, l, fmt.Sprintf("rec-%d", i))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, dir, Options{})
	want := []string{"rec-0", "rec-1", "rec-2", "rec-3", "rec-4"}
	if got := payloadStrings(rec); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
	if rec.SkippedRecords != 0 || rec.State != nil {
		t.Fatalf("recovery = %+v, want clean tail and no snapshot", rec)
	}
}

func TestRotationSpansSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record rotates.
	l, _ := openT(t, dir, Options{SegmentBytes: 16})
	for i := 0; i < 6; i++ {
		appendSync(t, l, fmt.Sprintf("record-%d", i))
	}
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, dir, Options{SegmentBytes: 16})
	if len(rec.Records) != 6 {
		t.Fatalf("replayed %d records across segments, want 6", len(rec.Records))
	}
}

func TestTornTailOnlyDropsLastRecord(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	appendSync(t, l, "good-1")
	appendSync(t, l, "good-2")
	appendSync(t, l, "doomed")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the active segment mid-record, as a crash mid-write would.
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, dir, Options{})
	if got := payloadStrings(rec); len(got) != 2 || got[0] != "good-1" || got[1] != "good-2" {
		t.Fatalf("recovered %v, want the two intact records", got)
	}
	if rec.SkippedRecords != 1 {
		t.Fatalf("SkippedRecords = %d, want 1", rec.SkippedRecords)
	}
}

func TestBitFlippedRecordDropped(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	appendSync(t, l, "intact")
	appendSync(t, l, "flipped")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x01 // corrupt the final record's payload
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, dir, Options{})
	if got := payloadStrings(rec); len(got) != 1 || got[0] != "intact" {
		t.Fatalf("recovered %v, want just the intact record", got)
	}
	if rec.SkippedRecords != 1 {
		t.Fatalf("SkippedRecords = %d, want 1", rec.SkippedRecords)
	}
}

func TestCompactFoldsAndTruncates(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	appendSync(t, l, "pre-1")
	appendSync(t, l, "pre-2")
	if err := l.Compact([]byte("state-at-2")); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.RecordsSinceCompact != 0 || st.BytesSinceCompact != 0 || st.Compactions != 1 {
		t.Fatalf("stats after compact = %+v", st)
	}
	if st.Segments != 1 {
		t.Fatalf("segments after compact = %d, want just the fresh one", st.Segments)
	}
	appendSync(t, l, "post-1")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, dir, Options{})
	if string(rec.State) != "state-at-2" {
		t.Fatalf("recovered state %q", rec.State)
	}
	if got := payloadStrings(rec); len(got) != 1 || got[0] != "post-1" {
		t.Fatalf("recovered tail %v, want just post-1", got)
	}
}

func TestCompactTwiceKeepsNewestSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	appendSync(t, l, "a")
	if err := l.Compact([]byte("state-1")); err != nil {
		t.Fatal(err)
	}
	appendSync(t, l, "b")
	if err := l.Compact([]byte("state-2")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, dir, Options{})
	if string(rec.State) != "state-2" || len(rec.Records) != 0 {
		t.Fatalf("recovery = state %q + %v, want state-2 and empty tail", rec.State, payloadStrings(rec))
	}
	// Exactly one snapshot file remains.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, e := range entries {
		if _, ok := parseSeq(e.Name(), snapshotPrefix, snapshotSuffix); ok {
			snaps++
		}
	}
	if snaps != 1 {
		t.Fatalf("%d snapshot files on disk, want 1", snaps)
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	appendSync(t, l, "a")
	if err := l.Compact([]byte("state-old")); err != nil {
		t.Fatal(err)
	}
	appendSync(t, l, "tail-after-old")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a compaction that crashed mid-snapshot-write: a newer
	// snapshot file exists but its record is corrupt (and the segments it
	// would have covered are still on disk).
	bad := appendRecord(nil, []byte("state-new"))
	bad[len(bad)-1] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, snapshotName(2)), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, dir, Options{})
	if string(rec.State) != "state-old" {
		t.Fatalf("fallback state = %q, want state-old", rec.State)
	}
	if rec.SkippedStates != 1 {
		t.Fatalf("SkippedStates = %d, want 1", rec.SkippedStates)
	}
	// The segments after the old snapshot are replayed on top of it.
	if got := payloadStrings(rec); len(got) != 1 || got[0] != "tail-after-old" {
		t.Fatalf("fallback tail = %v, want [tail-after-old]", got)
	}
}

func TestSyncFailpoint(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("simulated fsync failure")
	fail := false
	l, _ := openT(t, dir, Options{
		Sync: func(f *os.File) error {
			if fail {
				return boom
			}
			return f.Sync()
		},
	})
	appendSync(t, l, "ok")
	fail = true
	if err := l.Append([]byte("doomed")); err != nil {
		t.Fatal(err) // append itself does not sync
	}
	if err := l.Sync(); !errors.Is(err, boom) {
		t.Fatalf("Sync error = %v, want failpoint error", err)
	}
}

func TestWriteFailpoint(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("simulated disk full")
	calls := 0
	l, _ := openT(t, dir, Options{
		Write: func(f *os.File, p []byte) (int, error) {
			calls++
			if calls == 2 {
				// Torn write: half the frame lands, then the device dies.
				n, _ := f.Write(p[:len(p)/2])
				return n, boom
			}
			return f.Write(p)
		},
	})
	appendSync(t, l, "ok")
	if err := l.Append([]byte("torn")); !errors.Is(err, boom) {
		t.Fatalf("Append error = %v, want failpoint error", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery keeps the acknowledged record and drops the torn frame.
	_, rec := openT(t, dir, Options{})
	if got := payloadStrings(rec); len(got) != 1 || got[0] != "ok" {
		t.Fatalf("recovered %v, want [ok]", got)
	}
	if rec.SkippedRecords != 1 {
		t.Fatalf("SkippedRecords = %d, want 1", rec.SkippedRecords)
	}
}

func TestAppendAfterClose(t *testing.T) {
	l, _ := openT(t, t.TempDir(), Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after close = %v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after close = %v, want ErrClosed", err)
	}
	if err := l.Compact(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compact after close = %v, want ErrClosed", err)
	}
}

// FuzzWALReplay feeds arbitrary bytes to the segment scanner: it must
// never panic, must only return records that re-frame to a prefix of the
// input, and must report skipped whenever it did not consume everything.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendRecord(nil, []byte("seed")))
	f.Add(appendRecord(appendRecord(nil, []byte("a")), []byte("bb")))
	torn := appendRecord(nil, []byte("torn-record"))
	f.Add(torn[:len(torn)-4])
	flip := appendRecord(nil, []byte("flip"))
	flip[recordHeader] ^= 0x80
	f.Add(flip)
	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, skipped := scanRecords(data)
		var reframed []byte
		for _, p := range payloads {
			reframed = appendRecord(reframed, p)
		}
		if !bytes.HasPrefix(data, reframed) {
			t.Fatalf("decoded records do not re-frame to an input prefix")
		}
		if !skipped && len(reframed) != len(data) {
			t.Fatalf("scan consumed %d of %d bytes without reporting a skip", len(reframed), len(data))
		}
	})
}

package wal

import (
	"encoding/json"
	"fmt"

	"repro/internal/scheduler"
)

// Mutation op kinds, the logical controller mutations the serving engine
// logs. Replaying the same successful mutations in the same order onto
// the same starting state is deterministic, which is all recovery needs.
const (
	OpAddJob    = "add_job"
	OpAddJobs   = "add_jobs"
	OpAddQueue  = "add_queue"
	OpRemoveJob = "remove_job"
	OpProgress  = "progress"
	OpWeight    = "weight"
	OpRestore   = "restore"
	// OpExternalWeight installs the cluster router's Enhanced-AMF
	// weight-sum broadcast (scheduler.SetExternalWeight). Logging it keeps
	// replica replay deterministic: a follower reconstructs the same floors
	// the shard solved under without talking to the router.
	OpExternalWeight = "external_weight"
	// OpSetPolicy switches the active fairness policy
	// (scheduler.SetPolicyName). Logging it makes a runtime policy switch
	// survive recovery: replay re-runs the switch at the same point in the
	// mutation order, so post-switch mutations are re-solved under the
	// policy they were committed under. (Snapshots additionally carry the
	// policy as a header, and Restore refuses a mismatch.)
	OpSetPolicy = "set_policy"
	// OpSetConfig applies one PATCH /v1/config runtime-tuning patch
	// (scheduler.ApplyConfigPatch): policy, approximate-solver routing and
	// phase-reconciliation knobs in one atomic, logged application.
	// Snapshots persist the resulting config, so compaction cannot lose a
	// logged tuning change.
	OpSetConfig = "set_config"
)

// Mutation is one logged controller mutation. Exactly the fields the op
// kind needs are set; arguments are logged as submitted (the scheduler's
// normalization — e.g. weight <= 0 meaning 1 — is deterministic, so
// replaying raw arguments reproduces the applied state).
type Mutation struct {
	Op     string    `json:"op"`
	ID     string    `json:"id,omitempty"`
	Queue  string    `json:"queue,omitempty"`
	Weight float64   `json:"weight,omitempty"`
	Demand []float64 `json:"demand,omitempty"`
	Work   []float64 `json:"work,omitempty"`
	Done   []float64 `json:"done,omitempty"`
	// Jobs carries an atomic bulk registration (OpAddJobs).
	Jobs []scheduler.JobSpec `json:"jobs,omitempty"`
	// State carries a full state replacement (OpRestore).
	State *scheduler.Snapshot `json:"state,omitempty"`
	// Policy carries a fairness-policy switch (OpSetPolicy).
	Policy string `json:"policy,omitempty"`
	// Config carries a runtime-tuning patch (OpSetConfig).
	Config *scheduler.ConfigPatch `json:"config,omitempty"`
}

// Apply replays the mutation onto a controller.
func (m Mutation) Apply(sc *scheduler.Scheduler) error {
	switch m.Op {
	case OpAddJob:
		if m.Queue != "" {
			return sc.AddJobInQueue(m.Queue, m.ID, m.Weight, m.Demand, m.Work)
		}
		return sc.AddJob(m.ID, m.Weight, m.Demand, m.Work)
	case OpAddJobs:
		return sc.AddJobs(m.Jobs)
	case OpAddQueue:
		return sc.AddQueue(m.ID, m.Weight)
	case OpRemoveJob:
		return sc.RemoveJob(m.ID)
	case OpProgress:
		_, err := sc.ReportProgress(m.ID, m.Done)
		return err
	case OpWeight:
		return sc.UpdateWeight(m.ID, m.Weight)
	case OpExternalWeight:
		return sc.SetExternalWeight(m.Weight)
	case OpSetPolicy:
		return sc.SetPolicyName(m.Policy)
	case OpSetConfig:
		if m.Config == nil {
			return fmt.Errorf("wal: set_config mutation without config")
		}
		return sc.ApplyConfigPatch(*m.Config)
	case OpRestore:
		if m.State == nil {
			return fmt.Errorf("wal: restore mutation without state")
		}
		return sc.Restore(*m.State)
	default:
		return fmt.Errorf("wal: unknown mutation op %q", m.Op)
	}
}

// EncodeBatch serializes one committed batch as a record payload.
func EncodeBatch(ms []Mutation) ([]byte, error) {
	return json.Marshal(ms)
}

// DecodeBatch parses a record payload back into its mutations.
func DecodeBatch(payload []byte) ([]Mutation, error) {
	var ms []Mutation
	if err := json.Unmarshal(payload, &ms); err != nil {
		return nil, fmt.Errorf("wal: decoding batch: %w", err)
	}
	return ms, nil
}

// EncodeState serializes a controller snapshot as a snapshot-file
// payload.
func EncodeState(snap scheduler.Snapshot) ([]byte, error) {
	return json.Marshal(snap)
}

// DecodeState parses a snapshot-file payload.
func DecodeState(payload []byte) (scheduler.Snapshot, error) {
	var snap scheduler.Snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return snap, fmt.Errorf("wal: decoding state: %w", err)
	}
	return snap, nil
}

// ReplayStats summarizes a Recovery replayed onto a controller.
type ReplayStats struct {
	// Restored reports whether a snapshot was loaded.
	Restored bool
	// Batches and Mutations count what was replayed from the record tail.
	Batches   int
	Mutations int
	// Failed counts mutations that did not re-apply cleanly. Logged
	// mutations all succeeded once, so anything here indicates a bug or
	// operator surgery on the directory; replay continues past them.
	Failed int
}

// Replay restores the recovered snapshot (if any) into sc and re-applies
// the record tail. The controller should be freshly constructed with the
// deployment's site capacities; configuration is not part of the log.
func (r *Recovery) Replay(sc *scheduler.Scheduler) (ReplayStats, error) {
	var st ReplayStats
	if r.State != nil {
		snap, err := DecodeState(r.State)
		if err != nil {
			return st, err
		}
		if err := sc.Restore(snap); err != nil {
			return st, fmt.Errorf("wal: restoring snapshot: %w", err)
		}
		st.Restored = true
	}
	for _, payload := range r.Records {
		ms, err := DecodeBatch(payload)
		if err != nil {
			// The record passed its checksum, so this is not disk
			// corruption; count it and keep the rest of the tail.
			st.Failed++
			continue
		}
		st.Batches++
		for _, m := range ms {
			st.Mutations++
			if err := m.Apply(sc); err != nil {
				st.Failed++
			}
		}
	}
	return st, nil
}

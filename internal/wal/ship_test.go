package wal

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// shipFollow drains the stream from cur until caught up with the primary's
// head, returning every payload received and the final cursor.
func shipFollow(t *testing.T, c *ShipClient, cur Cursor) (payloads [][]byte, state []byte, end Cursor) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		resp, err := c.Fetch(context.Background(), cur)
		if err != nil {
			t.Fatalf("fetch from %v: %v", cur, err)
		}
		if resp.Reset {
			state = resp.State
			payloads = nil // state replaces everything replayed so far
		}
		payloads = append(payloads, resp.Records...)
		cur = resp.Next
		if !cur.Before(resp.Head) {
			return payloads, state, cur
		}
	}
	t.Fatal("follower never caught up")
	return nil, nil, cur
}

func TestShipStreamsAcknowledgedRecords(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var want []string
	for i := 0; i < 20; i++ {
		p := fmt.Sprintf("batch-%02d-%s", i, "padding-to-force-rotation")
		want = append(want, p)
		if err := l.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(NewShipHandler(l))
	defer srv.Close()
	c := &ShipClient{Base: srv.URL}

	got, state, end := shipFollow(t, c, Cursor{})
	if state != nil {
		t.Fatal("unexpected reset on un-compacted log")
	}
	if len(got) != len(want) {
		t.Fatalf("shipped %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}

	// Resume from the end cursor: new appends only.
	if err := l.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got, _, _ = shipFollow(t, c, end)
	if len(got) != 1 || string(got[0]) != "tail" {
		t.Fatalf("resume shipped %q, want [tail]", got)
	}
}

func TestShipWithholdsUnsyncedBytes(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	if err := l.Append([]byte("acked")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Appended but NOT synced: must not be shipped.
	if err := l.Append([]byte("unacked")); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewShipHandler(l))
	defer srv.Close()
	got, _, end := shipFollow(t, &ShipClient{Base: srv.URL}, Cursor{})
	if len(got) != 1 || string(got[0]) != "acked" {
		t.Fatalf("shipped %q, want only the acked record", got)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got, _, _ = shipFollow(t, &ShipClient{Base: srv.URL}, end)
	if len(got) != 1 || string(got[0]) != "unacked" {
		t.Fatalf("after sync shipped %q, want the second record", got)
	}
}

func TestShipResetAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact([]byte("STATE")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewShipHandler(l))
	defer srv.Close()
	h := &ShipClient{Base: srv.URL}

	// A cursor from before the compaction must be answered with a reset.
	got, state, _ := shipFollow(t, h, Cursor{Segment: 1, Offset: 0})
	if string(state) != "STATE" {
		t.Fatalf("reset state = %q, want STATE", state)
	}
	if len(got) != 1 || string(got[0]) != "new" {
		t.Fatalf("post-reset records = %q, want [new]", got)
	}
}

func TestShipSkipsTornSealedTail(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail of the active segment, then reopen: the torn segment is
	// sealed history for the new Log.
	seg := filepath.Join(dir, segmentName(1))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.SkippedRecords != 1 {
		t.Fatalf("recovery skipped %d, want 1", rec.SkippedRecords)
	}
	if err := l2.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewShipHandler(l2))
	defer srv.Close()
	got, _, _ := shipFollow(t, &ShipClient{Base: srv.URL}, Cursor{})
	if len(got) != 2 || string(got[0]) != "good" || string(got[1]) != "after" {
		t.Fatalf("shipped %q, want [good after] (torn tail dropped)", got)
	}
}

func TestDurableWatermark(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	d0 := l.Durable()
	if d0.Offset != 0 {
		t.Fatalf("fresh log durable offset = %d", d0.Offset)
	}
	if err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := l.Durable(); d != d0 {
		t.Fatalf("append moved durable watermark: %v -> %v", d0, d)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if d := l.Durable(); !d0.Before(d) {
		t.Fatalf("sync did not advance durable watermark: %v", d)
	}
}

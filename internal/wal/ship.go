package wal

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync/atomic"
)

// WAL shipping: the primary→replica replication transport.
//
// A ShipHandler serves a Log's directory over HTTP: followers poll with a
// (segment, offset) cursor and receive the acknowledged record payloads
// appended since, plus the cursor to resume from and the primary's durable
// head (for lag gauges). Only group-commit-acknowledged bytes are served —
// the handler caps the active segment at Log.Durable() — so a follower can
// never apply a batch the primary might lose in a crash.
//
// Segments are immutable once sealed and records are framed + checksummed,
// so the handler reads segment files directly and concurrently with the
// appender: a scan stops cleanly at a torn tail. When the follower's
// cursor has been compacted away, the handler answers with a reset — the
// newest snapshot payload and a cursor just past it — and the follower
// restores instead of replaying.

// Cursor is a resumable replication position: a segment sequence number
// and a byte offset into it. Cursors are totally ordered (segments are
// allocated monotonically; offsets only grow within a segment), giving
// followers their monotonic per-shard sequence.
type Cursor struct {
	Segment uint64 `json:"segment"`
	Offset  int64  `json:"offset"`
}

// Before reports whether c precedes o in the replication order.
func (c Cursor) Before(o Cursor) bool {
	if c.Segment != o.Segment {
		return c.Segment < o.Segment
	}
	return c.Offset < o.Offset
}

func (c Cursor) String() string { return fmt.Sprintf("%d:%d", c.Segment, c.Offset) }

// ShipResponse is one poll's worth of replication stream.
type ShipResponse struct {
	// Reset indicates the follower's cursor was compacted away: State
	// holds the newest snapshot payload, the follower must restore it and
	// resume from Next instead of replaying records.
	Reset bool   `json:"reset,omitempty"`
	State []byte `json:"state,omitempty"`
	// Records are acknowledged batch payloads in append order (empty when
	// the follower is caught up).
	Records [][]byte `json:"records,omitempty"`
	// Next is the cursor to poll with next.
	Next Cursor `json:"next"`
	// Head is the primary's durable watermark; Head minus Next is the
	// follower's replication lag.
	Head Cursor `json:"head"`
}

// ShipStats counts a ShipHandler's activity.
type ShipStats struct {
	Requests       int64
	Resets         int64
	RecordsShipped int64
	BytesShipped   int64
	Errors         int64
}

// ShipHandler serves a Log's replication stream; see NewShipHandler.
type ShipHandler struct {
	log *Log

	requests atomic.Int64
	resets   atomic.Int64
	records  atomic.Int64
	bytes    atomic.Int64
	errors   atomic.Int64
}

// NewShipHandler returns the HTTP handler for l's replication stream.
// GET ?segment=N&offset=M answers with a ShipResponse JSON body.
func NewShipHandler(l *Log) *ShipHandler { return &ShipHandler{log: l} }

// Stats reports cumulative shipping counters.
func (h *ShipHandler) Stats() ShipStats {
	return ShipStats{
		Requests:       h.requests.Load(),
		Resets:         h.resets.Load(),
		RecordsShipped: h.records.Load(),
		BytesShipped:   h.bytes.Load(),
		Errors:         h.errors.Load(),
	}
}

func (h *ShipHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "wal ship: GET only", http.StatusMethodNotAllowed)
		return
	}
	h.requests.Add(1)
	var cur Cursor
	var err error
	if v := r.URL.Query().Get("segment"); v != "" {
		if cur.Segment, err = strconv.ParseUint(v, 10, 64); err != nil {
			http.Error(w, "wal ship: bad segment", http.StatusBadRequest)
			return
		}
	}
	if v := r.URL.Query().Get("offset"); v != "" {
		if cur.Offset, err = strconv.ParseInt(v, 10, 64); err != nil || cur.Offset < 0 {
			http.Error(w, "wal ship: bad offset", http.StatusBadRequest)
			return
		}
	}
	resp, err := h.fetch(cur)
	if err != nil {
		h.errors.Add(1)
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	if resp.Reset {
		h.resets.Add(1)
	}
	h.records.Add(int64(len(resp.Records)))
	for _, p := range resp.Records {
		h.bytes.Add(int64(len(p)))
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// fetch assembles one poll's response for the follower cursor cur.
func (h *ShipHandler) fetch(cur Cursor) (*ShipResponse, error) {
	head := h.log.Durable()
	dir := h.log.Dir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal ship: %w", err)
	}
	segSet := map[uint64]bool{}
	var snaps []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), segmentPrefix, segmentSuffix); ok {
			segSet[seq] = true
		}
		if seq, ok := parseSeq(e.Name(), snapshotPrefix, snapshotSuffix); ok {
			snaps = append(snaps, seq)
		}
	}
	sort.Slice(snaps, func(a, b int) bool { return snaps[a] < snaps[b] })

	// A consumed sealed segment hands over to its successor. Compaction can
	// leave the successor missing; the snapshot path below covers that.
	for cur.Segment < head.Segment && segSet[cur.Segment] {
		size, err := segmentSize(dir, cur.Segment)
		if err != nil {
			return nil, err
		}
		if cur.Offset < size {
			break
		}
		cur = Cursor{Segment: cur.Segment + 1}
	}

	if !segSet[cur.Segment] || cur.Segment > head.Segment {
		// The cursor points at history that no longer exists as segments
		// (fresh follower, or compaction folded it away). Reset from the
		// newest snapshot that covers the cursor.
		for i := len(snaps) - 1; i >= 0; i-- {
			if snaps[i]+1 < cur.Segment {
				break
			}
			state, err := readSnapshotPayload(dir, snaps[i])
			if err != nil {
				continue
			}
			return &ShipResponse{
				Reset: true,
				State: state,
				Next:  Cursor{Segment: snaps[i] + 1},
				Head:  head,
			}, nil
		}
		if cur.Segment == 0 {
			// Fresh follower of a log with no snapshot yet: replay from the
			// oldest segment on disk (the log's full history).
			min := head.Segment
			for seq := range segSet {
				if seq < min {
					min = seq
				}
			}
			cur = Cursor{Segment: min}
		} else {
			return nil, fmt.Errorf("wal ship: cursor %s unservable (no segment, no covering snapshot)", cur)
		}
	}

	data, err := os.ReadFile(filepath.Join(dir, segmentName(cur.Segment)))
	if err != nil {
		return nil, fmt.Errorf("wal ship: %w", err)
	}
	sealed := cur.Segment < head.Segment
	if !sealed && int64(len(data)) > head.Offset {
		// Cap the active segment at the durable watermark: bytes past it
		// may be un-fsynced appends racing with this read.
		data = data[:head.Offset]
	}
	if cur.Offset > int64(len(data)) {
		return nil, fmt.Errorf("wal ship: cursor %s past end of segment (%d bytes)", cur, len(data))
	}
	payloads, skipped := scanRecords(data[cur.Offset:])
	next := cur
	for _, p := range payloads {
		next.Offset += int64(recordHeader + len(p))
	}
	if sealed && (skipped || next.Offset >= int64(len(data))) {
		// A sealed segment is fully consumed once its valid prefix is
		// scanned; a torn tail ends the segment (recovery semantics), so
		// hand over to the successor either way.
		next = Cursor{Segment: cur.Segment + 1}
	}
	// Copy payloads out: they alias the read buffer, which is fine here,
	// but keep the response self-contained.
	recs := make([][]byte, len(payloads))
	for i, p := range payloads {
		recs[i] = append([]byte(nil), p...)
	}
	return &ShipResponse{Records: recs, Next: next, Head: head}, nil
}

func segmentSize(dir string, seq uint64) (int64, error) {
	fi, err := os.Stat(filepath.Join(dir, segmentName(seq)))
	if err != nil {
		return 0, fmt.Errorf("wal ship: %w", err)
	}
	return fi.Size(), nil
}

// readSnapshotPayload reads and validates one snapshot file, returning its
// single record payload.
func readSnapshotPayload(dir string, seq uint64) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(dir, snapshotName(seq)))
	if err != nil {
		return nil, err
	}
	payloads, skipped := scanRecords(data)
	if skipped || len(payloads) != 1 {
		return nil, fmt.Errorf("wal ship: snapshot %d invalid", seq)
	}
	return payloads[0], nil
}

// ShipClient is the follower side of the replication stream: a thin typed
// poller over a ShipHandler's endpoint.
type ShipClient struct {
	// Base is the ship endpoint URL (the handler's mount point).
	Base string
	// HTTP overrides the default client.
	HTTP *http.Client
}

// Fetch polls the primary once from cur.
func (c *ShipClient) Fetch(ctx context.Context, cur Cursor) (*ShipResponse, error) {
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	u := fmt.Sprintf("%s?segment=%s&offset=%s", c.Base,
		url.QueryEscape(strconv.FormatUint(cur.Segment, 10)),
		url.QueryEscape(strconv.FormatInt(cur.Offset, 10)))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("wal ship: %w", err)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("wal ship: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("wal ship: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("wal ship: primary returned %d: %s", resp.StatusCode, body)
	}
	var sr ShipResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		return nil, fmt.Errorf("wal ship: decoding response: %w", err)
	}
	return &sr, nil
}

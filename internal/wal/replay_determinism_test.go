package wal_test

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/scheduler"
	"repro/internal/serve"
	"repro/internal/policy"
	"repro/internal/wal"
	"repro/internal/workload"
)

// engineChurnTarget adapts serve.Engine to workload.ChurnTarget.
type engineChurnTarget struct{ e *serve.Engine }

func (t engineChurnTarget) AddJob(id string, w float64, d, wk []float64) error {
	return t.e.AddJob(context.Background(), id, w, d, wk)
}
func (t engineChurnTarget) RemoveJob(id string) error {
	return t.e.RemoveJob(context.Background(), id)
}
func (t engineChurnTarget) UpdateWeight(id string, w float64) error {
	return t.e.UpdateWeight(context.Background(), id, w)
}
func (t engineChurnTarget) ReportProgress(id string, done []float64) (bool, error) {
	return t.e.ReportProgress(context.Background(), id, done)
}

// TestReplayDeterminism is the correctness foundation of the replica path:
// replaying one WAL segment stream into two fresh schedulers must yield
// snapshots equal to 1e-9·Scale — whatever order group commit batched the
// mutations in, the log pins one deterministic replay.
func TestReplayDeterminism(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		for _, pol := range []policy.Policy{policy.AMF, policy.EnhancedAMF} {
			trial, pol := trial, pol
			t.Run(fmt.Sprintf("%s/trial%d", pol.Name(), trial), func(t *testing.T) {
				t.Parallel()
				churn := workload.GenerateChurn(workload.ChurnConfig{
					Sparse: workload.SparseConfig{
						Components:        6,
						JobsPerComponent:  4,
						SitesPerComponent: 3,
					},
					Mutations: 60,
					Seed:      uint64(1000*trial + 7),
				})
				caps := churn.Inst.SiteCapacity

				dir := filepath.Join(t.TempDir(), "wal")
				log, rec, err := wal.Open(dir, wal.Options{SegmentBytes: 4096})
				if err != nil {
					t.Fatal(err)
				}
				if len(rec.Records) != 0 || rec.State != nil {
					t.Fatal("fresh dir recovered state")
				}
				sc, err := scheduler.New(scheduler.Config{SiteCapacity: caps, Policy: pol})
				if err != nil {
					t.Fatal(err)
				}
				eng, err := serve.New(sc, serve.Config{Log: log, MaxBatch: 8})
				if err != nil {
					t.Fatal(err)
				}
				target := engineChurnTarget{eng}
				if err := churn.Populate(target); err != nil {
					t.Fatal(err)
				}
				ctx := context.Background()
				for i, op := range churn.Ops {
					if err := op.Apply(target); err != nil {
						t.Fatalf("op %d: %v", i, err)
					}
					// Interleave weight-sum broadcasts so OpExternalWeight
					// replay is part of the property.
					if i%17 == 5 {
						if err := eng.SetExternalWeight(ctx, float64(i%5)); err != nil {
							t.Fatal(err)
						}
					}
				}
				want := eng.Current()
				// Crash (odd trials) leaves the record tail; Close (even)
				// folds everything into a final snapshot. Replay must be
				// deterministic either way.
				if trial%2 == 1 {
					eng.Crash()
				} else {
					if err := eng.Close(); err != nil {
						t.Fatal(err)
					}
				}

				_, rec2, err := wal.Open(dir, wal.Options{})
				if err != nil {
					t.Fatal(err)
				}
				replayed := make([]*scheduler.Scheduler, 2)
				for k := range replayed {
					fresh, err := scheduler.New(scheduler.Config{SiteCapacity: caps, Policy: pol})
					if err != nil {
						t.Fatal(err)
					}
					st, err := rec2.Replay(fresh)
					if err != nil {
						t.Fatal(err)
					}
					if st.Failed != 0 {
						t.Fatalf("replay %d: %d mutations failed", k, st.Failed)
					}
					replayed[k] = fresh
				}

				tol := 1e-9 * churn.Inst.Scale()
				a0, err := replayed[0].Allocation()
				if err != nil {
					t.Fatal(err)
				}
				a1, err := replayed[1].Allocation()
				if err != nil {
					t.Fatal(err)
				}
				diffAllocs(t, "replay0 vs replay1", a0, a1, tol)
				diffAllocs(t, "replay vs engine", a0, want.Shares, tol)
				if w0, w1 := replayed[0].ExternalWeight(), replayed[1].ExternalWeight(); w0 != w1 {
					t.Fatalf("external weight diverged: %g vs %g", w0, w1)
				}
			})
		}
	}
}

func diffAllocs(t *testing.T, what string, a, b map[string][]float64, tol float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d jobs", what, len(a), len(b))
	}
	for id, ra := range a {
		rb, ok := b[id]
		if !ok {
			t.Fatalf("%s: job %q missing on one side", what, id)
		}
		for s := range ra {
			if math.Abs(ra[s]-rb[s]) > tol {
				t.Fatalf("%s: job %q site %d: %g vs %g (tol %g)",
					what, id, s, ra[s], rb[s], tol)
			}
		}
	}
}

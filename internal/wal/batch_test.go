package wal

import (
	"testing"

	"repro/internal/scheduler"
)

func newScheduler(t *testing.T) *scheduler.Scheduler {
	t.Helper()
	sc, err := scheduler.New(scheduler.Config{SiteCapacity: []float64{4, 4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestMutationApplyAllOps(t *testing.T) {
	sc := newScheduler(t)
	muts := []Mutation{
		{Op: OpAddQueue, ID: "prod", Weight: 2},
		{Op: OpAddJob, ID: "a", Weight: 1, Demand: []float64{1, 1, 0}},
		{Op: OpAddJob, ID: "q", Queue: "prod", Weight: 1, Demand: []float64{0, 1, 1}},
		{Op: OpAddJobs, Jobs: []scheduler.JobSpec{
			{ID: "b1", Demand: []float64{1, 0, 0}},
			{ID: "b2", Demand: []float64{0, 0, 1}},
		}},
		{Op: OpWeight, ID: "a", Weight: 3},
		{Op: OpProgress, ID: "a", Done: []float64{0.5, 0, 0}},
		{Op: OpRemoveJob, ID: "b1"},
	}
	for i, m := range muts {
		if err := m.Apply(sc); err != nil {
			t.Fatalf("mutation %d (%s): %v", i, m.Op, err)
		}
	}
	if st := sc.Stats(); st.Jobs != 3 {
		t.Fatalf("jobs after replay = %d, want 3", st.Jobs)
	}
	if q, err := sc.QueueOf("q"); err != nil || q != "prod" {
		t.Fatalf("QueueOf(q) = %q, %v", q, err)
	}
}

func TestMutationApplyUnknownOp(t *testing.T) {
	sc := newScheduler(t)
	if err := (Mutation{Op: "bogus"}).Apply(sc); err == nil {
		t.Fatal("unknown op applied cleanly")
	}
	if err := (Mutation{Op: OpRestore}).Apply(sc); err == nil {
		t.Fatal("restore without state applied cleanly")
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	in := []Mutation{
		{Op: OpAddJob, ID: "a", Weight: 2, Demand: []float64{1, 0, 1}, Work: []float64{5, 0, 5}},
		{Op: OpProgress, ID: "a", Done: []float64{1, 0, 0}},
	}
	payload, err := EncodeBatch(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].ID != "a" || out[0].Weight != 2 || out[1].Op != OpProgress {
		t.Fatalf("round trip = %+v", out)
	}
	if _, err := DecodeBatch([]byte("{not json")); err == nil {
		t.Fatal("garbage batch decoded")
	}
}

func TestRecoveryReplayEndToEnd(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Base state folded into a snapshot, then a mutation tail.
	base := newScheduler(t)
	if err := base.AddJob("base", 1, []float64{1, 1, 1}, nil); err != nil {
		t.Fatal(err)
	}
	state, err := EncodeState(base.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(state); err != nil {
		t.Fatal(err)
	}
	tail := [][]Mutation{
		{{Op: OpAddJob, ID: "t1", Weight: 1, Demand: []float64{2, 0, 0}}},
		{{Op: OpAddJob, ID: "t2", Weight: 1, Demand: []float64{0, 2, 0}},
			{Op: OpWeight, ID: "base", Weight: 4}},
	}
	for _, batch := range tail {
		payload, err := EncodeBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc := newScheduler(t)
	st, err := rec.Replay(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Restored || st.Batches != 2 || st.Mutations != 3 || st.Failed != 0 {
		t.Fatalf("replay stats = %+v", st)
	}
	if got := sc.Stats().Jobs; got != 3 {
		t.Fatalf("jobs after replay = %d, want 3", got)
	}
	snap := sc.Snapshot()
	for _, j := range snap.Jobs {
		if j.ID == "base" && j.Weight != 4 {
			t.Fatalf("base weight = %g, want the tail's update to 4", j.Weight)
		}
	}
}

package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrClosed is returned for operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Options parameterizes a Log.
type Options struct {
	// SegmentBytes rotates the active segment once it grows past this many
	// bytes (default 8 MiB). Rotation happens between records; a record is
	// never split across segments.
	SegmentBytes int64
	// Sync overrides the fsync of the active segment — the failpoint used
	// by crash tests to fail a group commit. Nil means (*os.File).Sync.
	Sync func(*os.File) error
	// Write overrides writes to the active segment — the failpoint used by
	// fault tests to simulate torn writes and full disks. Nil means
	// (*os.File).Write.
	Write func(f *os.File, p []byte) (int, error)
}

// Stats is a point-in-time view of the log's depth, the engine's
// compaction trigger and /v1/metrics feed.
type Stats struct {
	// Segments counts live segment files, including the active one.
	Segments int
	// ActiveSegmentBytes is the size of the segment being appended to.
	ActiveSegmentBytes int64
	// RecordsSinceCompact / BytesSinceCompact measure the replay debt a
	// crash would incur right now.
	RecordsSinceCompact int64
	BytesSinceCompact   int64
	// Compactions counts Compact calls over this Log's lifetime.
	Compactions int64
}

// Recovery is what Open found on disk: the latest valid snapshot (if any)
// and every acknowledged record appended after it, in order.
type Recovery struct {
	// State is the payload of the newest valid snapshot file, nil when the
	// directory holds none.
	State []byte
	// Records are the payloads of the records after the snapshot, oldest
	// first.
	Records [][]byte
	// SkippedRecords counts torn or corrupt records dropped during replay
	// (at most one per segment: scanning stops a segment at the first).
	SkippedRecords int
	// SkippedStates counts snapshot files that failed validation.
	SkippedStates int
	// Segments counts segment files scanned.
	Segments int
}

// Log is an append-only, segmented record log. All methods are safe for
// concurrent use, though the serving engine drives it from a single
// committer goroutine.
type Log struct {
	dir  string
	opts Options

	mu          sync.Mutex
	f           *os.File
	seq         uint64 // active segment sequence number
	activeBytes int64
	synced      int64 // bytes of the active segment covered by an fsync
	segments    int   // live segment files, including active
	records     int64
	bytes       int64
	compactions int64
	closed      bool
	observer    func(op string, d time.Duration)
}

// SetObserver installs (or, with nil, removes) a latency observer invoked
// after every Append ("append"), Sync ("sync"), and Compact ("compact")
// with the operation's wall time, including failed attempts. The observer
// runs with the log's mutex held, so it must be cheap and must not call
// back into the Log.
func (l *Log) SetObserver(fn func(op string, d time.Duration)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.observer = fn
}

// observe reports one operation's latency to the observer, if installed.
// Callers hold l.mu.
func (l *Log) observe(op string, start time.Time) {
	if l.observer != nil {
		l.observer(op, time.Since(start))
	}
}

const (
	segmentPrefix  = "wal-"
	segmentSuffix  = ".log"
	snapshotPrefix = "state-"
	snapshotSuffix = ".snap"
)

func segmentName(seq uint64) string {
	return fmt.Sprintf("%s%016d%s", segmentPrefix, seq, segmentSuffix)
}
func snapshotName(seq uint64) string {
	return fmt.Sprintf("%s%016d%s", snapshotPrefix, seq, snapshotSuffix)
}

// parseSeq extracts the sequence number from a segment or snapshot file
// name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	return n, err == nil
}

// Open recovers whatever the directory holds and starts a fresh segment
// for new appends. The returned Recovery carries the latest valid
// snapshot plus the acknowledged record tail; the caller replays it into
// its state machine before appending.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 8 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	var segs, snaps []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), segmentPrefix, segmentSuffix); ok {
			segs = append(segs, seq)
		}
		if seq, ok := parseSeq(e.Name(), snapshotPrefix, snapshotSuffix); ok {
			snaps = append(snaps, seq)
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a] < segs[b] })
	sort.Slice(snaps, func(a, b int) bool { return snaps[a] < snaps[b] })

	rec := &Recovery{}
	// Newest valid snapshot wins; corrupt ones fall back to older.
	snapSeq := uint64(0)
	haveSnap := false
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(dir, snapshotName(snaps[i])))
		if err != nil {
			rec.SkippedStates++
			continue
		}
		payloads, skipped := scanRecords(data)
		if skipped || len(payloads) != 1 {
			rec.SkippedStates++
			continue
		}
		rec.State = payloads[0]
		snapSeq, haveSnap = snaps[i], true
		break
	}
	// Replay segments newer than the snapshot, oldest first. A torn or
	// corrupt record ends its own segment only: later segments were opened
	// after a recovery that already skipped that tail, so their records
	// are consistent continuations.
	maxSeq := snapSeq
	for _, seq := range segs {
		if seq > maxSeq {
			maxSeq = seq
		}
		if haveSnap && seq <= snapSeq {
			continue // folded into the snapshot
		}
		data, err := os.ReadFile(filepath.Join(dir, segmentName(seq)))
		if err != nil {
			return nil, nil, fmt.Errorf("wal: reading segment %d: %w", seq, err)
		}
		rec.Segments++
		payloads, skipped := scanRecords(data)
		rec.Records = append(rec.Records, payloads...)
		if skipped {
			rec.SkippedRecords++
		}
	}

	l := &Log{dir: dir, opts: opts, seq: maxSeq + 1, segments: len(segs)}
	if err := l.createSegmentLocked(); err != nil {
		return nil, nil, err
	}
	return l, rec, nil
}

// createSegmentLocked opens the active segment file l.seq and fsyncs the
// directory so the new name survives a crash.
func (l *Log) createSegmentLocked() error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(l.seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.activeBytes = 0
	l.synced = 0
	l.segments++
	return l.syncDir()
}

func (l *Log) syncDir() error {
	d, err := os.Open(l.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: syncing dir: %w", err)
	}
	return nil
}

func (l *Log) write(p []byte) (int, error) {
	if l.opts.Write != nil {
		return l.opts.Write(l.f, p)
	}
	return l.f.Write(p)
}

func (l *Log) sync() error {
	if l.opts.Sync != nil {
		return l.opts.Sync(l.f)
	}
	return l.f.Sync()
}

// Append frames payload as one record onto the active segment, rotating
// first if the segment is full. It does NOT fsync — callers group-commit
// by following a batch of appends with one Sync.
func (l *Log) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	defer l.observe("append", time.Now())
	need := int64(recordHeader + len(payload))
	if l.activeBytes > 0 && l.activeBytes+need > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	buf := appendRecord(make([]byte, 0, need), payload)
	n, err := l.write(buf)
	l.activeBytes += int64(n)
	l.bytes += int64(n)
	if err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.records++
	return nil
}

// Sync fsyncs the active segment: the group-commit barrier. A batch is
// durable — and may be acknowledged — only after Sync returns nil.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	defer l.observe("sync", time.Now())
	if err := l.sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.synced = l.activeBytes
	return nil
}

// Durable reports the group-commit watermark: the active segment and the
// number of its bytes covered by a successful fsync. Everything at or
// before this cursor was acknowledged; the WAL shipper never streams past
// it, so a follower can never apply a batch the primary might lose.
func (l *Log) Durable() Cursor {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Cursor{Segment: l.seq, Offset: l.synced}
}

// rotateLocked seals the active segment (fsync + close) and opens the
// next one.
func (l *Log) rotateLocked() error {
	if err := l.sync(); err != nil {
		return fmt.Errorf("wal: sealing segment %d: %w", l.seq, err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: sealing segment %d: %w", l.seq, err)
	}
	l.seq++
	return l.createSegmentLocked()
}

// Compact folds the log into a snapshot: it seals the active segment,
// durably writes state as a snapshot file covering everything up to that
// segment, deletes the now-redundant segments and older snapshots, and
// opens a fresh segment. If the crash interleaves anywhere, recovery
// still sees either the old snapshot plus all segments or the new
// snapshot plus none — never a gap.
func (l *Log) Compact(state []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	defer l.observe("compact", time.Now())
	sealed := l.seq
	if err := l.sync(); err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	// Snapshot before deleting anything: tmp + rename + dir fsync.
	tmp := filepath.Join(l.dir, snapshotName(sealed)+".tmp")
	if err := os.WriteFile(tmp, appendRecord(nil, state), 0o644); err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := syncFile(tmp); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapshotName(sealed))); err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := l.syncDir(); err != nil {
		return err
	}
	// Everything at or before the sealed segment is now redundant.
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), segmentPrefix, segmentSuffix); ok && seq <= sealed {
			if os.Remove(filepath.Join(l.dir, e.Name())) == nil {
				l.segments--
			}
		}
		if seq, ok := parseSeq(e.Name(), snapshotPrefix, snapshotSuffix); ok && seq < sealed {
			_ = os.Remove(filepath.Join(l.dir, e.Name()))
		}
	}
	l.seq = sealed + 1
	l.records, l.bytes = 0, 0
	l.compactions++
	return l.createSegmentLocked()
}

func syncFile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Stats reports the log's current depth.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Segments:            l.segments,
		ActiveSegmentBytes:  l.activeBytes,
		RecordsSinceCompact: l.records,
		BytesSinceCompact:   l.bytes,
		Compactions:         l.compactions,
	}
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Close fsyncs and closes the active segment. Further operations return
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: close: %w", err)
	}
	return l.f.Close()
}

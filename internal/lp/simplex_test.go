package lp

import (
	"math"
	"math/rand"
	"testing"
)

func feq(a, b float64) bool { return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b)) }

func TestMaximizeBasic(t *testing.T) {
	// max 3x + 2y s.t. x+y <= 4, x <= 2 -> x=2, y=2, val=10.
	x, val, st := Maximize(
		[]float64{3, 2},
		[][]float64{{1, 1}, {1, 0}},
		[]float64{4, 2},
	)
	if st != Optimal {
		t.Fatalf("status %v", st)
	}
	if !feq(val, 10) || !feq(x[0], 2) || !feq(x[1], 2) {
		t.Fatalf("x=%v val=%g", x, val)
	}
}

func TestMaximizeClassic(t *testing.T) {
	// The textbook LP: max 5x + 4y s.t. 6x+4y <= 24, x+2y <= 6.
	// Optimum at x=3, y=1.5, val=21.
	x, val, st := Maximize(
		[]float64{5, 4},
		[][]float64{{6, 4}, {1, 2}},
		[]float64{24, 6},
	)
	if st != Optimal || !feq(val, 21) {
		t.Fatalf("x=%v val=%g st=%v", x, val, st)
	}
}

func TestUnbounded(t *testing.T) {
	_, _, st := Maximize([]float64{1}, nil, nil)
	if st != Unbounded {
		t.Fatalf("status %v, want unbounded", st)
	}
	// y bounded, x not.
	_, _, st = Maximize([]float64{1, 1}, [][]float64{{0, 1}}, []float64{5})
	if st != Unbounded {
		t.Fatalf("status %v, want unbounded", st)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= -1 with x >= 0.
	_, _, st := Maximize([]float64{1}, [][]float64{{1}}, []float64{-1})
	if st != Infeasible {
		t.Fatalf("status %v, want infeasible", st)
	}
	// x + y = 5 and x + y <= 3.
	_, ok := Feasible(2,
		[][]float64{{1, 1}}, []float64{3},
		[][]float64{{1, 1}}, []float64{5})
	if ok {
		t.Fatal("infeasible system accepted")
	}
}

func TestNegativeRHS(t *testing.T) {
	// -x <= -2 means x >= 2; max -x s.t. x >= 2, x <= 5 -> x=2.
	x, val, st := Maximize(
		[]float64{-1},
		[][]float64{{-1}, {1}},
		[]float64{-2, 5},
	)
	if st != Optimal || !feq(x[0], 2) || !feq(val, -2) {
		t.Fatalf("x=%v val=%g st=%v", x, val, st)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// max x + y s.t. x + y = 3, x <= 1 -> x=1, y=2 (any split; val=3).
	x, val, st := Solve(Problem{
		C:       []float64{1, 1},
		A:       [][]float64{{1, 0}},
		B:       []float64{1},
		E:       [][]float64{{1, 1}},
		F:       []float64{3},
		NumVars: 2,
	})
	if st != Optimal || !feq(val, 3) {
		t.Fatalf("x=%v val=%g st=%v", x, val, st)
	}
	if x[0] > 1+1e-9 {
		t.Fatalf("x=%v violates x0<=1", x)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// Same equality twice must not break phase 1.
	x, ok := Feasible(2,
		nil, nil,
		[][]float64{{1, 1}, {1, 1}}, []float64{2, 2})
	if !ok {
		t.Fatal("redundant system rejected")
	}
	if !feq(x[0]+x[1], 2) {
		t.Fatalf("x=%v", x)
	}
}

func TestFeasiblePoint(t *testing.T) {
	x, ok := Feasible(3,
		[][]float64{{1, 1, 1}}, []float64{10},
		[][]float64{{1, 0, 0}}, []float64{4})
	if !ok {
		t.Fatal("feasible system rejected")
	}
	if !feq(x[0], 4) || x[1] < -1e-9 || x[2] < -1e-9 || x[0]+x[1]+x[2] > 10+1e-9 {
		t.Fatalf("x=%v", x)
	}
}

func TestDegenerateZeroVars(t *testing.T) {
	x, _, st := Solve(Problem{NumVars: 0})
	if st != Optimal || len(x) != 0 {
		t.Fatalf("x=%v st=%v", x, st)
	}
}

func TestTransportationLP(t *testing.T) {
	// Two jobs to two sites, one resource: matches a max-flow instance.
	// Variables: x00 x01 x10 x11 (job,site).
	// max sum(x) s.t. per-site capacity 1, per-job cap 1.5.
	x, val, st := Maximize(
		[]float64{1, 1, 1, 1},
		[][]float64{
			{1, 0, 1, 0}, // site 0
			{0, 1, 0, 1}, // site 1
			{1, 1, 0, 0}, // job 0 demand
			{0, 0, 1, 1}, // job 1 demand
		},
		[]float64{1, 1, 1.5, 1.5},
	)
	if st != Optimal || !feq(val, 2) {
		t.Fatalf("x=%v val=%g st=%v", x, val, st)
	}
}

func TestRandomizedFeasibilityAndOptimality(t *testing.T) {
	// Properties: the returned solution satisfies all constraints, and no
	// random feasible point beats the optimum.
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(5)
		mA := 1 + rng.Intn(5)
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.Float64()*4 - 1
		}
		a := make([][]float64, mA)
		b := make([]float64, mA)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.Float64() // non-negative rows keep it bounded
			}
			b[i] = rng.Float64() * 5
		}
		// Add a box constraint per variable so the LP is surely bounded.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			a = append(a, row)
			b = append(b, 1+rng.Float64()*5)
		}
		x, val, st := Maximize(c, a, b)
		if st != Optimal {
			t.Fatalf("trial %d: status %v", trial, st)
		}
		for i := range a {
			var lhs float64
			for j := range x {
				lhs += a[i][j] * x[j]
			}
			if lhs > b[i]+1e-6 {
				t.Fatalf("trial %d: constraint %d violated: %g > %g", trial, i, lhs, b[i])
			}
		}
		for j := range x {
			if x[j] < -1e-9 {
				t.Fatalf("trial %d: negative x[%d]=%g", trial, j, x[j])
			}
		}
		// Sample random feasible points; none may beat val.
		for k := 0; k < 50; k++ {
			y := make([]float64, n)
			for j := range y {
				y[j] = rng.Float64() * 2
			}
			ok := true
			for i := range a {
				var lhs float64
				for j := range y {
					lhs += a[i][j] * y[j]
				}
				if lhs > b[i] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			var obj float64
			for j := range y {
				obj += c[j] * y[j]
			}
			if obj > val+1e-6*(1+math.Abs(val)) {
				t.Fatalf("trial %d: random point beats optimum: %g > %g", trial, obj, val)
			}
		}
	}
}

func TestDegenerateCycleGuard(t *testing.T) {
	// A classic degenerate LP (Beale's example rescaled): Bland's rule
	// must terminate.
	c := []float64{0.75, -150, 0.02, -6}
	a := [][]float64{
		{0.25, -60, -0.04, 9},
		{0.5, -90, -0.02, 3},
		{0, 0, 1, 0},
	}
	b := []float64{0, 0, 1}
	x, val, st := Maximize(c, a, b)
	if st != Optimal {
		t.Fatalf("status %v", st)
	}
	if !feq(val, 0.05) {
		t.Fatalf("x=%v val=%g, want 1/20", x, val)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || Status(9).String() == "" {
		t.Fatal("status strings")
	}
}

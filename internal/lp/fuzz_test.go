package lp

import (
	"math"
	"testing"
)

// FuzzSimplex derives a small LP from the fuzz input and checks the
// solver's contract on it: never panic, and when it reports Optimal the
// returned point must actually satisfy every constraint (with x >= 0)
// and reproduce the reported objective value. Because every variable
// gets an explicit box constraint x_i <= box_i, the feasible region is
// bounded, so Unbounded is also ruled out.
func FuzzSimplex(f *testing.F) {
	f.Add([]byte{2, 1, 120, 130, 10, 20, 200, 1, 1, 50})
	f.Add([]byte{1, 0, 255})
	f.Add([]byte{3, 2, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14})
	f.Add([]byte{4, 3, 0, 0, 0, 0, 128, 128, 128, 128, 64, 64, 64, 64, 32, 32, 32, 32, 9, 9, 9, 9, 200, 100, 50, 25})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		// Byte stream layout: numVars, numIneq, then coefficients. Each
		// byte b maps to a small signed value (b-100)/10 in [-10, 15.5];
		// missing bytes read as zero so short inputs still shape an LP.
		n := int(data[0]%4) + 1
		mi := int(data[1] % 4)
		pos := 2
		next := func() float64 {
			if pos >= len(data) {
				return 0
			}
			v := (float64(data[pos]) - 100) / 10
			pos++
			return v
		}

		p := Problem{NumVars: n, C: make([]float64, n)}
		for i := range p.C {
			p.C[i] = next()
		}
		for k := 0; k < mi; k++ {
			row := make([]float64, n)
			for i := range row {
				row[i] = next()
			}
			p.A = append(p.A, row)
			p.B = append(p.B, next())
		}
		// Box every variable so the region is bounded whatever the fuzzer
		// chose above. Bounds are strictly positive, so x = 0 is feasible
		// for the boxes themselves (the fuzzed rows may still exclude it).
		box := make([]float64, n)
		for i := 0; i < n; i++ {
			box[i] = 0.5 + math.Abs(next())
			row := make([]float64, n)
			row[i] = 1
			p.A = append(p.A, row)
			p.B = append(p.B, box[i])
		}

		x, obj, st := Solve(p)
		switch st {
		case Unbounded:
			t.Fatalf("boxed LP reported unbounded: %+v", p)
		case Infeasible:
			return
		}
		if len(x) != n {
			t.Fatalf("Optimal with %d vars, want %d", len(x), n)
		}
		const tol = 1e-6
		got := 0.0
		for i, xi := range x {
			if xi < -tol {
				t.Fatalf("x[%d] = %g < 0", i, xi)
			}
			if xi > box[i]+tol {
				t.Fatalf("x[%d] = %g exceeds box %g", i, xi, box[i])
			}
			got += p.C[i] * xi
		}
		for k, row := range p.A {
			lhs := 0.0
			for i, c := range row {
				lhs += c * x[i]
			}
			if lhs > p.B[k]+tol {
				t.Fatalf("constraint %d violated: %g > %g at x=%v", k, lhs, p.B[k], x)
			}
		}
		if math.Abs(got-obj) > tol*(1+math.Abs(obj)) {
			t.Fatalf("reported objective %g, recomputed %g at x=%v", obj, got, x)
		}
	})
}

// Package lp implements a small dense two-phase simplex solver for linear
// programs in the form
//
//	maximize c·x   subject to   A x ≤ b,  E x = f,  x ≥ 0.
//
// It is the feasibility oracle behind the multi-resource (DRF-style)
// extension of the AMF allocator, where per-site vector capacities make
// the feasible region a general polytope rather than a flow polytope.
// Pivoting uses Bland's rule, so the solver cannot cycle; it is built for
// correctness and the moderate sizes of this repository's experiments
// (hundreds of variables), not for industrial scale.
package lp

import (
	"fmt"
	"math"
)

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective can grow without limit.
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

const eps = 1e-9

// Problem is a linear program in inequality/equality form.
type Problem struct {
	// C is the objective (maximized). May be nil for pure feasibility.
	C []float64
	// A, B are the inequality constraints A x <= B.
	A [][]float64
	B []float64
	// E, F are the equality constraints E x = F.
	E [][]float64
	F []float64
	// NumVars is the number of variables (len of each row).
	NumVars int
}

// Solve runs two-phase simplex. On Optimal it returns the solution vector
// and objective value.
func Solve(p Problem) ([]float64, float64, Status) {
	n := p.NumVars
	if n <= 0 {
		// Degenerate: only constant constraints.
		for i, bi := range p.B {
			_ = i
			if bi < -eps {
				return nil, 0, Infeasible
			}
		}
		for _, fi := range p.F {
			if math.Abs(fi) > eps {
				return nil, 0, Infeasible
			}
		}
		return []float64{}, 0, Optimal
	}
	mIneq := len(p.A)
	mEq := len(p.E)
	m := mIneq + mEq

	// Column layout: x (n) | slacks (mIneq) | artificials (<= m).
	// Every row is normalized to b >= 0 before adding slack/artificial.
	type rowSpec struct {
		coeff []float64
		b     float64
		slack int // column of the slack (+1 coefficient), or -1
		art   int // column of the artificial, or -1
	}
	rows := make([]rowSpec, 0, m)
	col := n
	slackCols := make([]int, mIneq)
	for i := 0; i < mIneq; i++ {
		slackCols[i] = col
		col++
	}
	artStart := col
	numArt := 0

	addRow := func(coeff []float64, b float64, slackCol int) {
		sign := 1.0
		if b < 0 {
			sign = -1
			b = -b
		}
		r := rowSpec{coeff: make([]float64, n), b: b, slack: -1, art: -1}
		for j := 0; j < n; j++ {
			r.coeff[j] = sign * coeff[j]
		}
		if slackCol >= 0 {
			r.slack = slackCol
		}
		// A slack with +1 coefficient can serve as the initial basic
		// variable; a flipped slack (-1) or an equality needs an
		// artificial.
		if slackCol < 0 || sign < 0 {
			r.art = artStart + numArt
			numArt++
		}
		rows = append(rows, r)
		_ = sign
	}
	for i := 0; i < mIneq; i++ {
		if len(p.A[i]) != n {
			panic(fmt.Sprintf("lp: row %d has %d coefficients, want %d", i, len(p.A[i]), n))
		}
		addRow(p.A[i], p.B[i], slackCols[i])
	}
	for i := 0; i < mEq; i++ {
		if len(p.E[i]) != n {
			panic(fmt.Sprintf("lp: eq row %d has %d coefficients, want %d", i, len(p.E[i]), n))
		}
		addRow(p.E[i], p.F[i], -1)
	}

	totalCols := artStart + numArt
	// Tableau: m rows x (totalCols + 1); last column is b.
	tab := make([][]float64, m)
	basis := make([]int, m)
	for i, r := range rows {
		tab[i] = make([]float64, totalCols+1)
		copy(tab[i], r.coeff)
		if r.slack >= 0 {
			// slack sign: +1 normally; if the row was flipped the slack
			// coefficient flips too.
			s := 1.0
			// Detect flip: recompute from original b sign.
			if i < mIneq && p.B[i] < 0 {
				s = -1
			}
			tab[i][r.slack] = s
		}
		if r.art >= 0 {
			tab[i][r.art] = 1
			basis[i] = r.art
		} else {
			basis[i] = r.slack
		}
		tab[i][totalCols] = r.b
	}

	// Phase 1: minimize the sum of artificials (maximize its negation).
	if numArt > 0 {
		obj := make([]float64, totalCols)
		for c := artStart; c < totalCols; c++ {
			obj[c] = -1 // maximize -(sum of artificials)
		}
		val, st := simplex(tab, basis, obj, totalCols)
		if st == Unbounded {
			// Cannot happen: phase-1 objective is bounded above by 0.
			return nil, 0, Infeasible
		}
		if val < -1e-7 {
			return nil, 0, Infeasible
		}
		// Pivot any artificial still in the basis out (or recognise the
		// row as redundant).
		for i := 0; i < m; i++ {
			if basis[i] < artStart {
				continue
			}
			pivoted := false
			for c := 0; c < artStart; c++ {
				if math.Abs(tab[i][c]) > eps {
					pivot(tab, basis, i, c, totalCols)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant constraint: zero the row so it cannot bind.
				for c := 0; c <= totalCols; c++ {
					tab[i][c] = 0
				}
			}
		}
		// Remove artificial columns from consideration by zeroing them.
		for i := 0; i < m; i++ {
			for c := artStart; c < totalCols; c++ {
				tab[i][c] = 0
			}
		}
	}

	// Phase 2: the real objective over x (and zero on slacks).
	obj := make([]float64, totalCols)
	if p.C != nil {
		if len(p.C) != n {
			panic(fmt.Sprintf("lp: objective has %d coefficients, want %d", len(p.C), n))
		}
		copy(obj, p.C)
	}
	val, st := simplex(tab, basis, obj, totalCols)
	if st == Unbounded {
		return nil, 0, Unbounded
	}
	x := make([]float64, n)
	for i, b := range basis {
		if b >= 0 && b < n {
			x[b] = tab[i][totalCols]
		}
	}
	return x, val, Optimal
}

// simplex maximizes obj over the current tableau using Bland's rule.
// It returns the objective value at the final basis.
func simplex(tab [][]float64, basis []int, obj []float64, rhs int) (float64, Status) {
	m := len(tab)
	// Reduced costs: z_j - c_j computed on demand from the basis.
	for iter := 0; ; iter++ {
		if iter > 50000 {
			// Bland's rule precludes cycling; this guards against bugs.
			panic("lp: simplex iteration limit")
		}
		// cost[j] = c_j - sum_i c_B(i) * tab[i][j]
		entering := -1
		for j := 0; j < rhs; j++ {
			red := obj[j]
			for i := 0; i < m; i++ {
				if basis[i] >= 0 {
					red -= obj[basis[i]] * tab[i][j]
				}
			}
			if red > eps {
				entering = j // Bland: first improving column
				break
			}
		}
		if entering < 0 {
			var val float64
			for i := 0; i < m; i++ {
				if basis[i] >= 0 {
					val += obj[basis[i]] * tab[i][rhs]
				}
			}
			return val, Optimal
		}
		// Ratio test with Bland tie-break on the leaving basic variable.
		leaving := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][entering] > eps {
				ratio := tab[i][rhs] / tab[i][entering]
				if ratio < best-eps ||
					(ratio < best+eps && (leaving < 0 || basis[i] < basis[leaving])) {
					best = ratio
					leaving = i
				}
			}
		}
		if leaving < 0 {
			return 0, Unbounded
		}
		pivot(tab, basis, leaving, entering, rhs)
	}
}

// pivot makes column c basic in row r.
func pivot(tab [][]float64, basis []int, r, c, rhs int) {
	pv := tab[r][c]
	for j := 0; j <= rhs; j++ {
		tab[r][j] /= pv
	}
	for i := range tab {
		if i == r {
			continue
		}
		f := tab[i][c]
		if f == 0 {
			continue
		}
		for j := 0; j <= rhs; j++ {
			tab[i][j] -= f * tab[r][j]
		}
	}
	basis[r] = c
}

// Maximize solves max c·x s.t. A x <= b, x >= 0.
func Maximize(c []float64, a [][]float64, b []float64) ([]float64, float64, Status) {
	return Solve(Problem{C: c, A: a, B: b, NumVars: len(c)})
}

// Feasible reports whether {A x <= b, E x = f, x >= 0} has a solution and
// returns one.
func Feasible(numVars int, a [][]float64, b []float64, e [][]float64, f []float64) ([]float64, bool) {
	x, _, st := Solve(Problem{A: a, B: b, E: e, F: f, NumVars: numVars})
	return x, st == Optimal
}

// Package table renders the experiment harness's tables and figure series
// as aligned ASCII, mirroring the rows the paper reports.
package table

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are rendered with %v, floats with 4
// significant digits.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		row[i] = format(v)
	}
	t.Rows = append(t.Rows, row)
}

func format(v interface{}) string {
	switch x := v.(type) {
	case float64:
		return fmt.Sprintf("%.4g", x)
	case float32:
		return fmt.Sprintf("%.4g", x)
	case string:
		return x
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Render produces the aligned text form.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

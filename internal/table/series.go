package table

import (
	"fmt"
	"strings"
)

// Series represents a figure: an x axis plus one or more named y series,
// printed as aligned columns (gnuplot-friendly).
type Series struct {
	Title  string
	XLabel string
	Names  []string // y series names
	X      []float64
	Y      [][]float64 // Y[i] parallel to X, one slice per name
}

// NewSeries returns a series container for the given y series names.
func NewSeries(title, xlabel string, names ...string) *Series {
	return &Series{Title: title, XLabel: xlabel, Names: names, Y: make([][]float64, len(names))}
}

// AddPoint appends an x value with one y per series.
func (s *Series) AddPoint(x float64, ys ...float64) {
	if len(ys) != len(s.Names) {
		panic(fmt.Sprintf("table: %d y values for %d series", len(ys), len(s.Names)))
	}
	s.X = append(s.X, x)
	for i, y := range ys {
		s.Y[i] = append(s.Y[i], y)
	}
}

// Render produces the aligned column form.
func (s *Series) Render() string {
	t := New(s.Title, append([]string{s.XLabel}, s.Names...)...)
	for i, x := range s.X {
		row := make([]interface{}, 0, 1+len(s.Names))
		row = append(row, x)
		for k := range s.Names {
			row = append(row, s.Y[k][i])
		}
		t.AddRow(row...)
	}
	return t.Render()
}

// Markdown renders the series as a GitHub-flavoured markdown table.
func (s *Series) Markdown() string {
	t := New(s.Title, append([]string{s.XLabel}, s.Names...)...)
	for i, x := range s.X {
		row := make([]interface{}, 0, 1+len(s.Names))
		row = append(row, x)
		for k := range s.Names {
			row = append(row, s.Y[k][i])
		}
		t.AddRow(row...)
	}
	return t.Markdown()
}

// AsciiPlot renders a crude terminal plot of the series (one glyph per
// series), useful for eyeballing trends without leaving the shell.
func (s *Series) AsciiPlot(width, height int) string {
	if len(s.X) == 0 || width < 8 || height < 3 {
		return ""
	}
	glyphs := "*+x#o@%&"
	minY, maxY := s.Y[0][0], s.Y[0][0]
	for _, ys := range s.Y {
		for _, y := range ys {
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
		}
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	minX, maxX := s.X[0], s.X[len(s.X)-1]
	if maxX == minX {
		maxX = minX + 1
	}
	for k, ys := range s.Y {
		g := glyphs[k%len(glyphs)]
		for i, y := range ys {
			col := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = g
		}
	}
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "%s  [y: %.3g..%.3g]\n", s.Title, minY, maxY)
	}
	for _, row := range grid {
		b.WriteString("| ")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+-")
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("\n")
	legend := make([]string, len(s.Names))
	for k, n := range s.Names {
		legend[k] = fmt.Sprintf("%c=%s", glyphs[k%len(glyphs)], n)
	}
	b.WriteString("  " + strings.Join(legend, "  ") + "\n")
	return b.String()
}

package table

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := New("My Table", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("longer-name", 0.333333333)
	out := tb.Render()
	if !strings.Contains(out, "My Table") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "longer-name") {
		t.Fatal("missing row")
	}
	if !strings.Contains(out, "0.3333") {
		t.Fatalf("float not formatted to 4 significant digits:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns aligned: header and rows share the position of column 2.
	idx := strings.Index(lines[1], "value")
	if idx < 0 {
		t.Fatal("header missing")
	}
	if lines[3][idx-1] != ' ' && lines[3][idx] == ' ' {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestTableMixedTypes(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.AddRow(42, "str", float32(2.5))
	out := tb.Render()
	for _, want := range []string{"42", "str", "2.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSeriesRender(t *testing.T) {
	s := NewSeries("Fig", "alpha", "amf", "psmmf")
	s.AddPoint(0, 1, 0.9)
	s.AddPoint(1, 0.95, 0.5)
	out := s.Render()
	for _, want := range []string{"Fig", "alpha", "amf", "psmmf", "0.95"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSeriesAddPointArityPanics(t *testing.T) {
	s := NewSeries("", "x", "y")
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	s.AddPoint(0, 1, 2)
}

func TestAsciiPlot(t *testing.T) {
	s := NewSeries("Trend", "x", "up")
	for i := 0; i < 10; i++ {
		s.AddPoint(float64(i), float64(i))
	}
	out := s.AsciiPlot(40, 10)
	if !strings.Contains(out, "*") {
		t.Fatalf("no points plotted:\n%s", out)
	}
	if !strings.Contains(out, "*=up") {
		t.Fatalf("no legend:\n%s", out)
	}
	// Monotone series: first point in bottom-left region, last in top-right.
	lines := strings.Split(out, "\n")
	top := lines[1]
	if !strings.Contains(top, "*") {
		t.Fatalf("max not on top row:\n%s", out)
	}
}

func TestAsciiPlotDegenerate(t *testing.T) {
	s := NewSeries("", "x", "y")
	if out := s.AsciiPlot(40, 10); out != "" {
		t.Fatal("empty series should render nothing")
	}
	s.AddPoint(1, 5)
	if out := s.AsciiPlot(40, 10); !strings.Contains(out, "*") {
		t.Fatalf("single constant point should still plot:\n%s", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := New("Title", "a", "b")
	tb.AddRow(1, 2.5)
	md := tb.Markdown()
	for _, want := range []string{"**Title**", "| a | b |", "| --- | --- |", "| 1 | 2.5 |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	// No title -> no bold header line.
	tb2 := New("", "x")
	tb2.AddRow(1)
	if strings.Contains(tb2.Markdown(), "**") {
		t.Fatal("unexpected title in markdown")
	}
}

func TestSeriesMarkdown(t *testing.T) {
	s := NewSeries("Fig", "x", "y1", "y2")
	s.AddPoint(0, 1, 2)
	s.AddPoint(1, 3, 4)
	md := s.Markdown()
	for _, want := range []string{"**Fig**", "| x | y1 | y2 |", "| 1 | 3 | 4 |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("series markdown missing %q:\n%s", want, md)
		}
	}
}

func TestAsciiPlotMultiSeries(t *testing.T) {
	s := NewSeries("Two", "x", "up", "down")
	for i := 0; i < 8; i++ {
		s.AddPoint(float64(i), float64(i), float64(8-i))
	}
	out := s.AsciiPlot(40, 10)
	if !strings.Contains(out, "*=up") || !strings.Contains(out, "+=down") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "+") {
		t.Fatalf("second glyph not plotted:\n%s", out)
	}
}

func TestAsciiPlotTooSmall(t *testing.T) {
	s := NewSeries("", "x", "y")
	s.AddPoint(0, 1)
	if out := s.AsciiPlot(4, 2); out != "" {
		t.Fatalf("tiny viewport should render nothing, got:\n%s", out)
	}
}

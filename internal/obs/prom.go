package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) of a Registry, served by the
// API server at GET /metrics. The JSON snapshot at /v1/metrics is
// unchanged; this renderer maps the same registry onto scrape-friendly
// families:
//
//   - Counters and gauges render directly; names are prefixed amf_ and
//     sanitized ('.' and anything outside [a-zA-Z0-9_:] become '_').
//   - Histograms render with the full fixed bucket layout (cumulative
//     counts, le in seconds, +Inf), _sum and _count, and get a _seconds
//     unit suffix when the name lacks one.
//   - Per-route HTTP metrics and per-stage engine histograms fold into one
//     family each with a route="..." / stage="..." label, instead of
//     minting a metric name per route pattern.

// promPrefixRule folds a dotted-name prefix into one labeled family.
type promPrefixRule struct {
	prefix string
	family string
	label  string
}

var promCounterRules = []promPrefixRule{
	{"http.requests.", "amf_http_requests_total", "route"},
	{"http.errors.", "amf_http_errors_total", "route"},
	{"cluster.fanout.errors.", "amf_cluster_fanout_errors_total", "shard"},
}

var promHistogramRules = []promPrefixRule{
	{"http.latency.", "amf_http_request_latency_seconds", "route"},
	{"engine.stage.", "amf_engine_stage_latency_seconds", "stage"},
	{"cluster.fanout.latency.", "amf_cluster_fanout_latency_seconds", "op"},
}

// PromContentType is the Content-Type of the exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a dotted metric name into a legal Prometheus metric
// name with the amf_ namespace prefix.
func promName(raw string) string {
	var b strings.Builder
	b.Grow(len(raw) + 4)
	b.WriteString("amf_")
	for _, r := range raw {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel renders one label pair with value escaping per the exposition
// format (backslash, double quote, newline).
func promLabel(name, value string) string {
	esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(value)
	return name + `="` + esc + `"`
}

// mapFamily resolves a raw metric name to its family and label under the
// given rules, falling back to the sanitized name.
func mapFamily(raw string, rules []promPrefixRule) (family, label string) {
	for _, r := range rules {
		if strings.HasPrefix(raw, r.prefix) {
			return r.family, promLabel(r.label, raw[len(r.prefix):])
		}
	}
	return promName(raw), ""
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promSeries is one rendered series within a family.
type promSeries struct {
	label   string // "" or one rendered label pair
	counter int64
	gauge   float64
	hist    *histState
}

type promFamily struct {
	name   string
	typ    string // "counter", "gauge" or "histogram"
	series []promSeries
}

// WritePrometheus renders every metric in the registry. Output is
// deterministic: families sorted by name, series sorted by label.
func (r *Registry) WritePrometheus(w io.Writer) error {
	fams := map[string]*promFamily{}
	add := func(name, typ string, s promSeries) {
		f := fams[name]
		if f == nil {
			f = &promFamily{name: name, typ: typ}
			fams[name] = f
		}
		f.series = append(f.series, s)
	}

	r.mu.RLock()
	for name, c := range r.counters {
		fam, label := mapFamily(name, promCounterRules)
		add(fam, "counter", promSeries{label: label, counter: c.Value()})
	}
	for name, g := range r.gauges {
		add(promName(name), "gauge", promSeries{gauge: g.Value()})
	}
	for name, h := range r.histograms {
		fam, label := mapFamily(name, promHistogramRules)
		if !strings.HasSuffix(fam, "_seconds") {
			fam += "_seconds"
		}
		s := h.snapshot()
		add(fam, "histogram", promSeries{label: label, hist: &s})
	}
	r.mu.RUnlock()

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		f := fams[name]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].label < f.series[j].label })
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			var err error
			switch f.typ {
			case "counter":
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, braced(s.label), s.counter)
			case "gauge":
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, braced(s.label), promFloat(s.gauge))
			case "histogram":
				err = writePromHistogram(w, f.name, s.label, s.hist)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// braced wraps a rendered label pair in braces, or returns "" for none.
func braced(label string) string {
	if label == "" {
		return ""
	}
	return "{" + label + "}"
}

// writePromHistogram emits the cumulative bucket series, _sum and _count
// for one histogram. The +Inf bucket and _count both report the bucket
// total, so the series stays self-consistent even while writers race the
// snapshot.
func writePromHistogram(w io.Writer, family, label string, s *histState) error {
	join := func(extra string) string {
		if label == "" {
			return "{" + extra + "}"
		}
		return "{" + label + "," + extra + "}"
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		cum += s.buckets[i]
		le := promFloat(float64(bucketUpperNS(i)) / 1e9)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", family, join(`le="`+le+`"`), cum); err != nil {
			return err
		}
	}
	cum += s.buckets[numBuckets] // overflow bucket
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", family, join(`le="+Inf"`), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", family, braced(label), promFloat(float64(s.sumNS)/1e9)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", family, braced(label), cum)
	return err
}

// Package obs is a small, dependency-free metrics registry for
// instrumenting the allocator's serving path: atomic counters, float
// gauges, and fixed-bucket latency histograms with quantile summaries.
//
// All metric types are safe for concurrent use and update with a handful
// of atomic operations — no locks on the hot path — so they can sit inside
// the solver and request handlers without perturbing what they measure.
// Metric handles are cheap to look up but are meant to be resolved once
// and retained.
//
// A Registry snapshots to a JSON-friendly Snapshot; internal/api serves it
// at GET /v1/metrics.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float-valued metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the current value (CAS loop; safe concurrently).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// numBuckets covers 1µs .. ~35s in powers of two, plus one overflow
// bucket. Bucket i counts observations with d <= 1µs<<i.
const numBuckets = 26

// Histogram records durations in fixed exponential buckets and reports
// count, sum, min/max and interpolated quantiles. The zero value is ready
// to use.
type Histogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	minNS   atomic.Int64 // 0 = unset; stored as ns+1 to distinguish
	maxNS   atomic.Int64
	buckets [numBuckets + 1]atomic.Int64
}

// bucketUpperNS returns the inclusive upper bound of bucket i in
// nanoseconds (the overflow bucket has no bound).
func bucketUpperNS(i int) int64 { return int64(1000) << uint(i) }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		old := h.maxNS.Load()
		if ns <= old || h.maxNS.CompareAndSwap(old, ns) {
			break
		}
	}
	for {
		old := h.minNS.Load()
		if old != 0 && ns+1 >= old {
			break
		}
		if h.minNS.CompareAndSwap(old, ns+1) {
			break
		}
	}
	i := 0
	for i < numBuckets && ns > bucketUpperNS(i) {
		i++
	}
	h.buckets[i].Add(1)
}

// Time starts a timer; the returned func stops it and records the elapsed
// duration. Typical use: defer h.Time()().
func (h *Histogram) Time() func() {
	start := time.Now()
	return func() { h.Observe(time.Since(start)) }
}

// Quantile returns an interpolated estimate of the q-quantile (0..1) in
// seconds, or 0 when the histogram is empty. Within a bucket the
// distribution is assumed uniform.
func (h *Histogram) Quantile(q float64) float64 {
	s := h.snapshot()
	return s.quantile(q)
}

// histState is an atomically inconsistent but monotone-safe read of the
// histogram (counters only ever grow, so rank estimates stay sane).
type histState struct {
	count, sumNS, minNS, maxNS int64
	buckets                    [numBuckets + 1]int64
}

func (h *Histogram) snapshot() histState {
	var s histState
	s.count = h.count.Load()
	s.sumNS = h.sumNS.Load()
	s.maxNS = h.maxNS.Load()
	if m := h.minNS.Load(); m > 0 {
		s.minNS = m - 1
	}
	for i := range h.buckets {
		s.buckets[i] = h.buckets[i].Load()
	}
	return s
}

func (s *histState) quantile(q float64) float64 {
	var total int64
	for _, c := range s.buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range s.buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == numBuckets {
			lo := 0.0
			if i > 0 {
				lo = float64(bucketUpperNS(i - 1))
			}
			hi := float64(bucketUpperNS(i))
			if i == numBuckets {
				hi = float64(s.maxNS) // overflow bucket: cap at observed max
			}
			if hi < lo {
				hi = lo
			}
			frac := 0.0
			if c > 0 {
				frac = (rank - cum) / float64(c)
			}
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			v := lo + frac*(hi-lo)
			// Clamp to the observed range: interpolation over a sparse
			// bucket can land outside [min, max], which reads as nonsense
			// (a p50 above the max for a single-sample histogram).
			if v > float64(s.maxNS) {
				v = float64(s.maxNS)
			}
			if v < float64(s.minNS) {
				v = float64(s.minNS)
			}
			return v / 1e9
		}
		cum = next
	}
	return float64(s.maxNS) / 1e9
}

// Registry holds named metrics. Lookup is get-or-create and safe for
// concurrent use; the zero value is not usable — call NewRegistry.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Observe records d on the named histogram (convenience).
func (r *Registry) Observe(name string, d time.Duration) {
	r.Histogram(name).Observe(d)
}

// Time starts a named timer; the returned func records the elapsed
// duration. Typical use: defer reg.Time("solver.solve")().
func (r *Registry) Time(name string) func() {
	return r.Histogram(name).Time()
}

// BucketCount is one non-empty histogram bucket in a snapshot.
type BucketCount struct {
	// LE is the bucket's inclusive upper bound in seconds (the last bucket
	// of a histogram reports the observed maximum).
	LE float64 `json:"le_seconds"`
	// Count is the number of observations in this bucket.
	Count int64 `json:"count"`
}

// HistogramSnapshot is the JSON form of one histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum_seconds"`
	Min   float64 `json:"min_seconds"`
	Max   float64 `json:"max_seconds"`
	Mean  float64 `json:"mean_seconds"`
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
	// Buckets lists only non-empty buckets.
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time, JSON-serializable view of a Registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric. Values are read atomically per metric
// but the snapshot as a whole is not a consistent cut — fine for
// monitoring.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := Snapshot{}
	if len(r.counters) > 0 {
		snap.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			snap.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			snap.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			snap.Histograms[name] = h.Summary()
		}
	}
	return snap
}

// Summary returns the histogram's JSON form.
func (h *Histogram) Summary() HistogramSnapshot {
	s := h.snapshot()
	hs := HistogramSnapshot{
		Count: s.count,
		Sum:   float64(s.sumNS) / 1e9,
		Min:   float64(s.minNS) / 1e9,
		Max:   float64(s.maxNS) / 1e9,
		P50:   s.quantile(0.50),
		P95:   s.quantile(0.95),
		P99:   s.quantile(0.99),
	}
	if s.count > 0 {
		hs.Mean = hs.Sum / float64(s.count)
	}
	for i, c := range s.buckets {
		if c == 0 {
			continue
		}
		le := float64(bucketUpperNS(i)) / 1e9
		if i == numBuckets {
			le = float64(s.maxNS) / 1e9
		}
		hs.Buckets = append(hs.Buckets, BucketCount{LE: le, Count: c})
	}
	return hs
}

// Names returns all registered metric names, sorted, for diagnostics.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

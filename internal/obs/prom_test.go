package obs

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// expositionLine matches one sample line of the text exposition format.
// Quoted label values may hold any characters (spaces, braces) with \"
// and \\ escapes.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? [^ ]+$`)

func renderProm(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestPromExpositionValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.commits_total").Add(3)
	r.Gauge("engine.snapshot_version").Set(7)
	r.Observe("engine.commit_latency", 3*time.Millisecond)
	r.Counter("http.requests.GET /v1/jobs/{id}/shares").Add(2)
	r.Observe("http.latency.GET /v1/jobs/{id}/shares", time.Millisecond)
	r.Observe("engine.stage.wal_fsync", 2*time.Millisecond)

	out := renderProm(t, r)
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE amf_engine_commits_total counter\namf_engine_commits_total 3\n",
		"# TYPE amf_engine_snapshot_version gauge\namf_engine_snapshot_version 7\n",
		"# TYPE amf_engine_commit_latency_seconds histogram\n",
		`amf_http_requests_total{route="GET /v1/jobs/{id}/shares"} 2`,
		`amf_http_request_latency_seconds_bucket{route="GET /v1/jobs/{id}/shares",le="+Inf"} 1`,
		`amf_engine_stage_latency_seconds_bucket{stage="wal_fsync",le="+Inf"} 1`,
		"amf_engine_commit_latency_seconds_sum 0.003\n",
		"amf_engine_commit_latency_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestPromHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("solve")
	h.Observe(time.Microsecond)      // lands in the first bucket
	h.Observe(time.Millisecond)      // a later bucket
	h.Observe(90 * time.Second)      // overflow bucket
	out := renderProm(t, r)

	bucketRe := regexp.MustCompile(`amf_solve_seconds_bucket\{le="([^"]+)"\} (\d+)`)
	matches := bucketRe.FindAllStringSubmatch(out, -1)
	if len(matches) != numBuckets+1 {
		t.Fatalf("got %d bucket lines, want %d", len(matches), numBuckets+1)
	}
	prev := int64(-1)
	for _, m := range matches {
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if n < prev {
			t.Fatalf("bucket counts not cumulative: %d after %d (le=%s)", n, prev, m[1])
		}
		prev = n
	}
	if matches[len(matches)-1][1] != "+Inf" || prev != 3 {
		t.Fatalf("last bucket = le=%q count=%d, want +Inf count=3",
			matches[len(matches)-1][1], prev)
	}
	if !strings.Contains(out, "amf_solve_seconds_count 3\n") {
		t.Fatalf("_count missing or wrong in:\n%s", out)
	}
}

func TestPromNameSanitization(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird name/with.bad{chars}").Inc()
	out := renderProm(t, r)
	if !strings.Contains(out, "amf_weird_name_with_bad_chars_ 1\n") {
		t.Fatalf("sanitized name missing in:\n%s", out)
	}
}

func TestPromLabelEscaping(t *testing.T) {
	if got := promLabel("route", `a"b\c`); got != `route="a\"b\\c"` {
		t.Fatalf("promLabel = %s", got)
	}
}

func TestPromEmptyRegistry(t *testing.T) {
	if out := renderProm(t, NewRegistry()); out != "" {
		t.Fatalf("empty registry rendered %q", out)
	}
}

// Package span is a lightweight commit-tracing subsystem for the serving
// path: trace IDs minted per HTTP request, propagated through
// context.Context into the engine's group commits, and per-stage spans
// (queue wait, apply, WAL encode/append/fsync, solver stages, publish)
// recorded into a lock-free ring buffer served at GET /v1/traces.
//
// It is deliberately not a distributed tracer: there is one process, one
// committer, and the interesting question is "where inside this commit did
// the time go", so a Trace is a flat sequence of stage spans plus a few
// correlation fields (commit sequence, batch size, the request trace IDs
// that rode in the batch). The name span avoids colliding with
// internal/trace, which is the workload-I/O package.
//
// Recording is allocation-light and lock-free: a Recorder is a fixed ring
// of atomic pointers, so tracing can stay enabled in production without
// perturbing the latencies it measures.
package span

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// ID is a trace identifier: 16 lowercase hex characters. The zero value
// ("") means "no trace".
type ID string

// idCounter and idSeed make minted IDs unique within a process and
// unlikely to collide across processes: the high bits carry a random
// per-process seed, the low bits a counter.
var (
	idCounter atomic.Uint64
	idSeed    = rand.Uint64()
)

// MintID returns a fresh trace ID. Safe for concurrent use; costs one
// atomic add and one small formatting call.
func MintID() ID {
	n := idCounter.Add(1)
	return ID(fmt.Sprintf("%016x", idSeed+n*0x9e3779b97f4a7c15))
}

// ctxKey is the private context key for trace IDs.
type ctxKey struct{}

// NewContext returns a context carrying the trace ID.
func NewContext(ctx context.Context, id ID) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// FromContext extracts the trace ID, or "" when the context carries none.
func FromContext(ctx context.Context) ID {
	id, _ := ctx.Value(ctxKey{}).(ID)
	return id
}

// parentKey is the private context key for cluster parent trace IDs.
type parentKey struct{}

// NewParentContext returns a context carrying the cluster-level parent
// trace ID — the router-minted ID a shard-local commit trace should hang
// under when stitched.
func NewParentContext(ctx context.Context, id ID) context.Context {
	return context.WithValue(ctx, parentKey{}, id)
}

// ParentFromContext extracts the parent trace ID, or "".
func ParentFromContext(ctx context.Context) ID {
	id, _ := ctx.Value(parentKey{}).(ID)
	return id
}

// Span is one named stage of a trace. Stage spans are laid out on a single
// sequential timeline (Start is the offset from the trace start, and
// non-detail spans never overlap), so summing their durations reproduces
// the trace total.
type Span struct {
	// Name is the stage ("queue_wait", "apply", "wal_fsync", "solve", ...).
	Name string `json:"name"`
	// Start is the span's offset from the trace start, in seconds.
	Start float64 `json:"start_seconds"`
	// Duration is the stage's wall time in seconds.
	Duration float64 `json:"duration_seconds"`
	// Detail marks informational spans that ran concurrently with others
	// (per-component solves on the worker pool). Detail spans overlap the
	// "solve" stage span and are excluded from timeline accounting.
	Detail bool `json:"detail,omitempty"`
}

// Trace is one recorded commit: a flat stage timeline plus correlation
// metadata. Traces are immutable once recorded.
type Trace struct {
	// ID is the trace ID: the first request trace ID in the batch, or a
	// freshly minted one for commits with no traced request (the initial
	// publish, compactions).
	ID ID `json:"trace_id"`
	// Seq is the engine's commit sequence number.
	Seq uint64 `json:"seq"`
	// Start is the trace's wall-clock start (the enqueue time of the
	// earliest mutation in the batch).
	Start time.Time `json:"start"`
	// Total is the trace's end-to-end wall time in seconds; the non-detail
	// spans partition it (up to uninstrumented slack).
	Total float64 `json:"total_seconds"`
	// BatchSize is the number of mutations in the commit.
	BatchSize int `json:"batch_size"`
	// Requests lists the trace IDs of the requests whose mutations rode in
	// this commit, in batch order — the request↔trace correlation for the
	// X-AMF-Trace-Id response header.
	Requests []ID `json:"requests,omitempty"`
	// Error is the commit's error, if any ("" for success).
	Error string `json:"error,omitempty"`
	// Parent is the cluster-level parent trace ID for a shard-local trace
	// that was stitched under a router trace ("" for standalone traces).
	Parent ID `json:"parent_id,omitempty"`
	// Shard labels which process recorded this trace in a stitched tree:
	// a shard index ("0", "1", ...) or "replica". Empty for standalone
	// engines and for router-level parents.
	Shard string `json:"shard,omitempty"`
	// Children holds the shard-local child traces stitched under a
	// router-level parent, in shard order.
	Children []*Trace `json:"children,omitempty"`
	// Spans is the stage timeline.
	Spans []Span `json:"spans"`
}

// StitchChild returns a shallow copy of the child tagged with the parent
// trace ID and shard label, leaving the recorded original untouched (ring
// slots are shared between readers).
func (t *Trace) StitchChild(parent ID, shard string) *Trace {
	c := *t
	c.Parent = parent
	c.Shard = shard
	return &c
}

// SpanSum returns the summed duration of the non-detail stage spans in
// seconds — the instrumented fraction of Total.
func (t *Trace) SpanSum() float64 {
	var s float64
	for _, sp := range t.Spans {
		if !sp.Detail {
			s += sp.Duration
		}
	}
	return s
}

// Builder accumulates one trace's spans on a sequential cursor. It is not
// safe for concurrent use: the engine's single committer goroutine owns
// it for the duration of one commit.
type Builder struct {
	t      Trace
	cursor time.Duration
}

// Begin starts a trace at the given wall-clock start.
func Begin(id ID, start time.Time) *Builder {
	return &Builder{t: Trace{ID: id, Start: start}}
}

// SetSeq records the commit sequence number.
func (b *Builder) SetSeq(seq uint64) { b.t.Seq = seq }

// SetParent records the cluster-level parent trace ID.
func (b *Builder) SetParent(id ID) { b.t.Parent = id }

// SetShard records the shard label ("0", "1", ..., "replica").
func (b *Builder) SetShard(s string) { b.t.Shard = s }

// SetBatch records the batch size and the member request trace IDs.
func (b *Builder) SetBatch(size int, requests []ID) {
	b.t.BatchSize = size
	b.t.Requests = requests
}

// SetError records the commit error.
func (b *Builder) SetError(err error) {
	if err != nil {
		b.t.Error = err.Error()
	}
}

// Stage appends a stage span at the cursor and advances the cursor by d:
// consecutive Stage calls build a contiguous timeline.
func (b *Builder) Stage(name string, d time.Duration) {
	if d < 0 {
		d = 0
	}
	b.t.Spans = append(b.t.Spans, Span{
		Name:     name,
		Start:    b.cursor.Seconds(),
		Duration: d.Seconds(),
	})
	b.cursor += d
}

// Detail appends an informational span at the current cursor WITHOUT
// advancing it — used for work that ran concurrently inside the enclosing
// stage (per-component solves).
func (b *Builder) Detail(name string, d time.Duration) {
	if d < 0 {
		d = 0
	}
	b.t.Spans = append(b.t.Spans, Span{
		Name:     name,
		Start:    b.cursor.Seconds(),
		Duration: d.Seconds(),
		Detail:   true,
	})
}

// Finish stamps the total (wall time since Start) and returns the
// completed immutable trace.
func (b *Builder) Finish() *Trace {
	b.t.Total = time.Since(b.t.Start).Seconds()
	return &b.t
}

// Recorder is a fixed-size lock-free ring of recorded traces. Record is a
// single atomic pointer store plus an atomic add; readers walk the ring
// without blocking writers.
type Recorder struct {
	slots []atomic.Pointer[Trace]
	next  atomic.Uint64
}

// NewRecorder returns a ring holding the most recent size traces
// (minimum 1).
func NewRecorder(size int) *Recorder {
	if size < 1 {
		size = 1
	}
	return &Recorder{slots: make([]atomic.Pointer[Trace], size)}
}

// Cap reports the ring capacity.
func (r *Recorder) Cap() int { return len(r.slots) }

// Record stores a completed trace, overwriting the oldest when full. The
// trace must not be mutated afterwards.
func (r *Recorder) Record(t *Trace) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(t)
}

// Recent returns up to limit traces, newest first. limit <= 0 means the
// whole ring. The result is never nil.
func (r *Recorder) Recent(limit int) []*Trace {
	n := r.next.Load()
	have := int(min(n, uint64(len(r.slots))))
	if limit <= 0 || limit > have {
		limit = have
	}
	out := make([]*Trace, 0, limit)
	for k := 0; k < have && len(out) < limit; k++ {
		// Walk backwards from the most recently written slot. A concurrent
		// writer may overwrite the oldest slots mid-walk; the pointer loads
		// stay safe and the result stays a set of recent traces.
		t := r.slots[(n-1-uint64(k))%uint64(len(r.slots))].Load()
		if t != nil {
			out = append(out, t)
		}
	}
	return out
}

package span

import (
	"sort"
	"sync"
	"time"
)

// SlowRecorder retains the N slowest traces recorded within a sliding
// time window, so slow-commit evidence survives main-ring churn: a burst
// of fast commits evicts a slow outlier from the Recorder ring within
// milliseconds, but it stays here until a full window passes or N slower
// commits displace it.
//
// Unlike Recorder this takes a mutex — it is written once per commit and
// read rarely, so contention is not a concern.
type SlowRecorder struct {
	mu     sync.Mutex
	window time.Duration
	max    int
	traces []*Trace // sorted by Total descending
	// now is stubbed in tests.
	now func() time.Time
}

// NewSlowRecorder returns a recorder keeping the size slowest traces of
// the last window (minimums: 1 trace, 1 second).
func NewSlowRecorder(size int, window time.Duration) *SlowRecorder {
	if size < 1 {
		size = 1
	}
	if window < time.Second {
		window = time.Second
	}
	return &SlowRecorder{window: window, max: size, now: time.Now}
}

// Cap reports the retention capacity.
func (r *SlowRecorder) Cap() int {
	if r == nil {
		return 0
	}
	return r.max
}

// Record offers a completed trace. It is kept if the window has a free
// slot or the trace is slower than the current fastest retained one. Nil
// receivers are no-ops so callers can record unconditionally.
func (r *SlowRecorder) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked()
	if len(r.traces) < r.max {
		r.insertLocked(t)
		return
	}
	if fastest := r.traces[len(r.traces)-1]; t.Total > fastest.Total {
		r.traces = r.traces[:len(r.traces)-1]
		r.insertLocked(t)
	}
}

// insertLocked inserts keeping the slowest-first order.
func (r *SlowRecorder) insertLocked(t *Trace) {
	i := sort.Search(len(r.traces), func(i int) bool {
		return r.traces[i].Total < t.Total
	})
	r.traces = append(r.traces, nil)
	copy(r.traces[i+1:], r.traces[i:])
	r.traces[i] = t
}

// expireLocked drops traces older than the window. Age is measured from
// the trace start, the only wall-clock stamp a trace carries.
func (r *SlowRecorder) expireLocked() {
	cutoff := r.now().Add(-r.window)
	kept := r.traces[:0]
	for _, t := range r.traces {
		if t.Start.After(cutoff) {
			kept = append(kept, t)
		}
	}
	for i := len(kept); i < len(r.traces); i++ {
		r.traces[i] = nil
	}
	r.traces = kept
}

// Slowest returns up to limit retained traces, slowest first. limit <= 0
// means all. Nil receivers return an empty slice.
func (r *SlowRecorder) Slowest(limit int) []*Trace {
	if r == nil {
		return []*Trace{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked()
	n := len(r.traces)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]*Trace, limit)
	copy(out, r.traces[:limit])
	return out
}

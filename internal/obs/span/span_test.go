package span

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestMintIDUnique(t *testing.T) {
	seen := make(map[ID]bool)
	for i := 0; i < 10000; i++ {
		id := MintID()
		if len(id) != 16 {
			t.Fatalf("id %q: want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestContextRoundTrip(t *testing.T) {
	if got := FromContext(context.Background()); got != "" {
		t.Fatalf("empty context carries id %q", got)
	}
	id := MintID()
	ctx := NewContext(context.Background(), id)
	if got := FromContext(ctx); got != id {
		t.Fatalf("round trip = %q, want %q", got, id)
	}
}

func TestBuilderTimeline(t *testing.T) {
	start := time.Now().Add(-time.Second)
	b := Begin("abc", start)
	b.SetSeq(7)
	b.SetBatch(3, []ID{"r1", "r2"})
	b.Stage("queue_wait", 10*time.Millisecond)
	b.Stage("apply", 5*time.Millisecond)
	b.Detail("solve.component", 2*time.Millisecond)
	b.Stage("solve", 4*time.Millisecond)
	b.SetError(errors.New("boom"))
	tr := b.Finish()

	if tr.ID != "abc" || tr.Seq != 7 || tr.BatchSize != 3 || len(tr.Requests) != 2 {
		t.Fatalf("metadata lost: %+v", tr)
	}
	if tr.Error != "boom" {
		t.Fatalf("error = %q", tr.Error)
	}
	if tr.Total < 1.0 {
		t.Fatalf("total = %g, want >= 1s (trace started 1s ago)", tr.Total)
	}
	// Non-detail spans are contiguous: each starts where the previous ended.
	cursor := 0.0
	for _, sp := range tr.Spans {
		if sp.Detail {
			continue
		}
		if sp.Start != cursor {
			t.Fatalf("span %q starts at %g, want %g", sp.Name, sp.Start, cursor)
		}
		cursor += sp.Duration
	}
	if want := 0.019; tr.SpanSum() < want-1e-9 || tr.SpanSum() > want+1e-9 {
		t.Fatalf("span sum = %g, want %g (detail spans excluded)", tr.SpanSum(), want)
	}
	// The detail span sits inside the timeline, parked at its cursor.
	if tr.Spans[2].Name != "solve.component" || !tr.Spans[2].Detail || tr.Spans[2].Start != 0.015 {
		t.Fatalf("detail span misplaced: %+v", tr.Spans[2])
	}
}

func TestBuilderNegativeDurationClamped(t *testing.T) {
	b := Begin("x", time.Now())
	b.Stage("s", -time.Second)
	b.Detail("d", -time.Second)
	tr := b.Finish()
	if tr.Spans[0].Duration != 0 || tr.Spans[1].Duration != 0 {
		t.Fatalf("negative durations not clamped: %+v", tr.Spans)
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(4)
	if r.Cap() != 4 {
		t.Fatalf("cap = %d", r.Cap())
	}
	for i := 0; i < 10; i++ {
		r.Record(&Trace{Seq: uint64(i)})
	}
	got := r.Recent(0)
	if len(got) != 4 {
		t.Fatalf("recent = %d traces, want 4", len(got))
	}
	// Newest first: 9, 8, 7, 6.
	for i, tr := range got {
		if want := uint64(9 - i); tr.Seq != want {
			t.Fatalf("recent[%d].Seq = %d, want %d", i, tr.Seq, want)
		}
	}
	if got := r.Recent(2); len(got) != 2 || got[0].Seq != 9 || got[1].Seq != 8 {
		t.Fatalf("limit 2 = %+v", got)
	}
}

func TestRecorderEmptyAndTiny(t *testing.T) {
	if got := NewRecorder(8).Recent(5); len(got) != 0 {
		t.Fatalf("empty recorder returned %d traces", len(got))
	}
	r := NewRecorder(0) // clamped to 1
	r.Record(&Trace{Seq: 1})
	r.Record(&Trace{Seq: 2})
	if got := r.Recent(10); len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("size-1 ring = %+v", got)
	}
}

// TestRecorderConcurrent hammers Record and Recent together; under -race
// this is the ring's lock-freedom proof.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				r.Record(&Trace{Seq: uint64(w*5000 + i)})
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				for _, tr := range r.Recent(8) {
					if tr == nil {
						t.Error("nil trace from Recent")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Recent(0); len(got) != 16 {
		t.Fatalf("full ring holds %d traces, want 16", len(got))
	}
}

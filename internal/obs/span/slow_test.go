package span

import (
	"testing"
	"time"
)

func slowTrace(id ID, total float64, start time.Time) *Trace {
	return &Trace{ID: id, Total: total, Start: start}
}

func TestSlowRecorderKeepsSlowest(t *testing.T) {
	r := NewSlowRecorder(3, time.Hour)
	now := time.Now()
	for i, total := range []float64{0.010, 0.002, 0.050, 0.001, 0.030, 0.004} {
		r.Record(slowTrace(ID(rune('a'+i)), total, now))
	}
	got := r.Slowest(0)
	if len(got) != 3 {
		t.Fatalf("kept %d traces, want 3", len(got))
	}
	wantTotals := []float64{0.050, 0.030, 0.010}
	for i, tr := range got {
		if tr.Total != wantTotals[i] {
			t.Fatalf("slot %d total %g, want %g", i, tr.Total, wantTotals[i])
		}
	}
	if limited := r.Slowest(1); len(limited) != 1 || limited[0].Total != 0.050 {
		t.Fatalf("Slowest(1) = %+v", limited)
	}
}

func TestSlowRecorderWindowExpiry(t *testing.T) {
	r := NewSlowRecorder(8, time.Minute)
	base := time.Now()
	clock := base
	r.now = func() time.Time { return clock }
	r.Record(slowTrace("old", 0.9, base.Add(-2*time.Minute)))
	r.Record(slowTrace("new", 0.1, base))
	got := r.Slowest(0)
	if len(got) != 1 || got[0].ID != "new" {
		t.Fatalf("after expiry got %+v", got)
	}
	// Advance the clock past the window: the remaining trace expires too.
	clock = base.Add(2 * time.Minute)
	if got := r.Slowest(0); len(got) != 0 {
		t.Fatalf("expected full expiry, got %d traces", len(got))
	}
}

func TestSlowRecorderNilSafe(t *testing.T) {
	var r *SlowRecorder
	r.Record(slowTrace("x", 1, time.Now()))
	if got := r.Slowest(0); len(got) != 0 {
		t.Fatalf("nil recorder returned %d traces", len(got))
	}
	if r.Cap() != 0 {
		t.Fatalf("nil recorder cap %d", r.Cap())
	}
}

func TestStitchChildCopies(t *testing.T) {
	orig := &Trace{ID: "child", Total: 0.5}
	c := orig.StitchChild("parent", "1")
	if c.Parent != "parent" || c.Shard != "1" || c.ID != "child" {
		t.Fatalf("stitched = %+v", c)
	}
	if orig.Parent != "" || orig.Shard != "" {
		t.Fatalf("original mutated: %+v", orig)
	}
}

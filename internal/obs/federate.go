package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Metrics federation: the cluster router scrapes every shard's and
// replica's /metrics page and re-exports ONE exposition page with a
// shard="i" / replica="i" label injected into every scraped series, so
// the existing families (engine stage latencies, HTTP counters, fairness
// gauges) become per-process series of one cluster-wide family instead of
// N disjoint scrape targets. The router's own registry rides along
// unlabeled.

// ScrapedPage is one process's exposition page plus the label to stamp
// onto its series. An empty Label injects nothing (the router's own
// page).
type ScrapedPage struct {
	Label string // "shard" or "replica"; "" for the local page
	Value string
	Body  []byte
}

// fedSeries is one parsed series line, relabeled.
type fedSeries struct {
	name   string // series name as scraped (may carry _bucket/_sum/_count)
	labels string // rendered label pairs, "" for none
	value  string // verbatim sample value
}

// fedFamily groups series under one # TYPE declaration.
type fedFamily struct {
	name   string
	typ    string // "" for series whose page declared no type
	series []fedSeries
}

// WriteFederated parses the pages and writes one merged, deterministic
// exposition page: families sorted by name, each # TYPE emitted once,
// series sorted by (name, labels, page order). Series from labeled pages
// get the page's label pair injected first, so identical families from
// different shards stay distinguishable.
func WriteFederated(w io.Writer, pages []ScrapedPage) error {
	fams := map[string]*fedFamily{}
	// suffixOwner maps a histogram family name to itself so _bucket/_sum/
	// _count series can be grouped under their family's TYPE header.
	histFams := map[string]bool{}

	for _, p := range pages {
		sc := bufio.NewScanner(bytes.NewReader(p.Body))
		sc.Buffer(make([]byte, 64*1024), 1024*1024)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "#") {
				fields := strings.Fields(line)
				if len(fields) == 4 && fields[1] == "TYPE" {
					name, typ := fields[2], fields[3]
					f := fams[name]
					if f == nil {
						f = &fedFamily{name: name}
						fams[name] = f
					}
					if f.typ == "" {
						f.typ = typ
					}
					if typ == "histogram" {
						histFams[name] = true
					}
				}
				continue // drop HELP and other comments
			}
			name, labels, value, ok := splitSeries(line)
			if !ok {
				continue
			}
			if p.Label != "" {
				pair := promLabel(p.Label, p.Value)
				if labels == "" {
					labels = pair
				} else {
					labels = pair + "," + labels
				}
			}
			fam := familyOf(name, histFams)
			f := fams[fam]
			if f == nil {
				f = &fedFamily{name: fam}
				fams[fam] = f
			}
			f.series = append(f.series, fedSeries{name: name, labels: labels, value: value})
		}
		if err := sc.Err(); err != nil {
			return fmt.Errorf("obs: federate parse: %w", err)
		}
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		f := fams[name]
		if len(f.series) == 0 {
			continue // TYPE with no surviving series
		}
		sort.SliceStable(f.series, func(i, j int) bool {
			if f.series[i].name != f.series[j].name {
				return f.series[i].name < f.series[j].name
			}
			return f.series[i].labels < f.series[j].labels
		})
		if f.typ != "" {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
				return err
			}
		}
		for _, s := range f.series {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.name, braced(s.labels), s.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// familyOf resolves a series name to its family: histogram suffix series
// (_bucket, _sum, _count) group under the declared histogram family.
func familyOf(name string, histFams map[string]bool) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok && histFams[base] {
			return base
		}
	}
	return name
}

// splitSeries parses one exposition sample line into (name, raw label
// pairs, value). It tracks quoting so label values containing '}' or
// escaped quotes do not break the brace scan.
func splitSeries(line string) (name, labels, value string, ok bool) {
	brace := -1
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c == '{' {
			brace = i
			break
		}
		if c == ' ' || c == '\t' {
			return line[:i], "", strings.TrimSpace(line[i:]), true
		}
	}
	if brace < 0 {
		return "", "", "", false // bare name with no value
	}
	name = line[:brace]
	inQuote := false
	for i := brace + 1; i < len(line); i++ {
		c := line[i]
		switch {
		case inQuote && c == '\\':
			i++ // skip escaped char
		case c == '"':
			inQuote = !inQuote
		case !inQuote && c == '}':
			return name, line[brace+1 : i], strings.TrimSpace(line[i+1:]), name != ""
		}
	}
	return "", "", "", false // unterminated braces
}

package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("reqs") != c {
		t.Fatal("Counter lookup is not idempotent")
	}
	g := r.Gauge("jobs")
	g.Set(3.5)
	g.Add(-1.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %g, want 2", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations uniform over (0, 10ms].
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * 10 * time.Microsecond)
	}
	s := h.Summary()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if math.Abs(s.Sum-5.005) > 1e-9 {
		t.Fatalf("sum = %g, want 5.005", s.Sum)
	}
	if s.Min != 10e-6 || s.Max != 10e-3 {
		t.Fatalf("min/max = %g/%g, want 10µs/10ms", s.Min, s.Max)
	}
	// Exponential buckets are coarse: accept a factor-2 band around truth.
	checks := []struct{ got, want float64 }{
		{s.P50, 5e-3}, {s.P95, 9.5e-3}, {s.P99, 9.9e-3},
	}
	for _, c := range checks {
		if c.got < c.want/2 || c.got > c.want*2 {
			t.Errorf("quantile = %g, want within 2x of %g", c.got, c.want)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(90 * time.Second) // beyond the last bounded bucket
	s := h.Summary()
	if s.Count != 1 || s.Max != 90 {
		t.Fatalf("summary = %+v, want count 1 max 90s", s)
	}
	if p := h.Quantile(0.99); p > 90+1e-9 {
		t.Fatalf("p99 = %g, must not exceed observed max", p)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Summary()
	if s.Count != 0 || s.P50 != 0 || s.Max != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(2)
	r.Gauge("b").Set(1.5)
	r.Observe("c", time.Millisecond)
	buf, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a"] != 2 || back.Gauges["b"] != 1.5 {
		t.Fatalf("roundtrip mismatch: %+v", back)
	}
	if back.Histograms["c"].Count != 1 {
		t.Fatalf("histogram lost: %+v", back.Histograms)
	}
	if got := r.Names(); len(got) != 3 {
		t.Fatalf("names = %v", got)
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	stop := r.Time("op")
	time.Sleep(time.Millisecond)
	stop()
	s := r.Histogram("op").Summary()
	if s.Count != 1 || s.Max < 0.0005 {
		t.Fatalf("timer recorded %+v", s)
	}
}

// TestConcurrent hammers every metric type from many goroutines; run under
// -race this is the registry's thread-safety proof.
func TestConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Observe("h", time.Duration(i)*time.Microsecond)
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("g").Value(); got != workers*iters {
		t.Fatalf("gauge = %g, want %d", got, workers*iters)
	}
	if got := r.Histogram("h").Summary().Count; got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("reqs") != c {
		t.Fatal("Counter lookup is not idempotent")
	}
	g := r.Gauge("jobs")
	g.Set(3.5)
	g.Add(-1.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %g, want 2", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations uniform over (0, 10ms].
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * 10 * time.Microsecond)
	}
	s := h.Summary()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if math.Abs(s.Sum-5.005) > 1e-9 {
		t.Fatalf("sum = %g, want 5.005", s.Sum)
	}
	if s.Min != 10e-6 || s.Max != 10e-3 {
		t.Fatalf("min/max = %g/%g, want 10µs/10ms", s.Min, s.Max)
	}
	// Exponential buckets are coarse: accept a factor-2 band around truth.
	checks := []struct{ got, want float64 }{
		{s.P50, 5e-3}, {s.P95, 9.5e-3}, {s.P99, 9.9e-3},
	}
	for _, c := range checks {
		if c.got < c.want/2 || c.got > c.want*2 {
			t.Errorf("quantile = %g, want within 2x of %g", c.got, c.want)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(90 * time.Second) // beyond the last bounded bucket
	s := h.Summary()
	if s.Count != 1 || s.Max != 90 {
		t.Fatalf("summary = %+v, want count 1 max 90s", s)
	}
	if p := h.Quantile(0.99); p > 90+1e-9 {
		t.Fatalf("p99 = %g, must not exceed observed max", p)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Summary()
	if s.Count != 0 || s.P50 != 0 || s.Max != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	// Every quantile of an empty histogram is 0, including out-of-range q.
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond)
	s := h.Summary()
	if s.Count != 1 || s.Min != 0.003 || s.Max != 0.003 || s.Mean != 0.003 {
		t.Fatalf("single-observation summary = %+v", s)
	}
	// With one sample, every quantile must collapse to that sample: the
	// in-bucket interpolation is clamped to the observed [min, max] range.
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := h.Quantile(q); got != 0.003 {
			t.Fatalf("single-observation Quantile(%g) = %g, want 0.003", q, got)
		}
	}
	if len(s.Buckets) != 1 || s.Buckets[0].Count != 1 {
		t.Fatalf("buckets = %+v, want exactly one with count 1", s.Buckets)
	}
}

func TestHistogramQuantileOutOfRange(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	lo, hi := h.Quantile(-0.5), h.Quantile(1.5)
	if want := h.Quantile(0); lo != want {
		t.Fatalf("Quantile(-0.5) = %g, want clamp to Quantile(0) = %g", lo, want)
	}
	if want := h.Quantile(1); hi != want {
		t.Fatalf("Quantile(1.5) = %g, want clamp to Quantile(1) = %g", hi, want)
	}
	if lo > hi {
		t.Fatalf("clamped quantiles inverted: q0=%g > q1=%g", lo, hi)
	}
}

func TestHistogramOverflowQuantileAndNegative(t *testing.T) {
	var h Histogram
	h.Observe(-5 * time.Second) // clamped to 0
	h.Observe(40 * time.Second) // beyond the ~33.5s last bounded bucket
	h.Observe(100 * time.Second)
	s := h.Summary()
	if s.Count != 3 || s.Min != 0 || s.Max != 100 {
		t.Fatalf("summary = %+v", s)
	}
	// The overflow bucket interpolates against the observed max, never past
	// it, and q=1 lands exactly on it.
	if p := h.Quantile(1); p != 100 {
		t.Fatalf("Quantile(1) = %g, want 100", p)
	}
	if p := h.Quantile(0.99); p > 100 || p < 0 {
		t.Fatalf("Quantile(0.99) = %g, outside observed range", p)
	}
}

// TestHistogramConcurrentObserveQuantile races writers against quantile
// and snapshot readers; under -race this is the histogram's concurrency
// proof for the read path (TestConcurrent covers the registry).
func TestHistogramConcurrentObserveQuantile(t *testing.T) {
	var h Histogram
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 20000; i++ {
				h.Observe(time.Duration(i%5000) * time.Microsecond)
			}
		}()
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
					if v := h.Quantile(q); v < 0 {
						t.Errorf("Quantile(%g) = %g < 0", q, v)
						return
					}
				}
				if s := h.Summary(); s.Count < 0 || s.Sum < 0 {
					t.Errorf("summary went negative: %+v", s)
					return
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if got := h.Summary().Count; got != 4*20000 {
		t.Fatalf("count = %d, want %d", got, 4*20000)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(2)
	r.Gauge("b").Set(1.5)
	r.Observe("c", time.Millisecond)
	buf, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a"] != 2 || back.Gauges["b"] != 1.5 {
		t.Fatalf("roundtrip mismatch: %+v", back)
	}
	if back.Histograms["c"].Count != 1 {
		t.Fatalf("histogram lost: %+v", back.Histograms)
	}
	if got := r.Names(); len(got) != 3 {
		t.Fatalf("names = %v", got)
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	stop := r.Time("op")
	time.Sleep(time.Millisecond)
	stop()
	s := r.Histogram("op").Summary()
	if s.Count != 1 || s.Max < 0.0005 {
		t.Fatalf("timer recorded %+v", s)
	}
}

// TestConcurrent hammers every metric type from many goroutines; run under
// -race this is the registry's thread-safety proof.
func TestConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Observe("h", time.Duration(i)*time.Microsecond)
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("g").Value(); got != workers*iters {
		t.Fatalf("gauge = %g, want %d", got, workers*iters)
	}
	if got := r.Histogram("h").Summary().Count; got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

package obs

import (
	"strings"
	"testing"
	"time"
)

func scrape(t *testing.T, r *Registry) []byte {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return []byte(sb.String())
}

func TestWriteFederatedMergesShardLabels(t *testing.T) {
	s0 := NewRegistry()
	s0.Counter("engine.commits_total").Add(3)
	s0.Observe("engine.stage.apply", time.Millisecond)
	s1 := NewRegistry()
	s1.Counter("engine.commits_total").Add(5)
	s1.Observe("engine.stage.apply", 2*time.Millisecond)
	local := NewRegistry()
	local.Counter("cluster.fanout.errors.0").Add(1)
	local.Observe("cluster.fanout.latency.allocation", time.Millisecond)
	local.Gauge("cluster.version_spread").Set(2)

	var sb strings.Builder
	err := WriteFederated(&sb, []ScrapedPage{
		{Label: "shard", Value: "0", Body: scrape(t, s0)},
		{Label: "shard", Value: "1", Body: scrape(t, s1)},
		{Body: scrape(t, local)},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		`amf_engine_commits_total{shard="0"} 3`,
		`amf_engine_commits_total{shard="1"} 5`,
		`amf_engine_stage_latency_seconds_bucket{shard="0",stage="apply",le="+Inf"} 1`,
		`amf_engine_stage_latency_seconds_count{shard="1",stage="apply"} 1`,
		`amf_cluster_fanout_errors_total{shard="0"} 1`,
		`amf_cluster_fanout_latency_seconds_count{op="allocation"} 1`,
		"# TYPE amf_cluster_version_spread gauge\namf_cluster_version_spread 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("federated page missing %q in:\n%s", want, out)
		}
	}
	// One TYPE line per family, even though both shards declared it.
	if n := strings.Count(out, "# TYPE amf_engine_commits_total counter"); n != 1 {
		t.Errorf("family declared %d times, want 1", n)
	}
	// Every sample line still matches the exposition grammar.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed federated line: %q", line)
		}
	}
	// Deterministic: same input renders byte-identically.
	var sb2 strings.Builder
	if err := WriteFederated(&sb2, []ScrapedPage{
		{Label: "shard", Value: "0", Body: scrape(t, s0)},
		{Label: "shard", Value: "1", Body: scrape(t, s1)},
		{Body: scrape(t, local)},
	}); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("federated output not deterministic")
	}
}

func TestWriteFederatedReplicaPages(t *testing.T) {
	rep := NewRegistry()
	rep.Gauge("replica.lag_records").Set(4)
	var sb strings.Builder
	if err := WriteFederated(&sb, []ScrapedPage{
		{Label: "replica", Value: "0", Body: scrape(t, rep)},
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `amf_replica_lag_records{replica="0"} 4`) {
		t.Fatalf("replica label missing:\n%s", sb.String())
	}
}

func TestWriteFederatedSkipsGarbage(t *testing.T) {
	var sb strings.Builder
	body := []byte("# HELP something ignored\nbadline\nname_only\n\namf_ok 1\n")
	if err := WriteFederated(&sb, []ScrapedPage{{Label: "shard", Value: "0", Body: body}}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `amf_ok{shard="0"} 1`) {
		t.Fatalf("valid line dropped:\n%s", out)
	}
	if strings.Contains(out, "badline") || strings.Contains(out, "HELP") {
		t.Fatalf("garbage survived:\n%s", out)
	}
}

// TestPromLabelEscapingEdgeCases drives backslash, newline and quote
// label values end-to-end through the registry renderer and the
// federation parser: the rendered page must stay parseable and the
// escaped values must survive relabeling verbatim.
func TestPromLabelEscapingEdgeCases(t *testing.T) {
	cases := []struct {
		raw  string // route/stage suffix as registered
		want string // escaped form expected inside the label value
	}{
		{`back\slash`, `back\\slash`},
		{"new\nline", `new\nline`},
		{`quo"te`, `quo\"te`},
		{"all\n\"\\three", `all\n\"\\three`},
		{`brace}y{`, `brace}y{`}, // braces are legal inside quoted values
	}
	r := NewRegistry()
	for _, c := range cases {
		r.Counter("http.requests." + c.raw).Inc()
		r.Observe("engine.stage."+c.raw, time.Millisecond)
	}
	page := scrape(t, r)

	for _, line := range strings.Split(strings.TrimSpace(string(page)), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	for _, c := range cases {
		if !strings.Contains(string(page), `route="`+c.want+`"`) {
			t.Errorf("route %q not escaped to %q in:\n%s", c.raw, c.want, page)
		}
		if !strings.Contains(string(page), `stage="`+c.want+`"`) {
			t.Errorf("stage %q not escaped to %q", c.raw, c.want)
		}
	}

	// Round-trip through federation: the parser must keep label values
	// (including escaped quotes and braces) intact while injecting the
	// shard pair, and the result must still be grammatical.
	var sb strings.Builder
	if err := WriteFederated(&sb, []ScrapedPage{{Label: "shard", Value: "3", Body: page}}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, c := range cases {
		if !strings.Contains(out, `shard="3",route="`+c.want+`"`) {
			t.Errorf("federated page lost route %q:\n%s", c.want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed federated line: %q", line)
		}
	}
}

func TestSplitSeries(t *testing.T) {
	for _, tc := range []struct {
		line, name, labels, value string
		ok                        bool
	}{
		{`m 1`, "m", "", "1", true},
		{`m{a="b"} 2`, "m", `a="b"`, "2", true},
		{`m{a="x}y"} 3`, "m", `a="x}y"`, "3", true},
		{`m{a="q\"w"} 4`, "m", `a="q\"w"`, "4", true},
		{`m{a="s\\"} 5`, "m", `a="s\\"`, "5", true},
		{`m{unterminated="`, "", "", "", false},
		{`nameonly`, "", "", "", false},
	} {
		name, labels, value, ok := splitSeries(tc.line)
		if name != tc.name || labels != tc.labels || value != tc.value || ok != tc.ok {
			t.Errorf("splitSeries(%q) = (%q, %q, %q, %v), want (%q, %q, %q, %v)",
				tc.line, name, labels, value, ok, tc.name, tc.labels, tc.value, tc.ok)
		}
	}
}

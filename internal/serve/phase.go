package serve

import (
	"log/slog"
	"math"
	"sort"
	"time"

	"repro/internal/scheduler"
	"repro/internal/wal"
)

// Doppel-style phase reconciliation (Narula et al., OSDI 2014, via
// ddtxn), single-committer form. The scheduler's classifier marks the
// components that are mutation-dirtied by almost every commit as hot;
// this file makes the committer accumulate commutative mutations
// (progress reports, weight updates) targeting hot components in
// per-component delta buffers instead of applying them — so the hot
// component is not dirtied and the commit's solve skips it — and fold
// each buffer into ONE merged mutation and one solve at phase
// boundaries: every MaxBatches commits carrying buffered deltas, or
// MaxIntervalMS after the first unreconciled delta, whichever trips
// first.
//
// Invariants the buffering preserves:
//
//   - Durability is unchanged. A buffered mutation's WAL record is
//     appended (and fsynced) in its original accept batch, exactly like
//     an applied one, and the caller is only acknowledged after that
//     fsync. Replay applies the original mutations in accept order, so
//     recovery is phase-free and deterministic.
//
//   - Acknowledged outcomes are exact. Buffering is refused for anything
//     whose result could depend on ordering: mutations on cold
//     components, invalid arguments (the ordered path produces the
//     error), and progress that could exhaust a site (the completed ack
//     and the component topology depend on it — the component is
//     reconciled first and the op applies ordered). Non-commutative
//     mutations (add/remove/queue/restore/policy/config/external-weight)
//     force the affected buffers — or all of them — to reconcile before
//     they apply.
//
//   - Reads are stale by a known amount. The published snapshot carries
//     PhaseLag, the count of acknowledged-but-unreconciled mutations; at
//     every phase boundary the reconciled state is exactly the state the
//     ordered path would have produced, because summed progress rows and
//     last-writer weights are order-independent.
type phaseState struct {
	enabled bool
	cfg     scheduler.PhaseConfig
	hs      *scheduler.HotSet

	bufs     map[string]*compBuffer
	buffered int  // total buffered mutations (published as PhaseLag)
	batches  int  // commits since the last boundary while deltas were outstanding
	flushNow bool // interval timer fired: reconcile at the next commit regardless of quota

	timer      *time.Timer
	timerC     <-chan time.Time
	timerArmed bool
}

// compBuffer accumulates the commutative mutations buffered against one
// hot component between phase boundaries.
type compBuffer struct {
	progress map[string][]float64 // job -> summed done rows
	weights  map[string]float64   // job -> last-submitted weight
	// remaining projects each buffered job's outstanding work after the
	// buffered progress — sequentially, exactly as the ordered path would
	// subtract it — so the exhaustion guard in absorbProgress sees the
	// same numbers ordered application would.
	remaining map[string][]float64
	ops       int
}

func (p *phaseState) buf(key string) *compBuffer {
	if p.bufs == nil {
		p.bufs = map[string]*compBuffer{}
	}
	b := p.bufs[key]
	if b == nil {
		b = &compBuffer{
			progress:  map[string][]float64{},
			weights:   map[string]float64{},
			remaining: map[string][]float64{},
		}
		p.bufs[key] = b
	}
	return b
}

// jobHot reports the hot component owning the job, if any.
func (p *phaseState) jobHot(id string) (string, bool) {
	if p.hs == nil {
		return "", false
	}
	key, ok := p.hs.Jobs[id]
	return key, ok
}

// phaseRefresh runs at the top of every commit: it re-reads the phase
// knobs and the classifier's hot set (both can change at runtime — via
// /v1/config, a policy switch, or a restore — always through exclusive
// commits, which flush first), and reconciles any buffer whose component
// has been demoted from the hot set.
func (e *Engine) phaseRefresh() {
	p := &e.phase
	cfg := e.sc.PhaseConfig()
	if !cfg.Enabled() || !e.sc.PolicyCapabilities().Commutative {
		if p.buffered > 0 {
			e.phaseFlush(true)
		}
		p.enabled = false
		p.hs = nil
		return
	}
	p.enabled = true
	p.cfg = cfg
	p.hs = e.sc.HotSet()
	for key := range p.bufs {
		if !p.hs.Has(key) {
			e.applyBuffer(key, true)
		}
	}
}

// phaseAbsorb classifies one op against the hot set. It returns true
// when the op was buffered — acknowledged, WAL-logged, but not applied —
// and false when the op must take the ordered path, possibly after
// forcing the buffers it conflicts with to reconcile.
func (e *Engine) phaseAbsorb(o *op) bool {
	p := &e.phase
	if !p.enabled && p.buffered == 0 {
		return false
	}
	if o.rec == nil {
		// Unlogged mutation (SetApproxConfig, snapshot barriers): not
		// classifiable, so quiesce everything and let it apply ordered.
		if p.buffered > 0 {
			e.phaseFlush(true)
		}
		return false
	}
	switch o.rec.Op {
	case wal.OpProgress:
		return p.enabled && e.absorbProgress(o)
	case wal.OpWeight:
		return p.enabled && e.absorbWeight(o)
	case wal.OpRemoveJob:
		// Removal changes the component's membership: fold the buffered
		// deltas in first so none of them land on a vanished job.
		if key, hot := p.jobHot(o.rec.ID); hot {
			e.applyBuffer(key, true)
		}
	case wal.OpAddJob:
		e.flushSites(o.rec.Demand)
	case wal.OpAddJobs:
		for _, js := range o.rec.Jobs {
			e.flushSites(js.Demand)
		}
	case wal.OpAddQueue, wal.OpExternalWeight, wal.OpSetPolicy, wal.OpSetConfig, wal.OpRestore:
		// Global topology/regime changes: reconcile everything first.
		if p.buffered > 0 {
			e.phaseFlush(true)
		}
	}
	return false
}

// flushSites force-reconciles every hot component whose site set overlaps
// the demand vector: a job arriving there merges components — a
// non-commutative topology change.
func (e *Engine) flushSites(demand []float64) {
	p := &e.phase
	if p.hs == nil || p.buffered == 0 {
		return
	}
	for s, d := range demand {
		if d <= 0 {
			continue
		}
		if key, ok := p.hs.Sites[s]; ok {
			e.applyBuffer(key, true)
		}
	}
}

func (e *Engine) absorbProgress(o *op) bool {
	p := &e.phase
	id := o.rec.ID
	key, hot := p.jobHot(id)
	if !hot || !e.sc.JobLive(id) {
		return false
	}
	done := o.rec.Done
	if scheduler.ValidateProgress(done, e.sc.NumSites()) != nil {
		return false // the ordered path produces the caller's error
	}
	buf := p.buf(key)
	rem, ok := buf.remaining[id]
	if !ok {
		if rem, ok = e.sc.RemainingCopy(id); !ok {
			return false
		}
	}
	// Exhaustion guard: buffering must never defer a site running out of
	// work — the caller's completed ack and the component topology both
	// depend on it. Progress that brings any live site within a relative
	// margin of zero reconciles the component and applies ordered. The
	// margin (1e-9, three orders above the scheduler's 1e-12 exhaustion
	// tolerance) absorbs the summation-order float residue between the
	// projected sequential subtraction here and the single merged
	// subtraction at the boundary.
	for s, d := range done {
		if d == 0 || rem[s] <= 0 {
			continue
		}
		if rem[s]-d <= 1e-9*math.Max(1, rem[s]) {
			e.applyBuffer(key, true)
			return false
		}
	}
	row := buf.progress[id]
	if row == nil {
		row = make([]float64, len(done))
		buf.progress[id] = row
		buf.remaining[id] = rem
	}
	for s, d := range done {
		row[s] += d
		if rem[s] > 0 {
			rem[s] -= d
		}
	}
	buf.ops++
	p.buffered++
	e.mPhaseBuffered.Inc()
	return true
}

func (e *Engine) absorbWeight(o *op) bool {
	p := &e.phase
	id := o.rec.ID
	key, hot := p.jobHot(id)
	if !hot || !e.sc.JobLive(id) {
		return false
	}
	w := o.rec.Weight
	if math.IsNaN(w) || math.IsInf(w, 0) {
		return false // preserve the ordered path's handling of degenerate weights
	}
	buf := p.buf(key)
	buf.weights[id] = w // last write wins, as in the ordered path
	buf.ops++
	p.buffered++
	e.mPhaseBuffered.Inc()
	return true
}

// applyBuffer reconciles one component's buffer into a single merged
// mutation. It reports whether a buffer existed.
func (e *Engine) applyBuffer(key string, forced bool) bool {
	p := &e.phase
	buf := p.bufs[key]
	if buf == nil {
		return false
	}
	delete(p.bufs, key)
	p.buffered -= buf.ops
	t0 := time.Now()
	_, err := e.sc.ApplyMerged(scheduler.MergedDelta{Progress: buf.progress, Weights: buf.weights})
	d := time.Since(t0)
	e.stageObserve(stageReconcile, d)
	if tb := e.tb; tb != nil {
		tb.Detail(stageReconcile, d)
	}
	e.mPhaseReconciles.Inc()
	if forced {
		e.mPhaseForced.Inc()
	}
	if err != nil {
		// Unreachable short of a bug: every row was validated at buffer
		// time. Surface it loudly rather than lose acknowledged mutations.
		e.mSolveErrs.Inc()
		if e.cfg.Logger != nil {
			e.cfg.Logger.Error("phase reconcile failed",
				slog.String("component", key), slog.String("err", err.Error()))
		}
	}
	return true
}

// phaseFlush reconciles every outstanding buffer (in deterministic key
// order) and reports whether anything was applied.
func (e *Engine) phaseFlush(forced bool) bool {
	p := &e.phase
	if len(p.bufs) == 0 {
		p.batches = 0
		return false
	}
	keys := make([]string, 0, len(p.bufs))
	for k := range p.bufs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.applyBuffer(k, forced)
	}
	p.batches = 0
	return true
}

// phaseEndBatch runs after a commit's ops are durable and before its
// publish: it advances the phase clock and reconciles at the boundary,
// so the boundary solve lands in the same publish.
func (e *Engine) phaseEndBatch() {
	p := &e.phase
	if p.buffered > 0 {
		p.batches++
		if p.flushNow || p.batches >= p.cfg.EffectiveMaxBatches() {
			e.phaseFlush(false)
		}
	} else {
		p.batches = 0
	}
	p.flushNow = false
	e.phaseLagA.Store(int64(p.buffered))
	e.armPhaseTimer()
}

// armPhaseTimer keeps the interval boundary armed exactly while deltas
// are outstanding. The timer measures the age of the oldest
// unreconciled delta: it is armed when the first delta is buffered and
// not re-armed until a boundary drains the buffers.
func (e *Engine) armPhaseTimer() {
	p := &e.phase
	if p.buffered > 0 {
		if p.timerArmed {
			return
		}
		d := p.cfg.EffectiveMaxInterval()
		if p.timer == nil {
			p.timer = time.NewTimer(d)
			p.timerC = p.timer.C
		} else {
			if !p.timer.Stop() {
				select {
				case <-p.timer.C:
				default:
				}
			}
			p.timer.Reset(d)
		}
		p.timerArmed = true
		return
	}
	if p.timerArmed {
		if !p.timer.Stop() {
			select {
			case <-p.timer.C:
			default:
			}
		}
		p.timerArmed = false
	}
}

// phaseTick handles the interval timer firing between commits: an empty
// commit whose only effect is the boundary reconcile and the publish of
// the now-exact snapshot.
func (e *Engine) phaseTick() {
	p := &e.phase
	p.timerArmed = false
	if p.buffered == 0 || e.walFailed.Load() {
		return
	}
	p.flushNow = true
	e.commit(nil)
	e.maybeCompact()
}

// cacheWindow tracks per-commit deltas of the solver's lifetime
// fingerprint-cache counters over the last cacheWindowCommits commits,
// feeding engine.cache_hit_ratio_window. The lifetime ratio
// (engine.cache_hit_ratio) is kept for continuity but converges so
// slowly on long-lived engines that a behavior change — a policy
// switch, a workload shift, phase reconciliation kicking in — barely
// moves it; the windowed companion reacts within a window.
type cacheWindow struct {
	hits, misses [cacheWindowCommits]int64
	pos, size    int
	prevH, prevM int64
	sumH, sumM   int64
}

const cacheWindowCommits = 64

func (e *Engine) observeCacheWindow(hits, misses int64) {
	w := &e.hitWin
	dh, dm := hits-w.prevH, misses-w.prevM
	w.prevH, w.prevM = hits, misses
	if dh < 0 || dm < 0 {
		// The lifetime counters reset (solver reinstalled on a policy
		// switch): restart the window instead of folding a negative delta.
		*w = cacheWindow{prevH: hits, prevM: misses}
		e.gHitRatioWin.Set(0)
		return
	}
	if w.size == cacheWindowCommits {
		w.sumH -= w.hits[w.pos]
		w.sumM -= w.misses[w.pos]
	} else {
		w.size++
	}
	w.hits[w.pos], w.misses[w.pos] = dh, dm
	w.sumH += dh
	w.sumM += dm
	w.pos = (w.pos + 1) % cacheWindowCommits
	if lookups := w.sumH + w.sumM; lookups > 0 {
		e.gHitRatioWin.Set(float64(w.sumH) / float64(lookups))
	}
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/span"
)

// TestEngineCommitTracing drives traced mutations through a batching
// engine and checks the recorded traces: the request trace IDs ride in
// the commit's Requests list, the first one names the trace, the span
// timeline is contiguous, and the non-detail spans account for the
// whole-commit wall time (the acceptance bound is 10%; the batch window
// makes queue_wait dominate, so the uninstrumented slack stays tiny).
func TestEngineCommitTracing(t *testing.T) {
	rec := span.NewRecorder(64)
	eng, _ := newEngine(t, Config{
		Traces:      rec,
		BatchWindow: 20 * time.Millisecond,
		Metrics:     obs.NewRegistry(),
	})

	ids := make([]span.ID, 0, 4)
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		id := span.MintID()
		ids = append(ids, id)
		go func(i int, id span.ID) {
			ctx := span.NewContext(context.Background(), id)
			errs <- eng.AddJob(ctx, fmt.Sprintf("j%d", i), 1, []float64{1, 1, 0}, nil)
		}(i, id)
	}
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	traces := rec.Recent(0)
	if len(traces) == 0 {
		t.Fatal("no traces recorded")
	}
	// Collect every request ID that rode in a recorded trace.
	seen := make(map[span.ID]bool)
	for _, tr := range traces {
		for _, r := range tr.Requests {
			seen[r] = true
		}
		if tr.BatchSize < 1 {
			t.Fatalf("trace %s batch size = %d", tr.ID, tr.BatchSize)
		}
		if len(tr.Requests) > 0 && tr.ID != tr.Requests[0] {
			t.Fatalf("trace ID %s != first request ID %s", tr.ID, tr.Requests[0])
		}
		if tr.Error != "" {
			t.Fatalf("trace %s error = %q", tr.ID, tr.Error)
		}
		// Timeline contiguity: each non-detail span starts where the
		// previous ended (within float slop).
		cursor := 0.0
		names := make(map[string]bool)
		for _, sp := range tr.Spans {
			if sp.Detail {
				continue
			}
			if math.Abs(sp.Start-cursor) > 1e-9 {
				t.Fatalf("span %s starts at %g, cursor %g", sp.Name, sp.Start, cursor)
			}
			cursor += sp.Duration
			names[sp.Name] = true
		}
		for _, want := range []string{"queue_wait", "apply", "publish"} {
			if !names[want] {
				t.Fatalf("trace %s missing span %q (spans: %+v)", tr.ID, want, tr.Spans)
			}
		}
		if tr.Total <= 0 {
			t.Fatalf("trace %s total = %g", tr.ID, tr.Total)
		}
		if ratio := tr.SpanSum() / tr.Total; ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("trace %s span sum %.6fs vs total %.6fs (ratio %.3f), want within 10%%",
				tr.ID, tr.SpanSum(), tr.Total, ratio)
		}
	}
	for _, id := range ids {
		if !seen[id] {
			t.Fatalf("request trace ID %s not found in any recorded trace", id)
		}
	}
}

// TestEngineTraceWithoutRequestID checks that commits whose batch carries
// no request trace ID still get a minted one, and that untraced engines
// record nothing.
func TestEngineTraceWithoutRequestID(t *testing.T) {
	rec := span.NewRecorder(8)
	eng, _ := newEngine(t, Config{Traces: rec})
	if err := eng.AddJob(context.Background(), "a", 1, []float64{1, 0, 0}, nil); err != nil {
		t.Fatal(err)
	}
	traces := rec.Recent(0)
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	if traces[0].ID == "" || len(traces[0].Requests) != 0 {
		t.Fatalf("trace = %+v, want minted ID and no requests", traces[0])
	}
}

// TestEngineFairnessGauges checks that every successful publish refreshes
// the fairness gauges from the published allocation.
func TestEngineFairnessGauges(t *testing.T) {
	reg := obs.NewRegistry()
	eng, _ := newEngine(t, Config{Metrics: reg, MaxBatch: 1})

	// Two jobs with equal weight contending for site 0 (capacity 4): AMF
	// splits it 2/2, so aggregate allocations are equal.
	for _, id := range []string{"a", "b"} {
		if err := eng.AddJob(context.Background(), id, 1, []float64{4, 0, 0}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Gauge("fairness.jain_index").Value(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("jain_index = %g, want 1", got)
	}
	mn := reg.Gauge("fairness.min_normalized_share").Value()
	mx := reg.Gauge("fairness.max_normalized_share").Value()
	if math.Abs(mn-2) > 1e-9 || math.Abs(mx-2) > 1e-9 {
		t.Fatalf("normalized shares = [%g, %g], want [2, 2]", mn, mx)
	}

	// Doubling a's weight skews the split 8/3–4/3 on the contended site;
	// normalized shares stay equal (weighted max-min equalizes them) but
	// Jain over raw aggregates drops below 1.
	if err := eng.UpdateWeight(context.Background(), "a", 2); err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("fairness.jain_index").Value(); got >= 1 {
		t.Fatalf("jain_index = %g after skewing weights, want < 1", got)
	}
	mn = reg.Gauge("fairness.min_normalized_share").Value()
	mx = reg.Gauge("fairness.max_normalized_share").Value()
	if math.Abs(mn-mx) > 1e-9 {
		t.Fatalf("normalized shares = [%g, %g], want equal under weighted max-min", mn, mx)
	}
}

// TestEngineSlowCommitLog checks the slow-commit structured log: with a
// threshold of 1ns every commit is "slow", and the JSON record carries
// the trace ID, batch sequence and per-stage timings.
func TestEngineSlowCommitLog(t *testing.T) {
	var buf bytes.Buffer
	rec := span.NewRecorder(8)
	eng, _ := newEngine(t, Config{
		Traces:     rec,
		Logger:     slog.New(slog.NewJSONHandler(&buf, nil)),
		SlowCommit: time.Nanosecond,
	})
	if err := eng.AddJob(context.Background(), "a", 1, []float64{1, 0, 0}, nil); err != nil {
		t.Fatal(err)
	}
	// The committer writes the log line before releasing the submitter, so
	// the buffer is safe to read here.
	line := strings.TrimSpace(buf.String())
	if line == "" {
		t.Fatal("no slow-commit log emitted")
	}
	var recJSON map[string]any
	if err := json.Unmarshal([]byte(strings.Split(line, "\n")[0]), &recJSON); err != nil {
		t.Fatalf("slow-commit log is not JSON: %v\n%s", err, line)
	}
	if recJSON["msg"] != "slow commit" {
		t.Fatalf("msg = %v", recJSON["msg"])
	}
	for _, key := range []string{"trace_id", "batch_seq", "batch_size", "total", "stage.queue_wait_seconds", "stage.apply_seconds", "stage.publish_seconds"} {
		if _, ok := recJSON[key]; !ok {
			t.Fatalf("slow-commit log missing %q: %s", key, line)
		}
	}
	if recJSON["trace_id"] != string(rec.Recent(1)[0].ID) {
		t.Fatalf("trace_id %v does not match recorded trace %s", recJSON["trace_id"], rec.Recent(1)[0].ID)
	}
}

// TestEngineStageHistograms checks that the per-stage latency histograms
// are fed on every commit, tracing on or off.
func TestEngineStageHistograms(t *testing.T) {
	reg := obs.NewRegistry()
	eng, _ := newEngine(t, Config{Metrics: reg})
	if err := eng.AddJob(context.Background(), "a", 1, []float64{1, 0, 0}, nil); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"engine.stage.queue_wait", "engine.stage.apply", "engine.stage.publish",
		"engine.stage.validate", "engine.stage.partition", "engine.stage.solve",
	} {
		if s := reg.Histogram(name).Summary(); s.Count == 0 {
			t.Fatalf("%s has no observations", name)
		}
	}
}
